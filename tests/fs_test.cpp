// Tests for the file-system layer: path algebra, the sparse extent map
// (including a randomized property check against a flat reference model),
// PosixFs passthrough behaviour, and SimFs functional semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/rng.h"
#include "common/units.h"
#include "fs/filesystem.h"
#include "fs/path.h"
#include "fs/posix_fs.h"
#include "fs/sim/extent_map.h"
#include "fs/sim/machine.h"
#include "fs/sim/resource.h"
#include "fs/sim/simfs.h"

namespace sion::fs {
namespace {

std::vector<std::byte> make_bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> out(n);
  Rng rng(seed);
  rng.fill_bytes(out);
  return out;
}

// ---------------------------------------------------------------------------
// path
// ---------------------------------------------------------------------------

TEST(PathTest, Normalize) {
  EXPECT_EQ(normalize("a//b/./c/"), "a/b/c");
  EXPECT_EQ(normalize("/"), "/");
  EXPECT_EQ(normalize(""), ".");
  EXPECT_EQ(normalize("."), ".");
  EXPECT_EQ(normalize("./x"), "x");
  EXPECT_EQ(normalize("/a/b"), "/a/b");
}

TEST(PathTest, IsNormalizedEdgeCases) {
  // Trailing slashes, repeated separators, embedded '.' segments.
  EXPECT_FALSE(is_normalized(""));
  EXPECT_TRUE(is_normalized("/"));
  EXPECT_FALSE(is_normalized("a/"));
  EXPECT_FALSE(is_normalized("/a/"));
  EXPECT_FALSE(is_normalized("a//b"));
  EXPECT_FALSE(is_normalized("//"));
  EXPECT_FALSE(is_normalized("//a"));
  EXPECT_TRUE(is_normalized("."));  // "." is its own normal form
  EXPECT_FALSE(is_normalized("./a"));
  EXPECT_FALSE(is_normalized("a/./b"));
  EXPECT_FALSE(is_normalized("a/."));
  EXPECT_TRUE(is_normalized("a"));
  EXPECT_TRUE(is_normalized("a/b.c"));
  EXPECT_TRUE(is_normalized("/a/b"));
  // Dot-dot is a literal segment in this abstract namespace (nothing
  // resolves it, including past the root): both forms must agree that it
  // is already normal, or SimFs lookups would disagree with normalize().
  EXPECT_TRUE(is_normalized(".."));
  EXPECT_TRUE(is_normalized("/../a"));
  EXPECT_TRUE(is_normalized("a/../b"));
  EXPECT_TRUE(is_normalized("..."));  // not a special segment either
}

TEST(PathTest, NormalizeAgreesWithIsNormalized) {
  // normalize() must be a fixpoint, and is_normalized() must accept exactly
  // its image — on every shape the simulator's namespace sees.
  for (const char* raw :
       {"", "/", ".", "..", "a/", "a//b", "./a", "a/./b", "a/.", "//",
        "/../a", "a/../b", "a/b/./../c/", "x//./y/", "...", "/a/b/c"}) {
    const std::string norm = normalize(raw);
    EXPECT_TRUE(is_normalized(norm)) << "normalize(\"" << raw << "\") = \""
                                     << norm << "\" not accepted";
    EXPECT_EQ(normalize(norm), norm) << "normalize not idempotent on \""
                                     << raw << "\"";
  }
}

TEST(PathTest, NormalizeDotDotPastRootIsPreserved) {
  // '..' segments survive normalization verbatim — including past the
  // root, where a POSIX resolver would clamp. SimFs namespaces are
  // abstract string keys; resolving would alias distinct keys.
  EXPECT_EQ(normalize("/../a"), "/../a");
  EXPECT_EQ(normalize("../a"), "../a");
  EXPECT_EQ(normalize("a/../b"), "a/../b");
  EXPECT_EQ(normalize("a/..//b/"), "a/../b");
}

TEST(PathTest, NormalizeIntoSkipsTheCopyWhenAlreadyNormal) {
  std::string storage;
  const std::string normal = "a/b/c";
  // Already-normal input: the reference is the input itself, untouched
  // storage (the SimFs hot-path contract).
  const std::string& ref = normalize_into(normal, storage);
  EXPECT_EQ(&ref, &normal);
  EXPECT_TRUE(storage.empty());
  // Non-normal input lands in storage.
  const std::string messy = "a//b/./c/";
  const std::string& ref2 = normalize_into(messy, storage);
  EXPECT_EQ(&ref2, &storage);
  EXPECT_EQ(ref2, "a/b/c");
}

TEST(PathTest, ParentBasenameJoin) {
  EXPECT_EQ(parent("a/b/c"), "a/b");
  EXPECT_EQ(parent("c"), ".");
  EXPECT_EQ(parent("/x"), "/");
  EXPECT_EQ(basename("a/b/c"), "c");
  EXPECT_EQ(basename("c"), "c");
  EXPECT_EQ(join("a/b", "c"), "a/b/c");
  EXPECT_EQ(join(".", "c"), "c");
  EXPECT_EQ(join("a/", "c"), "a/c");
}

// ---------------------------------------------------------------------------
// Resource
// ---------------------------------------------------------------------------

TEST(ResourceTest, SingleServerSerializes) {
  Resource r(1);
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 1.0), 2.0);   // queued behind the first
  EXPECT_DOUBLE_EQ(r.acquire(5.0, 1.0), 6.0);   // idle gap, starts at arrival
  EXPECT_DOUBLE_EQ(r.busy_time(), 3.0);
  EXPECT_DOUBLE_EQ(r.horizon(), 6.0);
}

TEST(ResourceTest, MultiServerRunsInParallel) {
  Resource r(2);
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 1.0), 1.0);   // second server
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 1.0), 2.0);   // now queued
}

TEST(ResourceTest, BandwidthService) {
  Resource r(1, 100.0);  // 100 bytes/s
  EXPECT_DOUBLE_EQ(r.acquire_bytes(0.0, 50), 0.5);
  EXPECT_DOUBLE_EQ(r.acquire_bytes(0.0, 50), 1.0);
  Resource unlimited(1, 0.0);
  EXPECT_DOUBLE_EQ(unlimited.acquire_bytes(3.0, 1000), 3.0);
}

// ---------------------------------------------------------------------------
// ExtentMap
// ---------------------------------------------------------------------------

TEST(ExtentMapTest, ReadOfHoleIsZeros) {
  ExtentMap m;
  std::vector<std::byte> out(8, std::byte{0xFF});
  m.read(100, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(m.allocated_bytes(), 0u);
}

TEST(ExtentMapTest, WriteReadRoundtrip) {
  ExtentMap m;
  const auto data = make_bytes({1, 2, 3, 4, 5});
  m.write(10, DataView(data));
  std::vector<std::byte> out(5);
  m.read(10, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(m.allocated_bytes(), 5u);
}

TEST(ExtentMapTest, FillWriteIsConstantSpace) {
  ExtentMap m;
  m.write(0, DataView::fill(std::byte{'x'}, 1ULL << 40));  // 1 TiB
  EXPECT_EQ(m.allocated_bytes(), 1ULL << 40);
  EXPECT_EQ(m.extents().size(), 1u);
  std::vector<std::byte> out(4);
  m.read((1ULL << 39), out);
  for (auto b : out) EXPECT_EQ(b, std::byte{'x'});
}

TEST(ExtentMapTest, AdjacentSameFillsCoalesce) {
  ExtentMap m;
  m.write(0, DataView::fill(std::byte{7}, 100));
  m.write(100, DataView::fill(std::byte{7}, 100));
  EXPECT_EQ(m.extents().size(), 1u);
  EXPECT_EQ(m.allocated_bytes(), 200u);
}

TEST(ExtentMapTest, AdjacentDifferentFillsStaySeparate) {
  ExtentMap m;
  m.write(0, DataView::fill(std::byte{1}, 100));
  m.write(100, DataView::fill(std::byte{2}, 100));
  EXPECT_EQ(m.extents().size(), 2u);
  std::vector<std::byte> out(2);
  m.read(99, out);
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_EQ(out[1], std::byte{2});
}

TEST(ExtentMapTest, OverwriteMiddleSplits) {
  ExtentMap m;
  m.write(0, DataView::fill(std::byte{1}, 30));
  const auto mid = make_bytes({9, 9, 9});
  m.write(10, DataView(mid));
  EXPECT_EQ(m.allocated_bytes(), 30u);
  std::vector<std::byte> out(30);
  m.read(0, out);
  for (int i = 0; i < 30; ++i) {
    const auto expect = (i >= 10 && i < 13) ? std::byte{9} : std::byte{1};
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expect) << "at " << i;
  }
}

TEST(ExtentMapTest, OverwriteSpanningMultipleExtents) {
  ExtentMap m;
  m.write(0, DataView::fill(std::byte{1}, 10));
  m.write(20, DataView::fill(std::byte{2}, 10));
  m.write(40, DataView::fill(std::byte{3}, 10));
  m.write(5, DataView::fill(std::byte{8}, 40));  // covers mid extent fully
  EXPECT_EQ(m.allocated_bytes(), 50u);
  std::vector<std::byte> out(50);
  m.read(0, out);
  for (int i = 0; i < 50; ++i) {
    std::byte expect;
    if (i < 5) expect = std::byte{1};
    else if (i < 45) expect = std::byte{8};
    else expect = std::byte{3};
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expect) << "at " << i;
  }
}

TEST(ExtentMapTest, AllocatedInRange) {
  ExtentMap m;
  m.write(10, DataView::fill(std::byte{1}, 10));
  m.write(40, DataView::fill(std::byte{1}, 10));
  EXPECT_EQ(m.allocated_in_range(0, 100), 20u);
  EXPECT_EQ(m.allocated_in_range(15, 30), 10u);  // [15,45): 5 + 5
  EXPECT_EQ(m.allocated_in_range(20, 20), 0u);
  EXPECT_TRUE(m.any_allocated(15, 1));
  EXPECT_FALSE(m.any_allocated(25, 5));
}

TEST(ExtentMapTest, Truncate) {
  ExtentMap m;
  m.write(0, DataView::fill(std::byte{1}, 100));
  m.truncate(30);
  EXPECT_EQ(m.allocated_bytes(), 30u);
  std::vector<std::byte> out(40);
  m.read(0, out);
  EXPECT_EQ(out[29], std::byte{1});
  EXPECT_EQ(out[30], std::byte{0});
  m.truncate(0);
  EXPECT_EQ(m.allocated_bytes(), 0u);
}

// Randomized property test: the extent map must agree with a flat byte
// array after arbitrary interleavings of data writes, fill writes, and
// truncations.
class ExtentMapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtentMapPropertyTest, MatchesReferenceModel) {
  constexpr std::uint64_t kSpace = 4096;
  ExtentMap m;
  std::vector<std::byte> ref(kSpace, std::byte{0});
  Rng rng(GetParam());

  for (int step = 0; step < 300; ++step) {
    const std::uint64_t off = rng.next_below(kSpace - 1);
    const std::uint64_t len = 1 + rng.next_below(kSpace - off - 1);
    const int action = static_cast<int>(rng.next_below(10));
    if (action < 5) {
      const auto data = pattern(len, rng.next_u64());
      m.write(off, DataView(data));
      std::copy(data.begin(), data.end(),
                ref.begin() + static_cast<std::ptrdiff_t>(off));
    } else if (action < 9) {
      const auto fill = static_cast<std::byte>(rng.next_below(256));
      m.write(off, DataView::fill(fill, len));
      std::fill_n(ref.begin() + static_cast<std::ptrdiff_t>(off), len, fill);
    } else {
      m.truncate(off);
      std::fill(ref.begin() + static_cast<std::ptrdiff_t>(off), ref.end(),
                std::byte{0});
    }

    // Check a few random windows every step and the whole space sometimes.
    for (int probe = 0; probe < 4; ++probe) {
      const std::uint64_t poff = rng.next_below(kSpace - 1);
      const std::uint64_t plen = 1 + rng.next_below(kSpace - poff - 1);
      std::vector<std::byte> got(plen);
      m.read(poff, got);
      ASSERT_EQ(0, std::memcmp(got.data(), ref.data() + poff, plen))
          << "window [" << poff << ", " << poff + plen << ") diverged at step "
          << step;
    }
    ASSERT_LE(m.allocated_bytes(), kSpace);
  }
  std::vector<std::byte> all(kSpace);
  m.read(0, all);
  EXPECT_EQ(all, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentMapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// PosixFs
// ---------------------------------------------------------------------------

class PosixFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("sion_fs_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string path(const std::string& name) const {
    return (root_ / name).string();
  }

  std::filesystem::path root_;
  PosixFs fs_;
};

TEST_F(PosixFsTest, CreateWriteReadRoundtrip) {
  auto file = fs_.create(path("a.bin"));
  ASSERT_TRUE(file.ok()) << file.status().to_string();
  const auto data = pattern(1000, 42);
  auto wrote = file.value()->pwrite(DataView(data), 0);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote.value(), 1000u);

  auto rd = fs_.open_read(path("a.bin"));
  ASSERT_TRUE(rd.ok());
  std::vector<std::byte> out(1000);
  auto got = rd.value()->pread(out, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 1000u);
  EXPECT_EQ(out, data);
}

TEST_F(PosixFsTest, FillWriteExpands) {
  auto file = fs_.create(path("fill.bin"));
  ASSERT_TRUE(file.ok());
  // Larger than the staging buffer to exercise the loop.
  ASSERT_TRUE(file.value()->pwrite(DataView::fill(std::byte{'z'}, 600 * 1024), 5).ok());
  std::vector<std::byte> out(8);
  ASSERT_TRUE(file.value()->pread(out, 600 * 1024 - 8).ok());
  for (auto b : out) EXPECT_EQ(b, std::byte{'z'});
  auto st = file.value()->stat();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 600u * 1024 + 5);
}

TEST_F(PosixFsTest, ReadPastEofIsShort) {
  auto file = fs_.create(path("short.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->pwrite(DataView::fill(std::byte{1}, 10), 0).ok());
  std::vector<std::byte> out(100);
  auto got = file.value()->pread(out, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 5u);
}

TEST_F(PosixFsTest, OpenMissingIsNotFound) {
  auto r = fs_.open_read(path("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(fs_.exists(path("missing")));
}

TEST_F(PosixFsTest, WriteToReadOnlyFails) {
  { auto f = fs_.create(path("ro.bin")); ASSERT_TRUE(f.ok()); }
  auto rd = fs_.open_read(path("ro.bin"));
  ASSERT_TRUE(rd.ok());
  auto w = rd.value()->pwrite(DataView::fill(std::byte{1}, 4), 0);
  EXPECT_FALSE(w.ok());
}

TEST_F(PosixFsTest, MkdirListRemove) {
  ASSERT_TRUE(fs_.mkdir(path("sub")).ok());
  { auto f = fs_.create(path("sub/x.bin")); ASSERT_TRUE(f.ok()); }
  { auto f = fs_.create(path("sub/y.bin")); ASSERT_TRUE(f.ok()); }
  auto names = fs_.list_dir(path("sub"));
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"x.bin", "y.bin"}));
  EXPECT_TRUE(fs_.remove(path("sub/x.bin")).ok());
  EXPECT_FALSE(fs_.exists(path("sub/x.bin")));
}

TEST_F(PosixFsTest, TruncateAndStat) {
  auto f = fs_.create(path("t.bin"));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, 100), 0).ok());
  ASSERT_TRUE(f.value()->truncate(40).ok());
  auto st = f.value()->stat();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 40u);
}

TEST_F(PosixFsTest, BlockSizeOverride) {
  PosixFs fs(2 * kMiB);
  auto bs = fs.block_size(root_.string());
  ASSERT_TRUE(bs.ok());
  EXPECT_EQ(bs.value(), 2 * kMiB);
  // Without override, some positive real value.
  auto real = fs_.block_size(root_.string());
  ASSERT_TRUE(real.ok());
  EXPECT_GT(real.value(), 0u);
}

TEST_F(PosixFsTest, PreadDiscardDefaultWorks) {
  auto f = fs_.create(path("d.bin"));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, 1000), 0).ok());
  EXPECT_TRUE(f.value()->pread_discard(1000, 0).ok());
}

// ---------------------------------------------------------------------------
// SimFs functional behaviour (serial callers; timing tested in sim_test.cpp)
// ---------------------------------------------------------------------------

class SimFsTest : public ::testing::Test {
 protected:
  SimFsTest() : fs_(TestbedConfig()) {}
  SimFs fs_;
};

TEST_F(SimFsTest, CreateWriteReadRoundtrip) {
  auto file = fs_.create("a.bin");
  ASSERT_TRUE(file.ok()) << file.status().to_string();
  const auto data = pattern(500, 7);
  ASSERT_TRUE(file.value()->pwrite(DataView(data), 100).ok());

  auto rd = fs_.open_read("a.bin");
  ASSERT_TRUE(rd.ok());
  std::vector<std::byte> out(500);
  auto got = rd.value()->pread(out, 100);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 500u);
  EXPECT_EQ(out, data);
}

TEST_F(SimFsTest, HolesReadAsZeroAndDontAllocate) {
  auto file = fs_.create("sparse.bin");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->pwrite(DataView::fill(std::byte{5}, 10),
                                   10 * kMiB).ok());
  auto st = file.value()->stat();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 10 * kMiB + 10);
  EXPECT_EQ(st.value().allocated, 10u);  // the hole costs nothing
  std::vector<std::byte> out(10);
  ASSERT_TRUE(file.value()->pread(out, 5 * kMiB).ok());
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST_F(SimFsTest, OpenMissingFails) {
  auto r = fs_.open_read("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST_F(SimFsTest, CreateInMissingDirFails) {
  auto r = fs_.create("no_such_dir/file");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST_F(SimFsTest, MkdirListRemove) {
  ASSERT_TRUE(fs_.mkdir("d").ok());
  ASSERT_TRUE(fs_.mkdir("d/e").ok());
  { auto f = fs_.create("d/x"); ASSERT_TRUE(f.ok()); }
  auto names = fs_.list_dir("d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"e", "x"}));
  // Non-empty directory cannot be removed.
  EXPECT_EQ(fs_.remove("d").code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(fs_.remove("d/x").ok());
  EXPECT_TRUE(fs_.remove("d/e").ok());
  EXPECT_TRUE(fs_.remove("d").ok());
  EXPECT_FALSE(fs_.exists("d"));
}

TEST_F(SimFsTest, DuplicateMkdirFails) {
  ASSERT_TRUE(fs_.mkdir("d").ok());
  EXPECT_EQ(fs_.mkdir("d").code(), ErrorCode::kAlreadyExists);
}

TEST_F(SimFsTest, CreateOverExistingReplacesContent) {
  {
    auto f = fs_.create("f");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, 100), 0).ok());
  }
  auto f2 = fs_.create("f");
  ASSERT_TRUE(f2.ok());
  auto st = f2.value()->stat();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 0u);
}

TEST_F(SimFsTest, UnlinkedFileRemainsUsableThroughHandle) {
  auto f = fs_.create("gone");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{3}, 10), 0).ok());
  ASSERT_TRUE(fs_.remove("gone").ok());
  std::vector<std::byte> out(10);
  auto got = f.value()->pread(out, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 10u);
  EXPECT_EQ(out[9], std::byte{3});
}

TEST_F(SimFsTest, WriteToReadOnlyHandleFails) {
  { auto f = fs_.create("ro"); ASSERT_TRUE(f.ok()); }
  auto rd = fs_.open_read("ro");
  ASSERT_TRUE(rd.ok());
  auto w = rd.value()->pwrite(DataView::fill(std::byte{1}, 1), 0);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(SimFsTest, QuotaEnforced) {
  SimConfig cfg = TestbedConfig();
  cfg.quota_bytes = 1000;
  SimFs fs(cfg);
  auto f = fs.create("q");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, 900), 0).ok());
  auto too_much = f.value()->pwrite(DataView::fill(std::byte{1}, 200), 900);
  ASSERT_FALSE(too_much.ok());
  EXPECT_EQ(too_much.status().code(), ErrorCode::kQuotaExceeded);
  // Overwriting already-allocated bytes is still fine.
  EXPECT_TRUE(f.value()->pwrite(DataView::fill(std::byte{2}, 900), 0).ok());
  // Holes do not count against quota.
  auto sparse = fs.create("s");
  ASSERT_TRUE(sparse.ok());
  EXPECT_TRUE(
      sparse.value()->pwrite(DataView::fill(std::byte{1}, 50), 1 * kGiB).ok());
}

TEST_F(SimFsTest, CountersTrackOperations) {
  { auto f = fs_.create("c1"); ASSERT_TRUE(f.ok()); }
  { auto f = fs_.open_read("c1"); ASSERT_TRUE(f.ok()); }
  { auto f = fs_.open_rw("c1"); ASSERT_TRUE(f.ok()); }
  EXPECT_EQ(fs_.counters().creates, 1u);
  // Both post-create opens hit the hot-inode path.
  EXPECT_EQ(fs_.counters().cached_opens, 2u);
  EXPECT_EQ(fs_.counters().opens, 0u);
}

TEST_F(SimFsTest, SerialTimeAdvances) {
  const double t0 = fs_.now_serial();
  { auto f = fs_.create("t"); ASSERT_TRUE(f.ok()); }
  EXPECT_GT(fs_.now_serial(), t0);
}

TEST_F(SimFsTest, BlockSizeMatchesConfig) {
  auto bs = fs_.block_size(".");
  ASSERT_TRUE(bs.ok());
  EXPECT_EQ(bs.value(), TestbedConfig().fs_block_size);
}

TEST_F(SimFsTest, PreadDiscardChargesAndCounts) {
  auto f = fs_.create("d");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, kMiB), 0).ok());
  const double t0 = fs_.now_serial();
  EXPECT_TRUE(f.value()->pread_discard(kMiB, 0).ok());
  EXPECT_GT(fs_.now_serial(), t0);
  EXPECT_EQ(fs_.counters().bytes_read, kMiB);
}

TEST_F(SimFsTest, StatPath) {
  { auto f = fs_.create("sp"); ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, 77), 0).ok()); }
  auto st = fs_.stat_path("sp");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 77u);
  EXPECT_FALSE(fs_.stat_path("zzz").ok());
}

// ---------------------------------------------------------------------------
// fault injection (fs/sim/fault.h)
// ---------------------------------------------------------------------------

TEST(GlobMatchTest, StarMatchesRuns) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything/at/all"));
  EXPECT_TRUE(glob_match("ckpt*", "ckpt.000001"));
  EXPECT_TRUE(glob_match("*.000002", "a.ckpt.b1.000002"));
  EXPECT_TRUE(glob_match("a*b*c", "a-x-b-y-c"));
  EXPECT_TRUE(glob_match("a*b*c", "abc"));
  EXPECT_FALSE(glob_match("a*b*c", "acb"));
  EXPECT_FALSE(glob_match("ckpt*", "x/ckpt"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_TRUE(glob_match("***", "ab"));
  EXPECT_FALSE(glob_match("*.json", "report.jso"));
}

class SimFaultTest : public ::testing::Test {
 protected:
  SimFaultTest() : fs_(TestbedConfig()) {}

  void put_file(const std::string& path, std::size_t size) {
    auto file = fs_.create(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(
        file.value()->pwrite(DataView::fill(std::byte{0x42}, size), 0).ok());
  }

  SimFs fs_;
};

TEST_F(SimFaultTest, LostFilesVanishFromTheNamespace) {
  put_file("keep.dat", 100);
  put_file("gone.dat", 100);
  FaultPlan plan;
  plan.lose("gone*");
  fs_.arm_faults(plan);
  EXPECT_EQ(fs_.fault_counters().files_lost, 1u);
  EXPECT_FALSE(fs_.exists("gone.dat"));
  EXPECT_EQ(fs_.open_read("gone.dat").status().code(), ErrorCode::kNotFound);
  EXPECT_TRUE(fs_.exists("keep.dat"));
  // Gone means gone: disarming does not resurrect the bytes.
  fs_.disarm_faults();
  EXPECT_FALSE(fs_.exists("gone.dat"));
}

TEST_F(SimFaultTest, SilentTruncationLeavesNoTrace) {
  put_file("t.dat", 1000);
  FaultPlan plan;
  plan.truncate("t.dat", 300);
  fs_.arm_faults(plan);
  EXPECT_EQ(fs_.fault_counters().files_truncated, 1u);
  auto file = fs_.open_read("t.dat");
  ASSERT_TRUE(file.ok());  // opens fine — that is the "silent" part
  EXPECT_EQ(file.value()->stat().value().size, 300u);
  std::vector<std::byte> buf(1000);
  auto got = file.value()->pread(buf, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 300u);
}

TEST_F(SimFaultTest, OpenAndDataErrorsFireDeterministically) {
  put_file("x.dat", 64);
  FaultPlan plan;
  plan.open_error("x.dat");
  fs_.arm_faults(plan);
  EXPECT_EQ(fs_.open_read("x.dat").status().code(), ErrorCode::kIoError);
  EXPECT_EQ(fs_.open_rw("x.dat").status().code(), ErrorCode::kIoError);
  EXPECT_EQ(fs_.create("x.dat").status().code(), ErrorCode::kIoError);
  EXPECT_EQ(fs_.fault_counters().open_errors, 3u);

  fs_.disarm_faults();
  auto file = fs_.open_rw("x.dat");
  ASSERT_TRUE(file.ok());
  FaultPlan rw;
  rw.read_error("x.dat").write_error("x.dat");
  fs_.arm_faults(rw);
  std::vector<std::byte> buf(16);
  EXPECT_EQ(file.value()->pread(buf, 0).status().code(), ErrorCode::kIoError);
  EXPECT_EQ(file.value()->pwrite(DataView(buf), 0).status().code(),
            ErrorCode::kIoError);
  EXPECT_EQ(fs_.fault_counters().read_errors, 1u);
  EXPECT_EQ(fs_.fault_counters().write_errors, 1u);
  fs_.disarm_faults();
  EXPECT_TRUE(file.value()->pread(buf, 0).ok());
}

TEST_F(SimFaultTest, ProbabilisticFaultsReplayIdentically) {
  // The same seed must fail the exact same operations on every run.
  const auto run_once = [&]() {
    SimFs fs(TestbedConfig());
    auto file = fs.create("p.dat");
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE(
        file.value()->pwrite(DataView::fill(std::byte{1}, 4096), 0).ok());
    FaultPlan plan;
    plan.seed = 1234;
    plan.read_error("p.dat", 0.5);
    fs.arm_faults(plan);
    std::vector<bool> outcomes;
    std::vector<std::byte> buf(16);
    for (int i = 0; i < 32; ++i) {
      outcomes.push_back(file.value()->pread(buf, 0).ok());
    }
    return outcomes;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  // A p=0.5 rule over 32 draws virtually surely fires at least once and
  // passes at least once.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(SimFaultTest, DegradedFileTransfersTakeLonger) {
  put_file("slow.dat", 1);
  put_file("fast.dat", 1);
  FaultPlan plan;
  plan.degrade("slow.dat", 0.1);
  fs_.arm_faults(plan);
  auto slow = fs_.open_rw("slow.dat");
  auto fast = fs_.open_rw("fast.dat");
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  const double t0 = fs_.now_serial();
  ASSERT_TRUE(
      fast.value()->pwrite(DataView::fill(std::byte{2}, 1 * kMiB), 0).ok());
  const double fast_cost = fs_.now_serial() - t0;
  const double t1 = fs_.now_serial();
  ASSERT_TRUE(
      slow.value()->pwrite(DataView::fill(std::byte{2}, 1 * kMiB), 0).ok());
  const double slow_cost = fs_.now_serial() - t1;
  EXPECT_GT(slow_cost, 2.0 * fast_cost);
  EXPECT_GT(fs_.fault_counters().degraded_ops, 0u);
}

TEST_F(SimFaultTest, OstRuleHitsFilesStripedOntoIt) {
  // TestbedConfig stripes every file over all 4 OSTs, so an OST-scoped
  // degrade rule must bind to any file.
  put_file("o.dat", 1);
  FaultPlan plan;
  plan.degrade_ost(0, 0.5);
  fs_.arm_faults(plan);
  auto file = fs_.open_rw("o.dat");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(
      file.value()->pwrite(DataView::fill(std::byte{3}, 256 * kKiB), 0).ok());
  EXPECT_GT(fs_.fault_counters().degraded_ops, 0u);
}

}  // namespace
}  // namespace sion::fs
