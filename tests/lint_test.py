#!/usr/bin/env python3
"""Unit tests for tools/sion_lint.py (ctest label: lint).

Every fixture under tests/lint_fixtures/ mimics the real src/ layout and
annotates each intended violation with `// sion-lint-expect: <rule>` on the
offending line. The main test runs the linter over the fixture tree and
requires the finding set to equal the expectation set exactly -- every rule
fires where expected, nowhere else, and suppression comments hold.
"""

import json
import os
import re
import subprocess
import sys
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
LINTER = os.path.join(REPO_ROOT, "tools", "sion_lint.py")
FIXTURE_ROOT = os.path.join(TESTS_DIR, "lint_fixtures")

EXPECT_RE = re.compile(r"sion-lint-expect:\s*([\w-]+)")


def run_linter(args):
    proc = subprocess.run(
        [sys.executable, LINTER] + args,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc


def expected_findings():
    expected = set()
    for dirpath, _dirs, files in os.walk(FIXTURE_ROOT):
        for name in sorted(files):
            if not name.endswith((".h", ".cpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, FIXTURE_ROOT).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    for rule in EXPECT_RE.findall(line):
                        expected.add((rel, lineno, rule))
    return expected


class FixtureTest(unittest.TestCase):
    """The fixture tree's findings must match its annotations exactly."""

    @classmethod
    def setUpClass(cls):
        proc = run_linter(["--root", FIXTURE_ROOT, "--json"])
        assert proc.returncode in (0, 1), proc.stderr
        cls.report = json.loads(proc.stdout)
        cls.returncode = proc.returncode
        cls.actual = {(f["file"], f["line"], f["rule"])
                      for f in cls.report["findings"]}
        cls.expected = expected_findings()

    def test_every_expected_violation_fires(self):
        missing = self.expected - self.actual
        self.assertFalse(
            missing, "rules that failed to fire: %s" % sorted(missing))

    def test_no_unexpected_findings(self):
        extra = self.actual - self.expected
        self.assertFalse(
            extra, "unexpected findings (false positives): %s" % sorted(extra))

    def test_every_rule_covered_by_a_fixture(self):
        fired = {rule for (_f, _l, rule) in self.expected}
        self.assertEqual(fired, set(self.report["rules"]),
                         "every shipped rule needs a fixture that proves it")

    def test_suppressions_counted(self):
        # suppressed_ok.cpp carries 4 allowed violations (2 wall-clock,
        # 1 env-access, 1 raw-random).
        self.assertEqual(self.report["suppressed"], 4)

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.returncode, 1)

    def test_messages_name_the_remedy(self):
        for f in self.report["findings"]:
            self.assertTrue(f["message"], "empty message for %s" % (f,))

    def test_findings_sorted_and_unique(self):
        keys = [(f["file"], f["line"], f["rule"])
                for f in self.report["findings"]]
        self.assertEqual(keys, sorted(keys))
        self.assertEqual(len(keys), len(set(keys)))


class CleanTreeTest(unittest.TestCase):
    def test_real_src_is_clean(self):
        """The gating contract: src/ lints clean (suppressions included)."""
        proc = run_linter([])
        self.assertEqual(
            proc.returncode, 0,
            "sion-lint found violations in src/:\n%s" % proc.stdout)

    def test_clean_fixture_subtree_exits_zero(self):
        proc = run_linter(["--root", FIXTURE_ROOT, "src/common", "--json"])
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertEqual(json.loads(proc.stdout)["findings"], [])


class CliTest(unittest.TestCase):
    def test_list_rules(self):
        proc = run_linter(["--list-rules"])
        self.assertEqual(proc.returncode, 0)
        for rule in ("wall-clock", "raw-random", "env-access",
                     "unordered-iteration", "stdout-logging", "naked-new",
                     "catch-all", "legacy-checkpoint-call"):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_a_usage_error(self):
        proc = run_linter(["does/not/exist"])
        self.assertEqual(proc.returncode, 2)

    def test_human_output_is_file_line_rule(self):
        proc = run_linter(["--root", FIXTURE_ROOT, "src/core"])
        self.assertEqual(proc.returncode, 1)
        self.assertRegex(proc.stdout,
                         r"src/core/catch_all_violation\.cpp:\d+: \[catch-all\]")


if __name__ == "__main__":
    unittest.main(verbosity=2)
