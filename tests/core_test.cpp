// Tests for the SION core library: layout math, metadata ser/de, file
// mapping, and full parallel/serial multifile roundtrips on both SimFs and
// PosixFs, including the failure modes (missing metablock 2, task count
// mismatch, corrupt headers).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "common/rng.h"
#include "common/strings.h"
#include "common/units.h"
#include "core/api.h"
#include "fs/posix_fs.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"

namespace sion::core {
namespace {

using fs::DataView;

std::vector<std::byte> rank_pattern(int rank, std::size_t n) {
  std::vector<std::byte> out(n);
  Rng rng(0xC0FFEE + static_cast<std::uint64_t>(rank));
  rng.fill_bytes(out);
  return out;
}

// ---------------------------------------------------------------------------
// FileLayout
// ---------------------------------------------------------------------------

TEST(FileLayoutTest, AlignsChunksToBlocks) {
  auto layout = FileLayout::create(4096, {100, 5000, 4096}, 300).value();
  EXPECT_EQ(layout.chunksize(0), 4096u);
  EXPECT_EQ(layout.chunksize(1), 8192u);
  EXPECT_EQ(layout.chunksize(2), 4096u);
  EXPECT_EQ(layout.block_span(), 4096u + 8192 + 4096);
  EXPECT_EQ(layout.data_start(), 4096u);  // meta1 of 300 B rounds up
  EXPECT_EQ(layout.chunk_offset_in_block(0), 0u);
  EXPECT_EQ(layout.chunk_offset_in_block(1), 4096u);
  EXPECT_EQ(layout.chunk_offset_in_block(2), 12288u);
}

TEST(FileLayoutTest, ChunkStartsNeverShareBlocks) {
  auto layout = FileLayout::create(4096, {1, 1, 1, 1}, 100).value();
  for (int t = 0; t < 4; ++t) {
    for (std::uint64_t b = 0; b < 3; ++b) {
      EXPECT_EQ(layout.chunk_start(t, b) % 4096, 0u)
          << "task " << t << " block " << b;
    }
  }
}

TEST(FileLayoutTest, BlocksTile) {
  auto layout = FileLayout::create(1024, {1000, 3000}, 10).value();
  EXPECT_EQ(layout.chunk_start(0, 1) - layout.chunk_start(0, 0),
            layout.block_span());
  EXPECT_EQ(layout.meta2_offset(2),
            layout.data_start() + 2 * layout.block_span());
}

TEST(FileLayoutTest, RejectsBadInput) {
  EXPECT_FALSE(FileLayout::create(0, {1}, 10).ok());
  EXPECT_FALSE(FileLayout::create(4096, {}, 10).ok());
  EXPECT_FALSE(FileLayout::create(4096, {0}, 10).ok());
}

// ---------------------------------------------------------------------------
// metadata
// ---------------------------------------------------------------------------

TEST(MetadataTest, HeaderRoundtrip) {
  FileHeader h;
  h.flags = kFlagChunkFrames;
  h.nblocks = 3;
  h.meta2_offset = 123456;
  h.fsblksize = 2 * kMiB;
  h.ntasks = 4;
  h.nfiles = 16;
  h.filenum = 7;
  h.global_ranks = {100, 101, 102, 103};
  h.chunksizes_req = {1, 2, 3, 4};
  auto parsed = FileHeader::parse(h.serialize()).value();
  EXPECT_EQ(parsed.flags, h.flags);
  EXPECT_EQ(parsed.nblocks, 3u);
  EXPECT_EQ(parsed.meta2_offset, 123456u);
  EXPECT_EQ(parsed.fsblksize, 2 * kMiB);
  EXPECT_EQ(parsed.ntasks, 4u);
  EXPECT_EQ(parsed.nfiles, 16u);
  EXPECT_EQ(parsed.filenum, 7u);
  EXPECT_EQ(parsed.global_ranks, h.global_ranks);
  EXPECT_EQ(parsed.chunksizes_req, h.chunksizes_req);
}

TEST(MetadataTest, TrailerFieldsAreAtFixedOffsets) {
  FileHeader h;
  h.nblocks = 0xAABBCCDD;
  h.meta2_offset = 0x11223344;
  h.fsblksize = 4096;
  h.ntasks = 1;
  h.global_ranks = {0};
  h.chunksizes_req = {1};
  const auto bytes = h.serialize();
  std::uint64_t nblocks = 0;
  std::uint64_t meta2 = 0;
  std::memcpy(&nblocks, bytes.data() + kTrailerNblocksOffset, 8);
  std::memcpy(&meta2, bytes.data() + kTrailerMeta2Offset, 8);
  EXPECT_EQ(nblocks, 0xAABBCCDDu);
  EXPECT_EQ(meta2, 0x11223344u);
}

TEST(MetadataTest, HeaderSizeIndependentOfTrailerValues) {
  FileHeader a;
  a.fsblksize = 4096;
  a.ntasks = 2;
  a.global_ranks = {0, 1};
  a.chunksizes_req = {10, 20};
  FileHeader b = a;
  b.nblocks = 99;
  b.meta2_offset = 1 << 30;
  // The reader recomputes data_start from a re-serialized header, so the
  // size must not depend on close-time values.
  EXPECT_EQ(a.serialize().size(), b.serialize().size());
}

TEST(MetadataTest, ParseRejectsGarbage) {
  std::vector<std::byte> junk(256, std::byte{0x5A});
  auto r = FileHeader::parse(junk);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorrupt);
}

TEST(MetadataTest, ParseRejectsBadVersion) {
  FileHeader h;
  h.fsblksize = 4096;
  h.ntasks = 1;
  h.global_ranks = {0};
  h.chunksizes_req = {1};
  auto bytes = h.serialize();
  bytes[8] = std::byte{99};  // version field
  EXPECT_FALSE(FileHeader::parse(bytes).ok());
}

TEST(MetadataTest, Meta2Roundtrip) {
  FileMeta2 m;
  m.bytes_written = {{100, 200, 0}, {50}, {}};
  EXPECT_EQ(m.nblocks(), 3u);
  auto parsed = FileMeta2::parse(m.serialize()).value();
  EXPECT_EQ(parsed.bytes_written, m.bytes_written);
}

TEST(MetadataTest, PhysicalFileNames) {
  EXPECT_EQ(physical_file_name("ckpt.sion", 0, 1), "ckpt.sion");
  EXPECT_EQ(physical_file_name("ckpt.sion", 0, 4), "ckpt.sion.000000");
  EXPECT_EQ(physical_file_name("ckpt.sion", 3, 4), "ckpt.sion.000003");
}

// ---------------------------------------------------------------------------
// FileMap
// ---------------------------------------------------------------------------

TEST(FileMapTest, Contiguous) {
  auto map = FileMap::contiguous(8, 2).value();
  for (int r = 0; r < 4; ++r) EXPECT_EQ(map.file_of(r), 0);
  for (int r = 4; r < 8; ++r) EXPECT_EQ(map.file_of(r), 1);
  EXPECT_EQ(map.local_index(0), 0);
  EXPECT_EQ(map.local_index(5), 1);
  EXPECT_EQ(map.tasks_in_file(0), 4);
}

TEST(FileMapTest, ContiguousUneven) {
  auto map = FileMap::contiguous(10, 3).value();
  int total = 0;
  for (int f = 0; f < 3; ++f) total += map.tasks_in_file(f);
  EXPECT_EQ(total, 10);
  // Every file gets at least floor(10/3) = 3 tasks.
  for (int f = 0; f < 3; ++f) EXPECT_GE(map.tasks_in_file(f), 3);
  // Ranks within a file stay in ascending order.
  int prev_file = 0;
  for (int r = 0; r < 10; ++r) {
    EXPECT_GE(map.file_of(r), prev_file);
    prev_file = map.file_of(r);
  }
}

TEST(FileMapTest, RoundRobin) {
  auto map = FileMap::round_robin(6, 2).value();
  EXPECT_EQ(map.file_of(0), 0);
  EXPECT_EQ(map.file_of(1), 1);
  EXPECT_EQ(map.file_of(2), 0);
  EXPECT_EQ(map.local_index(2), 1);
}

TEST(FileMapTest, CustomValidation) {
  EXPECT_TRUE(FileMap::custom({0, 1, 0}, 2).ok());
  EXPECT_FALSE(FileMap::custom({0, 2}, 2).ok());   // out of range
  EXPECT_FALSE(FileMap::custom({0, 0}, 2).ok());   // file 1 empty
  EXPECT_FALSE(FileMap::custom({}, 1).ok());
}

TEST(FileMapTest, BadCounts) {
  EXPECT_FALSE(FileMap::contiguous(4, 5).ok());  // more files than tasks
  EXPECT_FALSE(FileMap::contiguous(4, 0).ok());
  EXPECT_FALSE(FileMap::contiguous(0, 1).ok());
}

// ---------------------------------------------------------------------------
// Parallel roundtrips (SimFs)
// ---------------------------------------------------------------------------

struct RoundtripCase {
  int ntasks;
  int nfiles;
  std::uint64_t chunksize;
  std::uint64_t bytes_per_task;  // may exceed chunk -> multiple blocks
  bool frames;
};

class ParRoundtripTest : public ::testing::TestWithParam<RoundtripCase> {};

TEST_P(ParRoundtripTest, WriteThenReadBack) {
  const RoundtripCase c = GetParam();
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(c.ntasks, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "multi.sion";
    spec.chunksize = c.chunksize;
    spec.nfiles = c.nfiles;
    spec.chunk_frames = c.frames;
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok()) << open.status().to_string();
    auto& sion = *open.value();

    const auto data = rank_pattern(world.rank(), c.bytes_per_task);
    auto wrote = sion.write(DataView(data));
    ASSERT_TRUE(wrote.ok()) << wrote.status().to_string();
    EXPECT_EQ(wrote.value(), c.bytes_per_task);
    EXPECT_EQ(sion.bytes_written_total(), c.bytes_per_task);
    ASSERT_TRUE(sion.close().ok());

    auto ropen = SionParFile::open_read(fs, world, "multi.sion");
    ASSERT_TRUE(ropen.ok()) << ropen.status().to_string();
    auto& rsion = *ropen.value();
    EXPECT_EQ(rsion.bytes_remaining_total(), c.bytes_per_task);
    std::vector<std::byte> back(c.bytes_per_task);
    auto got = rsion.read(back);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), c.bytes_per_task);
    EXPECT_EQ(back, data);
    EXPECT_TRUE(rsion.eof());
    ASSERT_TRUE(rsion.close().ok());
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParRoundtripTest,
    ::testing::Values(
        RoundtripCase{1, 1, 1000, 1000, false},
        RoundtripCase{4, 1, 1000, 1000, false},
        RoundtripCase{4, 1, 70000, 300000, false},    // multiple blocks
        RoundtripCase{8, 4, 4096, 4096, false},       // multiple files
        RoundtripCase{8, 3, 1000, 9000, false},       // uneven files + blocks
        RoundtripCase{4, 1, 1000, 1000, true},        // recovery frames
        RoundtripCase{8, 2, 70000, 300000, true},     // frames + blocks + files
        RoundtripCase{16, 16, 4096, 8192, false}));   // one file per task

TEST(ParFileTest, EnsureFreeSpaceAdvancesBlocks) {
  fs::SimFs fs(fs::TestbedConfig());  // 64 KiB blocks
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "efs.sion";
    spec.chunksize = 64 * kKiB;
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    auto& sion = *open.value();

    // Fill most of the chunk, then demand more than the remainder.
    ASSERT_TRUE(sion.ensure_free_space(60 * kKiB).ok());
    ASSERT_TRUE(sion.write_raw(DataView::fill(std::byte{1}, 60 * kKiB)).ok());
    EXPECT_EQ(sion.current_block(), 0u);
    ASSERT_TRUE(sion.ensure_free_space(8 * kKiB).ok());
    EXPECT_EQ(sion.current_block(), 1u);  // rolled to a fresh chunk
    EXPECT_EQ(sion.position_in_chunk(), 0u);
    ASSERT_TRUE(sion.write_raw(DataView::fill(std::byte{2}, 8 * kKiB)).ok());
    ASSERT_TRUE(sion.close().ok());

    auto ropen = SionParFile::open_read(fs, world, "efs.sion");
    ASSERT_TRUE(ropen.ok());
    auto& rsion = *ropen.value();
    EXPECT_EQ(rsion.bytes_avail_in_chunk(), 60 * kKiB);
    std::vector<std::byte> buf(60 * kKiB);
    ASSERT_TRUE(rsion.read_raw(buf).ok());
    EXPECT_EQ(rsion.bytes_avail_in_chunk(), 0u);
    EXPECT_FALSE(rsion.eof());  // next chunk still has data
    std::vector<std::byte> rest(8 * kKiB);
    ASSERT_TRUE(rsion.read(rest).ok());
    EXPECT_EQ(rest[0], std::byte{2});
    EXPECT_TRUE(rsion.eof());
    ASSERT_TRUE(rsion.close().ok());
  });
}

TEST(ParFileTest, WriteRawRefusesToCrossChunk) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(1, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "raw.sion";
    spec.chunksize = 64 * kKiB;
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    auto& sion = *open.value();
    ASSERT_TRUE(sion.write_raw(DataView::fill(std::byte{1}, 60 * kKiB)).ok());
    auto r = sion.write_raw(DataView::fill(std::byte{1}, 8 * kKiB));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kOutOfRange);
    // ensure_free_space with an impossible request names the right fix.
    auto too_big = sion.ensure_free_space(1 * kMiB);
    EXPECT_EQ(too_big.code(), ErrorCode::kInvalidArgument);
    ASSERT_TRUE(sion.close().ok());
  });
}

TEST(ParFileTest, PerTaskChunkSizesDiffer) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "vary.sion";
    spec.chunksize = 1000 * static_cast<std::uint64_t>(world.rank() + 1);
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    auto& sion = *open.value();
    const auto data = rank_pattern(world.rank(),
                                   900 * static_cast<std::size_t>(world.rank() + 1));
    ASSERT_TRUE(sion.write(DataView(data)).ok());
    ASSERT_TRUE(sion.close().ok());

    auto ropen = SionParFile::open_read(fs, world, "vary.sion");
    ASSERT_TRUE(ropen.ok());
    std::vector<std::byte> back(data.size());
    ASSERT_TRUE(ropen.value()->read(back).ok());
    EXPECT_EQ(back, data);
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(ParFileTest, ChunksAreBlockAligned) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "align.sion";
    spec.chunksize = 1000;  // far below the 64 KiB fs block
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open.value()
                    ->write(DataView::fill(std::byte{1}, 500)).ok());
    ASSERT_TRUE(open.value()->close().ok());
  });
  // Block-granular write locks are on in the testbed config; aligned chunks
  // must never transfer a lock.
  EXPECT_EQ(fs.counters().lock_transfers, 0u);
}

TEST(ParFileTest, SIONCreateDoesOneCreatePerPhysicalFile) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(32, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "count.sion";
    spec.chunksize = 4096;
    spec.nfiles = 4;
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open.value()->close().ok());
  });
  EXPECT_EQ(fs.counters().creates, 4u);
  EXPECT_EQ(fs.counters().cached_opens, 28u);  // everyone else re-opens hot
}

TEST(ParFileTest, ZeroBytesTaskIsFine) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "zero.sion";
    spec.chunksize = 4096;
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    if (world.rank() == 2) {
      ASSERT_TRUE(open.value()
                      ->write(DataView::fill(std::byte{9}, 100)).ok());
    }
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = SionParFile::open_read(fs, world, "zero.sion");
    ASSERT_TRUE(ropen.ok());
    if (world.rank() == 2) {
      EXPECT_EQ(ropen.value()->bytes_remaining_total(), 100u);
    } else {
      EXPECT_TRUE(ropen.value()->eof());
      EXPECT_EQ(ropen.value()->bytes_remaining_total(), 0u);
    }
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(ParFileTest, ReadSkipAdvancesLikeRead) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "skip.sion";
    spec.chunksize = 10000;
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open.value()
                    ->write(DataView::fill(std::byte{1}, 25000)).ok());
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = SionParFile::open_read(fs, world, "skip.sion");
    ASSERT_TRUE(ropen.ok());
    ASSERT_TRUE(ropen.value()->read_skip(20000).ok());
    EXPECT_EQ(ropen.value()->bytes_remaining_total(), 5000u);
    ASSERT_TRUE(ropen.value()->read_skip(1 << 20).ok());  // clamped at eof
    EXPECT_TRUE(ropen.value()->eof());
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(ParFileTest, OpenReadWithWrongTaskCountFails) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "strict.sion";
    spec.chunksize = 4096;
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open.value()->close().ok());
  });
  engine.run(3, [&](par::Comm& world) {
    auto ropen = SionParFile::open_read(fs, world, "strict.sion");
    ASSERT_FALSE(ropen.ok());
    EXPECT_EQ(ropen.status().code(), ErrorCode::kInvalidArgument);
  });
}

TEST(ParFileTest, OpenReadOfUnclosedFileFails) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "crash.sion";
    spec.chunksize = 4096;
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open.value()
                    ->write(DataView::fill(std::byte{1}, 100)).ok());
    // Simulated crash: never call close(). Destructor logs, metablock 2
    // stays missing.
  });
  engine.run(2, [&](par::Comm& world) {
    auto ropen = SionParFile::open_read(fs, world, "crash.sion");
    ASSERT_FALSE(ropen.ok());
    EXPECT_EQ(ropen.status().code(), ErrorCode::kFailedPrecondition);
  });
}

TEST(ParFileTest, OpenMissingFileFailsEverywhere) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    auto ropen = SionParFile::open_read(fs, world, "never-written.sion");
    ASSERT_FALSE(ropen.ok());
    // Non-masters get the shared failure; master sees kNotFound itself.
    if (world.rank() == 0) {
      EXPECT_EQ(ropen.status().code(), ErrorCode::kNotFound);
    }
  });
}

TEST(ParFileTest, CustomMappingRoundtrip) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(6, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = "custom.sion";
    spec.chunksize = 4096;
    spec.nfiles = 2;
    spec.mapping = Mapping::kCustom;
    spec.custom_file_of_rank = {1, 0, 1, 0, 1, 0};
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok()) << open.status().to_string();
    EXPECT_EQ(open.value()->filenum(), world.rank() % 2 == 0 ? 1 : 0);
    const auto data = rank_pattern(world.rank(), 2222);
    ASSERT_TRUE(open.value()->write(DataView(data)).ok());
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = SionParFile::open_read(fs, world, "custom.sion");
    ASSERT_TRUE(ropen.ok()) << ropen.status().to_string();
    std::vector<std::byte> back(2222);
    ASSERT_TRUE(ropen.value()->read(back).ok());
    EXPECT_EQ(back, data);
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

// ---------------------------------------------------------------------------
// Parallel roundtrip on the real file system
// ---------------------------------------------------------------------------

TEST(ParFilePosixTest, RoundtripOnRealDisk) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("sion_core_posix_" + std::to_string(::getpid()));
  std::filesystem::create_directories(root);
  fs::PosixFs fs(/*block_size_override=*/64 * kKiB);
  par::Engine engine;
  const std::string name = (root / "real.sion").string();
  engine.run(8, [&](par::Comm& world) {
    ParOpenSpec spec;
    spec.filename = name;
    spec.chunksize = 50000;
    spec.nfiles = 2;
    auto open = SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok()) << open.status().to_string();
    const auto data = rank_pattern(world.rank(), 120000);  // 3 chunks
    ASSERT_TRUE(open.value()->write(DataView(data)).ok());
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = SionParFile::open_read(fs, world, name);
    ASSERT_TRUE(ropen.ok()) << ropen.status().to_string();
    std::vector<std::byte> back(120000);
    auto got = ropen.value()->read(back);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 120000u);
    EXPECT_EQ(back, data);
    ASSERT_TRUE(ropen.value()->close().ok());
  });
  // Two physical files on disk, none with the bare name.
  EXPECT_TRUE(std::filesystem::exists(name + ".000000"));
  EXPECT_TRUE(std::filesystem::exists(name + ".000001"));
  EXPECT_FALSE(std::filesystem::exists(name));
  std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// Serial API
// ---------------------------------------------------------------------------

class SerialFileTest : public ::testing::Test {
 protected:
  SerialFileTest() : fs_(fs::TestbedConfig()) {}

  // Write a multifile with `ntasks` logical files via the parallel API.
  void write_parallel(const std::string& name, int ntasks, int nfiles,
                      std::size_t bytes_per_task) {
    par::Engine engine;
    engine.run(ntasks, [&](par::Comm& world) {
      ParOpenSpec spec;
      spec.filename = name;
      spec.chunksize = 8000;
      spec.fsblksize = 4096;  // chunks align to 8192 -> small writes span chunks
      spec.nfiles = nfiles;
      auto open = SionParFile::open_write(fs_, world, spec);
      ASSERT_TRUE(open.ok()) << open.status().to_string();
      const auto data = rank_pattern(world.rank(), bytes_per_task);
      ASSERT_TRUE(open.value()->write(DataView(data)).ok());
      ASSERT_TRUE(open.value()->close().ok());
    });
  }

  fs::SimFs fs_;
};

TEST_F(SerialFileTest, GlobalViewReadsEveryRank) {
  write_parallel("g.sion", 6, 2, 20000);
  auto open = SionSerialFile::open_read(fs_, "g.sion");
  ASSERT_TRUE(open.ok()) << open.status().to_string();
  auto& sion = *open.value();
  const auto& loc = sion.locations();
  EXPECT_EQ(loc.nranks, 6);
  EXPECT_EQ(loc.nfiles, 2);
  EXPECT_EQ(loc.chunksizes.size(), 6u);
  for (int r = 0; r < 6; ++r) {
    ASSERT_TRUE(sion.seek(r, 0, 0).ok());
    std::vector<std::byte> back(20000);
    auto got = sion.read(back);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 20000u);
    EXPECT_EQ(back, rank_pattern(r, 20000)) << "rank " << r;
  }
  ASSERT_TRUE(sion.close().ok());
}

TEST_F(SerialFileTest, SeekWithinChunk) {
  write_parallel("seek.sion", 2, 1, 5000);
  auto open = SionSerialFile::open_read(fs_, "seek.sion");
  ASSERT_TRUE(open.ok());
  auto& sion = *open.value();
  ASSERT_TRUE(sion.seek(1, 0, 1000).ok());
  std::vector<std::byte> back(100);
  ASSERT_TRUE(sion.read(back).ok());
  const auto full = rank_pattern(1, 5000);
  EXPECT_EQ(0, std::memcmp(back.data(), full.data() + 1000, 100));
  // Seeking past the data is rejected.
  EXPECT_FALSE(sion.seek(1, 0, 5001).ok());
  EXPECT_FALSE(sion.seek(1, 7, 0).ok());
  EXPECT_FALSE(sion.seek(9, 0, 0).ok());
  ASSERT_TRUE(sion.close().ok());
}

TEST_F(SerialFileTest, TaskLocalViewIsPinned) {
  write_parallel("pin.sion", 4, 2, 3000);
  auto open = SionSerialFile::open_rank(fs_, "pin.sion", 2);
  ASSERT_TRUE(open.ok());
  auto& sion = *open.value();
  EXPECT_EQ(sion.current_rank(), 2);
  std::vector<std::byte> back(3000);
  ASSERT_TRUE(sion.read(back).ok());
  EXPECT_EQ(back, rank_pattern(2, 3000));
  EXPECT_TRUE(sion.eof());
  EXPECT_FALSE(sion.seek(1, 0, 0).ok());  // pinned
  EXPECT_TRUE(sion.seek(2, 0, 0).ok());
  EXPECT_FALSE(sion.eof());
  ASSERT_TRUE(sion.close().ok());
}

TEST_F(SerialFileTest, OpenRankOutOfRangeFails) {
  write_parallel("oor.sion", 2, 1, 10);
  EXPECT_FALSE(SionSerialFile::open_rank(fs_, "oor.sion", 5).ok());
  EXPECT_FALSE(SionSerialFile::open_rank(fs_, "oor.sion", -1).ok());
}

TEST_F(SerialFileTest, SerialWriteParallelRead) {
  {
    SerialWriteSpec spec;
    spec.filename = "sw.sion";
    spec.chunksizes = {1000, 2000, 3000};
    spec.nfiles = 2;
    auto open = SionSerialFile::open_write(fs_, spec);
    ASSERT_TRUE(open.ok()) << open.status().to_string();
    auto& sion = *open.value();
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(sion.seek(r, 0, 0).ok());
      const auto data =
          rank_pattern(r, 800 * static_cast<std::size_t>(r + 1));
      ASSERT_TRUE(sion.ensure_free_space(data.size()).ok());
      ASSERT_TRUE(sion.write_raw(DataView(data)).ok());
    }
    ASSERT_TRUE(sion.close().ok());
  }
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    auto ropen = SionParFile::open_read(fs_, world, "sw.sion");
    ASSERT_TRUE(ropen.ok()) << ropen.status().to_string();
    const std::size_t n = 800 * static_cast<std::size_t>(world.rank() + 1);
    std::vector<std::byte> back(n);
    auto got = ropen.value()->read(back);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), n);
    EXPECT_EQ(back, rank_pattern(world.rank(), n));
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST_F(SerialFileTest, SerialWriteMultiBlock) {
  SerialWriteSpec spec;
  spec.filename = "mb.sion";
  spec.chunksizes = {64 * kKiB, 64 * kKiB};
  auto open = SionSerialFile::open_write(fs_, spec);
  ASSERT_TRUE(open.ok());
  auto& sion = *open.value();
  ASSERT_TRUE(sion.seek(0, 0, 0).ok());
  // write() spills across chunk boundaries.
  const auto data = rank_pattern(0, 200 * 1024);
  ASSERT_TRUE(sion.write(DataView(data)).ok());
  ASSERT_TRUE(sion.close().ok());

  auto ropen = SionSerialFile::open_rank(fs_, "mb.sion", 0);
  ASSERT_TRUE(ropen.ok());
  std::vector<std::byte> back(200 * 1024);
  auto got = ropen.value()->read(back);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 200u * 1024);
  EXPECT_EQ(back, data);
  ASSERT_TRUE(ropen.value()->close().ok());
}

TEST_F(SerialFileTest, LocationsExposeBytesWritten) {
  write_parallel("loc.sion", 3, 1, 17000);  // 8000-byte chunks -> 3 blocks
  auto open = SionSerialFile::open_read(fs_, "loc.sion");
  ASSERT_TRUE(open.ok());
  const auto& loc = open.value()->locations();
  for (int r = 0; r < 3; ++r) {
    std::uint64_t total = 0;
    for (auto b : loc.bytes_written[static_cast<std::size_t>(r)]) total += b;
    EXPECT_EQ(total, 17000u);
    EXPECT_GE(loc.bytes_written[static_cast<std::size_t>(r)].size(), 3u);
  }
  ASSERT_TRUE(open.value()->close().ok());
}

}  // namespace
}  // namespace sion::core
