// Fixture: iterating an unordered container in a simulation directory must
// fire `unordered-iteration` -- for range-for, structured bindings, and
// explicit begin() loops, including via a type alias.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace sion::fs {

using InodeMap = std::unordered_map<std::uint64_t, std::string>;

struct Table {
  InodeMap inodes_;
  std::unordered_set<std::string> names_;

  std::uint64_t bad_sum() const {
    std::uint64_t sum = 0;
    for (const auto& [id, name] : inodes_) {  // sion-lint-expect: unordered-iteration
      sum += id + name.size();
    }
    for (auto it = names_.begin(); it != names_.end(); ++it) {  // sion-lint-expect: unordered-iteration
      sum += it->size();
    }
    return sum;
  }
};

}  // namespace sion::fs
