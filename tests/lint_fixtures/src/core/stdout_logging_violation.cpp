// Fixture: direct output in library code (anywhere under src/ except
// common/log.*) must fire `stdout-logging`. snprintf into a buffer is
// formatting, not output, and must NOT fire.
#include <cstdio>
#include <iostream>

namespace sion::core {

void bad_report(int nfiles) {
  std::printf("files: %d\n", nfiles);  // sion-lint-expect: stdout-logging
  std::cout << "done\n";  // sion-lint-expect: stdout-logging
  std::fprintf(stderr, "warn\n");  // sion-lint-expect: stdout-logging
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", nfiles);  // formatting: no finding
}

}  // namespace sion::core
