// Fixture: legacy-checkpoint-call is scoped to src/ext and src/workloads;
// a call from src/core (or tools/bench/examples, outside src/) is fine.
namespace sion::core {

struct Ctx;
int write_checkpoint(Ctx&);

int caller(Ctx& ctx) { return write_checkpoint(ctx); }

}  // namespace sion::core
