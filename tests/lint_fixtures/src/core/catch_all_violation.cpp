// Fixture: catch (...) anywhere under src/ must fire `catch-all`.
#include <stdexcept>

namespace sion::core {

int bad_swallow() {
  try {
    throw std::runtime_error("boom");
  } catch (...) {  // sion-lint-expect: catch-all
    return -1;
  }
}

}  // namespace sion::core
