// Fixture: host entropy in a simulation directory must fire `raw-random`.
#include <cstdlib>
#include <random>

namespace sion::par {

int bad_draws() {
  std::random_device dev;  // sion-lint-expect: raw-random
  std::mt19937 gen(dev());  // sion-lint-expect: raw-random
  return static_cast<int>(gen()) + rand();  // sion-lint-expect: raw-random
}

}  // namespace sion::par
