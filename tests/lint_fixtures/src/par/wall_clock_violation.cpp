// Fixture: host clocks in a simulation directory must fire `wall-clock`.
// Lines marked `sion-lint-expect: <rule>` are where lint_test.py requires a
// finding; any other finding in this tree fails the test.
#include <chrono>
#include <ctime>

namespace sion::par {

double bad_now() {
  const auto t =
      std::chrono::steady_clock::now();  // sion-lint-expect: wall-clock
  (void)t;
  std::time_t wall = std::time(nullptr);  // sion-lint-expect: wall-clock
  return static_cast<double>(wall);
}

// A mention of system_clock in a comment or string must NOT fire:
const char* kDoc = "never use std::chrono::system_clock::now() here";

}  // namespace sion::par
