// Fixture: `sion-lint: allow(<rule>)` suppressions -- same-line and
// previous-line forms -- must silence exactly the named rule. This file must
// produce zero findings.
#include <chrono>
#include <cstdlib>

namespace sion::par {

double justified_wall_clock() {
  // Hypothetical host-profiling hook; virtual time is not involved.
  const auto t0 =
      std::chrono::steady_clock::now();  // sion-lint: allow(wall-clock)
  // sion-lint: allow(wall-clock)
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// A multi-rule allow list suppresses each named rule.
// sion-lint: allow(env-access, raw-random)
int justified_env_and_rand() { return std::getenv("HOME") ? rand() : 0; }

}  // namespace sion::par
