// Fixture: environment access in a simulation directory must fire
// `env-access`.
#include <cstdlib>

namespace sion::ext {

const char* bad_config() {
  return std::getenv("SION_SCALE");  // sion-lint-expect: env-access
}

}  // namespace sion::ext
