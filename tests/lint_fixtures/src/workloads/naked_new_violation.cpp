// Fixture: naked allocation in a simulation directory must fire `naked-new`;
// the `unique_ptr<T>(new T)` private-constructor idiom must NOT fire.
#include <cstdlib>
#include <memory>

namespace sion::workloads {

struct Particle {
  double x = 0.0;
};

double bad_alloc_patterns(int n) {
  auto* raw = new Particle[static_cast<std::size_t>(n)];  // sion-lint-expect: naked-new
  void* blob = std::malloc(64);  // sion-lint-expect: naked-new
  std::free(blob);  // sion-lint-expect: naked-new
  const double x = raw[0].x;
  delete[] raw;
  auto owned = std::unique_ptr<Particle>(new Particle());  // wrapped: ok
  return x + owned->x;
}

}  // namespace sion::workloads
