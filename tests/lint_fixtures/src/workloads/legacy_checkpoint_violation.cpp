// Fixture: direct calls to the legacy one-shot checkpoint free functions in
// library internals must fire `legacy-checkpoint-call`. A mention of
// write_checkpoint in a comment or string must not.
namespace sion::workloads {

struct Ctx;
extern int (*write_checkpoint)(Ctx&);
extern int (*read_checkpoint)(Ctx&);

int internal_save(Ctx& ctx) {
  // write_checkpoint(ctx) in a comment never fires.
  const char* label = "write_checkpoint(in a string)";
  (void)label;
  return write_checkpoint(ctx);  // sion-lint-expect: legacy-checkpoint-call
}

int internal_load(Ctx& ctx) {
  return read_checkpoint(ctx);  // sion-lint-expect: legacy-checkpoint-call
}

}  // namespace sion::workloads
