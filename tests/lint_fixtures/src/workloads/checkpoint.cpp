// Fixture: the compatibility wrapper's own implementation file is exempt
// from `legacy-checkpoint-call` -- it IS the legacy surface.
namespace sion::workloads {

struct Ctx;
int write_checkpoint(Ctx&);

int wrapper(Ctx& ctx) { return write_checkpoint(ctx); }

}  // namespace sion::workloads
