// Fixture: a clean file, plus patterns that are out of scope by directory --
// src/common/ is not a simulation directory, so env access and ordered
// iteration here must NOT fire. This file must produce zero findings.
#include <cstdlib>
#include <map>
#include <string>

namespace sion {

// Determinism rules are scoped to sim dirs; common/ may read the host env
// (e.g. the log level).
const char* log_level() { return std::getenv("SION_LOG_LEVEL"); }

// Ordered containers iterate deterministically anywhere.
std::size_t total(const std::map<std::string, std::size_t>& sizes) {
  std::size_t sum = 0;
  for (const auto& [name, size] : sizes) sum += name.size() + size;
  return sum;
}

}  // namespace sion
