// Fixture: src/common/log.* is the one place in the library allowed to own
// an output stream -- `stdout-logging` must NOT fire here.
#pragma once

#include <cstdio>

namespace sion {

inline void emit(const char* message) { std::fprintf(stderr, "%s\n", message); }

}  // namespace sion
