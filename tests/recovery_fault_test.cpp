// Crash-injection battery for ext::repair_multifile: multifiles are
// programmatically truncated and corrupted at adversarial offsets —
// mid-chunk, mid-frame, a lost metablock 2 on one of several physical
// files — and repair must either fully restore the file or fail cleanly
// with a diagnostic. The one behavior these tests exist to forbid is a
// repair that "succeeds" and then hands back wrong or silently shortened
// data.
#include <gtest/gtest.h>

#include <cstring>

#include "common/codec.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/recovery.h"
#include "ext/remap.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"

namespace sion::ext {
namespace {

using fs::DataView;

class RecoveryFaultTest : public ::testing::Test {
 protected:
  RecoveryFaultTest() : fs_(fs::TestbedConfig()) {}

  static std::vector<std::byte> payload_of(int rank,
                                           std::uint64_t bytes_per_task) {
    std::vector<std::byte> data(bytes_per_task);
    Rng rng(9100 + static_cast<std::uint64_t>(rank));
    rng.fill_bytes(data);
    return data;
  }

  // Write a frames-enabled multifile; with `crash`, skip the collective
  // close so metablock 2 is missing (the paper's premature-termination
  // failure mode).
  void write_multifile(const std::string& name, int ntasks, int nfiles,
                       std::uint64_t bytes_per_task, bool crash) {
    par::Engine engine;
    engine.run(ntasks, [&](par::Comm& world) {
      core::ParOpenSpec spec;
      spec.filename = name;
      spec.chunksize = 3000;  // several blocks per task
      spec.fsblksize = 1 * kKiB;
      spec.nfiles = nfiles;
      spec.chunk_frames = true;
      auto open = core::SionParFile::open_write(fs_, world, spec);
      ASSERT_TRUE(open.ok()) << open.status().to_string();
      const auto data = payload_of(world.rank(), bytes_per_task);
      ASSERT_TRUE(open.value()->write(DataView(data)).ok());
      if (!crash) {
        ASSERT_TRUE(open.value()->close().ok());
      }
    });
  }

  // Geometry of one physical file, reconstructed exactly like the repair
  // tool does — used to aim the fault injections.
  struct Geometry {
    core::FileHeader header;
    core::FileLayout layout;
  };
  Geometry geometry_of(const std::string& path) {
    auto file = fs_.open_read(path);
    EXPECT_TRUE(file.ok());
    auto header = core::read_header(*file.value());
    EXPECT_TRUE(header.ok());
    auto layout = core::FileLayout::create(
        header.value().fsblksize, header.value().chunksizes_req,
        header.value().serialize().size());
    EXPECT_TRUE(layout.ok());
    return Geometry{std::move(header).value(), std::move(layout).value()};
  }

  void overwrite(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> bytes) {
    auto file = fs_.open_rw(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->pwrite(DataView(bytes), offset).ok());
  }

  void verify_full_restore(const std::string& name, int ntasks,
                           std::uint64_t bytes_per_task) {
    par::Engine engine;
    engine.run(ntasks, [&](par::Comm& world) {
      auto ropen = core::SionParFile::open_read(fs_, world, name);
      ASSERT_TRUE(ropen.ok()) << ropen.status().to_string();
      const auto expect = payload_of(world.rank(), bytes_per_task);
      std::vector<std::byte> back(bytes_per_task);
      auto got = ropen.value()->read(back);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), bytes_per_task);
      EXPECT_EQ(back, expect);
      ASSERT_TRUE(ropen.value()->close().ok());
    });
  }

  fs::SimFs fs_;
};

// ---------------------------------------------------------------------------
// truncation
// ---------------------------------------------------------------------------

TEST_F(RecoveryFaultTest, TruncationMidChunkFailsCleanly) {
  write_multifile("trunc.sion", 4, 1, 8000, /*crash=*/true);
  const Geometry geo = geometry_of("trunc.sion");
  // Cut into the middle of task 2's block-1 chunk payload: its frame
  // promises bytes the file no longer holds.
  const std::uint64_t cut =
      geo.layout.chunk_start(2, 1) + core::kChunkFrameSize + 100;
  {
    auto file = fs_.open_rw("trunc.sion");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->truncate(cut).ok());
  }
  auto report = repair_multifile(fs_, "trunc.sion");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kCorrupt);
  EXPECT_NE(report.status().message().find("truncated"), std::string::npos)
      << report.status().to_string();
}

TEST_F(RecoveryFaultTest, TruncationOfWholeTrailingBlocksRecoversThePrefix) {
  write_multifile("trunc2.sion", 3, 1, 8000, /*crash=*/true);
  const Geometry geo = geometry_of("trunc2.sion");
  // Chop every block-2 chunk including its frame. No frame then promises
  // bytes the file lacks, which is indistinguishable from a crash that
  // never entered block 2 — so repair recovers the consistent block-0/1
  // prefix, and reads must return exactly that prefix, never garbage.
  const std::uint64_t cut = geo.layout.chunk_start(0, 2) + 10;
  {
    auto file = fs_.open_rw("trunc2.sion");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->truncate(cut).ok());
  }
  auto report = repair_multifile(fs_, "trunc2.sion");
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().repaired_files, 1);
  // 3000-byte chunks at 1 KiB blocks: 3072-byte aligned chunks, 3008 usable
  // after the frame; blocks 0+1 hold a 6016-byte prefix of each stream.
  const std::uint64_t prefix = 2 * (3 * kKiB - core::kChunkFrameSize);
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    auto ropen = core::SionParFile::open_read(fs_, world, "trunc2.sion");
    ASSERT_TRUE(ropen.ok()) << ropen.status().to_string();
    const auto expect = payload_of(world.rank(), 8000);
    std::vector<std::byte> back(8000);
    auto got = ropen.value()->read(back);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value(), prefix);
    EXPECT_TRUE(std::memcmp(back.data(), expect.data(), prefix) == 0);
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

// ---------------------------------------------------------------------------
// mid-frame corruption
// ---------------------------------------------------------------------------

TEST_F(RecoveryFaultTest, CorruptedFrameMagicMidChainFailsCleanly) {
  write_multifile("magic.sion", 4, 1, 8000, /*crash=*/true);
  const Geometry geo = geometry_of("magic.sion");
  // Destroy the magic of task 1's block-0 frame; its block-1 frame stays
  // valid, so "task never entered block 0" is provably false.
  const std::vector<std::byte> junk(8, std::byte{0x5A});
  overwrite("magic.sion", geo.layout.chunk_start(1, 0), junk);
  auto report = repair_multifile(fs_, "magic.sion");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kCorrupt);
}

TEST_F(RecoveryFaultTest, BitFlippedByteCountInFrameIsDetected) {
  write_multifile("flip.sion", 4, 1, 8000, /*crash=*/true);
  const Geometry geo = geometry_of("flip.sion");
  // Flip one byte inside the bytes-written field of task 3's block-0 frame
  // (offset 24 within the frame). Without an integrity check the repair
  // would rebuild metablock 2 from the flipped value and reads would hand
  // back the wrong number of bytes — silently.
  const std::uint64_t field = geo.layout.chunk_start(3, 0) + 24;
  std::vector<std::byte> flipped(1);
  {
    auto file = fs_.open_read("flip.sion");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->pread(flipped, field).ok());
  }
  flipped[0] ^= std::byte{0x04};
  overwrite("flip.sion", field, flipped);
  auto report = repair_multifile(fs_, "flip.sion");
  // The checksum no longer matches, so the frame reads as damaged; block 1
  // of the same task still has a valid frame -> broken chain, clean error.
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kCorrupt);
}

TEST_F(RecoveryFaultTest, ForgedOversizedByteCountIsRejected) {
  write_multifile("forge.sion", 2, 1, 1000, /*crash=*/true);
  const Geometry geo = geometry_of("forge.sion");
  // Forge a frame with a *consistent* checksum but a byte count larger than
  // the chunk can hold: the capacity cross-check must catch what the
  // checksum cannot.
  ByteWriter w;
  const char kFrameMagic[8] = {'S', 'I', 'O', 'N', 'F', 'R', 'M', '1'};
  w.put_bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(kFrameMagic), sizeof(kFrameMagic)));
  w.put_u32(1);  // global rank
  w.put_u32(1);  // local rank
  w.put_u64(0);  // block
  const std::uint64_t absurd = geo.layout.chunksize(1) * 100;
  w.put_u64(absurd);
  w.put_u64(core::chunk_frame_checksum(1, 1, 0, absurd));
  w.pad_to(core::kChunkFrameSize);
  overwrite("forge.sion", geo.layout.chunk_start(1, 0), w.bytes());
  auto report = repair_multifile(fs_, "forge.sion");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kCorrupt);
  EXPECT_NE(report.status().message().find("at most"), std::string::npos)
      << report.status().to_string();
}

TEST_F(RecoveryFaultTest, TornFinalFrameRecoversThePrefix) {
  // A torn patch on the *last* block is the normal crash artifact (the
  // application died mid-write): repair keeps the consistent prefix and
  // the file opens cleanly — this is recovery, not data loss.
  write_multifile("torn.sion", 2, 1, 7000, /*crash=*/true);
  const Geometry geo = geometry_of("torn.sion");
  // Task 0 entered blocks 0..2; damage its LAST frame (block 2).
  const std::vector<std::byte> junk(8, std::byte{0xEE});
  overwrite("torn.sion", geo.layout.chunk_start(0, 2), junk);
  auto report = repair_multifile(fs_, "torn.sion");
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().repaired_files, 1);
  // The repaired file opens and reads a clean prefix of task 0's stream.
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    auto ropen = core::SionParFile::open_read(fs_, world, "torn.sion");
    ASSERT_TRUE(ropen.ok()) << ropen.status().to_string();
    const auto expect = payload_of(world.rank(), 7000);
    std::vector<std::byte> back(7000);
    auto got = ropen.value()->read(back);
    ASSERT_TRUE(got.ok());
    if (world.rank() == 0) {
      // Prefix only: the final chunk's record was torn away.
      ASSERT_LT(got.value(), 7000u);
    } else {
      ASSERT_EQ(got.value(), 7000u);
    }
    EXPECT_TRUE(std::memcmp(back.data(), expect.data(), got.value()) == 0);
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

// ---------------------------------------------------------------------------
// lost metablock 2 on one of several physical files
// ---------------------------------------------------------------------------

TEST_F(RecoveryFaultTest, LostMeta2OnOnePhysicalFileIsRebuilt) {
  write_multifile("multi.sion", 9, 3, 6000, /*crash=*/false);
  // File 1 of 3 loses its metablock 2: trailer zeroed and the tail chopped,
  // exactly as if that file's close never completed.
  const std::string victim = core::physical_file_name("multi.sion", 1, 3);
  const Geometry geo = geometry_of(victim);
  {
    auto file = fs_.open_rw(victim);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->truncate(geo.header.meta2_offset).ok());
    const std::vector<std::byte> zeros(16, std::byte{0});
    ASSERT_TRUE(
        file.value()->pwrite(DataView(zeros), core::kTrailerNblocksOffset).ok());
  }
  // Damaged: the set no longer opens.
  {
    par::Engine engine;
    engine.run(9, [&](par::Comm& world) {
      EXPECT_FALSE(core::SionParFile::open_read(fs_, world, "multi.sion").ok());
    });
  }
  auto report = repair_multifile(fs_, "multi.sion");
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().physical_files, 3);
  EXPECT_EQ(report.value().repaired_files, 1);
  EXPECT_EQ(report.value().intact_files, 2);
  verify_full_restore("multi.sion", 9, 6000);
}

TEST_F(RecoveryFaultTest, ForgedTinyChunkHeaderIsRejected) {
  // Rewrite metablock 1 so the chunks are smaller than a recovery frame
  // (the write path forbids this, so only a damaged header can claim it):
  // without the explicit guard the capacity bound underflows and a forged
  // frame could claim payload reaching into other tasks' chunks.
  write_multifile("tiny.sion", 2, 1, 1000, /*crash=*/true);
  Geometry geo = geometry_of("tiny.sion");
  geo.header.fsblksize = 1;
  for (auto& c : geo.header.chunksizes_req) c = 1;
  // Same task count and array lengths -> identical serialized size, so the
  // forged metablock overwrites the original in place.
  overwrite("tiny.sion", 0, geo.header.serialize());
  auto report = repair_multifile(fs_, "tiny.sion");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kCorrupt);
  EXPECT_NE(report.status().message().find("recovery frame"),
            std::string::npos)
      << report.status().to_string();
}

TEST_F(RecoveryFaultTest, CorruptedHeaderFailsCleanly) {
  write_multifile("hdr.sion", 2, 1, 1000, /*crash=*/true);
  const std::vector<std::byte> junk(8, std::byte{0x00});
  overwrite("hdr.sion", 0, junk);
  auto report = repair_multifile(fs_, "hdr.sion");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kCorrupt);
}

// ---------------------------------------------------------------------------
// repair composes with N->M restart
// ---------------------------------------------------------------------------

TEST_F(RecoveryFaultTest, RepairedCheckpointRestoresAtDifferentScale) {
  write_multifile("rr.sion", 8, 2, 5000, /*crash=*/true);
  ASSERT_TRUE(repair_multifile(fs_, "rr.sion").ok());

  std::vector<std::byte> expect;
  for (int r = 0; r < 8; ++r) {
    const auto mine = payload_of(r, 5000);
    expect.insert(expect.end(), mine.begin(), mine.end());
  }
  std::vector<std::byte> got(expect.size());
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    auto remap = Remap::open(fs_, world, "rr.sion");
    ASSERT_TRUE(remap.ok()) << remap.status().to_string();
    const std::uint64_t lo = remap.value()->even_share_offset(world.rank());
    std::vector<std::byte> mine(remap.value()->even_share(world.rank()));
    auto stats = remap.value()->restore(mine, mine.size());
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    std::memcpy(got.data() + lo, mine.data(), mine.size());
    ASSERT_TRUE(remap.value()->close().ok());
  });
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace sion::ext
