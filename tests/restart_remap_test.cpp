// N->M checkpoint restart through ext::Remap: a multifile written by N
// tasks restores byte-identically onto M tasks for M below, equal to, and
// above N (including serial M=1), for plain, collective/kPacked, and
// multi-block writers — the restart scenario the paper's global-view
// metadata (sections 3.2.3/3.3) exists to enable.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/remap.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"

namespace sion::ext {
namespace {

using fs::DataView;

// Payload rank r of an N-writer run contributes: size and content both vary
// with the rank so any mis-routed byte range is detected.
std::vector<std::byte> rank_payload(int rank) {
  std::vector<std::byte> data(512 + 37 * static_cast<std::size_t>(rank));
  Rng rng(4200 + static_cast<std::uint64_t>(rank));
  rng.fill_bytes(data);
  return data;
}

std::vector<std::byte> concatenated_payload(int nwriters) {
  std::vector<std::byte> all;
  for (int r = 0; r < nwriters; ++r) {
    const auto mine = rank_payload(r);
    all.insert(all.end(), mine.begin(), mine.end());
  }
  return all;
}

// Contiguous even byte partition of `total` over `msize` tasks.
std::uint64_t share_offset(std::uint64_t total, int msize, int rank) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(total) *
      static_cast<std::uint64_t>(rank) / static_cast<std::uint64_t>(msize));
}

class RestartRemapTest : public ::testing::TestWithParam<bool> {
 protected:
  RestartRemapTest() : fs_(fs::TestbedConfig()) {}

  // Write the checkpoint with N writers, collectively aggregated (kPacked)
  // or plain per the test parameter.
  void write_checkpoint_at(int nwriters, const std::string& path) {
    workloads::CheckpointSpec spec;
    spec.path = path;
    if (GetParam()) {
      ext::CollectiveConfig aggregation;
      aggregation.alignment = ext::CollectiveConfig::Alignment::kPacked;
      aggregation.group_size = 8;
      spec.collective = aggregation;
    }
    par::Engine engine;
    engine.run(nwriters, [&](par::Comm& world) {
      const auto mine = rank_payload(world.rank());
      ASSERT_TRUE(
          workloads::write_checkpoint(fs_, world, spec, DataView(mine)).ok());
    });
  }

  // Restore at M tasks through workloads::read_checkpoint with the
  // restart_ntasks knob and reassemble the received slices.
  void restore_and_check(int nwriters, int mtasks, const std::string& path) {
    const std::vector<std::byte> expect = concatenated_payload(nwriters);
    const std::uint64_t total = expect.size();
    std::vector<std::byte> got(expect.size());
    workloads::CheckpointSpec spec;
    spec.path = path;
    spec.restart_ntasks = mtasks;
    par::Engine engine;
    engine.run(mtasks, [&](par::Comm& world) {
      const std::uint64_t lo = share_offset(total, mtasks, world.rank());
      const std::uint64_t hi = share_offset(total, mtasks, world.rank() + 1);
      std::vector<std::byte> mine(hi - lo);
      ASSERT_TRUE(workloads::read_checkpoint(fs_, world, spec, mine.size(),
                                             mine)
                      .ok());
      std::memcpy(got.data() + lo, mine.data(), mine.size());
    });
    EXPECT_EQ(got, expect) << "N=" << nwriters << " M=" << mtasks;
  }

  fs::SimFs fs_;
};

TEST_P(RestartRemapTest, N64RestoresAtAllScales) {
  const int kWriters = 64;
  write_checkpoint_at(kWriters, "n64.ckpt");
  for (const int mtasks : {1, 16, 96, 256}) {
    restore_and_check(kWriters, mtasks, "n64.ckpt");
  }
}

TEST_P(RestartRemapTest, SameTaskCountIsIdentity) {
  write_checkpoint_at(16, "n16.ckpt");
  restore_and_check(16, 16, "n16.ckpt");
}

TEST_P(RestartRemapTest, MultiplePhysicalFiles) {
  workloads::CheckpointSpec spec;
  spec.path = "nf3.ckpt";
  spec.nfiles = 3;
  if (GetParam()) {
    spec.collective = ext::CollectiveConfig{.group_size = 4};
  }
  par::Engine engine;
  engine.run(24, [&](par::Comm& world) {
    const auto mine = rank_payload(world.rank());
    ASSERT_TRUE(
        workloads::write_checkpoint(fs_, world, spec, DataView(mine)).ok());
  });
  restore_and_check(24, 7, "nf3.ckpt");
  restore_and_check(24, 40, "nf3.ckpt");
}

INSTANTIATE_TEST_SUITE_P(PlainAndCollective, RestartRemapTest,
                         ::testing::Values(false, true),
                         [](const auto& param_info) {
                           return param_info.param ? "CollectivePacked"
                                                   : "Plain";
                         });

// ---------------------------------------------------------------------------
// Direct ext::Remap API
// ---------------------------------------------------------------------------

class RemapApiTest : public ::testing::Test {
 protected:
  RemapApiTest() : fs_(fs::TestbedConfig()) {}
  fs::SimFs fs_;
};

TEST_F(RemapApiTest, MultiBlockStreamsCrossChunkBoundaries) {
  // Small chunks force every stream across several chunk blocks, so the
  // redistribution exercises core read_at's block walk, and a wave size
  // smaller than a stream exercises the bounded pipeline.
  par::Engine engine;
  engine.run(6, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "blocks.sion";
    spec.chunksize = 1000;
    spec.fsblksize = 512;
    auto sion = core::SionParFile::open_write(fs_, world, spec);
    ASSERT_TRUE(sion.ok());
    std::vector<std::byte> data(5000);
    Rng rng(100 + static_cast<std::uint64_t>(world.rank()));
    rng.fill_bytes(data);
    ASSERT_TRUE(sion.value()->write(DataView(data)).ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });

  std::vector<std::byte> expect;
  for (int r = 0; r < 6; ++r) {
    std::vector<std::byte> data(5000);
    Rng rng(100 + static_cast<std::uint64_t>(r));
    rng.fill_bytes(data);
    expect.insert(expect.end(), data.begin(), data.end());
  }

  std::vector<std::byte> got(expect.size());
  engine.run(4, [&](par::Comm& world) {
    RemapConfig config;
    config.buffer_bytes = 700;  // several waves per stream
    auto remap = Remap::open(fs_, world, "blocks.sion", config);
    ASSERT_TRUE(remap.ok()) << remap.status().to_string();
    EXPECT_EQ(remap.value()->nwriters(), 6);
    EXPECT_EQ(remap.value()->total_bytes(), 30000u);
    const std::uint64_t lo = remap.value()->even_share_offset(world.rank());
    const std::uint64_t want = remap.value()->even_share(world.rank());
    std::vector<std::byte> mine(want);
    auto stats = remap.value()->restore(mine, want);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    std::memcpy(got.data() + lo, mine.data(), mine.size());
    // Conservation: everything delivered to this task arrived either from
    // the network or from its own disk reads.
    EXPECT_EQ(stats.value().bytes_received + stats.value().bytes_local, want);
    ASSERT_TRUE(remap.value()->close().ok());
  });
  EXPECT_EQ(got, expect);
}

TEST_F(RemapApiTest, EvenSharesTileTheStream) {
  par::Engine engine;
  engine.run(5, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "tile.sion";
    spec.chunksize = 4096;
    auto sion = core::SionParFile::open_write(fs_, world, spec);
    ASSERT_TRUE(sion.ok());
    ASSERT_TRUE(sion.value()
                    ->write(DataView::fill(std::byte{7},
                                           100 + 13 * static_cast<std::uint64_t>(
                                                          world.rank())))
                    .ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });
  engine.run(3, [&](par::Comm& world) {
    auto remap = Remap::open(fs_, world, "tile.sion");
    ASSERT_TRUE(remap.ok());
    std::uint64_t sum = 0;
    for (int r = 0; r < world.size(); ++r) {
      sum += remap.value()->even_share(r);
    }
    EXPECT_EQ(sum, remap.value()->total_bytes());
    // Timing-only restore with the even partition.
    auto stats =
        remap.value()->restore({}, remap.value()->even_share(world.rank()));
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    ASSERT_TRUE(remap.value()->close().ok());
  });
}

TEST_F(RemapApiTest, WantMismatchFailsEverywhere) {
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "bad.sion";
    spec.chunksize = 1024;
    auto sion = core::SionParFile::open_write(fs_, world, spec);
    ASSERT_TRUE(sion.ok());
    ASSERT_TRUE(sion.value()->write(DataView::fill(std::byte{1}, 100)).ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });
  engine.run(2, [&](par::Comm& world) {
    auto remap = Remap::open(fs_, world, "bad.sion");
    ASSERT_TRUE(remap.ok());
    // 2 * 150 != 400: every task must see the same clean failure.
    auto stats = remap.value()->restore({}, 150);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), ErrorCode::kInvalidArgument);
    ASSERT_TRUE(remap.value()->close().ok());
  });
}

TEST_F(RemapApiTest, MissingFileFailsOnEveryTask) {
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    auto remap = Remap::open(fs_, world, "nope.sion");
    EXPECT_FALSE(remap.ok());
  });
}

TEST_F(RemapApiTest, ManyMoreReadersThanStreamsLeavesIdlersOffDisk) {
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "two.sion";
    spec.chunksize = 4096;
    auto sion = core::SionParFile::open_write(fs_, world, spec);
    ASSERT_TRUE(sion.ok());
    ASSERT_TRUE(sion.value()->write(DataView::fill(std::byte{9}, 2000)).ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });
  // Tasks are cooperatively scheduled fibers, so a plain counter is safe.
  std::uint64_t disk_readers = 0;
  engine.run(13, [&](par::Comm& world) {
    auto remap = Remap::open(fs_, world, "two.sion");
    ASSERT_TRUE(remap.ok());
    if (remap.value()->nstreams() > 0) ++disk_readers;
    std::vector<std::byte> mine(remap.value()->even_share(world.rank()));
    auto stats = remap.value()->restore(mine, mine.size());
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    ASSERT_TRUE(remap.value()->close().ok());
  });
  // Only as many tasks touch the file system as there are source streams.
  EXPECT_LE(disk_readers, 2u);
  EXPECT_GE(disk_readers, 1u);
}

}  // namespace
}  // namespace sion::ext
