// Buddy-redundancy fault battery: checkpoints written with ext::Buddy must
// restore byte-identically after the loss of any r-1 failure domains —
// whole physical files deleted, silently truncated, or erroring at
// open/read time — at any restart scale M, for plain and collective/kPacked
// layouts alike. The one behavior these tests exist to forbid is a restore
// that "succeeds" with wrong bytes; unrecoverable scenarios must fail
// cleanly on every task instead of hanging or fabricating data.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/buddy.h"
#include "fs/sim/fault.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"

namespace sion::ext {
namespace {

using fs::DataView;
using fs::FaultPlan;

// Size and content both vary with the rank so any mis-routed or stale byte
// range is detected.
std::vector<std::byte> rank_payload(int rank) {
  std::vector<std::byte> data(512 + 37 * static_cast<std::size_t>(rank));
  Rng rng(7700 + static_cast<std::uint64_t>(rank));
  rng.fill_bytes(data);
  return data;
}

std::vector<std::byte> concatenated_payload(int nwriters) {
  std::vector<std::byte> all;
  for (int r = 0; r < nwriters; ++r) {
    const auto mine = rank_payload(r);
    all.insert(all.end(), mine.begin(), mine.end());
  }
  return all;
}

std::uint64_t share_offset(std::uint64_t total, int msize, int rank) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(total) *
      static_cast<std::uint64_t>(rank) / static_cast<std::uint64_t>(msize));
}

// Parameter: collective/kPacked aggregation on or off (both the primary
// and the replica copy traffic route through it).
class BuddyFaultTest : public ::testing::TestWithParam<bool> {
 protected:
  BuddyFaultTest() : fs_(fs::TestbedConfig()) {}

  workloads::CheckpointSpec buddy_spec(const std::string& path, int domains,
                                       int replicas) {
    workloads::CheckpointSpec spec;
    spec.path = path;
    ext::BuddyConfig buddy;
    buddy.replicas = replicas;
    buddy.num_domains = domains;
    spec.protection = buddy;
    if (GetParam()) {
      CollectiveConfig aggregation;
      aggregation.alignment = CollectiveConfig::Alignment::kPacked;
      aggregation.group_size = 8;
      spec.collective = aggregation;
    }
    return spec;
  }

  void write_buddy(int nwriters, const workloads::CheckpointSpec& spec) {
    par::Engine engine;
    engine.run(nwriters, [&](par::Comm& world) {
      const auto mine = rank_payload(world.rank());
      ASSERT_TRUE(
          workloads::write_checkpoint(fs_, world, spec, DataView(mine)).ok());
    });
  }

  // Every file OWNED by failure domain `d`: the primary physical file d and
  // file index d of every replica set (which holds other domains' streams —
  // losing a domain takes its storage, not its data's other copies).
  std::vector<std::string> files_owned_by(const std::string& name, int d,
                                          int domains, int replicas) {
    std::vector<std::string> owned;
    owned.push_back(core::physical_file_name(name, d, domains));
    for (int k = 1; k < replicas; ++k) {
      owned.push_back(core::physical_file_name(Buddy::replica_name(name, k),
                                               d, domains));
    }
    return owned;
  }

  void lose_domain(const std::string& name, int d, int domains, int replicas) {
    for (const std::string& path :
         files_owned_by(name, d, domains, replicas)) {
      if (fs_.exists(path)) {
        ASSERT_TRUE(fs_.remove(path).ok());
      }
    }
  }

  // Restore at `mtasks` through the workloads buddy path and compare every
  // byte against the in-memory reference.
  void restore_and_check(int nwriters, int mtasks,
                         workloads::CheckpointSpec spec) {
    const std::vector<std::byte> expect = concatenated_payload(nwriters);
    const std::uint64_t total = expect.size();
    std::vector<std::byte> got(expect.size());
    spec.restart_ntasks = mtasks;
    par::Engine engine;
    engine.run(mtasks, [&](par::Comm& world) {
      const std::uint64_t lo = share_offset(total, mtasks, world.rank());
      const std::uint64_t hi = share_offset(total, mtasks, world.rank() + 1);
      std::vector<std::byte> mine(hi - lo);
      ASSERT_TRUE(workloads::read_checkpoint(fs_, world, spec, mine.size(),
                                             mine)
                      .ok());
      std::memcpy(got.data() + lo, mine.data(), mine.size());
    });
    EXPECT_EQ(got, expect);
  }

  fs::SimFs fs_;
};

// ---------------------------------------------------------------------------
// Acceptance core: r = 2, D = 4, N = 64 — after losing ANY single failure
// domain (primary file + its replica-set files), the checkpoint restores
// byte-identically at M in {1, N/4, N, 4N}.
// ---------------------------------------------------------------------------

TEST_P(BuddyFaultTest, AnySingleDomainLossRestoresAtAllScales) {
  const int kWriters = 64;
  const int kDomains = 4;
  const int kReplicas = 2;
  for (int d = 0; d < kDomains; ++d) {
    SCOPED_TRACE(testing::Message() << "lost domain " << d);
    const std::string name = "r2d" + std::to_string(d) + ".ckpt";
    const auto spec = buddy_spec(name, kDomains, kReplicas);
    write_buddy(kWriters, spec);
    lose_domain(name, d, kDomains, kReplicas);
    for (const int mtasks : {1, 16, 64, 256}) {
      SCOPED_TRACE(testing::Message() << "restart at " << mtasks);
      restore_and_check(kWriters, mtasks, spec);
      // Re-damage the healed primary so every M exercises the heal, not
      // just the first (the replicas survive, so the loss stays r-1).
      ASSERT_TRUE(
          fs_.remove(core::physical_file_name(name, d, kDomains)).ok());
    }
  }
}

// r = 3, D = 4: every PAIR of lost domains is survivable.
TEST_P(BuddyFaultTest, AnyTwoDomainLossesRestoreWithTripleRedundancy) {
  const int kWriters = 32;
  const int kDomains = 4;
  const int kReplicas = 3;
  for (int d1 = 0; d1 < kDomains; ++d1) {
    for (int d2 = d1 + 1; d2 < kDomains; ++d2) {
      SCOPED_TRACE(testing::Message() << "lost domains " << d1 << "," << d2);
      const std::string name =
          "r3d" + std::to_string(d1) + std::to_string(d2) + ".ckpt";
      const auto spec = buddy_spec(name, kDomains, kReplicas);
      write_buddy(kWriters, spec);
      lose_domain(name, d1, kDomains, kReplicas);
      lose_domain(name, d2, kDomains, kReplicas);
      restore_and_check(kWriters, /*mtasks=*/8, spec);
    }
  }
}

TEST_P(BuddyFaultTest, TwoDomainLossRestoresAtAllScales) {
  const int kWriters = 32;
  const auto spec = buddy_spec("r3m.ckpt", /*domains=*/4, /*replicas=*/3);
  write_buddy(kWriters, spec);
  lose_domain("r3m.ckpt", 0, 4, 3);
  lose_domain("r3m.ckpt", 2, 4, 3);
  for (const int mtasks : {1, 8, 32, 128}) {
    SCOPED_TRACE(testing::Message() << "restart at " << mtasks);
    restore_and_check(kWriters, mtasks, spec);
    ASSERT_TRUE(fs_.remove(core::physical_file_name("r3m.ckpt", 0, 4)).ok());
    ASSERT_TRUE(fs_.remove(core::physical_file_name("r3m.ckpt", 2, 4)).ok());
  }
}

// ---------------------------------------------------------------------------
// Replica sets are complete, identity-preserving multifiles: the plain
// same-scale reader restores every rank's own stream from a replica alone.
// ---------------------------------------------------------------------------

TEST_P(BuddyFaultTest, ReplicaSetReadsLikeAnOrdinaryMultifile) {
  const int kWriters = 16;
  const auto spec = buddy_spec("rep.ckpt", /*domains=*/4, /*replicas=*/2);
  write_buddy(kWriters, spec);
  par::Engine engine;
  engine.run(kWriters, [&](par::Comm& world) {
    auto sion = core::SionParFile::open_read(
        fs_, world, Buddy::replica_name("rep.ckpt", 1));
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    const auto expect = rank_payload(world.rank());
    std::vector<std::byte> back(expect.size());
    auto got = sion.value()->read(back);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    EXPECT_EQ(got.value(), expect.size());
    EXPECT_EQ(back, expect);
    ASSERT_TRUE(sion.value()->close().ok());
  });
}

// Multi-block streams (chunks smaller than the payload) mirror and heal
// correctly through the direct ext::Buddy API.
TEST_P(BuddyFaultTest, MultiBlockStreamsSurviveDomainLoss) {
  const int kWriters = 12;
  const int kDomains = 3;
  BuddyConfig config;
  config.replicas = 2;
  config.num_domains = kDomains;
  config.collective = GetParam();
  config.collective_config.group_size = 4;
  par::Engine engine;
  engine.run(kWriters, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "blocks.ckpt";
    spec.chunksize = 700;  // several blocks per 1.5-4 KiB stream
    spec.fsblksize = 512;
    const auto mine = rank_payload(world.rank() + 40);
    ASSERT_TRUE(Buddy::write(fs_, world, spec, config, DataView(mine)).ok());
  });
  ASSERT_TRUE(fs_.remove(core::physical_file_name("blocks.ckpt", 1, 3)).ok());
  std::vector<std::byte> expect;
  for (int r = 0; r < kWriters; ++r) {
    const auto mine = rank_payload(r + 40);
    expect.insert(expect.end(), mine.begin(), mine.end());
  }
  std::vector<std::byte> got(expect.size());
  engine.run(5, [&](par::Comm& world) {
    const std::uint64_t lo = share_offset(expect.size(), 5, world.rank());
    const std::uint64_t hi = share_offset(expect.size(), 5, world.rank() + 1);
    std::vector<std::byte> mine(hi - lo);
    auto stats = Buddy::restore(fs_, world, "blocks.ckpt", config, mine,
                                mine.size());
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    std::memcpy(got.data() + lo, mine.data(), mine.size());
  });
  EXPECT_EQ(got, expect);
}

// ---------------------------------------------------------------------------
// FaultPlan-driven scenarios
// ---------------------------------------------------------------------------

TEST_P(BuddyFaultTest, FaultPlanGlobTakesWholeDomain) {
  const int kWriters = 16;
  const auto spec = buddy_spec("g.ckpt", /*domains=*/4, /*replicas=*/2);
  write_buddy(kWriters, spec);
  // One glob takes every file owned by domain 2 (primary and replica sets
  // share the .000002 suffix).
  FaultPlan plan;
  plan.lose("*.000002");
  fs_.arm_faults(plan);
  EXPECT_EQ(fs_.fault_counters().files_lost, 2u);
  restore_and_check(kWriters, /*mtasks=*/16, spec);
}

TEST_P(BuddyFaultTest, SilentTruncationIsDetectedAndHealed) {
  const int kWriters = 16;
  const auto spec = buddy_spec("t.ckpt", /*domains=*/4, /*replicas=*/2);
  write_buddy(kWriters, spec);
  // Silently chop the primary file of domain 1 mid-data: no error surfaces
  // until something validates it — the probe must catch the missing
  // metablock 2 and heal from the replica instead of reading short.
  FaultPlan plan;
  plan.truncate(core::physical_file_name("t.ckpt", 1, 4), 900);
  fs_.arm_faults(plan);
  EXPECT_EQ(fs_.fault_counters().files_truncated, 1u);
  restore_and_check(kWriters, /*mtasks=*/7, spec);
}

TEST_P(BuddyFaultTest, OpenErrorOnFirstReplicaFallsToSecond) {
  const int kWriters = 12;
  const auto spec = buddy_spec("o.ckpt", /*domains=*/3, /*replicas=*/3);
  write_buddy(kWriters, spec);
  lose_domain("o.ckpt", 0, 3, 3);
  // Domain 0's first candidate (file 1 of set b1) refuses to open: the
  // probe must fall through to set b2.
  FaultPlan plan;
  plan.open_error(
      core::physical_file_name(Buddy::replica_name("o.ckpt", 1), 1, 3));
  fs_.arm_faults(plan);
  restore_and_check(kWriters, /*mtasks=*/12, spec);
  EXPECT_GT(fs_.fault_counters().open_errors, 0u);
}

TEST_P(BuddyFaultTest, FlakyReplicaReadsStillRecoverWithTripleRedundancy) {
  const int kWriters = 12;
  const auto spec = buddy_spec("f.ckpt", /*domains=*/3, /*replicas=*/3);
  write_buddy(kWriters, spec);
  lose_domain("f.ckpt", 1, 3, 3);
  // Every read of the first candidate fails half the time (seeded): whether
  // the probe or the heal copy hits the fault, the battery must converge on
  // the healthy second candidate and restore exact bytes.
  FaultPlan plan;
  plan.seed = 99;
  plan.read_error(
      core::physical_file_name(Buddy::replica_name("f.ckpt", 1), 2, 3), 0.5);
  fs_.arm_faults(plan);
  restore_and_check(kWriters, /*mtasks=*/5, spec);
}

TEST_P(BuddyFaultTest, DegradedBandwidthSlowsRestoreButStaysCorrect) {
  const int kWriters = 16;
  const auto spec = buddy_spec("d.ckpt", /*domains=*/4, /*replicas=*/2);
  write_buddy(kWriters, spec);

  const auto timed_restore = [&]() {
    par::Engine engine;
    const std::vector<std::byte> expect = concatenated_payload(kWriters);
    const double t0 = engine.epoch();
    std::vector<std::byte> got(expect.size());
    workloads::CheckpointSpec restart = spec;
    restart.restart_ntasks = 8;
    engine.run(8, [&](par::Comm& world) {
      const std::uint64_t lo = share_offset(expect.size(), 8, world.rank());
      const std::uint64_t hi =
          share_offset(expect.size(), 8, world.rank() + 1);
      std::vector<std::byte> mine(hi - lo);
      ASSERT_TRUE(workloads::read_checkpoint(fs_, world, restart, mine.size(),
                                             mine)
                      .ok());
      std::memcpy(got.data() + lo, mine.data(), mine.size());
    });
    EXPECT_EQ(got, expect);
    return engine.epoch() - t0;
  };

  fs_.drop_caches();
  const double healthy = timed_restore();
  fs_.drop_caches();
  FaultPlan plan;
  plan.degrade("d.ckpt*", 0.25);  // every copy runs at quarter speed
  fs_.arm_faults(plan);
  const double degraded = timed_restore();
  EXPECT_GT(degraded, healthy);
  EXPECT_GT(fs_.fault_counters().degraded_ops, 0u);
}

// ---------------------------------------------------------------------------
// Unrecoverable and invalid configurations fail cleanly everywhere.
// ---------------------------------------------------------------------------

TEST_P(BuddyFaultTest, LosingAllCopiesFailsCleanlyOnEveryTask) {
  const int kWriters = 8;
  const auto spec = buddy_spec("dead.ckpt", /*domains=*/2, /*replicas=*/2);
  write_buddy(kWriters, spec);
  lose_domain("dead.ckpt", 0, 2, 2);
  lose_domain("dead.ckpt", 1, 2, 2);  // r domains lost > r-1 budget
  BuddyConfig config;
  config.replicas = 2;
  config.num_domains = 2;
  par::Engine engine;
  int failures = 0;
  engine.run(6, [&](par::Comm& world) {
    auto stats = Buddy::restore(fs_, world, "dead.ckpt", config, {}, 0);
    EXPECT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), ErrorCode::kIoError)
        << stats.status().to_string();
    ++failures;
  });
  EXPECT_EQ(failures, 6);
}

TEST_P(BuddyFaultTest, InvalidConfigurationsAreRejected) {
  par::Engine engine;
  engine.run(8, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "bad.ckpt";
    spec.chunksize = 1024;

    BuddyConfig too_many;
    too_many.replicas = 5;
    too_many.num_domains = 4;
    auto st = Buddy::write(fs_, world, spec, too_many,
                           DataView::fill(std::byte{1}, 10));
    EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);

    BuddyConfig uneven;
    uneven.replicas = 2;
    uneven.num_domains = 3;  // 8 % 3 != 0
    st = Buddy::write(fs_, world, spec, uneven,
                      DataView::fill(std::byte{1}, 10));
    EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);

    BuddyConfig frames;
    frames.replicas = 2;
    frames.num_domains = 2;
    core::ParOpenSpec framed = spec;
    framed.chunk_frames = true;
    st = Buddy::write(fs_, world, framed, frames,
                      DataView::fill(std::byte{1}, 10));
    EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  });
}

// ---------------------------------------------------------------------------
// Heal report plumbing
// ---------------------------------------------------------------------------

TEST_P(BuddyFaultTest, HealReportsWhatItRepaired) {
  const int kWriters = 16;
  const auto spec = buddy_spec("h.ckpt", /*domains=*/4, /*replicas=*/2);
  write_buddy(kWriters, spec);
  lose_domain("h.ckpt", 3, 4, 2);
  BuddyConfig config;
  config.replicas = 2;
  config.num_domains = 4;
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    auto report = Buddy::heal(fs_, world, "h.ckpt", config);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_EQ(report.value().domains, 4);
    EXPECT_EQ(report.value().replicas, 2);
    EXPECT_EQ(report.value().damaged_files, 1);
    EXPECT_EQ(report.value().healed_files, 1);
    EXPECT_GT(report.value().bytes_copied, 0u);
  });
  // A second pass finds a whole set: nothing to do.
  engine.run(2, [&](par::Comm& world) {
    auto report = Buddy::heal(fs_, world, "h.ckpt", config);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_EQ(report.value().damaged_files, 0);
    EXPECT_EQ(report.value().healed_files, 0);
  });
}

INSTANTIATE_TEST_SUITE_P(PlainAndCollective, BuddyFaultTest,
                         ::testing::Values(false, true),
                         [](const auto& param_info) {
                           return param_info.param ? "CollectivePacked"
                                                   : "Plain";
                         });

}  // namespace
}  // namespace sion::ext
