// Golden virtual-time determinism suite (label: perf).
//
// Hot-path rewrites (fiber runtime, collective internals, SimFs caching)
// must never change *simulated* results: the paper tables are virtual-time
// measurements, so a perf PR that shifts them has silently changed the
// model, not just made it faster. Each scenario here is a fixed miniature
// of one benchmark sweep; its makespan was snapshotted (as an exact IEEE
// double, hexfloat) from the tree before the hot-path overhaul and is
// asserted byte-identical forever after.
//
// When a test fails, the message prints the observed makespan in hexfloat.
// Only update a golden when the *model* deliberately changed (a new cost
// term, a calibration fix) — never to make an optimization pass.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/compress.h"
#include "ext/remap.h"
#include "ext/staging.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"
#include "workloads/checkpoint_session.h"

namespace sion {
namespace {

// Exact-equality assertion with a hexfloat diagnostic, so a mismatch
// prints the literal to paste into the golden table.
#define EXPECT_GOLDEN(golden, observed)                                      \
  do {                                                                       \
    const double g = (golden);                                               \
    const double o = (observed);                                             \
    EXPECT_EQ(g, o) << "golden mismatch: observed " << strformat("%a", o)    \
                    << " (" << strformat("%.17g", o) << "), golden "         \
                    << strformat("%a", g);                                   \
  } while (0)

template <typename Fn>
double makespan(par::Engine& engine, int n, Fn&& body) {
  const double t0 = engine.epoch();
  engine.run(n, std::forward<Fn>(body));
  return engine.epoch() - t0;
}

std::vector<std::byte> pattern_payload(int rank, std::uint64_t n) {
  std::vector<std::byte> data(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>(
        (static_cast<std::uint64_t>(rank) * 31 + i * 7 + 13) & 0xFF);
  }
  return data;
}

// --- Figure 3 miniature: task-local create / reopen / SION create ----------

// Parameterized by engine shard count: the goldens below were snapshotted
// from the sequential engine, and the sharded engine (PR 10) must reproduce
// them bit-for-bit at every shard count — that is the tentpole determinism
// guarantee of the conservative virtual-time protocol.
void fig3_create_open_sion(int shards) {
  fs::SimFs fs(fs::JugeneConfig());
  par::Engine engine(
      par::EngineConfig{.stack_bytes = 64 * 1024,
                        .network = fs::JugeneConfig().network,
                        .shards = shards});
  const int n = 96;  // not a power of two: exercises heap tie-breaks
  const double t_create = makespan(engine, n, [&](par::Comm& world) {
    auto f = fs.create(strformat("data.%06d", world.rank()));
    ASSERT_TRUE(f.ok()) << f.status().to_string();
  });
  fs.drop_caches();
  const double t_open = makespan(engine, n, [&](par::Comm& world) {
    auto f = fs.open_rw(strformat("data.%06d", world.rank()));
    ASSERT_TRUE(f.ok()) << f.status().to_string();
  });
  const double t_sion = makespan(engine, n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "multi.sion";
    spec.chunksize = 64 * kKiB;
    spec.nfiles = 2;
    auto sion = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    ASSERT_TRUE(sion.value()->close().ok());
  });
  EXPECT_GOLDEN(0x1.0e631f8a0902ep-1, t_create);
  EXPECT_GOLDEN(0x1.624dd2f1aa01p-4, t_open);
  EXPECT_GOLDEN(0x1.3e9392de2d5acp-3, t_sion);
}

TEST(GoldenDeterminismTest, Fig3CreateOpenSionJugene) {
  fig3_create_open_sion(1);
}

TEST(GoldenDeterminismTest, Fig3CreateOpenSionJugeneTwoShards) {
  fig3_create_open_sion(2);
}

TEST(GoldenDeterminismTest, Fig3CreateOpenSionJugeneEightShards) {
  fig3_create_open_sion(8);
}

// --- Figure 5 miniature: multifile bandwidth write + read ------------------

TEST(GoldenDeterminismTest, Fig5BandwidthJugene) {
  fs::SimFs fs(fs::JugeneConfig());
  par::Engine engine(
      par::EngineConfig{.stack_bytes = 64 * 1024,
                        .network = fs::JugeneConfig().network});
  const int n = 32;
  const std::uint64_t per_task = kMiB;
  const double t_write = makespan(engine, n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "bw.sion";
    spec.chunksize = per_task;
    spec.nfiles = 4;
    auto sion = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    ASSERT_TRUE(sion.value()
                    ->write(fs::DataView::fill(std::byte{'s'}, per_task))
                    .ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });
  fs.drop_caches();
  const double t_read = makespan(engine, n, [&](par::Comm& world) {
    auto sion = core::SionParFile::open_read(fs, world, "bw.sion");
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    ASSERT_TRUE(sion.value()->read_skip(per_task).ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });
  EXPECT_GOLDEN(0x1.e032a0c796b88p-3, t_write);
  EXPECT_GOLDEN(0x1.bb32dd63dfb18p-5, t_read);
}

// --- Collective aggregation miniature: packed write + verified read --------

TEST(GoldenDeterminismTest, CollectivePackedWriteReadJugene) {
  fs::SimConfig machine = fs::JugeneConfig();
  machine.client_open_service = 0.03e-3;
  machine.tasks_per_ion = std::max(1, machine.tasks_per_ion / 16);
  fs::SimFs fs(machine);
  par::Engine engine(par::EngineConfig{.stack_bytes = 64 * 1024,
                                       .network = machine.network});
  workloads::CheckpointSpec spec;
  spec.path = "golden.ckpt";
  spec.strategy = workloads::IoStrategy::kSion;
  ext::CollectiveConfig aggregation;
  aggregation.group_size = 8;
  aggregation.packing_granule = 4 * kKiB;
  spec.collective = aggregation;
  const int n = 48;
  const std::uint64_t chunk = 24 * kKiB + 160;  // unaligned on purpose
  // Patterned (non-fill) payloads so the aggregation data path really moves
  // member bytes — a zero-copy bug shows up as corrupted readback below.
  const double t_write = makespan(engine, n, [&](par::Comm& world) {
    const auto payload = pattern_payload(world.rank(), chunk);
    ASSERT_TRUE(workloads::write_checkpoint(fs, world, spec,
                                            fs::DataView(payload))
                    .ok());
  });
  fs.drop_caches();
  const double t_read = makespan(engine, n, [&](par::Comm& world) {
    std::vector<std::byte> out(chunk);
    ASSERT_TRUE(
        workloads::read_checkpoint(fs, world, spec, chunk, out).ok());
    EXPECT_EQ(out, pattern_payload(world.rank(), chunk));
  });
  EXPECT_GOLDEN(0x1.cf695baae83dp-3, t_write);
  EXPECT_GOLDEN(0x1.1b82564ad4258p-6, t_read);
}

// --- N->M restart miniature: remap restore with byte verification ----------

TEST(GoldenDeterminismTest, RemapRestartTestbed) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine(par::EngineConfig{.stack_bytes = 64 * 1024,
                                       .network = fs::TestbedConfig().network});
  const int n_writers = 32;
  const int m_readers = 12;
  const std::uint64_t chunk = 8 * kKiB + 96;
  const double t_write = makespan(engine, n_writers, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "restart.sion";
    spec.chunksize = chunk;
    spec.nfiles = 2;
    auto sion = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    const auto payload = pattern_payload(world.rank(), chunk);
    ASSERT_TRUE(sion.value()->write(fs::DataView(payload)).ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });
  fs.drop_caches();
  const std::uint64_t total =
      chunk * static_cast<std::uint64_t>(n_writers);
  const double t_restore = makespan(engine, m_readers, [&](par::Comm& world) {
    auto remap = ext::Remap::open(fs, world, "restart.sion", {});
    ASSERT_TRUE(remap.ok()) << remap.status().to_string();
    // Even byte split of the concatenated global stream over M readers.
    const std::uint64_t me = static_cast<std::uint64_t>(world.rank());
    const std::uint64_t msize = static_cast<std::uint64_t>(world.size());
    const std::uint64_t lo = total * me / msize;
    const std::uint64_t hi = total * (me + 1) / msize;
    std::vector<std::byte> out(hi - lo);
    auto stats = remap.value()->restore(out, out.size());
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    for (std::uint64_t g = lo; g < hi; ++g) {
      const int writer = static_cast<int>(g / chunk);
      const std::uint64_t i = g % chunk;
      const auto expect = static_cast<std::byte>(
          (static_cast<std::uint64_t>(writer) * 31 + i * 7 + 13) & 0xFF);
      ASSERT_EQ(out[g - lo], expect) << "corrupt byte at global offset " << g;
    }
    ASSERT_TRUE(remap.value()->close().ok());
  });
  EXPECT_GOLDEN(0x1.e38cee14ba041p-9, t_write);
  EXPECT_GOLDEN(0x1.f2efb643b9e26p-8, t_restore);
}

// --- Staged checkpointing miniature: burst-buffer drain on and off ---------

// The same checkpoint loop through workloads::CheckpointSession with and
// without the burst-buffer tier: both makespans are pinned, so neither the
// synchronous path (which must stay cost-identical to the legacy free
// functions) nor the background-drain timelines may drift.
TEST(GoldenDeterminismTest, StagedCheckpointLoopTestbed) {
  fs::SimConfig machine = fs::TestbedConfig();
  machine.burst_buffer.tasks_per_node = 4;
  machine.burst_buffer.node_bandwidth = 4.0e9;
  machine.burst_buffer.drain_bandwidth = 200.0e6;
  const int n = 16;
  const std::uint64_t chunk = 96 * kKiB + 64;  // unaligned on purpose
  auto checkpoint_loop = [&](fs::SimFs& fs,
                             const workloads::CheckpointSpec& spec) {
    par::Engine engine(par::EngineConfig{.stack_bytes = 64 * 1024,
                                         .network = machine.network});
    return makespan(engine, n, [&](par::Comm& world) {
      auto session = workloads::CheckpointSession::open(fs, world, spec);
      ASSERT_TRUE(session.ok()) << session.status().to_string();
      for (std::uint64_t k = 0; k < 3; ++k) {
        const auto payload = pattern_payload(world.rank(), chunk);
        ASSERT_TRUE(session.value()->write_async(fs::DataView(payload)).ok());
        par::this_task()->compute(2.0e-3);
      }
      ASSERT_TRUE(session.value()->close().ok());
    });
  };
  double t_staged = 0.0;
  {
    fs::SimFs pfs(machine);
    fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
    workloads::CheckpointSpec spec;
    spec.path = "golden_staged.sion";
    ext::StagingConfig staging;
    staging.fast_tier = &bb;
    spec.staging = staging;
    t_staged = checkpoint_loop(pfs, spec);
  }
  double t_sync = 0.0;
  {
    fs::SimFs pfs(machine);
    workloads::CheckpointSpec spec;
    spec.path = "golden_sync.sion";
    t_sync = checkpoint_loop(pfs, spec);
  }
  EXPECT_GOLDEN(0x1.153a28a1b30e7p-7, t_staged);
  EXPECT_GOLDEN(0x1.9ccae37ef0134p-6, t_sync);
  // The overlap claim at golden strength: absorbing into the fast tier and
  // draining in the background beats writing the parallel tier in-line.
  EXPECT_LT(t_staged, t_sync);
}

// --- Compressed checkpoint miniature: framed write + transparent restore ---

// The compressed stream path must be bit-deterministic end to end: the slz
// token stream, the frame boundaries and CRCs, and therefore every simulated
// transfer size and makespan are pinned. A codec change that alters the
// encoded size is a model change and must update these goldens explicitly.
TEST(GoldenDeterminismTest, CompressedCheckpointTestbed) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine(par::EngineConfig{.stack_bytes = 64 * 1024,
                                       .network = fs::TestbedConfig().network});
  workloads::CheckpointSpec spec;
  spec.path = "golden_z.ckpt";
  ext::CompressionSpec compression;
  compression.chunk_bytes = 8 * kKiB;
  spec.compression = compression;
  const int n = 24;
  const std::uint64_t chunk = 40 * kKiB + 32;  // unaligned on purpose
  const double t_write = makespan(engine, n, [&](par::Comm& world) {
    const auto payload = pattern_payload(world.rank(), chunk);
    ASSERT_TRUE(workloads::write_checkpoint(fs, world, spec,
                                            fs::DataView(payload))
                    .ok());
  });
  fs.drop_caches();
  const double t_read = makespan(engine, n, [&](par::Comm& world) {
    std::vector<std::byte> out(chunk);
    ASSERT_TRUE(workloads::read_checkpoint(fs, world, spec, chunk, out).ok());
    EXPECT_EQ(out, pattern_payload(world.rank(), chunk));
  });
  EXPECT_GOLDEN(0x1.45c881d18b54cp-9, t_write);
  EXPECT_GOLDEN(0x1.6797898c14d0cp-9, t_read);
}

// --- ECC-protected checkpoint miniature: parity write + degraded restore ---

// The Reed-Solomon parity path must be bit-deterministic end to end: the
// Cauchy coefficients, the stripe partition, the parity file layout, and
// therefore every simulated transfer and makespan are pinned — including a
// degraded restore that decodes a lost data file inline from the survivors
// (no heal pass, so the lost file stays lost).
TEST(GoldenDeterminismTest, EccProtectedCheckpointTestbed) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine(par::EngineConfig{.stack_bytes = 64 * 1024,
                                       .network = fs::TestbedConfig().network});
  workloads::CheckpointSpec spec;
  spec.path = "golden_ecc.ckpt";
  ext::EccConfig ecc;
  ecc.data_domains = 4;
  ecc.parity_domains = 2;
  spec.protection = ecc;
  const int n = 16;
  const std::uint64_t chunk = 24 * kKiB + 96;  // unaligned on purpose
  const double t_write = makespan(engine, n, [&](par::Comm& world) {
    const auto payload = pattern_payload(world.rank(), chunk);
    ASSERT_TRUE(workloads::write_checkpoint(fs, world, spec,
                                            fs::DataView(payload))
                    .ok());
  });
  fs.drop_caches();
  const std::string lost = core::physical_file_name("golden_ecc.ckpt", 1, 4);
  ASSERT_TRUE(fs.remove(lost).ok());
  const double t_degraded = makespan(engine, n, [&](par::Comm& world) {
    std::vector<std::byte> out(chunk);
    ASSERT_TRUE(workloads::read_checkpoint(fs, world, spec, chunk, out).ok());
    EXPECT_EQ(out, pattern_payload(world.rank(), chunk));
  });
  EXPECT_FALSE(fs.exists(lost));  // degraded decode, not a heal
  EXPECT_GOLDEN(0x1.6f2e03700d5e7p-6, t_write);
  EXPECT_GOLDEN(0x1.074b5544d43b2p-5, t_degraded);
}

// --- Pure-engine scheduler stress: uneven compute + collectives ------------

// Parameterized by shard count like fig3_create_open_sion: splits, p2p, and
// uneven compute skew must schedule identically on every shard partition.
void scheduler_mixed_compute_collectives(int shards) {
  par::Engine engine(par::EngineConfig{
      .stack_bytes = 64 * 1024, .network = {}, .shards = shards});
  const int n = 257;  // prime-ish: no clean tree/group alignment anywhere
  const double t = makespan(engine, n, [&](par::Comm& world) {
    const int r = world.rank();
    double acc = 0.0;
    for (int round = 0; round < 5; ++round) {
      // Deterministic, rank-dependent compute skew.
      par::this_task()->compute(1.0e-6 * ((r * 7919 + round * 104729) % 97));
      acc += static_cast<double>(
          world.allreduce_u64(static_cast<std::uint64_t>(r + round),
                              par::ReduceOp::kMax));
      par::Comm* half = world.split(r % 2, r);
      ASSERT_NE(half, nullptr);
      acc += static_cast<double>(half->allreduce_u64(
          static_cast<std::uint64_t>(r), par::ReduceOp::kSum));
      half->barrier();
      if (r % 2 == 0 && half->size() > 1) {
        // Odd-even ping within the even sub-communicator.
        const int peer = half->rank() ^ 1;
        if (peer < half->size()) {
          std::uint64_t v = static_cast<std::uint64_t>(r);
          auto buf = std::as_writable_bytes(std::span<std::uint64_t>(&v, 1));
          if (half->rank() % 2 == 0) {
            half->send_bytes(buf, peer, round);
            (void)half->recv_bytes(peer, round);
          } else {
            (void)half->recv_bytes(peer, round);
            half->send_bytes(buf, peer, round);
          }
        }
      }
      world.barrier();
    }
    ASSERT_GT(acc, 0.0);
  });
  EXPECT_GOLDEN(0x1.5f4d2021e70ep-9, t);
}

TEST(GoldenDeterminismTest, SchedulerMixedComputeCollectives) {
  scheduler_mixed_compute_collectives(1);
}

TEST(GoldenDeterminismTest, SchedulerMixedComputeCollectivesTwoShards) {
  scheduler_mixed_compute_collectives(2);
}

TEST(GoldenDeterminismTest, SchedulerMixedComputeCollectivesEightShards) {
  scheduler_mixed_compute_collectives(8);
}

}  // namespace
}  // namespace sion
