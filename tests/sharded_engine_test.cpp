// Sharded fiber engine: bit-identity against the sequential engine, cross-
// shard collectives/p2p/splits, deterministic error capture, and the stack-
// canary re-arm regression. Task counts stay small (<= 512) so the whole
// suite is cheap under TSan, where it runs as the `shard` nightly battery.
#include <atomic>
#include <cstring>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"

namespace sion {
namespace {

par::EngineConfig engine_config(int shards) {
  par::EngineConfig config;
  config.stack_bytes = 64 * 1024;
  config.network = fs::TestbedConfig().network;
  config.shards = shards;
  return config;
}

// A compute + collective + p2p workload with no file system: the release
// times are order-independent math, so every shard count must produce the
// same epoch.
double collective_epoch(int shards, int ntasks) {
  par::Engine engine(engine_config(shards));
  engine.run(ntasks, [](par::Comm& world) {
    const int rank = world.rank();
    const int n = world.size();
    par::TaskState& task = *par::this_task();
    task.compute(1.0e-6 * static_cast<double>(rank % 7));
    world.barrier();
    const std::uint64_t sum = world.allreduce_u64(
        static_cast<std::uint64_t>(rank), par::ReduceOp::kSum);
    EXPECT_EQ(sum, static_cast<std::uint64_t>(n) *
                       static_cast<std::uint64_t>(n - 1) / 2);
    const std::uint64_t left = world.rotate_bytes(
        std::as_bytes(std::span<const int>(&rank, 1)), 1).size();
    EXPECT_EQ(left, sizeof(int));
    task.compute(1.0e-6);
    world.barrier();
  });
  return engine.epoch();
}

struct FsRunResult {
  double epoch = 0.0;
  fs::SimFs::Counters counters;
  std::uint64_t allocated = 0;

  bool operator==(const FsRunResult& o) const {
    return epoch == o.epoch && allocated == o.allocated &&
           counters.creates == o.counters.creates &&
           counters.writes == o.counters.writes &&
           counters.reads == o.counters.reads &&
           counters.bytes_written == o.counters.bytes_written &&
           counters.bytes_read == o.counters.bytes_read &&
           counters.lock_transfers == o.counters.lock_transfers;
  }
};

// A SimFs storm: order-sensitive shared simulator state (metadata locks,
// OST queues, allocation). Bit-identity across shard counts exercises the
// full FsOrderGate protocol, including cross-file contention.
FsRunResult simfs_storm(int shards, int ntasks) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine(engine_config(shards));
  engine.run(ntasks, [&fs](par::Comm& world) {
    const int rank = world.rank();
    const int n = world.size();
    const std::string mine = strformat("f.%04d", rank);
    auto file = fs.create(mine);
    ASSERT_TRUE(file.ok()) << file.status().to_string();
    std::vector<std::byte> buf(512 + static_cast<std::size_t>(rank % 13));
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::byte>((rank + static_cast<int>(i)) & 0xFF);
    }
    auto wrote = file.value()->pwrite(
        fs::DataView(std::span<const std::byte>(buf)), 0);
    ASSERT_TRUE(wrote.ok()) << wrote.status().to_string();
    file.value().reset();
    world.barrier();
    const std::string theirs = strformat("f.%04d", (rank + 1) % n);
    auto peer = fs.open_read(theirs);
    ASSERT_TRUE(peer.ok()) << peer.status().to_string();
    std::vector<std::byte> got(512);
    auto read = peer.value()->pread(got, 0);
    ASSERT_TRUE(read.ok()) << read.status().to_string();
    EXPECT_EQ(read.value(), got.size());
    EXPECT_EQ(got[0], static_cast<std::byte>(((rank + 1) % n) & 0xFF));
    world.barrier();
  });
  FsRunResult result;
  result.epoch = engine.epoch();
  result.counters = fs.counters();
  result.allocated = fs.allocated_bytes();
  return result;
}

TEST(ShardedEngine, CollectiveEpochMatchesSequential) {
  const double seq = collective_epoch(1, 96);
  for (const int shards : {2, 3, 8}) {
    EXPECT_EQ(collective_epoch(shards, 96), seq) << "shards=" << shards;
  }
}

TEST(ShardedEngine, SimFsStormBitIdenticalAcrossShardCounts) {
  const FsRunResult seq = simfs_storm(1, 64);
  EXPECT_GT(seq.counters.creates, 0U);
  for (const int shards : {2, 4, 8}) {
    EXPECT_TRUE(simfs_storm(shards, 64) == seq) << "shards=" << shards;
  }
}

TEST(ShardedEngine, CrossShardPointToPoint) {
  par::Engine engine(engine_config(4));
  engine.run(64, [](par::Comm& world) {
    const int rank = world.rank();
    const int n = world.size();
    // Pair rank r with rank n-1-r: every pair straddles shard boundaries.
    const int peer = n - 1 - rank;
    const std::uint64_t token = 1000 + static_cast<std::uint64_t>(rank);
    if (rank < peer) {
      world.send_bytes(std::as_bytes(std::span<const std::uint64_t>(&token, 1)),
                       peer, /*tag=*/7);
      const std::vector<std::byte> reply = world.recv_bytes(peer, /*tag=*/8);
      std::uint64_t value = 0;
      ASSERT_EQ(reply.size(), sizeof(value));
      std::memcpy(&value, reply.data(), sizeof(value));
      EXPECT_EQ(value, 1000 + static_cast<std::uint64_t>(peer));
    } else if (peer != rank) {
      const std::vector<std::byte> greeting = world.recv_bytes(peer, 7);
      EXPECT_EQ(greeting.size(), sizeof(std::uint64_t));
      world.send_bytes(std::as_bytes(std::span<const std::uint64_t>(&token, 1)),
                       peer, /*tag=*/8);
    }
    world.barrier();
  });
}

TEST(ShardedEngine, SplitAcrossShardBoundaries) {
  for (const int shards : {1, 4}) {
    par::Engine engine(engine_config(shards));
    engine.run(48, [](par::Comm& world) {
      // Color by rank % 3: every child communicator's members are spread
      // over all shards.
      par::Comm* child = world.split(world.rank() % 3, world.rank());
      ASSERT_NE(child, nullptr);
      child->barrier();
      const std::uint64_t members = child->allreduce_u64(1, par::ReduceOp::kSum);
      EXPECT_EQ(members, static_cast<std::uint64_t>(child->size()));
      world.barrier();
    });
  }
}

TEST(ShardedEngine, ExceptionPropagatesAndEngineStaysUsable) {
  par::Engine engine(engine_config(4));
  EXPECT_THROW(engine.run(32,
                          [](par::Comm& world) {
                            if (world.rank() == 13) {
                              throw std::runtime_error("boom on 13");
                            }
                          }),
               std::runtime_error);
  // The failed run must not poison the engine or the thread (RAII reset of
  // the run bindings): a fresh run on the same engine completes.
  int completions = 0;
  engine.run(32, [&completions](par::Comm& world) {
    world.allreduce_u64(1, par::ReduceOp::kSum);
    if (world.rank() == 0) ++completions;
  });
  EXPECT_EQ(completions, 1);
}

TEST(ShardedEngine, ErrorChoiceIsDeterministicAcrossShardCounts) {
  // Several ranks throw at distinct virtual times; the engine must surface
  // the smallest (vtime, rank) throw — rank 60, which throws earliest — at
  // every shard count, regardless of host interleaving.
  for (const int shards : {1, 2, 8}) {
    par::Engine engine(engine_config(shards));
    try {
      engine.run(64, [](par::Comm& world) {
        const int rank = world.rank();
        if (rank >= 5 && rank % 5 == 0) {
          par::this_task()->compute(1.0e-6 * static_cast<double>(64 - rank));
          throw std::runtime_error(strformat("rank %d", rank));
        }
      });
      FAIL() << "expected a throw at shards=" << shards;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "rank 60") << "shards=" << shards;
    }
  }
}

TEST(ShardedEngine, ManyTasksLowStackMultiShard) {
  par::EngineConfig config = engine_config(8);
  config.stack_bytes = 32 * 1024;
  par::Engine engine(config);
  std::atomic<int> ran{0};
  engine.run(512, [&ran](par::Comm& world) {
    world.barrier();
    ran.fetch_add(1, std::memory_order_relaxed);
    world.barrier();
  });
  EXPECT_EQ(ran.load(), 512);
}

// Regression for the MADV_FREE canary false positive: the kernel may reclaim
// (zero) a pooled slab's pages at any moment, which used to trip the stack
// overflow check on the next engine that reused the slab. The canary is now
// re-armed on every acquisition, so a scribbled pool must be harmless.
TEST(ShardedEngine, CanarySurvivesScribbledSlabPool) {
  {
    par::Engine engine(engine_config(2));
    engine.run(64, [](par::Comm& world) { world.barrier(); });
  }  // slabs return to the pool here
  par::testing::scribble_cached_stack_slabs();
  par::Engine engine(engine_config(2));
  engine.run(64, [](par::Comm& world) { world.barrier(); });
  SUCCEED();
}

TEST(ShardedEngine, FsOrderGateIsNoopOutsideEngineAndSequential) {
  {
    par::FsOrderGate outside;  // serial tools: no task, no engine
  }
  fs::SimFs fs(fs::TestbedConfig());
  auto file = fs.create("serial.dat");  // gated internally, serial caller
  ASSERT_TRUE(file.ok());
  par::Engine engine(engine_config(1));
  engine.run(4, [&fs](par::Comm& world) {
    auto f = fs.create(strformat("seq.%d", world.rank()));
    ASSERT_TRUE(f.ok());
    world.barrier();
  });
}

TEST(ShardedEngine, ShardCountExceedingTasksClamps) {
  par::Engine engine(engine_config(16));
  int visited = 0;
  std::mutex mu;
  engine.run(5, [&](par::Comm& world) {
    world.barrier();
    const std::lock_guard<std::mutex> lock(mu);
    ++visited;
  });
  EXPECT_EQ(visited, 5);
}

}  // namespace
}  // namespace sion
