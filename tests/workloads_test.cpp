// Tests for the use-case workloads: MP2C particle checkpoints under every
// I/O strategy and the Scalasca-like tracer under both backends, with and
// without compression; plus the CheckpointSession API contract and the
// deprecated bool-flag spec shim (enabled for this TU only).
#define SION_CHECKPOINT_LEGACY_API 1

#include <gtest/gtest.h>

#include "common/units.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"
#include "workloads/checkpoint_session.h"
#include "workloads/mp2c.h"
#include "workloads/tracer.h"

namespace sion::workloads {
namespace {

using fs::DataView;

TEST(Mp2cTest, ParticleDistributionCoversTotal) {
  const std::uint64_t total = 1000003;  // prime: uneven split
  std::uint64_t sum = 0;
  for (int r = 0; r < 17; ++r) sum += mp2c_local_particles(total, 17, r);
  EXPECT_EQ(sum, total);
  // Difference between any two ranks is at most one particle.
  EXPECT_LE(mp2c_local_particles(total, 17, 0) -
                mp2c_local_particles(total, 17, 16),
            1u);
}

TEST(Mp2cTest, SerializationIs52BytesPerParticle) {
  const auto particles = mp2c_generate(100, 4, 1, 42);
  const auto bytes = mp2c_serialize(particles);
  EXPECT_EQ(bytes.size(), particles.size() * kParticleBytes);
  auto back = mp2c_deserialize(bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(back.value()[i].pos[d], particles[i].pos[d]);
      EXPECT_DOUBLE_EQ(back.value()[i].vel[d], particles[i].vel[d]);
    }
    EXPECT_EQ(back.value()[i].species, particles[i].species);
  }
}

TEST(Mp2cTest, DeserializeRejectsPartialRecord) {
  std::vector<std::byte> bytes(kParticleBytes + 1, std::byte{0});
  EXPECT_FALSE(mp2c_deserialize(bytes).ok());
}

TEST(Mp2cTest, GenerationIsDeterministicPerRank) {
  const auto a = mp2c_generate(1000, 8, 3, 7);
  const auto b = mp2c_generate(1000, 8, 3, 7);
  EXPECT_EQ(mp2c_serialize(a), mp2c_serialize(b));
  const auto c = mp2c_generate(1000, 8, 4, 7);
  EXPECT_NE(mp2c_serialize(a), mp2c_serialize(c));
}

class CheckpointStrategyTest : public ::testing::TestWithParam<IoStrategy> {};

TEST_P(CheckpointStrategyTest, RoundtripWithRealParticles) {
  const IoStrategy strategy = GetParam();
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  const std::uint64_t total_particles = 10000;
  const int n = 6;
  engine.run(n, [&](par::Comm& world) {
    CheckpointSpec spec;
    spec.path = "restart.ckpt";
    spec.strategy = strategy;
    spec.nfiles = 2;
    const auto particles =
        mp2c_generate(total_particles, n, world.rank(), 99);
    const auto payload = mp2c_serialize(particles);
    ASSERT_TRUE(
        write_checkpoint(fs, world, spec, DataView(payload)).ok());

    std::vector<std::byte> back(payload.size());
    ASSERT_TRUE(
        read_checkpoint(fs, world, spec, payload.size(), back).ok());
    EXPECT_EQ(back, payload);
    auto restored = mp2c_deserialize(back);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value().size(), particles.size());
  });
}

INSTANTIATE_TEST_SUITE_P(Strategies, CheckpointStrategyTest,
                         ::testing::Values(IoStrategy::kSion,
                                           IoStrategy::kSingleFileSeq,
                                           IoStrategy::kTaskLocal));

TEST(CheckpointTest, TimingOnlyMode) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    CheckpointSpec spec;
    spec.path = "big.ckpt";
    spec.strategy = IoStrategy::kSion;
    ASSERT_TRUE(write_checkpoint(fs, world, spec,
                                 DataView::fill(std::byte{1}, 10 * kMiB))
                    .ok());
    ASSERT_TRUE(read_checkpoint(fs, world, spec, 10 * kMiB, {}).ok());
  });
  // All payload bytes charged (plus a little metadata read at open).
  EXPECT_GE(fs.counters().bytes_read, 4 * 10 * kMiB);
  EXPECT_LT(fs.counters().bytes_read, 4 * 10 * kMiB + kMiB);
}

TEST(CheckpointTest, SizeMismatchDetected) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    CheckpointSpec spec;
    spec.path = "sz.ckpt";
    spec.strategy = IoStrategy::kSion;
    ASSERT_TRUE(write_checkpoint(fs, world, spec,
                                 DataView::fill(std::byte{1}, 1000))
                    .ok());
    std::vector<std::byte> back(2000);
    auto st = read_checkpoint(fs, world, spec, 2000, back);
    EXPECT_FALSE(st.ok());
  });
}

// --- CheckpointSession API contract ----------------------------------------

TEST(CheckpointSessionApiTest, RejectsBadSpecsAtOpen) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    CheckpointSpec no_path;
    EXPECT_FALSE(CheckpointSession::open(fs, world, no_path).ok());

    // Staging composes with the SIONlib strategy only.
    CheckpointSpec staged_seq;
    staged_seq.path = "s.ckpt";
    staged_seq.strategy = IoStrategy::kSingleFileSeq;
    staged_seq.staging = ext::StagingConfig{};
    EXPECT_FALSE(CheckpointSession::open(fs, world, staged_seq).ok());
  });
}

TEST(CheckpointSessionApiTest, WaitValidatesTicketAndCloseEndsTheSession) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    CheckpointSpec spec;
    spec.path = "sess.ckpt";
    auto session = CheckpointSession::open(fs, world, spec);
    ASSERT_TRUE(session.ok());
    // A ticket that was never issued is rejected.
    EXPECT_FALSE(session.value()->wait(CheckpointSession::Ticket{3}).ok());
    ASSERT_TRUE(
        session.value()->write_async(DataView::fill(std::byte{2}, 512)).ok());
    ASSERT_TRUE(session.value()->close().ok());
    // Idempotent close, but no writes after it.
    EXPECT_TRUE(session.value()->close().ok());
    EXPECT_FALSE(
        session.value()->write_async(DataView::fill(std::byte{2}, 512)).ok());
  });
}

TEST(CheckpointSessionApiTest, SessionIndicesMapToVersionedNames) {
  CheckpointSpec spec;
  spec.path = "ck.sion";
  EXPECT_EQ(CheckpointSession::checkpoint_name(spec, 0), "ck.sion");
  EXPECT_EQ(CheckpointSession::checkpoint_name(spec, 1), "ck.sion.v1");
  EXPECT_EQ(CheckpointSession::checkpoint_name(spec, 2), "ck.sion.v2");
  EXPECT_EQ(CheckpointSession::checkpoint_name(spec, 3), "ck.sion.v1");
  // More staging buffers widen the rotation so an in-flight drain can never
  // land on the newest durable checkpoint's files.
  ext::StagingConfig staging;
  staging.buffers = 3;
  spec.staging = staging;
  EXPECT_EQ(CheckpointSession::checkpoint_name(spec, 4), "ck.sion.v1");
}

// --- deprecated bool-flag shim (SION_CHECKPOINT_LEGACY_API=1 in this TU) ---

TEST(CheckpointLegacyShimTest, SettersComposeTheNewSubSpecs) {
  CheckpointSpec spec;
  spec.path = "shim.ckpt";
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ext::CollectiveConfig aggregation;
  aggregation.group_size = 4;
  legacy::set_collective(spec, true, aggregation);
  ext::BuddyConfig buddy;
  buddy.replicas = 2;
  buddy.num_domains = 2;
  legacy::set_buddy(spec, true, buddy);
#pragma GCC diagnostic pop
  ASSERT_TRUE(spec.collective.has_value());
  EXPECT_EQ(spec.collective->group_size, 4);
  ASSERT_NE(spec.buddy_protection(), nullptr);
  EXPECT_EQ(spec.buddy_protection()->replicas, 2);

  // The shim round-trips through a real write/read like the new API does.
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    const auto payload = DataView::fill(std::byte{7}, 2048);
    ASSERT_TRUE(write_checkpoint(fs, world, spec, payload).ok());
    std::vector<std::byte> back(2048);
    ASSERT_TRUE(read_checkpoint(fs, world, spec, 2048, back).ok());
    EXPECT_EQ(back, std::vector<std::byte>(2048, std::byte{7}));
  });

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  legacy::set_collective(spec, false);
  legacy::set_buddy(spec, false);
#pragma GCC diagnostic pop
  EXPECT_FALSE(spec.collective.has_value());
  EXPECT_EQ(spec.buddy_protection(), nullptr);
}

TEST(TracerTest, EventStreamsAreBalancedAndDeterministic) {
  const auto a = trace_generate(5, 1000, 3);
  const auto b = trace_generate(5, 1000, 3);
  EXPECT_EQ(trace_serialize(a), trace_serialize(b));
  EXPECT_EQ(a.size(), 1000u);
  // Timestamps strictly increase.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i].timestamp, a[i - 1].timestamp);
  }
}

TEST(TracerTest, SerializeRoundtrip) {
  const auto events = trace_generate(1, 500, 11);
  auto back = trace_deserialize(trace_serialize(events));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), events.size());
  EXPECT_EQ(back.value()[17].timestamp, events[17].timestamp);
  EXPECT_EQ(back.value()[17].kind, events[17].kind);
  EXPECT_EQ(back.value()[17].region, events[17].region);
}

struct TracerCase {
  TraceBackend backend;
  bool compress;
};

class TracerBackendTest : public ::testing::TestWithParam<TracerCase> {};

TEST_P(TracerBackendTest, RecordFlushReload) {
  const TracerCase c = GetParam();
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  const int n = 4;
  const std::uint64_t nevents = 2000;
  engine.run(n, [&](par::Comm& world) {
    TracerSpec spec;
    spec.path = "trace";
    spec.backend = c.backend;
    spec.nfiles = 2;
    spec.buffer_bytes = nevents * kTraceEventBytes + 4096;
    spec.compress = c.compress;
    auto tracer = Tracer::open(fs, world, spec);
    ASSERT_TRUE(tracer.ok()) << tracer.status().to_string();
    for (const auto& e : trace_generate(world.rank(), nevents, 21)) {
      tracer.value()->record(e);
    }
    EXPECT_EQ(tracer.value()->buffered_events(), nevents);
    auto written = tracer.value()->flush_and_close();
    ASSERT_TRUE(written.ok()) << written.status().to_string();
    if (c.compress) {
      // The event stream is compressible (timestamps share high bytes).
      EXPECT_LT(written.value(), nevents * kTraceEventBytes);
    } else {
      EXPECT_EQ(written.value(), nevents * kTraceEventBytes);
    }
  });
  // Postmortem analysis: serial reload of each rank's trace.
  for (int r = 0; r < n; ++r) {
    TracerSpec spec;
    spec.path = "trace";
    spec.backend = c.backend;
    spec.nfiles = 2;
    spec.compress = c.compress;
    auto events = trace_load_rank(fs, spec, r);
    ASSERT_TRUE(events.ok()) << events.status().to_string();
    const auto expect = trace_generate(r, nevents, 21);
    ASSERT_EQ(events.value().size(), expect.size());
    EXPECT_EQ(trace_serialize(events.value()), trace_serialize(expect));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TracerBackendTest,
    ::testing::Values(TracerCase{TraceBackend::kSion, false},
                      TracerCase{TraceBackend::kSion, true},
                      TracerCase{TraceBackend::kTaskLocal, false},
                      TracerCase{TraceBackend::kTaskLocal, true}));

TEST(TracerTest, SionActivationBeatsTaskLocalAtScale) {
  // The Table 2 effect in miniature: activation (open) time dominated by
  // file creation is far cheaper through SIONlib.
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  const int n = 128;
  double t_tl = 0;
  double t_sion = 0;
  {
    const double t0 = engine.epoch();
    engine.run(n, [&](par::Comm& world) {
      TracerSpec spec;
      spec.path = "tl_trace";
      spec.backend = TraceBackend::kTaskLocal;
      spec.buffer_bytes = 4096;
      auto tracer = Tracer::open(fs, world, spec);
      ASSERT_TRUE(tracer.ok());
      ASSERT_TRUE(tracer.value()->flush_and_close().ok());
    });
    t_tl = engine.epoch() - t0;
  }
  {
    const double t0 = engine.epoch();
    engine.run(n, [&](par::Comm& world) {
      TracerSpec spec;
      spec.path = "sion_trace";
      spec.backend = TraceBackend::kSion;
      spec.buffer_bytes = 4096;
      auto tracer = Tracer::open(fs, world, spec);
      ASSERT_TRUE(tracer.ok());
      ASSERT_TRUE(tracer.value()->flush_and_close().ok());
    });
    t_sion = engine.epoch() - t0;
  }
  EXPECT_GT(t_tl / t_sion, 5.0);
}

}  // namespace
}  // namespace sion::workloads
