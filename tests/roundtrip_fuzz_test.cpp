// Fuzz round-trip property test: seeded-random write schedules — random
// task counts, per-rank chunk sizes and volumes, physical-file counts,
// plain vs collective writers (all alignment modes), serial writers — are
// pushed through write -> reopen -> read and checked byte-identical against
// an in-memory reference model. Every case also restores the file onto a
// *different* random task count through ext::Remap, so the N->M
// redistribution is fuzzed across the same parameter grid.
//
// Parallel schedules may additionally carry checkpoint protection — buddy
// replication (random domain count and replication degree) or ECC parity
// (random k data + m parity domains, stripe sizes, heal vs degraded
// restore): a random recoverable subset of failure domains is damaged
// through a seeded fs::FaultPlan (whole files lost or silently truncated),
// and the protected restore must still hand back the exact reference bytes
// at the random restart scale.
//
// 10 seeds x 20 schedules = 200 cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/buddy.h"
#include "ext/collective.h"
#include "ext/compress.h"
#include "ext/ecc.h"
#include "ext/remap.h"
#include "fs/sim/fault.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"

namespace sion {
namespace {

using fs::DataView;

enum class Writer { kPar, kCollective, kSerial };

struct Schedule {
  int ntasks = 1;
  int nfiles = 1;
  std::uint64_t fsblksize = 512;
  Writer writer = Writer::kPar;
  ext::CollectiveConfig collective;
  std::vector<std::uint64_t> chunksizes;       // per rank
  std::vector<std::vector<std::byte>> payload;  // the reference model
  int remap_tasks = 1;

  // Transparent per-stream frame compression (ext/compress.h): the wire
  // bytes are the framed streams, the reference model stays the raw bytes.
  bool compress = false;
  std::uint64_t compress_chunk = 0;

  // Buddy replication (parallel writers only): 0 domains = off.
  int buddy_domains = 0;
  int buddy_replicas = 1;
  std::vector<int> damaged_domains;  // at most buddy_replicas - 1
  bool damage_by_truncation = false;
  std::uint64_t fault_seed = 0;

  // ECC parity (parallel writers only, mutually exclusive with buddy):
  // 0 data domains = off. Damaged ids cover all k + m failure domains
  // (i >= k is parity file i - k).
  int ecc_k = 0;
  int ecc_m = 0;
  std::uint64_t ecc_stripe = 0;
  bool ecc_heal_mode = false;
  std::vector<int> ecc_damaged;  // at most ecc_m distinct domains
};

Schedule random_schedule(Rng& rng) {
  Schedule s;
  s.ntasks = 1 + static_cast<int>(rng.next_below(10));
  s.nfiles = 1 + static_cast<int>(
                     rng.next_below(static_cast<std::uint64_t>(
                         std::min(s.ntasks, 3))));
  s.fsblksize = 512ULL << rng.next_below(4);  // 512 .. 4 KiB
  switch (rng.next_below(4)) {
    case 0: s.writer = Writer::kSerial; break;
    case 1: s.writer = Writer::kPar; break;
    default: s.writer = Writer::kCollective; break;
  }
  s.collective.group_size = static_cast<int>(rng.next_below(5));  // 0 derives
  s.collective.buffer_bytes = 1 + rng.next_below(16 * kKiB);
  switch (rng.next_below(3)) {
    case 0:
      s.collective.alignment = ext::CollectiveConfig::Alignment::kFsBlock;
      break;
    case 1:
      s.collective.alignment = ext::CollectiveConfig::Alignment::kPacked;
      break;
    default:
      s.collective.alignment = ext::CollectiveConfig::Alignment::kNone;
      break;
  }
  s.collective.packing_granule = 512ULL << rng.next_below(4);
  for (int r = 0; r < s.ntasks; ++r) {
    s.chunksizes.push_back(64 + rng.next_below(4 * kKiB));
    // Volumes from empty through several blocks of the rank's chunk size.
    const std::uint64_t volume =
        rng.next_bool(0.15) ? 0
                            : rng.next_below(3 * s.chunksizes.back() + 1);
    std::vector<std::byte> data(volume);
    rng.fill_bytes(data);
    s.payload.push_back(std::move(data));
  }
  s.remap_tasks = 1 + static_cast<int>(
                          rng.next_below(2 * static_cast<std::uint64_t>(
                                                 s.ntasks)));
  if (rng.next_bool(0.35)) {
    s.compress = true;
    s.compress_chunk = 512ULL << rng.next_below(4);  // 512 .. 4 KiB frames
  }

  // Checkpoint protection rides on parallel writers: buddy replication
  // when the task count admits at least two equal failure domains, or ECC
  // parity (k = 1 is always admissible).
  if (s.writer != Writer::kSerial && rng.next_bool(0.4)) {
    std::vector<int> divisors;
    for (int d = 2; d <= 4; ++d) {
      if (s.ntasks % d == 0) divisors.push_back(d);
    }
    if (rng.next_bool(0.5) && !divisors.empty()) {
      s.buddy_domains = divisors[static_cast<std::size_t>(
          rng.next_below(divisors.size()))];
      s.buddy_replicas = 2 + static_cast<int>(rng.next_below(
                                 static_cast<std::uint64_t>(
                                     std::min(2, s.buddy_domains - 1))));
      // Damage a random recoverable subset: up to r-1 distinct domains.
      const int max_loss = s.buddy_replicas - 1;
      const int nlose = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(max_loss) + 1));
      while (static_cast<int>(s.damaged_domains.size()) < nlose) {
        const int d = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(s.buddy_domains)));
        if (std::find(s.damaged_domains.begin(), s.damaged_domains.end(), d) ==
            s.damaged_domains.end()) {
          s.damaged_domains.push_back(d);
        }
      }
      s.damage_by_truncation = rng.next_bool(0.5);
      s.fault_seed = rng.next_u64();
    } else {
      std::vector<int> ks = divisors;
      ks.push_back(1);
      s.ecc_k = ks[static_cast<std::size_t>(rng.next_below(ks.size()))];
      s.ecc_m = 1 + static_cast<int>(rng.next_below(2));
      s.ecc_stripe = 512ULL << rng.next_below(4);  // 512 .. 4 KiB stripes
      s.ecc_heal_mode = rng.next_bool(0.5);
      // Damage a random recoverable subset: up to m distinct domains out
      // of all k + m (data files and parity files alike).
      const int nlose = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(s.ecc_m) + 1));
      while (static_cast<int>(s.ecc_damaged.size()) < nlose) {
        const int d = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(s.ecc_k + s.ecc_m)));
        if (std::find(s.ecc_damaged.begin(), s.ecc_damaged.end(), d) ==
            s.ecc_damaged.end()) {
          s.ecc_damaged.push_back(d);
        }
      }
      s.damage_by_truncation = rng.next_bool(0.5);
      s.fault_seed = rng.next_u64();
    }
  }
  return s;
}

// The bytes a rank actually writes: raw, or its frame-compressed stream.
std::vector<std::byte> wire_bytes(const Schedule& s, int r) {
  const auto& raw = s.payload[static_cast<std::size_t>(r)];
  if (!s.compress) return raw;
  ext::CompressionSpec spec;
  spec.chunk_bytes = s.compress_chunk;
  auto enc = ext::compress_stream(raw, spec);
  EXPECT_TRUE(enc.ok());
  return enc.ok() ? std::move(enc).value() : raw;
}

void write_schedule(fs::SimFs& fs, par::Engine& engine, const Schedule& s,
                    const std::string& name) {
  if (s.writer == Writer::kSerial) {
    core::SerialWriteSpec spec;
    spec.filename = name;
    spec.chunksizes = s.chunksizes;
    spec.nfiles = s.nfiles;
    spec.fsblksize = s.fsblksize;
    auto sion = core::SionSerialFile::open_write(fs, spec);
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    for (int r = 0; r < s.ntasks; ++r) {
      const auto wire = wire_bytes(s, r);
      ASSERT_TRUE(sion.value()->seek(r, 0, 0).ok());
      ASSERT_TRUE(sion.value()->write(DataView(wire)).ok());
    }
    ASSERT_TRUE(sion.value()->close().ok());
    return;
  }
  engine.run(s.ntasks, [&](par::Comm& world) {
    const int r = world.rank();
    core::ParOpenSpec spec;
    spec.filename = name;
    spec.chunksize = s.chunksizes[static_cast<std::size_t>(r)];
    spec.nfiles = s.nfiles;
    spec.fsblksize = s.fsblksize;
    const auto wire = wire_bytes(s, r);
    const DataView payload(wire);
    if (s.buddy_domains > 0) {
      ext::BuddyConfig config;
      config.replicas = s.buddy_replicas;
      config.num_domains = s.buddy_domains;
      config.collective = s.writer == Writer::kCollective;
      config.collective_config = s.collective;
      ASSERT_TRUE(ext::Buddy::write(fs, world, spec, config, payload).ok());
      return;
    }
    if (s.ecc_k > 0) {
      ext::EccConfig config;
      config.data_domains = s.ecc_k;
      config.parity_domains = s.ecc_m;
      config.stripe_bytes = s.ecc_stripe;
      config.collective = s.writer == Writer::kCollective;
      config.collective_config = s.collective;
      ASSERT_TRUE(ext::Ecc::write(fs, world, spec, config, payload).ok());
      return;
    }
    if (s.writer == Writer::kCollective) {
      auto sion = ext::Collective::open_write(fs, world, spec, s.collective);
      ASSERT_TRUE(sion.ok()) << sion.status().to_string();
      ASSERT_TRUE(sion.value()->write(payload).ok());
      ASSERT_TRUE(sion.value()->close().ok());
    } else {
      auto sion = core::SionParFile::open_write(fs, world, spec);
      ASSERT_TRUE(sion.ok()) << sion.status().to_string();
      ASSERT_TRUE(sion.value()->write(payload).ok());
      ASSERT_TRUE(sion.value()->close().ok());
    }
  });
}

// Reopen at the writer task count and compare every rank's stream.
void check_same_scale(fs::SimFs& fs, par::Engine& engine, const Schedule& s,
                      const std::string& name, bool collective_reader) {
  engine.run(s.ntasks, [&](par::Comm& world) {
    const auto& expect = s.payload[static_cast<std::size_t>(world.rank())];
    const auto wire = wire_bytes(s, world.rank());
    std::vector<std::byte> back(wire.size());
    if (collective_reader) {
      auto sion = ext::Collective::open_read(fs, world, name, s.collective);
      ASSERT_TRUE(sion.ok()) << sion.status().to_string();
      ASSERT_EQ(sion.value()->bytes_remaining_total(), wire.size());
      auto got = sion.value()->read(back);
      ASSERT_TRUE(got.ok()) << got.status().to_string();
      ASSERT_EQ(got.value(), wire.size());
      ASSERT_TRUE(sion.value()->close().ok());
    } else {
      auto sion = core::SionParFile::open_read(fs, world, name);
      ASSERT_TRUE(sion.ok()) << sion.status().to_string();
      ASSERT_EQ(sion.value()->bytes_remaining_total(), wire.size());
      auto got = sion.value()->read(back);
      ASSERT_TRUE(got.ok()) << got.status().to_string();
      ASSERT_EQ(got.value(), wire.size());
      ASSERT_TRUE(sion.value()->close().ok());
    }
    EXPECT_EQ(back, wire);
    if (s.compress) {
      ext::StreamLossReport loss;
      auto decoded = ext::decompress_stream(back, &loss);
      ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
      EXPECT_EQ(decoded.value(), expect);
      EXPECT_TRUE(loss.clean());
    }
  });
}

// Restore onto a different task count and compare against the concatenated
// reference.
void check_remap(fs::SimFs& fs, par::Engine& engine, const Schedule& s,
                 const std::string& name, std::uint64_t wave_bytes) {
  std::vector<std::byte> expect;
  for (const auto& p : s.payload) expect.insert(expect.end(), p.begin(),
                                                p.end());
  std::vector<std::byte> got(expect.size());
  engine.run(s.remap_tasks, [&](par::Comm& world) {
    ext::RemapConfig config;
    config.buffer_bytes = wave_bytes;
    config.transparent_decompress = s.compress;
    auto remap = ext::Remap::open(fs, world, name, config);
    ASSERT_TRUE(remap.ok()) << remap.status().to_string();
    ASSERT_EQ(remap.value()->nwriters(), s.ntasks);
    ASSERT_EQ(remap.value()->total_bytes(), expect.size());
    const std::uint64_t lo = remap.value()->even_share_offset(world.rank());
    std::vector<std::byte> mine(remap.value()->even_share(world.rank()));
    auto stats = remap.value()->restore(mine, mine.size());
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    if (!mine.empty()) std::memcpy(got.data() + lo, mine.data(), mine.size());
    ASSERT_TRUE(remap.value()->close().ok());
  });
  EXPECT_EQ(got, expect);
}

// Damage the schedule's chosen domains through a seeded FaultPlan (whole
// owned files lost, or the primary silently truncated), then restore
// through the buddy heal + remap pipeline and compare against the
// reference.
void damage_and_check_buddy(fs::SimFs& fs, par::Engine& engine,
                            const Schedule& s, const std::string& name) {
  fs::FaultPlan plan;
  plan.seed = s.fault_seed;
  for (const int d : s.damaged_domains) {
    if (s.damage_by_truncation) {
      plan.truncate(
          core::physical_file_name(name, d, s.buddy_domains),
          plan.seed % 997);  // always shorter than the metablock-2 tail
    } else {
      plan.lose(core::physical_file_name(name, d, s.buddy_domains));
      for (int k = 1; k < s.buddy_replicas; ++k) {
        plan.lose(core::physical_file_name(
            ext::Buddy::replica_name(name, k), d, s.buddy_domains));
      }
    }
  }
  fs.arm_faults(plan);

  std::vector<std::byte> expect;
  for (const auto& p : s.payload) expect.insert(expect.end(), p.begin(),
                                                p.end());
  std::vector<std::byte> got(expect.size());
  engine.run(s.remap_tasks, [&](par::Comm& world) {
    ext::BuddyConfig config;
    config.replicas = s.buddy_replicas;
    config.num_domains = s.buddy_domains;
    const std::uint64_t total = expect.size();
    const auto msize = static_cast<std::uint64_t>(world.size());
    const auto me = static_cast<std::uint64_t>(world.rank());
    const std::uint64_t lo = total * me / msize;
    const std::uint64_t hi = total * (me + 1) / msize;
    std::vector<std::byte> mine(hi - lo);
    ext::RemapConfig remap;
    remap.transparent_decompress = s.compress;
    auto stats = ext::Buddy::restore(fs, world, name, config, mine,
                                     mine.size(), remap);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    if (!mine.empty()) std::memcpy(got.data() + lo, mine.data(), mine.size());
  });
  fs.disarm_faults();
  EXPECT_EQ(got, expect);
}

// Damage the schedule's chosen ECC failure domains (data files and parity
// files alike — lost, or silently truncated: data mid-metablock, parity
// into its header), then restore through the ECC pipeline — heal-first or
// degraded inline decode per the schedule — and compare against the
// reference.
void damage_and_check_ecc(fs::SimFs& fs, par::Engine& engine,
                          const Schedule& s, const std::string& name) {
  fs::FaultPlan plan;
  plan.seed = s.fault_seed;
  for (const int d : s.ecc_damaged) {
    const std::string path =
        d < s.ecc_k
            ? core::physical_file_name(name, d, s.ecc_k)
            : ext::Ecc::parity_name(name, d - s.ecc_k);
    if (s.damage_by_truncation) {
      // Data files: below the metablock-2 tail. Parity files: into the
      // 512-byte-aligned header, so the checksum catches it.
      plan.truncate(path, d < s.ecc_k ? plan.seed % 997 : plan.seed % 400);
    } else {
      plan.lose(path);
    }
  }
  fs.arm_faults(plan);

  std::vector<std::byte> expect;
  for (const auto& p : s.payload) expect.insert(expect.end(), p.begin(),
                                                p.end());
  std::vector<std::byte> got(expect.size());
  engine.run(s.remap_tasks, [&](par::Comm& world) {
    ext::EccConfig config;
    config.data_domains = s.ecc_k;
    config.parity_domains = s.ecc_m;
    config.stripe_bytes = s.ecc_stripe;
    config.restore_mode = s.ecc_heal_mode ? ext::EccConfig::Restore::kHeal
                                          : ext::EccConfig::Restore::kDegraded;
    const std::uint64_t total = expect.size();
    const auto msize = static_cast<std::uint64_t>(world.size());
    const auto me = static_cast<std::uint64_t>(world.rank());
    const std::uint64_t lo = total * me / msize;
    const std::uint64_t hi = total * (me + 1) / msize;
    std::vector<std::byte> mine(hi - lo);
    ext::RemapConfig remap;
    remap.transparent_decompress = s.compress;
    auto stats = ext::Ecc::restore(fs, world, name, config, mine,
                                   mine.size(), remap);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    if (!mine.empty()) std::memcpy(got.data() + lo, mine.data(), mine.size());
  });
  fs.disarm_faults();
  EXPECT_EQ(got, expect);
}

class RoundtripFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundtripFuzzTest, WriteReopenReadIsByteIdentical) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    SCOPED_TRACE(testing::Message() << "seed " << GetParam() << " iter "
                                    << iter);
    const Schedule s = random_schedule(rng);
    fs::SimFs fs(fs::TestbedConfig());
    par::Engine engine;
    const std::string name = "fuzz.sion";
    write_schedule(fs, engine, s, name);
    if (::testing::Test::HasFatalFailure()) return;

    // The multifile format is reader-agnostic: collectively written files
    // read back through the plain reader and vice versa (serial-written
    // files have per-rank chunk sizes, which the collective reader models
    // too). Pick the reader randomly, sometimes crossing the writer.
    // Buddy primaries are ordinary contiguous multifiles, so the same
    // checks run against them before any damage.
    const bool collective_reader = rng.next_bool(0.5);
    check_same_scale(fs, engine, s, name, collective_reader);
    if (::testing::Test::HasFatalFailure()) return;

    // N->M: random restart task count, random wave size (small waves force
    // multi-wave streams).
    const std::uint64_t wave = 1 + rng.next_below(8 * kKiB);
    check_remap(fs, engine, s, name, wave);
    if (::testing::Test::HasFatalFailure()) return;

    // Buddy schedules: inject the scripted failure scenario and prove the
    // redundant copies still reconstruct the reference bytes exactly.
    if (s.buddy_domains > 0) {
      damage_and_check_buddy(fs, engine, s, name);
      if (::testing::Test::HasFatalFailure()) return;
    }

    // ECC schedules: same idea — damage up to m of the k + m failure
    // domains and prove the parity reconstructs the reference exactly.
    if (s.ecc_k > 0) {
      damage_and_check_ecc(fs, engine, s, name);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundtripFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace sion
