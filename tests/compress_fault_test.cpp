// Compression fault battery: the slz frame layer must degrade, never abort.
// Seeded damage — bit flips, torn trailers, forged headers, truncations at
// every byte boundary, garbage between frames — may cost the damaged frames
// (zero-filled or discarded, accounted in StreamLossReport) but must never
// crash, hang, over-allocate, or silently deliver wrong bytes in undamaged
// regions. The end-to-end cases prove the same through a real checkpoint:
// a restart over a stream with one bit-flipped and one torn frame completes,
// skipping exactly the damaged frames.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/compress.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"
#include "workloads/checkpoint_session.h"

namespace sion::ext {
namespace {

using fs::DataView;

// Compressible but position-dependent: any mis-placed decoded byte differs.
std::vector<std::byte> pattern_payload(int rank, std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(
        (i / 7 + static_cast<std::size_t>(rank) * 13) % 251);
  }
  return out;
}

std::vector<std::byte> encode(const std::vector<std::byte>& raw,
                              std::uint64_t chunk_bytes) {
  CompressionSpec spec;
  spec.chunk_bytes = chunk_bytes;
  auto enc = compress_stream(raw, spec);
  EXPECT_TRUE(enc.ok());
  return std::move(enc).value();
}

// Offsets of every sync-marker occurrence in `bytes`.
std::vector<std::size_t> find_markers(std::span<const std::byte> bytes) {
  std::vector<std::size_t> out;
  auto it = bytes.begin();
  while (true) {
    it = std::search(it, bytes.end(), kFrameSync.begin(), kFrameSync.end());
    if (it == bytes.end()) break;
    out.push_back(static_cast<std::size_t>(it - bytes.begin()));
    ++it;
  }
  return out;
}

std::uint32_t u32_at(std::span<const std::byte> bytes, std::size_t off) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= std::to_integer<std::uint32_t>(bytes[off + i]) << (8 * i);
  }
  return v;
}

bool all_zero(std::span<const std::byte> bytes) {
  return std::all_of(bytes.begin(), bytes.end(),
                     [](std::byte b) { return b == std::byte{0}; });
}

// --- in-memory battery -----------------------------------------------------

TEST(CompressFaultTest, PayloadBitFlipZeroFillsExactlyOneFrame) {
  const auto raw = pattern_payload(0, 8192);
  auto enc = encode(raw, 2048);  // 4 frames of 2048
  const auto markers = find_markers(enc);
  ASSERT_EQ(markers.size(), 4u);
  enc[markers[1] + kFrameHeaderBytes + 3] ^= std::byte{0x40};

  StreamLossReport loss;
  auto dec = decompress_stream(enc, &loss);
  ASSERT_TRUE(dec.ok());
  ASSERT_EQ(dec.value().size(), raw.size());  // positions preserved
  EXPECT_EQ(loss.frames_decoded, 3u);
  EXPECT_EQ(loss.frames_skipped, 1u);
  EXPECT_EQ(loss.bytes_zero_filled, 2048u);
  EXPECT_EQ(loss.bytes_discarded, 0u);
  const auto got = std::span<const std::byte>(dec.value());
  EXPECT_TRUE(std::equal(got.first(2048).begin(), got.first(2048).end(),
                         raw.begin()));
  EXPECT_TRUE(all_zero(got.subspan(2048, 2048)));
  EXPECT_TRUE(std::equal(got.subspan(4096).begin(), got.subspan(4096).end(),
                         raw.begin() + 4096));
}

TEST(CompressFaultTest, TornTrailerZeroFillsThatFrame) {
  const auto raw = pattern_payload(1, 6144);
  auto enc = encode(raw, 2048);
  const auto markers = find_markers(enc);
  ASSERT_EQ(markers.size(), 3u);
  const std::uint32_t comp = u32_at(enc, markers[2] + 8);
  for (std::size_t i = 0; i < kFrameTrailerBytes; ++i) {
    enc[markers[2] + kFrameHeaderBytes + comp + i] = std::byte{0xFF};
  }

  StreamLossReport loss;
  auto dec = decompress_stream(enc, &loss);
  ASSERT_TRUE(dec.ok());
  ASSERT_EQ(dec.value().size(), raw.size());
  EXPECT_EQ(loss.frames_skipped, 1u);
  EXPECT_EQ(loss.bytes_zero_filled, 2048u);
  EXPECT_TRUE(all_zero(std::span<const std::byte>(dec.value()).subspan(4096)));
}

TEST(CompressFaultTest, HeaderDamageDiscardsRegionAndResyncs) {
  const auto raw = pattern_payload(2, 8192);
  auto enc = encode(raw, 2048);
  const auto markers = find_markers(enc);
  ASSERT_EQ(markers.size(), 4u);
  enc[markers[1]] ^= std::byte{0x01};  // break frame 1's sync marker

  StreamLossReport loss;
  auto dec = decompress_stream(enc, &loss);
  ASSERT_TRUE(dec.ok());
  // The damaged region's raw extent is unknowable: the stream shrinks by
  // exactly frame 1's contribution and the rest survives intact.
  ASSERT_EQ(dec.value().size(), raw.size() - 2048);
  EXPECT_EQ(loss.frames_decoded, 3u);
  EXPECT_EQ(loss.frames_skipped, 1u);
  EXPECT_EQ(loss.bytes_zero_filled, 0u);
  EXPECT_EQ(loss.bytes_discarded, markers[2] - markers[1]);
  const auto got = std::span<const std::byte>(dec.value());
  EXPECT_TRUE(std::equal(got.first(2048).begin(), got.first(2048).end(),
                         raw.begin()));
  EXPECT_TRUE(std::equal(got.subspan(2048).begin(), got.subspan(2048).end(),
                         raw.begin() + 4096));
}

TEST(CompressFaultTest, ForgedHeaderSizesWithValidCrcAreRejected) {
  // A hand-built header whose lengths exceed the format caps but whose
  // header CRC verifies: caps must reject it (no multi-GiB allocation),
  // and the scan resynchronises onto the real frames that follow.
  const auto raw = pattern_payload(3, 2048);
  const auto enc = encode(raw, 2048);
  std::vector<std::byte> stream;
  stream.insert(stream.end(), kFrameSync.begin(), kFrameSync.end());
  const std::uint32_t comp = 8;
  const std::uint32_t forged_raw = static_cast<std::uint32_t>(kGiB) + 1;
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<std::byte>((comp >> (8 * i)) & 0xFFu));
  }
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<std::byte>((forged_raw >> (8 * i)) & 0xFFu));
  }
  const std::uint32_t hcrc = crc32c(std::span<const std::byte>(stream));
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<std::byte>((hcrc >> (8 * i)) & 0xFFu));
  }
  stream.insert(stream.end(), 12, std::byte{0xAB});  // fake body + trailer
  stream.insert(stream.end(), enc.begin(), enc.end());

  StreamLossReport loss;
  auto dec = decompress_stream(stream, &loss);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value().size(), raw.size());
  EXPECT_EQ(dec.value(), raw);
  EXPECT_EQ(loss.frames_skipped, 1u);
  EXPECT_EQ(loss.frames_decoded, 1u);
}

TEST(CompressFaultTest, ForgedRawBytesMismatchZeroFillsNotCorrupts) {
  // raw_bytes altered (with the header CRC recomputed, as a deliberate
  // attacker would): the slz payload then decodes to a different size than
  // the header promises — the frame is treated as damaged, zero-filled at
  // the forged extent, never trusted.
  const auto raw = pattern_payload(4, 2048);
  auto enc = encode(raw, 2048);
  const std::uint32_t forged = 2049;
  for (int i = 0; i < 4; ++i) {
    enc[12 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((forged >> (8 * i)) & 0xFFu);
  }
  const std::uint32_t hcrc =
      crc32c(std::span<const std::byte>(enc).first(16));
  for (int i = 0; i < 4; ++i) {
    enc[16 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((hcrc >> (8 * i)) & 0xFFu);
  }
  StreamLossReport loss;
  auto dec = decompress_stream(enc, &loss);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value().size(), 2049u);
  EXPECT_TRUE(all_zero(dec.value()));
  EXPECT_EQ(loss.frames_skipped, 1u);
  EXPECT_EQ(loss.bytes_zero_filled, 2049u);
}

TEST(CompressFaultTest, TruncationAtEveryBoundaryNeverCrashes) {
  const auto raw = pattern_payload(5, 3 * 600);
  const auto enc = encode(raw, 600);
  ASSERT_EQ(find_markers(enc).size(), 3u);
  for (std::size_t cut = 0; cut <= enc.size(); ++cut) {
    StreamLossReport loss;
    auto dec = decompress_stream(
        std::span<const std::byte>(enc).first(cut), &loss);
    ASSERT_TRUE(dec.ok()) << "cut at " << cut;
    // Flips cannot occur here, only loss: whatever is delivered is either
    // the original byte at that position or a zero fill, never garbage.
    ASSERT_LE(dec.value().size(), raw.size());
    for (std::size_t i = 0; i < dec.value().size(); ++i) {
      ASSERT_TRUE(dec.value()[i] == raw[i] || dec.value()[i] == std::byte{0})
          << "cut " << cut << " byte " << i;
    }
  }
}

TEST(CompressFaultTest, GarbageBetweenFramesIsDiscardedAndCounted) {
  const auto raw = pattern_payload(6, 4096);
  const auto enc = encode(raw, 2048);
  const auto markers = find_markers(enc);
  ASSERT_EQ(markers.size(), 2u);
  std::vector<std::byte> spliced(enc.begin(), enc.begin() + markers[1]);
  spliced.insert(spliced.end(), 333, std::byte{0x55});
  spliced.insert(spliced.end(), enc.begin() + markers[1], enc.end());

  StreamLossReport loss;
  auto dec = decompress_stream(spliced, &loss);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), raw);
  EXPECT_EQ(loss.frames_decoded, 2u);
  EXPECT_EQ(loss.frames_skipped, 1u);  // the garbage region
  EXPECT_EQ(loss.bytes_discarded, 333u);
  EXPECT_EQ(loss.bytes_zero_filled, 0u);
}

TEST(CompressFaultTest, SeededMutationFuzzNeverCrashesOrOverAllocates) {
  const auto raw = pattern_payload(7, 10000);
  const auto clean = encode(raw, 1024);
  Rng rng(0xFAB17);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::byte> enc = clean;
    const int kind = static_cast<int>(rng.next_below(3));
    if (kind == 0) {
      const int flips = 1 + static_cast<int>(rng.next_below(8));
      for (int f = 0; f < flips; ++f) {
        enc[static_cast<std::size_t>(rng.next_below(enc.size()))] ^=
            static_cast<std::byte>(1u << rng.next_below(8));
      }
    } else if (kind == 1) {
      enc.resize(static_cast<std::size_t>(rng.next_below(enc.size() + 1)));
    } else {
      const std::size_t at =
          static_cast<std::size_t>(rng.next_below(enc.size()));
      const std::size_t run = std::min<std::size_t>(
          enc.size() - at, 1 + static_cast<std::size_t>(rng.next_below(64)));
      std::fill_n(enc.begin() + static_cast<std::ptrdiff_t>(at), run,
                  std::byte{0x55});
    }
    StreamLossReport loss;
    auto dec = decompress_stream(enc, &loss);
    ASSERT_TRUE(dec.ok()) << "round " << round;
    // Random damage cannot forge a CRC-valid header, so the decoded stream
    // can only shrink or hold its size — an allocation bound.
    ASSERT_LE(dec.value().size(), raw.size()) << "round " << round;
  }
}

// --- end-to-end: damaged compressed checkpoint restores with known loss ----

TEST(CompressFaultTest, RestoreSkipsExactlyTheDamagedFrames) {
  fs::SimFs fsim(fs::TestbedConfig());
  par::Engine engine;
  const int n = 2;
  const std::size_t per_rank = 8192;

  auto make_spec = [](StreamLossReport* sink) {
    workloads::CheckpointSpec spec;
    spec.path = "dmg.ckpt";
    CompressionSpec compression;
    compression.chunk_bytes = 2048;  // 4 frames per rank
    compression.loss_report = sink;
    spec.compression = compression;
    return spec;
  };

  engine.run(n, [&](par::Comm& world) {
    const auto mine = pattern_payload(world.rank(), per_rank);
    ASSERT_TRUE(workloads::write_checkpoint(fsim, world, make_spec(nullptr),
                                            DataView(mine))
                    .ok());
  });

  // Serial damage pass over the physical file: flip one payload byte in
  // rank 0's second frame, tear rank 1's third frame's trailer.
  {
    auto file = fsim.open_rw("dmg.ckpt");
    ASSERT_TRUE(file.ok());
    auto st = file.value()->stat();
    ASSERT_TRUE(st.ok());
    std::vector<std::byte> bytes(st.value().size);
    ASSERT_TRUE(file.value()->pread(bytes, 0).ok());
    const auto markers = find_markers(bytes);
    ASSERT_EQ(markers.size(), 8u);  // 2 ranks x 4 frames, in rank order

    const std::vector<std::byte> flip{
        bytes[markers[1] + kFrameHeaderBytes + 5] ^ std::byte{0x10}};
    ASSERT_TRUE(file.value()
                    ->pwrite(DataView(flip),
                             markers[1] + kFrameHeaderBytes + 5)
                    .ok());
    const std::uint32_t comp = u32_at(bytes, markers[6] + 8);
    const std::vector<std::byte> tear(kFrameTrailerBytes, std::byte{0xEE});
    ASSERT_TRUE(file.value()
                    ->pwrite(DataView(tear),
                             markers[6] + kFrameHeaderBytes + comp)
                    .ok());
  }

  engine.run(n, [&](par::Comm& world) {
    StreamLossReport loss;
    const auto spec = make_spec(&loss);
    std::vector<std::byte> back(per_rank);
    ASSERT_TRUE(workloads::CheckpointSession::restore(fsim, world, spec, 0,
                                                      per_rank, back)
                    .ok());
    // The loss report is global (allreduced), identical on every task.
    EXPECT_EQ(loss.frames_decoded, 6u);
    EXPECT_EQ(loss.frames_skipped, 2u);
    EXPECT_EQ(loss.bytes_zero_filled, 2u * 2048u);
    EXPECT_EQ(loss.bytes_discarded, 0u);
    EXPECT_FALSE(loss.clean());

    const auto want = pattern_payload(world.rank(), per_rank);
    const auto got = std::span<const std::byte>(back);
    // Rank 0 lost frame 1 ([2048, 4096)); rank 1 lost frame 2
    // ([4096, 6144)). Undamaged regions are byte-identical, damaged
    // extents exactly zero.
    const std::size_t lost_at = world.rank() == 0 ? 2048 : 4096;
    for (std::size_t i = 0; i < per_rank; ++i) {
      if (i >= lost_at && i < lost_at + 2048) {
        ASSERT_EQ(got[i], std::byte{0}) << "rank " << world.rank() << " " << i;
      } else {
        ASSERT_EQ(got[i], want[i]) << "rank " << world.rank() << " " << i;
      }
    }
  });
}

TEST(CompressFaultTest, CompressedRestoreIsByteIdenticalAcrossScales) {
  // N=2 writers -> M in {1, 2, 4} readers through ext::Remap, transparent
  // decode; every reader receives its slice of the concatenated stream.
  fs::SimFs fsim(fs::TestbedConfig());
  par::Engine engine;
  const int n = 2;
  const std::size_t per_rank = 6000;

  workloads::CheckpointSpec spec;
  spec.path = "scale.ckpt";
  CompressionSpec compression;
  compression.chunk_bytes = 1024;
  spec.compression = compression;

  engine.run(n, [&](par::Comm& world) {
    const auto mine = pattern_payload(world.rank(), per_rank);
    ASSERT_TRUE(
        workloads::write_checkpoint(fsim, world, spec, DataView(mine)).ok());
  });

  std::vector<std::byte> all;
  for (int r = 0; r < n; ++r) {
    const auto mine = pattern_payload(r, per_rank);
    all.insert(all.end(), mine.begin(), mine.end());
  }

  for (const int m : {1, 2, 4}) {
    engine.run(m, [&](par::Comm& world) {
      StreamLossReport loss;
      auto rspec = spec;
      rspec.restart_ntasks = m;
      rspec.compression->loss_report = &loss;
      const std::size_t share = all.size() / static_cast<std::size_t>(m);
      std::vector<std::byte> back(share);
      ASSERT_TRUE(workloads::read_checkpoint(fsim, world, rspec, share, back)
                      .ok())
          << "m=" << m;
      EXPECT_TRUE(loss.clean());
      EXPECT_GT(loss.frames_decoded, 0u);
      const auto want = std::span<const std::byte>(all).subspan(
          static_cast<std::size_t>(world.rank()) * share, share);
      EXPECT_TRUE(std::equal(back.begin(), back.end(), want.begin()))
          << "m=" << m << " rank " << world.rank();
    });
  }
}

TEST(CompressFaultTest, StagedCompressedSessionRestoresLatest) {
  // Compression composes with burst-buffer staging: frames are built before
  // the fast-tier absorb, drain as opaque bytes, and restore_latest decodes
  // the newest durable checkpoint transparently.
  fs::SimConfig machine = fs::TestbedConfig();
  machine.burst_buffer.tasks_per_node = 4;
  machine.burst_buffer.node_bandwidth = 4.0e9;
  machine.burst_buffer.drain_bandwidth = 200.0e6;
  fs::SimFs fsim(machine);
  const int n = 4;
  fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
  par::Engine engine;
  const std::size_t per_rank = 4096;

  workloads::CheckpointSpec spec;
  spec.path = "staged.ckpt";
  StagingConfig staging;
  staging.fast_tier = &bb;
  spec.staging = staging;
  spec.compression = CompressionSpec{};

  engine.run(n, [&](par::Comm& world) {
    auto session = workloads::CheckpointSession::open(fsim, world, spec);
    ASSERT_TRUE(session.ok()) << session.status().to_string();
    const auto v0 = pattern_payload(world.rank(), per_rank);
    const auto v1 = pattern_payload(world.rank() + 100, per_rank);
    ASSERT_TRUE(session.value()->write_async(DataView(v0)).ok());
    ASSERT_TRUE(session.value()->write_async(DataView(v1)).ok());
    ASSERT_TRUE(session.value()->close().ok());

    StreamLossReport loss;
    auto rspec = spec;
    rspec.compression->loss_report = &loss;
    std::vector<std::byte> back(per_rank);
    auto idx = workloads::CheckpointSession::restore_latest(
        fsim, world, rspec, per_rank, back);
    ASSERT_TRUE(idx.ok()) << idx.status().to_string();
    EXPECT_EQ(idx.value(), 1u);
    EXPECT_EQ(back, v1);
    EXPECT_TRUE(loss.clean());
  });
}

}  // namespace
}  // namespace sion::ext
