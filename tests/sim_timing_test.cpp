// Virtual-time behaviour of SimFs under parallel (fiber) callers: the
// contention effects the paper's evaluation hinges on must emerge from the
// queueing model.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "common/units.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"

namespace sion::fs {
namespace {

// Run `body` on `n` tasks over a fresh engine and return the makespan.
template <typename Fn>
double makespan(par::Engine& engine, int n, Fn&& body) {
  const double t0 = engine.epoch();
  engine.run(n, std::forward<Fn>(body));
  return engine.epoch() - t0;
}

TEST(SimTimingTest, ParallelCreatesSerializeOnDirectory) {
  SimConfig cfg = TestbedConfig();  // create_service = 1 ms
  SimFs fs(cfg);
  par::Engine engine;
  const double elapsed = makespan(engine, 64, [&](par::Comm& world) {
    auto f = fs.create(strformat("file.%06d", world.rank()));
    ASSERT_TRUE(f.ok());
  });
  // 64 creates at 1 ms serialized => >= 64 ms.
  EXPECT_GE(elapsed, 0.064);
  EXPECT_LT(elapsed, 0.1);
}

TEST(SimTimingTest, CreateTimeScalesLinearlyWithTaskCount) {
  SimFs fs(TestbedConfig());
  par::Engine engine;
  const double t32 = makespan(engine, 32, [&](par::Comm& world) {
    auto f = fs.create(strformat("a.%06d", world.rank()));
    ASSERT_TRUE(f.ok());
  });
  const double t128 = makespan(engine, 128, [&](par::Comm& world) {
    auto f = fs.create(strformat("b.%06d", world.rank()));
    ASSERT_TRUE(f.ok());
  });
  EXPECT_GT(t128 / t32, 3.0);  // ~4x with some fixed overhead
  EXPECT_LT(t128 / t32, 5.0);
}

TEST(SimTimingTest, SharedFileOpenIsFarCheaperThanDistinctCreates) {
  SimFs fs(TestbedConfig());
  par::Engine engine;
  // Baseline: every task creates its own file.
  const double t_task_local = makespan(engine, 128, [&](par::Comm& world) {
    auto f = fs.create(strformat("own.%06d", world.rank()));
    ASSERT_TRUE(f.ok());
  });
  // SIONlib pattern: one task creates a shared file, everyone opens it.
  const double t_shared = makespan(engine, 128, [&](par::Comm& world) {
    if (world.rank() == 0) {
      auto f = fs.create("shared");
      ASSERT_TRUE(f.ok());
    }
    world.barrier();
    auto f = fs.open_rw("shared");
    ASSERT_TRUE(f.ok());
  });
  EXPECT_GT(t_task_local / t_shared, 10.0);
}

TEST(SimTimingTest, OpenExistingCheaperThanCreateButStillSerialized) {
  SimFs fs(TestbedConfig());  // open 0.5 ms vs create 1 ms
  par::Engine engine;
  const double t_create = makespan(engine, 64, [&](par::Comm& world) {
    auto f = fs.create(strformat("x.%06d", world.rank()));
    ASSERT_TRUE(f.ok());
  });
  fs.drop_caches();  // fresh job: nothing is hot
  const double t_open = makespan(engine, 64, [&](par::Comm& world) {
    auto f = fs.open_rw(strformat("x.%06d", world.rank()));
    ASSERT_TRUE(f.ok());
  });
  EXPECT_LT(t_open, t_create);
  EXPECT_GE(t_open, 64 * 0.0005 * 0.9);
}

TEST(SimTimingTest, DedicatedMdsSerializesAcrossDirectories) {
  SimConfig cfg = TestbedConfig();
  cfg.meta_mode = SimConfig::MetaMode::kDedicatedMds;
  SimFs fs(cfg);
  ASSERT_TRUE(fs.mkdir("d0").ok());
  ASSERT_TRUE(fs.mkdir("d1").ok());
  par::Engine engine;
  // Spreading creates over two directories does NOT help on Lustre-like
  // systems: the MDS is the bottleneck (paper: "writing the files to
  // separate directories ... only shifts the problem").
  const double elapsed = makespan(engine, 64, [&](par::Comm& world) {
    auto f = fs.create(strformat("d%d/f.%06d", world.rank() % 2, world.rank()));
    ASSERT_TRUE(f.ok());
  });
  EXPECT_GE(elapsed, 0.064);
}

TEST(SimTimingTest, DistributedModeParallelizesAcrossDirectories) {
  SimConfig cfg = TestbedConfig();
  cfg.meta_mode = SimConfig::MetaMode::kDistributedDirLock;
  SimFs fs(cfg);
  ASSERT_TRUE(fs.mkdir("d0").ok());
  ASSERT_TRUE(fs.mkdir("d1").ok());
  par::Engine engine;
  const double two_dirs = makespan(engine, 64, [&](par::Comm& world) {
    auto f = fs.create(strformat("d%d/f.%06d", world.rank() % 2, world.rank()));
    ASSERT_TRUE(f.ok());
  });
  // Two independent directory locks halve the serialization.
  EXPECT_LT(two_dirs, 0.064 * 0.7);
  EXPECT_GE(two_dirs, 0.032 * 0.9);
}

TEST(SimTimingTest, AggregateBandwidthRespectsGlobalCap) {
  SimConfig cfg = TestbedConfig();      // global 1 GB/s
  cfg.client_bandwidth = 0.0;           // isolate the global cap
  cfg.num_osts = 64;                    // OSTs not the bottleneck
  cfg.ost_bandwidth = 1.0e9;
  cfg.default_stripe_factor = 64;
  cfg.io_op_latency = 0.0;
  cfg.block_granular_locks = false;
  SimFs fs(cfg);
  par::Engine engine;
  const std::uint64_t per_task = 16 * kMiB;
  const int n = 16;
  const double elapsed = makespan(engine, n, [&](par::Comm& world) {
    if (world.rank() == 0) {
      auto f = fs.create("big");
      ASSERT_TRUE(f.ok());
    }
    world.barrier();
    auto f = fs.open_rw("big");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()
                    ->pwrite(DataView::fill(std::byte{1}, per_task),
                             static_cast<std::uint64_t>(world.rank()) * per_task)
                    .ok());
  });
  const double ideal = static_cast<double>(n) * per_task / 1.0e9;
  EXPECT_GE(elapsed, ideal * 0.95);
  EXPECT_LE(elapsed, ideal * 1.3);
}

TEST(SimTimingTest, MoreStripedOstsGiveMoreBandwidth) {
  SimConfig cfg = TestbedConfig();
  cfg.global_bandwidth = 0.0;
  cfg.client_bandwidth = 0.0;
  cfg.io_op_latency = 0.0;
  cfg.block_granular_locks = false;
  cfg.num_osts = 8;
  cfg.ost_bandwidth = 100.0e6;
  SimFs fs(cfg);
  fs.set_dir_stripe(".", 1, 64 * kKiB);
  double t_one_ost = 0;
  double t_all_osts = 0;
  par::Engine engine;
  {
    const std::uint64_t bytes = 64 * kMiB;
    t_one_ost = makespan(engine, 1, [&](par::Comm&) {
      auto f = fs.create("narrow");
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, bytes), 0).ok());
    });
    fs.set_dir_stripe(".", 8, 64 * kKiB);
    t_all_osts = makespan(engine, 1, [&](par::Comm&) {
      auto f = fs.create("wide");
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, bytes), 0).ok());
    });
  }
  EXPECT_GT(t_one_ost / t_all_osts, 6.0);  // ~8x ideal
}

TEST(SimTimingTest, PerFileBandwidthCapBindsForSingleFile) {
  SimConfig cfg = TestbedConfig();
  cfg.per_file_bandwidth = 100.0e6;
  cfg.global_bandwidth = 1.0e9;
  cfg.client_bandwidth = 0.0;
  cfg.io_op_latency = 0.0;
  cfg.block_granular_locks = false;
  cfg.num_osts = 16;
  cfg.ost_bandwidth = 1.0e9;
  cfg.default_stripe_factor = 16;
  SimFs fs(cfg);
  par::Engine engine;
  const std::uint64_t per_task = 4 * kMiB;
  // 8 tasks, one shared file: limited by the 100 MB/s per-file cap.
  const double t_one = makespan(engine, 8, [&](par::Comm& world) {
    if (world.rank() == 0) { auto f = fs.create("one"); ASSERT_TRUE(f.ok()); }
    world.barrier();
    auto f = fs.open_rw("one");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()
                    ->pwrite(DataView::fill(std::byte{1}, per_task),
                             static_cast<std::uint64_t>(world.rank()) * per_task)
                    .ok());
  });
  // 8 tasks, 8 files: per-file caps no longer bind (800 MB/s < global 1 GB/s).
  const double t_many = makespan(engine, 8, [&](par::Comm& world) {
    auto f = fs.create(strformat("many.%d", world.rank()));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()
                    ->pwrite(DataView::fill(std::byte{1}, per_task), 0)
                    .ok());
  });
  EXPECT_GT(t_one / t_many, 4.0);
}

TEST(SimTimingTest, BlockSharingCausesLockPingPong) {
  SimConfig cfg = TestbedConfig();  // 64 KiB blocks, transfer 1 ms
  cfg.io_op_latency = 0.0;
  SimFs fs(cfg);
  par::Engine engine;
  const int n = 16;
  const std::uint64_t chunk = 8 * kKiB;  // 8 tasks share each 64 KiB block

  const double t_unaligned = makespan(engine, n, [&](par::Comm& world) {
    if (world.rank() == 0) { auto f = fs.create("un"); ASSERT_TRUE(f.ok()); }
    world.barrier();
    auto f = fs.open_rw("un");
    ASSERT_TRUE(f.ok());
    for (int rep = 0; rep < 4; ++rep) {
      ASSERT_TRUE(f.value()
                      ->pwrite(DataView::fill(std::byte{1}, chunk / 4),
                               static_cast<std::uint64_t>(world.rank()) * chunk +
                                   static_cast<std::uint64_t>(rep) * chunk / 4)
                      .ok());
    }
  });
  const std::uint64_t blk = cfg.fs_block_size;
  const double t_aligned = makespan(engine, n, [&](par::Comm& world) {
    if (world.rank() == 0) { auto f = fs.create("al"); ASSERT_TRUE(f.ok()); }
    world.barrier();
    auto f = fs.open_rw("al");
    ASSERT_TRUE(f.ok());
    for (int rep = 0; rep < 4; ++rep) {
      ASSERT_TRUE(f.value()
                      ->pwrite(DataView::fill(std::byte{1}, chunk / 4),
                               static_cast<std::uint64_t>(world.rank()) * blk +
                                   static_cast<std::uint64_t>(rep) * chunk / 4)
                      .ok());
    }
  });
  EXPECT_GT(fs.counters().lock_transfers, 0u);
  EXPECT_GT(t_unaligned / t_aligned, 2.0);
}

TEST(SimTimingTest, AlignedWritesNeverTransferLocks) {
  SimConfig cfg = TestbedConfig();
  SimFs fs(cfg);
  par::Engine engine;
  makespan(engine, 8, [&](par::Comm& world) {
    if (world.rank() == 0) { auto f = fs.create("a"); ASSERT_TRUE(f.ok()); }
    world.barrier();
    auto f = fs.open_rw("a");
    ASSERT_TRUE(f.ok());
    // Each task owns its own fs blocks.
    ASSERT_TRUE(f.value()
                    ->pwrite(DataView::fill(std::byte{1}, cfg.fs_block_size),
                             static_cast<std::uint64_t>(world.rank()) *
                                 cfg.fs_block_size)
                    .ok());
  });
  EXPECT_EQ(fs.counters().lock_transfers, 0u);
}

TEST(SimTimingTest, CachedReadsBeatRemoteReads) {
  SimConfig cfg = TestbedConfig();
  cfg.block_granular_locks = false;
  cfg.io_op_latency = 0.0;
  cfg.cache_bytes_per_task = 64 * kMiB;
  cfg.cache_bandwidth = 10.0e9;
  cfg.client_bandwidth = 0.0;
  SimFs fs(cfg);
  par::Engine engine;
  const std::uint64_t bytes = 16 * kMiB;

  double t_warm = 0;
  makespan(engine, 2, [&](par::Comm& world) {
    if (world.rank() == 0) { auto f = fs.create("c"); ASSERT_TRUE(f.ok()); }
    world.barrier();
    auto f = fs.open_rw("c");
    ASSERT_TRUE(f.ok());
    const std::uint64_t off = static_cast<std::uint64_t>(world.rank()) * bytes;
    ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, bytes), off).ok());
    world.barrier();
    const double t0 = par::this_task()->now();
    ASSERT_TRUE(f.value()->pread_discard(bytes, off).ok());
    if (world.rank() == 0) t_warm = par::this_task()->now() - t0;
  });
  EXPECT_GT(fs.counters().cache_hit_bytes, 0u);
  // Cached read at 10 GB/s vs remote path at <= 1 GB/s.
  const double remote_time = static_cast<double>(bytes) / 1.0e9;
  EXPECT_LT(t_warm, remote_time * 0.5);
}

TEST(SimTimingTest, ColdReadByOtherTaskIsRemote) {
  SimConfig cfg = TestbedConfig();
  cfg.block_granular_locks = false;
  cfg.cache_bytes_per_task = 64 * kMiB;
  cfg.cache_bandwidth = 10.0e9;
  SimFs fs(cfg);
  par::Engine engine;
  const std::uint64_t bytes = 8 * kMiB;
  makespan(engine, 2, [&](par::Comm& world) {
    if (world.rank() == 0) {
      auto f = fs.create("x");
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(f.value()->pwrite(DataView::fill(std::byte{1}, bytes), 0).ok());
    }
    world.barrier();
    if (world.rank() == 1) {
      auto f = fs.open_read("x");
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(f.value()->pread_discard(bytes, 0).ok());
    }
  });
  // Rank 1 never wrote, so nothing of its read may be served from cache.
  EXPECT_EQ(fs.counters().cache_hit_bytes, 0u);
}

TEST(SimTimingTest, JugeneCreateEndpointsMatchPaper) {
  // Fig. 3(a) endpoints, scaled down 64x (1 Ki instead of 64 Ki tasks to
  // keep the test fast; the model is linear in task count).
  SimFs fs(JugeneConfig());
  ASSERT_TRUE(fs.mkdir("tl").ok());
  par::Engine engine(par::EngineConfig{.stack_bytes = 64 * 1024,
                                       .network = JugeneConfig().network});
  const int n = 1024;
  const double t_create = makespan(engine, n, [&](par::Comm& world) {
    auto f = fs.create(strformat("tl/file.%06d", world.rank()));
    ASSERT_TRUE(f.ok());
  });
  // 64 Ki extrapolation: t_create * 64 should land in the >5 min regime.
  EXPECT_GT(t_create * 64, 300.0);
  EXPECT_LT(t_create * 64, 480.0);

  fs.drop_caches();
  const double t_open = makespan(engine, n, [&](par::Comm& world) {
    auto f = fs.open_rw(strformat("tl/file.%06d", world.rank()));
    ASSERT_TRUE(f.ok());
  });
  EXPECT_GT(t_open * 64, 45.0);
  EXPECT_LT(t_open * 64, 90.0);
  EXPECT_LT(t_open, t_create);
}

// bench_collective's core loop (collective checkpoint write + timing-only
// restore on the Jugene model) must be run-to-run deterministic: the same
// configuration yields bit-identical virtual timings, which is what makes
// the BENCH_collective.json trajectory comparable across commits.
TEST(SimTimingTest, CollectiveBenchCoreLoopIsDeterministic) {
  const auto run_once = [](bool collective) {
    SimConfig machine = JugeneConfig();
    machine.client_open_service = 0.03e-3;
    machine.tasks_per_ion = std::max(1, machine.tasks_per_ion / 16);
    SimFs fs(machine);
    par::Engine engine(par::EngineConfig{.stack_bytes = 64 * 1024,
                                         .network = machine.network});
    workloads::CheckpointSpec spec;
    spec.path = "det.ckpt";
    spec.strategy = workloads::IoStrategy::kSion;
    if (collective) {
      ext::CollectiveConfig aggregation;
      aggregation.group_size = 8;
      aggregation.packing_granule = 4 * kKiB;
      spec.collective = aggregation;
    }
    const int n = 64;
    const std::uint64_t chunk = 16 * kKiB;
    const double t0 = engine.epoch();
    engine.run(n, [&](par::Comm& world) {
      ASSERT_TRUE(workloads::write_checkpoint(
                      fs, world, spec,
                      DataView::fill(std::byte{'c'}, chunk))
                      .ok());
    });
    const double t_write = engine.epoch() - t0;
    fs.drop_caches();
    const double t1 = engine.epoch();
    engine.run(n, [&](par::Comm& world) {
      ASSERT_TRUE(workloads::read_checkpoint(fs, world, spec, chunk, {}).ok());
    });
    const double t_read = engine.epoch() - t1;
    return std::make_pair(t_write, t_read);
  };

  for (const bool collective : {true, false}) {
    const auto [w1, r1] = run_once(collective);
    const auto [w2, r2] = run_once(collective);
    EXPECT_EQ(w1, w2);  // exact: virtual time never touches the wall clock
    EXPECT_EQ(r1, r2);
    EXPECT_GT(w1, 0.0);
    EXPECT_GT(r1, 0.0);
  }
  // And the aggregated path must actually be the faster one at this small
  // chunk size — the headline claim of the aggregation subsystem.
  EXPECT_LT(run_once(true).first, run_once(false).first);
}

}  // namespace
}  // namespace sion::fs
