// Tests for the command-line utility library: dump, split, defrag — and
// their interplay with sparse multifiles (gaps must disappear on defrag).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "common/units.h"
#include "core/api.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "tools/defrag.h"
#include "tools/dump.h"
#include "tools/split.h"

namespace sion::tools {
namespace {

using fs::DataView;

std::vector<std::byte> rank_pattern(int rank, std::size_t n) {
  std::vector<std::byte> out(n);
  Rng rng(0xBEEF + static_cast<std::uint64_t>(rank));
  rng.fill_bytes(out);
  return out;
}

class ToolsTest : public ::testing::Test {
 protected:
  ToolsTest() : fs_(fs::TestbedConfig()) {}

  // Multifile where ranks write very different volumes, producing gaps:
  // rank r writes r * 30000 bytes with an 8 KiB chunk (fsblksize 4 KiB).
  void write_uneven(const std::string& name, int ntasks, int nfiles) {
    par::Engine engine;
    engine.run(ntasks, [&](par::Comm& world) {
      core::ParOpenSpec spec;
      spec.filename = name;
      spec.chunksize = 8000;
      spec.fsblksize = 4096;
      spec.nfiles = nfiles;
      auto open = core::SionParFile::open_write(fs_, world, spec);
      ASSERT_TRUE(open.ok()) << open.status().to_string();
      const auto data = rank_pattern(
          world.rank(), static_cast<std::size_t>(world.rank()) * 30000);
      ASSERT_TRUE(open.value()->write(DataView(data)).ok());
      ASSERT_TRUE(open.value()->close().ok());
    });
  }

  fs::SimFs fs_;
};

TEST_F(ToolsTest, DumpReportsStructure) {
  write_uneven("d.sion", 4, 2);
  auto text = dump_multifile(fs_, "d.sion");
  ASSERT_TRUE(text.ok()) << text.status().to_string();
  EXPECT_NE(text.value().find("physical files:   2"), std::string::npos);
  EXPECT_NE(text.value().find("logical files:    4"), std::string::npos);
  EXPECT_NE(text.value().find("4.0 KiB"), std::string::npos);  // block size
  // Total payload = (0+1+2+3)*30000 = 180000 bytes.
  EXPECT_NE(text.value().find("175.8 KiB"), std::string::npos);
}

TEST_F(ToolsTest, DumpPerChunkListsEveryRank) {
  write_uneven("dc.sion", 3, 1);
  DumpOptions options;
  options.per_chunk = true;
  auto text = dump_multifile(fs_, "dc.sion", options);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("rank      0"), std::string::npos);
  EXPECT_NE(text.value().find("rank      2"), std::string::npos);
  EXPECT_NE(text.value().find("chunk"), std::string::npos);
}

TEST_F(ToolsTest, DumpMissingFileFails) {
  auto text = dump_multifile(fs_, "nope.sion");
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), ErrorCode::kNotFound);
}

TEST_F(ToolsTest, SplitRecreatesTaskFiles) {
  write_uneven("s.sion", 4, 2);
  auto n = split_multifile(fs_, "s.sion", "out");
  ASSERT_TRUE(n.ok()) << n.status().to_string();
  EXPECT_EQ(n.value(), 4);
  for (int r = 0; r < 4; ++r) {
    const std::string path = sion::strformat("out.%06d", r);
    auto st = fs_.stat_path(path);
    ASSERT_TRUE(st.ok()) << path;
    EXPECT_EQ(st.value().size, static_cast<std::uint64_t>(r) * 30000);
    const auto expect = rank_pattern(r, static_cast<std::size_t>(r) * 30000);
    auto file = fs_.open_read(path);
    ASSERT_TRUE(file.ok());
    std::vector<std::byte> got(expect.size());
    ASSERT_TRUE(file.value()->pread(got, 0).ok());
    EXPECT_EQ(got, expect) << "rank " << r;
  }
}

TEST_F(ToolsTest, SplitSingleRank) {
  write_uneven("s1.sion", 4, 1);
  SplitOptions options;
  options.only_rank = 2;
  auto n = split_multifile(fs_, "s1.sion", "one", options);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1);
  EXPECT_TRUE(fs_.exists("one.000002"));
  EXPECT_FALSE(fs_.exists("one.000000"));
  options.only_rank = 9;
  EXPECT_FALSE(split_multifile(fs_, "s1.sion", "x", options).ok());
}

TEST_F(ToolsTest, DefragContractsBlocksAndKeepsData) {
  write_uneven("f.sion", 4, 2);
  ASSERT_TRUE(defrag_multifile(fs_, "f.sion", "g.sion").ok());

  auto in = core::SionSerialFile::open_read(fs_, "g.sion");
  ASSERT_TRUE(in.ok()) << in.status().to_string();
  const auto& loc = in.value()->locations();
  EXPECT_EQ(loc.nranks, 4);
  for (int r = 0; r < 4; ++r) {
    // Exactly one chunk per task after defrag.
    EXPECT_EQ(loc.bytes_written[static_cast<std::size_t>(r)].size(), 1u);
    ASSERT_TRUE(in.value()->seek(r, 0, 0).ok());
    const auto expect = rank_pattern(r, static_cast<std::size_t>(r) * 30000);
    std::vector<std::byte> got(expect.size());
    ASSERT_TRUE(in.value()->read(got).ok());
    EXPECT_EQ(got, expect) << "rank " << r;
  }
  ASSERT_TRUE(in.value()->close().ok());
}

TEST_F(ToolsTest, DefragShrinksAllocation) {
  write_uneven("h.sion", 6, 1);
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  {
    auto in = core::SionSerialFile::open_read(fs_, "h.sion");
    ASSERT_TRUE(in.ok());
    for (const auto& path : in.value()->locations().physical_paths) {
      before += fs_.stat_path(path).value().size;
    }
    ASSERT_TRUE(in.value()->close().ok());
  }
  ASSERT_TRUE(defrag_multifile(fs_, "h.sion", "h2.sion").ok());
  {
    auto out = core::SionSerialFile::open_read(fs_, "h2.sion");
    ASSERT_TRUE(out.ok());
    for (const auto& path : out.value()->locations().physical_paths) {
      after += fs_.stat_path(path).value().size;
    }
    ASSERT_TRUE(out.value()->close().ok());
  }
  // The uneven write leaves unused logical space; the contracted file's
  // logical size must be smaller.
  EXPECT_LT(after, before);
}

TEST_F(ToolsTest, DefragCanChangePhysicalFileCount) {
  write_uneven("i.sion", 4, 4);
  DefragOptions options;
  options.nfiles = 1;
  ASSERT_TRUE(defrag_multifile(fs_, "i.sion", "i2.sion", options).ok());
  auto in = core::SionSerialFile::open_read(fs_, "i2.sion");
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in.value()->locations().nfiles, 1);
  EXPECT_TRUE(fs_.exists("i2.sion"));
  ASSERT_TRUE(in.value()->close().ok());
}

}  // namespace
}  // namespace sion::tools
