// ext::Collective — write aggregation through collector ranks. The key
// contracts: byte-exact round trips (including across the plain per-task
// API, since the on-disk format is an ordinary SION multifile), collector-
// only file-system traffic, and dense chunk packing under
// Alignment::kPacked.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/strings.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/collective.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"

namespace sion::ext {
namespace {

// Distinct, position-dependent payload for each rank.
std::vector<std::byte> pattern(int rank, std::uint64_t n) {
  std::vector<std::byte> out(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((static_cast<std::uint64_t>(rank) * 131 +
                                     i * 7 + 13) &
                                    0xFF);
  }
  return out;
}

TEST(CollectiveTest, RoundTripPackedSmallChunks) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  CollectiveConfig cfg;
  cfg.group_size = 4;
  cfg.alignment = CollectiveConfig::Alignment::kPacked;
  cfg.packing_granule = 4 * kKiB;
  const int n = 16;

  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "coll.sion";
    // Different sizes per rank, none block-aligned.
    spec.chunksize = 100 + 17 * static_cast<std::uint64_t>(world.rank());
    auto coll = Collective::open_write(fs, world, spec, cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    const auto payload = pattern(world.rank(), spec.chunksize);
    ASSERT_TRUE(coll.value()->write(fs::DataView(payload)).ok());
    ASSERT_TRUE(coll.value()->close().ok());
  });

  engine.run(n, [&](par::Comm& world) {
    CollectiveConfig read_cfg = cfg;
    read_cfg.group_size = 8;  // regrouping on read is allowed
    auto coll = Collective::open_read(fs, world, "coll.sion", read_cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    const std::uint64_t mine =
        100 + 17 * static_cast<std::uint64_t>(world.rank());
    EXPECT_EQ(coll.value()->bytes_remaining_total(), mine);
    std::vector<std::byte> back(mine);
    auto got = coll.value()->read(back);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    EXPECT_EQ(got.value(), mine);
    EXPECT_EQ(back, pattern(world.rank(), mine));
    ASSERT_TRUE(coll.value()->close().ok());
  });
}

TEST(CollectiveTest, CollectiveWriteReadsBackPerRankThroughSionParFile) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  CollectiveConfig cfg;
  cfg.group_size = 3;  // does not divide the task count
  const int n = 8;
  const std::uint64_t chunk = 3000;

  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "x.sion";
    spec.chunksize = chunk;
    auto coll = Collective::open_write(fs, world, spec, cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    const auto payload = pattern(world.rank(), chunk);
    ASSERT_TRUE(coll.value()->write(fs::DataView(payload)).ok());
    ASSERT_TRUE(coll.value()->close().ok());
  });

  // Plain per-task read: the aggregated file is an ordinary SION multifile.
  engine.run(n, [&](par::Comm& world) {
    auto sion = core::SionParFile::open_read(fs, world, "x.sion");
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    EXPECT_EQ(sion.value()->bytes_remaining_total(), chunk);
    std::vector<std::byte> back(chunk);
    auto got = sion.value()->read(back);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), chunk);
    EXPECT_EQ(back, pattern(world.rank(), chunk));
    ASSERT_TRUE(sion.value()->close().ok());
  });
}

TEST(CollectiveTest, PlainWriteReadsBackThroughCollectiveScatter) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  const int n = 6;
  const std::uint64_t chunk = 9000;

  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "y.sion";
    spec.chunksize = chunk;
    auto sion = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    const auto payload = pattern(world.rank(), chunk);
    ASSERT_TRUE(sion.value()->write(fs::DataView(payload)).ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });

  engine.run(n, [&](par::Comm& world) {
    CollectiveConfig cfg;
    cfg.group_size = 2;
    auto coll = Collective::open_read(fs, world, "y.sion", cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    std::vector<std::byte> back(chunk);
    auto got = coll.value()->read(back);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), chunk);
    EXPECT_EQ(back, pattern(world.rank(), chunk));
    ASSERT_TRUE(coll.value()->close().ok());
  });
}

TEST(CollectiveTest, MultiWaveMultiBlockPayloads) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  CollectiveConfig cfg;
  cfg.group_size = 4;
  cfg.buffer_bytes = 4 * kKiB;  // force several waves per member
  const int n = 8;
  const std::uint64_t chunk = 8 * kKiB;
  const std::uint64_t payload_bytes = 40 * kKiB + 123;  // several blocks

  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "big.sion";
    spec.chunksize = chunk;
    auto coll = Collective::open_write(fs, world, spec, cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    const auto payload = pattern(world.rank(), payload_bytes);
    ASSERT_TRUE(coll.value()->write(fs::DataView(payload)).ok());
    EXPECT_EQ(coll.value()->bytes_written_total(), payload_bytes);
    ASSERT_TRUE(coll.value()->close().ok());
  });

  engine.run(n, [&](par::Comm& world) {
    auto coll = Collective::open_read(fs, world, "big.sion", cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    EXPECT_EQ(coll.value()->bytes_remaining_total(), payload_bytes);
    std::vector<std::byte> back(payload_bytes);
    auto got = coll.value()->read(back);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), payload_bytes);
    EXPECT_EQ(back, pattern(world.rank(), payload_bytes));
    ASSERT_TRUE(coll.value()->close().ok());
  });
}

TEST(CollectiveTest, FillPayloadsRoundTripWithoutMaterialising) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  CollectiveConfig cfg;
  cfg.group_size = 4;
  cfg.buffer_bytes = 64 * kKiB;  // several fill waves per member
  const int n = 8;
  const std::uint64_t chunk = 256 * kKiB;

  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "fill.sion";
    spec.chunksize = chunk;
    auto coll = Collective::open_write(fs, world, spec, cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    ASSERT_TRUE(
        coll.value()->write(fs::DataView::fill(std::byte{'z'}, chunk)).ok());
    ASSERT_TRUE(coll.value()->close().ok());
  });
  // All payload bytes (plus metablocks) went through the file system and
  // landed as allocated extents (stored as O(1) fills, not real buffers).
  EXPECT_GE(fs.counters().bytes_written, static_cast<std::uint64_t>(n) * chunk);
  EXPECT_GE(fs.allocated_bytes(), static_cast<std::uint64_t>(n) * chunk);

  engine.run(n, [&](par::Comm& world) {
    auto coll = Collective::open_read(fs, world, "fill.sion", cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    std::vector<std::byte> back(chunk);
    auto got = coll.value()->read(back);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), chunk);
    for (const std::byte b : back) ASSERT_EQ(b, std::byte{'z'});
    ASSERT_TRUE(coll.value()->close().ok());
  });
}

TEST(CollectiveTest, OnlyCollectorsTouchTheFileSystem) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  CollectiveConfig cfg;
  cfg.group_size = 4;
  const int n = 16;  // 4 collectors, one physical file

  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "opens.sion";
    spec.chunksize = 4096;
    auto coll = Collective::open_write(fs, world, spec, cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    EXPECT_EQ(coll.value()->is_collector(), world.rank() % 4 == 0);
    ASSERT_TRUE(
        coll.value()->write(fs::DataView::fill(std::byte{1}, 4096)).ok());
    ASSERT_TRUE(coll.value()->close().ok());
  });

  // 1 create (master) + 3 opens by the other collectors + 1 block-size
  // stat; members never touch the namespace.
  EXPECT_EQ(fs.counters().creates, 1u);
  EXPECT_EQ(fs.counters().opens + fs.counters().cached_opens, 3u);
}

TEST(CollectiveTest, PackedAlignmentPacksChunksAtGranule) {
  fs::SimFs fs(fs::TestbedConfig());  // 64 KiB fs blocks
  par::Engine engine;
  CollectiveConfig cfg;
  cfg.group_size = 4;
  cfg.alignment = CollectiveConfig::Alignment::kPacked;
  cfg.packing_granule = 4 * kKiB;
  const int n = 8;

  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "packed.sion";
    spec.chunksize = 100;  // tiny payloads
    auto coll = Collective::open_write(fs, world, spec, cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    ASSERT_TRUE(
        coll.value()->write(fs::DataView::fill(std::byte{7}, 100)).ok());
    ASSERT_TRUE(coll.value()->close().ok());
  });

  // Per-rank capacity is one 4 KiB granule, not one 64 KiB fs block —
  // except for the last rank of each group, whose chunk absorbs the pad to
  // the real block boundary.
  engine.run(n, [&](par::Comm& world) {
    auto sion = core::SionParFile::open_read(fs, world, "packed.sion");
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    EXPECT_EQ(sion.value()->fsblksize(), 4 * kKiB);
    if (world.rank() % 4 != 3) {
      EXPECT_EQ(sion.value()->chunk_capacity(), 4 * kKiB);
    } else {
      EXPECT_GE(sion.value()->chunk_capacity(), 4 * kKiB);
    }
    ASSERT_TRUE(sion.value()->close().ok());
  });
}

TEST(CollectiveTest, MultipleFilesAndSkipRestore) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  CollectiveConfig cfg;
  cfg.group_size = 2;
  const int n = 8;
  const std::uint64_t chunk = 5000;

  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "multi.sion";
    spec.chunksize = chunk;
    spec.nfiles = 2;
    auto coll = Collective::open_write(fs, world, spec, cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    EXPECT_EQ(coll.value()->nfiles(), 2);
    ASSERT_TRUE(
        coll.value()->write(fs::DataView::fill(std::byte{'m'}, chunk)).ok());
    ASSERT_TRUE(coll.value()->close().ok());
  });

  engine.run(n, [&](par::Comm& world) {
    auto coll = Collective::open_read(fs, world, "multi.sion", cfg);
    ASSERT_TRUE(coll.ok()) << coll.status().to_string();
    EXPECT_EQ(coll.value()->bytes_remaining_total(), chunk);
    ASSERT_TRUE(coll.value()->read_skip(chunk).ok());
    EXPECT_EQ(coll.value()->bytes_remaining_total(), 0u);
    ASSERT_TRUE(coll.value()->close().ok());
  });
}

TEST(CollectiveTest, CheckpointWorkloadCollectiveFlagRoundTrips) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  const int n = 12;

  workloads::CheckpointSpec spec;
  spec.path = "ckpt.sion";
  spec.strategy = workloads::IoStrategy::kSion;
  spec.collective = ext::CollectiveConfig{.group_size = 4};

  engine.run(n, [&](par::Comm& world) {
    const auto payload =
        pattern(world.rank(), 2048 + 100 * static_cast<std::uint64_t>(
                                               world.rank()));
    ASSERT_TRUE(workloads::write_checkpoint(fs, world, spec,
                                            fs::DataView(payload))
                    .ok());
  });
  fs.drop_caches();
  engine.run(n, [&](par::Comm& world) {
    const auto expect =
        pattern(world.rank(), 2048 + 100 * static_cast<std::uint64_t>(
                                               world.rank()));
    std::vector<std::byte> back(expect.size());
    ASSERT_TRUE(workloads::read_checkpoint(fs, world, spec, expect.size(),
                                           back)
                    .ok());
    EXPECT_EQ(back, expect);
  });
}

TEST(CollectiveTest, RejectsChunkFramesAndZeroChunksize) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    CollectiveConfig cfg;
    core::ParOpenSpec spec;
    spec.filename = "bad.sion";
    spec.chunksize = 1024;
    spec.chunk_frames = true;
    auto coll = Collective::open_write(fs, world, spec, cfg);
    EXPECT_FALSE(coll.ok());
    (void)world;
  });
}

TEST(CollectiveTest, SplitGroupsHelper) {
  par::Engine engine;
  engine.run(10, [&](par::Comm& world) {
    par::Comm* g = world.split_groups(4);
    ASSERT_NE(g, nullptr);
    const int expect_size = world.rank() < 8 ? 4 : 2;
    EXPECT_EQ(g->size(), expect_size);
    EXPECT_EQ(g->rank(), world.rank() % 4);
    par::Comm* whole = world.split_groups(0);
    ASSERT_NE(whole, nullptr);
    EXPECT_EQ(whole->size(), world.size());
  });
}

}  // namespace
}  // namespace sion::ext
