// Staging battery (ctest label: staging): the asynchronous multi-tier
// checkpoint path behind workloads::CheckpointSession + ext::Staging.
//
// What these tests pin down: (1) the redesigned session API in sync mode is
// cost-identical to the legacy one-shot free functions, (2) a staged
// write_async blocks only for the fast-tier absorb while the drain overlaps
// compute, (3) the double-buffer invariant — a slot's previous occupant is
// drained before it is overwritten, (4) a fast-tier fault (kLost/kTruncate)
// mid-drain fails the wait on every rank and restore_latest falls back to
// the last durable checkpoint, (5) buddy replicas fabricated at drain time
// are real, heal-able files, (6) the burst-buffer capacity check rejects
// over-committed nodes, and (7) staged runs are bit-deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/units.h"
#include "core/metadata.h"
#include "core/par_file.h"
#include "ext/buddy.h"
#include "ext/staging.h"
#include "fs/sim/fault.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"
#include "workloads/checkpoint_session.h"

namespace sion::workloads {
namespace {

using fs::DataView;
using fs::FaultPlan;

// Content varies with both rank and checkpoint index so a restore that
// lands on the wrong checkpoint (or the wrong stream) is detected.
std::vector<std::byte> payload_of(int rank, std::uint64_t index,
                                  std::uint64_t bytes) {
  std::vector<std::byte> data(bytes);
  Rng rng(0x57a6 + 977 * index + static_cast<std::uint64_t>(rank));
  rng.fill_bytes(data);
  return data;
}

// Run `body` on `n` tasks over a fresh engine and return the makespan.
template <typename Fn>
double makespan(par::Engine& engine, int n, Fn&& body) {
  const double t0 = engine.epoch();
  engine.run(n, std::forward<Fn>(body));
  return engine.epoch() - t0;
}

// Testbed parallel tier with a burst-buffer tier in front: 4 tasks per
// node, absorb at 4 GB/s per node (≫ the 1 GB/s parallel tier), drain at
// 200 MB/s per node. With 8 tasks that is 2 burst-buffer nodes.
fs::SimConfig staged_machine() {
  fs::SimConfig machine = fs::TestbedConfig();
  machine.burst_buffer.tasks_per_node = 4;
  machine.burst_buffer.node_bandwidth = 4.0e9;
  machine.burst_buffer.drain_bandwidth = 200.0e6;
  return machine;
}

CheckpointSpec staged_spec(const std::string& path, fs::FileSystem& fast) {
  CheckpointSpec spec;
  spec.path = path;
  ext::StagingConfig staging;
  staging.fast_tier = &fast;
  spec.staging = staging;
  return spec;
}

// --- API equivalence -------------------------------------------------------

// The one-shot free functions survive as wrappers over CheckpointSession;
// a sync-mode session must cost exactly what the legacy call costs, for
// every strategy (open/close add no I/O and no collectives).
TEST(CheckpointSessionTest, SyncSessionCostMatchesLegacyFreeFunction) {
  for (const IoStrategy strategy :
       {IoStrategy::kSion, IoStrategy::kSingleFileSeq,
        IoStrategy::kTaskLocal}) {
    CheckpointSpec spec;
    spec.path = "eq.ckpt";
    spec.strategy = strategy;
    const int n = 8;
    double t_legacy = 0.0;
    {
      fs::SimFs fs(fs::TestbedConfig());
      par::Engine engine;
      t_legacy = makespan(engine, n, [&](par::Comm& world) {
        const auto mine = payload_of(world.rank(), 0, 256 * kKiB);
        ASSERT_TRUE(write_checkpoint(fs, world, spec, DataView(mine)).ok());
      });
    }
    double t_session = 0.0;
    {
      fs::SimFs fs(fs::TestbedConfig());
      par::Engine engine;
      t_session = makespan(engine, n, [&](par::Comm& world) {
        const auto mine = payload_of(world.rank(), 0, 256 * kKiB);
        auto session = CheckpointSession::open(fs, world, spec);
        ASSERT_TRUE(session.ok()) << session.status().to_string();
        auto ticket = session.value()->write_async(DataView(mine));
        ASSERT_TRUE(ticket.ok()) << ticket.status().to_string();
        ASSERT_TRUE(session.value()->wait(ticket.value()).ok());
        ASSERT_TRUE(session.value()->close().ok());
      });
    }
    EXPECT_EQ(t_legacy, t_session)
        << "sync session diverged from write_checkpoint for strategy "
        << static_cast<int>(strategy);
  }
}

// A checkpoint written through the session is readable through the legacy
// read_checkpoint wrapper (index 0 keeps the legacy name).
TEST(CheckpointSessionTest, LegacyReaderOpensSessionCheckpoint) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    CheckpointSpec spec;
    spec.path = "compat.sion";
    const auto mine = payload_of(world.rank(), 0, 64 * kKiB);
    auto session = CheckpointSession::open(fs, world, spec);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value()->write_async(DataView(mine)).ok());
    ASSERT_TRUE(session.value()->close().ok());
    std::vector<std::byte> back(mine.size());
    ASSERT_TRUE(read_checkpoint(fs, world, spec, mine.size(), back).ok());
    EXPECT_EQ(back, mine);
  });
}

// --- staged happy path -----------------------------------------------------

TEST(StagingSessionTest, StagedRoundtripAndRestoreLatest) {
  const int n = 8;
  const std::uint64_t bytes = 256 * kKiB;
  fs::SimConfig machine = staged_machine();
  fs::SimFs pfs(machine);
  fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
  const CheckpointSpec spec = staged_spec("rt.sion", bb);
  par::Engine engine;
  engine.run(n, [&](par::Comm& world) {
    auto session = CheckpointSession::open(pfs, world, spec);
    ASSERT_TRUE(session.ok()) << session.status().to_string();
    for (std::uint64_t k = 0; k < 3; ++k) {
      const auto mine = payload_of(world.rank(), k, bytes);
      auto ticket = session.value()->write_async(DataView(mine));
      ASSERT_TRUE(ticket.ok()) << ticket.status().to_string();
      EXPECT_EQ(ticket.value().index, k);
      par::this_task()->compute(1.0e-3);
    }
    ASSERT_TRUE(session.value()->close().ok());
    const auto& records = session.value()->history();
    ASSERT_EQ(records.size(), 3u);
    for (const auto& rec : records) {
      EXPECT_EQ(rec.state, CheckpointSession::State::kComplete);
      EXPECT_GT(rec.complete_vtime, rec.snapshot_vtime);
    }
    EXPECT_EQ(records[0].name, "rt.sion");
    EXPECT_EQ(records[1].name, "rt.sion.v1");
    EXPECT_EQ(records[2].name, "rt.sion.v2");
  });
  // The manifest names checkpoint 2 as the newest durable one; a fresh job
  // restores it (every rank gets its own stream back).
  par::Engine restart;
  restart.run(n, [&](par::Comm& world) {
    std::vector<std::byte> back(bytes);
    auto restored =
        CheckpointSession::restore_latest(pfs, world, spec, bytes, back);
    ASSERT_TRUE(restored.ok()) << restored.status().to_string();
    EXPECT_EQ(restored.value(), 2u);
    EXPECT_EQ(back, payload_of(world.rank(), 2, bytes));
  });
  // Earlier versioned checkpoints stay addressable by index.
  par::Engine again;
  again.run(n, [&](par::Comm& world) {
    std::vector<std::byte> back(bytes);
    ASSERT_TRUE(
        CheckpointSession::restore(pfs, world, spec, 1, bytes, back).ok());
    EXPECT_EQ(back, payload_of(world.rank(), 1, bytes));
  });
}

// The tentpole claim: a staged write_async blocks only for the fast-tier
// absorb, far less than the synchronous parallel-tier write, and the drain
// completes later, in the background, while compute proceeds.
TEST(StagingSessionTest, WriteAsyncOverlapsDrainWithCompute) {
  const int n = 8;
  const std::uint64_t bytes = 2 * kMiB;
  double sync_block = 0.0;
  {
    fs::SimFs fs(fs::TestbedConfig());
    par::Engine engine;
    engine.run(n, [&](par::Comm& world) {
      CheckpointSpec spec;
      spec.path = "sync.sion";
      const auto mine = payload_of(world.rank(), 0, bytes);
      auto session = CheckpointSession::open(fs, world, spec);
      ASSERT_TRUE(session.ok());
      const double t0 = par::this_task()->now();
      ASSERT_TRUE(session.value()->write_async(DataView(mine)).ok());
      if (world.rank() == 0) sync_block = par::this_task()->now() - t0;
      ASSERT_TRUE(session.value()->close().ok());
    });
  }
  double staged_block = 0.0;
  double staged_return_vtime = 0.0;
  double staged_complete_vtime = 0.0;
  {
    fs::SimConfig machine = staged_machine();
    fs::SimFs pfs(machine);
    fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
    const CheckpointSpec spec = staged_spec("async.sion", bb);
    par::Engine engine;
    engine.run(n, [&](par::Comm& world) {
      const auto mine = payload_of(world.rank(), 0, bytes);
      auto session = CheckpointSession::open(pfs, world, spec);
      ASSERT_TRUE(session.ok()) << session.status().to_string();
      const double t0 = par::this_task()->now();
      ASSERT_TRUE(session.value()->write_async(DataView(mine)).ok());
      if (world.rank() == 0) {
        staged_block = par::this_task()->now() - t0;
        staged_return_vtime = par::this_task()->now();
      }
      ASSERT_TRUE(session.value()->close().ok());
      if (world.rank() == 0) {
        staged_complete_vtime = session.value()->history()[0].complete_vtime;
      }
    });
  }
  // The absorb is much cheaper than the synchronous parallel-tier write...
  EXPECT_LT(staged_block * 4.0, sync_block);
  // ...and durability arrives later, off the application's critical path.
  EXPECT_GT(staged_complete_vtime, staged_return_vtime);
}

// --- double buffering ------------------------------------------------------

// Slot reuse must wait for the previous occupant's drain (no undrained
// buffer is ever overwritten), while the slot *not* being reused drains
// genuinely in the background.
TEST(StagingTest, SlotReuseWaitsForEviction) {
  const int n = 8;
  fs::SimConfig machine = staged_machine();
  fs::SimFs pfs(machine);
  fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
  par::Engine engine;
  engine.run(n, [&](par::Comm& world) {
    ext::StagingConfig config;
    config.fast_tier = &bb;
    core::ParOpenSpec sion;
    sion.filename = "db.sion";
    auto staging = ext::Staging::open(pfs, world, config, sion, std::nullopt,
                                      std::nullopt);
    ASSERT_TRUE(staging.ok()) << staging.status().to_string();
    for (std::uint64_t k = 0; k < 5; ++k) {
      const auto mine = payload_of(world.rank(), k, 512 * kKiB);
      auto finish = staging.value()->write(
          k, DataView(mine), strformat("db.out%d", static_cast<int>(k)));
      ASSERT_TRUE(finish.ok()) << finish.status().to_string();
      par::this_task()->compute(1.0e-3);
    }
    ASSERT_TRUE(staging.value()->drain_all().ok());
    const auto& hist = staging.value()->history();
    ASSERT_EQ(hist.size(), 5u);
    for (const auto& info : hist) {
      EXPECT_EQ(info.state, ext::Staging::SlotState::kDrained);
      EXPECT_GT(info.drain_finish, info.drain_start);
    }
    // Checkpoint 1 is absorbed while checkpoint 0 still drains (the point
    // of the second buffer)...
    EXPECT_LT(hist[1].drain_start, hist[0].drain_finish);
    // ...but checkpoint k reuses k-2's slot only after k-2 became durable.
    for (std::size_t k = 2; k < hist.size(); ++k) {
      EXPECT_GE(hist[k].drain_start, hist[k - 2].drain_finish);
    }
    EXPECT_EQ(staging.value()->last_drained(), std::optional<std::uint64_t>(4));
  });
}

// Over-committing a node's burst buffer is rejected up front: with a 6 MiB
// node capacity and 4 MiB checkpoints per node, the second in-flight
// checkpoint cannot be staged while the first still occupies its slot.
TEST(StagingTest, NodeCapacityOverflowIsRejected) {
  const int n = 8;
  fs::SimConfig machine = staged_machine();
  machine.burst_buffer.node_capacity = 6 * kMiB;
  fs::SimFs pfs(machine);
  fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
  const CheckpointSpec spec = staged_spec("cap.sion", bb);
  par::Engine engine;
  engine.run(n, [&](par::Comm& world) {
    auto session = CheckpointSession::open(pfs, world, spec);
    ASSERT_TRUE(session.ok()) << session.status().to_string();
    const auto first = payload_of(world.rank(), 0, kMiB);
    ASSERT_TRUE(session.value()->write_async(DataView(first)).ok());
    const auto second = payload_of(world.rank(), 1, kMiB);
    auto ticket = session.value()->write_async(DataView(second));
    ASSERT_FALSE(ticket.ok());
    EXPECT_NE(ticket.status().to_string().find("burst buffer"),
              std::string::npos)
        << ticket.status().to_string();
    // The first checkpoint is unaffected and still drains cleanly.
    EXPECT_TRUE(session.value()->close().ok());
  });
}

// --- fast-tier faults mid-drain --------------------------------------------

// Shared scenario: checkpoint 0 drains durably, checkpoint 1's staged slot
// files are damaged before its materialisation. The wait must fail on
// every rank and restore_latest must return checkpoint 0's bytes.
void run_mid_drain_fault(const FaultPlan& plan) {
  const int n = 8;
  const std::uint64_t bytes = 256 * kKiB;
  fs::SimConfig machine = staged_machine();
  fs::SimFs pfs(machine);
  fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
  const CheckpointSpec spec = staged_spec("ft.sion", bb);
  par::Engine engine;
  engine.run(n, [&](par::Comm& world) {
    auto session = CheckpointSession::open(pfs, world, spec);
    ASSERT_TRUE(session.ok()) << session.status().to_string();
    const auto p0 = payload_of(world.rank(), 0, bytes);
    auto t0 = session.value()->write_async(DataView(p0));
    ASSERT_TRUE(t0.ok());
    ASSERT_TRUE(session.value()->wait(t0.value()).ok());

    const auto p1 = payload_of(world.rank(), 1, bytes);
    auto t1 = session.value()->write_async(DataView(p1));
    ASSERT_TRUE(t1.ok());
    // The failure hits the fast tier while checkpoint 1 is in flight:
    // destructive rules apply at arm time, before the lazy materialisation.
    if (world.rank() == 0) bb.arm_faults(plan);
    world.barrier();
    EXPECT_FALSE(session.value()->wait(t1.value()).ok());
    // The loss was reported by the wait; nothing is left in flight, so the
    // close itself succeeds (it must not re-raise an already-reaped error).
    EXPECT_TRUE(session.value()->close().ok());
    const auto& records = session.value()->history();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].state, CheckpointSession::State::kComplete);
    EXPECT_EQ(records[1].state, CheckpointSession::State::kFailed);
  });
  // Recovery: the manifest still names checkpoint 0, whose bytes are
  // intact on the parallel tier.
  par::Engine restart;
  restart.run(n, [&](par::Comm& world) {
    std::vector<std::byte> back(bytes);
    auto restored =
        CheckpointSession::restore_latest(pfs, world, spec, bytes, back);
    ASSERT_TRUE(restored.ok()) << restored.status().to_string();
    EXPECT_EQ(restored.value(), 0u);
    EXPECT_EQ(back, payload_of(world.rank(), 0, bytes));
  });
}

TEST(StagingFaultTest, LostSlotFileFailsWaitAndRecoversToPrevious) {
  FaultPlan plan;
  plan.seed = 11;
  plan.lose("bb/*.slot1*");
  run_mid_drain_fault(plan);
}

TEST(StagingFaultTest, TruncatedSlotFileIsDetectedMidDrain) {
  FaultPlan plan;
  plan.seed = 12;
  plan.truncate("bb/*.slot1*", 64);
  run_mid_drain_fault(plan);
}

// --- buddy x staging -------------------------------------------------------

// The drain fans the staged primary out to real replica files; losing a
// primary physical file after the drain must still restore byte-exactly
// through the buddy heal path.
TEST(StagingFaultTest, DrainFabricatedReplicasSurvivePrimaryLoss) {
  const int n = 8;
  const int domains = 4;
  const std::uint64_t bytes = 128 * kKiB;
  fs::SimConfig machine = staged_machine();
  fs::SimFs pfs(machine);
  fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
  CheckpointSpec spec = staged_spec("bq.sion", bb);
  ext::BuddyConfig buddy;
  buddy.replicas = 2;
  buddy.num_domains = domains;
  spec.protection = buddy;
  par::Engine engine;
  engine.run(n, [&](par::Comm& world) {
    const auto mine = payload_of(world.rank(), 0, bytes);
    auto session = CheckpointSession::open(pfs, world, spec);
    ASSERT_TRUE(session.ok()) << session.status().to_string();
    ASSERT_TRUE(session.value()->write_async(DataView(mine)).ok());
    ASSERT_TRUE(session.value()->close().ok());
  });
  // Both the primaries and the fabricated replica set exist on the
  // parallel tier.
  for (int d = 0; d < domains; ++d) {
    EXPECT_TRUE(pfs.exists(core::physical_file_name("bq.sion", d, domains)));
    EXPECT_TRUE(pfs.exists(core::physical_file_name(
        ext::Buddy::replica_name("bq.sion", 1), d, domains)));
  }
  // Lose one primary; the replica copy must carry the restore.
  ASSERT_TRUE(pfs.remove(core::physical_file_name("bq.sion", 1, domains)).ok());
  par::Engine restart;
  restart.run(n, [&](par::Comm& world) {
    std::vector<std::byte> back(bytes);
    ASSERT_TRUE(
        CheckpointSession::restore(pfs, world, spec, 0, bytes, back).ok());
    EXPECT_EQ(back, payload_of(world.rank(), 0, bytes));
  });
}

// --- determinism -----------------------------------------------------------

// Two identical staged runs produce bit-identical virtual times: the
// background drain timelines are deterministic state, not wall-clock state.
TEST(StagingSessionTest, StagedRunsAreVirtualTimeDeterministic) {
  const int n = 8;
  const std::uint64_t bytes = 512 * kKiB;
  auto run_once = [&](double* out_makespan, std::vector<double>* out_vtimes) {
    fs::SimConfig machine = staged_machine();
    fs::SimFs pfs(machine);
    fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
    const CheckpointSpec spec = staged_spec("det.sion", bb);
    par::Engine engine;
    *out_makespan = makespan(engine, n, [&](par::Comm& world) {
      auto session = CheckpointSession::open(pfs, world, spec);
      ASSERT_TRUE(session.ok()) << session.status().to_string();
      for (std::uint64_t k = 0; k < 4; ++k) {
        const auto mine = payload_of(world.rank(), k, bytes);
        ASSERT_TRUE(session.value()->write_async(DataView(mine)).ok());
        par::this_task()->compute(2.0e-3);
      }
      ASSERT_TRUE(session.value()->close().ok());
      if (world.rank() == 0) {
        for (const auto& rec : session.value()->history()) {
          out_vtimes->push_back(rec.snapshot_vtime);
          out_vtimes->push_back(rec.complete_vtime);
        }
      }
    });
  };
  double makespan_a = 0.0, makespan_b = 0.0;
  std::vector<double> vtimes_a, vtimes_b;
  run_once(&makespan_a, &vtimes_a);
  run_once(&makespan_b, &vtimes_b);
  EXPECT_EQ(makespan_a, makespan_b);
  ASSERT_EQ(vtimes_a.size(), 8u);
  EXPECT_EQ(vtimes_a, vtimes_b);
}

}  // namespace
}  // namespace sion::workloads
