// Erasure-coding fault battery (ctest label: ecc): checkpoints written with
// ext::Ecc must survive the loss of ANY m of their k + m failure domains —
// data files and parity files alike, deleted, truncated, erroring at open
// time, or silently bit-flipped — and restore byte-identically at any
// restart scale M, either by healing the files on disk or by decoding lost
// ranges on the fly during the restart's own reads (with zero extra I/O
// passes: the lost file is never recreated). The one behavior these tests
// exist to forbid is a restore that "succeeds" with wrong bytes;
// unrecoverable scenarios must fail cleanly on every task.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/buddy.h"
#include "ext/ecc.h"
#include "ext/recovery.h"
#include "fs/sim/fault.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"
#include "workloads/checkpoint_session.h"

namespace sion::ext {
namespace {

using fs::DataView;
using fs::FaultPlan;

// Size and content both vary with the rank so any mis-routed or stale byte
// range is detected.
std::vector<std::byte> rank_payload(int rank) {
  std::vector<std::byte> data(512 + 37 * static_cast<std::size_t>(rank));
  Rng rng(8800 + static_cast<std::uint64_t>(rank));
  rng.fill_bytes(data);
  return data;
}

std::vector<std::byte> concatenated_payload(int nwriters) {
  std::vector<std::byte> all;
  for (int r = 0; r < nwriters; ++r) {
    const auto mine = rank_payload(r);
    all.insert(all.end(), mine.begin(), mine.end());
  }
  return all;
}

std::uint64_t share_offset(std::uint64_t total, int msize, int rank) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(total) *
      static_cast<std::uint64_t>(rank) / static_cast<std::uint64_t>(msize));
}

// Parameter: collective/kPacked aggregation on or off for the primary
// multifile (parity encoding reads back physical bytes either way).
class EccFaultTest : public ::testing::TestWithParam<bool> {
 protected:
  EccFaultTest() : fs_(fs::TestbedConfig()) {}

  workloads::CheckpointSpec ecc_spec(
      const std::string& path, int k, int m,
      EccConfig::Restore mode = EccConfig::Restore::kDegraded) {
    workloads::CheckpointSpec spec;
    spec.path = path;
    EccConfig ecc;
    ecc.data_domains = k;
    ecc.parity_domains = m;
    ecc.restore_mode = mode;
    spec.protection = ecc;
    if (GetParam()) {
      CollectiveConfig aggregation;
      aggregation.alignment = CollectiveConfig::Alignment::kPacked;
      aggregation.group_size = 8;
      spec.collective = aggregation;
    }
    return spec;
  }

  void write_ecc(int nwriters, const workloads::CheckpointSpec& spec) {
    par::Engine engine;
    engine.run(nwriters, [&](par::Comm& world) {
      const auto mine = rank_payload(world.rank());
      ASSERT_TRUE(
          workloads::write_checkpoint(fs_, world, spec, DataView(mine)).ok());
    });
  }

  // Path of failure domain `i` of a (k, m) set: the data file for i < k,
  // parity file i - k otherwise.
  std::string domain_path(const std::string& name, int i, int k) {
    if (i < k) return core::physical_file_name(name, i, k);
    return Ecc::parity_name(name, i - k);
  }

  std::vector<std::byte> read_all(const std::string& path) {
    auto file = fs_.open_read(path);
    EXPECT_TRUE(file.ok()) << path;
    if (!file.ok()) return {};
    auto st = file.value()->stat();
    EXPECT_TRUE(st.ok());
    std::vector<std::byte> bytes(st.value().size);
    auto got = file.value()->pread(bytes, 0);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value(), bytes.size());
    return bytes;
  }

  // Restore at `mtasks` through the workloads ECC path and compare every
  // byte against the in-memory reference.
  void restore_and_check(int nwriters, int mtasks,
                         workloads::CheckpointSpec spec) {
    const std::vector<std::byte> expect = concatenated_payload(nwriters);
    const std::uint64_t total = expect.size();
    std::vector<std::byte> got(expect.size());
    spec.restart_ntasks = mtasks;
    par::Engine engine;
    engine.run(mtasks, [&](par::Comm& world) {
      const std::uint64_t lo = share_offset(total, mtasks, world.rank());
      const std::uint64_t hi = share_offset(total, mtasks, world.rank() + 1);
      std::vector<std::byte> mine(hi - lo);
      ASSERT_TRUE(workloads::read_checkpoint(fs_, world, spec, mine.size(),
                                             mine)
                      .ok());
      std::memcpy(got.data() + lo, mine.data(), mine.size());
    });
    EXPECT_EQ(got, expect);
  }

  fs::SimFs fs_;
};

// ---------------------------------------------------------------------------
// Acceptance core 1: k = 4, m = 2 — EVERY pair of the 6 failure domains can
// be lost and heal() reconstructs both files byte-identically.
// ---------------------------------------------------------------------------

TEST_P(EccFaultTest, EveryDomainPairLossHealsByteIdentically) {
  const int kWriters = 32;
  const int k = 4;
  const int m = 2;
  for (int d1 = 0; d1 < k + m; ++d1) {
    for (int d2 = d1 + 1; d2 < k + m; ++d2) {
      SCOPED_TRACE(testing::Message() << "lost domains " << d1 << "," << d2);
      const std::string name =
          "pair" + std::to_string(d1) + std::to_string(d2) + ".ckpt";
      const auto spec = ecc_spec(name, k, m);
      write_ecc(kWriters, spec);
      const std::vector<std::byte> pristine1 =
          read_all(domain_path(name, d1, k));
      const std::vector<std::byte> pristine2 =
          read_all(domain_path(name, d2, k));
      ASSERT_TRUE(fs_.remove(domain_path(name, d1, k)).ok());
      ASSERT_TRUE(fs_.remove(domain_path(name, d2, k)).ok());
      EccConfig config;
      config.data_domains = k;
      config.parity_domains = m;
      par::Engine engine;
      engine.run(3, [&](par::Comm& world) {
        auto report = Ecc::heal(fs_, world, name, config);
        ASSERT_TRUE(report.ok()) << report.status().to_string();
        EXPECT_EQ(report.value().healed_files, 2);
        EXPECT_GT(report.value().bytes_reconstructed, 0u);
      });
      EXPECT_EQ(read_all(domain_path(name, d1, k)), pristine1);
      EXPECT_EQ(read_all(domain_path(name, d2, k)), pristine2);
      restore_and_check(kWriters, /*mtasks=*/8, spec);
    }
  }
}

// ---------------------------------------------------------------------------
// Acceptance core 2: degraded-read restarts at M in {1, N/4, N, 4N} return
// byte-identical data with ZERO heal-pass I/O — the lost files are decoded
// inline by the restart's own reads and never recreated on disk.
// ---------------------------------------------------------------------------

TEST_P(EccFaultTest, DegradedRestartAtAllScalesWithZeroHealIo) {
  const int kWriters = 64;
  const int k = 4;
  const int m = 2;
  const auto spec = ecc_spec("deg.ckpt", k, m);
  write_ecc(kWriters, spec);
  // Lose one data domain and one parity domain (m losses total).
  const std::string lost_data = domain_path("deg.ckpt", 1, k);
  const std::string lost_parity = domain_path("deg.ckpt", k + 0, k);
  ASSERT_TRUE(fs_.remove(lost_data).ok());
  ASSERT_TRUE(fs_.remove(lost_parity).ok());
  for (const int mtasks : {1, 16, 64, 256}) {
    SCOPED_TRACE(testing::Message() << "restart at " << mtasks);
    restore_and_check(kWriters, mtasks, spec);
    // Zero extra I/O passes: the degraded restart never recreated the lost
    // files (decode rides the restart's own positioned reads).
    EXPECT_FALSE(fs_.exists(lost_data));
    EXPECT_FALSE(fs_.exists(lost_parity));
  }
}

TEST_P(EccFaultTest, DegradedRestartSurvivesTwoDataDomainLosses) {
  const int kWriters = 32;
  const int k = 4;
  const auto spec = ecc_spec("deg2.ckpt", k, /*m=*/2);
  write_ecc(kWriters, spec);
  ASSERT_TRUE(fs_.remove(domain_path("deg2.ckpt", 0, k)).ok());
  ASSERT_TRUE(fs_.remove(domain_path("deg2.ckpt", 3, k)).ok());
  for (const int mtasks : {1, 8}) {
    SCOPED_TRACE(testing::Message() << "restart at " << mtasks);
    restore_and_check(kWriters, mtasks, spec);
    EXPECT_FALSE(fs_.exists(domain_path("deg2.ckpt", 0, k)));
    EXPECT_FALSE(fs_.exists(domain_path("deg2.ckpt", 3, k)));
  }
}

// kHeal restore mode repairs the set on disk first, then restarts from it:
// the next restart finds a healthy checkpoint.
TEST_P(EccFaultTest, HealModeRestoreRepairsOnDisk) {
  const int kWriters = 32;
  const int k = 4;
  const auto spec =
      ecc_spec("hm.ckpt", k, /*m=*/2, EccConfig::Restore::kHeal);
  write_ecc(kWriters, spec);
  const std::string lost_data = domain_path("hm.ckpt", 2, k);
  const std::string lost_parity = domain_path("hm.ckpt", k + 1, k);
  const std::vector<std::byte> pristine_data = read_all(lost_data);
  const std::vector<std::byte> pristine_parity = read_all(lost_parity);
  ASSERT_TRUE(fs_.remove(lost_data).ok());
  ASSERT_TRUE(fs_.remove(lost_parity).ok());
  restore_and_check(kWriters, /*mtasks=*/16, spec);
  EXPECT_EQ(read_all(lost_data), pristine_data);
  EXPECT_EQ(read_all(lost_parity), pristine_parity);
  // Nothing left to heal: the repaired set restores again untouched.
  restore_and_check(kWriters, /*mtasks=*/8, spec);
}

// ---------------------------------------------------------------------------
// Composition: transparent compression (parity covers the compressed wire
// bytes) and multi-block chunk layouts.
// ---------------------------------------------------------------------------

TEST_P(EccFaultTest, ComposesWithTransparentCompression) {
  const int kWriters = 16;
  const int k = 4;
  auto spec = ecc_spec("z.ckpt", k, /*m=*/1);
  spec.compression = ext::CompressionSpec{};
  spec.compression->chunk_bytes = 4 * kKiB;
  write_ecc(kWriters, spec);
  const std::string lost = domain_path("z.ckpt", 2, k);
  ASSERT_TRUE(fs_.remove(lost).ok());
  for (const int mtasks : {4, 16}) {
    SCOPED_TRACE(testing::Message() << "restart at " << mtasks);
    restore_and_check(kWriters, mtasks, spec);
    EXPECT_FALSE(fs_.exists(lost));
  }
}

TEST_P(EccFaultTest, MultiBlockStreamsSurviveDomainLossDegraded) {
  const int kWriters = 12;
  const int k = 3;
  EccConfig config;
  config.data_domains = k;
  config.parity_domains = 1;
  config.collective = GetParam();
  config.collective_config.group_size = 4;
  par::Engine engine;
  engine.run(kWriters, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "blocks.ckpt";
    spec.chunksize = 700;  // several blocks per 1.5-4 KiB stream
    spec.fsblksize = 512;
    const auto mine = rank_payload(world.rank() + 40);
    ASSERT_TRUE(Ecc::write(fs_, world, spec, config, DataView(mine)).ok());
  });
  ASSERT_TRUE(fs_.remove(core::physical_file_name("blocks.ckpt", 1, k)).ok());
  std::vector<std::byte> expect;
  for (int r = 0; r < kWriters; ++r) {
    const auto mine = rank_payload(r + 40);
    expect.insert(expect.end(), mine.begin(), mine.end());
  }
  std::vector<std::byte> got(expect.size());
  engine.run(5, [&](par::Comm& world) {
    const std::uint64_t lo = share_offset(expect.size(), 5, world.rank());
    const std::uint64_t hi = share_offset(expect.size(), 5, world.rank() + 1);
    std::vector<std::byte> mine(hi - lo);
    auto stats =
        Ecc::restore(fs_, world, "blocks.ckpt", config, mine, mine.size());
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    std::memcpy(got.data() + lo, mine.data(), mine.size());
  });
  EXPECT_EQ(got, expect);
  EXPECT_FALSE(fs_.exists(core::physical_file_name("blocks.ckpt", 1, k)));
}

// ---------------------------------------------------------------------------
// FaultPlan-driven scenarios
// ---------------------------------------------------------------------------

TEST_P(EccFaultTest, FaultPlanGlobTakesDataAndParityFiles) {
  const int kWriters = 16;
  const int k = 4;
  const auto spec = ecc_spec("g.ckpt", k, /*m=*/2);
  write_ecc(kWriters, spec);
  FaultPlan plan;
  plan.lose("g.ckpt.000002");
  plan.lose("g.ckpt.p1");
  fs_.arm_faults(plan);
  EXPECT_EQ(fs_.fault_counters().files_lost, 2u);
  restore_and_check(kWriters, /*mtasks=*/16, spec);
}

TEST_P(EccFaultTest, SilentTruncationOfParityIsDetectedAndReencoded) {
  const int kWriters = 16;
  const int k = 4;
  const auto spec =
      ecc_spec("t.ckpt", k, /*m=*/2, EccConfig::Restore::kHeal);
  write_ecc(kWriters, spec);
  const std::string parity0 = Ecc::parity_name("t.ckpt", 0);
  const std::vector<std::byte> pristine = read_all(parity0);
  // Silently chop the parity file mid-payload: no error surfaces until the
  // probe checks the end marker.
  FaultPlan plan;
  plan.truncate(parity0, pristine.size() / 2);
  fs_.arm_faults(plan);
  EXPECT_EQ(fs_.fault_counters().files_truncated, 1u);
  EccConfig config;
  config.data_domains = k;
  config.parity_domains = 2;
  auto probe = Ecc::probe(fs_, "t.ckpt", config);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  EXPECT_EQ(probe.value().parity_ok[0], 0);
  EXPECT_EQ(probe.value().parity_ok[1], 1);
  restore_and_check(kWriters, /*mtasks=*/8, spec);
  // The kHeal restore re-encoded the damaged parity file byte-identically.
  EXPECT_EQ(read_all(parity0), pristine);
}

// Silent in-place corruption of a data file's metadata region: the probe
// must catch it (metablock no longer parses) and the heal must rebuild the
// file byte-identically from the survivors.
TEST_P(EccFaultTest, SilentCorruptionInMetadataIsDetectedAndHealed) {
  const int kWriters = 16;
  const int k = 4;
  const auto spec =
      ecc_spec("c.ckpt", k, /*m=*/1, EccConfig::Restore::kHeal);
  write_ecc(kWriters, spec);
  const std::string victim = core::physical_file_name("c.ckpt", 0, k);
  const std::vector<std::byte> pristine = read_all(victim);
  {
    // Deterministic corruption: garbage over the file's tail, where
    // metablock 2 and the trailer live.
    auto file = fs_.open_rw(victim);
    ASSERT_TRUE(file.ok());
    std::vector<std::byte> garbage(128, std::byte{0x5A});
    ASSERT_TRUE(file.value()
                    ->pwrite(DataView(garbage), pristine.size() - 128)
                    .ok());
  }
  restore_and_check(kWriters, /*mtasks=*/16, spec);
  EXPECT_EQ(read_all(victim), pristine);
}

// The kBitFlip fault kind: seeded, counted, in-place, size-preserving.
TEST(EccFaultPlanTest, BitFlipCorruptsInPlaceAndCounts) {
  fs::SimFs fs(fs::TestbedConfig());
  std::vector<std::byte> content(8 * kKiB);
  Rng rng(42);
  rng.fill_bytes(content);
  {
    auto file = fs.create("victim.dat");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->pwrite(DataView(content), 0).ok());
  }
  FaultPlan plan;
  plan.seed = 7;
  plan.bit_flip("victim.dat", /*nbytes=*/5);
  fs.arm_faults(plan);
  EXPECT_EQ(fs.fault_counters().files_corrupted, 1u);
  EXPECT_EQ(fs.fault_counters().bytes_flipped, 5u);
  auto file = fs.open_read("victim.dat");
  ASSERT_TRUE(file.ok());
  auto st = file.value()->stat();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, content.size());  // size-preserving
  std::vector<std::byte> back(content.size());
  ASSERT_TRUE(file.value()->pread(back, 0).ok());
  EXPECT_NE(back, content);  // the corruption is real
  int differing = 0;
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (back[i] != content[i]) ++differing;
  }
  EXPECT_GE(differing, 1);
  EXPECT_LE(differing, 5);  // flips may collide on a position
  fs.disarm_faults();
  // p = 0 never fires (the counters are cumulative across plans).
  FaultPlan never;
  never.bit_flip("victim.dat", 5, /*p=*/0.0);
  fs.arm_faults(never);
  EXPECT_EQ(fs.fault_counters().files_corrupted, 1u);
  EXPECT_EQ(fs.fault_counters().bytes_flipped, 5u);
}

// A bit-flip storm over one data file corrupts its metadata (seeded and
// deterministic), so the probe rejects the file and the heal rebuilds it
// byte-identically — the end-to-end path for silent bit rot.
TEST_P(EccFaultTest, BitFlipStormOnDataFileForcesHeal) {
  const int kWriters = 16;
  const int k = 4;
  const auto spec =
      ecc_spec("rot.ckpt", k, /*m=*/1, EccConfig::Restore::kHeal);
  write_ecc(kWriters, spec);
  const std::string victim = core::physical_file_name("rot.ckpt", 3, k);
  const std::vector<std::byte> pristine = read_all(victim);
  FaultPlan plan;
  plan.seed = 11;
  // Flip as many random bytes as the file holds: the header/metablock
  // regions are hit with certainty for this seed (deterministic replay).
  plan.bit_flip(victim, pristine.size());
  fs_.arm_faults(plan);
  EXPECT_EQ(fs_.fault_counters().files_corrupted, 1u);
  EXPECT_EQ(fs_.fault_counters().bytes_flipped, pristine.size());
  EccConfig config;
  config.data_domains = k;
  config.parity_domains = 1;
  auto probe = Ecc::probe(fs_, "rot.ckpt", config);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  ASSERT_EQ(probe.value().data_ok[3], 0)
      << "seed 11 no longer corrupts the metadata; pick a new seed";
  restore_and_check(kWriters, /*mtasks=*/8, spec);
  EXPECT_EQ(read_all(victim), pristine);
}

// An operational fault (open errors, not destruction) on a data file is
// treated as a domain loss: the degraded decode routes around it.
TEST_P(EccFaultTest, OpenErrorOnDataFileIsTreatedAsDomainLoss) {
  const int kWriters = 16;
  const int k = 4;
  const auto spec = ecc_spec("o.ckpt", k, /*m=*/2);
  write_ecc(kWriters, spec);
  FaultPlan plan;
  plan.open_error(core::physical_file_name("o.ckpt", 1, k));
  fs_.arm_faults(plan);
  restore_and_check(kWriters, /*mtasks=*/16, spec);
  EXPECT_GT(fs_.fault_counters().open_errors, 0u);
}

// ---------------------------------------------------------------------------
// Unrecoverable and invalid configurations fail cleanly everywhere.
// ---------------------------------------------------------------------------

TEST_P(EccFaultTest, LosingMoreThanMDomainsFailsCleanlyOnEveryTask) {
  const int kWriters = 8;
  const int k = 2;
  const auto spec = ecc_spec("dead.ckpt", k, /*m=*/1);
  write_ecc(kWriters, spec);
  ASSERT_TRUE(fs_.remove(domain_path("dead.ckpt", 0, k)).ok());
  ASSERT_TRUE(fs_.remove(domain_path("dead.ckpt", 1, k)).ok());
  EccConfig config;
  config.data_domains = k;
  config.parity_domains = 1;
  par::Engine engine;
  int failures = 0;
  engine.run(6, [&](par::Comm& world) {
    auto stats = Ecc::restore(fs_, world, "dead.ckpt", config, {}, 0);
    EXPECT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), ErrorCode::kIoError)
        << stats.status().to_string();
    ++failures;
  });
  EXPECT_EQ(failures, 6);
}

TEST_P(EccFaultTest, InvalidConfigurationsAreRejectedEarly) {
  // Session-independent: validate_protection fires before any I/O.
  {
    auto spec = ecc_spec("bad.ckpt", 4, 0);
    EXPECT_EQ(workloads::validate_protection(spec, 8).code(),
              ErrorCode::kInvalidArgument);  // no parity domains
  }
  {
    auto spec = ecc_spec("bad.ckpt", 200, 100);
    EXPECT_EQ(workloads::validate_protection(spec, 200).code(),
              ErrorCode::kInvalidArgument);  // k + m > 255
  }
  {
    auto spec = ecc_spec("bad.ckpt", 4, 2);
    std::get<EccConfig>(spec.protection).stripe_bytes = 0;
    EXPECT_EQ(workloads::validate_protection(spec, 8).code(),
              ErrorCode::kInvalidArgument);  // no stripe
  }
  {
    auto spec = ecc_spec("bad.ckpt", 3, 1);
    EXPECT_EQ(workloads::validate_protection(spec, 8).code(),
              ErrorCode::kInvalidArgument);  // 8 % 3 != 0
    // A restart comm of any size is fine (ntasks <= 0 skips divisibility).
    EXPECT_TRUE(workloads::validate_protection(spec, 0).ok());
  }
  // The same checks guard the session open (clear failure, not a deep
  // writer error) and the direct Ecc::write path (chunk frames).
  par::Engine engine;
  engine.run(8, [&](par::Comm& world) {
    auto spec = ecc_spec("bad.ckpt", 4, 0);
    auto st = workloads::write_checkpoint(fs_, world, spec,
                                          DataView::fill(std::byte{1}, 10));
    EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);

    core::ParOpenSpec pspec;
    pspec.filename = "bad.ckpt";
    pspec.chunksize = 1024;
    pspec.chunk_frames = true;  // superseded by parity; must be rejected
    EccConfig config;
    config.data_domains = 4;
    st = Ecc::write(fs_, world, pspec, config,
                    DataView::fill(std::byte{1}, 10));
    EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  });
}

// ---------------------------------------------------------------------------
// Heal report plumbing and companion discovery (the sionrepair pre-flight).
// ---------------------------------------------------------------------------

TEST_P(EccFaultTest, HealReportsWhatItRepaired) {
  const int kWriters = 16;
  const int k = 4;
  const auto spec = ecc_spec("h.ckpt", k, /*m=*/2);
  write_ecc(kWriters, spec);
  ASSERT_TRUE(fs_.remove(domain_path("h.ckpt", 2, k)).ok());
  ASSERT_TRUE(fs_.remove(domain_path("h.ckpt", k + 1, k)).ok());
  EccConfig config;
  config.data_domains = k;
  config.parity_domains = 2;
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    auto report = Ecc::heal(fs_, world, "h.ckpt", config);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_EQ(report.value().data_files, k);
    EXPECT_EQ(report.value().parity_files, 2);
    EXPECT_EQ(report.value().damaged_data, 1);
    EXPECT_EQ(report.value().damaged_parity, 1);
    EXPECT_EQ(report.value().healed_files, 2);
    EXPECT_GT(report.value().bytes_reconstructed, 0u);
  });
  // A second pass finds a whole set: nothing to do.
  engine.run(2, [&](par::Comm& world) {
    auto report = Ecc::heal(fs_, world, "h.ckpt", config);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_EQ(report.value().damaged_data, 0);
    EXPECT_EQ(report.value().damaged_parity, 0);
    EXPECT_EQ(report.value().healed_files, 0);
  });
}

TEST(EccDiscoverProtectionTest, FindsCompanionsAndGatesRepair) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;

  // Unprotected checkpoint: no companions, no refusal.
  {
    workloads::CheckpointSpec plain;
    plain.path = "plain.ckpt";
    engine.run(4, [&](par::Comm& world) {
      const auto mine = rank_payload(world.rank());
      ASSERT_TRUE(
          workloads::write_checkpoint(fs, world, plain, DataView(mine)).ok());
    });
    auto set = discover_protection(fs, "plain.ckpt");
    ASSERT_TRUE(set.ok()) << set.status().to_string();
    EXPECT_TRUE(set.value().empty());
    EXPECT_FALSE(set.value().heal_available());
  }

  // ECC-protected checkpoint: parity companions found, heal available even
  // after losing a data file — gone only when too few survivors remain.
  {
    workloads::CheckpointSpec spec;
    spec.path = "e.ckpt";
    EccConfig ecc;
    ecc.data_domains = 4;
    ecc.parity_domains = 2;
    spec.protection = ecc;
    engine.run(16, [&](par::Comm& world) {
      const auto mine = rank_payload(world.rank());
      ASSERT_TRUE(
          workloads::write_checkpoint(fs, world, spec, DataView(mine)).ok());
    });
    auto set = discover_protection(fs, "e.ckpt");
    ASSERT_TRUE(set.ok());
    EXPECT_EQ(set.value().parity_found, 2);
    EXPECT_EQ(set.value().parity_intact, 2);
    EXPECT_EQ(set.value().ecc_k, 4);
    EXPECT_EQ(set.value().ecc_m, 2);
    EXPECT_EQ(set.value().data_intact, 4);
    EXPECT_TRUE(set.value().heal_available());

    ASSERT_TRUE(fs.remove(core::physical_file_name("e.ckpt", 1, 4)).ok());
    set = discover_protection(fs, "e.ckpt");
    ASSERT_TRUE(set.ok());
    EXPECT_EQ(set.value().data_intact, 3);
    EXPECT_TRUE(set.value().heal_available());  // 3 + 2 >= 4

    ASSERT_TRUE(fs.remove(core::physical_file_name("e.ckpt", 2, 4)).ok());
    ASSERT_TRUE(fs.remove(core::physical_file_name("e.ckpt", 3, 4)).ok());
    set = discover_protection(fs, "e.ckpt");
    ASSERT_TRUE(set.ok());
    EXPECT_FALSE(set.value().heal_available());  // 1 + 2 < 4
  }

  // Buddy-protected checkpoint: replica sets found and probed.
  {
    workloads::CheckpointSpec spec;
    spec.path = "b.ckpt";
    BuddyConfig buddy;
    buddy.replicas = 2;
    buddy.num_domains = 4;
    spec.protection = buddy;
    engine.run(16, [&](par::Comm& world) {
      const auto mine = rank_payload(world.rank());
      ASSERT_TRUE(
          workloads::write_checkpoint(fs, world, spec, DataView(mine)).ok());
    });
    auto set = discover_protection(fs, "b.ckpt");
    ASSERT_TRUE(set.ok());
    ASSERT_EQ(set.value().replica_sets.size(), 1u);
    EXPECT_EQ(set.value().replica_sets[0], 1);
    ASSERT_EQ(set.value().intact_replica_sets.size(), 1u);
    EXPECT_TRUE(set.value().heal_available());

    // A damaged replica set no longer counts as a heal source.
    ASSERT_TRUE(
        fs.remove(core::physical_file_name(Buddy::replica_name("b.ckpt", 1),
                                           2, 4))
            .ok());
    set = discover_protection(fs, "b.ckpt");
    ASSERT_TRUE(set.ok());
    ASSERT_EQ(set.value().replica_sets.size(), 1u);
    EXPECT_TRUE(set.value().intact_replica_sets.empty());
    EXPECT_FALSE(set.value().heal_available());
  }
}

// ---------------------------------------------------------------------------
// Staging composition: the drain fabricates real parity files on the
// parallel tier; losing a drained primary still restores byte-exactly.
// ---------------------------------------------------------------------------

TEST_P(EccFaultTest, DrainFabricatedParitySurvivesPrimaryLoss) {
  const int n = 8;
  const int k = 4;
  const std::uint64_t bytes = 128 * kKiB;
  fs::SimConfig machine = fs::TestbedConfig();
  machine.burst_buffer.tasks_per_node = 4;
  machine.burst_buffer.node_bandwidth = 4.0e9;
  machine.burst_buffer.drain_bandwidth = 200.0e6;
  fs::SimFs pfs(machine);
  fs::SimFs bb(fs::BurstBufferTierConfig(machine, n));
  auto spec = ecc_spec("sq.sion", k, /*m=*/2);
  StagingConfig staging;
  staging.fast_tier = &bb;
  spec.staging = staging;
  const auto payload_of = [&](int rank) {
    std::vector<std::byte> data(bytes);
    Rng rng(0xecc + static_cast<std::uint64_t>(rank));
    rng.fill_bytes(data);
    return data;
  };
  par::Engine engine;
  engine.run(n, [&](par::Comm& world) {
    const auto mine = payload_of(world.rank());
    auto session = workloads::CheckpointSession::open(pfs, world, spec);
    ASSERT_TRUE(session.ok()) << session.status().to_string();
    ASSERT_TRUE(session.value()->write_async(DataView(mine)).ok());
    ASSERT_TRUE(session.value()->close().ok());
  });
  // Both the primaries and the fabricated parity files exist on the
  // parallel tier.
  for (int d = 0; d < k; ++d) {
    EXPECT_TRUE(pfs.exists(core::physical_file_name("sq.sion", d, k)));
  }
  EXPECT_TRUE(pfs.exists(Ecc::parity_name("sq.sion", 0)));
  EXPECT_TRUE(pfs.exists(Ecc::parity_name("sq.sion", 1)));
  // Lose two primaries (= m); the parity must carry the restore.
  ASSERT_TRUE(pfs.remove(core::physical_file_name("sq.sion", 1, k)).ok());
  ASSERT_TRUE(pfs.remove(core::physical_file_name("sq.sion", 2, k)).ok());
  par::Engine restart;
  restart.run(n, [&](par::Comm& world) {
    std::vector<std::byte> back(bytes);
    ASSERT_TRUE(
        workloads::CheckpointSession::restore(pfs, world, spec, 0, bytes,
                                              back)
            .ok());
    EXPECT_EQ(back, payload_of(world.rank()));
  });
  // Degraded restore: the lost primaries were never recreated.
  EXPECT_FALSE(pfs.exists(core::physical_file_name("sq.sion", 1, k)));
  EXPECT_FALSE(pfs.exists(core::physical_file_name("sq.sion", 2, k)));
}

INSTANTIATE_TEST_SUITE_P(PlainAndCollective, EccFaultTest,
                         ::testing::Values(false, true),
                         [](const auto& param_info) {
                           return param_info.param ? "CollectivePacked"
                                                   : "Plain";
                         });

}  // namespace
}  // namespace sion::ext
