// Tests for the two traditional-I/O baselines the paper compares against:
// multiple-file-parallel (task-local) and single-file-sequential.
#include <gtest/gtest.h>

#include "baseline/single_file_seq.h"
#include "baseline/task_local.h"
#include "common/rng.h"
#include "common/units.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"

namespace sion::baseline {
namespace {

using fs::DataView;

std::vector<std::byte> rank_pattern(int rank, std::size_t n) {
  std::vector<std::byte> out(n);
  Rng rng(0xAB + static_cast<std::uint64_t>(rank));
  rng.fill_bytes(out);
  return out;
}

TEST(TaskLocalTest, PathNaming) {
  EXPECT_EQ(task_file_path("dir", "ckpt", 7), "dir/ckpt.000007");
  EXPECT_EQ(task_file_path(".", "ckpt", 0), "ckpt.000000");
}

TEST(TaskLocalTest, PerTaskRoundtrip) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(8, [&](par::Comm& world) {
    auto file = TaskLocalFile::create(fs, ".", "data", world.rank());
    ASSERT_TRUE(file.ok());
    const auto data = rank_pattern(world.rank(), 5000);
    ASSERT_TRUE(file.value().write(DataView(data)).ok());
    world.barrier();

    auto rd = TaskLocalFile::open_existing(fs, ".", "data", world.rank(),
                                           /*writable=*/false);
    ASSERT_TRUE(rd.ok());
    std::vector<std::byte> back(5000);
    auto got = rd.value().read(back);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 5000u);
    EXPECT_EQ(back, data);
  });
  EXPECT_EQ(fs.counters().creates, 8u);
}

TEST(TaskLocalTest, SequentialCursorAdvances) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(1, [&](par::Comm&) {
    auto file = TaskLocalFile::create(fs, ".", "cur", 0);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value().write(DataView::fill(std::byte{1}, 100)).ok());
    ASSERT_TRUE(file.value().write(DataView::fill(std::byte{2}, 100)).ok());
    EXPECT_EQ(file.value().position(), 200u);
    file.value().rewind();
    std::vector<std::byte> back(200);
    ASSERT_TRUE(file.value().read(back).ok());
    EXPECT_EQ(back[0], std::byte{1});
    EXPECT_EQ(back[150], std::byte{2});
  });
}

TEST(TaskLocalTest, OpenMissingFails) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(1, [&](par::Comm&) {
    auto r = TaskLocalFile::open_existing(fs, ".", "ghost", 0, false);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  });
}

class SingleFileSeqTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SingleFileSeqTest, RoundtripAcrossStagingSizes) {
  const std::uint64_t staging = GetParam();
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(5, [&](par::Comm& world) {
    SingleFileSeqOptions options;
    options.staging_bytes = staging;
    const auto data = rank_pattern(world.rank(),
                                   1000 + 777 * static_cast<std::size_t>(world.rank()));
    ASSERT_TRUE(write_single_file_seq(fs, world, "restart.dat",
                                      DataView(data), options)
                    .ok());
    std::vector<std::byte> back(data.size());
    ASSERT_TRUE(read_single_file_seq(fs, world, "restart.dat", data.size(),
                                     back, options)
                    .ok());
    EXPECT_EQ(back, data);
  });
  // Exactly one physical file regardless of task count.
  EXPECT_EQ(fs.counters().creates, 1u);
}

INSTANTIATE_TEST_SUITE_P(StagingSizes, SingleFileSeqTest,
                         ::testing::Values(64, 1000, 4096, 1 << 20));

TEST(SingleFileSeqTest2, FileIsConcatenationInRankOrder) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    std::vector<std::byte> data(10, static_cast<std::byte>('a' + world.rank()));
    ASSERT_TRUE(write_single_file_seq(fs, world, "cat.dat", DataView(data))
                    .ok());
  });
  auto file = fs.open_read("cat.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::byte> all(30);
  ASSERT_TRUE(file.value()->pread(all, 0).ok());
  EXPECT_EQ(all[0], std::byte{'a'});
  EXPECT_EQ(all[10], std::byte{'b'});
  EXPECT_EQ(all[20], std::byte{'c'});
}

TEST(SingleFileSeqTest2, NonRootIoTask) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    SingleFileSeqOptions options;
    options.io_rank = 2;
    const auto data = rank_pattern(world.rank(), 500);
    ASSERT_TRUE(
        write_single_file_seq(fs, world, "alt.dat", DataView(data), options)
            .ok());
    std::vector<std::byte> back(500);
    ASSERT_TRUE(
        read_single_file_seq(fs, world, "alt.dat", 500, back, options).ok());
    EXPECT_EQ(back, data);
  });
}

TEST(SingleFileSeqTest2, ReadOfMissingFileFailsOnAllRanks) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    std::vector<std::byte> back(10);
    auto st = read_single_file_seq(fs, world, "missing.dat", 10, back);
    EXPECT_FALSE(st.ok()) << "rank " << world.rank();
  });
}

TEST(SingleFileSeqTest2, TimingOnlyModeDiscards) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    ASSERT_TRUE(write_single_file_seq(fs, world, "t.dat",
                                      DataView::fill(std::byte{5}, 10000))
                    .ok());
    ASSERT_TRUE(read_single_file_seq(fs, world, "t.dat", 10000, {}).ok());
  });
}

TEST(SingleFileSeqTest2, SerializationShowsInVirtualTime) {
  // The designated-I/O-task scheme must be slower than SION-style parallel
  // writes for the same volume (the core claim of Fig. 6).
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  const std::uint64_t per_task = 4 * kMiB;
  const int n = 8;
  const double t0 = engine.epoch();
  engine.run(n, [&](par::Comm& world) {
    ASSERT_TRUE(write_single_file_seq(
                    fs, world, "seq.dat",
                    DataView::fill(std::byte{1}, per_task))
                    .ok());
  });
  const double t_seq = engine.epoch() - t0;
  // All data must cross the master's single client link (500 MB/s testbed):
  // 8 * 4 MiB / 500 MB/s ~ 67 ms at minimum.
  const double lower_bound =
      static_cast<double>(n) * static_cast<double>(per_task) / 500.0e6;
  EXPECT_GE(t_seq, lower_bound * 0.9);
}

}  // namespace
}  // namespace sion::baseline
