// Tests for the fiber task runtime: scheduling determinism, virtual time
// semantics, every collective, communicator splits, and point-to-point.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "par/comm.h"
#include "par/engine.h"

namespace sion::par {
namespace {

TEST(EngineTest, RunsAllTasksToCompletion) {
  Engine engine;
  std::vector<int> seen(17, 0);
  engine.run(17, [&](Comm& world) {
    seen[static_cast<std::size_t>(world.rank())] += 1;
    EXPECT_EQ(world.size(), 17);
  });
  for (int v : seen) EXPECT_EQ(v, 1);
}

TEST(EngineTest, SingleTaskWorks) {
  Engine engine;
  int calls = 0;
  engine.run(1, [&](Comm& world) {
    EXPECT_EQ(world.rank(), 0);
    EXPECT_EQ(world.size(), 1);
    world.barrier();  // must not deadlock at P=1
    EXPECT_EQ(world.allreduce_u64(9, ReduceOp::kSum), 9u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(EngineTest, VirtualTimeStartsAtEpochAndAdvances) {
  Engine engine;
  engine.run(4, [&](Comm&) {
    TaskState& t = *this_task();
    EXPECT_DOUBLE_EQ(t.now(), 0.0);
    t.compute(1.5);
    EXPECT_DOUBLE_EQ(t.now(), 1.5);
  });
  EXPECT_DOUBLE_EQ(engine.epoch(), 1.5);
}

TEST(EngineTest, EpochIsMonotonicAcrossRuns) {
  Engine engine;
  engine.run(2, [&](Comm&) { this_task()->compute(2.0); });
  EXPECT_DOUBLE_EQ(engine.epoch(), 2.0);
  engine.run(2, [&](Comm&) {
    EXPECT_DOUBLE_EQ(this_task()->now(), 2.0);
    this_task()->compute(1.0);
  });
  EXPECT_DOUBLE_EQ(engine.epoch(), 3.0);
}

TEST(EngineTest, SchedulerRunsSmallestClockFirst) {
  // Task 0 computes far into the future; others should complete first, and
  // execution order across yields must follow virtual time.
  Engine engine;
  std::vector<int> completion_order;
  engine.run(3, [&](Comm& world) {
    const int r = world.rank();
    this_task()->compute(r == 0 ? 100.0 : 1.0 * (r + 1));
    completion_order.push_back(r);
  });
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], 1);
  EXPECT_EQ(completion_order[1], 2);
  EXPECT_EQ(completion_order[2], 0);
}

TEST(EngineTest, DeterministicAcrossRepetition) {
  auto trace_of = []() {
    Engine engine;
    std::vector<std::pair<int, double>> trace;
    engine.run(8, [&](Comm& world) {
      this_task()->compute(0.001 * ((world.rank() * 7) % 5 + 1));
      world.barrier();
      this_task()->compute(0.002);
      trace.emplace_back(world.rank(), this_task()->now());
    });
    return trace;
  };
  EXPECT_EQ(trace_of(), trace_of());
}

TEST(EngineTest, ExceptionInTaskPropagates) {
  Engine engine;
  EXPECT_THROW(
      engine.run(3,
                 [&](Comm& world) {
                   if (world.rank() == 1) throw std::runtime_error("boom");
                 }),
      std::runtime_error);
  // Engine is reusable after a failed run.
  int ok = 0;
  engine.run(2, [&](Comm&) { ++ok; });
  EXPECT_EQ(ok, 2);
}

TEST(EngineTest, ManyTasksLowStack) {
  EngineConfig config;
  config.stack_bytes = 32 * 1024;
  Engine engine(config);
  std::atomic<int> count{0};
  engine.run(4096, [&](Comm& world) {
    world.barrier();
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 4096);
}

TEST(BarrierTest, ReleasesAllAtMaxTime) {
  Engine engine;
  engine.run(5, [&](Comm& world) {
    this_task()->compute(static_cast<double>(world.rank()));  // rank r at t=r
    world.barrier();
    // Everyone must be released at >= the slowest arrival (t=4).
    EXPECT_GE(this_task()->now(), 4.0);
  });
}

TEST(BarrierTest, CostScalesWithLogP) {
  NetworkModel net;
  EXPECT_EQ(net.tree_depth(1), 0);
  EXPECT_EQ(net.tree_depth(2), 1);
  EXPECT_EQ(net.tree_depth(1024), 10);
  EXPECT_EQ(net.tree_depth(65536), 16);
  EXPECT_EQ(net.tree_depth(65537), 17);
  EXPECT_LT(net.sync_cost(16), net.sync_cost(1024));
}

TEST(BcastTest, RootValueReachesEveryone) {
  Engine engine;
  engine.run(9, [&](Comm& world) {
    const std::uint64_t v =
        world.bcast_u64(world.rank() == 3 ? 777u : 0u, /*root=*/3);
    EXPECT_EQ(v, 777u);
  });
}

TEST(BcastTest, BytesBuffer) {
  Engine engine;
  engine.run(4, [&](Comm& world) {
    std::vector<std::byte> buf(64);
    if (world.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<std::byte>(i);
      }
    }
    world.bcast_bytes(buf, 0);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      EXPECT_EQ(std::to_integer<std::size_t>(buf[i]), i);
    }
  });
}

TEST(GatherTest, RootCollectsInRankOrder) {
  Engine engine;
  engine.run(6, [&](Comm& world) {
    auto all = world.gather_u64(
        static_cast<std::uint64_t>(world.rank() * 10), /*root=*/2);
    if (world.rank() == 2) {
      ASSERT_EQ(all.size(), 6u);
      for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i)],
                  static_cast<std::uint64_t>(i * 10));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(GathervTest, VariableLengthArrays) {
  Engine engine;
  engine.run(4, [&](Comm& world) {
    // Rank r contributes r values [r, r, ...].
    std::vector<std::uint64_t> mine(static_cast<std::size_t>(world.rank()),
                                    static_cast<std::uint64_t>(world.rank()));
    auto all = world.gatherv_u64_flat(mine, 0);
    if (world.rank() == 0) {
      ASSERT_EQ(all.offsets.size(), 5u);
      ASSERT_EQ(all.data.size(), 6u);  // 0 + 1 + 2 + 3
      for (int r = 0; r < 4; ++r) {
        const auto piece = all.of(r);
        EXPECT_EQ(piece.size(), static_cast<std::size_t>(r));
        for (auto v : piece) EXPECT_EQ(v, static_cast<std::uint64_t>(r));
      }
    } else {
      EXPECT_TRUE(all.data.empty());
      EXPECT_TRUE(all.offsets.empty());
    }
  });
}

TEST(ScatterTest, EachTaskGetsItsValue) {
  Engine engine;
  engine.run(5, [&](Comm& world) {
    std::vector<std::uint64_t> values;
    if (world.rank() == 0) {
      values = {100, 101, 102, 103, 104};
    }
    const std::uint64_t v = world.scatter_u64(values, 0);
    EXPECT_EQ(v, 100u + static_cast<std::uint64_t>(world.rank()));
  });
}

TEST(AllgatherTest, EveryoneSeesEverything) {
  Engine engine;
  engine.run(7, [&](Comm& world) {
    auto all = world.allgather_u64(static_cast<std::uint64_t>(world.rank()));
    ASSERT_EQ(all.size(), 7u);
    for (int i = 0; i < 7; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)],
                static_cast<std::uint64_t>(i));
    }
  });
}

TEST(AllreduceTest, SumMaxMin) {
  Engine engine;
  engine.run(8, [&](Comm& world) {
    const auto r = static_cast<std::uint64_t>(world.rank());
    EXPECT_EQ(world.allreduce_u64(r, ReduceOp::kSum), 28u);
    EXPECT_EQ(world.allreduce_u64(r, ReduceOp::kMax), 7u);
    EXPECT_EQ(world.allreduce_u64(r + 3, ReduceOp::kMin), 3u);
  });
}

TEST(GathervBytesTest, ConcatenatesInRankOrder) {
  Engine engine;
  engine.run(3, [&](Comm& world) {
    std::vector<std::byte> mine(static_cast<std::size_t>(world.rank() + 1),
                                static_cast<std::byte>('a' + world.rank()));
    auto gathered = world.gatherv_bytes(mine, 1);
    if (world.rank() == 1) {
      ASSERT_EQ(gathered.sizes, (std::vector<std::uint64_t>{1, 2, 3}));
      ASSERT_EQ(gathered.data.size(), 6u);
      EXPECT_EQ(std::to_integer<char>(gathered.data[0]), 'a');
      EXPECT_EQ(std::to_integer<char>(gathered.data[1]), 'b');
      EXPECT_EQ(std::to_integer<char>(gathered.data[3]), 'c');
    } else {
      EXPECT_TRUE(gathered.data.empty());
    }
  });
}

TEST(ScattervBytesTest, PiecesReachTheirRanks) {
  Engine engine;
  engine.run(3, [&](Comm& world) {
    std::vector<std::byte> flat;
    std::vector<std::uint64_t> sizes;
    if (world.rank() == 0) {
      for (int r = 0; r < 3; ++r) {
        flat.insert(flat.end(), static_cast<std::size_t>(r + 2),
                    static_cast<std::byte>('A' + r));
        sizes.push_back(static_cast<std::uint64_t>(r + 2));
      }
    }
    auto mine = world.scatterv_bytes_flat(flat, sizes, 0);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(world.rank() + 2));
    EXPECT_EQ(std::to_integer<char>(mine[0]),
              static_cast<char>('A' + world.rank()));
  });
}

TEST(SplitTest, GroupsByColorOrderedByKey) {
  Engine engine;
  engine.run(8, [&](Comm& world) {
    const int color = world.rank() % 2;
    const int key = -world.rank();  // reverse order within each child
    Comm* child = world.split(color, key);
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(child->size(), 4);
    // Reverse key order: global rank 6 (largest even key=-6... smallest) is
    // child rank 0 of color 0.
    const int expected_rank = (7 - world.rank()) / 2;
    EXPECT_EQ(child->rank(), expected_rank);
    // The child comm must be usable for collectives.
    const auto sum = child->allreduce_u64(
        static_cast<std::uint64_t>(world.rank()), ReduceOp::kSum);
    EXPECT_EQ(sum, color == 0 ? 12u : 16u);
  });
}

TEST(SplitTest, UndefinedColorYieldsNull) {
  Engine engine;
  engine.run(4, [&](Comm& world) {
    Comm* child = world.split(world.rank() == 0 ? -1 : 5, 0);
    if (world.rank() == 0) {
      EXPECT_EQ(child, nullptr);
    } else {
      ASSERT_NE(child, nullptr);
      EXPECT_EQ(child->size(), 3);
    }
  });
}

TEST(SplitTest, NestedSplits) {
  Engine engine;
  engine.run(8, [&](Comm& world) {
    Comm* half = world.split(world.rank() / 4, world.rank());
    ASSERT_NE(half, nullptr);
    Comm* quarter = half->split(half->rank() / 2, half->rank());
    ASSERT_NE(quarter, nullptr);
    EXPECT_EQ(quarter->size(), 2);
    quarter->barrier();
  });
}

TEST(P2pTest, SendThenRecv) {
  Engine engine;
  engine.run(2, [&](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::byte> msg{std::byte{1}, std::byte{2}, std::byte{3}};
      world.send_bytes(msg, 1, /*tag=*/7);
    } else {
      auto got = world.recv_bytes(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_EQ(std::to_integer<int>(got[2]), 3);
    }
  });
}

TEST(P2pTest, RecvBeforeSendAlsoWorks) {
  // Receiver at an earlier virtual time than the sender; the DES must order
  // the rendezvous correctly either way.
  Engine engine;
  engine.run(2, [&](Comm& world) {
    if (world.rank() == 0) {
      this_task()->compute(5.0);  // sender arrives late
      std::vector<std::byte> msg(10, std::byte{9});
      world.send_bytes(msg, 1, 0);
      EXPECT_GE(this_task()->now(), 5.0);
    } else {
      auto got = world.recv_bytes(0, 0);
      EXPECT_EQ(got.size(), 10u);
      EXPECT_GE(this_task()->now(), 5.0);  // could not complete before send
    }
  });
}

TEST(P2pTest, TagsKeepStreamsSeparate) {
  Engine engine;
  engine.run(2, [&](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::byte> a(1, std::byte{1});
      std::vector<std::byte> b(1, std::byte{2});
      world.send_bytes(a, 1, /*tag=*/1);
      world.send_bytes(b, 1, /*tag=*/2);
    } else {
      // Receive in the opposite order of the sends.
      auto b = world.recv_bytes(0, 2);
      auto a = world.recv_bytes(0, 1);
      EXPECT_EQ(std::to_integer<int>(a[0]), 1);
      EXPECT_EQ(std::to_integer<int>(b[0]), 2);
    }
  });
}

TEST(P2pTest, ManyPairsExchange) {
  Engine engine;
  engine.run(16, [&](Comm& world) {
    const int partner = world.rank() ^ 1;
    std::vector<std::byte> msg(4, static_cast<std::byte>(world.rank()));
    if (world.rank() < partner) {
      world.send_bytes(msg, partner, 0);
      auto got = world.recv_bytes(partner, 0);
      EXPECT_EQ(std::to_integer<int>(got[0]), partner);
    } else {
      auto got = world.recv_bytes(partner, 0);
      EXPECT_EQ(std::to_integer<int>(got[0]), partner);
      world.send_bytes(msg, partner, 0);
    }
  });
}

TEST(P2pTest, ViewShipsWithoutCopy) {
  Engine engine;
  engine.run(2, [&](Comm& world) {
    std::vector<std::byte> buf(64, static_cast<std::byte>(0xAB));
    if (world.rank() == 0) {
      // The blocking token keeps `buf` alive until the receiver is done,
      // mirroring the aggregation ship protocol.
      world.send_view(buf, 1, /*tag=*/3);
      (void)world.recv_bytes(1, /*tag=*/4);
    } else {
      const auto view = world.recv_view(0, 3);
      ASSERT_EQ(view.size(), 64u);
      EXPECT_EQ(std::to_integer<int>(view[63]), 0xAB);
      world.send_bytes({}, 0, 4);
    }
  });
}

TEST(P2pTest, ViewRecvBeforeSendBlocksAndDelivers) {
  Engine engine;
  engine.run(2, [&](Comm& world) {
    std::vector<std::byte> buf(8, static_cast<std::byte>(7));
    if (world.rank() == 0) {
      this_task()->compute(1.0);  // receiver blocks first
      world.send_view(buf, 1, 0);
      (void)world.recv_bytes(1, 1);
    } else {
      const auto view = world.recv_view(0, 0);
      ASSERT_EQ(view.size(), 8u);
      EXPECT_EQ(std::to_integer<int>(view[0]), 7);
      EXPECT_GE(this_task()->now(), 1.0);
      world.send_bytes({}, 0, 1);
    }
  });
}

TEST(P2pTest, ViewMessageReadableThroughRecvBytes) {
  // A copying receiver may consume a view message (it copies); only the
  // reverse pairing is a protocol error.
  Engine engine;
  engine.run(2, [&](Comm& world) {
    std::vector<std::byte> buf(5, static_cast<std::byte>(3));
    if (world.rank() == 0) {
      world.send_view(buf, 1, 0);
      (void)world.recv_bytes(1, 1);
    } else {
      const auto got = world.recv_bytes(0, 0);
      ASSERT_EQ(got.size(), 5u);
      EXPECT_EQ(std::to_integer<int>(got[4]), 3);
      world.send_bytes({}, 0, 1);
    }
  });
}

// ---------------------------------------------------------------------------
// group-to-group rotation (the buddy-replication ship primitive)
// ---------------------------------------------------------------------------

TEST(RotateTest, PayloadsMoveToTheBuddyGroup) {
  Engine engine;
  engine.run(8, [&](Comm& world) {
    // Two domains of four ranks: shift 4 ships every rank's payload to the
    // same-positioned rank of the buddy domain. Sizes vary per rank so a
    // mis-routed buffer is detected by length alone.
    std::vector<std::byte> mine(3 + static_cast<std::size_t>(world.rank()),
                                static_cast<std::byte>(world.rank()));
    const auto got = world.rotate_bytes(mine, 4);
    const int src = (world.rank() - 4 + 8) % 8;
    ASSERT_EQ(got.size(), 3 + static_cast<std::size_t>(src));
    for (const std::byte b : got) {
      EXPECT_EQ(std::to_integer<int>(b), src);
    }
  });
}

TEST(RotateTest, NegativeAndWrappedShiftsNormalize) {
  Engine engine;
  engine.run(6, [&](Comm& world) {
    std::vector<std::byte> mine(1, static_cast<std::byte>(world.rank()));
    // shift -1 receives from the rank ahead; shift size+1 from one behind.
    auto back = world.rotate_bytes(mine, -1);
    EXPECT_EQ(std::to_integer<int>(back[0]), (world.rank() + 1) % 6);
    auto fwd = world.rotate_bytes(mine, 7);
    EXPECT_EQ(std::to_integer<int>(fwd[0]), (world.rank() + 5) % 6);
  });
}

TEST(RotateTest, ShiftMultipleOfSizeIsALocalCopy) {
  Engine engine;
  engine.run(4, [&](Comm& world) {
    const double t0 = this_task()->now();
    std::vector<std::byte> mine(5, static_cast<std::byte>(world.rank()));
    const auto copy = world.rotate_bytes(mine, 8);
    EXPECT_EQ(copy, mine);
    EXPECT_DOUBLE_EQ(this_task()->now(), t0);  // no network charged
    const auto view = world.rotate_view(mine, 0);
    EXPECT_EQ(view.data(), mine.data());  // the span itself, no copy
  });
}

TEST(RotateTest, ViewVariantSharesTheSenderBuffer) {
  Engine engine;
  const std::byte* bufs[4] = {};
  engine.run(4, [&](Comm& world) {
    std::vector<std::byte> mine(16, static_cast<std::byte>(world.rank()));
    bufs[world.rank()] = mine.data();
    const auto view = world.rotate_view(mine, 1);
    const int src = (world.rank() + 3) % 4;
    ASSERT_EQ(view.size(), 16u);
    EXPECT_EQ(std::to_integer<int>(view[0]), src);
    EXPECT_EQ(view.data(), bufs[src]);  // zero-copy: the sender's bytes
    world.barrier();  // senders keep buffers alive until consumers finish
  });
}

TEST(RotateTest, RotationChargesLinkTime) {
  Engine engine;
  engine.run(4, [&](Comm& world) {
    const double t0 = this_task()->now();
    std::vector<std::byte> mine(1 << 20);
    (void)world.rotate_bytes(mine, 1);
    EXPECT_GT(this_task()->now(), t0);
  });
}

TEST(CollectiveTimeTest, GatherChargesTime) {
  Engine engine;
  double release = 0;
  engine.run(16, [&](Comm& world) {
    world.gather_u64(1, 0);
    if (world.rank() == 0) release = this_task()->now();
  });
  EXPECT_GT(release, 0.0);
  EXPECT_LT(release, 1e-2);  // microseconds-scale, not seconds
}

TEST(CollectiveTimeTest, LargePayloadCostsMore) {
  NetworkModel net;
  EXPECT_GT(net.rooted_cost(64, 64ULL * 1024 * 1024),
            net.rooted_cost(64, 64ULL * 8));
}

TEST(CollectiveStressTest, RepeatedMixedCollectives) {
  Engine engine;
  engine.run(32, [&](Comm& world) {
    for (int iter = 0; iter < 20; ++iter) {
      const auto sum = world.allreduce_u64(1, ReduceOp::kSum);
      EXPECT_EQ(sum, 32u);
      world.barrier();
      const auto v = world.bcast_u64(
          static_cast<std::uint64_t>(iter), iter % world.size());
      EXPECT_EQ(v, static_cast<std::uint64_t>(iter));
    }
  });
}

class TaskCountParamTest : public ::testing::TestWithParam<int> {};

TEST_P(TaskCountParamTest, BarrierAndReduceAtScale) {
  const int n = GetParam();
  Engine engine;
  engine.run(n, [&](Comm& world) {
    world.barrier();
    const auto sum = world.allreduce_u64(1, ReduceOp::kSum);
    EXPECT_EQ(sum, static_cast<std::uint64_t>(n));
    const auto all = world.allgather_u64(
        static_cast<std::uint64_t>(world.rank()));
    EXPECT_EQ(all.size(), static_cast<std::size_t>(n));
  });
}

INSTANTIATE_TEST_SUITE_P(TaskCounts, TaskCountParamTest,
                         ::testing::Values(1, 2, 3, 7, 64, 255, 1024));

}  // namespace
}  // namespace sion::par
