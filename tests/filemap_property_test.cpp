// Property tests for the computed (closed-form) file mappings: for every
// (ntasks, nfiles) combination the mapping must partition ranks into
// contiguous-per-file, ascending local indices, with per-file counts that
// sum to ntasks — the invariants the multifile header format relies on.
#include <gtest/gtest.h>

#include <vector>

#include "core/filemap.h"

namespace sion::core {
namespace {

class FileMapSweepTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FileMapSweepTest, ContiguousInvariants) {
  const auto [ntasks, nfiles] = GetParam();
  auto map = FileMap::contiguous(ntasks, nfiles).value();

  // Partition: counts sum to ntasks; every file non-empty.
  int total = 0;
  for (int f = 0; f < nfiles; ++f) {
    EXPECT_GE(map.tasks_in_file(f), 1);
    total += map.tasks_in_file(f);
  }
  EXPECT_EQ(total, ntasks);

  // Monotone file assignment and dense ascending local indices.
  std::vector<int> next_local(static_cast<std::size_t>(nfiles), 0);
  int prev_file = 0;
  for (int r = 0; r < ntasks; ++r) {
    const int f = map.file_of(r);
    ASSERT_GE(f, 0);
    ASSERT_LT(f, nfiles);
    EXPECT_GE(f, prev_file) << "contiguous mapping must be monotone";
    prev_file = f;
    EXPECT_EQ(map.local_index(r), next_local[static_cast<std::size_t>(f)]++)
        << "rank " << r;
  }
  for (int f = 0; f < nfiles; ++f) {
    EXPECT_EQ(next_local[static_cast<std::size_t>(f)], map.tasks_in_file(f));
  }

  // Balance: counts differ by at most one.
  int lo = ntasks;
  int hi = 0;
  for (int f = 0; f < nfiles; ++f) {
    lo = std::min(lo, map.tasks_in_file(f));
    hi = std::max(hi, map.tasks_in_file(f));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST_P(FileMapSweepTest, RoundRobinInvariants) {
  const auto [ntasks, nfiles] = GetParam();
  auto map = FileMap::round_robin(ntasks, nfiles).value();
  int total = 0;
  std::vector<int> next_local(static_cast<std::size_t>(nfiles), 0);
  for (int f = 0; f < nfiles; ++f) total += map.tasks_in_file(f);
  EXPECT_EQ(total, ntasks);
  for (int r = 0; r < ntasks; ++r) {
    const int f = map.file_of(r);
    EXPECT_EQ(f, r % nfiles);
    EXPECT_EQ(map.local_index(r), next_local[static_cast<std::size_t>(f)]++);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FileMapSweepTest,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{2, 2},
                      std::pair{7, 3}, std::pair{10, 3}, std::pair{16, 16},
                      std::pair{100, 7}, std::pair{1000, 13},
                      std::pair{65536, 152}, std::pair{65536, 128},
                      std::pair{12288, 3}, std::pair{31, 31}));

TEST(FileMapScaleTest, HugeMappingsAreConstantSpace) {
  // The whole point of the closed form: a 64 Ki-task mapping costs nothing.
  auto map = FileMap::contiguous(65536, 32).value();
  EXPECT_EQ(map.file_of(0), 0);
  EXPECT_EQ(map.file_of(65535), 31);
  EXPECT_EQ(map.tasks_in_file(0), 2048);
  EXPECT_EQ(map.local_index(2048), 0);   // first rank of file 1
  EXPECT_EQ(map.local_index(2047), 2047);
  EXPECT_EQ(sizeof(map) < 128, true);
}

}  // namespace
}  // namespace sion::core
