// Unit tests for src/common: status propagation, binary codec roundtrips,
// units parsing/formatting, string helpers, option parsing, RNG determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/codec.h"
#include "common/narrow.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/units.h"

namespace sion {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such multifile");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "no such multifile");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such multifile");
}

TEST(StatusTest, AllFactoryFunctionsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExists("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(OutOfRange("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(PermissionDenied("x").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(QuotaExceeded("x").code(), ErrorCode::kQuotaExceeded);
  EXPECT_EQ(Corrupt("x").code(), ErrorCode::kCorrupt);
  EXPECT_EQ(IoError("x").code(), ErrorCode::kIoError);
  EXPECT_EQ(FailedPrecondition("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(Unimplemented("x").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), ErrorCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = IoError("disk on fire");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::Ok();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
}

Status fails() { return QuotaExceeded("quota"); }
Status propagates() {
  SION_RETURN_IF_ERROR(fails());
  return Internal("unreachable");
}
Result<int> value_or_error(bool ok) {
  if (ok) return 7;
  return NotFound("nope");
}
Status uses_assign(bool ok, int* out) {
  SION_ASSIGN_OR_RETURN(*out, value_or_error(ok));
  return Status::Ok();
}

TEST(ResultTest, Macros) {
  EXPECT_EQ(propagates().code(), ErrorCode::kQuotaExceeded);
  int out = 0;
  EXPECT_TRUE(uses_assign(true, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(uses_assign(false, &out).code(), ErrorCode::kNotFound);
}

TEST(CodecTest, ScalarRoundtrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(3.14159);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8().value(), 0xAB);
  EXPECT_EQ(r.get_u16().value(), 0x1234);
  EXPECT_EQ(r.get_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64().value(), 3.14159);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CodecTest, LittleEndianOnDisk) {
  ByteWriter w;
  w.put_u32(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(b[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(b[3]), 0x01);
}

TEST(CodecTest, StringAndArrayRoundtrip) {
  ByteWriter w;
  w.put_string("multifile.sion");
  std::vector<std::uint64_t> values{1, 2, 1ULL << 40, 0};
  w.put_u64_array(values);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string().value(), "multifile.sion");
  EXPECT_EQ(r.get_u64_array().value(), values);
}

TEST(CodecTest, EmptyStringAndArray) {
  ByteWriter w;
  w.put_string("");
  w.put_u64_array({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string().value(), "");
  EXPECT_TRUE(r.get_u64_array().value().empty());
}

TEST(CodecTest, TruncationIsCorruptNotCrash) {
  ByteWriter w;
  w.put_u64(77);
  ByteReader r(std::span<const std::byte>(w.bytes()).subspan(0, 3));
  auto res = r.get_u64();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kCorrupt);
}

TEST(CodecTest, TruncatedStringPayload) {
  ByteWriter w;
  w.put_u32(100);  // claims 100 bytes follow
  ByteReader r(w.bytes());
  auto res = r.get_string();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kCorrupt);
}

TEST(CodecTest, HugeArrayCountDoesNotAllocate) {
  ByteWriter w;
  w.put_u64(~0ULL);  // absurd element count
  ByteReader r(w.bytes());
  auto res = r.get_u64_array();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kCorrupt);
}

TEST(CodecTest, PadTo) {
  ByteWriter w;
  w.put_u8(1);
  w.pad_to(16);
  EXPECT_EQ(w.size(), 16u);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8().value(), 1);
  for (int i = 0; i < 15; ++i) EXPECT_EQ(r.get_u8().value(), 0);
}

TEST(CodecTest, SkipAndPosition) {
  ByteWriter w;
  w.put_u64(1);
  w.put_u64(2);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.skip(8).ok());
  EXPECT_EQ(r.position(), 8u);
  EXPECT_EQ(r.get_u64().value(), 2u);
  EXPECT_FALSE(r.skip(1).ok());
}

TEST(UnitsTest, RoundUp) {
  EXPECT_EQ(round_up(0, 4096), 0u);
  EXPECT_EQ(round_up(1, 4096), 4096u);
  EXPECT_EQ(round_up(4096, 4096), 4096u);
  EXPECT_EQ(round_up(4097, 4096), 8192u);
}

TEST(UnitsTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
}

TEST(UnitsTest, ParseSize) {
  EXPECT_EQ(parse_size("4096"), 4096u);
  EXPECT_EQ(parse_size("64k"), 64u * kKiB);
  EXPECT_EQ(parse_size("64K"), 64u * kKiB);
  EXPECT_EQ(parse_size("2M"), 2u * kMiB);
  EXPECT_EQ(parse_size("1g"), kGiB);
  EXPECT_EQ(parse_size("1t"), kTiB);
  EXPECT_EQ(parse_size("1.5k"), 1536u);
  EXPECT_EQ(parse_size(""), 0u);
  EXPECT_EQ(parse_size("abc"), 0u);
  EXPECT_EQ(parse_size("5x"), 0u);
}

TEST(UnitsTest, ParseSizeAcceptsSpelledOutBinarySuffixes) {
  EXPECT_EQ(parse_size("64Ki"), 64u * kKiB);
  EXPECT_EQ(parse_size("64ki"), 64u * kKiB);
  EXPECT_EQ(parse_size("2Mi"), 2u * kMiB);
  EXPECT_EQ(parse_size("1GiB"), kGiB);
  EXPECT_EQ(parse_size("1.5KiB"), 1536u);
  EXPECT_EQ(parse_size("1TiB"), kTiB);
}

TEST(UnitsTest, FormatTasks) {
  EXPECT_EQ(format_tasks(0), "0");
  EXPECT_EQ(format_tasks(768), "768");
  EXPECT_EQ(format_tasks(1000), "1000");  // not a binary multiple
  EXPECT_EQ(format_tasks(1024), "1Ki");
  EXPECT_EQ(format_tasks(4096), "4Ki");
  EXPECT_EQ(format_tasks(65536), "64Ki");
  EXPECT_EQ(format_tasks(1024 * 1024), "1Mi");
  EXPECT_EQ(format_tasks(65536 + 1), "65537");
}

TEST(UnitsTest, FormatTasksRoundTripsThroughParseSize) {
  for (const std::uint64_t n : {1u, 768u, 1024u, 4096u, 65536u, 1048576u}) {
    EXPECT_EQ(parse_size(format_tasks(n)), n) << format_tasks(n);
  }
}

TEST(UnitsTest, ParseSizeRejectsTrailingGarbage) {
  EXPECT_EQ(parse_size("4kfoo"), 0u);
  EXPECT_EQ(parse_size("4kb"), 0u);
  EXPECT_EQ(parse_size("1.5m "), 0u);
  EXPECT_EQ(parse_size("16 k"), 0u);
  EXPECT_EQ(parse_size("1t1"), 0u);
}

TEST(UnitsTest, ParseSizeRejectsNegativeAndNonFinite) {
  EXPECT_EQ(parse_size("-5"), 0u);
  EXPECT_EQ(parse_size("-5k"), 0u);
  EXPECT_EQ(parse_size("-0.1g"), 0u);
  EXPECT_EQ(parse_size("nan"), 0u);
  EXPECT_EQ(parse_size("inf"), 0u);
}

TEST(UnitsTest, ParseSizeRejectsOverflow) {
  EXPECT_EQ(parse_size("1e30"), 0u);
  EXPECT_EQ(parse_size("99999999999t"), 0u);
  EXPECT_EQ(parse_size("18446744073709551616"), 0u);  // 2^64
  // Large but representable values still parse.
  EXPECT_EQ(parse_size("1024t"), 1024u * kTiB);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2.0 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.0 MiB");
  EXPECT_EQ(format_bytes(kGiB + kGiB / 2), "1.5 GiB");
}

TEST(UnitsTest, FormatBytesTiBBoundary) {
  EXPECT_EQ(format_bytes(kTiB), "1.0 TiB");
  // Regression: any non-GiB-multiple TiB value used to fall through to the
  // GiB branch and print a four-digit GiB string.
  EXPECT_EQ(format_bytes(kTiB + kTiB / 2), "1.5 TiB");
  EXPECT_EQ(format_bytes(kTiB + kTiB / 2 + 1), "1.5 TiB");
  EXPECT_EQ(format_bytes(2 * kTiB + 1), "2.0 TiB");
  // Just under the boundary still formats as GiB.
  EXPECT_EQ(format_bytes(kTiB - kGiB), "1023.0 GiB");
}

TEST(UnitsTest, PowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(4096));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
}

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(StringsTest, JoinTrimAffixes) {
  EXPECT_EQ(join({"x", "y"}, "/"), "x/y");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(trim("  hi\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("multifile.sion", "multi"));
  EXPECT_FALSE(starts_with("m", "multi"));
  EXPECT_TRUE(ends_with("file.sion", ".sion"));
  EXPECT_FALSE(ends_with("n", ".sion"));
}

TEST(StringsTest, Strformat) {
  EXPECT_EQ(strformat("%s.%06d", "name", 3), "name.000003");
  EXPECT_EQ(strformat("%.1f MB/s", 2153.04), "2153.0 MB/s");
}

TEST(OptionsTest, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog",       "--ntasks=64k", "--nfiles=16",
                        "input.sion", "--verbose",    "out.sion"};
  Options opts(6, argv);
  EXPECT_EQ(opts.get_u64("ntasks"), 64u * kKiB);
  EXPECT_EQ(opts.get_u64("nfiles"), 16u);
  EXPECT_TRUE(opts.get_bool("verbose"));
  EXPECT_FALSE(opts.get_bool("quiet"));
  EXPECT_TRUE(opts.get_bool("quiet", true));
  EXPECT_EQ(opts.positional(),
            (std::vector<std::string>{"input.sion", "out.sion"}));
  EXPECT_EQ(opts.get_string("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(opts.get_double("missing", 1.5), 1.5);
}

TEST(OptionsTest, DoubleDashEndsFlagParsing) {
  const char* argv[] = {"prog", "--verbose", "--", "--ntasks=8", "plain"};
  Options opts(5, argv);
  EXPECT_TRUE(opts.get_bool("verbose"));
  // After "--", flag-looking arguments are positional; no empty-named flag
  // is registered for the bare "--" itself.
  EXPECT_FALSE(opts.has(""));
  EXPECT_FALSE(opts.has("ntasks"));
  EXPECT_EQ(opts.positional(),
            (std::vector<std::string>{"--ntasks=8", "plain"}));
}

TEST(OptionsTest, EmptyValueAndRepeatedFlags) {
  const char* argv[] = {"prog", "--out=", "--n=1", "--n=2k"};
  Options opts(4, argv);
  EXPECT_TRUE(opts.has("out"));
  EXPECT_EQ(opts.get_string("out", "dflt"), "");
  // Last occurrence of a repeated flag wins.
  EXPECT_EQ(opts.get_u64("n"), 2u * kKiB);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    hit_lo |= (v == 3);
    hit_hi |= (v == 5);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, FillBytesCoversTail) {
  Rng rng(11);
  std::vector<std::byte> buf(13, std::byte{0});
  rng.fill_bytes(buf);
  int nonzero = 0;
  for (auto b : buf) nonzero += (b != std::byte{0});
  EXPECT_GT(nonzero, 5);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(NarrowTest, CheckedNarrowRoundTrips) {
  EXPECT_EQ(checked_narrow<int>(std::uint64_t{65536}), 65536);
  EXPECT_EQ(checked_narrow<std::uint8_t>(255), 255);
  EXPECT_EQ(checked_narrow<std::int8_t>(-128), -128);
  EXPECT_EQ(checked_narrow<std::size_t>(std::int64_t{0}), 0U);
  EXPECT_EQ(checked_narrow<int>(std::numeric_limits<int>::max()),
            std::numeric_limits<int>::max());
}

TEST(NarrowTest, CheckedNarrowAbortsOnLoss) {
  // Out of range for To, and sign lost on signed -> unsigned.
  EXPECT_DEATH(
      { (void)checked_narrow<int>(std::uint64_t{1} << 40); },
      "narrowing lost value");
  EXPECT_DEATH({ (void)checked_narrow<std::uint32_t>(-1); },
               "narrowing lost value");
}

TEST(NarrowTest, CheckedTruncTruncatesTowardZero) {
  EXPECT_EQ(checked_trunc<int>(2.9), 2);
  EXPECT_EQ(checked_trunc<int>(-2.9), -2);
  EXPECT_EQ(checked_trunc<int>(0.0), 0);
  // The 16Mi-task sweep point times a fractional --scale must stay exact.
  EXPECT_EQ(checked_trunc<int>(16.0 * 1024 * 1024 * 0.25), 4 * 1024 * 1024);
  EXPECT_EQ(checked_trunc<std::uint64_t>(1.0e15), std::uint64_t{1000000000000000});
}

TEST(NarrowTest, CheckedTruncAbortsOnNonFiniteAndOverflow) {
  EXPECT_DEATH({ (void)checked_trunc<int>(std::nan("")); }, "non-finite");
  EXPECT_DEATH({ (void)checked_trunc<int>(1.0e18); }, "out of range");
  EXPECT_DEATH({ (void)checked_trunc<std::uint32_t>(-1.0); }, "out of range");
}

}  // namespace
}  // namespace sion
