// Tests for the paper's "future work" extensions: the slz compression codec
// (property roundtrips on adversarial inputs), metablock-2 recovery from
// chunk frames, and per-thread channel multiplexing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/codec.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/compress.h"
#include "ext/recovery.h"
#include "ext/slz.h"
#include "ext/threading.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"

namespace sion::ext {
namespace {

using fs::DataView;

// ---------------------------------------------------------------------------
// slz codec
// ---------------------------------------------------------------------------

TEST(SlzTest, EmptyInput) {
  const auto compressed = slz_compress({});
  auto back = slz_decompress(compressed);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(SlzTest, ShortLiteralOnly) {
  const std::vector<std::byte> in{std::byte{1}, std::byte{2}, std::byte{3}};
  auto back = slz_decompress(slz_compress(in));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), in);
}

TEST(SlzTest, HighlyRepetitiveCompressesWell) {
  std::vector<std::byte> in(100000, std::byte{'A'});
  const auto compressed = slz_compress(in);
  EXPECT_LT(compressed.size(), in.size() / 50);
  auto back = slz_decompress(compressed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), in);
}

TEST(SlzTest, OverlappingMatchRle) {
  // "abcabcabc..." forces matches with distance < length.
  std::vector<std::byte> in;
  for (int i = 0; i < 10000; ++i) {
    in.push_back(static_cast<std::byte>('a' + (i % 3)));
  }
  auto back = slz_decompress(slz_compress(in));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), in);
}

TEST(SlzTest, RandomDataStaysIntactAndDoesNotExplode) {
  std::vector<std::byte> in(50000);
  Rng rng(99);
  rng.fill_bytes(in);
  const auto compressed = slz_compress(in);
  EXPECT_LT(compressed.size(), in.size() + in.size() / 8 + 64);
  auto back = slz_decompress(compressed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), in);
}

TEST(SlzTest, DecompressRejectsGarbage) {
  std::vector<std::byte> junk(100, std::byte{0x33});
  EXPECT_FALSE(slz_decompress(junk).ok());
  EXPECT_FALSE(slz_decompress({}).ok());
}

TEST(SlzTest, DecompressRejectsTruncation) {
  std::vector<std::byte> in(10000, std::byte{'x'});
  auto compressed = slz_compress(in);
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(slz_decompress(compressed).ok());
}

TEST(SlzTest, FrameRoundtripReportsConsumedBytes) {
  std::vector<std::byte> in(5000, std::byte{'q'});
  auto framed_or = slz_frame(in);
  ASSERT_TRUE(framed_or.ok());
  std::vector<std::byte> framed = std::move(framed_or).value();
  // Append trailing data; unframe must stop at the frame boundary.
  const std::size_t frame_len = framed.size();
  framed.push_back(std::byte{0x77});
  auto back = slz_unframe(framed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().first, in);
  EXPECT_EQ(back.value().second, frame_len);
}

namespace {

// Hand-built slz stream: magic, u64 uncompressed size, then raw token bytes.
std::vector<std::byte> forge_slz_stream(std::uint64_t usize,
                                        std::initializer_list<int> tokens) {
  std::vector<std::byte> s;
  const char magic[4] = {'S', 'L', 'Z', '1'};
  for (const char c : magic) s.push_back(static_cast<std::byte>(c));
  for (int i = 0; i < 8; ++i) {
    s.push_back(static_cast<std::byte>((usize >> (8 * i)) & 0xFF));
  }
  for (const int t : tokens) s.push_back(static_cast<std::byte>(t));
  return s;
}

}  // namespace

TEST(SlzTest, ForgedSizeStreamRejectedWithoutHugeAllocation) {
  // A single flipped header byte used to drive out.reserve(usize) with a
  // corruption-controlled size (up to 1 TiB). The forged stream claims
  // 512 GiB but carries two literal bytes: the decoder must fail cleanly,
  // with its up-front reservation capped by the (tiny) input size.
  auto forged = forge_slz_stream(1ULL << 39, {0x04, 'h', 'i'});
  auto back = slz_decompress(forged);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), ErrorCode::kCorrupt);

  // A caller-supplied bound rejects sizes the context rules out entirely.
  auto honest = slz_compress(std::vector<std::byte>(100, std::byte{'x'}));
  EXPECT_TRUE(slz_decompress(honest, 100).ok());
  EXPECT_FALSE(slz_decompress(honest, 99).ok());
}

TEST(SlzTest, FrameLengthValidationCoversU32Boundary) {
  // slz_frame used to truncate stream.size() to u32 silently; the length
  // check is exposed so the >= 4 GiB boundary is testable without a real
  // 4 GiB allocation.
  EXPECT_TRUE(slz_validate_frame_size(0).ok());
  EXPECT_TRUE(slz_validate_frame_size(0xFFFFFFFFULL).ok());
  const Status over = slz_validate_frame_size(0x100000000ULL);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), ErrorCode::kOutOfRange);
  EXPECT_FALSE(slz_validate_frame_size(5ULL << 30).ok());
}

TEST(SlzTest, NonCanonicalVarintRejected) {
  // [0x06] and [0x86, 0x00] both decode to control 6 under a permissive
  // reader; the overlong form must be Corrupt, not an alias.
  auto canonical = forge_slz_stream(3, {0x06, 'a', 'b', 'c'});
  ASSERT_TRUE(slz_decompress(canonical).ok());
  auto overlong = forge_slz_stream(3, {0x86, 0x00, 'a', 'b', 'c'});
  auto back = slz_decompress(overlong);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), ErrorCode::kCorrupt);
}

TEST(SlzTest, OverflowingVarintRejected) {
  // Ten 0xFF-continuation bytes would need bits >= 64: the old decoder
  // silently dropped the high bits at shift 63 and wrapped the control.
  auto overflow = forge_slz_stream(
      3, {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 'a'});
  EXPECT_FALSE(slz_decompress(overflow).ok());
  // Continuation past the 10th byte is truncation-of-canonical territory.
  auto too_long = forge_slz_stream(
      3, {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01});
  EXPECT_FALSE(slz_decompress(too_long).ok());
  // The canonical top-bit encoding still decodes: bit 63 alone in byte 10.
  std::vector<std::byte> in(64, std::byte{'z'});
  auto round = slz_decompress(slz_compress(in));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), in);
}

// ---------------------------------------------------------------------------
// frame layer (ext/compress.h)
// ---------------------------------------------------------------------------

TEST(CompressTest, Crc32cKnownAnswer) {
  const char digits[] = "123456789";
  std::vector<std::byte> in(9);
  std::memcpy(in.data(), digits, 9);
  EXPECT_EQ(crc32c(in), 0xE3069283u);
  EXPECT_EQ(crc32c({}), 0u);
}

TEST(CompressTest, EmptyStreamRoundtrip) {
  auto enc = compress_stream({});
  ASSERT_TRUE(enc.ok());
  EXPECT_TRUE(enc.value().empty());
  StreamLossReport loss;
  auto dec = decompress_stream(enc.value(), &loss);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec.value().empty());
  EXPECT_TRUE(loss.clean());
}

TEST(CompressTest, SingleFrameRoundtrip) {
  std::vector<std::byte> in(4000);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::byte>((i / 37) % 11);
  }
  auto enc = compress_stream(in);
  ASSERT_TRUE(enc.ok());
  ASSERT_GE(enc.value().size(), kFrameSync.size());
  EXPECT_TRUE(stream_is_framed(
      std::span<const std::byte>(enc.value()).first(kFrameSync.size())));
  StreamLossReport loss;
  auto dec = decompress_stream(enc.value(), &loss);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), in);
  EXPECT_EQ(loss.frames_decoded, 1u);
  EXPECT_TRUE(loss.clean());
}

TEST(CompressTest, MultiFrameRoundtripWithSmallChunks) {
  std::vector<std::byte> in(10 * 1024);
  Rng rng(0xC0DEC);
  rng.fill_bytes(in);
  CompressionSpec spec;
  spec.chunk_bytes = 1024;
  auto enc = compress_stream(in, spec);
  ASSERT_TRUE(enc.ok());
  StreamLossReport loss;
  auto dec = decompress_stream(enc.value(), &loss);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), in);
  EXPECT_EQ(loss.frames_decoded, 10u);
  EXPECT_TRUE(loss.clean());
}

TEST(CompressTest, ChunkBytesAreClampedNotFatal) {
  // chunk_bytes below the floor must still produce a decodable stream.
  std::vector<std::byte> in(2048, std::byte{'q'});
  CompressionSpec spec;
  spec.chunk_bytes = 1;  // clamped up to 512
  auto enc = compress_stream(in, spec);
  ASSERT_TRUE(enc.ok());
  auto dec = decompress_stream(enc.value());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), in);
}

TEST(CompressTest, UnframedStreamIsDetected) {
  std::vector<std::byte> plain(64, std::byte{'p'});
  EXPECT_FALSE(stream_is_framed(
      std::span<const std::byte>(plain).first(kFrameSync.size())));
}

TEST(CompressTest, FrameIndexMatchesDeliveredBytes) {
  // The Remap::open rank-0 scan and the restore-time decoder must agree on
  // the decoded size; index_frames is that contract.
  std::vector<std::byte> in(5000);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::byte>(i % 251);
  }
  CompressionSpec spec;
  spec.chunk_bytes = 1500;
  auto enc = compress_stream(in, spec);
  ASSERT_TRUE(enc.ok());
  const std::vector<std::byte>& bytes = enc.value();
  auto read_at = [&bytes](std::uint64_t off,
                          std::span<std::byte> o) -> Result<std::uint64_t> {
    const std::uint64_t n =
        std::min<std::uint64_t>(o.size(), bytes.size() - off);
    std::memcpy(o.data(), bytes.data() + off, static_cast<std::size_t>(n));
    return n;
  };
  auto idx = index_frames(bytes.size(), read_at);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value().decoded_bytes, in.size());
  EXPECT_EQ(idx.value().encoded_bytes, bytes.size());
  EXPECT_EQ(idx.value().frames.size(), 4u);
  EXPECT_TRUE(idx.value().scan_loss.clean());

  // Random access through the reader: a slice from the middle crossing a
  // frame boundary comes back byte-identical.
  StreamLossReport loss;
  FrameStreamReader reader(std::move(idx).value(), read_at, &loss);
  std::vector<std::byte> slice(2000);
  ASSERT_TRUE(reader.read_decoded(1000, slice).ok());
  EXPECT_TRUE(std::equal(slice.begin(), slice.end(), in.begin() + 1000));
  EXPECT_TRUE(loss.clean());
  EXPECT_FALSE(reader.read_decoded(4000, slice).ok());  // past the end
}

TEST(CompressTest, LossReportMergeAndFormat) {
  StreamLossReport a{.frames_decoded = 2,
                     .frames_skipped = 1,
                     .bytes_zero_filled = 100,
                     .bytes_discarded = 0};
  StreamLossReport b{.frames_decoded = 3,
                     .frames_skipped = 0,
                     .bytes_zero_filled = 0,
                     .bytes_discarded = 7};
  a.merge(b);
  EXPECT_EQ(a.frames_decoded, 5u);
  EXPECT_EQ(a.frames_skipped, 1u);
  EXPECT_EQ(a.bytes_zero_filled, 100u);
  EXPECT_EQ(a.bytes_discarded, 7u);
  EXPECT_FALSE(a.clean());
  EXPECT_FALSE(a.to_string().empty());
  EXPECT_TRUE(StreamLossReport{}.clean());
}

class SlzPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlzPropertyTest, RoundtripOnStructuredRandomInputs) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    // Mix of runs, copies of earlier content, and random bytes — the three
    // regimes an LZ codec must handle.
    std::vector<std::byte> in;
    const int segments = 1 + static_cast<int>(rng.next_below(12));
    for (int s = 0; s < segments; ++s) {
      const std::uint64_t len = rng.next_below(3000);
      switch (rng.next_below(3)) {
        case 0:
          in.insert(in.end(), len,
                    static_cast<std::byte>(rng.next_below(256)));
          break;
        case 1: {
          if (in.empty()) break;
          const std::uint64_t start = rng.next_below(in.size());
          for (std::uint64_t i = 0; i < len; ++i) {
            in.push_back(in[start + (i % (in.size() - start))]);
          }
          break;
        }
        default: {
          const std::size_t old = in.size();
          in.resize(old + len);
          rng.fill_bytes(std::span<std::byte>(in.data() + old, len));
        }
      }
    }
    auto back = slz_decompress(slz_compress(in));
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    ASSERT_EQ(back.value(), in) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlzPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// recovery
// ---------------------------------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : fs_(fs::TestbedConfig()) {}

  // Write with frames; if `crash`, skip the collective close so metablock 2
  // is missing — the failure mode the paper's section 6 describes.
  void write_frames(const std::string& name, int ntasks, int nfiles,
                    std::uint64_t bytes_per_task, bool crash) {
    par::Engine engine;
    engine.run(ntasks, [&](par::Comm& world) {
      core::ParOpenSpec spec;
      spec.filename = name;
      spec.chunksize = 50000;
      spec.nfiles = nfiles;
      spec.chunk_frames = true;
      auto open = core::SionParFile::open_write(fs_, world, spec);
      ASSERT_TRUE(open.ok()) << open.status().to_string();
      std::vector<std::byte> data(bytes_per_task);
      Rng rng(7000 + static_cast<std::uint64_t>(world.rank()));
      rng.fill_bytes(data);
      ASSERT_TRUE(open.value()->write(DataView(data)).ok());
      if (!crash) {
        ASSERT_TRUE(open.value()->close().ok());
      }
    });
  }

  void verify_readable(const std::string& name, int ntasks,
                       std::uint64_t bytes_per_task) {
    par::Engine engine;
    engine.run(ntasks, [&](par::Comm& world) {
      auto ropen = core::SionParFile::open_read(fs_, world, name);
      ASSERT_TRUE(ropen.ok()) << ropen.status().to_string();
      std::vector<std::byte> expect(bytes_per_task);
      Rng rng(7000 + static_cast<std::uint64_t>(world.rank()));
      rng.fill_bytes(expect);
      std::vector<std::byte> back(bytes_per_task);
      auto got = ropen.value()->read(back);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), bytes_per_task);
      EXPECT_EQ(back, expect);
      ASSERT_TRUE(ropen.value()->close().ok());
    });
  }

  fs::SimFs fs_;
};

TEST_F(RecoveryTest, RepairsCrashedSingleFile) {
  write_frames("c1.sion", 4, 1, 30000, /*crash=*/true);
  // Unreadable before repair...
  {
    par::Engine engine;
    engine.run(4, [&](par::Comm& world) {
      EXPECT_FALSE(core::SionParFile::open_read(fs_, world, "c1.sion").ok());
    });
  }
  auto report = repair_multifile(fs_, "c1.sion");
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().repaired_files, 1);
  EXPECT_GE(report.value().chunks_recovered, 4u);
  verify_readable("c1.sion", 4, 30000);
}

TEST_F(RecoveryTest, RepairsMultiplePhysicalFilesAndBlocks) {
  // 120000 bytes with ~50 KiB usable chunks -> 3 blocks per task.
  write_frames("c2.sion", 6, 3, 120000, /*crash=*/true);
  auto report = repair_multifile(fs_, "c2.sion");
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().repaired_files, 3);
  verify_readable("c2.sion", 6, 120000);
}

TEST_F(RecoveryTest, IntactFileLeftAlone) {
  write_frames("ok.sion", 4, 2, 10000, /*crash=*/false);
  auto report = repair_multifile(fs_, "ok.sion");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().repaired_files, 0);
  EXPECT_EQ(report.value().intact_files, 2);
  verify_readable("ok.sion", 4, 10000);
}

TEST_F(RecoveryTest, WithoutFramesRepairRefuses) {
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "nf.sion";
    spec.chunksize = 1000;
    auto open = core::SionParFile::open_write(fs_, world, spec);
    ASSERT_TRUE(open.ok());
    // crash without close
  });
  auto report = repair_multifile(fs_, "nf.sion");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, QuotaFailureMidWriteIsRecoverable) {
  // The paper's other failure example: quota violation during the write.
  fs::SimConfig cfg = fs::TestbedConfig();
  cfg.quota_bytes = 800 * kKiB;
  fs::SimFs fs(cfg);
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "q.sion";
    spec.chunksize = 64 * kKiB;
    spec.chunk_frames = true;
    auto open = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    // Keep writing until the quota bites, then give up without closing.
    for (int i = 0; i < 64; ++i) {
      auto w = open.value()->write(DataView::fill(std::byte{1}, 32 * kKiB));
      if (!w.ok()) {
        EXPECT_EQ(w.status().code(), ErrorCode::kQuotaExceeded);
        break;
      }
    }
  });
  auto report = repair_multifile(fs, "q.sion");
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().repaired_files, 1);
  // Whatever survived must now be readable.
  engine.run(4, [&](par::Comm& world) {
    auto ropen = core::SionParFile::open_read(fs, world, "q.sion");
    ASSERT_TRUE(ropen.ok()) << ropen.status().to_string();
    ASSERT_TRUE(ropen.value()->read_skip(1 << 30).ok());
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

// ---------------------------------------------------------------------------
// thread channels
// ---------------------------------------------------------------------------

TEST(ThreadChannelsTest, MultiplexAndDemultiplex) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(3, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "thr.sion";
    spec.chunksize = 64 * kKiB;
    auto open = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ThreadChannels channels(*open.value(), 4);
    for (int tid = 0; tid < 4; ++tid) {
      std::vector<std::byte> data(
          100 * static_cast<std::size_t>(tid + 1),
          static_cast<std::byte>(world.rank() * 4 + tid));
      ASSERT_TRUE(channels.append(tid, data).ok());
      EXPECT_EQ(channels.buffered_bytes(tid), data.size());
    }
    ASSERT_TRUE(channels.flush().ok());
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = core::SionParFile::open_read(fs, world, "thr.sion");
    ASSERT_TRUE(ropen.ok());
    auto reader = ThreadChannelReader::load(*ropen.value(), 4);
    ASSERT_TRUE(reader.ok()) << reader.status().to_string();
    for (int tid = 0; tid < 4; ++tid) {
      const auto& stream = reader.value().stream(tid);
      ASSERT_EQ(stream.size(), 100u * static_cast<std::size_t>(tid + 1));
      for (auto b : stream) {
        EXPECT_EQ(b, static_cast<std::byte>(world.rank() * 4 + tid));
      }
    }
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(ThreadChannelsTest, InterleavedAppendsKeepOrder) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(1, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "inter.sion";
    spec.chunksize = 64 * kKiB;
    auto open = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ThreadChannels channels(*open.value(), 2);
    // Two flushes with interleaved appends: per-thread byte order must hold.
    std::vector<std::byte> a1(10, std::byte{1});
    std::vector<std::byte> b1(10, std::byte{2});
    std::vector<std::byte> a2(10, std::byte{3});
    ASSERT_TRUE(channels.append(0, a1).ok());
    ASSERT_TRUE(channels.append(1, b1).ok());
    ASSERT_TRUE(channels.flush().ok());
    ASSERT_TRUE(channels.append(0, a2).ok());
    ASSERT_TRUE(channels.flush().ok());
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = core::SionParFile::open_read(fs, world, "inter.sion");
    ASSERT_TRUE(ropen.ok());
    auto reader = ThreadChannelReader::load(*ropen.value(), 2);
    ASSERT_TRUE(reader.ok());
    ASSERT_EQ(reader.value().stream(0).size(), 20u);
    EXPECT_EQ(reader.value().stream(0)[0], std::byte{1});
    EXPECT_EQ(reader.value().stream(0)[10], std::byte{3});
    ASSERT_EQ(reader.value().stream(1).size(), 10u);
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(ThreadChannelsTest, ReaderThreadCountMismatch) {
  // A hybrid job restarted with a different OMP_NUM_THREADS: more reader
  // threads than writer threads is fine (extras stay empty); fewer is
  // corruption (segments name unknown threads), reported — not a crash.
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(2, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "mismatch.sion";
    spec.chunksize = 64 * kKiB;
    auto open = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ThreadChannels channels(*open.value(), 4);
    for (int tid = 0; tid < 4; ++tid) {
      std::vector<std::byte> data(50, static_cast<std::byte>(tid));
      ASSERT_TRUE(channels.append(tid, data).ok());
    }
    ASSERT_TRUE(channels.flush().ok());
    ASSERT_TRUE(open.value()->close().ok());

    {
      auto ropen = core::SionParFile::open_read(fs, world, "mismatch.sion");
      ASSERT_TRUE(ropen.ok());
      auto narrow = ThreadChannelReader::load(*ropen.value(), 2);
      ASSERT_FALSE(narrow.ok());
      EXPECT_EQ(narrow.status().code(), ErrorCode::kCorrupt);
      ASSERT_TRUE(ropen.value()->close().ok());
    }
    {
      auto ropen = core::SionParFile::open_read(fs, world, "mismatch.sion");
      ASSERT_TRUE(ropen.ok());
      auto wide = ThreadChannelReader::load(*ropen.value(), 8);
      ASSERT_TRUE(wide.ok()) << wide.status().to_string();
      for (int tid = 0; tid < 4; ++tid) {
        EXPECT_EQ(wide.value().stream(tid).size(), 50u);
      }
      for (int tid = 4; tid < 8; ++tid) {
        EXPECT_TRUE(wide.value().stream(tid).empty());
      }
      ASSERT_TRUE(ropen.value()->close().ok());
    }
  });
}

TEST(ThreadChannelsTest, EmptyPerThreadStreamsRoundTrip) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(1, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "empty.sion";
    spec.chunksize = 8 * kKiB;
    auto open = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ThreadChannels channels(*open.value(), 3);
    // Only thread 1 ever writes; 0 and 2 stay empty, including a flush
    // with nothing buffered at all.
    ASSERT_TRUE(channels.flush().ok());
    std::vector<std::byte> data(30, std::byte{0x42});
    ASSERT_TRUE(channels.append(1, data).ok());
    ASSERT_TRUE(channels.append(1, std::span<const std::byte>{}).ok());
    ASSERT_TRUE(channels.flush().ok());
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = core::SionParFile::open_read(fs, world, "empty.sion");
    ASSERT_TRUE(ropen.ok());
    auto reader = ThreadChannelReader::load(*ropen.value(), 3);
    ASSERT_TRUE(reader.ok()) << reader.status().to_string();
    EXPECT_TRUE(reader.value().stream(0).empty());
    EXPECT_EQ(reader.value().stream(1).size(), 30u);
    EXPECT_TRUE(reader.value().stream(2).empty());
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(ThreadChannelsTest, TruncatedFinalSegmentIsCorruptNotCrash) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(1, [&](par::Comm& world) {
    // Hand-craft a stream whose final segment header promises more payload
    // than was ever written (crash mid-flush).
    core::ParOpenSpec spec;
    spec.filename = "cut.sion";
    spec.chunksize = 8 * kKiB;
    auto open = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ByteWriter w;
    w.put_u32(0);    // tid
    w.put_u32(100);  // promised payload bytes
    ASSERT_TRUE(open.value()->write(fs::DataView(w.bytes())).ok());
    std::vector<std::byte> partial(10, std::byte{0x7});
    ASSERT_TRUE(open.value()->write(fs::DataView(partial)).ok());
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = core::SionParFile::open_read(fs, world, "cut.sion");
    ASSERT_TRUE(ropen.ok());
    auto reader = ThreadChannelReader::load(*ropen.value(), 1);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), ErrorCode::kCorrupt);
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(ThreadChannelsTest, TruncatedSegmentHeaderIsCorruptNotCrash) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(1, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "cuthdr.sion";
    spec.chunksize = 8 * kKiB;
    auto open = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ThreadChannels channels(*open.value(), 2);
    std::vector<std::byte> data(20, std::byte{0x9});
    ASSERT_TRUE(channels.append(0, data).ok());
    ASSERT_TRUE(channels.flush().ok());
    // 3 trailing bytes: a segment header cut short.
    std::vector<std::byte> stub(3, std::byte{0x1});
    ASSERT_TRUE(open.value()->write(fs::DataView(stub)).ok());
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = core::SionParFile::open_read(fs, world, "cuthdr.sion");
    ASSERT_TRUE(ropen.ok());
    auto reader = ThreadChannelReader::load(*ropen.value(), 2);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), ErrorCode::kCorrupt);
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(ThreadChannelsTest, DegenerateThreadCountsErrorInsteadOfCrashing) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(1, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "degen.sion";
    spec.chunksize = 4096;
    auto open = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    // Negative/zero thread counts must not allocate absurd buffers or index
    // out of bounds.
    ThreadChannels none(*open.value(), -3);
    EXPECT_EQ(none.nthreads(), 0);
    std::vector<std::byte> data(4, std::byte{0});
    EXPECT_FALSE(none.append(0, data).ok());
    EXPECT_EQ(none.buffered_bytes(0), 0u);
    EXPECT_EQ(none.buffered_bytes(-1), 0u);
    ASSERT_TRUE(none.flush().ok());
    ASSERT_TRUE(open.value()->close().ok());

    auto ropen = core::SionParFile::open_read(fs, world, "degen.sion");
    ASSERT_TRUE(ropen.ok());
    EXPECT_FALSE(ThreadChannelReader::load(*ropen.value(), 0).ok());
    EXPECT_FALSE(ThreadChannelReader::load(*ropen.value(), -2).ok());
    auto reader = ThreadChannelReader::load(*ropen.value(), 1);
    ASSERT_TRUE(reader.ok());
    // Out-of-range stream lookups answer with an empty stream.
    EXPECT_TRUE(reader.value().stream(5).empty());
    EXPECT_TRUE(reader.value().stream(-1).empty());
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(ThreadChannelsTest, BadThreadIdRejected) {
  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  engine.run(1, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "bad.sion";
    spec.chunksize = 4096;
    auto open = core::SionParFile::open_write(fs, world, spec);
    ASSERT_TRUE(open.ok());
    ThreadChannels channels(*open.value(), 2);
    std::vector<std::byte> data(4, std::byte{0});
    EXPECT_FALSE(channels.append(2, data).ok());
    EXPECT_FALSE(channels.append(-1, data).ok());
    ASSERT_TRUE(open.value()->close().ok());
  });
}

}  // namespace
}  // namespace sion::ext
