// Cross-module integration scenarios that chain several subsystems end to
// end: parallel write -> serial tools -> parallel re-read; crash -> repair ->
// defrag; compression through the SION write path; round-robin mappings
// under re-reads; and the full MP2C example pipeline on PosixFs.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "common/strings.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/recovery.h"
#include "ext/slz.h"
#include "fs/posix_fs.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "tools/defrag.h"
#include "tools/split.h"
#include "workloads/checkpoint.h"
#include "workloads/mp2c.h"

namespace sion {
namespace {

using fs::DataView;

std::vector<std::byte> rank_pattern(int rank, std::size_t n) {
  std::vector<std::byte> out(n);
  Rng rng(0x17E6 + static_cast<std::uint64_t>(rank));
  rng.fill_bytes(out);
  return out;
}

TEST(IntegrationTest, ParallelWriteSplitCompareParallelRead) {
  fs::SimFs fsim(fs::TestbedConfig());
  par::Engine engine;
  const int n = 12;
  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "w.sion";
    spec.chunksize = 10000;
    spec.fsblksize = 4096;
    spec.nfiles = 3;
    spec.mapping = core::Mapping::kRoundRobin;
    auto sion = core::SionParFile::open_write(fsim, world, spec);
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    const auto data = rank_pattern(world.rank(), 25000);
    ASSERT_TRUE(sion.value()->write(DataView(data)).ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });

  // Serial: split out every logical file and compare.
  ASSERT_TRUE(tools::split_multifile(fsim, "w.sion", "sp").ok());
  for (int r = 0; r < n; ++r) {
    auto file = fsim.open_read(strformat("sp.%06d", r));
    ASSERT_TRUE(file.ok());
    std::vector<std::byte> got(25000);
    ASSERT_TRUE(file.value()->pread(got, 0).ok());
    EXPECT_EQ(got, rank_pattern(r, 25000)) << "rank " << r;
  }

  // Parallel re-read of the round-robin multifile.
  engine.run(n, [&](par::Comm& world) {
    auto sion = core::SionParFile::open_read(fsim, world, "w.sion");
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    std::vector<std::byte> got(25000);
    ASSERT_TRUE(sion.value()->read(got).ok());
    EXPECT_EQ(got, rank_pattern(world.rank(), 25000));
    ASSERT_TRUE(sion.value()->close().ok());
  });
}

TEST(IntegrationTest, CrashRepairDefragReread) {
  fs::SimFs fsim(fs::TestbedConfig());
  par::Engine engine;
  const int n = 6;
  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "cr.sion";
    spec.chunksize = 8000;
    spec.fsblksize = 4096;
    spec.nfiles = 2;
    spec.chunk_frames = true;
    auto sion = core::SionParFile::open_write(fsim, world, spec);
    ASSERT_TRUE(sion.ok());
    const auto data = rank_pattern(world.rank(), 20000);  // multiple chunks
    ASSERT_TRUE(sion.value()->write(DataView(data)).ok());
    // crash: no close
  });
  ASSERT_TRUE(ext::repair_multifile(fsim, "cr.sion").ok());
  ASSERT_TRUE(tools::defrag_multifile(fsim, "cr.sion", "cr2.sion").ok());
  engine.run(n, [&](par::Comm& world) {
    auto sion = core::SionParFile::open_read(fsim, world, "cr2.sion");
    ASSERT_TRUE(sion.ok()) << sion.status().to_string();
    std::vector<std::byte> got(20000);
    ASSERT_TRUE(sion.value()->read(got).ok());
    EXPECT_EQ(got, rank_pattern(world.rank(), 20000));
    ASSERT_TRUE(sion.value()->close().ok());
  });
}

TEST(IntegrationTest, CompressedPayloadThroughMultifile) {
  fs::SimFs fsim(fs::TestbedConfig());
  par::Engine engine;
  engine.run(4, [&](par::Comm& world) {
    // Compressible per-rank payload.
    std::vector<std::byte> raw(50000);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      raw[i] = static_cast<std::byte>((i / 100 + world.rank()) % 7);
    }
    auto framed_or = ext::slz_frame(raw);
    ASSERT_TRUE(framed_or.ok());
    const std::vector<std::byte> framed = std::move(framed_or).value();

    core::ParOpenSpec spec;
    spec.filename = "z.sion";
    spec.chunksize = framed.size() + 100;
    auto sion = core::SionParFile::open_write(fsim, world, spec);
    ASSERT_TRUE(sion.ok());
    ASSERT_TRUE(sion.value()->write(DataView(framed)).ok());
    ASSERT_TRUE(sion.value()->close().ok());

    auto ropen = core::SionParFile::open_read(fsim, world, "z.sion");
    ASSERT_TRUE(ropen.ok());
    std::vector<std::byte> back(ropen.value()->bytes_remaining_total());
    ASSERT_TRUE(ropen.value()->read(back).ok());
    auto restored = ext::slz_unframe(back);
    ASSERT_TRUE(restored.ok()) << restored.status().to_string();
    EXPECT_EQ(restored.value().first, raw);
    ASSERT_TRUE(ropen.value()->close().ok());
  });
}

TEST(IntegrationTest, Mp2cPipelineOnRealDisk) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("sion_integ_" + std::to_string(::getpid()));
  std::filesystem::create_directories(root);
  fs::PosixFs pfs(64 * kKiB);
  par::Engine engine;
  const int n = 4;
  const std::uint64_t particles = 5000;

  workloads::CheckpointSpec spec;
  spec.path = (root / "mp2c.ckpt").string();
  spec.strategy = workloads::IoStrategy::kSion;
  spec.nfiles = 2;

  engine.run(n, [&](par::Comm& world) {
    const auto mine = workloads::mp2c_generate(particles, n, world.rank(), 1);
    const auto payload = workloads::mp2c_serialize(mine);
    ASSERT_TRUE(
        workloads::write_checkpoint(pfs, world, spec, DataView(payload)).ok());

    std::vector<std::byte> back(payload.size());
    ASSERT_TRUE(
        workloads::read_checkpoint(pfs, world, spec, payload.size(), back)
            .ok());
    auto restored = workloads::mp2c_deserialize(back);
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(restored.value().size(), mine.size());
    EXPECT_DOUBLE_EQ(restored.value()[0].pos[0], mine[0].pos[0]);
  });
  std::filesystem::remove_all(root);
}

TEST(IntegrationTest, SixtyFourKTaskOpenIsMemoryLean) {
  // Regression guard: collective opens must be O(1) memory per task.
  // 64 Ki-task paropen with small stacks finishes fast and fits easily in
  // RAM (it OOMed before FileMap became closed-form).
#ifdef SION_TSAN_FIBERS
  // TSan models every fiber as a thread and hard-caps at 8128 of them; a
  // 64 Ki-fiber run dies inside the runtime ("Thread limit exceeded"), and
  // the memory profile it would measure is TSan's, not ours. The race
  // coverage for the engine comes from the smaller runs in this suite.
  GTEST_SKIP() << "64Ki fibers exceed ThreadSanitizer's 8128-thread limit";
#endif
  fs::SimFs fsim(fs::JugeneConfig());
  par::EngineConfig config;
  config.stack_bytes = 32 * 1024;
  par::Engine engine(config);
  const int n = 65536;
  engine.run(n, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "big.sion";
    spec.chunksize = 64 * kKiB;
    spec.nfiles = 32;
    auto sion = core::SionParFile::open_write(fsim, world, spec);
    ASSERT_TRUE(sion.ok());
    ASSERT_TRUE(sion.value()->close().ok());
  });
  EXPECT_EQ(fsim.counters().creates, 32u);
  EXPECT_EQ(fsim.counters().cached_opens, static_cast<std::uint64_t>(n - 32));
}

}  // namespace
}  // namespace sion
