// siondefrag: rewrite a multifile so every logical file occupies exactly one
// chunk sized to its payload, removing the gaps left by partially used and
// over-allocated blocks (paper section 3.3: "generates a new multifile ...
// with all the blocks contracted into a single block").
#pragma once

#include <string>

#include "common/status.h"
#include "fs/filesystem.h"

namespace sion::tools {

struct DefragOptions {
  int nfiles = 0;              // 0 = keep the input's physical file count
  std::uint64_t fsblksize = 0;  // 0 = keep the input's block size
};

Status defrag_multifile(fs::FileSystem& fs, const std::string& input,
                        const std::string& output,
                        const DefragOptions& options = {});

}  // namespace sion::tools
