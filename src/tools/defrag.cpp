#include "tools/defrag.h"

#include <algorithm>
#include <vector>

#include "core/api.h"

namespace sion::tools {

namespace {
constexpr std::uint64_t kCopyBuffer = 1024 * 1024;
}

Status defrag_multifile(fs::FileSystem& fs, const std::string& input,
                        const std::string& output,
                        const DefragOptions& options) {
  SION_ASSIGN_OR_RETURN(auto in, core::SionSerialFile::open_read(fs, input));
  const auto& loc = in->locations();

  // One chunk per task, sized to what the task actually wrote.
  core::SerialWriteSpec spec;
  spec.filename = output;
  spec.nfiles = options.nfiles > 0 ? options.nfiles : loc.nfiles;
  spec.fsblksize = options.fsblksize > 0 ? options.fsblksize : loc.fsblksize;
  spec.chunksizes.reserve(static_cast<std::size_t>(loc.nranks));
  for (int r = 0; r < loc.nranks; ++r) {
    std::uint64_t total = 0;
    for (const std::uint64_t b :
         loc.bytes_written[static_cast<std::size_t>(r)]) {
      total += b;
    }
    spec.chunksizes.push_back(std::max<std::uint64_t>(1, total));
  }
  SION_ASSIGN_OR_RETURN(auto out, core::SionSerialFile::open_write(fs, spec));

  std::vector<std::byte> buf(kCopyBuffer);
  for (int r = 0; r < loc.nranks; ++r) {
    SION_RETURN_IF_ERROR(in->seek(r, 0, 0));
    SION_RETURN_IF_ERROR(out->seek(r, 0, 0));
    while (!in->eof()) {
      SION_ASSIGN_OR_RETURN(const std::uint64_t n, in->read(buf));
      if (n == 0) break;
      SION_ASSIGN_OR_RETURN(
          const std::uint64_t w,
          out->write(fs::DataView(std::span<const std::byte>(buf.data(), n))));
      (void)w;
    }
  }
  SION_RETURN_IF_ERROR(out->close());
  return in->close();
}

}  // namespace sion::tools
