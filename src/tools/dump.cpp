#include "tools/dump.h"

#include "common/strings.h"
#include "common/units.h"
#include "core/api.h"

namespace sion::tools {

Result<std::string> dump_multifile(fs::FileSystem& fs, const std::string& name,
                                   const DumpOptions& options) {
  SION_ASSIGN_OR_RETURN(auto sion, core::SionSerialFile::open_read(fs, name));
  const auto& loc = sion->locations();

  std::string out;
  out += strformat("multifile:        %s\n", name.c_str());
  out += strformat("physical files:   %d\n", loc.nfiles);
  out += strformat("logical files:    %d\n", loc.nranks);
  out += strformat("fs block size:    %s\n",
                   format_bytes(loc.fsblksize).c_str());
  out += strformat("chunk frames:     %s\n", loc.chunk_frames ? "yes" : "no");
  for (int f = 0; f < loc.nfiles; ++f) {
    SION_ASSIGN_OR_RETURN(
        const fs::FileStat st,
        fs.stat_path(loc.physical_paths[static_cast<std::size_t>(f)]));
    int tasks = 0;
    for (int r = 0; r < loc.nranks; ++r) {
      if (loc.file_of_rank[static_cast<std::size_t>(r)] == f) ++tasks;
    }
    out += strformat("  file %2d: %s  size=%s allocated=%s tasks=%d\n", f,
                     loc.physical_paths[static_cast<std::size_t>(f)].c_str(),
                     format_bytes(st.size).c_str(),
                     format_bytes(st.allocated).c_str(), tasks);
  }

  std::uint64_t total_payload = 0;
  std::uint64_t max_blocks = 0;
  for (int r = 0; r < loc.nranks; ++r) {
    const auto& chunks = loc.bytes_written[static_cast<std::size_t>(r)];
    std::uint64_t rank_total = 0;
    for (const std::uint64_t b : chunks) rank_total += b;
    total_payload += rank_total;
    max_blocks = std::max(max_blocks,
                          static_cast<std::uint64_t>(chunks.size()));
    if (options.per_chunk) {
      out += strformat("  rank %6d: file=%d chunksize=%llu blocks=%zu "
                       "payload=%llu\n",
                       r, loc.file_of_rank[static_cast<std::size_t>(r)],
                       static_cast<unsigned long long>(
                           loc.chunksizes[static_cast<std::size_t>(r)]),
                       chunks.size(),
                       static_cast<unsigned long long>(rank_total));
      for (std::size_t b = 0; b < chunks.size(); ++b) {
        out += strformat("    chunk %3zu: %llu bytes\n", b,
                         static_cast<unsigned long long>(chunks[b]));
      }
    }
  }
  out += strformat("blocks (max):     %llu\n",
                   static_cast<unsigned long long>(max_blocks));
  out += strformat("payload total:    %s\n",
                   format_bytes(total_payload).c_str());
  return out;
}

}  // namespace sion::tools
