// siondump: render the metadata of a multifile as text (paper section 3.3,
// "the dump tool prints the multifile metadata to the standard output").
#pragma once

#include <string>

#include "common/status.h"
#include "fs/filesystem.h"

namespace sion::tools {

struct DumpOptions {
  bool per_chunk = false;  // list every chunk of every logical file
};

// Human-readable description of the multifile `name` (all physical files).
Result<std::string> dump_multifile(fs::FileSystem& fs, const std::string& name,
                                   const DumpOptions& options = {});

}  // namespace sion::tools
