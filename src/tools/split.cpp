#include "tools/split.h"

#include <vector>

#include "common/strings.h"
#include "core/api.h"

namespace sion::tools {

namespace {
constexpr std::uint64_t kCopyBuffer = 1024 * 1024;

Status extract_rank(core::SionSerialFile& sion, fs::FileSystem& fs,
                    const std::string& output_prefix, int rank) {
  SION_RETURN_IF_ERROR(sion.seek(rank, 0, 0));
  const std::string out_path = strformat("%s.%06d", output_prefix.c_str(), rank);
  SION_ASSIGN_OR_RETURN(auto out, fs.create(out_path));
  std::vector<std::byte> buf(kCopyBuffer);
  std::uint64_t out_offset = 0;
  while (!sion.eof()) {
    SION_ASSIGN_OR_RETURN(const std::uint64_t n, sion.read(buf));
    if (n == 0) break;
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t w,
        out->pwrite(fs::DataView(std::span<const std::byte>(buf.data(), n)),
                    out_offset));
    out_offset += w;
  }
  return Status::Ok();
}
}  // namespace

Result<int> split_multifile(fs::FileSystem& fs, const std::string& name,
                            const std::string& output_prefix,
                            const SplitOptions& options) {
  SION_ASSIGN_OR_RETURN(auto sion, core::SionSerialFile::open_read(fs, name));
  const int nranks = sion->locations().nranks;
  if (options.only_rank >= 0) {
    if (options.only_rank >= nranks) {
      return InvalidArgument(strformat("rank %d out of range [0, %d)",
                                       options.only_rank, nranks));
    }
    SION_RETURN_IF_ERROR(extract_rank(*sion, fs, output_prefix,
                                      options.only_rank));
    return 1;
  }
  for (int r = 0; r < nranks; ++r) {
    SION_RETURN_IF_ERROR(extract_rank(*sion, fs, output_prefix, r));
  }
  return nranks;
}

}  // namespace sion::tools
