// sionsplit: extract logical task-local files out of a multifile and
// recreate them as individual physical files (paper section 3.3).
#pragma once

#include <string>

#include "common/status.h"
#include "fs/filesystem.h"

namespace sion::tools {

struct SplitOptions {
  int only_rank = -1;  // -1 = all logical files
};

// Extract logical files of multifile `name` into "<output_prefix>.<%06d>".
// Returns the number of files written.
Result<int> split_multifile(fs::FileSystem& fs, const std::string& name,
                            const std::string& output_prefix,
                            const SplitOptions& options = {});

}  // namespace sion::tools
