// The file-system abstraction SIONlib is written against.
//
// Two implementations exist:
//   * PosixFs — a passthrough to the host file system, used by the
//     command-line utilities, the examples, and functional tests.
//   * SimFs — a discrete-event parallel-file-system simulator (GPFS- and
//     Lustre-like machine models) used to reproduce the paper's evaluation
//     at up to 64Ki tasks; see src/fs/sim/.
//
// The interface uses positional reads/writes (pread/pwrite style) — SIONlib
// maintains per-task logical file positions itself, so a shared seek pointer
// would only invite races.
//
// `DataView` lets benchmark workloads write *virtual* payloads (a fill byte
// repeated N times) so that simulating a 1 TB experiment does not require
// materialising a terabyte: SimFs stores fills as constant extents, and
// PosixFs expands them through a small staging buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace sion::fs {

// Non-owning description of write payload: real bytes, a repeated fill, or
// a gather list of such parts forming one logically contiguous range.
class DataView {
 public:
  DataView(std::span<const std::byte> bytes)  // NOLINT(google-explicit-constructor)
      : bytes_(bytes), size_(bytes.size()), is_fill_(false) {}

  static DataView fill(std::byte value, std::uint64_t size) {
    DataView v;
    v.fill_ = value;
    v.size_ = size;
    v.is_fill_ = true;
    return v;
  }

  // View over a sequence of single-mode parts (spans and fills; nesting is
  // not supported). The parts array — and every buffer the parts reference —
  // must outlive the view. This is what lets a write coalescer issue ONE
  // pwrite for a contiguous file range whose bytes live in many different
  // senders' buffers, without staging them through a copy.
  static DataView gather(std::span<const DataView> parts) {
    DataView v;
    v.parts_ = parts;
    v.is_gather_ = true;
    std::uint64_t total = 0;
    for (const DataView& p : parts) total += p.size_;
    v.size_ = total;
    return v;
  }

  [[nodiscard]] bool is_fill() const { return is_fill_; }
  [[nodiscard]] bool is_gather() const { return is_gather_; }
  [[nodiscard]] std::byte fill_byte() const { return fill_; }
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] std::span<const std::byte> bytes() const { return bytes_; }
  [[nodiscard]] std::span<const DataView> parts() const { return parts_; }

  // Sub-range [offset, offset+len), clamped to the view. Not available for
  // gather views (coalescers slice before gathering, not after).
  [[nodiscard]] DataView subview(std::uint64_t offset,
                                 std::uint64_t len) const {
    const std::uint64_t off = offset > size_ ? size_ : offset;
    const std::uint64_t n = len > size_ - off ? size_ - off : len;
    if (is_fill_) return fill(fill_, n);
    return DataView(bytes_.subspan(off, n));
  }

 private:
  DataView() = default;
  std::span<const std::byte> bytes_;
  std::span<const DataView> parts_;
  std::uint64_t size_ = 0;
  std::byte fill_{0};
  bool is_fill_ = false;
  bool is_gather_ = false;
};

struct FileStat {
  std::uint64_t size = 0;        // logical size (end of file)
  std::uint64_t allocated = 0;   // physically allocated bytes (sparse-aware)
  std::uint64_t block_size = 0;  // file-system block size (st_blksize analog)
};

// An open file handle. Destroying the handle closes the file.
class File {
 public:
  virtual ~File() = default;

  virtual Result<std::uint64_t> pwrite(DataView data, std::uint64_t offset) = 0;
  virtual Result<std::uint64_t> pread(std::span<std::byte> out,
                                      std::uint64_t offset) = 0;

  // Charge the cost of reading `len` bytes at `offset` without materialising
  // them (benchmark read paths). Default: loop through a staging buffer.
  virtual Status pread_discard(std::uint64_t len, std::uint64_t offset);

  virtual Result<FileStat> stat() = 0;
  virtual Status truncate(std::uint64_t size) = 0;
  virtual Status sync() = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Create (or truncate) a file for read/write access.
  virtual Result<std::unique_ptr<File>> create(const std::string& path) = 0;
  // Open an existing file read-only.
  virtual Result<std::unique_ptr<File>> open_read(const std::string& path) = 0;
  // Open an existing file read/write (no truncation).
  virtual Result<std::unique_ptr<File>> open_rw(const std::string& path) = 0;

  virtual Status mkdir(const std::string& path) = 0;
  virtual Status remove(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> list_dir(const std::string& path) = 0;
  virtual Result<FileStat> stat_path(const std::string& path) = 0;
  [[nodiscard]] virtual bool exists(const std::string& path) = 0;

  // File-system block size for files under `path` — the value SIONlib aligns
  // chunks to (the paper determines it via fstat()).
  virtual Result<std::uint64_t> block_size(const std::string& path) = 0;
};

}  // namespace sion::fs
