#include "fs/filesystem.h"

#include <algorithm>
#include <vector>

namespace sion::fs {

Status File::pread_discard(std::uint64_t len, std::uint64_t offset) {
  if (len == 0) return Status::Ok();
  // Heap staging: fibers run on small stacks.
  std::vector<std::byte> staging(std::min<std::uint64_t>(256 * 1024, len));
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t n = std::min<std::uint64_t>(staging.size(), len - done);
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t got,
        pread(std::span<std::byte>(staging.data(), n), offset + done));
    if (got == 0) break;
    done += got;
  }
  return Status::Ok();
}

}  // namespace sion::fs
