// Fault-scenario layer for the SimFs machine models: deterministic,
// scriptable hardware-failure injection for the robustness batteries and
// benchmarks (the "as many scenarios as you can imagine" axis of the
// roadmap).
//
// A `FaultPlan` is a seeded list of rules. Arming a plan on a SimFs applies
// the destructive rules immediately (files lost, silently truncated, or
// silently bit-flipped — the crash and bit-rot artifacts a restart finds
// on disk) and keeps the operational
// rules live until disarmed (open/read/write errors and degraded bandwidth,
// the failures a restart *hits* while running). Every probabilistic draw
// comes from the plan's seed, so a scenario replays identically across
// runs, presets and hosts — tests and benches can script "lose failure
// domain 2, then every read of its replica fails with p=0.5" and assert
// exact outcomes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sion::fs {

// One injection rule. Rules select files by a '*'-wildcard path glob
// (matched against normalized paths) or, for the data-path kinds, by OST
// index — a per-OST rule hits every file whose stripe set includes that
// OST, modelling the loss or brown-out of one storage target.
struct FaultSpec {
  enum class Kind : std::uint8_t {
    kLost,        // matching files vanish from the namespace at arm time
    kTruncate,    // matching files silently truncated to truncate_to at arm
    kBitFlip,     // seeded in-place byte corruption at arm time (silent)
    kOpenError,   // create/open of matching paths fails (per-op probability)
    kReadError,   // reads of matching files fail (per-op probability)
    kWriteError,  // writes of matching files fail (per-op probability)
    kDegrade,     // matching files' transfers run at bandwidth_factor speed
  };
  Kind kind = Kind::kOpenError;
  std::string path_glob = "*";  // '*' matches any run of characters
  int ost = -1;  // >= 0: match by OST instead of path (data-path kinds only)
  double probability = 1.0;        // per-operation for the error kinds;
                                   // per-file at arm for the destructive ones
  std::uint64_t truncate_to = 0;   // kTruncate: new file size
  double bandwidth_factor = 1.0;   // kDegrade: fraction of healthy speed
  std::uint64_t flip_bytes = 1;    // kBitFlip: corrupted bytes per file
};

// A deterministic failure scenario: rules plus the seed behind every
// probabilistic decision. The fluent builders keep test scenarios readable.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  FaultPlan& lose(std::string glob, double p = 1.0) {
    faults.push_back({FaultSpec::Kind::kLost, std::move(glob), -1, p, 0, 1.0});
    return *this;
  }
  FaultPlan& truncate(std::string glob, std::uint64_t to, double p = 1.0) {
    faults.push_back(
        {FaultSpec::Kind::kTruncate, std::move(glob), -1, p, to, 1.0});
    return *this;
  }
  // Silent corruption: `nbytes` seeded in-place byte flips per matching
  // file at arm time — the bit-rot artifact only checksums (or parity
  // probes) can catch, as opposed to the loss/truncation kinds above.
  FaultPlan& bit_flip(std::string glob, std::uint64_t nbytes = 1,
                      double p = 1.0) {
    FaultSpec spec{FaultSpec::Kind::kBitFlip, std::move(glob), -1, p, 0, 1.0};
    spec.flip_bytes = nbytes;
    faults.push_back(std::move(spec));
    return *this;
  }
  FaultPlan& open_error(std::string glob, double p = 1.0) {
    faults.push_back(
        {FaultSpec::Kind::kOpenError, std::move(glob), -1, p, 0, 1.0});
    return *this;
  }
  FaultPlan& read_error(std::string glob, double p = 1.0) {
    faults.push_back(
        {FaultSpec::Kind::kReadError, std::move(glob), -1, p, 0, 1.0});
    return *this;
  }
  FaultPlan& write_error(std::string glob, double p = 1.0) {
    faults.push_back(
        {FaultSpec::Kind::kWriteError, std::move(glob), -1, p, 0, 1.0});
    return *this;
  }
  FaultPlan& degrade(std::string glob, double factor) {
    faults.push_back(
        {FaultSpec::Kind::kDegrade, std::move(glob), -1, 1.0, 0, factor});
    return *this;
  }
  FaultPlan& degrade_ost(int ost_index, double factor) {
    faults.push_back(
        {FaultSpec::Kind::kDegrade, "*", ost_index, 1.0, 0, factor});
    return *this;
  }
  FaultPlan& read_error_ost(int ost_index, double p = 1.0) {
    faults.push_back(
        {FaultSpec::Kind::kReadError, "*", ost_index, p, 0, 1.0});
    return *this;
  }
};

// What an armed plan has injected so far (assertable from tests).
struct FaultCounters {
  std::uint64_t files_lost = 0;
  std::uint64_t files_truncated = 0;
  std::uint64_t files_corrupted = 0;  // kBitFlip: files hit
  std::uint64_t bytes_flipped = 0;    // kBitFlip: bytes corrupted
  std::uint64_t open_errors = 0;
  std::uint64_t read_errors = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t degraded_ops = 0;
};

// '*'-wildcard match ('*' = any run of characters, including empty; no
// other metacharacters). Classic two-pointer scan with backtracking.
bool glob_match(std::string_view glob, std::string_view path);

}  // namespace sion::fs
