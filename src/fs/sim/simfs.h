// SimFs: a discrete-event parallel-file-system simulator.
//
// SimFs implements the `fs::FileSystem` interface with an in-memory sparse
// namespace *and* a virtual-time cost model. When called from inside a
// `par::Engine` task, every operation charges its completion time to the
// calling task's virtual clock; called serially (command-line tools), time
// accrues on an internal clock readable via `now()`.
//
// Modelled contention points (see machine.h for calibration):
//   * metadata: directory-block lock (GPFS) or dedicated MDS (Lustre)
//     serialises creates and first opens; re-opens of a hot inode are cheap;
//   * data: per-OST bandwidth with per-file striping (factor/depth,
//     overridable per directory like `lfs setstripe`), optional per-inode
//     bandwidth cap (GPFS token/write-behind), global ingest cap, and the
//     task's own injection link;
//   * locks: optional fs-block-granular write tokens that ping-pong between
//     tasks whose byte ranges share a block (GPFS false sharing, Table 1);
//   * cache: optional per-task write-back cache making re-reads faster than
//     the file system (Lustre, Fig. 5(b)).
//
// Files are sparse: bytes never written read back as zeros and do not count
// against allocation or quota, matching the behaviour the paper relies on
// for the gaps between SIONlib chunk blocks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "fs/filesystem.h"
#include "fs/sim/extent_map.h"
#include "fs/sim/machine.h"
#include "fs/sim/resource.h"

namespace sion::fs {

class SimFs final : public FileSystem {
 public:
  explicit SimFs(SimConfig config);
  ~SimFs() override;

  // FileSystem interface ----------------------------------------------------
  Result<std::unique_ptr<File>> create(const std::string& path) override;
  Result<std::unique_ptr<File>> open_read(const std::string& path) override;
  Result<std::unique_ptr<File>> open_rw(const std::string& path) override;
  Status mkdir(const std::string& path) override;
  Status remove(const std::string& path) override;
  Result<std::vector<std::string>> list_dir(const std::string& path) override;
  Result<FileStat> stat_path(const std::string& path) override;
  bool exists(const std::string& path) override;
  Result<std::uint64_t> block_size(const std::string& path) override;

  // Simulator controls --------------------------------------------------------
  [[nodiscard]] const SimConfig& config() const { return config_; }

  // Per-directory striping override (Lustre `lfs setstripe` analog); applies
  // to files created in `dir` afterwards. stripe_factor is clamped to the
  // number of OSTs.
  void set_dir_stripe(const std::string& dir, int stripe_factor,
                      std::uint64_t stripe_depth);

  // Virtual time of the serial clock (tools); inside a task, time lives on
  // the task's clock instead.
  [[nodiscard]] double now_serial() const { return serial_clock_; }

  // Forget all client-side state: inode hotness (cached-open fast path) and
  // per-task warm cache contents. Equivalent to starting a fresh job on the
  // machine; benchmarks call this between measurement phases so an "open
  // existing files" phase is not accidentally warm from the create phase.
  void drop_caches();

  struct Counters {
    std::uint64_t creates = 0;
    std::uint64_t opens = 0;
    std::uint64_t cached_opens = 0;
    std::uint64_t client_token_opens = 0;  // hot opens by a new client task
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t lock_transfers = 0;
    std::uint64_t read_revokes = 0;
    std::uint64_t cache_hit_bytes = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }

  // Total physically allocated bytes across all files (sparse-aware).
  [[nodiscard]] std::uint64_t allocated_bytes() const;

 private:
  friend class SimFile;

  struct BlockLock {
    int owner = -1;      // task rank holding the write token; -1 = none
    double avail = 0.0;  // serialisation point for transfers on this block
  };

  struct Inode {
    ExtentMap extents;
    std::uint64_t size = 0;
    std::uint64_t id = 0;
    int stripe_factor = 1;
    std::uint64_t stripe_depth = 1;
    int ost_first = 0;  // first OST of this file's round-robin placement
    bool ever_opened = false;
    std::set<int> client_ranks;  // tasks holding client-side tokens
    std::unique_ptr<Resource> file_link;  // per-file bandwidth cap (optional)
    std::unordered_map<std::uint64_t, BlockLock> block_locks;
    int open_handles = 0;
    bool unlinked = false;
  };

  struct DirState {
    Resource meta{1};  // directory-block lock (GPFS mode)
    std::set<std::string> entries;
    int stripe_factor = 0;             // 0 = use config default
    std::uint64_t stripe_depth = 0;
  };

  struct CacheKey {
    std::uint64_t inode_id;
    int task;
    bool operator<(const CacheKey& o) const {
      return std::tie(inode_id, task) < std::tie(o.inode_id, o.task);
    }
  };

  // --- virtual-time plumbing ------------------------------------------------
  [[nodiscard]] double now() const;
  void advance(double t);
  [[nodiscard]] int caller_rank() const;  // -1 when serial

  // Charge a namespace operation (create/open/stat) against the right
  // serialization point for the configured metadata mode.
  double charge_meta(DirState& dir, double service);

  // Service time for opening an already-hot inode by the calling task; with
  // client_open_service > 0 a task's first open of the inode pays the
  // client-token acquisition, later re-opens only cached_open_service.
  double hot_open_service(Inode& inode);

  // --- data path -------------------------------------------------------------
  Result<std::uint64_t> do_write(Inode& inode, DataView data,
                                 std::uint64_t offset);
  Result<std::uint64_t> do_read(Inode& inode, std::span<std::byte> out,
                                std::uint64_t offset);
  Status do_read_timing(Inode& inode, std::uint64_t len, std::uint64_t offset);
  double charge_transfer(Inode& inode, std::uint64_t offset, std::uint64_t len,
                         std::uint64_t remote_len, double arrival);
  double charge_block_locks(Inode& inode, std::uint64_t offset,
                            std::uint64_t len, bool is_write, double arrival);

  Result<DirState*> parent_dir(const std::string& path);

  Resource& ion_for(int task);

  SimConfig config_;
  std::map<std::string, std::shared_ptr<Inode>> files_;
  std::map<std::string, DirState> dirs_;
  Resource mds_;
  std::vector<Resource> osts_;
  std::map<int, Resource> ions_;  // I/O-forwarding nodes, created on use
  Resource global_link_;
  std::map<CacheKey, std::uint64_t> warm_bytes_;
  int next_ost_ = 0;  // round-robin placement cursor
  std::uint64_t next_inode_id_ = 1;
  std::uint64_t allocated_total_ = 0;
  double serial_clock_ = 0.0;
  Counters counters_;
};

}  // namespace sion::fs
