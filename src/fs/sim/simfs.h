// SimFs: a discrete-event parallel-file-system simulator.
//
// SimFs implements the `fs::FileSystem` interface with an in-memory sparse
// namespace *and* a virtual-time cost model. When called from inside a
// `par::Engine` task, every operation charges its completion time to the
// calling task's virtual clock; called serially (command-line tools), time
// accrues on an internal clock readable via `now()`.
//
// Modelled contention points (see machine.h for calibration):
//   * metadata: directory-block lock (GPFS) or dedicated MDS (Lustre)
//     serialises creates and first opens; re-opens of a hot inode are cheap;
//   * data: per-OST bandwidth with per-file striping (factor/depth,
//     overridable per directory like `lfs setstripe`), optional per-inode
//     bandwidth cap (GPFS token/write-behind), global ingest cap, and the
//     task's own injection link;
//   * locks: optional fs-block-granular write tokens that ping-pong between
//     tasks whose byte ranges share a block (GPFS false sharing, Table 1);
//   * cache: optional per-task write-back cache making re-reads faster than
//     the file system (Lustre, Fig. 5(b)).
//
// Files are sparse: bytes never written read back as zeros and do not count
// against allocation or quota, matching the behaviour the paper relies on
// for the gaps between SIONlib chunk blocks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "fs/filesystem.h"
#include "fs/sim/extent_map.h"
#include "fs/sim/fault.h"
#include "fs/sim/machine.h"
#include "fs/sim/resource.h"

namespace sion::fs {

class SimFs final : public FileSystem {
 public:
  explicit SimFs(SimConfig config);
  ~SimFs() override;

  // FileSystem interface ----------------------------------------------------
  Result<std::unique_ptr<File>> create(const std::string& path) override;
  Result<std::unique_ptr<File>> open_read(const std::string& path) override;
  Result<std::unique_ptr<File>> open_rw(const std::string& path) override;
  Status mkdir(const std::string& path) override;
  Status remove(const std::string& path) override;
  Result<std::vector<std::string>> list_dir(const std::string& path) override;
  Result<FileStat> stat_path(const std::string& path) override;
  bool exists(const std::string& path) override;
  Result<std::uint64_t> block_size(const std::string& path) override;

  // Simulator controls --------------------------------------------------------
  [[nodiscard]] const SimConfig& config() const { return config_; }

  // Per-directory striping override (Lustre `lfs setstripe` analog); applies
  // to files created in `dir` afterwards. stripe_factor is clamped to the
  // number of OSTs.
  void set_dir_stripe(const std::string& dir, int stripe_factor,
                      std::uint64_t stripe_depth);

  // Virtual time of the serial clock (tools); inside a task, time lives on
  // the task's clock instead.
  [[nodiscard]] double now_serial() const { return serial_clock_; }

  // Forget all client-side state: inode hotness (cached-open fast path) and
  // per-task warm cache contents. Equivalent to starting a fresh job on the
  // machine; benchmarks call this between measurement phases so an "open
  // existing files" phase is not accidentally warm from the create phase.
  void drop_caches();

  struct Counters {
    std::uint64_t creates = 0;
    std::uint64_t opens = 0;
    std::uint64_t cached_opens = 0;
    std::uint64_t client_token_opens = 0;  // hot opens by a new client task
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t lock_transfers = 0;
    std::uint64_t read_revokes = 0;
    std::uint64_t cache_hit_bytes = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }

  // Total physically allocated bytes across all files (sparse-aware).
  [[nodiscard]] std::uint64_t allocated_bytes() const;

  // ---- fault injection ------------------------------------------------------
  // Arm a failure scenario (see fs/sim/fault.h). Destructive rules (kLost,
  // kTruncate, kBitFlip) are applied immediately — lost files are removed
  // from the namespace like an unlink, truncations and byte flips are
  // silent (no trailing metadata survives, no error on read) — and the
  // operational rules stay live until disarm_faults().
  // Matching files are visited in sorted path order and every probabilistic
  // decision draws from the plan's seed, so a scenario is deterministic.
  // Arming replaces any previously armed plan.
  void arm_faults(const FaultPlan& plan);

  // Back to a healthy machine: operational rules stop firing. Files already
  // lost or truncated stay that way (the damage was done to "disk").
  void disarm_faults();

  [[nodiscard]] bool faults_armed() const { return faults_armed_; }
  [[nodiscard]] const FaultCounters& fault_counters() const {
    return fault_counters_;
  }

  // ---- zero-charge transfers ------------------------------------------------
  // Scope for cross-tier copies whose virtual-time cost is modelled
  // elsewhere (the ext::Staging background drain): inside the scope,
  // operations on the wrapped file system move bytes and mutate the
  // namespace exactly as usual — fault rules, quota, and counters included —
  // but charge no virtual time and book no resource capacity (OSTs, links,
  // locks, metadata serialisation points), and leave the per-task warm
  // cache untouched: the copy agent is the machine, not a compute client.
  // No-op for non-Sim file systems. Scopes nest (a depth counter): under
  // the fiber engine every rank of a collective zero-charge section holds
  // its own scope, and the ranks enter and leave at different points of the
  // cooperative schedule. A section must end with a collective (barrier,
  // agree, share) before any task resumes *charged* I/O on the same
  // SimFs, so no task's application I/O runs while another still holds a
  // scope.
  class ScopedFreeIo {
   public:
    explicit ScopedFreeIo(FileSystem& fs);
    ~ScopedFreeIo();
    ScopedFreeIo(const ScopedFreeIo&) = delete;
    ScopedFreeIo& operator=(const ScopedFreeIo&) = delete;

   private:
    SimFs* fs_ = nullptr;
  };

 private:
  friend class SimFile;

  struct BlockLock {
    int owner = -1;      // task rank holding the write token; -1 = none
    double avail = 0.0;  // serialisation point for transfers on this block
  };

  // Which tasks hold a client-side token on an inode: a base-offset bitmap,
  // because at 64Ki ranks a node-based set costs an allocation and a tree
  // walk on every hot open. The base offset keeps the task-local-file case
  // (one rank per inode, 64Ki inodes) at exactly one word instead of
  // rank/64 zeroed words per inode. Index 0 is the serial (rank -1) caller.
  class ClientSet {
   public:
    // Returns true when `rank` was newly inserted.
    bool insert(int rank) {
      const auto idx = static_cast<std::size_t>(rank + 1);
      const std::size_t word = idx / 64;
      const std::uint64_t bit = 1ULL << (idx % 64);
      if (bits_.empty()) {
        base_ = word;
        bits_.push_back(bit);
        return true;
      }
      if (word < base_) {
        bits_.insert(bits_.begin(), base_ - word, 0);
        base_ = word;
      } else if (word - base_ >= bits_.size()) {
        bits_.resize(word - base_ + 1, 0);
      }
      std::uint64_t& w = bits_[word - base_];
      if ((w & bit) != 0) return false;
      w |= bit;
      return true;
    }
    void clear() {
      bits_.clear();
      base_ = 0;
    }

   private:
    std::size_t base_ = 0;
    std::vector<std::uint64_t> bits_;
  };

  // Per-inode distillation of the armed plan's data-path rules (first
  // matching rule of each kind wins; OST rules fold in when the rule's OST
  // intersects the file's stripe set). Recomputed when a plan is armed and
  // when a file is created under an armed plan, so the read/write hot path
  // only consults two doubles behind a has_faults flag.
  struct InodeFaults {
    double read_error_p = 0.0;
    double write_error_p = 0.0;
    double bandwidth_factor = 1.0;
  };

  struct Inode {
    ExtentMap extents;
    std::uint64_t size = 0;
    std::uint64_t id = 0;
    int stripe_factor = 1;
    std::uint64_t stripe_depth = 1;
    int ost_first = 0;  // first OST of this file's round-robin placement
    bool ever_opened = false;
    ClientSet client_ranks;  // tasks holding client-side tokens
    std::unique_ptr<Resource> file_link;  // per-file bandwidth cap (optional)
    std::unordered_map<std::uint64_t, BlockLock> block_locks;
    int open_handles = 0;
    bool unlinked = false;
    bool has_faults = false;
    InodeFaults faults;
  };

  struct DirState {
    Resource meta{1};  // directory-block lock (GPFS mode)
    std::set<std::string> entries;
    int stripe_factor = 0;             // 0 = use config default
    std::uint64_t stripe_depth = 0;
  };

  // (inode, task) key of the per-task warm cache, packed into one word for
  // the unordered map on the read/write charge path. Task ranks fit 18 bits;
  // the bound is enforced in simfs.cpp at both call sites so an oversized
  // rank aborts instead of silently aliasing another inode's entry.
  static constexpr int kMaxCacheRank = (1 << 18) - 2;
  static std::uint64_t cache_key(std::uint64_t inode_id, int task) {
    return (inode_id << 18) | static_cast<std::uint64_t>(task + 1);
  }

  // Heterogeneous-lookup string maps: namespace operations resolve
  // string_view keys without materialising std::string temporaries.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  template <typename T>
  using PathMap = std::unordered_map<std::string, T, StringHash,
                                     std::equal_to<>>;

  // --- virtual-time plumbing ------------------------------------------------
  [[nodiscard]] double now() const;
  void advance(double t);
  [[nodiscard]] int caller_rank() const;  // -1 when serial

  // Fixed-latency service cost, zero inside a ScopedFreeIo scope.
  [[nodiscard]] double service(double t) const { return free_io_ ? 0.0 : t; }

  // Charge a namespace operation (create/open/stat) against the right
  // serialization point for the configured metadata mode.
  double charge_meta(DirState& dir, double service);

  // Service time for opening an already-hot inode by the calling task; with
  // client_open_service > 0 a task's first open of the inode pays the
  // client-token acquisition, later re-opens only cached_open_service.
  double hot_open_service(Inode& inode);

  // --- data path -------------------------------------------------------------
  Result<std::uint64_t> do_write(Inode& inode, DataView data,
                                 std::uint64_t offset);
  Result<std::uint64_t> do_read(Inode& inode, std::span<std::byte> out,
                                std::uint64_t offset);
  Status do_read_timing(Inode& inode, std::uint64_t len, std::uint64_t offset);
  double charge_transfer(Inode& inode, std::uint64_t offset, std::uint64_t len,
                         std::uint64_t remote_len, double arrival);
  double charge_block_locks(Inode& inode, std::uint64_t offset,
                            std::uint64_t len, bool is_write, double arrival);

  Result<DirState*> parent_dir(const std::string& path);

  Resource& ion_for(int task);

  // --- fault plumbing -------------------------------------------------------
  // True when the armed plan rejects this open/create (counts the injection).
  bool open_faulted(const std::string& path);
  // Distil the armed plan's data-path rules for one file.
  void bind_faults(Inode& inode, const std::string& path);
  // Apply kLost/kTruncate and (re)bind every live inode.
  void apply_destructive_faults();

  SimConfig config_;
  PathMap<std::shared_ptr<Inode>> files_;
  PathMap<DirState> dirs_;  // node-based: DirState* stay valid across inserts
  Resource mds_;
  std::vector<Resource> osts_;
  std::map<int, Resource> ions_;  // I/O-forwarding nodes, created on use
  Resource global_link_;
  std::unordered_map<std::uint64_t, std::uint64_t> warm_bytes_;
  // One-entry memo for the parent-directory lookup: bulk create/open storms
  // hit one directory, and the map probe + parent() allocation per call is
  // pure overhead there. Invalidated when a directory is removed.
  std::string cached_parent_path_;
  DirState* cached_parent_ = nullptr;
  std::vector<double> per_ost_scratch_;  // charge_transfer working set
  int next_ost_ = 0;  // round-robin placement cursor
  std::uint64_t next_inode_id_ = 1;
  std::uint64_t allocated_total_ = 0;
  double serial_clock_ = 0.0;
  Counters counters_;

  int free_io_ = 0;  // ScopedFreeIo depth (one scope per fiber inside)
  bool faults_armed_ = false;
  FaultPlan fault_plan_;
  Rng fault_rng_;
  FaultCounters fault_counters_;
};

}  // namespace sion::fs
