// Sparse file contents for SimFs.
//
// Files are a set of non-overlapping extents; bytes not covered by any
// extent read back as zero ("holes", never physically allocated — matching
// the paper's observation that the gaps SIONlib leaves between chunk blocks
// "exist only on the logical level" on real parallel file systems).
//
// An extent is either real bytes or a *fill* (one byte repeated), which is
// how terabyte-scale benchmark payloads are stored in O(1) memory.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "fs/filesystem.h"

namespace sion::fs {

class ExtentMap {
 public:
  struct Extent {
    std::uint64_t length = 0;
    bool is_fill = false;
    std::byte fill{0};
    std::vector<std::byte> data;  // used when !is_fill

    [[nodiscard]] std::byte at(std::uint64_t i) const {
      return is_fill ? fill : data[i];
    }
  };

  void write(std::uint64_t offset, DataView data);

  // Copy [offset, offset+out.size()) into `out`; holes become zero bytes.
  void read(std::uint64_t offset, std::span<std::byte> out) const;

  // Bytes physically allocated (sum of extent lengths); O(1), maintained
  // incrementally so SimFs can enforce quotas cheaply.
  [[nodiscard]] std::uint64_t allocated_bytes() const { return allocated_; }

  // Allocated bytes within [offset, offset+len).
  [[nodiscard]] std::uint64_t allocated_in_range(std::uint64_t offset,
                                                 std::uint64_t len) const;

  // True if any byte of [offset, offset+len) is backed by an extent.
  [[nodiscard]] bool any_allocated(std::uint64_t offset,
                                   std::uint64_t len) const;

  [[nodiscard]] const std::map<std::uint64_t, Extent>& extents() const {
    return map_;
  }

  // Drop all extents at or beyond `size`, trimming one that straddles it.
  void truncate(std::uint64_t size);

  void clear() {
    map_.clear();
    allocated_ = 0;
  }

 private:
  // Remove extent coverage of [offset, offset+len), splitting partials.
  void carve(std::uint64_t offset, std::uint64_t len);
  // Merge `it` with its left/right neighbours when they are contiguous
  // compatible fills (or small adjacent data runs).
  void coalesce(std::map<std::uint64_t, Extent>::iterator it);

  std::map<std::uint64_t, Extent> map_;  // key = extent start offset
  std::uint64_t allocated_ = 0;
};

}  // namespace sion::fs
