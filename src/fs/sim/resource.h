// Virtual-time queueing resources for the parallel-file-system simulator.
//
// A `Resource` models a k-server FCFS station: a request arriving at virtual
// time `now` with service demand `service` seconds begins when the earliest
// server frees up and completes `service` seconds later. Because the task
// engine always runs the logical task with the smallest virtual clock,
// requests arrive in non-decreasing time order and this simple max-based
// update is an exact FCFS simulation.
//
// Everything the paper's evaluation hinges on is expressed with these
// stations: the directory i-node block whose lock serialises file creation
// (k=1), a Lustre metadata server, object storage targets (one station per
// OST, service = bytes / bandwidth), the per-file token bottleneck of GPFS,
// and the global ingest limit of the file server complex.
#pragma once

#include <cstdint>
#include <vector>

namespace sion::fs {

class Resource {
 public:
  explicit Resource(int servers = 1, double bytes_per_second = 0.0);

  // Earliest completion of a request with explicit service time.
  double acquire(double now, double service);

  // Convenience for bandwidth-type resources: service = bytes / rate.
  double acquire_bytes(double now, std::uint64_t bytes);

  [[nodiscard]] int servers() const { return static_cast<int>(avail_.size()); }
  [[nodiscard]] double bytes_per_second() const { return bytes_per_second_; }

  // Total busy time accumulated (utilisation accounting for reports).
  [[nodiscard]] double busy_time() const { return busy_time_; }

  // Completion time of the last request admitted so far.
  [[nodiscard]] double horizon() const;

 private:
  std::vector<double> avail_;  // per-server next-free time
  double bytes_per_second_;
  double busy_time_ = 0.0;
};

}  // namespace sion::fs
