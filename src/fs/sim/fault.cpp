#include "fs/sim/fault.h"

namespace sion::fs {

bool glob_match(std::string_view glob, std::string_view path) {
  std::size_t g = 0;
  std::size_t p = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_p = 0;
  while (p < path.size()) {
    if (g < glob.size() && glob[g] == '*') {
      star = g++;
      star_p = p;
    } else if (g < glob.size() && glob[g] == path[p]) {
      ++g;
      ++p;
    } else if (star != std::string_view::npos) {
      // Backtrack: let the last '*' swallow one more character.
      g = star + 1;
      p = ++star_p;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

}  // namespace sion::fs
