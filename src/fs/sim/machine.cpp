#include "fs/sim/machine.h"

#include <algorithm>

#include "common/units.h"

namespace sion::fs {

SimConfig JugeneConfig() {
  SimConfig c;
  c.name = "jugene";

  // GPFS: no dedicated MDS; creates serialize on the directory block lock.
  // Calibration: paper section 1/4.1 — creating 64 Ki files takes >5 min
  // (~360 s => ~5.5 ms per create), opening 64 Ki existing files ~60 s
  // (~0.9 ms each), and a SIONlib open by 64 Ki tasks of one shared file
  // costs <3 s (~0.03 ms per cached open).
  c.meta_mode = SimConfig::MetaMode::kDistributedDirLock;
  c.meta_servers = 1;
  c.create_service = 5.5e-3;
  c.open_service = 0.9e-3;
  c.cached_open_service = 0.03e-3;
  c.stat_service = 0.1e-3;
  c.close_latency = 0.1e-3;

  // Scratch GPFS: 2 MiB blocks, 6 GB/s peak (paper section 4). GPFS stripes
  // every file across all disks, so per-OST limits never bind; the observed
  // single-file limit (~2.3 GB/s in Fig. 4(a)) is modelled as a per-inode
  // token/write-behind cap.
  c.fs_block_size = 2 * kMiB;
  c.num_osts = 32;
  c.ost_bandwidth = 1.0e9;  // 32 GB/s raw; the global cap binds first
  c.per_file_bandwidth = 2.35e9;
  c.global_bandwidth = 6.0e9;
  // A single BG/P compute-node process pushes POSIX I/O through CIOD
  // function shipping at only tens of MB/s — the reason MP2C's designated
  // I/O task was such a bottleneck (Fig. 6).
  c.client_bandwidth = 30.0e6;
  c.full_block_allocation = true;
  // 152 I/O nodes for 64 Ki cores; each forwards ~1 GB/s into GPFS. Small
  // jobs engage proportionally few of them.
  c.tasks_per_ion = 432;
  c.ion_bandwidth = 1.0e9;
  c.default_stripe_factor = 32;  // GPFS: all servers
  c.default_stripe_depth = 2 * kMiB;
  c.io_op_latency = 0.3e-3;

  // Write locks at fs-block granularity (Table 1 shows 2.53x write and
  // 1.78x read degradation when chunks share blocks).
  c.block_granular_locks = true;
  c.lock_transfer_time = 1.0e-3;
  c.read_revoke_time = 0.55e-3;
  c.steal_flush_blocks = 0.18;
  c.revoke_flush_blocks = 0.028;

  // Compute-node memory is too small for meaningful client caching on BG/P.
  c.cache_bytes_per_task = 0;

  // BG/P collective network: ~5 us latency, ~375 MB/s per link.
  c.network.alpha = 5.0e-6;
  c.network.byte_time = 1.0 / 375.0e6;
  return c;
}

SimConfig JaguarConfig() {
  SimConfig c;
  c.name = "jaguar";

  // Lustre: dedicated MDS. Calibration: paper Fig. 3(b) — creating 12 Ki
  // files ~300 s (~25 ms each at the MDS), opening existing ~20 s (~1.7 ms
  // each); SIONlib create <10 s (cached re-opens ~0.4 ms each).
  c.meta_mode = SimConfig::MetaMode::kDedicatedMds;
  c.meta_servers = 1;
  c.create_service = 25.0e-3;
  c.open_service = 1.7e-3;
  c.cached_open_service = 0.4e-3;
  c.stat_service = 0.2e-3;
  c.close_latency = 0.2e-3;

  // 72 OSTs at ~0.55 GB/s each gives the 40 GB/s aggregate the paper
  // quotes; stripe factor 4 with 1 MiB depth is the documented default, the
  // "optimized" setting in Fig. 4(b) is 64 OSTs with 8 MiB depth.
  c.fs_block_size = 2 * kMiB;  // matches "detected block size of 2 MB" (4.2.3)
  c.num_osts = 72;
  c.ost_bandwidth = 0.555e9;
  c.per_file_bandwidth = 0.0;   // per-file limits emerge from striping
  c.global_bandwidth = 44.0e9;  // headroom above sum of OSTs
  c.client_bandwidth = 1.2e9;   // SeaStar2 injection
  c.default_stripe_factor = 4;
  c.default_stripe_depth = 1 * kMiB;
  c.io_op_latency = 0.2e-3;

  // Extent locks per OST object: the paper could not confirm block-sharing
  // penalties on Jaguar (section 4.2.2).
  c.block_granular_locks = false;

  // Re-reads of freshly written data are partially served from the client
  // page cache, explaining reads above 40 GB/s in Fig. 5(b). Only a bounded
  // residue per task stays resident (Lustre writes through and recycles
  // pages), so the uplift is modest, as in the paper.
  c.cache_bytes_per_task = 32 * kMiB;
  c.cache_bandwidth = 2.2e9;

  c.network.alpha = 7.0e-6;
  c.network.byte_time = 1.0 / 1.2e9;
  return c;
}

SimConfig BurstBufferTierConfig(const SimConfig& machine, int ntasks) {
  const SimConfig::BurstBuffer& bb = machine.burst_buffer;
  const int tpn = std::max(1, bb.tasks_per_node);
  const int nnodes = (std::max(1, ntasks) + tpn - 1) / tpn;

  SimConfig c;
  c.name = machine.name + "-bb";

  // A node-local mount serves no shared namespace: creates and opens cost a
  // local syscall, not a directory-block lock or MDS round trip.
  c.meta_mode = SimConfig::MetaMode::kDedicatedMds;
  c.meta_servers = nnodes;
  c.create_service = 1.0e-5;
  c.open_service = 1.0e-5;
  c.cached_open_service = 1.0e-6;
  c.stat_service = 1.0e-6;
  c.close_latency = 1.0e-6;

  // Staged multifiles are drained to the parallel tier byte-for-byte, so
  // they must already be laid out for ITS block size.
  c.fs_block_size = machine.fs_block_size;

  // Absorb path: the I/O-forwarding stage is the node-local device — every
  // group of tasks_per_node ranks shares node_bandwidth regardless of which
  // staged physical file their bytes land in. The single "OST" carries the
  // aggregate so file placement never mis-attributes node locality.
  c.num_osts = 1;
  c.ost_bandwidth = bb.node_bandwidth * nnodes;
  c.per_file_bandwidth = 0.0;
  c.global_bandwidth = 0.0;
  c.client_bandwidth = 0.0;  // no network NIC between a task and its node
  c.tasks_per_ion = tpn;
  c.ion_bandwidth = bb.node_bandwidth;
  c.default_stripe_factor = 1;
  c.default_stripe_depth = machine.fs_block_size;
  c.io_op_latency = bb.write_latency;

  c.full_block_allocation = false;
  c.block_granular_locks = false;
  c.cache_bytes_per_task = 0;

  c.quota_bytes = bb.node_capacity == 0
                      ? 0
                      : bb.node_capacity * static_cast<std::uint64_t>(nnodes);
  c.network = machine.network;
  return c;
}

SimConfig TestbedConfig() {
  SimConfig c;
  c.name = "testbed";
  c.meta_mode = SimConfig::MetaMode::kDistributedDirLock;
  c.meta_servers = 1;
  c.create_service = 1.0e-3;
  c.open_service = 0.5e-3;
  c.cached_open_service = 0.01e-3;
  c.stat_service = 0.1e-3;
  c.close_latency = 0.05e-3;
  c.fs_block_size = 64 * kKiB;
  c.num_osts = 4;
  c.ost_bandwidth = 250.0e6;
  c.per_file_bandwidth = 0.0;
  c.global_bandwidth = 1.0e9;
  c.client_bandwidth = 500.0e6;
  c.default_stripe_factor = 2;
  c.default_stripe_depth = 64 * kKiB;
  c.io_op_latency = 0.1e-3;
  c.block_granular_locks = true;
  c.lock_transfer_time = 1.0e-3;
  c.read_revoke_time = 0.5e-3;
  return c;
}

}  // namespace sion::fs
