#include "fs/sim/extent_map.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace sion::fs {

namespace {
// Data extents adjacent after writes are merged up to this size to keep the
// map compact without unbounded memcpy on every append.
constexpr std::uint64_t kDataMergeLimit = 4 * 1024 * 1024;
}  // namespace

void ExtentMap::carve(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t end =
      len > ~0ULL - offset ? ~0ULL : offset + len;  // saturating

  // Find the first extent that could overlap: the one before `offset`.
  auto it = map_.lower_bound(offset);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > offset) it = prev;
  }

  while (it != map_.end() && it->first < end) {
    const std::uint64_t ext_start = it->first;
    Extent& ext = it->second;
    const std::uint64_t ext_end = ext_start + ext.length;
    allocated_ -= std::min(ext_end, end) - std::max(ext_start, offset);

    if (ext_start < offset) {
      // Keep the head [ext_start, offset); re-insert a tail if it pokes out
      // past `end`.
      Extent tail;
      const bool has_tail = ext_end > end;
      if (has_tail) {
        tail.length = ext_end - end;
        tail.is_fill = ext.is_fill;
        tail.fill = ext.fill;
        if (!ext.is_fill) {
          tail.data.assign(ext.data.begin() +
                               static_cast<std::ptrdiff_t>(end - ext_start),
                           ext.data.end());
        }
      }
      ext.length = offset - ext_start;
      if (!ext.is_fill) {
        ext.data.resize(ext.length);
      }
      ++it;
      if (has_tail) it = map_.emplace_hint(it, end, std::move(tail));
    } else if (ext_end <= end) {
      // Fully covered: drop it.
      it = map_.erase(it);
    } else {
      // Overlaps the end: keep the tail only.
      Extent tail;
      tail.length = ext_end - end;
      tail.is_fill = ext.is_fill;
      tail.fill = ext.fill;
      if (!ext.is_fill) {
        tail.data.assign(ext.data.begin() +
                             static_cast<std::ptrdiff_t>(end - ext_start),
                         ext.data.end());
      }
      it = map_.erase(it);
      it = map_.emplace_hint(it, end, std::move(tail));
    }
  }
}

void ExtentMap::coalesce(std::map<std::uint64_t, Extent>::iterator it) {
  // Try to merge with the left neighbour.
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length == it->first) {
      Extent& a = prev->second;
      Extent& b = it->second;
      const bool both_fill = a.is_fill && b.is_fill && a.fill == b.fill;
      const bool both_data = !a.is_fill && !b.is_fill &&
                             a.length + b.length <= kDataMergeLimit;
      if (both_fill || both_data) {
        if (both_data) {
          a.data.insert(a.data.end(), b.data.begin(), b.data.end());
        }
        a.length += b.length;
        map_.erase(it);
        it = prev;
      }
    }
  }
  // Try to merge with the right neighbour.
  auto next = std::next(it);
  if (next != map_.end() &&
      it->first + it->second.length == next->first) {
    Extent& a = it->second;
    Extent& b = next->second;
    const bool both_fill = a.is_fill && b.is_fill && a.fill == b.fill;
    const bool both_data = !a.is_fill && !b.is_fill &&
                           a.length + b.length <= kDataMergeLimit;
    if (both_fill || both_data) {
      if (both_data) {
        a.data.insert(a.data.end(), b.data.begin(), b.data.end());
      }
      a.length += b.length;
      map_.erase(next);
    }
  }
}

namespace {
// Overlapping-compare trick: a buffer equals its one-shifted self iff every
// byte is the same. Lets constant payloads (synthetic benchmark data) be
// stored as O(1) fill extents even when handed over as real byte spans.
bool is_uniform(std::span<const std::byte> bytes) {
  return bytes.size() >= 2 &&
         std::memcmp(bytes.data(), bytes.data() + 1, bytes.size() - 1) == 0;
}
}  // namespace

void ExtentMap::write(std::uint64_t offset, DataView data) {
  if (data.size() == 0) return;
  if (data.is_gather()) {
    // Parts are single-mode by the DataView contract, so this recurses at
    // most one level; coalesce() re-merges compatible neighbours.
    std::uint64_t pos = 0;
    for (const DataView& part : data.parts()) {
      write(offset + pos, part);
      pos += part.size();
    }
    return;
  }
  carve(offset, data.size());
  Extent ext;
  ext.length = data.size();
  if (data.is_fill()) {
    ext.is_fill = true;
    ext.fill = data.fill_byte();
  } else if (data.size() == 1 || is_uniform(data.bytes())) {
    ext.is_fill = true;
    ext.fill = data.bytes()[0];
  } else {
    ext.data.assign(data.bytes().begin(), data.bytes().end());
  }
  auto it = map_.emplace(offset, std::move(ext)).first;
  allocated_ += data.size();
  coalesce(it);
}

void ExtentMap::read(std::uint64_t offset, std::span<std::byte> out) const {
  std::memset(out.data(), 0, out.size());
  if (out.empty()) return;
  const std::uint64_t end = offset + out.size();

  auto it = map_.lower_bound(offset);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > offset) it = prev;
  }
  for (; it != map_.end() && it->first < end; ++it) {
    const std::uint64_t ext_start = it->first;
    const Extent& ext = it->second;
    const std::uint64_t lo = std::max(offset, ext_start);
    const std::uint64_t hi = std::min(end, ext_start + ext.length);
    if (lo >= hi) continue;
    std::byte* dst = out.data() + (lo - offset);
    if (ext.is_fill) {
      std::memset(dst, std::to_integer<int>(ext.fill), hi - lo);
    } else {
      std::memcpy(dst, ext.data.data() + (lo - ext_start), hi - lo);
    }
  }
}

std::uint64_t ExtentMap::allocated_in_range(std::uint64_t offset,
                                            std::uint64_t len) const {
  if (len == 0) return 0;
  const std::uint64_t end = offset + len;
  std::uint64_t total = 0;
  auto it = map_.lower_bound(offset);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > offset) it = prev;
  }
  for (; it != map_.end() && it->first < end; ++it) {
    const std::uint64_t lo = std::max(offset, it->first);
    const std::uint64_t hi = std::min(end, it->first + it->second.length);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

bool ExtentMap::any_allocated(std::uint64_t offset, std::uint64_t len) const {
  if (len == 0) return false;
  const std::uint64_t end = offset + len;
  auto it = map_.lower_bound(offset);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > offset) return true;
  }
  return it != map_.end() && it->first < end;
}

void ExtentMap::truncate(std::uint64_t size) {
  carve(size, ~0ULL - size);
}

}  // namespace sion::fs
