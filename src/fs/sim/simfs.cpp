#include "fs/sim/simfs.h"

#include <algorithm>

#include "common/log.h"
#include "common/strings.h"
#include "fs/path.h"
#include "par/engine.h"

namespace sion::fs {

namespace {
constexpr int kNoOwner = -2;  // block write token held by nobody
constexpr double kListEntryService = 1.0e-6;
}  // namespace

// ---------------------------------------------------------------------------
// SimFile
// ---------------------------------------------------------------------------

class SimFile final : public File {
 public:
  SimFile(SimFs* fs, std::shared_ptr<SimFs::Inode> inode, bool writable)
      : fs_(fs), inode_(std::move(inode)), writable_(writable) {
    ++inode_->open_handles;
  }

  // Every entry point (and the handle-dropping destructor) opens a
  // par::FsOrderGate: simulator state is shared across engine shards, and
  // the gate serializes operations in global (vtime, rank) order — see the
  // "Threading model" comment in par/engine.h. The constructor needs no
  // gate of its own; it only runs inside an already-gated create/open.
  ~SimFile() override {
    par::FsOrderGate gate;
    --inode_->open_handles;
    fs_->advance(fs_->now() + fs_->service(fs_->config_.close_latency));
  }

  Result<std::uint64_t> pwrite(DataView data, std::uint64_t offset) override {
    par::FsOrderGate gate;
    if (!writable_) return PermissionDenied("file opened read-only");
    return fs_->do_write(*inode_, data, offset);
  }

  Result<std::uint64_t> pread(std::span<std::byte> out,
                              std::uint64_t offset) override {
    par::FsOrderGate gate;
    return fs_->do_read(*inode_, out, offset);
  }

  Status pread_discard(std::uint64_t len, std::uint64_t offset) override {
    par::FsOrderGate gate;
    return fs_->do_read_timing(*inode_, len, offset);
  }

  Result<FileStat> stat() override {
    par::FsOrderGate gate;
    fs_->advance(fs_->now() + fs_->service(fs_->config_.stat_service));
    FileStat st;
    st.size = inode_->size;
    st.allocated = inode_->extents.allocated_bytes();
    st.block_size = fs_->config_.fs_block_size;
    return st;
  }

  Status truncate(std::uint64_t size) override {
    par::FsOrderGate gate;
    if (!writable_) return PermissionDenied("file opened read-only");
    inode_->extents.truncate(size);
    inode_->size = size;
    fs_->advance(fs_->now() + fs_->service(fs_->config_.stat_service));
    return Status::Ok();
  }

  Status sync() override {
    par::FsOrderGate gate;
    fs_->advance(fs_->now() + fs_->service(fs_->config_.io_op_latency));
    return Status::Ok();
  }

 private:
  SimFs* fs_;
  std::shared_ptr<SimFs::Inode> inode_;
  bool writable_;
};

// ---------------------------------------------------------------------------
// SimFs
// ---------------------------------------------------------------------------

SimFs::SimFs(SimConfig config)
    : config_(std::move(config)),
      mds_(config_.meta_servers),
      global_link_(1, config_.global_bandwidth) {
  osts_.reserve(static_cast<std::size_t>(config_.num_osts));
  for (int i = 0; i < config_.num_osts; ++i) {
    osts_.emplace_back(1, config_.ost_bandwidth);
  }
  dirs_["."];  // implicit working directory
  dirs_["/"];
}

SimFs::~SimFs() = default;

double SimFs::now() const {
  const par::TaskState* task = par::this_task();
  return task != nullptr ? task->now() : serial_clock_;
}

void SimFs::advance(double t) {
  par::TaskState* task = par::this_task();
  if (task != nullptr) {
    task->advance_to(t);
  } else if (t > serial_clock_) {
    serial_clock_ = t;
  }
}

int SimFs::caller_rank() const {
  const par::TaskState* task = par::this_task();
  return task != nullptr ? task->rank() : -1;
}

double SimFs::charge_meta(DirState& dir, double service) {
  if (free_io_) return now();  // drain agent: no serialisation point booked
  if (config_.meta_mode == SimConfig::MetaMode::kDedicatedMds) {
    return mds_.acquire(now(), service);
  }
  return dir.meta.acquire(now(), service);
}

double SimFs::hot_open_service(Inode& inode) {
  if (free_io_) return 0.0;  // no client token traffic for the drain agent
  if (config_.client_open_service <= 0.0) {
    ++counters_.cached_opens;
    return config_.cached_open_service;
  }
  if (inode.client_ranks.insert(caller_rank())) {
    ++counters_.client_token_opens;
    return config_.cached_open_service + config_.client_open_service;
  }
  ++counters_.cached_opens;
  return config_.cached_open_service;
}

Result<SimFs::DirState*> SimFs::parent_dir(const std::string& path) {
  // `path` is already normalized by every caller, so the parent is a plain
  // prefix view — no re-normalization, no allocation.
  const std::string_view dir = parent_view(path);
  if (cached_parent_ != nullptr && dir == cached_parent_path_) {
    return cached_parent_;
  }
  const auto it = dirs_.find(dir);
  if (it == dirs_.end()) {
    return NotFound(strformat("directory '%.*s' does not exist",
                              static_cast<int>(dir.size()), dir.data()));
  }
  cached_parent_path_ = dir;
  cached_parent_ = &it->second;
  return cached_parent_;
}

Result<std::unique_ptr<File>> SimFs::create(const std::string& raw_path) {
  par::FsOrderGate gate;
  std::string norm;
  const std::string& path = normalize_into(raw_path, norm);
  if (dirs_.count(path) != 0) {
    return InvalidArgument(strformat("'%s' is a directory", path.c_str()));
  }
  if (faults_armed_ && open_faulted(path)) {
    return IoError(strformat("injected fault: create of '%s' failed",
                             path.c_str()));
  }
  SION_ASSIGN_OR_RETURN(DirState * dir, parent_dir(path));

  // Inserting a new directory entry serialises on the directory block
  // (GPFS) or the MDS (Lustre) — the effect behind Fig. 3.
  advance(charge_meta(*dir, config_.create_service));
  ++counters_.creates;

  auto inode = std::make_shared<Inode>();
  inode->stripe_factor =
      std::min(dir->stripe_factor != 0 ? dir->stripe_factor
                                       : config_.default_stripe_factor,
               config_.num_osts);
  inode->stripe_depth = dir->stripe_depth != 0 ? dir->stripe_depth
                                               : config_.default_stripe_depth;
  inode->ost_first = next_ost_;
  next_ost_ = (next_ost_ + inode->stripe_factor) % config_.num_osts;
  if (config_.per_file_bandwidth > 0.0) {
    inode->file_link =
        std::make_unique<Resource>(1, config_.per_file_bandwidth);
  }
  inode->ever_opened = true;
  inode->client_ranks.insert(caller_rank());
  inode->id = next_inode_id_++;

  if (faults_armed_) bind_faults(*inode, path);

  // create-over-existing replaces the inode; old handles keep the old data
  // (POSIX unlink-like behaviour). The replaced file's allocation returns
  // to the quota pool — staged-slot reuse depends on this.
  if (const auto existing = files_.find(path); existing != files_.end()) {
    existing->second->unlinked = true;
    allocated_total_ -= existing->second->extents.allocated_bytes();
  }
  files_[path] = inode;
  dir->entries.insert(basename(path));
  return std::unique_ptr<File>(
      std::make_unique<SimFile>(this, std::move(inode), /*writable=*/true));
}

Result<std::unique_ptr<File>> SimFs::open_read(const std::string& raw_path) {
  par::FsOrderGate gate;
  std::string norm;
  const std::string& path = normalize_into(raw_path, norm);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFound(strformat("'%s' does not exist", path.c_str()));
  }
  if (faults_armed_ && open_faulted(path)) {
    return IoError(strformat("injected fault: open of '%s' failed",
                             path.c_str()));
  }
  SION_ASSIGN_OR_RETURN(DirState * dir, parent_dir(path));
  std::shared_ptr<Inode> inode = it->second;
  if (inode->ever_opened) {
    // Lookup of a hot inode: metadata/tokens are already cached near the
    // clients, which is what makes N tasks opening ONE shared multifile far
    // cheaper than N tasks opening N distinct files.
    advance(charge_meta(*dir, hot_open_service(*inode)));
  } else {
    advance(charge_meta(*dir, config_.open_service));
    ++counters_.opens;
    inode->client_ranks.insert(caller_rank());
  }
  inode->ever_opened = true;
  return std::unique_ptr<File>(
      std::make_unique<SimFile>(this, std::move(inode), /*writable=*/false));
}

Result<std::unique_ptr<File>> SimFs::open_rw(const std::string& raw_path) {
  par::FsOrderGate gate;
  std::string norm;
  const std::string& path = normalize_into(raw_path, norm);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFound(strformat("'%s' does not exist", path.c_str()));
  }
  if (faults_armed_ && open_faulted(path)) {
    return IoError(strformat("injected fault: open of '%s' failed",
                             path.c_str()));
  }
  SION_ASSIGN_OR_RETURN(DirState * dir, parent_dir(path));
  std::shared_ptr<Inode> inode = it->second;
  if (inode->ever_opened) {
    advance(charge_meta(*dir, hot_open_service(*inode)));
  } else {
    advance(charge_meta(*dir, config_.open_service));
    ++counters_.opens;
    inode->client_ranks.insert(caller_rank());
  }
  inode->ever_opened = true;
  return std::unique_ptr<File>(
      std::make_unique<SimFile>(this, std::move(inode), /*writable=*/true));
}

Status SimFs::mkdir(const std::string& raw_path) {
  par::FsOrderGate gate;
  const std::string path = normalize(raw_path);
  if (dirs_.count(path) != 0 || files_.count(path) != 0) {
    return AlreadyExists(strformat("'%s' already exists", path.c_str()));
  }
  SION_ASSIGN_OR_RETURN(DirState * dir, parent_dir(path));
  advance(charge_meta(*dir, config_.create_service));
  dir->entries.insert(basename(path));
  dirs_[path];
  return Status::Ok();
}

Status SimFs::remove(const std::string& raw_path) {
  par::FsOrderGate gate;
  const std::string path = normalize(raw_path);
  SION_ASSIGN_OR_RETURN(DirState * dir, parent_dir(path));
  const auto fit = files_.find(path);
  if (fit != files_.end()) {
    advance(charge_meta(*dir, config_.create_service));
    fit->second->unlinked = true;
    allocated_total_ -= fit->second->extents.allocated_bytes();
    files_.erase(fit);
    dir->entries.erase(basename(path));
    return Status::Ok();
  }
  const auto dit = dirs_.find(path);
  if (dit != dirs_.end()) {
    if (!dit->second.entries.empty()) {
      return FailedPrecondition(
          strformat("directory '%s' not empty", path.c_str()));
    }
    advance(charge_meta(*dir, config_.create_service));
    if (cached_parent_ == &dit->second) {
      cached_parent_ = nullptr;
      cached_parent_path_.clear();
    }
    dirs_.erase(dit);
    dir->entries.erase(basename(path));
    return Status::Ok();
  }
  return NotFound(strformat("'%s' does not exist", path.c_str()));
}

Result<std::vector<std::string>> SimFs::list_dir(const std::string& raw_path) {
  par::FsOrderGate gate;
  const std::string path = normalize(raw_path);
  const auto it = dirs_.find(path);
  if (it == dirs_.end()) {
    return NotFound(strformat("directory '%s' does not exist", path.c_str()));
  }
  advance(charge_meta(it->second,
                      config_.stat_service +
                          kListEntryService *
                              static_cast<double>(it->second.entries.size())));
  return std::vector<std::string>(it->second.entries.begin(),
                                  it->second.entries.end());
}

Result<FileStat> SimFs::stat_path(const std::string& raw_path) {
  par::FsOrderGate gate;
  const std::string path = normalize(raw_path);
  const auto fit = files_.find(path);
  if (fit != files_.end()) {
    advance(now() + config_.stat_service);
    FileStat st;
    st.size = fit->second->size;
    st.allocated = fit->second->extents.allocated_bytes();
    st.block_size = config_.fs_block_size;
    return st;
  }
  if (dirs_.count(path) != 0) {
    advance(now() + config_.stat_service);
    FileStat st;
    st.block_size = config_.fs_block_size;
    return st;
  }
  return NotFound(strformat("'%s' does not exist", path.c_str()));
}

bool SimFs::exists(const std::string& raw_path) {
  par::FsOrderGate gate;
  std::string norm;
  const std::string& path = normalize_into(raw_path, norm);
  return files_.count(path) != 0 || dirs_.count(path) != 0;
}

Result<std::uint64_t> SimFs::block_size(const std::string&) {
  par::FsOrderGate gate;
  advance(now() + config_.stat_service);
  return config_.fs_block_size;
}

void SimFs::set_dir_stripe(const std::string& raw_dir, int stripe_factor,
                           std::uint64_t stripe_depth) {
  par::FsOrderGate gate;
  const std::string dir = normalize(raw_dir);
  auto& state = dirs_[dir];
  state.stripe_factor = std::min(stripe_factor, config_.num_osts);
  state.stripe_depth = stripe_depth;
}

std::uint64_t SimFs::allocated_bytes() const {
  par::FsOrderGate gate;
  return allocated_total_;
}

void SimFs::drop_caches() {
  par::FsOrderGate gate;
  // Order-independent per-inode state reset; nothing observable leaks.
  // sion-lint: allow(unordered-iteration)
  for (auto& [path, inode] : files_) {
    inode->ever_opened = false;
    inode->block_locks.clear();
    inode->client_ranks.clear();
  }
  warm_bytes_.clear();
}

// ---------------------------------------------------------------------------
// data path
// ---------------------------------------------------------------------------

double SimFs::charge_block_locks(Inode& inode, std::uint64_t offset,
                                 std::uint64_t len, bool is_write,
                                 double arrival) {
  if (free_io_ || !config_.block_granular_locks || len == 0) return arrival;
  const std::uint64_t blk = config_.fs_block_size;
  const int me = caller_rank();
  double end = arrival;
  const std::uint64_t first = offset / blk;
  const std::uint64_t last = (offset + len - 1) / blk;
  for (std::uint64_t b = first; b <= last; ++b) {
    auto [it, inserted] = inode.block_locks.try_emplace(b);
    BlockLock& lock = it->second;
    if (inserted) lock.owner = kNoOwner;
    if (is_write) {
      if (lock.owner != me) {
        if (lock.owner != kNoOwner) {
          // Stealing the write token of a dirty block forces the current
          // holder to flush it and the stealer to read-modify-write the
          // partial block: extra traffic through the disk path per transfer
          // (GPFS false sharing, Table 1).
          double t = std::max(arrival, lock.avail) + config_.lock_transfer_time;
          const auto flush = static_cast<std::uint64_t>(
              config_.steal_flush_blocks * static_cast<double>(blk));
          if (flush > 0) t = charge_transfer(inode, b * blk, blk, flush, t);
          lock.avail = t;
          end = std::max(end, t);
          ++counters_.lock_transfers;
        }
        lock.owner = me;
      }
    } else {
      if (lock.owner != kNoOwner && lock.owner != me) {
        // Reading a block whose write token another task holds forces the
        // holder to flush it (extra traffic through the disk path).
        double t = std::max(arrival, lock.avail) + config_.read_revoke_time;
        const auto flush = static_cast<std::uint64_t>(
            config_.revoke_flush_blocks * static_cast<double>(blk));
        if (flush > 0) t = charge_transfer(inode, b * blk, blk, flush, t);
        lock.avail = t;
        lock.owner = kNoOwner;
        end = std::max(end, t);
        ++counters_.read_revokes;
      }
    }
  }
  return end;
}

Resource& SimFs::ion_for(int task) {
  const int ion = task < 0 ? 0 : task / config_.tasks_per_ion;
  auto it = ions_.find(ion);
  if (it == ions_.end()) {
    it = ions_.emplace(ion, Resource(1, config_.ion_bandwidth)).first;
  }
  return it->second;
}

double SimFs::charge_transfer(Inode& inode, std::uint64_t offset,
                              std::uint64_t len, std::uint64_t remote_len,
                              double arrival) {
  double end = arrival;
  if (free_io_ || remote_len == 0 || len == 0) return end;

  if (config_.client_bandwidth > 0.0) {
    end = std::max(end, arrival + static_cast<double>(remote_len) /
                                      config_.client_bandwidth);
  }
  if (config_.tasks_per_ion > 0 && config_.ion_bandwidth > 0.0) {
    end = std::max(end,
                   ion_for(caller_rank()).acquire_bytes(arrival, remote_len));
  }
  if (inode.file_link) {
    end = std::max(end, inode.file_link->acquire_bytes(arrival, remote_len));
  }
  if (config_.global_bandwidth > 0.0) {
    end = std::max(end, global_link_.acquire_bytes(arrival, remote_len));
  }

  // Distribute the range over this file's stripe set. The per-OST tally is
  // a reused member scratch array — this sits on the per-write charge path.
  const int factor = std::max(1, inode.stripe_factor);
  const std::uint64_t depth = std::max<std::uint64_t>(1, inode.stripe_depth);
  const double scale =
      static_cast<double>(remote_len) / static_cast<double>(len);
  std::vector<double>& per_ost = per_ost_scratch_;
  per_ost.assign(static_cast<std::size_t>(factor), 0.0);
  const std::uint64_t first_unit = offset / depth;
  const std::uint64_t last_unit = (offset + len - 1) / depth;
  const std::uint64_t nunits = last_unit - first_unit + 1;
  if (nunits <= 4ULL * static_cast<std::uint64_t>(factor)) {
    // Exact split for small unit counts.
    for (std::uint64_t u = first_unit; u <= last_unit; ++u) {
      const std::uint64_t lo = std::max(offset, u * depth);
      const std::uint64_t hi = std::min(offset + len, (u + 1) * depth);
      per_ost[static_cast<std::size_t>(u % static_cast<std::uint64_t>(factor))] +=
          static_cast<double>(hi - lo);
    }
  } else {
    // Large ranges cover the stripe set many times over: even split.
    for (auto& v : per_ost) {
      v = static_cast<double>(len) / static_cast<double>(factor);
    }
  }
  for (int i = 0; i < factor; ++i) {
    const double bytes = per_ost[static_cast<std::size_t>(i)] * scale;
    if (bytes <= 0.0) continue;
    const int ost = (inode.ost_first + i) % config_.num_osts;
    Resource& r = osts_[static_cast<std::size_t>(ost)];
    end = std::max(end,
                   r.acquire(arrival, bytes / config_.ost_bandwidth));
  }
  return end;
}

Result<std::uint64_t> SimFs::do_write(Inode& inode, DataView data,
                                      std::uint64_t offset) {
  const std::uint64_t len = data.size();
  if (len == 0) return 0;

  if (faults_armed_ && inode.has_faults && inode.faults.write_error_p > 0.0 &&
      fault_rng_.next_double() < inode.faults.write_error_p) {
    ++fault_counters_.write_errors;
    return IoError("injected fault: write failed");
  }

  if (config_.quota_bytes != 0) {
    const std::uint64_t newly =
        len - inode.extents.allocated_in_range(offset, len);
    if (allocated_total_ + newly > config_.quota_bytes) {
      return QuotaExceeded(
          strformat("write of %llu bytes exceeds quota of %llu",
                    static_cast<unsigned long long>(len),
                    static_cast<unsigned long long>(config_.quota_bytes)));
    }
  }

  // Freshly allocated blocks are written back whole (GPFS-style): small
  // writes into new blocks move at least one full block of data.
  std::uint64_t write_out = len;
  if (config_.full_block_allocation) {
    const std::uint64_t blk = config_.fs_block_size;
    const std::uint64_t first = offset / blk;
    const std::uint64_t last = (offset + len - 1) / blk;
    std::uint64_t fresh = 0;
    for (std::uint64_t b = first; b <= last; ++b) {
      if (!inode.extents.any_allocated(b * blk, blk)) ++fresh;
    }
    write_out = std::max(write_out, fresh * blk);
  }

  const double t_arrive = now();
  const double t0 = t_arrive + service(config_.io_op_latency);
  const double t1 = charge_block_locks(inode, offset, len, /*is_write=*/true, t0);
  double t2 = charge_transfer(inode, offset, len, write_out, t1);
  if (!free_io_ && faults_armed_ && inode.has_faults &&
      inode.faults.bandwidth_factor < 1.0) {
    // Degraded path: the whole operation runs at a fraction of healthy
    // speed (a browned-out OST or a failing controller in the stripe set).
    t2 = t_arrive + (t2 - t_arrive) / inode.faults.bandwidth_factor;
    ++fault_counters_.degraded_ops;
  }

  const std::uint64_t before = inode.extents.allocated_bytes();
  inode.extents.write(offset, data);
  allocated_total_ += inode.extents.allocated_bytes() - before;
  inode.size = std::max(inode.size, offset + len);

  if (!free_io_ && config_.cache_bytes_per_task != 0) {
    const int rank = caller_rank();
    SION_CHECK(rank <= kMaxCacheRank) << "task rank overflows warm-cache key";
    auto& warm = warm_bytes_[cache_key(inode.id, rank)];
    warm = std::min(warm + len, config_.cache_bytes_per_task);
  }

  ++counters_.writes;
  counters_.bytes_written += len;
  advance(t2);
  return len;
}

// ---------------------------------------------------------------------------
// fault injection
// ---------------------------------------------------------------------------

void SimFs::arm_faults(const FaultPlan& plan) {
  par::FsOrderGate gate;
  fault_plan_ = plan;
  fault_rng_ = Rng(plan.seed);
  faults_armed_ = true;
  apply_destructive_faults();
  // bind_faults is pure per-inode (no draws, no output): visit order is
  // unobservable. The destructive pass above sorts before drawing.
  // sion-lint: allow(unordered-iteration)
  for (auto& [path, inode] : files_) bind_faults(*inode, path);
}

void SimFs::disarm_faults() {
  par::FsOrderGate gate;
  faults_armed_ = false;
  fault_plan_ = FaultPlan{};
  // Order-independent per-inode state reset; nothing observable leaks.
  // sion-lint: allow(unordered-iteration)
  for (auto& [path, inode] : files_) {
    inode->has_faults = false;
    inode->faults = InodeFaults{};
  }
}

void SimFs::apply_destructive_faults() {
  // Sorted path order per rule so the seeded per-file draws are independent
  // of hash-map iteration order — a scenario damages the same files on
  // every run, host, and build preset.
  std::vector<std::string> paths;
  paths.reserve(files_.size());
  // Collect-then-sort: the sort two lines down is exactly what makes the
  // seeded per-file draws independent of hash order.
  // sion-lint: allow(unordered-iteration)
  for (const auto& [path, inode] : files_) paths.push_back(path);
  std::sort(paths.begin(), paths.end());
  for (const FaultSpec& rule : fault_plan_.faults) {
    if (rule.kind != FaultSpec::Kind::kLost &&
        rule.kind != FaultSpec::Kind::kTruncate &&
        rule.kind != FaultSpec::Kind::kBitFlip) {
      continue;
    }
    for (const std::string& path : paths) {
      const auto it = files_.find(path);
      if (it == files_.end()) continue;  // already lost to an earlier rule
      if (!glob_match(rule.path_glob, path)) continue;
      if (rule.probability < 1.0 &&
          fault_rng_.next_double() >= rule.probability) {
        continue;
      }
      std::shared_ptr<Inode> inode = it->second;
      if (rule.kind == FaultSpec::Kind::kLost) {
        // The file vanishes from the namespace as if the storage holding it
        // died; open handles keep the stale data (POSIX unlink semantics).
        inode->unlinked = true;
        files_.erase(it);
        const auto dit = dirs_.find(parent_view(path));
        if (dit != dirs_.end()) dit->second.entries.erase(basename(path));
        allocated_total_ -= inode->extents.allocated_bytes();
        ++fault_counters_.files_lost;
      } else if (rule.kind == FaultSpec::Kind::kBitFlip) {
        // Silent in-place corruption: seeded offsets, each byte XORed with
        // a nonzero mask — bit rot the namespace and the metadata cannot
        // reveal; only content checks (CRC frames, parity probes) can.
        if (inode->size == 0) continue;
        const std::uint64_t before = inode->extents.allocated_bytes();
        for (std::uint64_t i = 0; i < rule.flip_bytes; ++i) {
          const std::uint64_t at = fault_rng_.next_below(inode->size);
          const auto mask = static_cast<std::byte>(
              fault_rng_.next_range(1, 255));
          std::byte value{0};
          inode->extents.read(at, std::span<std::byte>(&value, 1));
          value ^= mask;
          inode->extents.write(
              at, DataView(std::span<const std::byte>(&value, 1)));
          ++fault_counters_.bytes_flipped;
        }
        // Flipping a byte inside a hole materialises a tiny extent.
        allocated_total_ += inode->extents.allocated_bytes() - before;
        ++fault_counters_.files_corrupted;
      } else {
        // Silent truncation: no error, no trace — exactly the artifact a
        // quota kill or a torn storage target leaves behind. Truncation
        // only ever shrinks; a target at or beyond the current size is a
        // no-op, never a sparse extension fabricating readable zeros.
        if (rule.truncate_to < inode->size) {
          const std::uint64_t before = inode->extents.allocated_bytes();
          inode->extents.truncate(rule.truncate_to);
          allocated_total_ -= before - inode->extents.allocated_bytes();
          inode->size = rule.truncate_to;
          ++fault_counters_.files_truncated;
        }
      }
    }
  }
}

void SimFs::bind_faults(Inode& inode, const std::string& path) {
  inode.faults = InodeFaults{};
  inode.has_faults = false;
  const auto applies = [&](const FaultSpec& rule) {
    if (rule.ost >= 0) {
      // OST rules hit every file whose stripe set includes that target.
      for (int i = 0; i < inode.stripe_factor; ++i) {
        if ((inode.ost_first + i) % config_.num_osts == rule.ost) return true;
      }
      return false;
    }
    return glob_match(rule.path_glob, path);
  };
  for (const FaultSpec& rule : fault_plan_.faults) {
    switch (rule.kind) {
      case FaultSpec::Kind::kReadError:
        if (inode.faults.read_error_p == 0.0 && applies(rule)) {
          inode.faults.read_error_p = rule.probability;
        }
        break;
      case FaultSpec::Kind::kWriteError:
        if (inode.faults.write_error_p == 0.0 && applies(rule)) {
          inode.faults.write_error_p = rule.probability;
        }
        break;
      case FaultSpec::Kind::kDegrade:
        if (inode.faults.bandwidth_factor == 1.0 && applies(rule) &&
            rule.bandwidth_factor > 0.0 && rule.bandwidth_factor < 1.0) {
          inode.faults.bandwidth_factor = rule.bandwidth_factor;
        }
        break;
      default:
        break;
    }
  }
  inode.has_faults = inode.faults.read_error_p > 0.0 ||
                     inode.faults.write_error_p > 0.0 ||
                     inode.faults.bandwidth_factor < 1.0;
}

bool SimFs::open_faulted(const std::string& path) {
  for (const FaultSpec& rule : fault_plan_.faults) {
    if (rule.kind != FaultSpec::Kind::kOpenError) continue;
    if (!glob_match(rule.path_glob, path)) continue;
    if (rule.probability >= 1.0 ||
        fault_rng_.next_double() < rule.probability) {
      ++fault_counters_.open_errors;
      return true;
    }
  }
  return false;
}

Result<std::uint64_t> SimFs::do_read(Inode& inode, std::span<std::byte> out,
                                     std::uint64_t offset) {
  const std::uint64_t got =
      offset >= inode.size
          ? 0
          : std::min<std::uint64_t>(out.size(), inode.size - offset);
  if (got > 0) {
    SION_RETURN_IF_ERROR(do_read_timing(inode, got, offset));
    inode.extents.read(offset, out.subspan(0, got));
  }
  return got;
}

Status SimFs::do_read_timing(Inode& inode, std::uint64_t len,
                             std::uint64_t offset) {
  if (len == 0) return Status::Ok();
  if (faults_armed_ && inode.has_faults && inode.faults.read_error_p > 0.0 &&
      fault_rng_.next_double() < inode.faults.read_error_p) {
    ++fault_counters_.read_errors;
    return IoError("injected fault: read failed");
  }
  const double t_arrive = now();
  const double t0 = t_arrive + service(config_.io_op_latency);
  const double t1 = charge_block_locks(inode, offset, len, /*is_write=*/false, t0);

  std::uint64_t cached = 0;
  if (!free_io_ && config_.cache_bytes_per_task != 0) {
    const int rank = caller_rank();
    SION_CHECK(rank <= kMaxCacheRank) << "task rank overflows warm-cache key";
    const auto it = warm_bytes_.find(cache_key(inode.id, rank));
    if (it != warm_bytes_.end()) cached = std::min(len, it->second);
  }
  double end = charge_transfer(inode, offset, len, len - cached, t1);
  if (cached > 0 && config_.cache_bandwidth > 0.0) {
    end = std::max(end, t1 + static_cast<double>(cached) /
                                 config_.cache_bandwidth);
    counters_.cache_hit_bytes += cached;
  }
  if (!free_io_ && faults_armed_ && inode.has_faults &&
      inode.faults.bandwidth_factor < 1.0) {
    end = t_arrive + (end - t_arrive) / inode.faults.bandwidth_factor;
    ++fault_counters_.degraded_ops;
  }

  ++counters_.reads;
  counters_.bytes_read += len;
  advance(end);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// zero-charge transfers
// ---------------------------------------------------------------------------

SimFs::ScopedFreeIo::ScopedFreeIo(FileSystem& fs)
    : fs_(dynamic_cast<SimFs*>(&fs)) {
  if (fs_ == nullptr) return;  // posix or other backend: nothing to bypass
  // Each depth-counter update is its own gated point operation — the scope
  // must NOT hold an order gate across its whole extent, since the gated
  // operations inside it need to interleave across tasks exactly as in the
  // sequential engine.
  par::FsOrderGate gate;
  ++fs_->free_io_;
}

SimFs::ScopedFreeIo::~ScopedFreeIo() {
  if (fs_ != nullptr) {
    par::FsOrderGate gate;
    SION_CHECK(fs_->free_io_ > 0) << "ScopedFreeIo depth underflow";
    --fs_->free_io_;
  }
}

}  // namespace sion::fs
