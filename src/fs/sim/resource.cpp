#include "fs/sim/resource.h"

#include <algorithm>

#include "common/log.h"

namespace sion::fs {

Resource::Resource(int servers, double bytes_per_second)
    : bytes_per_second_(bytes_per_second) {
  SION_CHECK(servers >= 1) << "a resource needs at least one server";
  avail_.assign(static_cast<std::size_t>(servers), 0.0);
}

double Resource::acquire(double now, double service) {
  auto it = std::min_element(avail_.begin(), avail_.end());
  const double start = std::max(now, *it);
  const double end = start + service;
  *it = end;
  busy_time_ += service;
  return end;
}

double Resource::acquire_bytes(double now, std::uint64_t bytes) {
  if (bytes_per_second_ <= 0.0) return now;  // unlimited
  return acquire(now, static_cast<double>(bytes) / bytes_per_second_);
}

double Resource::horizon() const {
  return *std::max_element(avail_.begin(), avail_.end());
}

}  // namespace sion::fs
