// Machine models: the calibration constants that turn SimFs into a
// GPFS-on-Jugene-like or Lustre-on-Jaguar-like parallel file system.
//
// Every constant is either taken directly from the paper's system
// descriptions (section 4: block sizes, OST counts, peak bandwidths) or
// back-derived from a measured endpoint the paper reports (e.g., "parallel
// creation of 64 K files can take more than five minutes" fixes the
// serialized per-create service time at ~5.5 ms). The *shape* of every
// reproduced curve is then emergent from the queueing model, not hard-coded.
#pragma once

#include <cstdint>
#include <string>

#include "par/engine.h"

namespace sion::fs {

struct SimConfig {
  std::string name = "testbed";

  // --- metadata path -----------------------------------------------------
  // GPFS has no central metadata server: creates serialize on the lock of
  // the file-system block holding the directory i-node (paper section 2).
  // Lustre funnels namespace operations through dedicated MDS nodes.
  enum class MetaMode { kDistributedDirLock, kDedicatedMds };
  MetaMode meta_mode = MetaMode::kDistributedDirLock;
  int meta_servers = 1;           // concurrency at the serialization point
  double create_service = 1.0e-3; // per file-create at that point
  double open_service = 0.5e-3;   // first open of an existing entry
  double cached_open_service = 1.0e-5;  // re-open of an already-opened inode
  // A hot inode still costs every *new* client task a token/attribute
  // acquisition before its re-opens become cheap: N tasks opening one shared
  // multifile queue N of these, whereas an aggregation layer that funnels
  // all I/O through collector ranks (ext::Collective) pays one per collector
  // only — the reduced metadata/open pressure of collective I/O. 0 keeps the
  // coarser model where any hot open costs cached_open_service.
  double client_open_service = 0.0;
  double stat_service = 1.0e-4;
  double close_latency = 5.0e-5;  // pure latency, not a queueing point

  // --- data path ----------------------------------------------------------
  std::uint64_t fs_block_size = 64 * 1024;
  int num_osts = 4;
  double ost_bandwidth = 250.0e6;      // bytes/s per OST
  double per_file_bandwidth = 0.0;     // GPFS per-inode token cap; 0 = off
  double global_bandwidth = 0.0;       // server-complex ingest cap; 0 = off
  double client_bandwidth = 1.0e9;     // per-task injection link
  // I/O forwarding stage (Blue Gene I/O nodes): tasks_per_ion consecutive
  // ranks share one forwarding node of ion_bandwidth bytes/s. 0 disables
  // the stage. This is why aggregate bandwidth *rises* with task count on
  // Jugene (Fig. 5(a)): small jobs engage few I/O nodes.
  int tasks_per_ion = 0;
  double ion_bandwidth = 0.0;
  int default_stripe_factor = 4;       // OSTs per file
  std::uint64_t default_stripe_depth = 1024 * 1024;
  double io_op_latency = 2.0e-4;       // fixed cost per read/write op

  // GPFS allocates and writes back freshly allocated blocks in full: a
  // 52-byte record into a new block still moves one fs block. This is why
  // the paper notes SIONlib "writes at least one file-system block per
  // task" and its advantage in Fig. 6 only materialises at larger sizes.
  bool full_block_allocation = false;

  // --- write-lock model ----------------------------------------------------
  // GPFS assigns write locks at file-system block granularity; two tasks
  // whose chunks share a block ping-pong the lock (paper section 3.1 /
  // Table 1). Lustre uses per-OST extent locks, so the effect is absent.
  bool block_granular_locks = false;
  double lock_transfer_time = 0.0;  // steal a block's write token
  double read_revoke_time = 0.0;    // downgrade another task's write token
  // Extra data moved per token transfer/revoke (flush of the dirty block
  // plus read-modify-write of the partial one), as a fraction of the fs
  // block size. The amplification knob behind Table 1.
  double steal_flush_blocks = 1.0;
  double revoke_flush_blocks = 1.0;

  // --- client-side cache ---------------------------------------------------
  // Lustre clients cache recently written data; re-reads can exceed the file
  // system's aggregate bandwidth (paper Fig. 5(b)).
  std::uint64_t cache_bytes_per_task = 0;
  double cache_bandwidth = 0.0;  // bytes/s per task for cached reads

  // --- limits ---------------------------------------------------------------
  std::uint64_t quota_bytes = 0;  // total allocated-byte quota; 0 = unlimited

  // --- node-local burst-buffer tier (ext::Staging) --------------------------
  // Optional fast tier in front of this parallel file system: groups of
  // tasks_per_node consecutive ranks share one node-local buffer that
  // absorbs checkpoints at node_bandwidth and drains them to the parallel
  // tier at drain_bandwidth per node while compute continues.
  // tasks_per_node == 0 disables the tier (the default on every factory
  // machine; scenarios opt in explicitly). The fast tier itself is modelled
  // as a second SimFs built by BurstBufferTierConfig() below, so fault
  // injection and counters work on it unchanged.
  struct BurstBuffer {
    int tasks_per_node = 0;
    std::uint64_t node_capacity = 0;  // bytes per node; 0 = unlimited
    double node_bandwidth = 0.0;      // absorb rate per node (bytes/s)
    double drain_bandwidth = 0.0;     // drain link per node (bytes/s)
    double write_latency = 2.0e-5;    // per-op latency on the fast tier
  };
  BurstBuffer burst_buffer;

  [[nodiscard]] bool has_burst_buffer() const {
    return burst_buffer.tasks_per_node > 0 &&
           burst_buffer.node_bandwidth > 0.0;
  }

  // --- interconnect (used to configure par::Engine) -------------------------
  par::NetworkModel network;
};

// Jugene: IBM Blue Gene/P, 64Ki cores, GPFS 3.2 scratch file system with
// 2 MiB blocks and ~6 GB/s peak (paper section 4, "Jugene").
SimConfig JugeneConfig();

// Jaguar: Cray XT4, Lustre 1.6 with 72 OSTs, ~40 GB/s aggregate, dedicated
// MDS, per-file/per-directory configurable striping (paper section 4,
// "Jaguar").
SimConfig JaguarConfig();

// Small round numbers for unit tests: timing assertions stay readable.
SimConfig TestbedConfig();

// Machine model of `machine`'s burst-buffer tier itself, for a job of
// `ntasks` ranks: one node-local device per burst-buffer node (the I/O
// forwarding stage caps each node at node_bandwidth), near-free metadata (a
// node-local mount serves no shared namespace), the parallel tier's fs
// block size (staged files are drained to it verbatim, so their alignment
// must already match), and an aggregate quota of node_capacity per node.
// Requires machine.has_burst_buffer().
SimConfig BurstBufferTierConfig(const SimConfig& machine, int ntasks);

}  // namespace sion::fs
