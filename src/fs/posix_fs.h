// Passthrough FileSystem backed by the host's POSIX file API. Used by the
// command-line utilities, examples, and functional tests; all sizes are real
// bytes on the local disk.
#pragma once

#include <cstdint>
#include <string>

#include "fs/filesystem.h"

namespace sion::fs {

class PosixFs final : public FileSystem {
 public:
  // `block_size_override` forces block_size() to a fixed value; 0 means use
  // the real st_blksize. Tests use the override to exercise SIONlib's
  // alignment logic with interesting block sizes on any host file system.
  explicit PosixFs(std::uint64_t block_size_override = 0)
      : block_size_override_(block_size_override) {}

  Result<std::unique_ptr<File>> create(const std::string& path) override;
  Result<std::unique_ptr<File>> open_read(const std::string& path) override;
  Result<std::unique_ptr<File>> open_rw(const std::string& path) override;

  Status mkdir(const std::string& path) override;
  Status remove(const std::string& path) override;
  Result<std::vector<std::string>> list_dir(const std::string& path) override;
  Result<FileStat> stat_path(const std::string& path) override;
  bool exists(const std::string& path) override;
  Result<std::uint64_t> block_size(const std::string& path) override;

 private:
  std::uint64_t block_size_override_;
};

}  // namespace sion::fs
