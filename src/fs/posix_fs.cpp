#include "fs/posix_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/strings.h"

namespace sion::fs {

namespace {

Status errno_status(const char* op, const std::string& path) {
  const int err = errno;
  const std::string msg = strformat("%s '%s': %s", op, path.c_str(),
                                    std::strerror(err));
  switch (err) {
    case ENOENT: return NotFound(msg);
    case EEXIST: return AlreadyExists(msg);
    case EACCES:
    case EPERM: return PermissionDenied(msg);
    case EDQUOT:
    case ENOSPC: return QuotaExceeded(msg);
    default: return IoError(msg);
  }
}

class PosixFile final : public File {
 public:
  PosixFile(int fd, std::string path, std::uint64_t blksize_override)
      : fd_(fd), path_(std::move(path)), blksize_override_(blksize_override) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<std::uint64_t> pwrite(DataView data, std::uint64_t offset) override {
    if (data.is_gather()) {
      std::uint64_t written = 0;
      for (const DataView& part : data.parts()) {
        SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                              pwrite(part, offset + written));
        written += n;
      }
      return written;
    }
    if (data.is_fill()) {
      // Expand the fill through a bounded heap staging buffer (fibers run on
      // small stacks, so no large stack arrays anywhere in the I/O path).
      std::vector<std::byte> staging(
          std::min<std::uint64_t>(256 * 1024, data.size()), data.fill_byte());
      std::uint64_t written = 0;
      while (written < data.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(staging.size(), data.size() - written);
        const ssize_t r = ::pwrite(fd_, staging.data(), n,
                                   static_cast<off_t>(offset + written));
        if (r < 0) return errno_status("pwrite", path_);
        written += static_cast<std::uint64_t>(r);
      }
      return written;
    }
    std::uint64_t written = 0;
    const auto bytes = data.bytes();
    while (written < bytes.size()) {
      const ssize_t r =
          ::pwrite(fd_, bytes.data() + written, bytes.size() - written,
                   static_cast<off_t>(offset + written));
      if (r < 0) return errno_status("pwrite", path_);
      written += static_cast<std::uint64_t>(r);
    }
    return written;
  }

  Result<std::uint64_t> pread(std::span<std::byte> out,
                              std::uint64_t offset) override {
    std::uint64_t got = 0;
    while (got < out.size()) {
      const ssize_t r = ::pread(fd_, out.data() + got, out.size() - got,
                                static_cast<off_t>(offset + got));
      if (r < 0) return errno_status("pread", path_);
      if (r == 0) break;  // EOF
      got += static_cast<std::uint64_t>(r);
    }
    return got;
  }

  Result<FileStat> stat() override {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) return errno_status("fstat", path_);
    FileStat out;
    out.size = static_cast<std::uint64_t>(st.st_size);
    out.allocated = static_cast<std::uint64_t>(st.st_blocks) * 512;
    out.block_size = blksize_override_ != 0
                         ? blksize_override_
                         : static_cast<std::uint64_t>(st.st_blksize);
    return out;
  }

  Status truncate(std::uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return errno_status("ftruncate", path_);
    }
    return Status::Ok();
  }

  Status sync() override {
    if (::fsync(fd_) != 0) return errno_status("fsync", path_);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
  std::uint64_t blksize_override_;
};

}  // namespace

Result<std::unique_ptr<File>> PosixFs::create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) return errno_status("create", path);
  return std::unique_ptr<File>(
      std::make_unique<PosixFile>(fd, path, block_size_override_));
}

Result<std::unique_ptr<File>> PosixFs::open_read(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_status("open_read", path);
  return std::unique_ptr<File>(
      std::make_unique<PosixFile>(fd, path, block_size_override_));
}

Result<std::unique_ptr<File>> PosixFs::open_rw(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return errno_status("open_rw", path);
  return std::unique_ptr<File>(
      std::make_unique<PosixFile>(fd, path, block_size_override_));
}

Status PosixFs::mkdir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0) return errno_status("mkdir", path);
  return Status::Ok();
}

Status PosixFs::remove(const std::string& path) {
  if (::remove(path.c_str()) != 0) return errno_status("remove", path);
  return Status::Ok();
}

Result<std::vector<std::string>> PosixFs::list_dir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return errno_status("opendir", path);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Result<FileStat> PosixFs::stat_path(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return errno_status("stat", path);
  FileStat out;
  out.size = static_cast<std::uint64_t>(st.st_size);
  out.allocated = static_cast<std::uint64_t>(st.st_blocks) * 512;
  out.block_size = block_size_override_ != 0
                       ? block_size_override_
                       : static_cast<std::uint64_t>(st.st_blksize);
  return out;
}

bool PosixFs::exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::uint64_t> PosixFs::block_size(const std::string& path) {
  if (block_size_override_ != 0) return block_size_override_;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return errno_status("stat", path);
  return static_cast<std::uint64_t>(st.st_blksize);
}

}  // namespace sion::fs
