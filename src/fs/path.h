// Minimal path normalisation shared by PosixFs and SimFs. Paths are plain
// '/'-separated strings; SimFs treats them as an abstract namespace.
#pragma once

#include <string>
#include <string_view>

namespace sion::fs {

// Collapse repeated separators, resolve '.', drop trailing '/'.
// "a//b/./c/" -> "a/b/c"; "/" -> "/"; "" -> ".".
std::string normalize(std::string_view path);

// Parent directory of a normalized path ("a/b/c" -> "a/b", "c" -> ".",
// "/x" -> "/").
std::string parent(std::string_view path);

// Final component ("a/b/c" -> "c").
std::string basename(std::string_view path);

// Join with exactly one separator.
std::string join(std::string_view dir, std::string_view name);

}  // namespace sion::fs
