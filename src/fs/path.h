// Minimal path normalisation shared by PosixFs and SimFs. Paths are plain
// '/'-separated strings; SimFs treats them as an abstract namespace.
#pragma once

#include <string>
#include <string_view>

namespace sion::fs {

// Collapse repeated separators, resolve '.', drop trailing '/'.
// "a//b/./c/" -> "a/b/c"; "/" -> "/"; "" -> ".".
std::string normalize(std::string_view path);

// True when normalize(path) == path. Lets callers that hold a std::string
// skip the copy in the (overwhelmingly common) already-normal case.
bool is_normalized(std::string_view path);

// Reference to the normal form of `path`: `path` itself when already
// normal, else `storage` filled with the normalized copy. The reference is
// valid as long as both arguments are.
inline const std::string& normalize_into(const std::string& path,
                                         std::string& storage) {
  if (is_normalized(path)) return path;
  storage = normalize(path);
  return storage;
}

// Parent directory of a normalized path ("a/b/c" -> "a/b", "c" -> ".",
// "/x" -> "/").
std::string parent(std::string_view path);

// Same as parent(), but `path` must ALREADY be normalized: returns a view
// into `path` (or a static "."/"/") without allocating. The single source
// of the parent convention — parent() and the SimFs hot path both use it.
std::string_view parent_view(std::string_view normalized_path);

// Final component ("a/b/c" -> "c").
std::string basename(std::string_view path);

// Join with exactly one separator.
std::string join(std::string_view dir, std::string_view name);

}  // namespace sion::fs
