#include "fs/path.h"

#include <vector>

namespace sion::fs {

// True when `path` is already in normal form (no empty or "." segments, no
// trailing slash): the overwhelmingly common case on the simulator's hot
// namespace path, worth skipping the segment-splitting pass for.
bool is_normalized(std::string_view path) {
  if (path.empty()) return false;
  if (path == "/") return true;
  // "." is its own normal form (normalize(".") == "."): without this case
  // the working-directory path would re-normalize on every namespace hit
  // and is_normalized would reject normalize()'s own output.
  if (path == ".") return true;
  if (path.back() == '/') return false;
  std::size_t seg_start = path.front() == '/' ? 1 : 0;
  for (std::size_t i = seg_start; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      const std::size_t seg_len = i - seg_start;
      if (seg_len == 0) return false;
      if (seg_len == 1 && path[seg_start] == '.') return false;
      seg_start = i + 1;
    }
  }
  return true;
}

std::string normalize(std::string_view path) {
  if (path.empty()) return ".";
  if (is_normalized(path)) return std::string(path);
  const bool absolute = path.front() == '/';
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) {
      const auto part = path.substr(i, j - i);
      if (part != ".") parts.push_back(part);
    }
    i = j;
  }
  std::string out = absolute ? "/" : "";
  for (std::size_t k = 0; k < parts.size(); ++k) {
    if (k != 0) out += '/';
    out += parts[k];
  }
  // Constructing the fallback (rather than assigning into `out`) sidesteps a
  // GCC 12 -Wrestrict false positive on string::operator=(const char*) after
  // the append loop above (GCC PR105329).
  if (!out.empty()) return out;
  return absolute ? std::string("/") : std::string(".");
}

std::string_view parent_view(std::string_view normalized_path) {
  const std::size_t slash = normalized_path.rfind('/');
  if (slash == std::string_view::npos) return ".";
  if (slash == 0) return "/";
  return normalized_path.substr(0, slash);
}

std::string parent(std::string_view path) {
  const std::string norm = normalize(path);
  return std::string(parent_view(norm));
}

std::string basename(std::string_view path) {
  const std::string norm = normalize(path);
  const std::size_t slash = norm.rfind('/');
  if (slash == std::string::npos) return norm;
  return norm.substr(slash + 1);
}

std::string join(std::string_view dir, std::string_view name) {
  if (dir.empty() || dir == ".") return normalize(name);
  std::string out(dir);
  if (out.back() != '/') out += '/';
  out += name;
  return normalize(out);
}

}  // namespace sion::fs
