#include "fs/path.h"

#include <vector>

namespace sion::fs {

std::string normalize(std::string_view path) {
  if (path.empty()) return ".";
  const bool absolute = path.front() == '/';
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) {
      const auto part = path.substr(i, j - i);
      if (part != ".") parts.push_back(part);
    }
    i = j;
  }
  std::string out = absolute ? "/" : "";
  for (std::size_t k = 0; k < parts.size(); ++k) {
    if (k != 0) out += '/';
    out += parts[k];
  }
  if (out.empty()) out = absolute ? "/" : ".";
  return out;
}

std::string parent(std::string_view path) {
  const std::string norm = normalize(path);
  const std::size_t slash = norm.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return norm.substr(0, slash);
}

std::string basename(std::string_view path) {
  const std::string norm = normalize(path);
  const std::size_t slash = norm.rfind('/');
  if (slash == std::string::npos) return norm;
  return norm.substr(slash + 1);
}

std::string join(std::string_view dir, std::string_view name) {
  if (dir.empty() || dir == ".") return normalize(name);
  std::string out(dir);
  if (out.back() != '/') out += '/';
  out += name;
  return normalize(out);
}

}  // namespace sion::fs
