// Strategy-parameterised checkpoint/restart I/O used by the MP2C use case
// (paper section 5.1) and the comparison benchmarks: the same payload can be
// written through SIONlib, through the single-file-sequential scheme MP2C
// originally used, or as one physical file per task.
//
// The spec composes optional sub-specs instead of bool flags:
//   * `collective` — aggregate through ext::Collective (present = on);
//   * `protection` — a variant of redundancy schemes (ext::BuddyConfig);
//   * `staging`    — asynchronous multi-tier staging (ext::StagingConfig):
//     checkpoints land on a node-local fast tier and drain to the parallel
//     file system in the background (see workloads/checkpoint_session.h).
//
// write_checkpoint/read_checkpoint remain as thin wrappers over a one-write
// CheckpointSession — new code should open a session directly (the sion-lint
// rule `legacy-checkpoint-call` enforces this for library internals).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>

#include "common/status.h"
#include "common/units.h"
#include "ext/buddy.h"
#include "ext/collective.h"
#include "ext/compress.h"
#include "ext/ecc.h"
#include "ext/remap.h"
#include "ext/staging.h"
#include "fs/filesystem.h"
#include "par/comm.h"

// Compile-time gate for the deprecated bool-flag spec API (see
// workloads::legacy below). Off by default; define to 1 while migrating.
#ifndef SION_CHECKPOINT_LEGACY_API
#define SION_CHECKPOINT_LEGACY_API 0
#endif

namespace sion::workloads {

enum class IoStrategy : std::uint8_t {
  kSion,            // SIONlib multifile
  kSingleFileSeq,   // designated I/O task, gather/write waves
  kTaskLocal,       // one physical file per task
};

struct CheckpointSpec {
  std::string path;  // multifile name / single file name / task-file prefix
  IoStrategy strategy = IoStrategy::kSion;
  int nfiles = 1;               // SIONlib: physical files
  std::uint64_t fsblksize = 0;  // SIONlib: 0 = autodetect

  // Single-file-seq strategy only: the designated I/O task's staging buffer.
  std::uint64_t seq_staging_bytes = 8 * kMiB;

  // SIONlib strategy only: aggregate through ext::Collective instead of
  // every task writing its own chunk (paper section 6, coalescing I/O).
  std::optional<ext::CollectiveConfig> collective;

  // SIONlib strategy only: redundancy scheme protecting the checkpoint.
  // ext::BuddyConfig mirrors every failure domain's streams into replica
  // sets (writes) and probe-and-heals lost physical files before restoring
  // (reads); a set `collective` above carries over to the copy traffic.
  // ext::EccConfig writes m Reed-Solomon parity files over the k-file
  // primary instead — any m of the k+m files may be lost at m/k overhead,
  // and restores either heal or decode lost files on the fly (degraded
  // reads). See the README "Checkpoint protection" matrix.
  using Protection =
      std::variant<std::monostate, ext::BuddyConfig, ext::EccConfig>;
  Protection protection;

  // SIONlib strategy only: stage checkpoints on a node-local fast tier and
  // drain them to the parallel file system in the background. Only
  // meaningful through CheckpointSession (write_async overlap); the one-shot
  // write_checkpoint wrapper drains before returning.
  std::optional<ext::StagingConfig> staging;

  // SIONlib strategy only: frame-compress every task's payload with
  // ext/compress.h before it enters the write path (plain, collective,
  // buddy, or staged — the downstream machinery moves opaque smaller
  // streams). Restores decode transparently, including N->M through
  // ext::Remap; damaged frames are zero-filled/skipped and accounted in
  // `compression->loss_report` (when set) instead of failing the restart.
  std::optional<ext::CompressionSpec> compression;

  // SIONlib strategy, read side only: restore through ext::Remap so the
  // checkpoint can be read by a different task count than wrote it (N->M
  // restart). Nonzero asserts the reading communicator has exactly that many
  // tasks; each task receives its contiguous slice of the concatenated
  // global stream, sized by its `expected_bytes`. Works regardless of how
  // the file was written (plain, collective/kPacked, or serial), so it takes
  // precedence over `collective` when reading. 0 keeps the classic
  // same-task-count read path.
  int restart_ntasks = 0;
  ext::RemapConfig remap_config;

  [[nodiscard]] const ext::BuddyConfig* buddy_protection() const {
    return std::get_if<ext::BuddyConfig>(&protection);
  }
  [[nodiscard]] const ext::EccConfig* ecc_protection() const {
    return std::get_if<ext::EccConfig>(&protection);
  }
};

// Early, session-independent validation of the protection sub-spec against
// the writer task count: impossible configs (no parity domains, more
// domains than GF(256) supports, domain counts that do not divide the
// writers, replication degrees exceeding the domain count) fail here with
// a clear InvalidArgument instead of deep inside the writer. Called by
// CheckpointSession::open and restore; exposed for tests and tools.
// `ntasks <= 0` skips the writer-divisibility checks (restores run at any
// task count — an N->M restart comm need not divide into the domains).
[[nodiscard]] Status validate_protection(const CheckpointSpec& spec,
                                         int ntasks);

// Collective write of one checkpoint: every task contributes `payload`.
// Thin wrapper over CheckpointSession (open, write_async, wait, close);
// with `staging` set it blocks until the drain completes.
Status write_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                        const CheckpointSpec& spec, fs::DataView payload);

// Collective read of the checkpoint written above. Every task receives its
// `expected_bytes` into `out`; pass an empty span for timing-only restores
// (data moved and discarded).
Status read_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                       const CheckpointSpec& spec,
                       std::uint64_t expected_bytes, std::span<std::byte> out);

// Deprecated bool-flag setters kept for one release so downstream call
// sites can migrate incrementally. Disabled unless the TU defines
// SION_CHECKPOINT_LEGACY_API=1 (the static_assert fires only if a call is
// actually instantiated), and deprecated even then.
namespace legacy {

template <int Enabled = SION_CHECKPOINT_LEGACY_API>
[[deprecated(
    "assign spec.collective = ext::CollectiveConfig{...} instead")]] inline void
set_collective(CheckpointSpec& spec, bool on,
               const ext::CollectiveConfig& config = {}) {
  static_assert(Enabled != 0,
                "the legacy bool-flag checkpoint API is disabled; migrate to "
                "spec.collective, or define SION_CHECKPOINT_LEGACY_API=1 "
                "while migrating");
  if (on) {
    spec.collective = config;
  } else {
    spec.collective.reset();
  }
}

template <int Enabled = SION_CHECKPOINT_LEGACY_API>
[[deprecated(
    "assign spec.protection = ext::BuddyConfig{...} instead")]] inline void
set_buddy(CheckpointSpec& spec, bool on, const ext::BuddyConfig& config = {}) {
  static_assert(Enabled != 0,
                "the legacy bool-flag checkpoint API is disabled; migrate to "
                "spec.protection, or define SION_CHECKPOINT_LEGACY_API=1 "
                "while migrating");
  if (on) {
    spec.protection = config;
  } else {
    spec.protection = std::monostate{};
  }
}

}  // namespace legacy

}  // namespace sion::workloads
