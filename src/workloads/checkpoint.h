// Strategy-parameterised checkpoint/restart I/O used by the MP2C use case
// (paper section 5.1) and the comparison benchmarks: the same payload can be
// written through SIONlib, through the single-file-sequential scheme MP2C
// originally used, or as one physical file per task.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "ext/buddy.h"
#include "ext/collective.h"
#include "ext/remap.h"
#include "fs/filesystem.h"
#include "par/comm.h"

namespace sion::workloads {

enum class IoStrategy : std::uint8_t {
  kSion,            // SIONlib multifile
  kSingleFileSeq,   // designated I/O task, gather/write waves
  kTaskLocal,       // one physical file per task
};

struct CheckpointSpec {
  std::string path;  // multifile name / single file name / task-file prefix
  IoStrategy strategy = IoStrategy::kSion;
  int nfiles = 1;                        // SIONlib: physical files
  std::uint64_t fsblksize = 0;           // SIONlib: 0 = autodetect
  std::uint64_t staging_bytes = 8 * kMiB;  // single-file-seq staging buffer

  // SIONlib strategy only: aggregate through ext::Collective instead of
  // every task writing its own chunk (paper section 6, coalescing I/O).
  bool collective = false;
  ext::CollectiveConfig collective_config;

  // SIONlib strategy, read side only: restore through ext::Remap so the
  // checkpoint can be read by a different task count than wrote it (N->M
  // restart). Nonzero asserts the reading communicator has exactly that many
  // tasks; each task receives its contiguous slice of the concatenated
  // global stream, sized by its `expected_bytes`. Works regardless of how
  // the file was written (plain, collective/kPacked, or serial), so it takes
  // precedence over `collective` when reading. 0 keeps the classic
  // same-task-count read path.
  int restart_ntasks = 0;
  ext::RemapConfig remap_config;

  // SIONlib strategy only: buddy-redundancy replication (ext::Buddy). Writes
  // mirror every failure domain's streams into buddy_config.replicas - 1
  // replica sets; reads probe-and-heal lost physical files from the
  // surviving replicas before restoring (through ext::Remap, so N->M works
  // too — restart_ntasks composes). The collective/collective_config knobs
  // above carry over to the buddy copy traffic.
  bool buddy = false;
  ext::BuddyConfig buddy_config;
};

// Collective write of one checkpoint: every task contributes `payload`.
Status write_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                        const CheckpointSpec& spec, fs::DataView payload);

// Collective read of the checkpoint written above. Every task receives its
// `expected_bytes` into `out`; pass an empty span for timing-only restores
// (data moved and discarded).
Status read_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                       const CheckpointSpec& spec,
                       std::uint64_t expected_bytes, std::span<std::byte> out);

}  // namespace sion::workloads
