// MP2C-like particle workload (paper section 5.1): a mesoscopic particle
// dynamics code with domain decomposition whose restart files store 52 bytes
// per particle. The paper reports that switching its checkpoint I/O from the
// single-file-sequential scheme to SIONlib raised the feasible problem size
// from ~10 M to over a billion particles on 1 K cores.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "fs/filesystem.h"

namespace sion::workloads {

// 6 doubles (position + velocity) + u32 species = 52 bytes, the figure the
// paper quotes per particle.
struct Particle {
  double pos[3];
  double vel[3];
  std::uint32_t species;
};

inline constexpr std::uint64_t kParticleBytes = 52;

// Number of particles owned by `rank` when `total` particles are distributed
// over `ntasks` equal-volume domains (remainder spread over low ranks).
std::uint64_t mp2c_local_particles(std::uint64_t total, int ntasks, int rank);

// Deterministic pseudo-physical particle state for task `rank`.
std::vector<Particle> mp2c_generate(std::uint64_t total, int ntasks, int rank,
                                    std::uint64_t seed);

// Serialize to / parse from the 52-byte on-disk record format.
std::vector<std::byte> mp2c_serialize(const std::vector<Particle>& particles);
Result<std::vector<Particle>> mp2c_deserialize(
    std::span<const std::byte> bytes);

}  // namespace sion::workloads
