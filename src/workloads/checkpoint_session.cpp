#include "workloads/checkpoint_session.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "baseline/single_file_seq.h"
#include "baseline/task_local.h"
#include "common/strings.h"
#include "core/api.h"
#include "fs/path.h"
#include "fs/sim/simfs.h"
#include "par/engine.h"

namespace sion::workloads {

namespace {

// Chunk size for SION checkpoints: the whole payload fits one chunk, the
// paper's recommended "choosing the maximum generously enough".
std::uint64_t sion_chunksize(fs::DataView payload) {
  return std::max<std::uint64_t>(1, payload.size());
}

// The buddy subsystem owns the collective-vs-plain routing for all of its
// sets, so a set spec-level aggregation sub-spec folds into its config.
ext::BuddyConfig buddy_config_of(const CheckpointSpec& spec) {
  ext::BuddyConfig config = *spec.buddy_protection();
  if (spec.collective.has_value()) {
    config.collective = true;
    config.collective_config = *spec.collective;
  }
  if (config.num_domains <= 0) config.num_domains = std::max(1, spec.nfiles);
  return config;
}

// Same folding for ECC protection: the session-level aggregation sub-spec
// routes the primary multifile through ext::Collective; parity encoding is
// unaffected (it reads back physical bytes).
ext::EccConfig ecc_config_of(const CheckpointSpec& spec) {
  ext::EccConfig config = *spec.ecc_protection();
  if (spec.collective.has_value()) {
    config.collective = true;
    config.collective_config = *spec.collective;
  }
  if (config.data_domains <= 0) config.data_domains = std::max(1, spec.nfiles);
  return config;
}

// Materialise a DataView so it can be fed through the compressor. Fill and
// gather views are expanded; compression callers pay this host cost by
// opting in (virtual-scale benches that rely on fill virtualisation keep
// compression off).
std::vector<std::byte> flatten_view(fs::DataView v) {
  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(v.size()));
  const auto append = [&out](const fs::DataView& p) {
    if (p.is_fill()) {
      out.insert(out.end(), static_cast<std::size_t>(p.size()),
                 p.fill_byte());
    } else {
      out.insert(out.end(), p.bytes().begin(), p.bytes().end());
    }
  };
  if (v.is_gather()) {
    for (const fs::DataView& p : v.parts()) append(p);
  } else {
    append(v);
  }
  return out;
}

// The remap config the read side actually uses: spec.compression turns on
// transparent frame decoding for N->M and buddy restores.
ext::RemapConfig remap_config_of(const CheckpointSpec& spec) {
  ext::RemapConfig config = spec.remap_config;
  if (spec.compression.has_value()) config.transparent_decompress = true;
  return config;
}

// The same-task-count compressed read path: frame boundaries do not respect
// chunk boundaries, so every task fetches its entire raw stream and decodes
// it tolerantly. The decode verdict is agreed collectively so a rank whose
// stream lost alignment (torn frame header) fails every task cleanly.
Status restore_sion_compressed(fs::FileSystem& fs, par::Comm& comm,
                               const CheckpointSpec& spec,
                               const std::string& name,
                               std::uint64_t expected_bytes,
                               std::span<std::byte> out,
                               ext::StreamLossReport* loss) {
  const bool discard = out.empty();
  std::vector<std::byte> rawbytes;
  Status st;
  if (spec.collective.has_value()) {
    SION_ASSIGN_OR_RETURN(
        auto sion, ext::Collective::open_read(fs, comm, name,
                                              *spec.collective));
    auto data = sion->read_all();
    if (data.ok()) {
      rawbytes = std::move(data).value();
    } else {
      st = data.status();
    }
    SION_RETURN_IF_ERROR(sion->close());
  } else {
    SION_ASSIGN_OR_RETURN(auto sion,
                          core::SionParFile::open_read(fs, comm, name));
    auto data = sion->read_remaining();
    if (data.ok()) {
      rawbytes = std::move(data).value();
    } else {
      st = data.status();
    }
    SION_RETURN_IF_ERROR(sion->close());
  }
  if (st.ok()) {
    ext::StreamLossReport mine;
    auto decoded = ext::decompress_stream(rawbytes, &mine);
    if (!decoded.ok()) {
      st = decoded.status();
    } else if (decoded.value().size() != expected_bytes) {
      st = Corrupt(strformat(
          "compressed checkpoint decoded %llu bytes where %llu were "
          "expected (unrecoverable frame-header loss shrinks the stream)",
          static_cast<unsigned long long>(decoded.value().size()),
          static_cast<unsigned long long>(expected_bytes)));
    } else {
      if (!discard && expected_bytes > 0) {
        std::memcpy(out.data(), decoded.value().data(),
                    static_cast<std::size_t>(expected_bytes));
      }
      if (loss != nullptr) loss->merge(mine);
    }
  }
  return par::agree_status(comm, st,
                           "compressed restore failed on another task");
}

}  // namespace

Result<std::unique_ptr<CheckpointSession>> CheckpointSession::open(
    fs::FileSystem& fs, par::Comm& comm, CheckpointSpec spec) {
  if (spec.path.empty()) {
    return InvalidArgument("checkpoint spec has no path");
  }
  if (spec.staging.has_value() && spec.strategy != IoStrategy::kSion) {
    return InvalidArgument(
        "checkpoint staging requires the SIONlib strategy");
  }
  if (spec.compression.has_value() && spec.strategy != IoStrategy::kSion) {
    return InvalidArgument(
        "checkpoint compression requires the SIONlib strategy");
  }
  SION_RETURN_IF_ERROR(validate_protection(spec, comm.size()));
  auto session = std::unique_ptr<CheckpointSession>(new CheckpointSession(
      fs, comm, std::move(spec)));
  const CheckpointSpec& s = session->spec_;
  if (s.staging.has_value()) {
    core::ParOpenSpec open;
    open.filename = s.path;
    open.nfiles = std::max(1, s.nfiles);
    open.fsblksize = s.fsblksize;
    std::optional<ext::BuddyConfig> buddy;
    std::optional<ext::EccConfig> ecc;
    if (const ext::BuddyConfig* b = s.buddy_protection(); b != nullptr) {
      buddy = buddy_config_of(s);
      open.nfiles = buddy->num_domains;  // one physical file per domain
    } else if (const ext::EccConfig* e = s.ecc_protection(); e != nullptr) {
      ecc = ecc_config_of(s);
      open.nfiles = ecc->data_domains;  // one physical file per data domain
    }
    SION_ASSIGN_OR_RETURN(
        session->staging_,
        ext::Staging::open(fs, comm, *s.staging, open, s.collective, buddy,
                           ecc));
  }
  return session;
}

std::string CheckpointSession::checkpoint_name(const CheckpointSpec& spec,
                                               std::uint64_t index) {
  if (index == 0) return spec.path;  // the legacy single-checkpoint name
  // Alternate over enough names that an in-flight drain never lands on the
  // newest durable checkpoint's files.
  const std::uint64_t keep =
      spec.staging.has_value()
          ? static_cast<std::uint64_t>(std::max(2, spec.staging->buffers))
          : 2;
  return spec.path + ".v" + std::to_string(1 + (index - 1) % keep);
}

Result<CheckpointSession::Ticket> CheckpointSession::write_async(
    fs::DataView payload) {
  if (closed_) return FailedPrecondition("checkpoint session is closed");
  const std::uint64_t index = records_.size();
  const par::TaskState* task = par::this_task();
  const double snapshot = task != nullptr ? task->now() : 0.0;
  const std::string name = checkpoint_name(spec_, index);

  // Compression happens here, upstream of every write route: the staging
  // absorb, the buddy replicas, and the collective aggregation all move the
  // already-encoded (smaller) stream as opaque bytes.
  std::vector<std::byte> encoded;
  if (spec_.compression.has_value()) {
    const std::vector<std::byte> flat = flatten_view(payload);
    SION_ASSIGN_OR_RETURN(encoded,
                          ext::compress_stream(flat, *spec_.compression));
    payload = fs::DataView(encoded);
  }

  if (staging_ != nullptr) {
    Result<double> finish = staging_->write(index, payload, name);
    if (!finish.ok()) {
      // Either an evicted earlier checkpoint failed to drain or this staged
      // write itself failed; nothing new was recorded.
      sync_records();
      return finish.status();
    }
    Record rec;
    rec.index = index;
    rec.name = name;
    rec.snapshot_vtime = snapshot;
    rec.complete_vtime = finish.value();
    rec.state = State::kInFlight;
    records_.push_back(std::move(rec));
    sync_records();
    SION_RETURN_IF_ERROR(update_manifest());
    return Ticket{index};
  }

  const Status st = write_now(name, payload);
  Record rec;
  rec.index = index;
  rec.name = name;
  rec.snapshot_vtime = snapshot;
  rec.complete_vtime = task != nullptr ? task->now() : 0.0;
  rec.state = st.ok() ? State::kComplete : State::kFailed;
  records_.push_back(std::move(rec));
  SION_RETURN_IF_ERROR(st);
  return Ticket{index};
}

Status CheckpointSession::wait(Ticket ticket) {
  if (ticket.index >= records_.size()) {
    return InvalidArgument(strformat(
        "wait for checkpoint %llu, but only %llu were written",
        static_cast<unsigned long long>(ticket.index),
        static_cast<unsigned long long>(records_.size())));
  }
  if (staging_ == nullptr) {
    if (records_[ticket.index].state == State::kFailed) {
      return IoError(strformat("checkpoint %llu ('%s') failed",
                               static_cast<unsigned long long>(ticket.index),
                               records_[ticket.index].name.c_str()));
    }
    return Status::Ok();
  }
  const Status st = staging_->wait(ticket.index);
  sync_records();
  const Status manifest = update_manifest();
  SION_RETURN_IF_ERROR(st);
  return manifest;
}

Status CheckpointSession::drain() {
  if (staging_ == nullptr) return Status::Ok();
  const Status st = staging_->drain_all();
  sync_records();
  const Status manifest = update_manifest();
  SION_RETURN_IF_ERROR(st);
  return manifest;
}

Status CheckpointSession::close() {
  if (closed_) return Status::Ok();
  const Status st = drain();
  closed_ = true;
  return st;
}

void CheckpointSession::sync_records() {
  if (staging_ == nullptr) return;
  const std::vector<ext::Staging::DrainInfo>& infos = staging_->history();
  const std::size_t n = std::min(infos.size(), records_.size());
  for (std::size_t i = 0; i < n; ++i) {
    switch (infos[i].state) {
      case ext::Staging::SlotState::kInFlight:
        records_[i].state = State::kInFlight;
        break;
      case ext::Staging::SlotState::kDrained:
        records_[i].state = State::kComplete;
        break;
      case ext::Staging::SlotState::kFailed:
        records_[i].state = State::kFailed;
        break;
    }
  }
}

Status CheckpointSession::update_manifest() {
  const std::optional<std::uint64_t> latest = staging_->last_drained();
  if (!latest.has_value()) return Status::Ok();
  if (manifest_written_ && manifest_value_ == *latest) return Status::Ok();
  Status st = Status::Ok();
  if (comm_->rank() == 0) {
    // Drain-agent bookkeeping, not application I/O: charges nothing.
    fs::SimFs::ScopedFreeIo free_io(*fs_);
    Result<std::unique_ptr<fs::File>> file =
        fs_->create(spec_.path + ".manifest");
    if (!file.ok()) {
      st = file.status();
    } else {
      const std::string text = std::to_string(*latest) + "\n";
      const Result<std::uint64_t> n = file.value()->pwrite(
          fs::DataView(std::as_bytes(std::span<const char>(text))), 0);
      if (!n.ok()) st = n.status();
    }
  }
  SION_RETURN_IF_ERROR(par::share_status(*comm_, st, 0,
                                         "checkpoint manifest"));
  manifest_written_ = true;
  manifest_value_ = *latest;
  return Status::Ok();
}

Status CheckpointSession::write_now(const std::string& name,
                                    fs::DataView payload) {
  const CheckpointSpec& spec = spec_;
  switch (spec.strategy) {
    case IoStrategy::kSion: {
      core::ParOpenSpec open;
      open.filename = name;
      open.chunksize = sion_chunksize(payload);
      open.nfiles = spec.nfiles;
      open.fsblksize = spec.fsblksize;
      if (spec.buddy_protection() != nullptr) {
        return ext::Buddy::write(*fs_, *comm_, open, buddy_config_of(spec),
                                 payload);
      }
      if (spec.ecc_protection() != nullptr) {
        return ext::Ecc::write(*fs_, *comm_, open, ecc_config_of(spec),
                               payload);
      }
      if (spec.collective.has_value()) {
        SION_ASSIGN_OR_RETURN(
            auto sion,
            ext::Collective::open_write(*fs_, *comm_, open, *spec.collective));
        SION_RETURN_IF_ERROR(sion->write(payload));
        return sion->close();
      }
      SION_ASSIGN_OR_RETURN(auto sion,
                            core::SionParFile::open_write(*fs_, *comm_, open));
      SION_ASSIGN_OR_RETURN(const std::uint64_t n, sion->write(payload));
      (void)n;
      return sion->close();
    }
    case IoStrategy::kSingleFileSeq: {
      baseline::SingleFileSeqOptions options;
      options.staging_bytes = spec.seq_staging_bytes;
      return baseline::write_single_file_seq(*fs_, *comm_, name, payload,
                                             options);
    }
    case IoStrategy::kTaskLocal: {
      SION_ASSIGN_OR_RETURN(
          auto file,
          baseline::TaskLocalFile::create(*fs_, fs::parent(name),
                                          fs::basename(name), comm_->rank()));
      SION_ASSIGN_OR_RETURN(const std::uint64_t n, file.write(payload));
      (void)n;
      comm_->barrier();
      return Status::Ok();
    }
  }
  return InvalidArgument("unknown checkpoint strategy");
}

Status CheckpointSession::restore(fs::FileSystem& fs, par::Comm& comm,
                                  const CheckpointSpec& spec,
                                  std::uint64_t index,
                                  std::uint64_t expected_bytes,
                                  std::span<std::byte> out) {
  const std::string name = checkpoint_name(spec, index);
  const bool discard = out.empty();
  if (!discard && out.size() < expected_bytes) {
    return InvalidArgument("output buffer too small for checkpoint");
  }
  switch (spec.strategy) {
    case IoStrategy::kSion: {
      if (spec.restart_ntasks != 0 && comm.size() != spec.restart_ntasks) {
        return InvalidArgument(strformat(
            "restart_ntasks is %d but the restart runs %d tasks",
            spec.restart_ntasks, comm.size()));
      }
      // Restarts run at any task count; 0 skips the writer-divisibility
      // checks while still rejecting impossible geometries early.
      SION_RETURN_IF_ERROR(validate_protection(spec, 0));
      ext::StreamLossReport local_loss;
      if (spec.ecc_protection() != nullptr) {
        // Probe once; lost files are either healed first or decoded on the
        // fly during the remap reads (EccConfig::restore_mode). Each task
        // receives its `expected_bytes` slice of the concatenated global
        // stream (with M == N that slice is exactly the task's own stream).
        SION_ASSIGN_OR_RETURN(
            const ext::RemapStats stats,
            ext::Ecc::restore(fs, comm, name, ecc_config_of(spec),
                              discard ? std::span<std::byte>{}
                                      : out.subspan(0, expected_bytes),
                              expected_bytes, remap_config_of(spec)));
        local_loss.merge(stats.loss);
      } else if (spec.buddy_protection() != nullptr) {
        // Probe-and-heal first, then the remap restore; each task receives
        // its `expected_bytes` slice of the concatenated global stream
        // (with M == N that slice is exactly the task's own stream).
        SION_ASSIGN_OR_RETURN(
            const ext::RemapStats stats,
            ext::Buddy::restore(fs, comm, name, buddy_config_of(spec),
                                discard ? std::span<std::byte>{}
                                        : out.subspan(0, expected_bytes),
                                expected_bytes, remap_config_of(spec)));
        local_loss.merge(stats.loss);
      } else if (spec.restart_ntasks != 0) {
        SION_ASSIGN_OR_RETURN(auto remap,
                              ext::Remap::open(fs, comm, name,
                                               remap_config_of(spec)));
        SION_ASSIGN_OR_RETURN(
            const ext::RemapStats stats,
            remap->restore(discard ? std::span<std::byte>{}
                                   : out.subspan(0, expected_bytes),
                           expected_bytes));
        local_loss.merge(stats.loss);
        SION_RETURN_IF_ERROR(remap->close());
      } else if (spec.compression.has_value()) {
        SION_RETURN_IF_ERROR(restore_sion_compressed(
            fs, comm, spec, name, expected_bytes,
            discard ? std::span<std::byte>{} : out.subspan(0, expected_bytes),
            &local_loss));
      } else if (spec.collective.has_value()) {
        SION_ASSIGN_OR_RETURN(
            auto sion,
            ext::Collective::open_read(fs, comm, name, *spec.collective));
        if (sion->bytes_remaining_total() != expected_bytes) {
          return Corrupt("checkpoint size does not match expectation");
        }
        if (discard) {
          SION_RETURN_IF_ERROR(sion->read_skip(expected_bytes));
        } else {
          SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                                sion->read(out.subspan(0, expected_bytes)));
          if (n != expected_bytes) return Corrupt("short checkpoint read");
        }
        SION_RETURN_IF_ERROR(sion->close());
      } else {
        SION_ASSIGN_OR_RETURN(auto sion,
                              core::SionParFile::open_read(fs, comm, name));
        if (sion->bytes_remaining_total() != expected_bytes) {
          return Corrupt("checkpoint size does not match expectation");
        }
        if (discard) {
          SION_RETURN_IF_ERROR(sion->read_skip(expected_bytes));
        } else {
          SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                                sion->read(out.subspan(0, expected_bytes)));
          if (n != expected_bytes) return Corrupt("short checkpoint read");
        }
        SION_RETURN_IF_ERROR(sion->close());
      }
      if (spec.compression.has_value() &&
          spec.compression->loss_report != nullptr) {
        // Surface the restart's global loss on every task: the allreduced
        // sums are deterministic and identical everywhere, and run only
        // when every rank got here (the paths above agree on failure).
        ext::StreamLossReport global;
        global.frames_decoded =
            comm.allreduce_u64(local_loss.frames_decoded, par::ReduceOp::kSum);
        global.frames_skipped =
            comm.allreduce_u64(local_loss.frames_skipped, par::ReduceOp::kSum);
        global.bytes_zero_filled = comm.allreduce_u64(
            local_loss.bytes_zero_filled, par::ReduceOp::kSum);
        global.bytes_discarded = comm.allreduce_u64(
            local_loss.bytes_discarded, par::ReduceOp::kSum);
        spec.compression->loss_report->merge(global);
      }
      return Status::Ok();
    }
    case IoStrategy::kSingleFileSeq: {
      baseline::SingleFileSeqOptions options;
      options.staging_bytes = spec.seq_staging_bytes;
      return baseline::read_single_file_seq(
          fs, comm, name, expected_bytes,
          discard ? std::span<std::byte>{} : out.subspan(0, expected_bytes),
          options);
    }
    case IoStrategy::kTaskLocal: {
      SION_ASSIGN_OR_RETURN(
          auto file, baseline::TaskLocalFile::open_existing(
                         fs, fs::parent(name), fs::basename(name),
                         comm.rank(), /*writable=*/false));
      if (discard) {
        SION_RETURN_IF_ERROR(file.read_skip(expected_bytes));
      } else {
        SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                              file.read(out.subspan(0, expected_bytes)));
        if (n != expected_bytes) return Corrupt("short checkpoint read");
      }
      comm.barrier();
      return Status::Ok();
    }
  }
  return InvalidArgument("unknown checkpoint strategy");
}

Result<std::uint64_t> CheckpointSession::restore_latest(
    fs::FileSystem& fs, par::Comm& comm, const CheckpointSpec& spec,
    std::uint64_t expected_bytes, std::span<std::byte> out) {
  const std::string manifest = spec.path + ".manifest";
  std::uint64_t latest_plus1 = 0;  // 0 = no manifest, fall back to index 0
  Status st = Status::Ok();
  if (comm.rank() == 0 && fs.exists(manifest)) {
    Result<std::unique_ptr<fs::File>> file = fs.open_read(manifest);
    if (!file.ok()) {
      st = file.status();
    } else {
      std::array<std::byte, 32> buffer{};
      const Result<std::uint64_t> n =
          file.value()->pread(std::span<std::byte>(buffer), 0);
      if (!n.ok()) {
        st = n.status();
      } else {
        std::uint64_t value = 0;
        bool any = false;
        for (std::uint64_t i = 0; i < n.value(); ++i) {
          const char c = static_cast<char>(buffer[i]);
          if (c < '0' || c > '9') break;
          value = value * 10 + static_cast<std::uint64_t>(c - '0');
          any = true;
        }
        if (!any) {
          st = Corrupt(strformat("manifest '%s' is unparsable",
                                 manifest.c_str()));
        } else {
          latest_plus1 = value + 1;
        }
      }
    }
  }
  SION_RETURN_IF_ERROR(par::share_status(comm, st, 0, "checkpoint manifest"));
  latest_plus1 = comm.bcast_u64(latest_plus1, 0);
  const std::uint64_t index = latest_plus1 == 0 ? 0 : latest_plus1 - 1;
  SION_RETURN_IF_ERROR(restore(fs, comm, spec, index, expected_bytes, out));
  return index;
}

}  // namespace sion::workloads
