#include "workloads/checkpoint.h"

#include "baseline/single_file_seq.h"
#include "baseline/task_local.h"
#include "common/strings.h"
#include "core/api.h"
#include "fs/path.h"

namespace sion::workloads {

namespace {
// Chunk size for SION checkpoints: the whole payload fits one chunk, the
// paper's recommended "choosing the maximum generously enough".
std::uint64_t sion_chunksize(fs::DataView payload) {
  return std::max<std::uint64_t>(1, payload.size());
}

// The buddy subsystem owns the collective-vs-plain routing for all of its
// sets, so the spec's aggregation knobs fold into its config.
ext::BuddyConfig buddy_config_of(const CheckpointSpec& spec) {
  ext::BuddyConfig config = spec.buddy_config;
  config.collective = spec.collective;
  config.collective_config = spec.collective_config;
  if (config.num_domains <= 0) config.num_domains = std::max(1, spec.nfiles);
  return config;
}
}  // namespace

Status write_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                        const CheckpointSpec& spec, fs::DataView payload) {
  switch (spec.strategy) {
    case IoStrategy::kSion: {
      core::ParOpenSpec open;
      open.filename = spec.path;
      open.chunksize = sion_chunksize(payload);
      open.nfiles = spec.nfiles;
      open.fsblksize = spec.fsblksize;
      if (spec.buddy) {
        return ext::Buddy::write(fs, comm, open, buddy_config_of(spec),
                                 payload);
      }
      if (spec.collective) {
        SION_ASSIGN_OR_RETURN(
            auto sion, ext::Collective::open_write(fs, comm, open,
                                                   spec.collective_config));
        SION_RETURN_IF_ERROR(sion->write(payload));
        return sion->close();
      }
      SION_ASSIGN_OR_RETURN(auto sion,
                            core::SionParFile::open_write(fs, comm, open));
      SION_ASSIGN_OR_RETURN(const std::uint64_t n, sion->write(payload));
      (void)n;
      return sion->close();
    }
    case IoStrategy::kSingleFileSeq: {
      baseline::SingleFileSeqOptions options;
      options.staging_bytes = spec.staging_bytes;
      return baseline::write_single_file_seq(fs, comm, spec.path, payload,
                                             options);
    }
    case IoStrategy::kTaskLocal: {
      SION_ASSIGN_OR_RETURN(
          auto file,
          baseline::TaskLocalFile::create(fs, fs::parent(spec.path),
                                          fs::basename(spec.path),
                                          comm.rank()));
      SION_ASSIGN_OR_RETURN(const std::uint64_t n, file.write(payload));
      (void)n;
      comm.barrier();
      return Status::Ok();
    }
  }
  return InvalidArgument("unknown checkpoint strategy");
}

Status read_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                       const CheckpointSpec& spec,
                       std::uint64_t expected_bytes,
                       std::span<std::byte> out) {
  const bool discard = out.empty();
  if (!discard && out.size() < expected_bytes) {
    return InvalidArgument("output buffer too small for checkpoint");
  }
  switch (spec.strategy) {
    case IoStrategy::kSion: {
      if (spec.restart_ntasks != 0 && comm.size() != spec.restart_ntasks) {
        return InvalidArgument(strformat(
            "restart_ntasks is %d but the restart runs %d tasks",
            spec.restart_ntasks, comm.size()));
      }
      if (spec.buddy) {
        // Probe-and-heal first, then the remap restore; each task receives
        // its `expected_bytes` slice of the concatenated global stream
        // (with M == N that slice is exactly the task's own stream).
        SION_ASSIGN_OR_RETURN(
            const ext::RemapStats stats,
            ext::Buddy::restore(fs, comm, spec.path, buddy_config_of(spec),
                                discard ? std::span<std::byte>{}
                                        : out.subspan(0, expected_bytes),
                                expected_bytes, spec.remap_config));
        (void)stats;
        return Status::Ok();
      }
      if (spec.restart_ntasks != 0) {
        SION_ASSIGN_OR_RETURN(
            auto remap,
            ext::Remap::open(fs, comm, spec.path, spec.remap_config));
        SION_ASSIGN_OR_RETURN(
            const ext::RemapStats stats,
            remap->restore(discard ? std::span<std::byte>{}
                                   : out.subspan(0, expected_bytes),
                           expected_bytes));
        (void)stats;
        return remap->close();
      }
      if (spec.collective) {
        SION_ASSIGN_OR_RETURN(
            auto sion, ext::Collective::open_read(fs, comm, spec.path,
                                                  spec.collective_config));
        if (sion->bytes_remaining_total() != expected_bytes) {
          return Corrupt("checkpoint size does not match expectation");
        }
        if (discard) {
          SION_RETURN_IF_ERROR(sion->read_skip(expected_bytes));
        } else {
          SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                                sion->read(out.subspan(0, expected_bytes)));
          if (n != expected_bytes) return Corrupt("short checkpoint read");
        }
        return sion->close();
      }
      SION_ASSIGN_OR_RETURN(auto sion,
                            core::SionParFile::open_read(fs, comm, spec.path));
      if (sion->bytes_remaining_total() != expected_bytes) {
        return Corrupt("checkpoint size does not match expectation");
      }
      if (discard) {
        SION_RETURN_IF_ERROR(sion->read_skip(expected_bytes));
      } else {
        SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                              sion->read(out.subspan(0, expected_bytes)));
        if (n != expected_bytes) return Corrupt("short checkpoint read");
      }
      return sion->close();
    }
    case IoStrategy::kSingleFileSeq: {
      baseline::SingleFileSeqOptions options;
      options.staging_bytes = spec.staging_bytes;
      return baseline::read_single_file_seq(
          fs, comm, spec.path, expected_bytes,
          discard ? std::span<std::byte>{} : out.subspan(0, expected_bytes),
          options);
    }
    case IoStrategy::kTaskLocal: {
      SION_ASSIGN_OR_RETURN(
          auto file, baseline::TaskLocalFile::open_existing(
                         fs, fs::parent(spec.path), fs::basename(spec.path),
                         comm.rank(), /*writable=*/false));
      if (discard) {
        SION_RETURN_IF_ERROR(file.read_skip(expected_bytes));
      } else {
        SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                              file.read(out.subspan(0, expected_bytes)));
        if (n != expected_bytes) return Corrupt("short checkpoint read");
      }
      comm.barrier();
      return Status::Ok();
    }
  }
  return InvalidArgument("unknown checkpoint strategy");
}

}  // namespace sion::workloads
