#include "workloads/checkpoint.h"

#include "workloads/checkpoint_session.h"

namespace sion::workloads {

// The free functions are compatibility wrappers over a one-write session.
// Sync-mode session open/close perform no I/O and no collectives, so these
// cost exactly what the pre-session implementations did.

Status write_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                        const CheckpointSpec& spec, fs::DataView payload) {
  SION_ASSIGN_OR_RETURN(auto session, CheckpointSession::open(fs, comm, spec));
  SION_ASSIGN_OR_RETURN(const CheckpointSession::Ticket ticket,
                        session->write_async(payload));
  SION_RETURN_IF_ERROR(session->wait(ticket));
  return session->close();
}

Status read_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                       const CheckpointSpec& spec,
                       std::uint64_t expected_bytes,
                       std::span<std::byte> out) {
  return CheckpointSession::restore(fs, comm, spec, /*index=*/0,
                                    expected_bytes, out);
}

}  // namespace sion::workloads
