#include "workloads/checkpoint.h"

#include <algorithm>

#include "common/strings.h"
#include "workloads/checkpoint_session.h"

namespace sion::workloads {

Status validate_protection(const CheckpointSpec& spec, int ntasks) {
  const bool has_protection =
      !std::holds_alternative<std::monostate>(spec.protection);
  if (!has_protection) return Status::Ok();
  if (spec.strategy != IoStrategy::kSion) {
    return InvalidArgument(
        "checkpoint protection (buddy or ecc) requires the SIONlib strategy");
  }
  if (const ext::BuddyConfig* b = spec.buddy_protection(); b != nullptr) {
    const int domains =
        b->num_domains > 0 ? b->num_domains : std::max(1, spec.nfiles);
    if (b->replicas < 1) {
      return InvalidArgument("buddy replication degree must be at least 1");
    }
    if (b->replicas > domains) {
      return InvalidArgument(strformat(
          "replication degree %d exceeds the %d failure domains (the copies "
          "of a stream must live in distinct domains)",
          b->replicas, domains));
    }
    if (ntasks > 0 && ntasks % domains != 0) {
      return InvalidArgument(strformat(
          "%d tasks cannot form %d equal failure domains", ntasks, domains));
    }
    return Status::Ok();
  }
  const ext::EccConfig* e = spec.ecc_protection();
  const int k = e->data_domains > 0 ? e->data_domains : std::max(1, spec.nfiles);
  const int m = e->parity_domains;
  if (k < 1) {
    return InvalidArgument("ecc: at least one data domain is required");
  }
  if (m < 1) {
    return InvalidArgument(
        "ecc: at least one parity domain is required (leave the protection "
        "variant unset for none)");
  }
  if (k + m > 255) {
    return InvalidArgument(strformat(
        "ecc: %d data + %d parity domains exceed the 255 failure domains "
        "GF(256) supports",
        k, m));
  }
  if (e->stripe_bytes == 0) {
    return InvalidArgument("ecc: stripe_bytes must be > 0");
  }
  if (ntasks > 0 && ntasks % k != 0) {
    return InvalidArgument(strformat(
        "%d writer tasks cannot form %d equal data domains (of the k+m "
        "failure domains, the k data domains must divide the writers)",
        ntasks, k));
  }
  return Status::Ok();
}

// The free functions are compatibility wrappers over a one-write session.
// Sync-mode session open/close perform no I/O and no collectives, so these
// cost exactly what the pre-session implementations did.

Status write_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                        const CheckpointSpec& spec, fs::DataView payload) {
  SION_ASSIGN_OR_RETURN(auto session, CheckpointSession::open(fs, comm, spec));
  SION_ASSIGN_OR_RETURN(const CheckpointSession::Ticket ticket,
                        session->write_async(payload));
  SION_RETURN_IF_ERROR(session->wait(ticket));
  return session->close();
}

Status read_checkpoint(fs::FileSystem& fs, par::Comm& comm,
                       const CheckpointSpec& spec,
                       std::uint64_t expected_bytes,
                       std::span<std::byte> out) {
  return CheckpointSession::restore(fs, comm, spec, /*index=*/0,
                                    expected_bytes, out);
}

}  // namespace sion::workloads
