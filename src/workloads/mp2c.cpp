#include "workloads/mp2c.h"

#include "common/codec.h"
#include "common/rng.h"

namespace sion::workloads {

std::uint64_t mp2c_local_particles(std::uint64_t total, int ntasks, int rank) {
  const std::uint64_t base = total / static_cast<std::uint64_t>(ntasks);
  const std::uint64_t rest = total % static_cast<std::uint64_t>(ntasks);
  return base + (static_cast<std::uint64_t>(rank) < rest ? 1 : 0);
}

std::vector<Particle> mp2c_generate(std::uint64_t total, int ntasks, int rank,
                                    std::uint64_t seed) {
  const std::uint64_t n = mp2c_local_particles(total, ntasks, rank);
  std::vector<Particle> out(n);
  Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(rank + 1)));
  for (auto& p : out) {
    for (int d = 0; d < 3; ++d) {
      p.pos[d] = rng.next_double() * 100.0;
      p.vel[d] = rng.next_double() * 2.0 - 1.0;
    }
    p.species = static_cast<std::uint32_t>(rng.next_below(4));
  }
  return out;
}

std::vector<std::byte> mp2c_serialize(const std::vector<Particle>& particles) {
  ByteWriter w;
  for (const auto& p : particles) {
    for (int d = 0; d < 3; ++d) w.put_f64(p.pos[d]);
    for (int d = 0; d < 3; ++d) w.put_f64(p.vel[d]);
    w.put_u32(p.species);
  }
  return w.take();
}

Result<std::vector<Particle>> mp2c_deserialize(
    std::span<const std::byte> bytes) {
  if (bytes.size() % kParticleBytes != 0) {
    return Corrupt("restart data is not a whole number of particle records");
  }
  std::vector<Particle> out(bytes.size() / kParticleBytes);
  ByteReader r(bytes);
  for (auto& p : out) {
    for (int d = 0; d < 3; ++d) {
      SION_ASSIGN_OR_RETURN(p.pos[d], r.get_f64());
    }
    for (int d = 0; d < 3; ++d) {
      SION_ASSIGN_OR_RETURN(p.vel[d], r.get_f64());
    }
    SION_ASSIGN_OR_RETURN(p.species, r.get_u32());
  }
  return out;
}

}  // namespace sion::workloads
