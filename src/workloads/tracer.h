// Scalasca-like tracing workload (paper section 5.2): each task records
// events into a local buffer during measurement and writes them to a
// task-local (logical) file at finalisation; Table 2 measures the
// *activation* time (creating the files and initialising tracing, the
// bottleneck at 32 Ki tasks) separately from the write bandwidth.
//
// Like Scalasca's zlib use, the trace payload can be compressed with the
// slz codec before writing (see src/ext/slz.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/task_local.h"
#include "common/status.h"
#include "core/par_file.h"
#include "ext/compress.h"
#include "fs/filesystem.h"
#include "par/comm.h"

namespace sion::workloads {

struct TraceEvent {
  std::uint64_t timestamp;
  std::uint32_t kind;    // enter/exit/send/recv...
  std::uint32_t region;  // instrumented region id
};
inline constexpr std::uint64_t kTraceEventBytes = 16;

// Generate a deterministic event stream (enter/exit nesting plus message
// events) of exactly `nevents` events for `rank`.
std::vector<TraceEvent> trace_generate(int rank, std::uint64_t nevents,
                                       std::uint64_t seed);
std::vector<std::byte> trace_serialize(const std::vector<TraceEvent>& events);
Result<std::vector<TraceEvent>> trace_deserialize(
    std::span<const std::byte> bytes);

enum class TraceBackend : std::uint8_t { kSion, kTaskLocal };

struct TracerSpec {
  std::string path;  // multifile name / task-file prefix
  TraceBackend backend = TraceBackend::kSion;
  int nfiles = 1;                 // SION backend
  std::uint64_t fsblksize = 0;    // SION backend
  std::uint64_t buffer_bytes = 0;  // expected trace volume per task (chunk)
  bool compress = false;           // frame-compress at flush (ext/compress.h)
  // Framing knobs when `compress` is set; the shared framer gives trace
  // streams the same sync-marker + CRC32C corruption tolerance as
  // compressed checkpoints.
  ext::CompressionSpec compression;

  // Benchmark mode: flush writes this many synthetic payload bytes instead
  // of the recorded events (compression is modelled as already applied —
  // machine-scale runs cannot materialise 1.5 TB of event records).
  std::uint64_t synthetic_bytes = 0;

  // Per-task measurement-system initialisation cost charged at open
  // (buffer allocation, definition handling — Scalasca's activation is more
  // than file creation: the paper notes creation was only ~1 s of the
  // 28.1 s SIONlib activation).
  double init_seconds = 0.0;
};

// A per-task tracer. `open` is the experiment *activation* the paper's
// Table 2 times; `flush_and_close` writes the buffered events.
class Tracer {
 public:
  // Collective (even for the task-local backend, which barriers so the
  // activation phase is well-delimited for measurement).
  static Result<std::unique_ptr<Tracer>> open(fs::FileSystem& fs,
                                              par::Comm& comm,
                                              const TracerSpec& spec);

  void record(const TraceEvent& event);
  [[nodiscard]] std::uint64_t buffered_events() const {
    return static_cast<std::uint64_t>(events_.size());
  }

  // Returns payload bytes written (after compression, if enabled).
  Result<std::uint64_t> flush_and_close();

 private:
  Tracer() = default;
  fs::FileSystem* fs_ = nullptr;
  par::Comm* comm_ = nullptr;
  TracerSpec spec_;
  std::unique_ptr<core::SionParFile> sion_;
  std::unique_ptr<baseline::TaskLocalFile> local_;
  std::vector<TraceEvent> events_;
};

// Read one task's trace back (serial, task-local view for the SION backend,
// like Scalasca's analyzer does), decompressing if needed.
Result<std::vector<TraceEvent>> trace_load_rank(fs::FileSystem& fs,
                                                const TracerSpec& spec,
                                                int rank);

}  // namespace sion::workloads
