// CheckpointSession: the multi-checkpoint lifecycle behind the one-shot
// write_checkpoint/read_checkpoint wrappers.
//
//   open(fs, comm, spec) -> write_async(payload) -> Ticket
//                           ... compute ...
//                           wait(ticket) / drain()
//                           close()
//
// Without `spec.staging` every write_async is the classic synchronous
// checkpoint (identical cost to the legacy free function — open/close add no
// I/O and no collectives). With `spec.staging` (kSion strategy only)
// write_async only blocks for the fast-tier absorb; the drain to the
// parallel file system proceeds on the ext::Staging background timelines
// while the application computes, and wait/drain/close synchronise with it.
//
// Consecutive checkpoints alternate between two parallel-tier names
// (checkpoint_name), so an in-flight drain never overwrites the last
// durable checkpoint; a small manifest file ("<path>.manifest", staged mode
// only) records the newest fully drained index and restore_latest uses it
// to recover after a failure — falling back to index 0 (the legacy name)
// when no manifest exists.
//
// All methods are collective over the communicator passed at open; every
// rank holds its own session instance.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "ext/staging.h"
#include "fs/filesystem.h"
#include "par/comm.h"
#include "workloads/checkpoint.h"

namespace sion::workloads {

class CheckpointSession {
 public:
  struct Ticket {
    std::uint64_t index = 0;
  };

  enum class State : std::uint8_t { kInFlight, kComplete, kFailed };

  struct Record {
    std::uint64_t index = 0;
    std::string name;              // parallel-tier (final) checkpoint name
    double snapshot_vtime = 0.0;   // application state the checkpoint holds
    double complete_vtime = 0.0;   // durable on the parallel tier
    State state = State::kInFlight;
  };

  // Collective. Sync mode performs no I/O here; staged mode opens the
  // ext::Staging subsystem (and creates the fast-tier staging directory).
  static Result<std::unique_ptr<CheckpointSession>> open(
      fs::FileSystem& fs, par::Comm& comm, CheckpointSpec spec);

  // Collective write of the next checkpoint: every task contributes
  // `payload`. Sync mode blocks until the checkpoint is durable; staged
  // mode blocks only for the fast-tier absorb (and, when both buffers are
  // in flight, for the oldest one's drain first).
  Result<Ticket> write_async(fs::DataView payload);

  // Collective: block (in virtual time) until `ticket`'s checkpoint is
  // durable on the parallel tier; fails if it was lost en route.
  Status wait(Ticket ticket);

  // Collective: wait for every in-flight checkpoint; returns the first
  // failure but drains the rest regardless.
  Status drain();

  // Collective: drain and close. Idempotent.
  Status close();

  [[nodiscard]] const std::vector<Record>& history() const { return records_; }
  [[nodiscard]] const CheckpointSpec& spec() const { return spec_; }

  // Parallel-tier name of checkpoint `index` under `spec`: index 0 is
  // spec.path itself (the legacy single-checkpoint contract); later indices
  // alternate over max(2, staging buffers) ".v<n>" suffixed names.
  static std::string checkpoint_name(const CheckpointSpec& spec,
                                     std::uint64_t index);

  // Collective read of checkpoint `index` (see read_checkpoint for the
  // expected_bytes/out contract).
  static Status restore(fs::FileSystem& fs, par::Comm& comm,
                        const CheckpointSpec& spec, std::uint64_t index,
                        std::uint64_t expected_bytes, std::span<std::byte> out);

  // Collective: restore the newest durable checkpoint — the manifest's
  // index when present, else index 0. Returns the index restored.
  static Result<std::uint64_t> restore_latest(fs::FileSystem& fs,
                                              par::Comm& comm,
                                              const CheckpointSpec& spec,
                                              std::uint64_t expected_bytes,
                                              std::span<std::byte> out);

 private:
  CheckpointSession(fs::FileSystem& fs, par::Comm& comm, CheckpointSpec spec)
      : fs_(&fs), comm_(&comm), spec_(std::move(spec)) {}

  // The classic synchronous checkpoint write, at an explicit name.
  Status write_now(const std::string& name, fs::DataView payload);

  // Mirror ext::Staging's drain states into records_.
  void sync_records();

  // Staged mode: persist the newest fully drained index (rank 0, free I/O —
  // the drain agent's bookkeeping, not application I/O).
  Status update_manifest();

  fs::FileSystem* fs_;
  par::Comm* comm_;
  CheckpointSpec spec_;
  std::unique_ptr<ext::Staging> staging_;  // null in sync mode
  std::vector<Record> records_;
  std::uint64_t manifest_value_ = 0;
  bool manifest_written_ = false;
  bool closed_ = false;
};

}  // namespace sion::workloads
