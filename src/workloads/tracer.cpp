#include "workloads/tracer.h"

#include "baseline/task_local.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/serial_file.h"
#include "ext/compress.h"
#include "fs/path.h"

namespace sion::workloads {

std::vector<TraceEvent> trace_generate(int rank, std::uint64_t nevents,
                                       std::uint64_t seed) {
  std::vector<TraceEvent> out;
  out.reserve(nevents);
  Rng rng(seed ^ (0xD1B54A32D192ED03ULL * static_cast<std::uint64_t>(rank + 1)));
  std::uint64_t clock = 1000;
  std::vector<std::uint32_t> stack;
  for (std::uint64_t i = 0; i < nevents; ++i) {
    clock += 1 + rng.next_below(100);
    TraceEvent e{};
    e.timestamp = clock;
    const bool may_exit = !stack.empty();
    const int roll = static_cast<int>(rng.next_below(10));
    if (may_exit && roll < 4) {
      e.kind = 1;  // exit
      e.region = stack.back();
      stack.pop_back();
    } else if (roll < 8 || !may_exit) {
      e.kind = 0;  // enter
      e.region = static_cast<std::uint32_t>(rng.next_below(64));
      stack.push_back(e.region);
    } else {
      e.kind = 2;  // message event
      e.region = static_cast<std::uint32_t>(rng.next_below(1024));
    }
    out.push_back(e);
  }
  return out;
}

std::vector<std::byte> trace_serialize(const std::vector<TraceEvent>& events) {
  ByteWriter w;
  for (const auto& e : events) {
    w.put_u64(e.timestamp);
    w.put_u32(e.kind);
    w.put_u32(e.region);
  }
  return w.take();
}

Result<std::vector<TraceEvent>> trace_deserialize(
    std::span<const std::byte> bytes) {
  if (bytes.size() % kTraceEventBytes != 0) {
    return Corrupt("trace data is not a whole number of event records");
  }
  std::vector<TraceEvent> out(bytes.size() / kTraceEventBytes);
  ByteReader r(bytes);
  for (auto& e : out) {
    SION_ASSIGN_OR_RETURN(e.timestamp, r.get_u64());
    SION_ASSIGN_OR_RETURN(e.kind, r.get_u32());
    SION_ASSIGN_OR_RETURN(e.region, r.get_u32());
  }
  return out;
}

Result<std::unique_ptr<Tracer>> Tracer::open(fs::FileSystem& fs,
                                             par::Comm& comm,
                                             const TracerSpec& spec) {
  auto out = std::unique_ptr<Tracer>(new Tracer());
  out->fs_ = &fs;
  out->comm_ = &comm;
  out->spec_ = spec;
  if (spec.backend == TraceBackend::kSion) {
    core::ParOpenSpec open;
    open.filename = spec.path;
    // "a chunk size equal to the amount of uncompressed data was chosen so
    // that only one block of chunks needed to be written" (paper 5.2).
    open.chunksize = std::max<std::uint64_t>(1, spec.buffer_bytes);
    open.nfiles = spec.nfiles;
    open.fsblksize = spec.fsblksize;
    SION_ASSIGN_OR_RETURN(out->sion_,
                          core::SionParFile::open_write(fs, comm, open));
  } else {
    SION_ASSIGN_OR_RETURN(
        auto file,
        baseline::TaskLocalFile::create(fs, fs::parent(spec.path),
                                        fs::basename(spec.path), comm.rank()));
    out->local_ = std::make_unique<baseline::TaskLocalFile>(std::move(file));
    // The task-local layout needs a second per-task file for definition
    // records (the SION backend keeps them inside the task's logical file),
    // doubling the pressure on the directory at activation.
    SION_ASSIGN_OR_RETURN(
        auto defs,
        baseline::TaskLocalFile::create(fs, fs::parent(spec.path),
                                        fs::basename(spec.path) + ".defs",
                                        comm.rank()));
    (void)defs;
    comm.barrier();  // activation is collective for measurement
  }
  if (spec.init_seconds > 0.0 && par::this_task() != nullptr) {
    par::this_task()->compute(spec.init_seconds);
    comm.barrier();
  }
  return out;
}

void Tracer::record(const TraceEvent& event) { events_.push_back(event); }

Result<std::uint64_t> Tracer::flush_and_close() {
  std::vector<std::byte> raw;
  std::vector<std::byte> framed;
  fs::DataView payload = fs::DataView::fill(std::byte{'e'}, spec_.synthetic_bytes);
  if (spec_.synthetic_bytes == 0) {
    raw = trace_serialize(events_);
    if (spec_.compress) {
      SION_ASSIGN_OR_RETURN(framed,
                            ext::compress_stream(raw, spec_.compression));
      payload = fs::DataView(framed);
    } else {
      payload = fs::DataView(raw);
    }
  }

  std::uint64_t written = 0;
  if (spec_.backend == TraceBackend::kSion) {
    SION_ASSIGN_OR_RETURN(written, sion_->write(payload));
    SION_RETURN_IF_ERROR(sion_->close());
    sion_.reset();
  } else {
    SION_ASSIGN_OR_RETURN(written, local_->write(payload));
    comm_->barrier();
  }
  events_.clear();
  return written;
}

Result<std::vector<TraceEvent>> trace_load_rank(fs::FileSystem& fs,
                                                const TracerSpec& spec,
                                                int rank) {
  std::vector<std::byte> raw;
  if (spec.backend == TraceBackend::kSion) {
    SION_ASSIGN_OR_RETURN(auto sion,
                          core::SionSerialFile::open_rank(fs, spec.path, rank));
    SION_ASSIGN_OR_RETURN(raw, sion->read_logical(rank));
    SION_RETURN_IF_ERROR(sion->close());
  } else {
    const std::string path =
        baseline::task_file_path(fs::parent(spec.path),
                                 fs::basename(spec.path), rank);
    SION_ASSIGN_OR_RETURN(auto file, fs.open_read(path));
    SION_ASSIGN_OR_RETURN(const fs::FileStat st, file->stat());
    raw.resize(st.size);
    SION_ASSIGN_OR_RETURN(const std::uint64_t n, file->pread(raw, 0));
    raw.resize(n);
  }
  if (spec.compress) {
    SION_ASSIGN_OR_RETURN(const std::vector<std::byte> decoded,
                          ext::decompress_stream(raw));
    return trace_deserialize(decoded);
  }
  return trace_deserialize(raw);
}

}  // namespace sion::workloads
