#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>

namespace sion {

namespace {
std::atomic<int> g_level{-1};

LogLevel level_from_env() {
  const char* env = std::getenv("SION_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::mutex g_log_mutex;
}  // namespace

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(level_from_env());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* file, int line,
                 const std::string& message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_tag(level), basename_of(file),
               line, message.c_str());
}

namespace detail {

CheckFailure::CheckFailure(const char* file, int line, const char* cond)
    : file_(file), line_(line), cond_(cond) {}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "[FATAL %s:%d] CHECK failed: %s %s\n",
               basename_of(file_), line_, cond_, stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace sion
