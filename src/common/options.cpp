#include "common/options.h"

#include <cstdlib>

#include "common/strings.h"
#include "common/units.h"

namespace sion {

Options::Options(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flags_done || !starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      // Conventional end-of-flags separator: everything after it is
      // positional, and the "--" itself is consumed.
      flags_done = true;
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      // Bare --flag is boolean true. Values always use --name=value; a
      // space-separated form would be ambiguous against positionals.
      flags_[body] = "true";
    }
  }
}

bool Options::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Options::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::uint64_t Options::get_u64(const std::string& name,
                               std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return parse_size(it->second);
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace sion
