// Deterministic pseudo-random number generation for workload generators and
// property tests. Uses SplitMix64 for seeding and xoshiro256** as the stream
// generator — fast, reproducible across platforms, and independent of libc.
#pragma once

#include <cstdint>
#include <span>

namespace sion {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5105C09) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  double next_double() {  // [0, 1)
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  void fill_bytes(std::span<std::byte> out) {
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
      const std::uint64_t word = next_u64();
      for (int b = 0; b < 8; ++b) {
        out[i + static_cast<std::size_t>(b)] =
            static_cast<std::byte>((word >> (8 * b)) & 0xFF);
      }
      i += 8;
    }
    if (i < out.size()) {
      const std::uint64_t word = next_u64();
      for (int b = 0; i < out.size() && b < 8; ++i, ++b) {
        out[i] = static_cast<std::byte>((word >> (8 * b)) & 0xFF);
      }
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace sion
