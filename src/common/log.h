// Minimal leveled logging to stderr. Benchmarks and the DES engine log at
// kDebug; tools log at kInfo. The level is process-global and settable via
// the SION_LOG_LEVEL environment variable (error|warn|info|debug|trace).
#pragma once

#include <sstream>
#include <string>

namespace sion {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

LogLevel log_level();
void set_log_level(LogLevel level);
void log_message(LogLevel level, const char* file, int line,
                 const std::string& message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { log_message(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sion

#define SION_LOG(level)                                  \
  if (static_cast<int>(level) > static_cast<int>(::sion::log_level())) { \
  } else                                                 \
    ::sion::detail::LogLine(level, __FILE__, __LINE__)

#define SION_LOG_ERROR SION_LOG(::sion::LogLevel::kError)
#define SION_LOG_WARN SION_LOG(::sion::LogLevel::kWarn)
#define SION_LOG_INFO SION_LOG(::sion::LogLevel::kInfo)
#define SION_LOG_DEBUG SION_LOG(::sion::LogLevel::kDebug)
#define SION_LOG_TRACE SION_LOG(::sion::LogLevel::kTrace)

// Assertion for programming errors (never for expected failures).
#define SION_CHECK(cond)                                                     \
  if (cond) {                                                                \
  } else                                                                     \
    ::sion::detail::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace sion::detail {
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* cond);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* cond_;
  std::ostringstream stream_;
};
}  // namespace sion::detail
