// Error handling primitives used throughout the library.
//
// We follow the "status or value" idiom: fallible operations return either a
// `Status` (when there is no payload) or a `Result<T>` (status + value).
// Exceptions are reserved for programming errors (assertion-style), never for
// expected failure modes such as "file not found" or "quota exceeded".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sion {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kPermissionDenied,
  kQuotaExceeded,
  kCorrupt,
  kIoError,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

constexpr std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kQuotaExceeded: return "QUOTA_EXCEEDED";
    case ErrorCode::kCorrupt: return "CORRUPT";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

// A cheap, copyable status object. The OK status carries no allocation.
//
// The class itself is [[nodiscard]]: any call that returns a Status by value
// and ignores it is a compile-time warning (an error under SION_WERROR).
// Silently dropped I/O errors are exactly the bug class the recovery
// batteries exist to catch at runtime; this catches them at build time.
// Deliberate discards (e.g. best-effort cleanup) must be spelled
// `std::ignore = ...` or `static_cast<void>(...)` so the intent is visible.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (ok()) return "OK";
    std::string out(sion::to_string(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {ErrorCode::kPermissionDenied, std::move(msg)};
}
inline Status QuotaExceeded(std::string msg) {
  return {ErrorCode::kQuotaExceeded, std::move(msg)};
}
inline Status Corrupt(std::string msg) {
  return {ErrorCode::kCorrupt, std::move(msg)};
}
inline Status IoError(std::string msg) {
  return {ErrorCode::kIoError, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

// Status + value. `value()` must only be called when `ok()`.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    // A Result must never hold an OK status without a value; that would make
    // value() unusable while ok() reports success.
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status(ErrorCode::kInternal, "Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(payload_); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  [[nodiscard]] T& value() & { return std::get<T>(payload_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(payload_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(payload_)); }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace sion

// Propagate a non-OK Status from the current function.
#define SION_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::sion::Status sion_status_ = (expr);         \
    if (!sion_status_.ok()) return sion_status_;  \
  } while (0)

#define SION_CONCAT_INNER(a, b) a##b
#define SION_CONCAT(a, b) SION_CONCAT_INNER(a, b)

// Evaluate `rexpr` (a Result<T>); on error propagate the status, otherwise
// bind the value to `lhs`.
#define SION_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto SION_CONCAT(sion_result_, __LINE__) = (rexpr);           \
  if (!SION_CONCAT(sion_result_, __LINE__).ok())                \
    return SION_CONCAT(sion_result_, __LINE__).status();        \
  lhs = std::move(SION_CONCAT(sion_result_, __LINE__)).value()
