// Tiny command-line option parser for the tools and benchmark binaries.
// Supports --name=value, --name value, bare --flag (boolean true), and
// positional arguments. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sion {

class Options {
 public:
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback = "") const;
  // Understands k/m/g/t suffixes via parse_size().
  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback = 0) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sion
