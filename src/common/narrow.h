// Checked integral narrowing. Bench sweeps take task counts as u64 command
// line options and scale them by doubles; at million-task scales a silent
// `static_cast<int>` truncation turns "16Mi tasks" into garbage without a
// diagnostic. These helpers fail loudly (SION_CHECK -> abort) instead.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/log.h"

namespace sion {

// Lossless integral -> integral conversion; aborts when the value does not
// round-trip (out of range for To, or sign lost).
template <typename To, typename From>
[[nodiscard]] To checked_narrow(From value) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_narrow is for integral types");
  const To narrowed = static_cast<To>(value);
  SION_CHECK(static_cast<From>(narrowed) == value &&
             ((narrowed < To{}) == (value < From{})))
      << "integer narrowing lost value: " << value;
  return narrowed;
}

// Truncating double -> integral conversion that aborts on NaN/inf or when the
// truncated value cannot be represented in To. Used for `count * scale`
// bench math, which intends C-style truncation toward zero.
template <typename To>
[[nodiscard]] To checked_trunc(double value) {
  static_assert(std::is_integral_v<To>,
                "checked_trunc converts to integral types");
  SION_CHECK(std::isfinite(value))
      << "checked_trunc of non-finite value " << value;
  const double truncated = std::trunc(value);
  // Exact bounds: compare in double space against [min, max] of To. The
  // max+1 form is exact for power-of-two ranges where max itself may not be.
  const double lo = static_cast<double>(std::numeric_limits<To>::min());
  const double hi_plus_1 =
      static_cast<double>(std::numeric_limits<To>::max() / 2 + 1) * 2.0;
  SION_CHECK(truncated >= lo && truncated < hi_plus_1)
      << "checked_trunc out of range: " << value;
  return static_cast<To>(truncated);
}

}  // namespace sion
