#include "common/units.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace sion {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kTiB) {
    std::snprintf(buf, sizeof(buf), "%.1f TiB",
                  static_cast<double>(bytes) / static_cast<double>(kTiB));
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_second) {
  char buf[64];
  const double mb = bytes_per_second / 1.0e6;
  if (mb >= 10000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f GB/s", mb / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f MB/s", mb);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else if (seconds >= 1.0e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1.0e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1.0e6);
  }
  return buf;
}

std::string format_tasks(std::uint64_t n) {
  if (n >= kMiB && n % kMiB == 0) {
    return std::to_string(n / kMiB) + "Mi";
  }
  if (n >= kKiB && n % kKiB == 0) {
    return std::to_string(n / kKiB) + "Ki";
  }
  return std::to_string(n);
}

std::uint64_t parse_size(const std::string& text) {
  if (text.empty()) return 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  // !(value >= 0) also rejects NaN, which compares false to everything.
  if (end == text.c_str() || !(value >= 0.0)) return 0;
  std::uint64_t multiplier = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': multiplier = kKiB; break;
      case 'm': multiplier = kMiB; break;
      case 'g': multiplier = kGiB; break;
      case 't': multiplier = kTiB; break;
      default: return 0;
    }
    ++end;
    // Spelled-out binary suffix ("Ki", "KiB"); a bare "b" without the "i"
    // stays rejected — it would suggest a decimal unit we don't use.
    if (std::tolower(static_cast<unsigned char>(*end)) == 'i') {
      ++end;
      if (std::tolower(static_cast<unsigned char>(*end)) == 'b') ++end;
    }
  }
  if (*end != '\0') return 0;  // trailing garbage after the unit suffix
  const double scaled = value * static_cast<double>(multiplier);
  if (scaled >=
      static_cast<double>(std::numeric_limits<std::uint64_t>::max())) {
    return 0;  // would overflow u64 (also catches "1e30" etc.)
  }
  return static_cast<std::uint64_t>(std::round(scaled));
}

}  // namespace sion
