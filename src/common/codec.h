// Byte-order-safe binary encoding, used by the SION multifile format.
//
// Everything on disk is little-endian regardless of host order, so multifiles
// written on one machine are readable on another (the paper's multifile is
// explicitly accessible "both from a parallel and a serial application",
// possibly on a different frontend architecture).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sion {

namespace detail {
template <typename T>
inline T load_le(const std::byte* p) {
  T v{};
  std::memcpy(&v, p, sizeof(T));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  if constexpr (sizeof(T) == 2) v = static_cast<T>(__builtin_bswap16(v));
  if constexpr (sizeof(T) == 4) v = static_cast<T>(__builtin_bswap32(v));
  if constexpr (sizeof(T) == 8) v = static_cast<T>(__builtin_bswap64(v));
#endif
  return v;
}

template <typename T>
inline void store_le(std::byte* p, T v) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  if constexpr (sizeof(T) == 2) v = static_cast<T>(__builtin_bswap16(v));
  if constexpr (sizeof(T) == 4) v = static_cast<T>(__builtin_bswap32(v));
  if constexpr (sizeof(T) == 8) v = static_cast<T>(__builtin_bswap64(v));
#endif
  std::memcpy(p, &v, sizeof(T));
}
}  // namespace detail

// Append-only encoder producing a contiguous byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  template <typename T>
  void put_le(T v) {
    static_assert(sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8);
    const std::size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    detail::store_le(buf_.data() + at, v);
  }

  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  void put_bytes(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  // Length-prefixed (u32) string.
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  // Length-prefixed (u64 count) array of u64 values.
  void put_u64_array(std::span<const std::uint64_t> values) {
    put_u64(values.size());
    for (std::uint64_t v : values) put_u64(v);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }

  // Pad the buffer with zero bytes up to `target` size.
  void pad_to(std::size_t target) {
    if (buf_.size() < target) buf_.resize(target, std::byte{0});
  }

 private:
  std::vector<std::byte> buf_;
};

// Cursor-based decoder over a byte span. All reads are bounds-checked and
// report kCorrupt on truncation, because the dominant caller is the multifile
// metadata parser reading possibly-damaged files.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  Status skip(std::size_t n) {
    if (remaining() < n) return Corrupt("truncated input while skipping");
    pos_ += n;
    return Status::Ok();
  }

  Result<std::uint8_t> get_u8() {
    if (remaining() < 1) return Corrupt("truncated u8");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  template <typename T>
  Result<T> get_le() {
    static_assert(sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8);
    if (remaining() < sizeof(T)) return Corrupt("truncated integer");
    T v = detail::load_le<T>(data_.data() + pos_);
    pos_ += sizeof(T);
    return v;
  }

  Result<std::uint16_t> get_u16() { return get_le<std::uint16_t>(); }
  Result<std::uint32_t> get_u32() { return get_le<std::uint32_t>(); }
  Result<std::uint64_t> get_u64() { return get_le<std::uint64_t>(); }
  Result<std::int64_t> get_i64() {
    SION_ASSIGN_OR_RETURN(std::uint64_t raw, get_u64());
    return static_cast<std::int64_t>(raw);
  }

  Result<double> get_f64() {
    SION_ASSIGN_OR_RETURN(std::uint64_t bits, get_u64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> get_string() {
    SION_ASSIGN_OR_RETURN(std::uint32_t n, get_u32());
    if (remaining() < n) return Corrupt("truncated string payload");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Result<std::vector<std::uint64_t>> get_u64_array() {
    SION_ASSIGN_OR_RETURN(std::uint64_t n, get_u64());
    if (remaining() / sizeof(std::uint64_t) < n) {
      return Corrupt("truncated u64 array");
    }
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      out.push_back(detail::load_le<std::uint64_t>(data_.data() + pos_));
      pos_ += sizeof(std::uint64_t);
    }
    return out;
  }

  Result<std::span<const std::byte>> get_bytes(std::size_t n) {
    if (remaining() < n) return Corrupt("truncated byte payload");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// Convenience converters between byte spans and char data.
inline std::span<const std::byte> as_bytes_view(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}
inline std::string_view as_string_view(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace sion
