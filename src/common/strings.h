// Small string helpers shared by the tools and option parsing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sion {

std::vector<std::string> split(std::string_view text, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string_view trim(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sion
