// Size and time units plus human-readable formatting, used by tools and the
// benchmark harness when printing paper-style tables.
#pragma once

#include <cstdint>
#include <string>

namespace sion {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;
inline constexpr std::uint64_t kTiB = 1024 * kGiB;

// "1.5 GiB", "512 B", ...
std::string format_bytes(std::uint64_t bytes);

// "2153.4 MB/s" style rate formatting (decimal MB, matching the paper).
std::string format_bandwidth(double bytes_per_second);

// "369.1 s", "28 ms", ...
std::string format_seconds(double seconds);

// "64Ki", "2Mi", "768" — task counts with explicit binary suffixes, matching
// the paper's "64Ki cores" style and format_bytes' Ki/Mi prefixes. Counts
// that are not whole binary multiples print as plain decimal.
std::string format_tasks(std::uint64_t n);

// Parse "64k", "64Ki", "2M", "1GiB", "4096" into a count/byte value. The
// k/m/g/t suffixes are binary multiples (matching how the paper writes task
// counts: 64K = 65536), optionally spelled out as Ki/KiB etc., so every
// string format_tasks emits parses back. Returns 0 on failure.
std::uint64_t parse_size(const std::string& text);

// Round `value` up to the next multiple of `granule` (granule > 0).
constexpr std::uint64_t round_up(std::uint64_t value, std::uint64_t granule) {
  return (value + granule - 1) / granule * granule;
}

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

constexpr bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace sion
