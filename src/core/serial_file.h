// Serial access to SION multifiles — the analog of the paper's sion_open /
// sion_open_rank / sion_seek / sion_get_locations family (sections 3.2.3,
// 3.2.4). This is the foundation of the command-line utilities: a serial
// program can create a multifile for any number of logical tasks, read one
// logical file out of it (task-local view), or walk all of them (global
// view).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/filemap.h"
#include "core/layout.h"
#include "core/metadata.h"
#include "fs/filesystem.h"

namespace sion::core {

struct SerialWriteSpec {
  std::string filename;
  std::vector<std::uint64_t> chunksizes;  // one per logical task (rank)
  int nfiles = 1;
  std::uint64_t fsblksize = 0;  // 0 = detect from the file system
  Mapping mapping = Mapping::kContiguous;
  std::vector<int> custom_file_of_rank;
  bool chunk_frames = false;
};

class SionSerialFile {
 public:
  // Create a multifile set from a serial program (paper Listing 3): the
  // whole array of chunk sizes is supplied because there are no tasks to
  // gather it from.
  static Result<std::unique_ptr<SionSerialFile>> open_write(
      fs::FileSystem& fs, const SerialWriteSpec& spec);

  // Global view (paper Listing 5): all logical files are accessible;
  // locations() exposes the full metadata for choosing seek targets.
  static Result<std::unique_ptr<SionSerialFile>> open_read(
      fs::FileSystem& fs, const std::string& name);

  // Task-local view (paper Listing 4): like open_read but the cursor is
  // pinned to one rank.
  static Result<std::unique_ptr<SionSerialFile>> open_rank(
      fs::FileSystem& fs, const std::string& name, int rank);

  ~SionSerialFile();
  SionSerialFile(const SionSerialFile&) = delete;
  SionSerialFile& operator=(const SionSerialFile&) = delete;

  // ---- metadata (sion_get_locations) --------------------------------------
  struct Locations {
    int nranks = 0;
    int nfiles = 1;
    std::uint64_t fsblksize = 0;
    bool chunk_frames = false;
    std::vector<std::uint64_t> chunksizes;                // requested, per rank
    std::vector<std::vector<std::uint64_t>> bytes_written;  // per rank per chunk
    std::vector<int> file_of_rank;
    std::vector<std::string> physical_paths;  // per physical file
  };
  [[nodiscard]] const Locations& locations() const { return locations_; }

  // ---- navigation -----------------------------------------------------------
  // Position the cursor at byte `pos` of chunk `block` of logical file
  // `rank` (sion_seek). In a task-local view, `rank` must match the pinned
  // rank.
  Status seek(int rank, std::uint64_t block, std::uint64_t pos);

  [[nodiscard]] int current_rank() const { return rank_; }
  [[nodiscard]] std::uint64_t current_block() const { return block_; }
  [[nodiscard]] std::uint64_t position_in_chunk() const { return pos_; }

  // ---- I/O at the cursor ------------------------------------------------------
  Status ensure_free_space(std::uint64_t nbytes);
  Result<std::uint64_t> write_raw(fs::DataView data);
  Result<std::uint64_t> write(fs::DataView data);

  [[nodiscard]] bool eof() const;
  [[nodiscard]] std::uint64_t bytes_avail_in_chunk() const;
  Result<std::uint64_t> read_raw(std::span<std::byte> out);
  Result<std::uint64_t> read(std::span<std::byte> out);

  // ---- positioned logical-stream access ------------------------------------
  // Total payload bytes of logical file `rank` (sum over its chunks).
  [[nodiscard]] std::uint64_t logical_bytes(int rank) const;

  // Read bytes [offset, offset + out.size()) of logical file `rank`,
  // crossing chunk blocks as needed. Positioned: the cursor is untouched, so
  // interleaved range reads of different ranks never interfere (the
  // foundation of ext::Remap's N->M stream redistribution). Returns the
  // bytes delivered, which is short only when the stream ends.
  Result<std::uint64_t> read_at(int rank, std::uint64_t offset,
                                std::span<std::byte> out);

  // The entire logical stream of `rank` as one buffer, via positioned reads
  // (cursor untouched). This is the raw-byte foundation of the transparent
  // decompression layer (ext/compress.h) and of trace post-processing.
  Result<std::vector<std::byte>> read_logical(int rank);

  // Write mode: writes all metablocks 2 and patches trailers.
  Status close();

 private:
  struct PhysicalFile {
    std::string path;
    std::unique_ptr<fs::File> file;
    FileHeader header;
    FileLayout layout;
    std::vector<int> local_of_rank_slot;  // local index per header slot
  };

  SionSerialFile() = default;

  static Result<std::unique_ptr<SionSerialFile>> open_existing(
      fs::FileSystem& fs, const std::string& name, int pinned_rank,
      bool writable);

  [[nodiscard]] std::uint64_t capacity(int rank) const;
  [[nodiscard]] std::uint64_t chunk_file_offset(int rank,
                                                std::uint64_t block) const;
  [[nodiscard]] fs::File& file_of(int rank) const;
  Status write_frame(int rank, std::uint64_t block);
  Status patch_frame(int rank, std::uint64_t block);
  Status advance_chunk_write();

  fs::FileSystem* fs_ = nullptr;
  bool writable_ = false;
  bool closed_ = false;
  int pinned_rank_ = -1;  // >= 0: task-local view
  Locations locations_;
  std::vector<PhysicalFile> physical_;
  std::vector<int> local_index_;  // per rank, index within its file

  // Cursor.
  int rank_ = 0;
  std::uint64_t block_ = 0;
  std::uint64_t pos_ = 0;
};

}  // namespace sion::core
