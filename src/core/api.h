// Umbrella header: everything an application needs to use the SION core
// library. See README.md for a quickstart and examples/ for runnable code.
#pragma once

#include "core/filemap.h"      // task -> physical file mappings
#include "core/layout.h"       // multifile geometry
#include "core/metadata.h"     // on-disk metablocks
#include "core/par_file.h"     // collective parallel open/close, read/write
#include "core/serial_file.h"  // serial global-view / task-local access
