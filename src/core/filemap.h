// Task-to-physical-file mapping for multifiles with several underlying
// physical files (paper Fig. 2(d)): every task lands in exactly one file,
// the user chooses how many files and, if desired, the exact mapping (e.g.,
// one physical file per Blue Gene I/O node).
//
// The built-in mappings are *computed*, not materialised: every task of a
// collective open holds a FileMap while blocked, so per-task O(ntasks)
// storage would make opens O(ntasks^2) memory at 64 Ki tasks. Only custom
// mappings carry arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace sion::core {

enum class Mapping : std::uint8_t {
  kContiguous,  // ranks [i*N/F, (i+1)*N/F) share file i (default)
  kRoundRobin,  // rank r -> file r % F
  kCustom,      // caller-supplied file index per rank
};

class FileMap {
 public:
  static Result<FileMap> contiguous(int ntasks, int nfiles);
  static Result<FileMap> round_robin(int ntasks, int nfiles);
  static Result<FileMap> custom(std::vector<int> file_of_rank, int nfiles);
  static Result<FileMap> make(Mapping mapping, int ntasks, int nfiles,
                              const std::vector<int>& custom_map);

  [[nodiscard]] int nfiles() const { return nfiles_; }
  [[nodiscard]] int ntasks() const { return ntasks_; }
  [[nodiscard]] int file_of(int rank) const;
  // Index of `rank` among the tasks of its file, in ascending rank order.
  [[nodiscard]] int local_index(int rank) const;
  [[nodiscard]] int tasks_in_file(int filenum) const;

 private:
  FileMap(Mapping kind, int ntasks, int nfiles)
      : kind_(kind), ntasks_(ntasks), nfiles_(nfiles) {}

  // First global rank mapped to file `f` under the contiguous scheme.
  [[nodiscard]] int contiguous_first_rank(int f) const;

  Mapping kind_;
  int ntasks_;
  int nfiles_;
  // Populated for kCustom only.
  std::vector<int> custom_file_of_rank_;
  std::vector<int> custom_local_index_;
  std::vector<int> custom_tasks_in_file_;
};

}  // namespace sion::core
