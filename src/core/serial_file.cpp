#include "core/serial_file.h"

#include <algorithm>

#include "common/codec.h"
#include "common/log.h"
#include "common/strings.h"
#include "common/units.h"
#include "fs/path.h"

namespace sion::core {

namespace {
constexpr char kFrameMagic[8] = {'S', 'I', 'O', 'N', 'F', 'R', 'M', '1'};
}

// ---------------------------------------------------------------------------
// open for writing
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SionSerialFile>> SionSerialFile::open_write(
    fs::FileSystem& fs, const SerialWriteSpec& spec) {
  const int nranks = static_cast<int>(spec.chunksizes.size());
  if (nranks == 0) return InvalidArgument("chunksizes must not be empty");
  SION_ASSIGN_OR_RETURN(
      const FileMap map,
      FileMap::make(spec.mapping, nranks, spec.nfiles,
                    spec.custom_file_of_rank));

  std::uint64_t fsblksize = spec.fsblksize;
  if (fsblksize == 0) {
    SION_ASSIGN_OR_RETURN(fsblksize,
                          fs.block_size(fs::parent(spec.filename)));
  }
  if (!is_power_of_two(fsblksize)) {
    return InvalidArgument("file-system block size must be a power of two");
  }

  auto out = std::unique_ptr<SionSerialFile>(new SionSerialFile());
  out->fs_ = &fs;
  out->writable_ = true;
  out->locations_.nranks = nranks;
  out->locations_.nfiles = map.nfiles();
  out->locations_.fsblksize = fsblksize;
  out->locations_.chunk_frames = spec.chunk_frames;
  out->locations_.chunksizes = spec.chunksizes;
  out->locations_.bytes_written.assign(
      static_cast<std::size_t>(nranks), std::vector<std::uint64_t>{0});
  out->locations_.file_of_rank.resize(static_cast<std::size_t>(nranks));
  out->local_index_.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    out->locations_.file_of_rank[static_cast<std::size_t>(r)] = map.file_of(r);
    out->local_index_[static_cast<std::size_t>(r)] = map.local_index(r);
  }

  for (int f = 0; f < map.nfiles(); ++f) {
    FileHeader header;
    header.flags = spec.chunk_frames ? kFlagChunkFrames : 0;
    header.fsblksize = fsblksize;
    header.ntasks = static_cast<std::uint32_t>(map.tasks_in_file(f));
    header.nfiles = static_cast<std::uint32_t>(map.nfiles());
    header.filenum = static_cast<std::uint32_t>(f);
    for (int r = 0; r < nranks; ++r) {
      if (map.file_of(r) == f) {
        header.global_ranks.push_back(static_cast<std::uint64_t>(r));
        header.chunksizes_req.push_back(
            spec.chunksizes[static_cast<std::size_t>(r)]);
      }
    }
    const std::vector<std::byte> meta1 = header.serialize();
    SION_ASSIGN_OR_RETURN(
        FileLayout layout,
        FileLayout::create(fsblksize, header.chunksizes_req, meta1.size()));
    const std::string path =
        physical_file_name(spec.filename, f, map.nfiles());
    SION_ASSIGN_OR_RETURN(auto file, fs.create(path));
    SION_ASSIGN_OR_RETURN(std::uint64_t n,
                          file->pwrite(fs::DataView(meta1), 0));
    (void)n;
    out->locations_.physical_paths.push_back(path);
    out->physical_.push_back(PhysicalFile{path, std::move(file),
                                          std::move(header),
                                          std::move(layout),
                                          {}});
  }

  if (spec.chunk_frames) {
    for (int r = 0; r < nranks; ++r) {
      SION_RETURN_IF_ERROR(out->write_frame(r, 0));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// open for reading
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SionSerialFile>> SionSerialFile::open_existing(
    fs::FileSystem& fs, const std::string& name, int pinned_rank,
    bool writable) {
  (void)writable;
  std::string first = name;
  if (!fs.exists(first)) first = physical_file_name(name, 0, 2);

  auto out = std::unique_ptr<SionSerialFile>(new SionSerialFile());
  out->fs_ = &fs;
  out->writable_ = false;
  out->pinned_rank_ = pinned_rank;

  SION_ASSIGN_OR_RETURN(auto file0, fs.open_read(first));
  SION_ASSIGN_OR_RETURN(FileHeader h0, read_header(*file0));
  const int nfiles = static_cast<int>(h0.nfiles);
  out->locations_.nfiles = nfiles;
  out->locations_.fsblksize = h0.fsblksize;
  out->locations_.chunk_frames = (h0.flags & kFlagChunkFrames) != 0;

  // First pass: parse every physical file's metadata and find the total
  // number of logical files.
  std::uint64_t nranks = 0;
  std::vector<FileHeader> headers;
  std::vector<std::unique_ptr<fs::File>> files;
  std::vector<FileMeta2> meta2s;
  for (int f = 0; f < nfiles; ++f) {
    std::unique_ptr<fs::File> file;
    FileHeader header;
    if (f == 0) {
      file = std::move(file0);
      header = std::move(h0);
    } else {
      SION_ASSIGN_OR_RETURN(file,
                            fs.open_read(physical_file_name(name, f, nfiles)));
      SION_ASSIGN_OR_RETURN(header, read_header(*file));
    }
    SION_ASSIGN_OR_RETURN(FileMeta2 meta2, read_meta2(*file, header));
    if (meta2.bytes_written.size() != header.ntasks) {
      return Corrupt("metablock 2 task count mismatch");
    }
    for (const std::uint64_t r : header.global_ranks) {
      nranks = std::max(nranks, r + 1);
    }
    headers.push_back(std::move(header));
    files.push_back(std::move(file));
    meta2s.push_back(std::move(meta2));
  }

  out->locations_.nranks = static_cast<int>(nranks);
  out->locations_.chunksizes.assign(nranks, 0);
  out->locations_.bytes_written.assign(nranks, {});
  out->locations_.file_of_rank.assign(nranks, -1);
  out->local_index_.assign(nranks, -1);

  for (int f = 0; f < nfiles; ++f) {
    FileHeader& header = headers[static_cast<std::size_t>(f)];
    const std::vector<std::byte> meta1 = header.serialize();
    SION_ASSIGN_OR_RETURN(
        FileLayout layout,
        FileLayout::create(header.fsblksize, header.chunksizes_req,
                           meta1.size()));
    for (std::uint32_t slot = 0; slot < header.ntasks; ++slot) {
      const std::uint64_t r = header.global_ranks[slot];
      if (out->locations_.file_of_rank[r] != -1) {
        return Corrupt(strformat("rank %llu appears in two physical files",
                                 static_cast<unsigned long long>(r)));
      }
      out->locations_.file_of_rank[r] = f;
      out->local_index_[r] = static_cast<int>(slot);
      out->locations_.chunksizes[r] = header.chunksizes_req[slot];
      out->locations_.bytes_written[r] =
          meta2s[static_cast<std::size_t>(f)].bytes_written[slot];
      if (out->locations_.bytes_written[r].empty()) {
        out->locations_.bytes_written[r].assign(1, 0);
      }
    }
    const std::string path = physical_file_name(name, f, nfiles);
    out->locations_.physical_paths.push_back(path);
    out->physical_.push_back(PhysicalFile{
        path, std::move(files[static_cast<std::size_t>(f)]),
        std::move(header), std::move(layout), {}});
  }
  for (std::uint64_t r = 0; r < nranks; ++r) {
    if (out->locations_.file_of_rank[r] == -1) {
      return Corrupt(strformat("rank %llu missing from the multifile set",
                               static_cast<unsigned long long>(r)));
    }
  }

  if (pinned_rank >= 0) {
    if (pinned_rank >= static_cast<int>(nranks)) {
      return InvalidArgument(
          strformat("rank %d out of range [0, %d)", pinned_rank,
                    static_cast<int>(nranks)));
    }
    out->rank_ = pinned_rank;
  }
  return out;
}

Result<std::unique_ptr<SionSerialFile>> SionSerialFile::open_read(
    fs::FileSystem& fs, const std::string& name) {
  return open_existing(fs, name, /*pinned_rank=*/-1, /*writable=*/false);
}

Result<std::unique_ptr<SionSerialFile>> SionSerialFile::open_rank(
    fs::FileSystem& fs, const std::string& name, int rank) {
  if (rank < 0) return InvalidArgument("rank must be non-negative");
  return open_existing(fs, name, rank, /*writable=*/false);
}

SionSerialFile::~SionSerialFile() {
  if (!closed_ && writable_) {
    SION_LOG_WARN << "serial SION file destroyed without close; "
                     "metablock 2 was not written";
  }
}

// ---------------------------------------------------------------------------
// geometry helpers
// ---------------------------------------------------------------------------

std::uint64_t SionSerialFile::capacity(int rank) const {
  const std::uint64_t aligned =
      round_up(locations_.chunksizes[static_cast<std::size_t>(rank)],
               locations_.fsblksize);
  return aligned - (locations_.chunk_frames ? kChunkFrameSize : 0);
}

std::uint64_t SionSerialFile::chunk_file_offset(int rank,
                                                std::uint64_t block) const {
  const auto& pf = physical_[static_cast<std::size_t>(
      locations_.file_of_rank[static_cast<std::size_t>(rank)])];
  const int local = local_index_[static_cast<std::size_t>(rank)];
  return pf.layout.chunk_start(local, block) +
         (locations_.chunk_frames ? kChunkFrameSize : 0);
}

fs::File& SionSerialFile::file_of(int rank) const {
  return *physical_[static_cast<std::size_t>(
                        locations_.file_of_rank[static_cast<std::size_t>(rank)])]
              .file;
}

Status SionSerialFile::write_frame(int rank, std::uint64_t block) {
  ByteWriter w;
  w.put_bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(kFrameMagic), sizeof(kFrameMagic)));
  w.put_u32(static_cast<std::uint32_t>(rank));
  w.put_u32(static_cast<std::uint32_t>(
      local_index_[static_cast<std::size_t>(rank)]));
  w.put_u64(block);
  w.put_u64(0);
  w.put_u64(chunk_frame_checksum(
      static_cast<std::uint32_t>(rank),
      static_cast<std::uint32_t>(local_index_[static_cast<std::size_t>(rank)]),
      block, 0));
  w.pad_to(kChunkFrameSize);
  SION_ASSIGN_OR_RETURN(
      std::uint64_t n,
      file_of(rank).pwrite(fs::DataView(w.bytes()),
                           chunk_file_offset(rank, block) - kChunkFrameSize));
  (void)n;
  return Status::Ok();
}

Status SionSerialFile::patch_frame(int rank, std::uint64_t block) {
  ByteWriter w;
  const std::uint64_t bytes =
      locations_.bytes_written[static_cast<std::size_t>(rank)][block];
  w.put_u64(bytes);
  w.put_u64(chunk_frame_checksum(
      static_cast<std::uint32_t>(rank),
      static_cast<std::uint32_t>(local_index_[static_cast<std::size_t>(rank)]),
      block, bytes));
  SION_ASSIGN_OR_RETURN(
      std::uint64_t n,
      file_of(rank).pwrite(
          fs::DataView(w.bytes()),
          chunk_file_offset(rank, block) - kChunkFrameSize + 24));
  (void)n;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// navigation
// ---------------------------------------------------------------------------

Status SionSerialFile::seek(int rank, std::uint64_t block, std::uint64_t pos) {
  if (rank < 0 || rank >= locations_.nranks) {
    return InvalidArgument(strformat("rank %d out of range", rank));
  }
  if (pinned_rank_ >= 0 && rank != pinned_rank_) {
    return InvalidArgument(
        strformat("task-local view is pinned to rank %d", pinned_rank_));
  }
  auto& chunks = locations_.bytes_written[static_cast<std::size_t>(rank)];
  if (writable_) {
    if (pos > capacity(rank)) {
      return OutOfRange("seek position beyond chunk capacity");
    }
    if (block >= chunks.size()) {
      const std::uint64_t old_blocks = chunks.size();
      chunks.resize(block + 1, 0);
      if (locations_.chunk_frames) {
        for (std::uint64_t b = old_blocks; b <= block; ++b) {
          SION_RETURN_IF_ERROR(write_frame(rank, b));
        }
      }
    }
  } else {
    if (block >= chunks.size()) return OutOfRange("seek beyond last chunk");
    if (pos > chunks[block]) {
      return OutOfRange("seek position beyond data in chunk");
    }
  }
  rank_ = rank;
  block_ = block;
  pos_ = pos;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// write path
// ---------------------------------------------------------------------------

Status SionSerialFile::advance_chunk_write() {
  auto& chunks = locations_.bytes_written[static_cast<std::size_t>(rank_)];
  if (locations_.chunk_frames) SION_RETURN_IF_ERROR(patch_frame(rank_, block_));
  ++block_;
  pos_ = 0;
  if (block_ >= chunks.size()) {
    chunks.resize(block_ + 1, 0);
    if (locations_.chunk_frames) {
      SION_RETURN_IF_ERROR(write_frame(rank_, block_));
    }
  }
  return Status::Ok();
}

Status SionSerialFile::ensure_free_space(std::uint64_t nbytes) {
  if (!writable_) return FailedPrecondition("file opened for reading");
  if (closed_) return FailedPrecondition("file already closed");
  if (nbytes > capacity(rank_)) {
    return InvalidArgument("request exceeds chunk capacity; use write()");
  }
  if (pos_ + nbytes > capacity(rank_)) {
    SION_RETURN_IF_ERROR(advance_chunk_write());
  }
  return Status::Ok();
}

Result<std::uint64_t> SionSerialFile::write_raw(fs::DataView data) {
  if (!writable_) return FailedPrecondition("file opened for reading");
  if (closed_) return FailedPrecondition("file already closed");
  if (data.size() > capacity(rank_) - pos_) {
    return OutOfRange("write does not fit; call ensure_free_space");
  }
  SION_ASSIGN_OR_RETURN(
      const std::uint64_t n,
      file_of(rank_).pwrite(data, chunk_file_offset(rank_, block_) + pos_));
  pos_ += n;
  auto& chunks = locations_.bytes_written[static_cast<std::size_t>(rank_)];
  chunks[block_] = std::max(chunks[block_], pos_);
  if (locations_.chunk_frames) {
    SION_RETURN_IF_ERROR(patch_frame(rank_, block_));
  }
  return n;
}

Result<std::uint64_t> SionSerialFile::write(fs::DataView data) {
  if (!writable_) return FailedPrecondition("file opened for reading");
  if (closed_) return FailedPrecondition("file already closed");
  std::uint64_t done = 0;
  while (done < data.size()) {
    if (pos_ == capacity(rank_)) SION_RETURN_IF_ERROR(advance_chunk_write());
    const std::uint64_t take =
        std::min(capacity(rank_) - pos_, data.size() - done);
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t n,
        file_of(rank_).pwrite(data.subview(done, take),
                              chunk_file_offset(rank_, block_) + pos_));
    pos_ += n;
    auto& chunks = locations_.bytes_written[static_cast<std::size_t>(rank_)];
    chunks[block_] = std::max(chunks[block_], pos_);
    done += n;
    if (locations_.chunk_frames) {
      SION_RETURN_IF_ERROR(patch_frame(rank_, block_));
    }
  }
  return done;
}

// ---------------------------------------------------------------------------
// read path
// ---------------------------------------------------------------------------

bool SionSerialFile::eof() const {
  const auto& chunks =
      locations_.bytes_written[static_cast<std::size_t>(rank_)];
  std::uint64_t b = block_;
  std::uint64_t p = pos_;
  while (b < chunks.size()) {
    if (p < chunks[b]) return false;
    ++b;
    p = 0;
  }
  return true;
}

std::uint64_t SionSerialFile::bytes_avail_in_chunk() const {
  const auto& chunks =
      locations_.bytes_written[static_cast<std::size_t>(rank_)];
  if (block_ >= chunks.size()) return 0;
  return chunks[block_] - pos_;
}

Result<std::uint64_t> SionSerialFile::read_raw(std::span<std::byte> out) {
  if (writable_) return FailedPrecondition("file opened for writing");
  const std::uint64_t want =
      std::min<std::uint64_t>(out.size(), bytes_avail_in_chunk());
  if (want == 0) return static_cast<std::uint64_t>(0);
  SION_ASSIGN_OR_RETURN(
      const std::uint64_t n,
      file_of(rank_).pread(out.subspan(0, want),
                           chunk_file_offset(rank_, block_) + pos_));
  pos_ += n;
  return n;
}

Result<std::uint64_t> SionSerialFile::read(std::span<std::byte> out) {
  if (writable_) return FailedPrecondition("file opened for writing");
  std::uint64_t done = 0;
  while (done < out.size() && !eof()) {
    if (bytes_avail_in_chunk() == 0) {
      ++block_;
      pos_ = 0;
      continue;
    }
    SION_ASSIGN_OR_RETURN(const std::uint64_t n, read_raw(out.subspan(done)));
    done += n;
  }
  return done;
}

// ---------------------------------------------------------------------------
// positioned logical-stream access
// ---------------------------------------------------------------------------

std::uint64_t SionSerialFile::logical_bytes(int rank) const {
  if (rank < 0 || rank >= locations_.nranks) return 0;
  std::uint64_t total = 0;
  for (const std::uint64_t b :
       locations_.bytes_written[static_cast<std::size_t>(rank)]) {
    total += b;
  }
  return total;
}

Result<std::uint64_t> SionSerialFile::read_at(int rank, std::uint64_t offset,
                                              std::span<std::byte> out) {
  if (writable_) return FailedPrecondition("file opened for writing");
  if (closed_) return FailedPrecondition("file already closed");
  if (rank < 0 || rank >= locations_.nranks) {
    return InvalidArgument(strformat("rank %d out of range", rank));
  }
  if (pinned_rank_ >= 0 && rank != pinned_rank_) {
    return InvalidArgument(
        strformat("task-local view is pinned to rank %d", pinned_rank_));
  }
  const auto& chunks = locations_.bytes_written[static_cast<std::size_t>(rank)];
  std::uint64_t done = 0;
  std::uint64_t skip = offset;
  for (std::uint64_t b = 0; b < chunks.size() && done < out.size(); ++b) {
    if (skip >= chunks[b]) {
      skip -= chunks[b];
      continue;
    }
    const std::uint64_t take =
        std::min<std::uint64_t>(chunks[b] - skip, out.size() - done);
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t n,
        file_of(rank).pread(out.subspan(done, take),
                            chunk_file_offset(rank, b) + skip));
    if (n < take) return Corrupt("short read inside a recorded chunk");
    done += n;
    skip = 0;
  }
  return done;
}

Result<std::vector<std::byte>> SionSerialFile::read_logical(int rank) {
  const std::uint64_t total = logical_bytes(rank);
  std::vector<std::byte> out(static_cast<std::size_t>(total));
  SION_ASSIGN_OR_RETURN(const std::uint64_t got, read_at(rank, 0, out));
  if (got != total) {
    return Corrupt(strformat("logical stream of rank %d delivered %llu of "
                             "%llu recorded bytes",
                             rank, static_cast<unsigned long long>(got),
                             static_cast<unsigned long long>(total)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// close
// ---------------------------------------------------------------------------

Status SionSerialFile::close() {
  if (closed_) return FailedPrecondition("file already closed");
  if (writable_) {
    for (auto& pf : physical_) {
      FileMeta2 meta2;
      for (std::uint32_t slot = 0; slot < pf.header.ntasks; ++slot) {
        const std::uint64_t r = pf.header.global_ranks[slot];
        meta2.bytes_written.push_back(locations_.bytes_written[r]);
        if (locations_.chunk_frames) {
          for (std::uint64_t b = 0; b < locations_.bytes_written[r].size();
               ++b) {
            SION_RETURN_IF_ERROR(
                patch_frame(static_cast<int>(r), b));
          }
        }
      }
      const std::uint64_t nblocks =
          std::max<std::uint64_t>(1, meta2.nblocks());
      SION_RETURN_IF_ERROR(write_meta2_and_trailer(
          *pf.file, pf.layout.meta2_offset(nblocks), nblocks, meta2));
    }
  }
  for (auto& pf : physical_) pf.file.reset();
  closed_ = true;
  return Status::Ok();
}

}  // namespace sion::core
