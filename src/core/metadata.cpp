#include "core/metadata.h"

#include <cstring>

#include "common/codec.h"
#include "common/strings.h"

namespace sion::core {

std::vector<std::byte> FileHeader::serialize() const {
  ByteWriter w;
  w.put_bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(kMagic), sizeof(kMagic)));
  w.put_u32(version);
  w.put_u8(flags);
  w.put_u8(0);
  w.put_u16(0);
  // Trailer fields at fixed offsets 16 and 24 (patched at close).
  w.put_u64(nblocks);
  w.put_u64(meta2_offset);
  w.put_u64(fsblksize);
  w.put_u32(ntasks);
  w.put_u32(nfiles);
  w.put_u32(filenum);
  w.put_u32(0);
  w.put_u64_array(global_ranks);
  w.put_u64_array(chunksizes_req);
  return w.take();
}

Result<FileHeader> FileHeader::parse(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  SION_ASSIGN_OR_RETURN(auto magic, r.get_bytes(sizeof(kMagic)));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic: not a SION multifile");
  }
  FileHeader h;
  SION_ASSIGN_OR_RETURN(h.version, r.get_u32());
  if (h.version != kFormatVersion) {
    return Corrupt(strformat("unsupported format version %u", h.version));
  }
  SION_ASSIGN_OR_RETURN(h.flags, r.get_u8());
  SION_RETURN_IF_ERROR(r.skip(3));
  SION_ASSIGN_OR_RETURN(h.nblocks, r.get_u64());
  SION_ASSIGN_OR_RETURN(h.meta2_offset, r.get_u64());
  SION_ASSIGN_OR_RETURN(h.fsblksize, r.get_u64());
  SION_ASSIGN_OR_RETURN(h.ntasks, r.get_u32());
  SION_ASSIGN_OR_RETURN(h.nfiles, r.get_u32());
  SION_ASSIGN_OR_RETURN(h.filenum, r.get_u32());
  SION_RETURN_IF_ERROR(r.skip(4));
  SION_ASSIGN_OR_RETURN(h.global_ranks, r.get_u64_array());
  SION_ASSIGN_OR_RETURN(h.chunksizes_req, r.get_u64_array());
  if (h.fsblksize == 0) return Corrupt("fsblksize is zero");
  if (h.ntasks == 0) return Corrupt("header lists zero tasks");
  if (h.global_ranks.size() != h.ntasks ||
      h.chunksizes_req.size() != h.ntasks) {
    return Corrupt("per-task arrays do not match task count");
  }
  if (h.filenum >= h.nfiles) return Corrupt("filenum out of range");
  return h;
}

std::uint64_t FileMeta2::nblocks() const {
  std::uint64_t most = 0;
  for (const auto& per_task : bytes_written) {
    most = std::max(most, static_cast<std::uint64_t>(per_task.size()));
  }
  return most;
}

std::vector<std::byte> FileMeta2::serialize() const {
  ByteWriter w;
  w.put_bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(kMagic2), sizeof(kMagic2)));
  w.put_u32(static_cast<std::uint32_t>(bytes_written.size()));
  for (const auto& per_task : bytes_written) {
    w.put_u64_array(per_task);
  }
  return w.take();
}

Result<FileMeta2> FileMeta2::parse(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  SION_ASSIGN_OR_RETURN(auto magic, r.get_bytes(sizeof(kMagic2)));
  if (std::memcmp(magic.data(), kMagic2, sizeof(kMagic2)) != 0) {
    return Corrupt("bad metablock-2 magic");
  }
  SION_ASSIGN_OR_RETURN(const std::uint32_t ntasks, r.get_u32());
  FileMeta2 m;
  m.bytes_written.reserve(ntasks);
  for (std::uint32_t t = 0; t < ntasks; ++t) {
    SION_ASSIGN_OR_RETURN(auto per_task, r.get_u64_array());
    m.bytes_written.push_back(std::move(per_task));
  }
  return m;
}

Result<FileHeader> read_header(fs::File& file) {
  SION_ASSIGN_OR_RETURN(const fs::FileStat st, file.stat());
  // Metablock 1 never exceeds the data_start, which is <= header size
  // rounded up one fs block; reading header-sized prefix plus one block is
  // always enough.
  std::uint64_t want = 64 * 1024;
  for (;;) {
    const std::uint64_t n = std::min<std::uint64_t>(want, st.size);
    std::vector<std::byte> buf(n);
    SION_ASSIGN_OR_RETURN(const std::uint64_t got, file.pread(buf, 0));
    buf.resize(got);
    auto parsed = FileHeader::parse(buf);
    if (parsed.ok()) return parsed;
    if (parsed.status().code() == ErrorCode::kCorrupt && n < st.size &&
        n < (1ULL << 32)) {
      want *= 4;  // header larger than the slice; retry bigger
      continue;
    }
    return parsed;
  }
}

Result<FileMeta2> read_meta2(fs::File& file, const FileHeader& header) {
  if (header.meta2_offset == 0) {
    return FailedPrecondition(
        "metablock 2 missing (file was never closed cleanly); "
        "run sionrepair to reconstruct it");
  }
  SION_ASSIGN_OR_RETURN(const fs::FileStat st, file.stat());
  if (header.meta2_offset >= st.size) {
    return Corrupt("metablock-2 offset beyond end of file");
  }
  std::vector<std::byte> buf(st.size - header.meta2_offset);
  SION_ASSIGN_OR_RETURN(const std::uint64_t got,
                        file.pread(buf, header.meta2_offset));
  buf.resize(got);
  return FileMeta2::parse(buf);
}

Status write_meta2_and_trailer(fs::File& file, std::uint64_t meta2_offset,
                               std::uint64_t nblocks, const FileMeta2& meta2) {
  const std::vector<std::byte> blob = meta2.serialize();
  SION_ASSIGN_OR_RETURN(std::uint64_t n,
                        file.pwrite(fs::DataView(blob), meta2_offset));
  (void)n;
  ByteWriter trailer;
  trailer.put_u64(nblocks);
  trailer.put_u64(meta2_offset);
  SION_ASSIGN_OR_RETURN(
      n, file.pwrite(fs::DataView(trailer.bytes()), kTrailerNblocksOffset));
  (void)n;
  return Status::Ok();
}

std::string physical_file_name(const std::string& base, int filenum,
                               int nfiles) {
  if (nfiles <= 1) return base;
  return strformat("%s.%06d", base.c_str(), filenum);
}

}  // namespace sion::core
