// On-disk metadata of a SION physical file: metablock 1 (written at open by
// the file-local master) and metablock 2 (written at close with the space
// actually used in every chunk). See DESIGN.md section 4 for the layout.
//
// Metablock 1 contains two fixed-offset trailer fields (`nblocks`,
// `meta2_offset`) that are zero after open and patched in place at close —
// if an application dies before parclose, they stay zero and the recovery
// extension (src/ext/recovery.h) can rebuild metablock 2 from per-chunk
// frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fs/filesystem.h"

namespace sion::core {

inline constexpr char kMagic[8] = {'S', 'I', 'O', 'N', 'S', 'I', 'M', '1'};
inline constexpr char kMagic2[8] = {'S', 'I', 'O', 'N', 'M', 'E', 'T', '2'};
inline constexpr std::uint32_t kFormatVersion = 1;

// Flag bits (FileHeader::flags).
inline constexpr std::uint8_t kFlagChunkFrames = 0x01;

// Fixed byte offsets of the close-time trailer fields inside metablock 1.
inline constexpr std::uint64_t kTrailerNblocksOffset = 16;
inline constexpr std::uint64_t kTrailerMeta2Offset = 24;

// Size of the per-chunk recovery frame when kFlagChunkFrames is set; the
// frame occupies the first bytes of every chunk, shrinking its usable
// capacity (see src/ext/recovery.h).
inline constexpr std::uint64_t kChunkFrameSize = 64;

// Integrity checksum over a chunk frame's fields, stored in the frame and
// kept in step with every bytes-written patch: metablock-2 recovery must
// never rebuild metadata from a torn or bit-flipped frame (it would
// silently hand back wrong data), so a frame whose checksum disagrees is
// treated as damaged.
inline std::uint64_t chunk_frame_checksum(std::uint32_t grank,
                                          std::uint32_t lrank,
                                          std::uint64_t block,
                                          std::uint64_t bytes_written) {
  std::uint64_t h = 0x53494F4E46524D31ULL;  // "SIONFRM1"
  for (const std::uint64_t v :
       {static_cast<std::uint64_t>(grank) << 32 | lrank, block,
        bytes_written}) {
    h ^= v;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 29;
  }
  return h;
}

struct FileHeader {
  std::uint32_t version = kFormatVersion;
  std::uint8_t flags = 0;
  std::uint64_t nblocks = 0;       // 0 until parclose
  std::uint64_t meta2_offset = 0;  // 0 until parclose
  std::uint64_t fsblksize = 0;
  std::uint32_t ntasks = 0;   // tasks mapped to THIS physical file
  std::uint32_t nfiles = 1;   // physical files in the multifile set
  std::uint32_t filenum = 0;  // index of this physical file
  std::vector<std::uint64_t> global_ranks;     // per local task
  std::vector<std::uint64_t> chunksizes_req;   // per local task

  [[nodiscard]] std::vector<std::byte> serialize() const;
  static Result<FileHeader> parse(std::span<const std::byte> bytes);
};

struct FileMeta2 {
  // bytes_written[local task][block] = payload bytes in that chunk.
  std::vector<std::vector<std::uint64_t>> bytes_written;

  [[nodiscard]] std::uint64_t nblocks() const;
  [[nodiscard]] std::vector<std::byte> serialize() const;
  static Result<FileMeta2> parse(std::span<const std::byte> bytes);
};

// Read and parse metablock 1 from an open physical file.
Result<FileHeader> read_header(fs::File& file);

// Read and parse metablock 2 (requires header.meta2_offset != 0).
Result<FileMeta2> read_meta2(fs::File& file, const FileHeader& header);

// Write metablock 2 at its position and patch the trailer fields of
// metablock 1 in place.
Status write_meta2_and_trailer(fs::File& file, std::uint64_t meta2_offset,
                               std::uint64_t nblocks, const FileMeta2& meta2);

// Name of physical file `filenum` of a multifile set with `nfiles` files:
// the base name itself for a single file, "<name>.<%06u>" otherwise.
std::string physical_file_name(const std::string& base, int filenum,
                               int nfiles);

}  // namespace sion::core
