#include "core/layout.h"

#include "common/units.h"

namespace sion::core {

Result<FileLayout> FileLayout::create(
    std::uint64_t fsblksize, std::vector<std::uint64_t> chunksizes_req,
    std::uint64_t meta1_bytes) {
  if (fsblksize == 0) return InvalidArgument("fsblksize must be positive");
  if (chunksizes_req.empty()) {
    return InvalidArgument("a SION file needs at least one task");
  }
  FileLayout layout;
  layout.fsblksize_ = fsblksize;
  layout.requested_ = std::move(chunksizes_req);
  layout.aligned_.reserve(layout.requested_.size());
  layout.prefix_.reserve(layout.requested_.size());
  std::uint64_t running = 0;
  for (const std::uint64_t req : layout.requested_) {
    if (req == 0) return InvalidArgument("chunk size must be positive");
    // "not to waste any space without necessity, the chunk size is chosen to
    // be a multiple of the file-system block size" (paper 3.1).
    const std::uint64_t aligned = round_up(req, fsblksize);
    layout.aligned_.push_back(aligned);
    layout.prefix_.push_back(running);
    running += aligned;
  }
  layout.block_span_ = running;
  layout.data_start_ = round_up(meta1_bytes, fsblksize);
  return layout;
}

}  // namespace sion::core
