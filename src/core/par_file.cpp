#include "core/par_file.h"

#include <algorithm>

#include "common/codec.h"
#include "common/log.h"
#include "common/strings.h"
#include "common/units.h"
#include "fs/path.h"

namespace sion::core {

namespace {

constexpr char kFrameMagic[8] = {'S', 'I', 'O', 'N', 'F', 'R', 'M', '1'};

// Shared wording for the par::share_status* agreement helpers: a failure on
// the file-local master or on another physical file must surface on every
// task (see par/comm.h).
constexpr char kOpenFailed[] =
    "collective SION open/close failed on the file-local master or on "
    "another physical file";

}  // namespace

// ---------------------------------------------------------------------------
// open for writing
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SionParFile>> SionParFile::open_write(
    fs::FileSystem& fs, par::Comm& gcom, const ParOpenSpec& spec) {
  const int grank = gcom.rank();
  const int gsize = gcom.size();
  if (spec.chunksize == 0) {
    return InvalidArgument("chunksize must be positive");
  }
  SION_ASSIGN_OR_RETURN(
      const FileMap map,
      FileMap::make(spec.mapping, gsize, spec.nfiles,
                    spec.custom_file_of_rank));

  auto out = std::unique_ptr<SionParFile>(new SionParFile());
  out->fs_ = &fs;
  out->gcom_ = &gcom;
  out->writable_ = true;
  out->frames_ = spec.chunk_frames;
  out->nfiles_ = map.nfiles();
  out->filenum_ = map.file_of(grank);
  out->path_ =
      physical_file_name(spec.filename, out->filenum_, map.nfiles());

  // One local communicator per physical file (paper: gcom -> lcom split).
  out->lcom_ = gcom.split(out->filenum_, grank);
  SION_CHECK(out->lcom_ != nullptr) << "split returned no communicator";
  par::Comm& lcom = *out->lcom_;
  out->lrank_ = lcom.rank();
  const bool master = out->lrank_ == 0;

  // The master detects the file-system block size (the paper's fstat()),
  // then everyone aligns their chunk to it.
  Status st;
  std::uint64_t fsblksize = spec.fsblksize;
  if (fsblksize == 0) {
    if (master) {
      auto detected = fs.block_size(fs::parent(out->path_));
      if (detected.ok()) {
        fsblksize = detected.value();
      } else {
        st = detected.status();
      }
    }
    SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kOpenFailed));
    fsblksize = lcom.bcast_u64(fsblksize, 0);
  }
  out->fsblksize_ = fsblksize;
  if (!is_power_of_two(fsblksize)) {
    return InvalidArgument("file-system block size must be a power of two");
  }

  // Collective metadata exchange: chunk sizes and global ranks to the
  // file-local master.
  const auto chunksizes = lcom.gather_u64(spec.chunksize, 0);
  const auto granks =
      lcom.gather_u64(static_cast<std::uint64_t>(grank), 0);

  // Master creates the physical file and writes metablock 1.
  std::uint64_t data_start = 0;
  std::uint64_t block_span = 0;
  std::vector<std::uint64_t> chunk_offsets;
  st = Status::Ok();
  if (master) {
    FileHeader header;
    header.flags = spec.chunk_frames ? kFlagChunkFrames : 0;
    header.fsblksize = fsblksize;
    header.ntasks = static_cast<std::uint32_t>(lcom.size());
    header.nfiles = static_cast<std::uint32_t>(map.nfiles());
    header.filenum = static_cast<std::uint32_t>(out->filenum_);
    header.global_ranks = granks;
    header.chunksizes_req = chunksizes;
    const std::vector<std::byte> meta1 = header.serialize();
    auto layout =
        FileLayout::create(fsblksize, chunksizes, meta1.size());
    if (!layout.ok()) {
      st = layout.status();
    } else {
      out->meta1_end_ = meta1.size();
      data_start = layout.value().data_start();
      block_span = layout.value().block_span();
      chunk_offsets.resize(static_cast<std::size_t>(lcom.size()));
      for (int t = 0; t < lcom.size(); ++t) {
        chunk_offsets[static_cast<std::size_t>(t)] =
            layout.value().chunk_offset_in_block(t);
      }
      auto created = fs.create(out->path_);
      if (!created.ok()) {
        st = created.status();
      } else {
        out->file_ = std::move(created).value();
        auto wrote = out->file_->pwrite(fs::DataView(meta1), 0);
        if (!wrote.ok()) st = wrote.status();
      }
    }
  }
  SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kOpenFailed));

  // Everyone learns where its chunks live; no further communication is
  // needed for any later chunk (paper 3.1). The two geometry broadcasts
  // fuse into one suspension (bit-identical virtual cost, see bcast_u64_seq).
  std::uint64_t geom[2] = {data_start, block_span};
  lcom.bcast_u64_seq(geom, 0);
  data_start = geom[0];
  block_span = geom[1];
  const std::uint64_t my_offset = lcom.scatter_u64(chunk_offsets, 0);
  out->data_start_ = data_start;
  out->block_span_ = block_span;
  out->chunk_start_block0_ = data_start + my_offset;
  const std::uint64_t aligned = round_up(spec.chunksize, fsblksize);
  const std::uint64_t frame = spec.chunk_frames ? kChunkFrameSize : 0;
  if (aligned <= frame) {
    return InvalidArgument("chunk too small for recovery frame");
  }
  out->capacity_ = aligned - frame;

  // Non-masters open the (hot) physical file — the cheap path that makes
  // SIONlib creation orders of magnitude faster than task-local files.
  st = Status::Ok();
  if (!master) {
    auto opened = fs.open_rw(out->path_);
    if (!opened.ok()) {
      st = opened.status();
    } else {
      out->file_ = std::move(opened).value();
    }
  }
  SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kOpenFailed));

  out->chunk_bytes_.assign(1, 0);
  st = Status::Ok();
  if (out->frames_) st = out->write_frame(0);
  // The agreement doubles as the closing barrier: a failed first-frame
  // write (e.g. quota exceeded) on any task must fail the open everywhere.
  const std::uint64_t frame_failed =
      gcom.allreduce_u64(st.ok() ? 0 : 1, par::ReduceOp::kMax);
  if (frame_failed != 0) {
    if (!st.ok()) return st;
    return IoError("collective SION open failed on another task");
  }
  return out;
}

// ---------------------------------------------------------------------------
// open for reading
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SionParFile>> SionParFile::open_read(
    fs::FileSystem& fs, par::Comm& gcom, const std::string& name) {
  const int grank = gcom.rank();
  const int gsize = gcom.size();

  // The global master discovers the multifile set and the rank->file map
  // from the per-file headers, then *scatters* it — each task learns only
  // its own file index, keeping the collective O(ntasks) total instead of
  // O(ntasks) per task.
  Status st;
  std::uint64_t nfiles_u64 = 0;
  std::vector<std::uint64_t> file_of_rank;  // master only
  if (grank == 0) {
    st = [&]() -> Status {
      std::string first = name;
      if (!fs.exists(first)) first = physical_file_name(name, 0, 2);
      SION_ASSIGN_OR_RETURN(auto file0, fs.open_read(first));
      SION_ASSIGN_OR_RETURN(const FileHeader h0, read_header(*file0));
      const int nfiles = static_cast<int>(h0.nfiles);
      std::uint64_t total_tasks = 0;
      file_of_rank.assign(static_cast<std::size_t>(gsize), 0);
      for (int f = 0; f < nfiles; ++f) {
        FileHeader h = h0;
        if (f != 0) {
          SION_ASSIGN_OR_RETURN(
              auto file, fs.open_read(physical_file_name(name, f, nfiles)));
          SION_ASSIGN_OR_RETURN(h, read_header(*file));
        }
        total_tasks += h.ntasks;
        for (const std::uint64_t r : h.global_ranks) {
          if (r >= static_cast<std::uint64_t>(gsize)) {
            return InvalidArgument(strformat(
                "multifile was written by rank %llu but only %d tasks "
                "opened it (task count must match the writer)",
                static_cast<unsigned long long>(r), gsize));
          }
          file_of_rank[r] = static_cast<std::uint64_t>(f);
        }
      }
      if (total_tasks != static_cast<std::uint64_t>(gsize)) {
        return InvalidArgument(strformat(
            "multifile holds %llu logical files but %d tasks opened it",
            static_cast<unsigned long long>(total_tasks), gsize));
      }
      nfiles_u64 = static_cast<std::uint64_t>(nfiles);
      return Status::Ok();
    }();
  }
  SION_RETURN_IF_ERROR(par::share_status(gcom, st, 0, kOpenFailed));

  const std::uint64_t nfiles = gcom.bcast_u64(nfiles_u64, 0);
  const std::uint64_t my_file = gcom.scatter_u64(file_of_rank, 0);
  file_of_rank.clear();
  file_of_rank.shrink_to_fit();

  auto out = std::unique_ptr<SionParFile>(new SionParFile());
  out->fs_ = &fs;
  out->gcom_ = &gcom;
  out->writable_ = false;
  out->nfiles_ = static_cast<int>(nfiles);
  out->filenum_ = static_cast<int>(my_file);
  out->path_ = physical_file_name(name, out->filenum_, out->nfiles_);

  out->lcom_ = gcom.split(out->filenum_, grank);
  SION_CHECK(out->lcom_ != nullptr) << "split returned no communicator";
  par::Comm& lcom = *out->lcom_;
  out->lrank_ = lcom.rank();
  const bool master = out->lrank_ == 0;

  // The file-local master parses both metablocks and scatters each task's
  // view: geometry plus the bytes-actually-written array per chunk.
  st = Status::Ok();
  std::uint64_t fsblksize = 0;
  std::uint64_t data_start = 0;
  std::uint64_t block_span = 0;
  std::uint64_t flags = 0;
  std::vector<std::uint64_t> chunk_offsets;
  std::vector<std::uint64_t> requested;
  std::vector<std::byte> blobs_flat;
  std::vector<std::uint64_t> blob_sizes;
  if (master) {
    st = [&]() -> Status {
      SION_ASSIGN_OR_RETURN(auto file, fs.open_read(out->path_));
      SION_ASSIGN_OR_RETURN(const FileHeader header, read_header(*file));
      if (static_cast<int>(header.ntasks) != lcom.size()) {
        return InvalidArgument(
            strformat("physical file %s holds %u logical files but %d tasks "
                      "opened it",
                      out->path_.c_str(), header.ntasks, lcom.size()));
      }
      SION_ASSIGN_OR_RETURN(const FileMeta2 meta2, read_meta2(*file, header));
      if (meta2.bytes_written.size() != header.ntasks) {
        return Corrupt("metablock 2 task count mismatch");
      }
      const std::vector<std::byte> meta1 = header.serialize();
      SION_ASSIGN_OR_RETURN(
          const FileLayout layout,
          FileLayout::create(header.fsblksize, header.chunksizes_req,
                             meta1.size()));
      fsblksize = header.fsblksize;
      flags = header.flags;
      data_start = layout.data_start();
      block_span = layout.block_span();
      chunk_offsets.resize(header.ntasks);
      requested.resize(header.ntasks);
      blob_sizes.resize(header.ntasks);
      // One flat buffer for every task's bytes-written array, sliced by the
      // scatter below — not one heap blob per task.
      ByteWriter w;
      for (std::uint32_t t = 0; t < header.ntasks; ++t) {
        chunk_offsets[t] = layout.chunk_offset_in_block(static_cast<int>(t));
        requested[t] = header.chunksizes_req[t];
        const std::size_t at = w.size();
        w.put_u64_array(meta2.bytes_written[t]);
        blob_sizes[t] = w.size() - at;
      }
      blobs_flat = w.take();
      out->file_ = std::move(file);
      return Status::Ok();
    }();
  }
  SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kOpenFailed));

  std::uint64_t geom[4] = {fsblksize, flags, data_start, block_span};
  lcom.bcast_u64_seq(geom, 0);
  fsblksize = geom[0];
  flags = geom[1];
  data_start = geom[2];
  block_span = geom[3];
  const auto [my_offset, my_request] =
      lcom.scatter2_u64(chunk_offsets, requested, 0);
  const std::vector<std::byte> my_blob =
      lcom.scatterv_bytes_flat(blobs_flat, blob_sizes, 0);
  ByteReader blob_reader(my_blob);
  SION_ASSIGN_OR_RETURN(auto chunk_bytes, blob_reader.get_u64_array());

  out->fsblksize_ = fsblksize;
  out->frames_ = (flags & kFlagChunkFrames) != 0;
  out->data_start_ = data_start;
  out->block_span_ = block_span;
  out->chunk_start_block0_ = data_start + my_offset;
  const std::uint64_t aligned = round_up(my_request, fsblksize);
  out->capacity_ = aligned - (out->frames_ ? kChunkFrameSize : 0);
  out->chunk_bytes_ = std::move(chunk_bytes);
  if (out->chunk_bytes_.empty()) out->chunk_bytes_.assign(1, 0);

  st = Status::Ok();
  if (!master) {
    auto opened = fs.open_read(out->path_);
    if (!opened.ok()) {
      st = opened.status();
    } else {
      out->file_ = std::move(opened).value();
    }
  }
  SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kOpenFailed));

  gcom.barrier();
  return out;
}

SionParFile::~SionParFile() {
  if (!closed_ && writable_) {
    SION_LOG_WARN << "SION file " << path_
                  << " destroyed without collective close; metablock 2 was "
                     "not written (sionrepair can reconstruct it if chunk "
                     "frames are enabled)";
  }
}

// ---------------------------------------------------------------------------
// recovery frames
// ---------------------------------------------------------------------------

Status SionParFile::write_frame(std::uint64_t block) {
  ByteWriter w;
  w.put_bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(kFrameMagic), sizeof(kFrameMagic)));
  w.put_u32(static_cast<std::uint32_t>(gcom_->rank()));
  w.put_u32(static_cast<std::uint32_t>(lrank_));
  w.put_u64(block);
  w.put_u64(0);  // bytes written in this chunk; patched later
  w.put_u64(chunk_frame_checksum(static_cast<std::uint32_t>(gcom_->rank()),
                                 static_cast<std::uint32_t>(lrank_), block,
                                 0));
  w.pad_to(kChunkFrameSize);
  const std::uint64_t frame_offset =
      chunk_file_offset(block) - kChunkFrameSize;
  SION_ASSIGN_OR_RETURN(std::uint64_t n,
                        file_->pwrite(fs::DataView(w.bytes()), frame_offset));
  (void)n;
  return Status::Ok();
}

Status SionParFile::patch_frame(std::uint64_t block) {
  ByteWriter w;
  w.put_u64(chunk_bytes_[block]);
  w.put_u64(chunk_frame_checksum(static_cast<std::uint32_t>(gcom_->rank()),
                                 static_cast<std::uint32_t>(lrank_), block,
                                 chunk_bytes_[block]));
  const std::uint64_t field_offset =
      chunk_file_offset(block) - kChunkFrameSize + 24;
  SION_ASSIGN_OR_RETURN(std::uint64_t n,
                        file_->pwrite(fs::DataView(w.bytes()), field_offset));
  (void)n;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// write path
// ---------------------------------------------------------------------------

Status SionParFile::advance_chunk_write() {
  if (frames_) SION_RETURN_IF_ERROR(patch_frame(block_));
  ++block_;
  pos_ = 0;
  chunk_bytes_.push_back(0);
  if (frames_) SION_RETURN_IF_ERROR(write_frame(block_));
  return Status::Ok();
}

Status SionParFile::ensure_free_space(std::uint64_t nbytes) {
  if (!writable_) return FailedPrecondition("file opened for reading");
  if (closed_) return FailedPrecondition("file already closed");
  if (nbytes > capacity_) {
    return InvalidArgument(
        strformat("request of %llu bytes exceeds the chunk capacity of %llu; "
                  "use write() instead",
                  static_cast<unsigned long long>(nbytes),
                  static_cast<unsigned long long>(capacity_)));
  }
  if (pos_ + nbytes > capacity_) {
    SION_RETURN_IF_ERROR(advance_chunk_write());
  }
  return Status::Ok();
}

Result<std::uint64_t> SionParFile::write_raw(fs::DataView data) {
  if (!writable_) return FailedPrecondition("file opened for reading");
  if (closed_) return FailedPrecondition("file already closed");
  if (data.size() > capacity_ - pos_) {
    return OutOfRange(
        "write does not fit in the current chunk; call ensure_free_space");
  }
  SION_ASSIGN_OR_RETURN(
      const std::uint64_t n,
      file_->pwrite(data, chunk_file_offset(block_) + pos_));
  pos_ += n;
  chunk_bytes_[block_] += n;
  // Keep the recovery frame current after every write: this is what makes a
  // crash *between* writes recoverable (the paper's robustness plan), at the
  // cost of one small extra write per call (measured in bench_ablation).
  if (frames_) SION_RETURN_IF_ERROR(patch_frame(block_));
  return n;
}

Result<std::uint64_t> SionParFile::write(fs::DataView data) {
  if (!writable_) return FailedPrecondition("file opened for reading");
  if (closed_) return FailedPrecondition("file already closed");
  std::uint64_t done = 0;
  while (done < data.size()) {
    if (pos_ == capacity_) SION_RETURN_IF_ERROR(advance_chunk_write());
    const std::uint64_t take =
        std::min(capacity_ - pos_, data.size() - done);
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t n,
        file_->pwrite(data.subview(done, take),
                      chunk_file_offset(block_) + pos_));
    pos_ += n;
    chunk_bytes_[block_] += n;
    done += n;
    if (frames_) SION_RETURN_IF_ERROR(patch_frame(block_));
  }
  return done;
}

// ---------------------------------------------------------------------------
// read path
// ---------------------------------------------------------------------------

bool SionParFile::eof() const {
  std::uint64_t b = block_;
  std::uint64_t p = pos_;
  while (b < chunk_bytes_.size()) {
    if (p < chunk_bytes_[b]) return false;
    ++b;
    p = 0;
  }
  return true;
}

std::uint64_t SionParFile::bytes_avail_in_chunk() const {
  if (block_ >= chunk_bytes_.size()) return 0;
  return chunk_bytes_[block_] - pos_;
}

Result<std::uint64_t> SionParFile::read_raw(std::span<std::byte> out) {
  if (writable_) return FailedPrecondition("file opened for writing");
  const std::uint64_t avail = bytes_avail_in_chunk();
  const std::uint64_t want = std::min<std::uint64_t>(out.size(), avail);
  if (want == 0) return static_cast<std::uint64_t>(0);
  SION_ASSIGN_OR_RETURN(
      const std::uint64_t n,
      file_->pread(out.subspan(0, want), chunk_file_offset(block_) + pos_));
  pos_ += n;
  return n;
}

Result<std::uint64_t> SionParFile::read(std::span<std::byte> out) {
  if (writable_) return FailedPrecondition("file opened for writing");
  std::uint64_t done = 0;
  while (done < out.size() && !eof()) {
    if (bytes_avail_in_chunk() == 0) {
      ++block_;
      pos_ = 0;
      continue;
    }
    SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                          read_raw(out.subspan(done)));
    done += n;
  }
  return done;
}

Status SionParFile::read_skip(std::uint64_t nbytes) {
  if (writable_) return FailedPrecondition("file opened for writing");
  std::uint64_t done = 0;
  while (done < nbytes && !eof()) {
    const std::uint64_t avail = bytes_avail_in_chunk();
    if (avail == 0) {
      ++block_;
      pos_ = 0;
      continue;
    }
    const std::uint64_t take = std::min(nbytes - done, avail);
    SION_RETURN_IF_ERROR(
        file_->pread_discard(take, chunk_file_offset(block_) + pos_));
    pos_ += take;
    done += take;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// close
// ---------------------------------------------------------------------------

Status SionParFile::close() {
  if (closed_) return FailedPrecondition("file already closed");
  par::Comm& lcom = *lcom_;
  if (writable_) {
    if (frames_) SION_RETURN_IF_ERROR(patch_frame(block_));
    // "the master collects the number of bytes from each task that was
    // effectively written and stores it in the metadata block" (paper 3.1).
    const auto all = lcom.gatherv_u64_flat(chunk_bytes_, 0);
    Status st;
    if (lrank_ == 0) {
      FileMeta2 meta2;
      meta2.bytes_written.resize(static_cast<std::size_t>(lcom.size()));
      for (int t = 0; t < lcom.size(); ++t) {
        const auto piece = all.of(t);
        meta2.bytes_written[static_cast<std::size_t>(t)]
            .assign(piece.begin(), piece.end());
      }
      const std::uint64_t nblocks = std::max<std::uint64_t>(1, meta2.nblocks());
      const std::uint64_t meta2_offset =
          data_start_ + nblocks * block_span_;
      st = write_meta2_and_trailer(*file_, meta2_offset, nblocks, meta2);
    }
    SION_RETURN_IF_ERROR(par::share_status_global(lcom, *gcom_, st, 0, kOpenFailed));
  }
  file_.reset();
  closed_ = true;
  gcom_->barrier();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// totals
// ---------------------------------------------------------------------------

std::uint64_t SionParFile::bytes_written_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : chunk_bytes_) total += b;
  return total;
}

std::uint64_t SionParFile::bytes_remaining_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t b = block_; b < chunk_bytes_.size(); ++b) {
    total += chunk_bytes_[b] - (b == block_ ? pos_ : 0);
  }
  return total;
}

Result<std::vector<std::byte>> SionParFile::read_remaining() {
  const std::uint64_t total = bytes_remaining_total();
  std::vector<std::byte> out(static_cast<std::size_t>(total));
  SION_ASSIGN_OR_RETURN(const std::uint64_t got, read(out));
  if (got != total) {
    return Corrupt(strformat("logical stream delivered %llu of %llu "
                             "remaining bytes",
                             static_cast<unsigned long long>(got),
                             static_cast<unsigned long long>(total)));
  }
  return out;
}

}  // namespace sion::core
