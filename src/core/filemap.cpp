#include "core/filemap.h"

#include "common/log.h"
#include "common/strings.h"

namespace sion::core {

namespace {
Status validate_counts(int ntasks, int nfiles) {
  if (ntasks <= 0) return InvalidArgument("ntasks must be positive");
  if (nfiles <= 0 || nfiles > ntasks) {
    return InvalidArgument(
        strformat("nfiles=%d must be in [1, ntasks=%d]", nfiles, ntasks));
  }
  return Status::Ok();
}
}  // namespace

Result<FileMap> FileMap::contiguous(int ntasks, int nfiles) {
  SION_RETURN_IF_ERROR(validate_counts(ntasks, nfiles));
  return FileMap(Mapping::kContiguous, ntasks, nfiles);
}

Result<FileMap> FileMap::round_robin(int ntasks, int nfiles) {
  SION_RETURN_IF_ERROR(validate_counts(ntasks, nfiles));
  return FileMap(Mapping::kRoundRobin, ntasks, nfiles);
}

Result<FileMap> FileMap::custom(std::vector<int> file_of_rank, int nfiles) {
  if (file_of_rank.empty()) return InvalidArgument("empty custom mapping");
  if (nfiles <= 0) return InvalidArgument("nfiles must be positive");
  FileMap map(Mapping::kCustom, static_cast<int>(file_of_rank.size()), nfiles);
  map.custom_tasks_in_file_.assign(static_cast<std::size_t>(nfiles), 0);
  map.custom_local_index_.resize(file_of_rank.size());
  for (std::size_t r = 0; r < file_of_rank.size(); ++r) {
    const int f = file_of_rank[r];
    if (f < 0 || f >= nfiles) {
      return InvalidArgument(
          strformat("custom mapping entry %d out of [0, %d)", f, nfiles));
    }
    auto& count = map.custom_tasks_in_file_[static_cast<std::size_t>(f)];
    map.custom_local_index_[r] = count;
    ++count;
  }
  for (int f = 0; f < nfiles; ++f) {
    if (map.custom_tasks_in_file_[static_cast<std::size_t>(f)] == 0) {
      return InvalidArgument(
          strformat("custom mapping leaves file %d without tasks", f));
    }
  }
  map.custom_file_of_rank_ = std::move(file_of_rank);
  return map;
}

Result<FileMap> FileMap::make(Mapping mapping, int ntasks, int nfiles,
                              const std::vector<int>& custom_map) {
  switch (mapping) {
    case Mapping::kContiguous: return contiguous(ntasks, nfiles);
    case Mapping::kRoundRobin: return round_robin(ntasks, nfiles);
    case Mapping::kCustom: {
      auto copy = custom_map;
      return custom(std::move(copy), nfiles);
    }
  }
  return InvalidArgument("unknown mapping kind");
}

int FileMap::contiguous_first_rank(int f) const {
  // Smallest r with r*nfiles/ntasks == f, i.e. ceil(f*ntasks / nfiles).
  const long long num = static_cast<long long>(f) * ntasks_;
  return static_cast<int>((num + nfiles_ - 1) / nfiles_);
}

int FileMap::file_of(int rank) const {
  SION_CHECK(rank >= 0 && rank < ntasks_) << "rank out of range";
  switch (kind_) {
    case Mapping::kContiguous:
      return static_cast<int>(static_cast<long long>(rank) * nfiles_ /
                              ntasks_);
    case Mapping::kRoundRobin:
      return rank % nfiles_;
    case Mapping::kCustom:
      return custom_file_of_rank_[static_cast<std::size_t>(rank)];
  }
  return 0;
}

int FileMap::local_index(int rank) const {
  switch (kind_) {
    case Mapping::kContiguous:
      return rank - contiguous_first_rank(file_of(rank));
    case Mapping::kRoundRobin:
      return rank / nfiles_;
    case Mapping::kCustom:
      return custom_local_index_[static_cast<std::size_t>(rank)];
  }
  return 0;
}

int FileMap::tasks_in_file(int filenum) const {
  SION_CHECK(filenum >= 0 && filenum < nfiles_) << "file index out of range";
  switch (kind_) {
    case Mapping::kContiguous:
      return contiguous_first_rank(filenum + 1) -
             contiguous_first_rank(filenum);
    case Mapping::kRoundRobin:
      return ntasks_ / nfiles_ + (filenum < ntasks_ % nfiles_ ? 1 : 0);
    case Mapping::kCustom:
      return custom_tasks_in_file_[static_cast<std::size_t>(filenum)];
  }
  return 0;
}

}  // namespace sion::core
