// Parallel access to a SION multifile — the C++ analog of the paper's
// sion_paropen_mpi / sion_parclose_mpi family (section 3.2).
//
// Open and close are collective over the *global* communicator `gcom`; the
// library splits `gcom` internally into one *local* communicator per
// physical file, exactly as SIONlib derives `lcom` from `gcom`. In between,
// reads and writes are fully independent per task:
//
//   auto sion = SionParFile::open_write(fs, world, spec).value();   // collective
//   sion->ensure_free_space(n);          // may advance to a fresh chunk
//   sion->write_raw(data);               // plain fwrite() equivalent
//   // or, without knowing a bound on n:
//   sion->write(data);                   // sion_fwrite: splits at chunk ends
//   sion->close();                       // collective
//
// and for reading:
//
//   auto sion = SionParFile::open_read(fs, world, name).value();    // collective
//   while (!sion->eof()) {
//     auto n = sion->bytes_avail_in_chunk();
//     sion->read_raw(buffer.first(n));   // plain fread() equivalent
//   }
//   sion->close();
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/filemap.h"
#include "core/layout.h"
#include "core/metadata.h"
#include "fs/filesystem.h"
#include "par/comm.h"

namespace sion::core {

struct ParOpenSpec {
  std::string filename;

  // Maximum number of bytes this task will write in one piece (may differ
  // per task). Required for write_raw; write() lifts the restriction.
  std::uint64_t chunksize = 0;

  // Number of underlying physical files (paper Fig. 2(d)).
  int nfiles = 1;

  // File-system block size to align chunks to; 0 = detect via
  // FileSystem::block_size (the paper's fstat()-based autodetection).
  std::uint64_t fsblksize = 0;

  // How tasks are distributed over physical files.
  Mapping mapping = Mapping::kContiguous;
  std::vector<int> custom_file_of_rank;  // used when mapping == kCustom

  // Robustness extension (paper section 6, future work): prepend a small
  // recovery frame to every chunk so metablock 2 can be reconstructed by
  // sionrepair if the application dies before close.
  bool chunk_frames = false;
};

class SionParFile {
 public:
  // Collective open for writing; every task of `gcom` must call it with the
  // same filename/nfiles/mapping (chunksize may differ per task).
  static Result<std::unique_ptr<SionParFile>> open_write(
      fs::FileSystem& fs, par::Comm& gcom, const ParOpenSpec& spec);

  // Collective open for reading; `gcom` must have exactly as many tasks as
  // the multifile was written with (the paper's stated invariant).
  static Result<std::unique_ptr<SionParFile>> open_read(fs::FileSystem& fs,
                                                        par::Comm& gcom,
                                                        const std::string& name);

  ~SionParFile();
  SionParFile(const SionParFile&) = delete;
  SionParFile& operator=(const SionParFile&) = delete;

  // ---- write mode ---------------------------------------------------------

  // Guarantee `nbytes` of contiguous space in the current chunk, advancing
  // to the next block's chunk when necessary (sion_ensure_free_space).
  Status ensure_free_space(std::uint64_t nbytes);

  // Write entirely within the current chunk (the ANSI C fwrite() analog);
  // fails with kOutOfRange when the chunk cannot hold `data` — call
  // ensure_free_space first.
  Result<std::uint64_t> write_raw(fs::DataView data);

  // sion_fwrite: splits `data` at chunk boundaries internally, so no bound
  // on the write size is needed.
  Result<std::uint64_t> write(fs::DataView data);

  // ---- read mode ------------------------------------------------------------

  [[nodiscard]] bool eof() const;                       // sion_feof
  [[nodiscard]] std::uint64_t bytes_avail_in_chunk() const;

  // Read within the current chunk (fread() analog); a preceding
  // bytes_avail_in_chunk() bounds the request.
  Result<std::uint64_t> read_raw(std::span<std::byte> out);

  // sion_fread: crosses chunk boundaries internally.
  Result<std::uint64_t> read(std::span<std::byte> out);

  // The entire remaining logical stream as one buffer — the raw-byte
  // foundation of the transparent decompression path (ext/compress.h),
  // where frame boundaries do not respect chunk boundaries.
  Result<std::vector<std::byte>> read_remaining();

  // Timing-only read used by benchmarks: charges full I/O cost and advances
  // the logical position without materialising bytes.
  Status read_skip(std::uint64_t nbytes);

  // Collective close. Write mode: gathers per-chunk usage to the file-local
  // master, which writes metablock 2 and patches the metablock-1 trailer.
  Status close();

  // ---- introspection ----------------------------------------------------------

  [[nodiscard]] bool writable() const { return writable_; }
  // Usable payload capacity of one chunk for this task.
  [[nodiscard]] std::uint64_t chunk_capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t current_block() const { return block_; }
  [[nodiscard]] std::uint64_t position_in_chunk() const { return pos_; }
  [[nodiscard]] int nfiles() const { return nfiles_; }
  [[nodiscard]] int filenum() const { return filenum_; }
  [[nodiscard]] const std::string& physical_path() const { return path_; }
  [[nodiscard]] std::uint64_t fsblksize() const { return fsblksize_; }
  // Total payload bytes this task has written / can still read.
  [[nodiscard]] std::uint64_t bytes_written_total() const;
  [[nodiscard]] std::uint64_t bytes_remaining_total() const;

 private:
  SionParFile() = default;

  [[nodiscard]] std::uint64_t chunk_file_offset(std::uint64_t block) const {
    return chunk_start_block0_ + block * block_span_ +
           (frames_ ? kChunkFrameSize : 0);
  }
  Status write_frame(std::uint64_t block);
  Status patch_frame(std::uint64_t block);
  Status advance_chunk_write();

  // Shared state.
  fs::FileSystem* fs_ = nullptr;
  par::Comm* gcom_ = nullptr;
  par::Comm* lcom_ = nullptr;
  std::unique_ptr<fs::File> file_;
  std::string path_;
  bool writable_ = false;
  bool closed_ = false;
  bool frames_ = false;
  int nfiles_ = 1;
  int filenum_ = 0;
  int lrank_ = 0;
  std::uint64_t fsblksize_ = 0;
  std::uint64_t chunk_start_block0_ = 0;  // my chunk's offset in block 0
  std::uint64_t block_span_ = 0;
  std::uint64_t capacity_ = 0;  // payload capacity per chunk
  std::uint64_t meta1_end_ = 0;  // serialized metablock-1 size (master only)
  std::uint64_t data_start_ = 0;

  // Cursor.
  std::uint64_t block_ = 0;
  std::uint64_t pos_ = 0;

  // Write mode: payload bytes per chunk so far. Read mode: payload bytes per
  // chunk as recorded in metablock 2.
  std::vector<std::uint64_t> chunk_bytes_;
};

}  // namespace sion::core
