// Geometry of a SION physical file (paper Fig. 2).
//
// A physical file is:
//
//   [ metablock 1 | block 0 | block 1 | ... | block B-1 | metablock 2 ]
//
// where each block holds one *chunk* per task mapped to this file. Chunk
// sizes are the per-task requests rounded up to a multiple of the
// file-system block size, and the data region starts on a file-system block
// boundary, so no two tasks ever share a file-system block (Fig. 2(c)) —
// the property that avoids write-lock false sharing.
//
// A task that exhausts its chunk gets the same-positioned chunk in the next
// block (Fig. 2(b)); every task can compute all of its chunk addresses
// locally from (data_start, block_span, own offset in block) without
// further communication.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace sion::core {

class FileLayout {
 public:
  // `chunksizes_req` are the per-local-task requested chunk sizes;
  // `meta1_bytes` is the serialized size of metablock 1.
  static Result<FileLayout> create(std::uint64_t fsblksize,
                                   std::vector<std::uint64_t> chunksizes_req,
                                   std::uint64_t meta1_bytes);

  [[nodiscard]] int ntasks() const {
    return static_cast<int>(aligned_.size());
  }
  [[nodiscard]] std::uint64_t fsblksize() const { return fsblksize_; }

  // Requested and block-aligned chunk size of local task `t`.
  [[nodiscard]] std::uint64_t requested_chunksize(int t) const {
    return requested_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint64_t chunksize(int t) const {
    return aligned_[static_cast<std::size_t>(t)];
  }

  // First byte of the data region (block 0), on an fs-block boundary.
  [[nodiscard]] std::uint64_t data_start() const { return data_start_; }

  // Bytes spanned by one block (sum of aligned chunk sizes).
  [[nodiscard]] std::uint64_t block_span() const { return block_span_; }

  // Start offset of task `t`'s chunk within any block.
  [[nodiscard]] std::uint64_t chunk_offset_in_block(int t) const {
    return prefix_[static_cast<std::size_t>(t)];
  }

  // Absolute offset of task `t`'s chunk in block `b`.
  [[nodiscard]] std::uint64_t chunk_start(int t, std::uint64_t b) const {
    return data_start_ + b * block_span_ + chunk_offset_in_block(t);
  }

  // Where metablock 2 lives once `nblocks` blocks exist.
  [[nodiscard]] std::uint64_t meta2_offset(std::uint64_t nblocks) const {
    return data_start_ + nblocks * block_span_;
  }

 private:
  std::uint64_t fsblksize_ = 0;
  std::uint64_t data_start_ = 0;
  std::uint64_t block_span_ = 0;
  std::vector<std::uint64_t> requested_;
  std::vector<std::uint64_t> aligned_;
  std::vector<std::uint64_t> prefix_;
};

}  // namespace sion::core
