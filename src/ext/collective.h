// Collective write aggregation (paper section 6, "coalescing I/O"): the
// paper funnels task-local streams through per-I/O-node multifiles because
// many small uncoordinated writes collapse file-system bandwidth at scale;
// its roadmap names collective aggregation as the next step. This extension
// provides it on top of the SION multifile format.
//
// Ranks are grouped; rank 0 of each group is the *collector*. Members ship
// their chunk payloads to the collector over the par::NetworkModel (gather
// cost charged on the virtual clock), and the collector issues large,
// coalesced, chunk-aligned writes on their behalf — members never touch the
// file system at all, which removes both the per-task open/token pressure
// and the one-write-per-task operation count. Reads run the same pipeline
// in reverse (collector reads, scatters to members).
//
// The on-disk format is the ordinary SION multifile: one logical chunk per
// member rank, so a file written collectively reads back per-rank through
// core::SionParFile::open_read (and vice versa). With Alignment::kPacked
// the chunks of a group are packed at `packing_granule` instead of one
// file-system block each — safe because a group has exactly one writer —
// and only group boundaries are padded to the real file-system block, which
// removes the "at least one file-system block per task" floor the paper
// calls out for small task payloads.
//
// Collective calls (open/write/read/read_skip/close) must be made by every
// rank of the communicator, in the same order, like every SIONlib
// collective. Recovery chunk frames are not supported in collective mode.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/par_file.h"
#include "fs/filesystem.h"
#include "par/comm.h"

namespace sion::ext {

struct CollectiveConfig {
  // Member ranks per collector (the collector itself included). 0 derives
  // the group size from collectors_per_file instead.
  int group_size = 0;

  // Used when group_size == 0: how many collector ranks each physical file
  // of the multifile set gets (SIONlib's "collectors per file" knob).
  int collectors_per_file = 1;

  // Cap on the collector-side aggregation buffer; payloads are shipped and
  // flushed in waves of at most this many bytes, so host memory stays
  // bounded regardless of payload size.
  std::uint64_t buffer_bytes = 4 * kMiB;

  enum class Alignment : std::uint8_t {
    // Classic SION alignment: every chunk padded to the real file-system
    // block. No packing win, but collectors still cut opens and op counts.
    kFsBlock,
    // Pack member chunks at packing_granule and pad each group's end to the
    // real file-system block, so different collectors never share a block.
    kPacked,
    // Pack with no group padding: adjacent collectors may share blocks
    // (exhibits Table-1-style lock ping-pong; for ablations).
    kNone,
  };
  Alignment alignment = Alignment::kPacked;

  // Chunk packing granule for kPacked/kNone (power of two). Clamped to the
  // real file-system block size.
  std::uint64_t packing_granule = 4 * kKiB;
};

class Collective {
 public:
  // Collective open for writing over `gcom`; every rank passes the same
  // filename/nfiles/mapping and config (chunksize may differ per rank).
  // Only collector ranks open the physical files.
  static Result<std::unique_ptr<Collective>> open_write(
      fs::FileSystem& fs, par::Comm& gcom, const core::ParOpenSpec& spec,
      const CollectiveConfig& config);

  // Collective open for reading; `gcom` must have as many ranks as the
  // multifile was written with. The file may have been written either
  // collectively or through core::SionParFile.
  static Result<std::unique_ptr<Collective>> open_read(
      fs::FileSystem& fs, par::Comm& gcom, const std::string& name,
      const CollectiveConfig& config);

  ~Collective();
  Collective(const Collective&) = delete;
  Collective& operator=(const Collective&) = delete;

  // Collective over the group: every member contributes its payload (sizes
  // may differ; empty is fine). Splits at chunk boundaries internally, like
  // sion_fwrite.
  Status write(fs::DataView data);

  // Collective over the group: every member receives up to out.size() bytes
  // of its own logical stream; returns the bytes actually delivered.
  Result<std::uint64_t> read(std::span<std::byte> out);

  // Collective over the group: every member receives its entire remaining
  // logical stream in one buffer. The compressed-checkpoint restore path
  // reads whole streams this way because compression frame boundaries do
  // not respect chunk boundaries (ext/compress.h).
  Result<std::vector<std::byte>> read_all();

  // Timing-only read: charges the full file-system and scatter cost and
  // advances the logical position without materialising payload bytes.
  Status read_skip(std::uint64_t nbytes);

  // Collective close; write mode gathers per-chunk usage to the file-local
  // master, which writes metablock 2 exactly like SionParFile::close.
  Status close();

  // ---- introspection ------------------------------------------------------
  [[nodiscard]] bool writable() const { return writable_; }
  [[nodiscard]] bool is_collector() const { return group_->rank() == 0; }
  [[nodiscard]] int group_size() const { return group_->size(); }
  [[nodiscard]] int nfiles() const { return nfiles_; }
  [[nodiscard]] const std::string& physical_path() const { return path_; }
  // Packing granule the chunks were laid out with (the header's fsblksize).
  [[nodiscard]] std::uint64_t granule() const { return granule_; }
  // Usable payload capacity of one chunk of this rank.
  [[nodiscard]] std::uint64_t chunk_capacity() const { return self_.capacity; }
  [[nodiscard]] std::uint64_t bytes_written_total() const;
  [[nodiscard]] std::uint64_t bytes_remaining_total() const;

 private:
  // Per-member chunk-walk state; offsets are absolute in the physical file.
  struct Cursor {
    std::uint64_t chunk_start0 = 0;  // this rank's chunk offset in block 0
    std::uint64_t capacity = 0;      // aligned chunk capacity
    std::uint64_t block = 0;
    std::uint64_t pos = 0;
  };

  Collective() = default;

  [[nodiscard]] std::uint64_t file_offset(const Cursor& c) const {
    return c.chunk_start0 + c.block * block_span_ + c.pos;
  }

  // Advance the logical write cursor by `n` payload bytes, growing
  // chunk_bytes_; members mirror exactly what the collector writes.
  void record_written(std::uint64_t n);

  // How many payload bytes this rank can still read (member-side book).
  [[nodiscard]] std::uint64_t remaining_from(
      const Cursor& c, std::span<const std::uint64_t> chunk_bytes) const;

  Status write_as_collector(fs::DataView own,
                            const std::vector<std::uint64_t>& sizes);
  Status write_as_member(fs::DataView data);
  Status read_as_collector(std::span<std::byte> own_out, bool skip,
                           const std::vector<std::uint64_t>& wants);
  Status read_as_member(std::span<std::byte> out, bool skip,
                        std::uint64_t want);
  Result<std::uint64_t> read_impl(std::span<std::byte> out, bool skip,
                                  std::uint64_t want);

  fs::FileSystem* fs_ = nullptr;
  par::Comm* gcom_ = nullptr;
  par::Comm* lcom_ = nullptr;   // per physical file
  par::Comm* group_ = nullptr;  // aggregation group within the file
  std::unique_ptr<fs::File> file_;  // collectors only
  std::string path_;
  bool writable_ = false;
  bool closed_ = false;
  int nfiles_ = 1;
  int filenum_ = 0;
  int lrank_ = 0;
  std::uint64_t granule_ = 0;
  std::uint64_t buffer_bytes_ = 0;
  std::uint64_t data_start_ = 0;
  std::uint64_t block_span_ = 0;

  Cursor self_;
  // Write mode: payload bytes per own chunk so far. Read mode: payload
  // bytes per own chunk as recorded in metablock 2.
  std::vector<std::uint64_t> chunk_bytes_;

  // Collector only: member geometry and read-side chunk usage (one flat
  // gather, sliced per group rank). Entry 0 mirrors self_ (both cursors
  // advance identically).
  std::vector<Cursor> members_;
  par::Comm::FlatGatherU64 member_chunk_bytes_;
};

}  // namespace sion::ext
