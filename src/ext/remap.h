// N->M checkpoint restart (paper sections 3.2.3/3.3): a multifile's
// metablocks make every writer rank's logical stream addressable after the
// fact, so a job that wrote its checkpoint with N tasks can be restarted
// with any task count M — the most common real restart scenario (job
// resubmitted at a different scale), which plain SionParFile::open_read
// rules out by requiring M == N.
//
// The pipeline, collective over the restart communicator `mcom` (M tasks):
//
//   1. Rank 0 opens the global view (core::SionSerialFile), learns the N
//      per-stream payload sizes from metablock 2, and broadcasts them.
//   2. The N source streams are assigned to readers with a contiguous,
//      byte-load-balanced partition: stream j goes to the reader whose share
//      of the total payload contains stream j's midpoint, so stream order is
//      preserved and every reader moves a similar byte volume.
//   3. Each task declares how many bytes of the *concatenated* global stream
//      (stream 0 ++ stream 1 ++ ... ++ stream N-1) it wants; the wants,
//      allgathered in rank order, define the destination partition.
//   4. Readers walk their streams in bounded waves (RemapConfig::
//      buffer_bytes) through SionSerialFile::read_at and ship each wave's
//      overlap with every destination range over par::Comm point-to-point,
//      so the virtual-time cost of restart-at-different-scale — disk reads
//      plus an alltoall-shaped redistribution — is modelled, not ignored.
//
// The file may have been written by SionParFile, SionSerialFile, or
// ext::Collective with any alignment mode: the walk uses only the geometry
// recorded in metablock 1 (kPacked packing never leaks into this path).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/serial_file.h"
#include "ext/compress.h"
#include "fs/filesystem.h"
#include "par/comm.h"

namespace sion::ext {

struct RemapConfig {
  // Cap on the per-reader staging buffer: streams are read and redistributed
  // in waves of at most this many bytes, so host memory stays bounded no
  // matter how large the checkpoint is.
  std::uint64_t buffer_bytes = 4 * kMiB;

  // Decode ext/compress.h framed streams on the reader side: stream sizes,
  // offsets and wants then all refer to *decoded* bytes, readers run each
  // source stream through a FrameStreamReader, and damaged frames arrive
  // zero-filled with the loss accounted in RemapStats::loss. Streams that do
  // not start with the frame sync marker pass through raw, so mixed and
  // uncompressed checkpoints restore unchanged.
  bool transparent_decompress = false;
};

// Per-task accounting of one restore, for benchmarks and diagnostics.
struct RemapStats {
  std::uint64_t bytes_read = 0;      // read from disk by this task
  std::uint64_t bytes_sent = 0;      // shipped to other tasks
  std::uint64_t bytes_received = 0;  // received from other tasks
  std::uint64_t bytes_local = 0;     // delivered without leaving this task
  // Transparent-decompression loss absorbed by this task's reads (see
  // RemapConfig::transparent_decompress); zero-initialized otherwise.
  StreamLossReport loss;
};

class Remap {
 public:
  // Collective open over `mcom` (any size, including 1). Every task learns
  // the writer count and per-stream sizes; only tasks that were assigned at
  // least one source stream open the multifile.
  static Result<std::unique_ptr<Remap>> open(fs::FileSystem& fs,
                                             par::Comm& mcom,
                                             const std::string& name,
                                             const RemapConfig& config = {});

  ~Remap();
  Remap(const Remap&) = delete;
  Remap& operator=(const Remap&) = delete;

  // ---- introspection ------------------------------------------------------
  [[nodiscard]] int nwriters() const { return nwriters_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  // Payload bytes source stream `writer_rank` holds.
  [[nodiscard]] std::uint64_t stream_bytes(int writer_rank) const {
    return stream_bytes_[static_cast<std::size_t>(writer_rank)];
  }
  // First source stream this task reads, and how many (contiguous).
  [[nodiscard]] int first_stream() const { return first_stream_; }
  [[nodiscard]] int nstreams() const { return nstreams_; }

  // The default destination partition: rank `m`'s slice of the concatenated
  // global stream when the payload is split contiguously and evenly over the
  // M restart tasks. Callers with structured payloads (e.g. fixed-size
  // particle records) pass their own `want` to restore() instead.
  [[nodiscard]] std::uint64_t even_share(int rank) const;
  [[nodiscard]] std::uint64_t even_share_offset(int rank) const;

  // Collective: every task receives `want` bytes of the concatenated global
  // stream, in rank order; the wants must sum to total_bytes(). Pass an
  // empty `out` for a timing-only restore (bytes are moved through the wave
  // pipeline and discarded). Otherwise out.size() must be >= want.
  Result<RemapStats> restore(std::span<std::byte> out, std::uint64_t want);

  // Collective close.
  Status close();

 private:
  Remap() = default;

  // Reader of source stream j under the contiguous byte-balanced partition.
  [[nodiscard]] int reader_of(int stream) const {
    return reader_of_[static_cast<std::size_t>(stream)];
  }

  fs::FileSystem* fs_ = nullptr;
  par::Comm* mcom_ = nullptr;
  std::string name_;
  std::uint64_t buffer_bytes_ = 0;
  bool transparent_ = false;
  bool closed_ = false;

  int nwriters_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::vector<std::uint64_t> stream_bytes_;   // per writer rank
  std::vector<std::uint64_t> stream_offset_;  // exclusive prefix sum
  std::vector<int> reader_of_;                // per writer rank
  int first_stream_ = 0;  // this task's contiguous stream range
  int nstreams_ = 0;

  // Open only on tasks with nstreams_ > 0.
  std::unique_ptr<core::SionSerialFile> view_;
};

}  // namespace sion::ext
