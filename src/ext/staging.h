// Asynchronous multi-tier staging (paper section 6, "staged I/O"): a
// node-local burst-buffer tier absorbs checkpoints at memory-like speed
// while a background drain agent ships them to the parallel file system,
// so compute overlaps the slow tier's write instead of blocking on it.
//
// Model. The fast tier is a second file system (for SimFs machines, built
// with fs::BurstBufferTierConfig so fault injection and counters work on it
// unchanged). A staged write is a real SION multifile write on that tier,
// charged to the calling tasks — that is the cost the application pays.
// The drain is *not* a task: the engine cannot spawn fibers mid-run, so the
// drain agent is a par::BackgroundWorker timeline per burst-buffer node
// (plus one for the parallel tier's ingest cap) on which every rank books
// identical jobs — the completion times are deterministic and bit-identical
// across ranks. The actual byte movement to the parallel tier happens
// lazily at the next synchronisation point (wait/drain/slot reuse) under
// fs::SimFs::ScopedFreeIo, so the bytes land without double-charging time
// the analytic drain already accounted for. A fast-tier fault (kLost,
// kTruncate) armed before that point makes the materialisation genuinely
// fail — recovery then falls back to the last fully drained checkpoint.
//
// Double buffering: checkpoint k occupies fast-tier slot k % buffers; the
// slot's previous occupant is always drained and materialised before the
// slot is rewritten, so an undrained buffer is never overwritten. With
// buddy protection, the burst buffer holds one copy and the drain fans out
// to primary + replica sets on the parallel tier (bytes x replicas on the
// drain link): replica set s's physical file j is the staged file of domain
// (j - s) mod D with the header's filenum patched — the same structural
// copy ext::Buddy's heal path uses in reverse. With ECC protection the
// burst buffer likewise holds one copy; the drain ships (1 + m/k)x the
// staged bytes and the materialisation fabricates the m parity files on
// the parallel tier from the drained primaries (ext::Ecc::encode_parity).
//
// All methods are collective over the communicator passed at open; every
// rank holds its own Staging instance and identical collective inputs keep
// the instances' drain timelines in lockstep.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/par_file.h"
#include "ext/buddy.h"
#include "ext/collective.h"
#include "ext/ecc.h"
#include "fs/filesystem.h"
#include "par/background.h"
#include "par/comm.h"

namespace sion::ext {

struct StagingConfig {
  // The node-local fast tier (required). For simulated machines, a SimFs
  // over fs::BurstBufferTierConfig(machine, ntasks).
  fs::FileSystem* fast_tier = nullptr;

  // Directory on the fast tier holding the staged slot files.
  std::string fast_dir = "bb";

  // In-flight staged checkpoints per node (2 = classic double buffering).
  int buffers = 2;

  // Copy granule of the lazy materialisation pass.
  std::uint64_t copy_buffer_bytes = 4 * kMiB;

  // Drain model knobs; 0 derives each from the parallel tier's
  // SimConfig::burst_buffer (required for non-Sim parallel tiers).
  int tasks_per_node = 0;
  double drain_bandwidth = 0.0;     // bytes/s per node
  std::uint64_t node_capacity = 0;  // bytes per node; 0 = unlimited
};

class Staging {
 public:
  enum class SlotState : std::uint8_t { kInFlight, kDrained, kFailed };

  // One staged checkpoint's drain, in submission order (index == position).
  struct DrainInfo {
    std::uint64_t index = 0;
    std::string final_name;      // parallel-tier multifile base name
    double drain_start = 0.0;    // all staged bytes absorbed
    double drain_finish = 0.0;   // durable on the parallel tier
    SlotState state = SlotState::kInFlight;
  };

  // Collective open. `sion_spec` is the template for the staged writes
  // (filename is the *final* base name; chunksize is set per write);
  // `collective` routes the staged fast-tier writes through
  // ext::Collective; `buddy` replicates during the drain (requires
  // sion_spec.nfiles == num_domains and comm.size() % domains == 0);
  // `ecc` encodes parity during the drain instead (sion_spec.nfiles == k,
  // mutually exclusive with `buddy`).
  static Result<std::unique_ptr<Staging>> open(
      fs::FileSystem& parallel_tier, par::Comm& comm, StagingConfig config,
      core::ParOpenSpec sion_spec, std::optional<CollectiveConfig> collective,
      std::optional<BuddyConfig> buddy, std::optional<EccConfig> ecc = {});

  // Collective: absorb checkpoint `index` (consecutive from 0) into its
  // fast-tier slot and book the background drain; returns the drain
  // completion time. Blocks (in virtual time) on the slot's previous
  // occupant first — including its materialisation, whose failure fails
  // this call.
  Result<double> write(std::uint64_t index, fs::DataView payload,
                       const std::string& final_name);

  // Collective: advance virtual time to checkpoint `index`'s drain
  // completion and materialise it (and every older in-flight checkpoint,
  // in order) on the parallel tier.
  Status wait(std::uint64_t index);

  // Collective: wait for everything submitted so far.
  Status drain_all();

  [[nodiscard]] const std::vector<DrainInfo>& history() const {
    return history_;
  }

  // Largest index whose drain completed (materialised successfully), or
  // nothing yet.
  [[nodiscard]] std::optional<std::uint64_t> last_drained() const;

 private:
  Staging() = default;

  [[nodiscard]] std::string slot_base(std::uint64_t index) const;
  Status write_staged(std::uint64_t index, fs::DataView payload);
  Status materialize(std::uint64_t index);
  Status copy_file(const std::string& src, const std::string& dst,
                   int patch_filenum);

  fs::FileSystem* pfs_ = nullptr;
  fs::FileSystem* fast_ = nullptr;
  par::Comm* comm_ = nullptr;
  StagingConfig config_;
  core::ParOpenSpec sion_spec_;
  std::optional<CollectiveConfig> collective_;
  std::optional<BuddyConfig> buddy_;
  std::optional<EccConfig> ecc_;
  int replicas_ = 1;
  // Bytes shipped over the drain links per staged byte: `replicas` for
  // buddy fan-out, 1 + m/k for ECC parity fabrication, 1 unprotected.
  double drain_copies_ = 1.0;
  int nnodes_ = 1;
  double global_drain_bandwidth_ = 0.0;  // parallel-tier ingest cap; 0 = off

  std::vector<par::BackgroundWorker> node_drain_;  // one agent per node
  par::BackgroundWorker global_drain_;             // shared ingest timeline

  std::vector<DrainInfo> history_;
  // Per checkpoint: bytes staged per burst-buffer node (capacity checks).
  std::vector<std::vector<std::uint64_t>> booked_node_bytes_;
  std::vector<std::uint64_t> node_bytes_scratch_;
  std::uint64_t first_unmaterialized_ = 0;
};

}  // namespace sion::ext
