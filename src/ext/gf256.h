// GF(256) arithmetic for the Reed-Solomon parity layer (ext/ecc.h).
//
// The field is GF(2^8) with the AES-unrelated primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the conventional choice of storage
// erasure codes. Multiplication goes through log/antilog tables built at
// compile time; the bulk operation every encode and decode loop reduces to
// is `dst ^= c * src` over a byte range, which GfMulTable serves with one
// 256-entry product row per coefficient (one table lookup + one XOR per
// byte).
//
// The encode matrix is systematic Cauchy: parity row j has elements
// c[j][d] = 1 / ((k + j) XOR d) over data columns d in [0, k). The index
// sets {0..k-1} and {k..k+m-1} are disjoint, so every element exists, and
// every square submatrix of a Cauchy matrix is nonsingular — stacking the
// identity on top yields an MDS code: ANY k of the k+m data+parity rows
// reconstruct the data, i.e. any m losses are survivable. Decode builds the
// k x k matrix of the surviving rows and inverts it by Gauss-Jordan.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace sion::ext {

namespace gf_internal {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled so mul needs no mod 255
};

constexpr Tables make_tables() {
  Tables t{};
  std::uint32_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if ((x & 0x100U) != 0) x ^= 0x11DU;
  }
  for (int i = 255; i < 512; ++i) {
    t.exp[static_cast<std::size_t>(i)] =
        t.exp[static_cast<std::size_t>(i - 255)];
  }
  return t;
}

inline constexpr Tables kTables = make_tables();

}  // namespace gf_internal

[[nodiscard]] inline std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = gf_internal::kTables;
  return t.exp[static_cast<std::size_t>(t.log[a]) +
               static_cast<std::size_t>(t.log[b])];
}

// Multiplicative inverse; a must be nonzero.
[[nodiscard]] inline std::uint8_t gf_inv(std::uint8_t a) {
  const auto& t = gf_internal::kTables;
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

[[nodiscard]] inline std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  return gf_mul(a, gf_inv(b));
}

// Element [j][d] of the Cauchy parity matrix for k data domains: row index
// j in [0, m), column d in [0, k). Requires k + j <= 255.
[[nodiscard]] inline std::uint8_t gf_cauchy(int k, int j, int d) {
  return gf_inv(static_cast<std::uint8_t>((k + j) ^ d));
}

// One coefficient's 256-entry product row: mul_add computes
// dst[i] ^= c * src[i] with a single lookup per byte. Coefficients 0
// (no-op) and 1 (plain XOR) are special-cased.
class GfMulTable {
 public:
  explicit GfMulTable(std::uint8_t c) : c_(c) {
    for (int v = 0; v < 256; ++v) {
      row_[static_cast<std::size_t>(v)] =
          gf_mul(c, static_cast<std::uint8_t>(v));
    }
  }

  [[nodiscard]] std::uint8_t coefficient() const { return c_; }

  // dst ^= c * src over min(dst.size(), src.size()) bytes.
  void mul_add(std::span<std::byte> dst, std::span<const std::byte> src) const;

 private:
  std::uint8_t c_ = 0;
  std::array<std::uint8_t, 256> row_{};
};

// Invert the k x k matrix `m` (row-major) in place by Gauss-Jordan with
// row pivoting. Fails on a singular matrix — which the Cauchy construction
// guarantees never happens for survivor matrices of this code, so a failure
// here means corrupted geometry, not data loss.
Status gf_invert_matrix(std::span<std::uint8_t> m, int k);

}  // namespace sion::ext
