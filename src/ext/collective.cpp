#include "ext/collective.h"

#include <algorithm>
#include <array>

#include "common/codec.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/layout.h"
#include "core/metadata.h"
#include "fs/path.h"
#include "par/engine.h"

namespace sion::ext {

namespace {

// Ship-protocol tags (member <-> collector, within one group).
constexpr int kTokenTag = 0xC01;  // flow control: "my buffer is free"
constexpr int kHdrTag = 0xC02;    // wave descriptor
constexpr int kDataTag = 0xC03;   // wave payload

// Wave descriptor: fill payloads ship as a descriptor only (their link cost
// is charged on the sender's clock), so terabyte-scale synthetic benchmark
// payloads never materialise in host memory.
struct WaveHeader {
  std::uint64_t len = 0;
  bool is_fill = false;
  std::byte fill{0};
};

constexpr std::size_t kWaveHeaderSize = 10;

// Headers are tiny and iteration-scoped on the sender, so they ship as a
// copying send from this stack buffer (payloads ship as views instead).
std::array<std::byte, kWaveHeaderSize> encode_header(const WaveHeader& h) {
  std::array<std::byte, kWaveHeaderSize> buf{};
  detail::store_le(buf.data(), h.len);
  buf[8] = std::byte{h.is_fill ? std::uint8_t{1} : std::uint8_t{0}};
  buf[9] = h.fill;
  return buf;
}

Result<WaveHeader> decode_header(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  WaveHeader h;
  SION_ASSIGN_OR_RETURN(h.len, r.get_u64());
  SION_ASSIGN_OR_RETURN(const std::uint8_t fill_flag, r.get_u8());
  h.is_fill = fill_flag != 0;
  SION_ASSIGN_OR_RETURN(const std::uint8_t fill, r.get_u8());
  h.fill = static_cast<std::byte>(fill);
  return h;
}

// Shared wording for the par::share_status*/agree_status agreement helpers
// (see par/comm.h): a failure on the collector, on another physical file, or
// on another group rank must surface on every task.
constexpr char kAggregationFailed[] =
    "collective aggregation failed on another rank";

// Collective agreement at the end of a data op: protocol messages always
// complete (with dummy payloads on error); the outcome is agreed here.
Status agree(par::Comm& comm, const Status& mine) {
  return par::agree_status(comm, mine, kAggregationFailed);
}

// Collector-side write coalescer: segments are appended in file order and
// merged into maximal contiguous ranges; flush() issues one pwrite per
// merged range — the "large, chunk-aligned writes on the members' behalf".
//
// Real-byte segments are NOT copied: they stay as spans into the shipping
// members' buffers (alive until the collective write returns, per the Comm
// view contract) and reach the file system as one gather DataView per
// range. Fills stay O(1). The flush threshold counts staged real bytes, so
// the flush points — and therefore the simulated pwrite sequence — are
// identical to the old copying aggregator's.
class WriteAggregator {
 public:
  WriteAggregator(fs::File& file, std::uint64_t cap)
      : file_(&file), cap_(std::max<std::uint64_t>(1, cap)) {}

  Status add(std::uint64_t offset, fs::DataView data) {
    if (data.size() == 0) return Status::Ok();
    Range* last = ranges_.empty() ? nullptr : &ranges_.back();
    const bool mergeable =
        last != nullptr && last->offset + last->len == offset &&
        last->is_fill == data.is_fill() &&
        (!data.is_fill() || last->fill == data.fill_byte());
    if (data.is_fill()) {
      if (mergeable) {
        last->len += data.size();
      } else {
        ranges_.push_back(
            Range{offset, data.size(), true, data.fill_byte(), segs_.size(), 0});
      }
      return Status::Ok();
    }
    if (mergeable) {
      segs_.push_back(data);
      last->len += data.size();
      ++last->seg_count;
    } else {
      ranges_.push_back(Range{offset, data.size(), false, std::byte{0},
                              segs_.size(), 1});
      segs_.push_back(data);
    }
    staged_ += data.size();
    if (staged_ >= cap_) return flush();
    return Status::Ok();
  }

  Status flush() {
    for (const Range& r : ranges_) {
      fs::DataView view = fs::DataView::fill(r.fill, r.len);
      if (!r.is_fill) {
        view = r.seg_count == 1
                   ? segs_[r.seg_begin]
                   : fs::DataView::gather(std::span<const fs::DataView>(
                         segs_.data() + r.seg_begin, r.seg_count));
      }
      SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                            file_->pwrite(view, r.offset));
      (void)n;
    }
    ranges_.clear();
    segs_.clear();
    staged_ = 0;
    return Status::Ok();
  }

 private:
  struct Range {
    std::uint64_t offset;
    std::uint64_t len;
    bool is_fill;
    std::byte fill;
    std::size_t seg_begin;  // into segs_ when !is_fill
    std::size_t seg_count;
  };

  fs::File* file_;
  std::uint64_t cap_;
  std::uint64_t staged_ = 0;          // real bytes staged since last flush
  std::vector<fs::DataView> segs_;    // zero-copy source segments
  std::vector<Range> ranges_;
};

}  // namespace

// ---------------------------------------------------------------------------
// open for writing
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Collective>> Collective::open_write(
    fs::FileSystem& fs, par::Comm& gcom, const core::ParOpenSpec& spec,
    const CollectiveConfig& config) {
  const int grank = gcom.rank();
  const int gsize = gcom.size();
  if (spec.chunksize == 0) return InvalidArgument("chunksize must be positive");
  if (spec.chunk_frames) {
    return InvalidArgument(
        "recovery chunk frames are not supported in collective mode");
  }
  SION_ASSIGN_OR_RETURN(const core::FileMap map,
                        core::FileMap::make(spec.mapping, gsize, spec.nfiles,
                                            spec.custom_file_of_rank));

  auto out = std::unique_ptr<Collective>(new Collective());
  out->fs_ = &fs;
  out->gcom_ = &gcom;
  out->writable_ = true;
  out->nfiles_ = map.nfiles();
  out->filenum_ = map.file_of(grank);
  out->path_ =
      core::physical_file_name(spec.filename, out->filenum_, map.nfiles());
  out->buffer_bytes_ = std::max<std::uint64_t>(1, config.buffer_bytes);

  out->lcom_ = gcom.split(out->filenum_, grank);
  SION_CHECK(out->lcom_ != nullptr) << "split returned no communicator";
  par::Comm& lcom = *out->lcom_;
  out->lrank_ = lcom.rank();
  const int lsize = lcom.size();
  const bool master = out->lrank_ == 0;

  int group_size = config.group_size;
  if (group_size <= 0) {
    group_size = static_cast<int>(
        ceil_div(static_cast<std::uint64_t>(lsize),
                 static_cast<std::uint64_t>(
                     std::max(1, config.collectors_per_file))));
  }
  out->group_ = lcom.split_groups(group_size);
  SION_CHECK(out->group_ != nullptr) << "split_groups returned no communicator";
  group_size = out->group_->size();  // last group may be smaller
  const bool collector = out->group_->rank() == 0;

  // The file-local master detects the real file-system block size; group
  // padding is computed against it even when chunks pack at a finer granule.
  Status st;
  std::uint64_t real_blk = spec.fsblksize;
  if (real_blk == 0) {
    if (master) {
      auto detected = fs.block_size(fs::parent(out->path_));
      if (detected.ok()) {
        real_blk = detected.value();
      } else {
        st = detected.status();
      }
    }
    SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kAggregationFailed));
    real_blk = lcom.bcast_u64(real_blk, 0);
  }
  if (!is_power_of_two(real_blk)) {
    return InvalidArgument("file-system block size must be a power of two");
  }
  std::uint64_t granule = real_blk;
  if (config.alignment != CollectiveConfig::Alignment::kFsBlock) {
    granule = std::min(
        config.packing_granule != 0 ? config.packing_granule : real_blk,
        real_blk);
    if (!is_power_of_two(granule) || real_blk % granule != 0) {
      granule = real_blk;
    }
  }
  out->granule_ = granule;

  auto chunksizes = lcom.gather_u64(spec.chunksize, 0);
  const auto granks =
      lcom.gather_u64(static_cast<std::uint64_t>(grank), 0);

  // Master lays the file out and writes metablock 1; the layout is the
  // ordinary SION geometry with fsblksize = granule, so any reader
  // reconstructs it from the header alone.
  std::uint64_t data_start = 0;
  std::uint64_t block_span = 0;
  std::vector<std::uint64_t> chunk_offsets;
  std::vector<std::uint64_t> requested;
  st = Status::Ok();
  if (master) {
    core::FileHeader header;
    header.fsblksize = granule;
    header.ntasks = static_cast<std::uint32_t>(lsize);
    header.nfiles = static_cast<std::uint32_t>(map.nfiles());
    header.filenum = static_cast<std::uint32_t>(out->filenum_);
    header.global_ranks = granks;
    header.chunksizes_req = chunksizes;
    // serialize() size depends only on the task count, so the pre-padding
    // header already has the final metablock-1 size.
    const std::uint64_t meta1_size = header.serialize().size();
    if (config.alignment == CollectiveConfig::Alignment::kPacked &&
        granule < real_blk) {
      // Pad each group's last chunk so the group ends on a real file-system
      // block boundary: a group has exactly one writer, so only boundaries
      // *between* groups can false-share, and this removes them.
      const std::uint64_t start = round_up(meta1_size, granule);
      std::uint64_t prefix = 0;
      for (int t = 0; t < lsize; ++t) {
        const auto i = static_cast<std::size_t>(t);
        std::uint64_t aligned = round_up(chunksizes[i], granule);
        const bool group_end =
            t % group_size == group_size - 1 || t == lsize - 1;
        if (group_end) {
          const std::uint64_t end_abs = start + prefix + aligned;
          const std::uint64_t pad = round_up(end_abs, real_blk) - end_abs;
          chunksizes[i] += pad;
          aligned += pad;
        }
        prefix += aligned;
      }
      header.chunksizes_req = chunksizes;
    }
    const std::vector<std::byte> meta1 = header.serialize();
    auto layout = core::FileLayout::create(granule, chunksizes, meta1.size());
    if (!layout.ok()) {
      st = layout.status();
    } else {
      data_start = layout.value().data_start();
      block_span = layout.value().block_span();
      chunk_offsets.resize(static_cast<std::size_t>(lsize));
      for (int t = 0; t < lsize; ++t) {
        chunk_offsets[static_cast<std::size_t>(t)] =
            layout.value().chunk_offset_in_block(t);
      }
      auto created = fs.create(out->path_);
      if (!created.ok()) {
        st = created.status();
      } else {
        out->file_ = std::move(created).value();
        auto wrote = out->file_->pwrite(fs::DataView(meta1), 0);
        if (!wrote.ok()) st = wrote.status();
      }
    }
    requested = chunksizes;
  }
  SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kAggregationFailed));

  std::uint64_t geom[2] = {data_start, block_span};
  lcom.bcast_u64_seq(geom, 0);
  data_start = geom[0];
  block_span = geom[1];
  const auto [my_offset, my_request] =
      lcom.scatter2_u64(chunk_offsets, requested, 0);
  out->data_start_ = data_start;
  out->block_span_ = block_span;
  out->self_.chunk_start0 = data_start + my_offset;
  out->self_.capacity = round_up(my_request, granule);

  // Only collectors open the physical file — this is where the aggregated
  // path sheds the per-task metadata/open pressure (SimFs accounts for it
  // through cached opens and the client_open_service token model).
  st = Status::Ok();
  if (collector && !master) {
    auto opened = fs.open_rw(out->path_);
    if (!opened.ok()) {
      st = opened.status();
    } else {
      out->file_ = std::move(opened).value();
    }
  }
  SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kAggregationFailed));

  // The collector learns its members' chunk geometry once; every later
  // chunk address is computed locally (paper 3.1, lifted to groups).
  const auto starts = out->group_->gather_u64(out->self_.chunk_start0, 0);
  const auto caps = out->group_->gather_u64(out->self_.capacity, 0);
  if (collector) {
    out->members_.resize(static_cast<std::size_t>(group_size));
    for (int m = 0; m < group_size; ++m) {
      const auto i = static_cast<std::size_t>(m);
      out->members_[i].chunk_start0 = starts[i];
      out->members_[i].capacity = caps[i];
    }
  }

  out->chunk_bytes_.assign(1, 0);
  gcom.barrier();
  return out;
}

// ---------------------------------------------------------------------------
// open for reading
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Collective>> Collective::open_read(
    fs::FileSystem& fs, par::Comm& gcom, const std::string& name,
    const CollectiveConfig& config) {
  const int grank = gcom.rank();
  const int gsize = gcom.size();

  // The global master (a collector by construction) discovers the multifile
  // set and scatters the rank -> file map, as in SionParFile::open_read.
  Status st;
  std::uint64_t nfiles_u64 = 0;
  std::vector<std::uint64_t> file_of_rank;
  if (grank == 0) {
    st = [&]() -> Status {
      std::string first = name;
      if (!fs.exists(first)) first = core::physical_file_name(name, 0, 2);
      SION_ASSIGN_OR_RETURN(auto file0, fs.open_read(first));
      SION_ASSIGN_OR_RETURN(const core::FileHeader h0,
                            core::read_header(*file0));
      const int nfiles = static_cast<int>(h0.nfiles);
      std::uint64_t total_tasks = 0;
      file_of_rank.assign(static_cast<std::size_t>(gsize), 0);
      for (int f = 0; f < nfiles; ++f) {
        core::FileHeader h = h0;
        if (f != 0) {
          SION_ASSIGN_OR_RETURN(
              auto file,
              fs.open_read(core::physical_file_name(name, f, nfiles)));
          SION_ASSIGN_OR_RETURN(h, core::read_header(*file));
        }
        total_tasks += h.ntasks;
        for (const std::uint64_t r : h.global_ranks) {
          if (r >= static_cast<std::uint64_t>(gsize)) {
            return InvalidArgument(strformat(
                "multifile was written by rank %llu but only %d tasks "
                "opened it (task count must match the writer)",
                static_cast<unsigned long long>(r), gsize));
          }
          file_of_rank[r] = static_cast<std::uint64_t>(f);
        }
      }
      if (total_tasks != static_cast<std::uint64_t>(gsize)) {
        return InvalidArgument(strformat(
            "multifile holds %llu logical files but %d tasks opened it",
            static_cast<unsigned long long>(total_tasks), gsize));
      }
      nfiles_u64 = static_cast<std::uint64_t>(nfiles);
      return Status::Ok();
    }();
  }
  SION_RETURN_IF_ERROR(par::share_status(gcom, st, 0, kAggregationFailed));

  const std::uint64_t nfiles = gcom.bcast_u64(nfiles_u64, 0);
  const std::uint64_t my_file = gcom.scatter_u64(file_of_rank, 0);
  file_of_rank.clear();
  file_of_rank.shrink_to_fit();

  auto out = std::unique_ptr<Collective>(new Collective());
  out->fs_ = &fs;
  out->gcom_ = &gcom;
  out->writable_ = false;
  out->nfiles_ = static_cast<int>(nfiles);
  out->filenum_ = static_cast<int>(my_file);
  out->path_ = core::physical_file_name(name, out->filenum_, out->nfiles_);
  out->buffer_bytes_ = std::max<std::uint64_t>(1, config.buffer_bytes);

  out->lcom_ = gcom.split(out->filenum_, grank);
  SION_CHECK(out->lcom_ != nullptr) << "split returned no communicator";
  par::Comm& lcom = *out->lcom_;
  out->lrank_ = lcom.rank();
  const int lsize = lcom.size();
  const bool master = out->lrank_ == 0;

  int group_size = config.group_size;
  if (group_size <= 0) {
    group_size = static_cast<int>(
        ceil_div(static_cast<std::uint64_t>(lsize),
                 static_cast<std::uint64_t>(
                     std::max(1, config.collectors_per_file))));
  }
  out->group_ = lcom.split_groups(group_size);
  SION_CHECK(out->group_ != nullptr) << "split_groups returned no communicator";
  group_size = out->group_->size();
  const bool collector = out->group_->rank() == 0;

  // The file-local master parses both metablocks and scatters every task's
  // view, so members learn their geometry without touching the file system.
  st = Status::Ok();
  std::uint64_t granule = 0;
  std::uint64_t data_start = 0;
  std::uint64_t block_span = 0;
  std::vector<std::uint64_t> chunk_offsets;
  std::vector<std::uint64_t> requested;
  std::vector<std::byte> blobs_flat;
  std::vector<std::uint64_t> blob_sizes;
  if (master) {
    st = [&]() -> Status {
      SION_ASSIGN_OR_RETURN(auto file, fs.open_read(out->path_));
      SION_ASSIGN_OR_RETURN(const core::FileHeader header,
                            core::read_header(*file));
      if (static_cast<int>(header.ntasks) != lsize) {
        return InvalidArgument(
            strformat("physical file %s holds %u logical files but %d tasks "
                      "opened it",
                      out->path_.c_str(), header.ntasks, lsize));
      }
      if ((header.flags & core::kFlagChunkFrames) != 0) {
        return InvalidArgument(
            "collective read of a chunk-framed file is not supported");
      }
      SION_ASSIGN_OR_RETURN(const core::FileMeta2 meta2,
                            core::read_meta2(*file, header));
      if (meta2.bytes_written.size() != header.ntasks) {
        return Corrupt("metablock 2 task count mismatch");
      }
      const std::vector<std::byte> meta1 = header.serialize();
      SION_ASSIGN_OR_RETURN(
          const core::FileLayout layout,
          core::FileLayout::create(header.fsblksize, header.chunksizes_req,
                                   meta1.size()));
      granule = header.fsblksize;
      data_start = layout.data_start();
      block_span = layout.block_span();
      chunk_offsets.resize(header.ntasks);
      requested.resize(header.ntasks);
      blob_sizes.resize(header.ntasks);
      ByteWriter w;
      for (std::uint32_t t = 0; t < header.ntasks; ++t) {
        chunk_offsets[t] = layout.chunk_offset_in_block(static_cast<int>(t));
        requested[t] = header.chunksizes_req[t];
        const std::size_t at = w.size();
        w.put_u64_array(meta2.bytes_written[t]);
        blob_sizes[t] = w.size() - at;
      }
      blobs_flat = w.take();
      out->file_ = std::move(file);
      return Status::Ok();
    }();
  }
  SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kAggregationFailed));

  std::uint64_t geom[3] = {granule, data_start, block_span};
  lcom.bcast_u64_seq(geom, 0);
  granule = geom[0];
  data_start = geom[1];
  block_span = geom[2];
  const auto [my_offset, my_request] =
      lcom.scatter2_u64(chunk_offsets, requested, 0);
  const std::vector<std::byte> my_blob =
      lcom.scatterv_bytes_flat(blobs_flat, blob_sizes, 0);
  ByteReader blob_reader(my_blob);
  SION_ASSIGN_OR_RETURN(auto chunk_bytes, blob_reader.get_u64_array());

  out->granule_ = granule;
  out->data_start_ = data_start;
  out->block_span_ = block_span;
  out->self_.chunk_start0 = data_start + my_offset;
  out->self_.capacity = round_up(my_request, granule);
  out->chunk_bytes_ = std::move(chunk_bytes);
  if (out->chunk_bytes_.empty()) out->chunk_bytes_.assign(1, 0);

  st = Status::Ok();
  if (collector && !master) {
    auto opened = fs.open_read(out->path_);
    if (!opened.ok()) {
      st = opened.status();
    } else {
      out->file_ = std::move(opened).value();
    }
  }
  SION_RETURN_IF_ERROR(par::share_status_global(lcom, gcom, st, 0, kAggregationFailed));

  const auto starts = out->group_->gather_u64(out->self_.chunk_start0, 0);
  const auto caps = out->group_->gather_u64(out->self_.capacity, 0);
  auto usage = out->group_->gatherv_u64_flat(out->chunk_bytes_, 0);
  if (collector) {
    out->members_.resize(static_cast<std::size_t>(group_size));
    for (int m = 0; m < group_size; ++m) {
      const auto i = static_cast<std::size_t>(m);
      out->members_[i].chunk_start0 = starts[i];
      out->members_[i].capacity = caps[i];
    }
    out->member_chunk_bytes_ = std::move(usage);
  }

  gcom.barrier();
  return out;
}

Collective::~Collective() {
  if (!closed_ && writable_) {
    SION_LOG_WARN << "collective SION file " << path_
                  << " destroyed without collective close; metablock 2 was "
                     "not written";
  }
}

// ---------------------------------------------------------------------------
// write path
// ---------------------------------------------------------------------------

void Collective::record_written(std::uint64_t n) {
  std::uint64_t done = 0;
  while (done < n) {
    if (self_.pos == self_.capacity) {
      ++self_.block;
      self_.pos = 0;
      chunk_bytes_.push_back(0);
    }
    const std::uint64_t take = std::min(self_.capacity - self_.pos, n - done);
    self_.pos += take;
    chunk_bytes_[self_.block] += take;
    done += take;
  }
}

Status Collective::write_as_collector(fs::DataView own,
                                      const std::vector<std::uint64_t>& sizes) {
  WriteAggregator agg(*file_, buffer_bytes_);
  Status st;
  for (int m = 0; m < group_->size(); ++m) {
    Cursor& c = members_[static_cast<std::size_t>(m)];
    std::uint64_t remaining = sizes[static_cast<std::size_t>(m)];
    std::uint64_t done = 0;
    while (remaining > 0) {
      const std::uint64_t wave = std::min(buffer_bytes_, remaining);
      fs::DataView piece = fs::DataView::fill(std::byte{0}, 0);
      if (m == 0) {
        piece = own.subview(done, wave);
      } else {
        // Token-paced ship: the member sends a wave only when the collector
        // is ready, so at most one wave per group is in flight. Both sides
        // compute wave sizes from the gathered totals, so a mismatch is a
        // protocol bug, not a recoverable I/O error. Payloads arrive as
        // views into the member's buffer — valid until that member's
        // write() returns, which the closing agreement sequences after the
        // final flush — so nothing is staged or copied on the way to the
        // coalescer.
        group_->send_bytes({}, m, kTokenTag);
        const std::vector<std::byte> hdr_bytes =
            group_->recv_bytes(m, kHdrTag);
        auto hdr = decode_header(hdr_bytes);
        SION_CHECK(hdr.ok() && hdr.value().len == wave)
            << "aggregation wave descriptor mismatch";
        if (hdr.value().is_fill) {
          piece = fs::DataView::fill(hdr.value().fill, wave);
        } else {
          const std::span<const std::byte> wave_view =
              group_->recv_view(m, kDataTag);
          SION_CHECK(wave_view.size() == wave)
              << "aggregation wave payload mismatch";
          piece = fs::DataView(wave_view);
        }
      }
      // Segment the wave at the member's chunk boundaries and feed the
      // coalescer; contiguous chunks of adjacent members merge into one
      // large write when the packing leaves no gaps.
      std::uint64_t piece_done = 0;
      while (piece_done < wave) {
        if (c.pos == c.capacity) {
          ++c.block;
          c.pos = 0;
        }
        const std::uint64_t take =
            std::min(c.capacity - c.pos, wave - piece_done);
        if (st.ok()) {
          const Status added =
              agg.add(file_offset(c), piece.subview(piece_done, take));
          if (!added.ok()) st = added;
        }
        c.pos += take;
        piece_done += take;
      }
      remaining -= wave;
      done += wave;
    }
  }
  if (st.ok()) st = agg.flush();
  return st;
}

Status Collective::write_as_member(fs::DataView data) {
  std::uint64_t remaining = data.size();
  std::uint64_t done = 0;
  while (remaining > 0) {
    const std::uint64_t wave = std::min(buffer_bytes_, remaining);
    const fs::DataView piece = data.subview(done, wave);
    (void)group_->recv_bytes(0, kTokenTag);
    WaveHeader hdr;
    hdr.len = wave;
    hdr.is_fill = piece.is_fill();
    if (piece.is_fill()) {
      hdr.fill = piece.fill_byte();
      // The payload never materialises; charge its link time here so the
      // virtual clock sees the same gather cost as a real ship.
      par::this_task()->compute(group_->network().p2p_cost(wave));
      group_->send_bytes(encode_header(hdr), 0, kHdrTag);
    } else {
      group_->send_bytes(encode_header(hdr), 0, kHdrTag);
      group_->send_view(piece.bytes(), 0, kDataTag);
    }
    remaining -= wave;
    done += wave;
  }
  return Status::Ok();
}

Status Collective::write(fs::DataView data) {
  if (!writable_) return FailedPrecondition("file opened for reading");
  if (closed_) return FailedPrecondition("file already closed");
  const auto sizes = group_->gather_u64(data.size(), 0);
  Status st;
  if (is_collector()) {
    st = write_as_collector(data, sizes);
  } else {
    st = write_as_member(data);
  }
  record_written(data.size());
  return agree(*group_, st);
}

// ---------------------------------------------------------------------------
// read path
// ---------------------------------------------------------------------------

std::uint64_t Collective::remaining_from(
    const Cursor& c, std::span<const std::uint64_t> chunk_bytes) const {
  std::uint64_t total = 0;
  for (std::uint64_t b = c.block; b < chunk_bytes.size(); ++b) {
    total += chunk_bytes[b] - (b == c.block ? c.pos : 0);
  }
  return total;
}

Status Collective::read_as_collector(std::span<std::byte> own_out, bool skip,
                                     const std::vector<std::uint64_t>& wants) {
  Status st;
  std::vector<std::byte> wave_buf;
  for (int m = 0; m < group_->size(); ++m) {
    Cursor& c = members_[static_cast<std::size_t>(m)];
    const auto usage = member_chunk_bytes_.of(m);
    std::uint64_t deliver =
        std::min(wants[static_cast<std::size_t>(m)], remaining_from(c, usage));
    std::uint64_t out_pos = 0;
    while (deliver > 0) {
      const std::uint64_t wave = std::min(buffer_bytes_, deliver);
      if (m != 0) {
        (void)group_->recv_bytes(m, kTokenTag);
        // Only shipped waves stage in wave_buf; the collector's own data
        // reads straight into own_out.
        wave_buf.resize(static_cast<std::size_t>(skip ? 0 : wave));
      }
      std::uint64_t got = 0;
      while (got < wave) {
        std::uint64_t avail = usage[c.block] - c.pos;
        if (avail == 0) {
          ++c.block;
          c.pos = 0;
          continue;
        }
        const std::uint64_t take = std::min(wave - got, avail);
        if (st.ok()) {
          if (skip) {
            const Status read = file_->pread_discard(take, file_offset(c));
            if (!read.ok()) st = read;
          } else {
            std::span<std::byte> dst =
                m == 0 ? own_out.subspan(out_pos + got, take)
                       : std::span<std::byte>(wave_buf).subspan(got, take);
            auto read = file_->pread(dst, file_offset(c));
            if (!read.ok()) {
              st = read.status();
            } else if (read.value() != take) {
              st = Corrupt("short read in collective scatter");
            }
          }
        }
        c.pos += take;
        got += take;
      }
      if (m != 0) {
        if (skip) {
          // Timing-only restore: charge the scatter link time and hand the
          // member a completion descriptor instead of payload bytes.
          par::this_task()->compute(group_->network().p2p_cost(wave));
          WaveHeader hdr;
          hdr.len = wave;
          hdr.is_fill = true;
          group_->send_bytes(encode_header(hdr), m, kHdrTag);
        } else {
          group_->send_bytes(wave_buf, m, kDataTag);
        }
      }
      out_pos += wave;
      deliver -= wave;
    }
  }
  return st;
}

Status Collective::read_as_member(std::span<std::byte> out, bool skip,
                                  std::uint64_t want) {
  std::uint64_t deliver = std::min(want, remaining_from(self_, chunk_bytes_));
  std::uint64_t out_pos = 0;
  Status st;
  while (deliver > 0) {
    const std::uint64_t wave = std::min(buffer_bytes_, deliver);
    group_->send_bytes({}, 0, kTokenTag);
    if (skip) {
      const std::vector<std::byte> hdr_bytes = group_->recv_bytes(0, kHdrTag);
      auto hdr = decode_header(hdr_bytes);
      if (st.ok()) {
        if (!hdr.ok()) {
          st = hdr.status();
        } else if (hdr.value().len != wave) {
          st = Internal("scatter wave size mismatch");
        }
      }
    } else {
      const std::vector<std::byte> data = group_->recv_bytes(0, kDataTag);
      if (st.ok() && data.size() != wave) {
        st = Internal("scatter wave payload mismatch");
      }
      if (st.ok()) {
        std::copy(data.begin(), data.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(out_pos));
      }
    }
    out_pos += wave;
    deliver -= wave;
  }
  return st;
}

Result<std::uint64_t> Collective::read_impl(std::span<std::byte> out,
                                            bool skip, std::uint64_t want) {
  if (writable_) return FailedPrecondition("file opened for writing");
  if (closed_) return FailedPrecondition("file already closed");
  const std::uint64_t deliver =
      std::min(want, remaining_from(self_, chunk_bytes_));
  const auto wants = group_->gather_u64(want, 0);
  Status st;
  if (is_collector()) {
    st = read_as_collector(out, skip, wants);
  } else {
    st = read_as_member(out, skip, want);
  }
  // Members advance their logical cursor in lockstep with the collector's
  // walk of the same chunk_bytes book.
  std::uint64_t done = 0;
  while (done < deliver) {
    const std::uint64_t avail = chunk_bytes_[self_.block] - self_.pos;
    if (avail == 0) {
      ++self_.block;
      self_.pos = 0;
      continue;
    }
    const std::uint64_t take = std::min(deliver - done, avail);
    self_.pos += take;
    done += take;
  }
  SION_RETURN_IF_ERROR(agree(*group_, st));
  return deliver;
}

Result<std::uint64_t> Collective::read(std::span<std::byte> out) {
  return read_impl(out, /*skip=*/false, out.size());
}

Result<std::vector<std::byte>> Collective::read_all() {
  const std::uint64_t total = bytes_remaining_total();
  std::vector<std::byte> out(static_cast<std::size_t>(total));
  SION_ASSIGN_OR_RETURN(const std::uint64_t got, read(out));
  if (got != total) {
    return Corrupt(strformat("collective stream delivered %llu of %llu "
                             "remaining bytes",
                             static_cast<unsigned long long>(got),
                             static_cast<unsigned long long>(total)));
  }
  return out;
}

Status Collective::read_skip(std::uint64_t nbytes) {
  SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                        read_impl({}, /*skip=*/true, nbytes));
  (void)n;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// close
// ---------------------------------------------------------------------------

Status Collective::close() {
  if (closed_) return FailedPrecondition("file already closed");
  par::Comm& lcom = *lcom_;
  if (writable_) {
    const auto all = lcom.gatherv_u64_flat(chunk_bytes_, 0);
    Status st;
    if (lrank_ == 0) {
      core::FileMeta2 meta2;
      meta2.bytes_written.resize(static_cast<std::size_t>(lcom.size()));
      for (int t = 0; t < lcom.size(); ++t) {
        const auto piece = all.of(t);
        meta2.bytes_written[static_cast<std::size_t>(t)]
            .assign(piece.begin(), piece.end());
      }
      const std::uint64_t nblocks =
          std::max<std::uint64_t>(1, meta2.nblocks());
      const std::uint64_t meta2_offset = data_start_ + nblocks * block_span_;
      st = core::write_meta2_and_trailer(*file_, meta2_offset, nblocks, meta2);
    }
    SION_RETURN_IF_ERROR(par::share_status_global(lcom, *gcom_, st, 0, kAggregationFailed));
  }
  file_.reset();
  closed_ = true;
  gcom_->barrier();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// totals
// ---------------------------------------------------------------------------

std::uint64_t Collective::bytes_written_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : chunk_bytes_) total += b;
  return total;
}

std::uint64_t Collective::bytes_remaining_total() const {
  return remaining_from(self_, chunk_bytes_);
}

}  // namespace sion::ext
