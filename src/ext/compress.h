// Transparent, corruption-tolerant compression for SION logical streams
// (paper section 6 lists "transparent file compression" as planned work; the
// Scalasca use case in section 5.2 compresses trace data before writing).
//
// A logical stream is encoded as a sequence of independent frames, each
// compressing one chunk of at most CompressionSpec::chunk_bytes raw bytes:
//
//   offset  size  field
//   0       8     sync marker (kFrameSync, never produced by accident)
//   8       4     u32 comp_bytes — length of the slz stream
//   12      4     u32 raw_bytes  — uncompressed payload length
//   16      4     u32 CRC32C over bytes [0, 16) (sync + lengths)
//   20      comp  slz stream (ext/slz.h)
//   20+comp 4     u32 CRC32C over the slz stream
//
// The header CRC means torn or bit-flipped length fields are detected
// without trusting them; the raw size in the header means a frame whose
// *payload* is damaged can be zero-filled with its exact extent, so every
// later byte of the stream keeps its position. Decoding degrades instead of
// aborting: a bad payload CRC zero-fills the frame, a bad header triggers a
// forward scan to the next sync marker (in the spirit of protoseq sync
// sequences / the LightweightFEC CRC-trailer frames), and all loss is
// accounted in a StreamLossReport (ext/recovery.h) for the restart status
// machinery rather than thrown away as an error.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/par_file.h"
#include "core/serial_file.h"
#include "ext/recovery.h"

namespace sion::ext {

// 8 bytes that are neither ASCII-likely nor an slz/SION magic; the leading
// 0xF5 keeps it out of UTF-8 text and the embedded 0x1A (SUB) out of
// accidental line-based tooling.
inline constexpr std::array<std::byte, 8> kFrameSync = {
    std::byte{0xF5}, std::byte{'S'},  std::byte{'L'},  std::byte{'Z'},
    std::byte{'F'},  std::byte{0x1A}, std::byte{0xA7}, std::byte{0x5C}};

inline constexpr std::uint64_t kFrameHeaderBytes = 20;
inline constexpr std::uint64_t kFrameTrailerBytes = 4;
// Format caps, protected by the header CRC: a frame may carry at most 1 GiB
// of raw payload, and an slz stream for n bytes is at most n + 17 bytes
// (one literal run), so anything claiming more is garbage, not a frame.
inline constexpr std::uint64_t kMaxFrameRawBytes = kGiB;
inline constexpr std::uint64_t kMaxFrameCompBytes = kGiB + 64;

// Software CRC32C (Castagnoli, reflected 0x82F63B78) — no external deps.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data);

// Knobs for the framed-compression stream path, carried as an optional
// sub-spec of workloads::CheckpointSpec (and by TracerSpec).
struct CompressionSpec {
  // Raw bytes per frame. Smaller chunks bound the blast radius of one
  // damaged frame; larger chunks compress better. Clamped to
  // [512, kMaxFrameRawBytes] by compress_stream.
  std::uint64_t chunk_bytes = 256 * kKiB;

  // Read side: when set, restore paths accumulate the restart's global loss
  // accounting here (what was zero-filled or discarded instead of failing).
  StreamLossReport* loss_report = nullptr;
};

// Encode `input` as consecutive frames. Empty input encodes to zero frames
// (an empty stream). Fails only on the (clamped-away) u32 overflow paths.
Result<std::vector<std::byte>> compress_stream(std::span<const std::byte> input,
                                               const CompressionSpec& spec = {});

// Positioned reader over encoded bytes: fill `out` from byte `offset` of the
// stream, returning the count delivered (short only at end of stream).
using ReadAtFn =
    std::function<Result<std::uint64_t>(std::uint64_t offset,
                                        std::span<std::byte> out)>;

// One structurally-located frame. `torn` marks a frame whose header was
// intact but whose body runs past the end of the encoded stream (e.g. a
// truncated physical file): its raw extent is known and will be zero-filled.
struct FrameEntry {
  std::uint64_t encoded_offset = 0;
  std::uint64_t encoded_bytes = 0;
  std::uint64_t decoded_offset = 0;
  std::uint64_t decoded_bytes = 0;
  std::uint32_t comp_bytes = 0;
  bool torn = false;
};

// The frame map of one encoded stream, built from headers only (payloads are
// not read or verified here). Regions with no valid header are recorded in
// `scan_loss` and contribute no decoded bytes: their extent is unknowable,
// so the decoded stream is shorter than the original by exactly those
// frames. decoded_bytes is therefore the *deliverable* size, and the scan
// and the decoder agree on it by construction.
struct FrameIndex {
  std::vector<FrameEntry> frames;
  std::uint64_t encoded_bytes = 0;
  std::uint64_t decoded_bytes = 0;
  StreamLossReport scan_loss;
};

Result<FrameIndex> index_frames(std::uint64_t encoded_bytes,
                                const ReadAtFn& read_at);

// Random-access decoded reads over an encoded stream, used by ext::Remap's
// wave pipeline. Ascending reads decode each frame exactly once (the last
// frame is cached); payload CRC failures zero-fill and are counted once per
// frame in `loss` (which also receives the index's scan loss up front).
class FrameStreamReader {
 public:
  FrameStreamReader(FrameIndex index, ReadAtFn read_at,
                    StreamLossReport* loss);

  [[nodiscard]] std::uint64_t decoded_bytes() const {
    return index_.decoded_bytes;
  }
  // Encoded bytes fetched through read_at so far (I/O accounting).
  [[nodiscard]] std::uint64_t encoded_bytes_read() const {
    return encoded_read_;
  }

  // Fill `out` with decoded bytes [offset, offset + out.size()); the range
  // must lie within [0, decoded_bytes()). Damaged frames read as zeros.
  Status read_decoded(std::uint64_t offset, std::span<std::byte> out);

 private:
  Status materialize(std::size_t frame_i);

  FrameIndex index_;
  ReadAtFn read_at_;
  StreamLossReport* loss_;
  std::uint64_t encoded_read_ = 0;
  std::vector<std::byte> cache_;  // decoded bytes of frame cache_i_
  std::size_t cache_i_ = SIZE_MAX;
  std::vector<bool> loss_counted_;  // per frame, so waves never double-count
};

// Decode a whole in-memory encoded stream tolerantly (see file comment for
// the degradation rules). Never fails on damaged *content* — only on
// internal errors; loss lands in `loss` when given.
Result<std::vector<std::byte>> decompress_stream(
    std::span<const std::byte> encoded, StreamLossReport* loss = nullptr);

// True when `head` (the first bytes of a stream, >= 8 needed) starts with
// the frame sync marker — the transparent-read detection rule.
[[nodiscard]] bool stream_is_framed(std::span<const std::byte> head);

// Transparent logical reads over the core readers: fetch the raw stream,
// and decode it iff it starts with the sync marker (raw pass-through
// otherwise). These sit in ext/ because core/ cannot depend on ext/.
Result<std::vector<std::byte>> read_logical_decompressed(
    core::SionSerialFile& file, int rank, StreamLossReport* loss = nullptr);
Result<std::vector<std::byte>> read_remaining_decompressed(
    core::SionParFile& file, StreamLossReport* loss = nullptr);

}  // namespace sion::ext
