// Erasure-coded checkpoint protection: GF(256) Reed-Solomon parity across
// failure domains — the ROADMAP's answer to ext::Buddy's (r-1)x byte
// overhead. The writer communicator is partitioned into k equal *data
// domains* of consecutive ranks; the primary checkpoint is the ordinary
// SION multifile with one physical file per data domain (exactly Buddy's
// primary). On top of it, m *parity files* "<name>.p0" .. "<name>.p<m-1>"
// each store one Cauchy-coded combination of the k data files' bytes:
//
//   parity_j[i] = sum_d c[j][d] * data_d[i]      (GF(256), i < L)
//
// where L is the largest data file size and shorter files are implicitly
// zero-padded. The k data files + m parity files form D = k + m failure
// domains; the code is MDS, so ANY m of them can be lost and every byte —
// headers and metablocks included, since parity covers raw physical file
// bytes — is still reconstructible from the k survivors, at m/k byte
// overhead instead of Buddy's (r-1)x for the same loss tolerance.
//
// Because parity is computed over the bytes that actually hit the disk, the
// layer composes with everything upstream for free: collective aggregation
// changes who writes the primary (not its bytes), transparent compression
// shrinks the stream before it lands (parity covers the compressed wire
// bytes), and a staging drain can fabricate parity on the parallel tier
// from the staged files (see ext/staging.h).
//
// Parity files are flat byte-parity companions with a small self-describing
// header — deliberately NOT SION multifiles: a parity "stream" is a field
// combination of k unrelated streams, and recording it as physical-byte
// parity is the only representation that also protects the primary's own
// metadata (a lost file is healed byte-identically, metablocks and all).
// Zero stripes are skipped at write time, so parity files are sparse
// wherever the data files are (the multifile's alignment gaps cost nothing).
//
// Restore paths, both collective:
//   * heal(): probe every file, reconstruct lost ones byte-identically
//     (data files by matrix inversion over the survivors, parity files by
//     re-encoding), then the unchanged ext::Remap N->M restart runs on the
//     repaired set.
//   * degraded read: EccReadFs wraps the file system and virtualises lost
//     primary files — open_read() of a lost file returns a decode stream
//     whose pread() reads the same range from the k surviving files and
//     combines them on the fly. Remap/SionSerialFile run unchanged on top,
//     so the restart completes with ZERO extra I/O passes (the decode reads
//     are the restart's own reads, k-wide).
//
// All Ecc methods are collective. Chunk recovery frames are not supported
// (parity supersedes frame-based metadata repair).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/par_file.h"
#include "ext/collective.h"
#include "ext/remap.h"
#include "fs/filesystem.h"
#include "par/comm.h"

namespace sion::ext {

struct EccConfig {
  // Data domains k: the writer ranks are split into k equal consecutive
  // blocks and the primary multifile gets one physical file per block.
  // 0 derives k from ParOpenSpec::nfiles / CheckpointSpec::nfiles.
  int data_domains = 0;

  // Parity domains m: number of parity files, i.e. how many of the k + m
  // failure domains may be lost. GF(256) requires k + m <= 255.
  int parity_domains = 2;

  // Encode/heal processing granule. Parity is byte-positional, so this
  // only batches I/O — any value reconstructs the same bytes — but it is
  // also the granularity of the zero-skip that keeps parity files sparse
  // across the primary's alignment gaps.
  std::uint64_t stripe_bytes = 256 * kKiB;

  // Route the primary multifile through ext::Collective (coalesced
  // collector writes). Parity encoding is unaffected: it reads back the
  // physical bytes whoever wrote them.
  bool collective = false;
  CollectiveConfig collective_config;

  // What restore() does when the probe finds damage: decode lost files on
  // the fly during the restart's own reads (kDegraded, the default), or
  // reconstruct them on disk first and restart from the repaired set
  // (kHeal — pays an extra pass, but leaves the checkpoint healthy for
  // the next restart).
  enum class Restore : std::uint8_t { kDegraded, kHeal };
  Restore restore_mode = Restore::kDegraded;
};

// Outcome of a probe-and-heal pass (assertable from tests and benches).
struct EccHealReport {
  int data_files = 0;    // k
  int parity_files = 0;  // m
  int damaged_data = 0;
  int damaged_parity = 0;
  int healed_files = 0;  // reconstructed, data + parity
  std::uint64_t bytes_reconstructed = 0;
};

// What rank 0's probe of a protection set found: geometry (from the parity
// headers, which record every data file's length) plus per-file usability.
// Serializable so one probe can be broadcast and drive every task's decode
// deterministically.
struct EccProbe {
  int k = 0;
  int m = 0;
  std::uint64_t stripe_bytes = 0;
  std::uint64_t data_start = 0;     // parity payload offset (after header)
  std::uint64_t payload_bytes = 0;  // L: largest data file size
  std::vector<std::uint64_t> data_bytes;  // per data file, zero-pad to L
  std::vector<std::uint8_t> data_ok;      // size k
  std::vector<std::uint8_t> parity_ok;    // size m

  [[nodiscard]] int lost_data() const;
  [[nodiscard]] int lost_parity() const;
  // Usable data + parity files; >= k means every loss is recoverable.
  [[nodiscard]] int survivors() const;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  static Result<EccProbe> deserialize(std::span<const std::byte> bytes);
};

// One parity file's self-describing header, as read by tooling that does
// not know the set geometry up front (sionrepair's companion discovery).
struct EccParityInfo {
  int k = 0;
  int m = 0;
  int index = 0;  // which parity file this is (j)
  std::uint64_t stripe_bytes = 0;
  std::uint64_t payload_bytes = 0;
  // Full usability: header checksum, exact size, end marker present.
  bool intact = false;
};

class Ecc {
 public:
  // Collective write over `gcom`: the primary multifile at spec.filename
  // (spec.nfiles overridden by the data-domain count) followed by the m
  // parity files. spec.chunk_frames must be off.
  static Status write(fs::FileSystem& fs, par::Comm& gcom,
                      const core::ParOpenSpec& spec, const EccConfig& config,
                      fs::DataView payload);

  // Collective (re-)encode of the parity files of an existing, closed
  // multifile: rank 0 stats the k data files and lays the parity files
  // out; the stripe ranges are partitioned over the comm tasks. `only`
  // restricts the pass to a subset of parity indices (empty = all m).
  // Also the staging drain's hook: parity on the parallel tier is
  // fabricated from the drained files by exactly this pass.
  static Status encode_parity(fs::FileSystem& fs, par::Comm& comm,
                              const std::string& name, const EccConfig& config,
                              std::span<const int> only = {});

  // Serial probe of the protection set (rank 0 calls this; the result is
  // broadcast). Geometry comes from any usable parity header; with zero
  // usable parity files the geometry fields are derived from the data
  // files instead (lengths from stat), which is enough for the
  // nothing-lost and re-encode cases.
  static Result<EccProbe> probe(fs::FileSystem& fs, const std::string& name,
                                const EccConfig& config);

  // Collective probe-and-heal over `mcom` (any size, including 1): lost or
  // damaged data files are rebuilt byte-identically by matrix inversion
  // over the k survivors (round-robin over the mcom tasks), then lost
  // parity files are re-encoded. Fails — consistently on every task — when
  // more than m of the k + m files are gone.
  static Result<EccHealReport> heal(fs::FileSystem& fs, par::Comm& mcom,
                                    const std::string& name,
                                    const EccConfig& config,
                                    std::uint64_t buffer_bytes = 4 * kMiB);

  // Collective restore: probe once, then either heal + Remap (kHeal, or
  // nothing lost) or Remap over an EccReadFs that decodes lost files
  // inline (kDegraded). The usual wants contract: `want` bytes of the
  // concatenated global stream per task, in rank order, summing to the
  // checkpoint total; empty `out` = timing-only.
  static Result<RemapStats> restore(fs::FileSystem& fs, par::Comm& mcom,
                                    const std::string& name,
                                    const EccConfig& config,
                                    std::span<std::byte> out,
                                    std::uint64_t want,
                                    const RemapConfig& remap = {});

  // Serial: read one parity file's header and check its intactness. Fails
  // only when the header itself does not parse (not a parity file / torn
  // header); a parseable but truncated file comes back with intact=false.
  static Result<EccParityInfo> inspect_parity(fs::FileSystem& fs,
                                              const std::string& path);

  // Name of parity file j (j >= 0): "<name>.p<j>".
  static std::string parity_name(const std::string& name, int j);
};

// Read-only FileSystem decorator serving degraded reads: paths of lost
// primary physical files (per the probe) are virtualised — exists() says
// yes, stat_path() reports the original length, open_read() returns a
// decode stream that reconstructs any byte range from the k surviving
// files on the fly. Every other call passes through to the base file
// system, so SionSerialFile, Remap and the collective readers run
// unchanged on top. Each task constructs its own instance from the same
// broadcast probe; the decode matrix is deterministic.
class EccReadFs final : public fs::FileSystem {
 public:
  EccReadFs(fs::FileSystem& base, std::string name, EccProbe probe);

  // Set by the constructor: non-OK when the probe admits no decode (more
  // than m losses) — surfaced from open_read() of a lost file.
  [[nodiscard]] const Status& init_status() const { return init_status_; }

  Result<std::unique_ptr<fs::File>> create(const std::string& path) override;
  Result<std::unique_ptr<fs::File>> open_read(const std::string& path) override;
  Result<std::unique_ptr<fs::File>> open_rw(const std::string& path) override;
  Status mkdir(const std::string& path) override;
  Status remove(const std::string& path) override;
  Result<std::vector<std::string>> list_dir(const std::string& path) override;
  Result<fs::FileStat> stat_path(const std::string& path) override;
  bool exists(const std::string& path) override;
  Result<std::uint64_t> block_size(const std::string& path) override;

 private:
  // Index into probe_.data_bytes if `path` is a lost data file, -1 else.
  [[nodiscard]] int lost_index_of(const std::string& path) const;

  fs::FileSystem* base_ = nullptr;
  std::string name_;
  EccProbe probe_;
  Status init_status_;
  std::vector<std::string> lost_paths_;  // parallel to lost_ids_
  std::vector<int> lost_ids_;            // data file indices
  // Survivor selection shared by every decode stream: k file ids (< k:
  // data file, >= k: parity file id - k) and, per lost data file, the k
  // decode coefficients against those survivors.
  std::vector<int> survivor_ids_;
  std::vector<std::vector<std::uint8_t>> decode_rows_;  // [lost][k]
};

}  // namespace sion::ext
