#include "ext/recovery.h"

#include <cstring>
#include <vector>

#include "common/codec.h"
#include "common/strings.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/buddy.h"
#include "ext/ecc.h"

namespace sion::ext {

namespace {

constexpr char kFrameMagic[8] = {'S', 'I', 'O', 'N', 'F', 'R', 'M', '1'};

struct Frame {
  std::uint32_t grank = 0;
  std::uint32_t lrank = 0;
  std::uint64_t block = 0;
  std::uint64_t bytes_written = 0;
};

Result<Frame> parse_frame(std::span<const std::byte> bytes) {
  if (bytes.size() < core::kChunkFrameSize) return Corrupt("short frame");
  if (std::memcmp(bytes.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Corrupt("no frame magic");
  }
  ByteReader r(bytes.subspan(sizeof(kFrameMagic)));
  Frame f;
  SION_ASSIGN_OR_RETURN(f.grank, r.get_u32());
  SION_ASSIGN_OR_RETURN(f.lrank, r.get_u32());
  SION_ASSIGN_OR_RETURN(f.block, r.get_u64());
  SION_ASSIGN_OR_RETURN(f.bytes_written, r.get_u64());
  SION_ASSIGN_OR_RETURN(const std::uint64_t checksum, r.get_u64());
  if (checksum != core::chunk_frame_checksum(f.grank, f.lrank, f.block,
                                             f.bytes_written)) {
    return Corrupt("frame checksum mismatch (torn or bit-flipped frame)");
  }
  return f;
}

// Rebuild one physical file's metablock 2 from its chunk frames.
Result<bool> repair_one(fs::FileSystem& fs, const std::string& path,
                        std::uint64_t* chunks_recovered) {
  SION_ASSIGN_OR_RETURN(auto file, fs.open_rw(path));
  SION_ASSIGN_OR_RETURN(const core::FileHeader header,
                        core::read_header(*file));
  if (header.meta2_offset != 0) {
    // Already closed cleanly; verify metablock 2 parses and leave it alone.
    auto meta2 = core::read_meta2(*file, header);
    if (meta2.ok()) return false;
  }
  if ((header.flags & core::kFlagChunkFrames) == 0) {
    return FailedPrecondition(
        strformat("'%s' was written without chunk frames; metablock 2 "
                  "cannot be reconstructed",
                  path.c_str()));
  }

  const std::vector<std::byte> meta1 = header.serialize();
  SION_ASSIGN_OR_RETURN(
      const core::FileLayout layout,
      core::FileLayout::create(header.fsblksize, header.chunksizes_req,
                               meta1.size()));
  SION_ASSIGN_OR_RETURN(const fs::FileStat st, file->stat());
  // Frames are written when a chunk is entered, so the last block of any
  // task is bounded by how far the file extends.
  const std::uint64_t data_bytes =
      st.size > layout.data_start() ? st.size - layout.data_start() : 0;
  const std::uint64_t max_blocks =
      std::max<std::uint64_t>(1, ceil_div(data_bytes, layout.block_span()));

  core::FileMeta2 meta2;
  meta2.bytes_written.resize(header.ntasks);
  std::vector<std::byte> frame_buf(core::kChunkFrameSize);
  for (std::uint32_t t = 0; t < header.ntasks; ++t) {
    auto& chunks = meta2.bytes_written[t];
    // The write path rejects chunks that cannot hold a frame, so a smaller
    // aligned chunk here means the header itself is damaged — and the
    // subtraction below would underflow, neutering the capacity check.
    const std::uint64_t aligned_chunk = layout.chunksize(static_cast<int>(t));
    if (aligned_chunk <= core::kChunkFrameSize) {
      return Corrupt(strformat(
          "task %u's chunk (%llu bytes) cannot hold a recovery frame; "
          "metablock 1 of '%s' is corrupted",
          t, static_cast<unsigned long long>(aligned_chunk), path.c_str()));
    }
    const std::uint64_t usable = aligned_chunk - core::kChunkFrameSize;
    // A damaged frame alone could simply mean the task never entered that
    // block; the whole grid is scanned so a valid frame *after* the damage
    // proves the chain was broken — truncating there would silently drop
    // the later chunks' data.
    bool chain_broken = false;
    for (std::uint64_t b = 0; b < max_blocks; ++b) {
      const std::uint64_t frame_off = layout.chunk_start(static_cast<int>(t), b);
      if (frame_off + core::kChunkFrameSize > st.size) break;
      SION_ASSIGN_OR_RETURN(const std::uint64_t got,
                            file->pread(frame_buf, frame_off));
      if (got < core::kChunkFrameSize) break;
      auto frame = parse_frame(frame_buf);
      if (!frame.ok()) {
        chain_broken = true;  // damaged, or simply never entered
        continue;
      }
      if (chain_broken) {
        return Corrupt(strformat(
            "task %u has a valid frame at block %llu after a damaged or "
            "missing one; refusing a silent partial restore of '%s'",
            t, static_cast<unsigned long long>(b), path.c_str()));
      }
      if (frame.value().lrank != t || frame.value().block != b) {
        return Corrupt(strformat(
            "frame at task %u block %llu describes task %u block %llu "
            "(corrupted multifile)",
            t, static_cast<unsigned long long>(b), frame.value().lrank,
            static_cast<unsigned long long>(frame.value().block)));
      }
      if (frame.value().bytes_written > usable) {
        return Corrupt(strformat(
            "frame at task %u block %llu claims %llu payload bytes but the "
            "chunk holds at most %llu",
            t, static_cast<unsigned long long>(b),
            static_cast<unsigned long long>(frame.value().bytes_written),
            static_cast<unsigned long long>(usable)));
      }
      if (frame_off + core::kChunkFrameSize + frame.value().bytes_written >
          st.size) {
        return Corrupt(strformat(
            "chunk payload of task %u block %llu extends past the end of "
            "'%s' (truncated multifile)",
            t, static_cast<unsigned long long>(b), path.c_str()));
      }
      chunks.push_back(frame.value().bytes_written);
      ++*chunks_recovered;
    }
    if (chunks.empty()) chunks.push_back(0);
  }

  const std::uint64_t nblocks = std::max<std::uint64_t>(1, meta2.nblocks());
  SION_RETURN_IF_ERROR(core::write_meta2_and_trailer(
      *file, layout.meta2_offset(nblocks), nblocks, meta2));
  return true;
}

// Light probe of one physical file: header and metablock 2 parse.
bool physical_ok(fs::FileSystem& fs, const std::string& path) {
  auto file = fs.open_read(path);
  if (!file.ok()) return false;
  auto header = core::read_header(*file.value());
  if (!header.ok()) return false;
  auto meta2 = core::read_meta2(*file.value(), header.value());
  return meta2.ok() &&
         meta2.value().bytes_written.size() == header.value().ntasks;
}

// Light probe of a whole multifile set rooted at `base`: file 0's header
// gives the file count, then every physical file must pass physical_ok.
bool multifile_ok(fs::FileSystem& fs, const std::string& base) {
  std::string first = base;
  if (!fs.exists(first)) first = core::physical_file_name(base, 0, 2);
  auto file0 = fs.open_read(first);
  if (!file0.ok()) return false;
  auto h0 = core::read_header(*file0.value());
  if (!h0.ok()) return false;
  file0.value().reset();
  const int nfiles = static_cast<int>(h0.value().nfiles);
  for (int f = 0; f < nfiles; ++f) {
    if (!physical_ok(fs, core::physical_file_name(base, f, nfiles))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<RepairReport> repair_multifile(fs::FileSystem& fs,
                                      const std::string& name) {
  std::string first = name;
  if (!fs.exists(first)) first = core::physical_file_name(name, 0, 2);
  SION_ASSIGN_OR_RETURN(auto file0, fs.open_read(first));
  SION_ASSIGN_OR_RETURN(const core::FileHeader h0, core::read_header(*file0));
  file0.reset();

  RepairReport report;
  report.physical_files = static_cast<int>(h0.nfiles);
  for (int f = 0; f < static_cast<int>(h0.nfiles); ++f) {
    const std::string path =
        core::physical_file_name(name, f, static_cast<int>(h0.nfiles));
    SION_ASSIGN_OR_RETURN(const bool repaired,
                          repair_one(fs, path, &report.chunks_recovered));
    if (repaired) {
      ++report.repaired_files;
    } else {
      ++report.intact_files;
    }
  }
  return report;
}

bool ProtectionSet::heal_available() const {
  if (!intact_replica_sets.empty()) return true;
  // ECC reconstruction needs any k of the k + m files; the light probe's
  // intact counts give the survivor total.
  return parity_intact > 0 && ecc_k > 0 &&
         data_intact + parity_intact >= ecc_k;
}

std::string ProtectionSet::to_string() const {
  if (empty()) return "no protection companions";
  std::string s;
  if (!replica_sets.empty()) {
    s = strformat("%d buddy replica set(s), %d intact",
                  static_cast<int>(replica_sets.size()),
                  static_cast<int>(intact_replica_sets.size()));
  }
  if (parity_found > 0) {
    if (!s.empty()) s += "; ";
    s += strformat(
        "%d ECC parity file(s), %d intact (k=%d, m=%d, %d of %d data "
        "files intact)",
        parity_found, parity_intact, ecc_k, ecc_m, data_intact, ecc_k);
  }
  return s;
}

Result<ProtectionSet> discover_protection(fs::FileSystem& fs,
                                          const std::string& name) {
  ProtectionSet set;
  for (int k = 1;; ++k) {
    const std::string base = Buddy::replica_name(name, k);
    if (!fs.exists(base) &&
        !fs.exists(core::physical_file_name(base, 0, 2))) {
      break;
    }
    set.replica_sets.push_back(k);
    if (multifile_ok(fs, base)) set.intact_replica_sets.push_back(k);
  }
  for (int j = 0;; ++j) {
    const std::string path = Ecc::parity_name(name, j);
    if (!fs.exists(path)) break;
    ++set.parity_found;
    auto info = Ecc::inspect_parity(fs, path);
    if (!info.ok()) continue;  // present but not even a parseable header
    if (set.ecc_k == 0) {
      set.ecc_k = info.value().k;
      set.ecc_m = info.value().m;
    }
    if (info.value().intact) ++set.parity_intact;
  }
  if (set.ecc_k > 0) {
    for (int d = 0; d < set.ecc_k; ++d) {
      if (physical_ok(fs, core::physical_file_name(name, d, set.ecc_k))) {
        ++set.data_intact;
      }
    }
  }
  return set;
}

void StreamLossReport::merge(const StreamLossReport& other) {
  frames_decoded += other.frames_decoded;
  frames_skipped += other.frames_skipped;
  bytes_zero_filled += other.bytes_zero_filled;
  bytes_discarded += other.bytes_discarded;
}

std::string StreamLossReport::to_string() const {
  return strformat(
      "%llu frames decoded, %llu skipped (%s zero-filled, %s discarded)",
      static_cast<unsigned long long>(frames_decoded),
      static_cast<unsigned long long>(frames_skipped),
      format_bytes(bytes_zero_filled).c_str(),
      format_bytes(bytes_discarded).c_str());
}

}  // namespace sion::ext
