#include "ext/remap.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/strings.h"

namespace sion::ext {

namespace {

// Shared wording for the par::share_status/agree_status agreement helpers
// (see par/comm.h): a failure on the metadata rank, a reader, or any other
// restart task must surface on every task.
constexpr char kRemapFailed[] = "N->M remap failed on another restart task";

// floor(a * b / c) without u64 overflow (a*b can exceed 64 bits for
// terabyte-scale payloads at large task counts).
std::uint64_t mul_div(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b / c);
}

// A positioned encoded-byte reader over one source stream of the view.
ReadAtFn stream_read_at(core::SionSerialFile& view, int stream) {
  return [&view, stream](std::uint64_t offset, std::span<std::byte> o) {
    return view.read_at(stream, offset, o);
  };
}

// Bytes stream `r` will deliver: its raw logical size, or — under
// transparent decompression, when the stream leads with the frame sync
// marker — the decoded size from a header walk.
Result<std::uint64_t> scanned_stream_bytes(core::SionSerialFile& view, int r,
                                           bool transparent) {
  const std::uint64_t raw = view.logical_bytes(r);
  if (!transparent || raw < kFrameSync.size()) return raw;
  std::array<std::byte, kFrameSync.size()> head{};
  SION_ASSIGN_OR_RETURN(const std::uint64_t got, view.read_at(r, 0, head));
  if (got < head.size() || !stream_is_framed(head)) return raw;
  SION_ASSIGN_OR_RETURN(const FrameIndex idx,
                        index_frames(raw, stream_read_at(view, r)));
  return idx.decoded_bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// open
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Remap>> Remap::open(fs::FileSystem& fs, par::Comm& mcom,
                                           const std::string& name,
                                           const RemapConfig& config) {
  const int m = mcom.rank();
  const int msize = mcom.size();

  auto out = std::unique_ptr<Remap>(new Remap());
  out->fs_ = &fs;
  out->mcom_ = &mcom;
  out->name_ = name;
  out->buffer_bytes_ = std::max<std::uint64_t>(1, config.buffer_bytes);
  out->transparent_ = config.transparent_decompress;

  // Rank 0 reads the global-view metadata once and broadcasts the N stream
  // sizes; every other task learns the partition without touching the file
  // system. The view is kept open in case rank 0 turns out to be a reader.
  // Under transparent decompression the advertised sizes are *decoded*
  // bytes: rank 0 walks each framed stream's headers (a few bytes per
  // frame), and the scan and the readers' decoders agree on the deliverable
  // size by construction (ext/compress.h).
  Status st;
  std::unique_ptr<core::SionSerialFile> view0;
  std::vector<std::uint64_t> sizes;
  if (m == 0) {
    auto view = core::SionSerialFile::open_read(fs, name);
    if (!view.ok()) {
      st = view.status();
    } else {
      view0 = std::move(view).value();
      const int nranks = view0->locations().nranks;
      sizes.reserve(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks && st.ok(); ++r) {
        auto advertised = scanned_stream_bytes(*view0, r,
                                               config.transparent_decompress);
        if (!advertised.ok()) {
          st = advertised.status();
        } else {
          sizes.push_back(advertised.value());
        }
      }
    }
  }
  SION_RETURN_IF_ERROR(par::share_status(mcom, st, 0, kRemapFailed));
  const std::uint64_t nwriters = mcom.bcast_u64(sizes.size(), 0);
  sizes.resize(nwriters, 0);
  mcom.bcast_bytes(std::as_writable_bytes(std::span<std::uint64_t>(sizes)), 0);

  out->nwriters_ = static_cast<int>(nwriters);
  out->stream_bytes_ = std::move(sizes);
  out->stream_offset_.reserve(out->stream_bytes_.size());
  for (const std::uint64_t s : out->stream_bytes_) {
    out->stream_offset_.push_back(out->total_bytes_);
    out->total_bytes_ += s;
  }

  // Contiguous byte-balanced partition of the N source streams over the M
  // readers: stream j goes to the reader whose even share of the payload
  // contains stream j's midpoint. Midpoints are nondecreasing in j, so the
  // assignment is contiguous; byte volumes balance within one stream.
  out->reader_of_.reserve(out->stream_bytes_.size());
  for (std::size_t j = 0; j < out->stream_bytes_.size(); ++j) {
    int reader;
    if (out->total_bytes_ == 0) {
      // Degenerate all-empty checkpoint: balance by stream count instead.
      reader = static_cast<int>(j * static_cast<std::size_t>(msize) /
                                out->stream_bytes_.size());
    } else {
      const std::uint64_t mid =
          out->stream_offset_[j] + out->stream_bytes_[j] / 2;
      reader = static_cast<int>(
          mul_div(mid, static_cast<std::uint64_t>(msize), out->total_bytes_));
    }
    out->reader_of_.push_back(std::min(reader, msize - 1));
  }
  out->first_stream_ = out->nwriters_;
  for (int j = 0; j < out->nwriters_; ++j) {
    if (out->reader_of(j) != m) continue;
    if (out->nstreams_ == 0) out->first_stream_ = j;
    ++out->nstreams_;
  }
  if (out->nstreams_ == 0) out->first_stream_ = 0;

  // Only tasks with assigned streams hold the multifile open (the global
  // view is exactly the paper's serial access path, and M - readers tasks
  // stay off the file system entirely). Rank 0 reuses its metadata view.
  st = Status::Ok();
  if (out->nstreams_ > 0) {
    if (view0 != nullptr) {
      out->view_ = std::move(view0);
    } else {
      auto view = core::SionSerialFile::open_read(fs, name);
      if (view.ok()) {
        if (view.value()->locations().nranks != out->nwriters_) {
          st = Corrupt("multifile changed between metadata and data open");
        } else {
          out->view_ = std::move(view).value();
        }
      } else {
        st = view.status();
      }
    }
  } else if (view0 != nullptr) {
    st = view0->close();
    view0.reset();
  }
  SION_RETURN_IF_ERROR(par::agree_status(mcom, st, kRemapFailed));
  return out;
}

// Remap views are read-only, so destruction without close loses nothing
// (the same contract as SionSerialFile's read mode).
Remap::~Remap() = default;

// ---------------------------------------------------------------------------
// partitions
// ---------------------------------------------------------------------------

std::uint64_t Remap::even_share_offset(int rank) const {
  const auto msize = static_cast<std::uint64_t>(mcom_->size());
  return mul_div(total_bytes_, static_cast<std::uint64_t>(rank), msize);
}

std::uint64_t Remap::even_share(int rank) const {
  return even_share_offset(rank + 1) - even_share_offset(rank);
}

// ---------------------------------------------------------------------------
// restore
// ---------------------------------------------------------------------------

Result<RemapStats> Remap::restore(std::span<std::byte> out,
                                  std::uint64_t want) {
  // Local precondition failures are agreed before any further collective: a
  // single closed or under-buffered rank must fail every task cleanly, not
  // strand the rest in the allgather below.
  const bool discard = out.empty();
  Status pre;
  if (closed_) {
    pre = FailedPrecondition("remap already closed");
  } else if (!discard && out.size() < want) {
    pre = InvalidArgument("output buffer smaller than the requested bytes");
  }
  SION_RETURN_IF_ERROR(par::agree_status(*mcom_, pre, kRemapFailed));
  const int me = mcom_->rank();
  const int msize = mcom_->size();

  // Destination partition: the wants, in rank order, tile the concatenated
  // global stream. Every task derives the same prefix sums, so a mismatch
  // fails consistently everywhere before any wave moves.
  const std::vector<std::uint64_t> wants = mcom_->allgather_u64(want);
  std::vector<std::uint64_t> dest_offset(static_cast<std::size_t>(msize) + 1,
                                         0);
  for (int r = 0; r < msize; ++r) {
    dest_offset[static_cast<std::size_t>(r) + 1] =
        dest_offset[static_cast<std::size_t>(r)] +
        wants[static_cast<std::size_t>(r)];
  }
  if (dest_offset.back() != total_bytes_) {
    return InvalidArgument(strformat(
        "restore wants total %llu bytes but the checkpoint holds %llu",
        static_cast<unsigned long long>(dest_offset.back()),
        static_cast<unsigned long long>(total_bytes_)));
  }
  const std::uint64_t my_start = dest_offset[static_cast<std::size_t>(me)];

  // Walk every stream in bounded waves, in one global (stream, wave) order
  // shared by all tasks: the wave's reader reads and ships eagerly, each
  // overlapping destination receives. The earliest unprocessed wave always
  // has a reader with nothing left to block on, so the schedule is
  // deadlock-free.
  RemapStats stats;
  Status st;
  std::vector<std::byte> wave_buf;
  // Per-stream decode state: streams are walked in ascending order, so one
  // FrameStreamReader at a time suffices; its frame cache makes the
  // ascending waves decode each frame exactly once.
  int decode_stream = -1;
  std::unique_ptr<FrameStreamReader> decoder;
  std::uint64_t decoder_encoded_prev = 0;
  for (int j = 0; j < nwriters_; ++j) {
    const std::uint64_t stream_len =
        stream_bytes_[static_cast<std::size_t>(j)];
    const int reader = reader_of(j);
    for (std::uint64_t wave0 = 0; wave0 < stream_len;
         wave0 += buffer_bytes_) {
      const std::uint64_t wave_len =
          std::min(buffer_bytes_, stream_len - wave0);
      // Global byte range of this wave within the concatenated stream.
      const std::uint64_t g0 =
          stream_offset_[static_cast<std::size_t>(j)] + wave0;
      const std::uint64_t g1 = g0 + wave_len;

      if (reader == me) {
        if (transparent_ && decode_stream != j) {
          // New source stream: probe for the sync marker and build its frame
          // index. Failures fall back to zero-shipping + agree() like any
          // other reader-side error.
          decode_stream = j;
          decoder.reset();
          decoder_encoded_prev = 0;
          const std::uint64_t raw_len = view_->logical_bytes(j);
          std::array<std::byte, kFrameSync.size()> head{};
          bool framed = false;
          if (raw_len >= head.size()) {
            auto got_head = view_->read_at(j, 0, head);
            if (!got_head.ok()) {
              st = got_head.status();
            } else {
              framed = got_head.value() == head.size() &&
                       stream_is_framed(head);
            }
          }
          if (st.ok() && framed) {
            auto idx = index_frames(raw_len, stream_read_at(*view_, j));
            if (!idx.ok()) {
              st = idx.status();
            } else if (idx.value().decoded_bytes != stream_len) {
              st = Corrupt("stream size changed between open and restore");
            } else {
              decoder = std::make_unique<FrameStreamReader>(
                  std::move(idx).value(), stream_read_at(*view_, j),
                  &stats.loss);
            }
          } else if (st.ok() && raw_len != stream_len) {
            st = Corrupt("stream size changed between open and restore");
          }
        }
        wave_buf.resize(wave_len);
        if (decoder != nullptr && decode_stream == j) {
          const Status rd = decoder->read_decoded(wave0, wave_buf);
          if (!rd.ok()) st = rd;
          stats.bytes_read +=
              decoder->encoded_bytes_read() - decoder_encoded_prev;
          decoder_encoded_prev = decoder->encoded_bytes_read();
        } else {
          auto got = view_->read_at(j, wave0, wave_buf);
          if (!got.ok()) {
            st = got.status();
          } else if (got.value() != wave_len) {
            st = Corrupt("stream shorter than its metablock-2 record");
          }
          stats.bytes_read += wave_len;
        }
        if (!st.ok()) {
          // Keep the protocol alive: ship zeroes of the agreed sizes and
          // report the failure through agree() below.
          std::fill(wave_buf.begin(), wave_buf.end(), std::byte{0});
        }
        // First destination overlapping g0, then walk forward.
        int dst = static_cast<int>(
            std::upper_bound(dest_offset.begin(), dest_offset.end(), g0) -
            dest_offset.begin()) - 1;
        for (; dst < msize && dest_offset[static_cast<std::size_t>(dst)] < g1;
             ++dst) {
          const std::uint64_t p0 =
              std::max(g0, dest_offset[static_cast<std::size_t>(dst)]);
          const std::uint64_t p1 =
              std::min(g1, dest_offset[static_cast<std::size_t>(dst) + 1]);
          if (p0 >= p1) continue;
          const std::span<const std::byte> piece(wave_buf.data() + (p0 - g0),
                                                 p1 - p0);
          if (dst == me) {
            if (!discard) {
              std::memcpy(out.data() + (p0 - my_start), piece.data(),
                          piece.size());
            }
            stats.bytes_local += piece.size();
          } else {
            mcom_->send_bytes(piece, dst, /*tag=*/j);
            stats.bytes_sent += piece.size();
          }
        }
      } else {
        // My overlap with this wave, if any, arrives from its reader.
        const std::uint64_t p0 = std::max(g0, my_start);
        const std::uint64_t p1 = std::min(g1, my_start + want);
        if (p0 >= p1) continue;
        const std::vector<std::byte> piece = mcom_->recv_bytes(reader, j);
        if (piece.size() != p1 - p0) {
          st = Internal("remap wave size mismatch");
          continue;
        }
        if (!discard) {
          std::memcpy(out.data() + (p0 - my_start), piece.data(),
                      piece.size());
        }
        stats.bytes_received += piece.size();
      }
    }
  }
  SION_RETURN_IF_ERROR(par::agree_status(*mcom_, st, kRemapFailed));
  return stats;
}

// ---------------------------------------------------------------------------
// close
// ---------------------------------------------------------------------------

Status Remap::close() {
  // Double-close on one rank still reaches the agreement, so the other
  // tasks' close() calls fail cleanly instead of deadlocking.
  Status st;
  if (closed_) {
    st = FailedPrecondition("remap already closed");
  } else {
    if (view_ != nullptr) {
      st = view_->close();
      view_.reset();
    }
    closed_ = true;
  }
  return par::agree_status(*mcom_, st, kRemapFailed);
}

}  // namespace sion::ext
