// slz: a small, self-contained LZ77-style byte codec.
//
// The paper's section 6 lists "transparent file compression ... (e.g., via
// integrating zlib)" as planned work, and the Scalasca use case (section
// 5.2) compresses trace data with zlib before writing. No external
// compression library exists in this reproduction, so slz provides the same
// role from scratch: greedy hash-chain matching over a 64 KiB window with a
// varint token stream. It favours simplicity and speed over ratio.
//
// Stream format (little-endian):
//   magic "SLZ1" (4 B) | u64 uncompressed size | tokens...
// Token: control varint C.
//   C even:  literal run of C/2 bytes, which follow verbatim.
//   C odd:   match; C>>1 = length - kMinMatch, followed by varint distance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace sion::ext {

inline constexpr std::size_t kSlzMinMatch = 4;
inline constexpr std::size_t kSlzWindow = 64 * 1024;

// Hard ceiling on the self-described uncompressed size a stream may claim.
// Callers that know the expected output (e.g. the ext/compress.h framing
// layer, whose frame header carries the raw size) should pass a tighter
// `max_bytes` so a forged header cannot drive large allocations.
inline constexpr std::uint64_t kSlzMaxDecode = 1ULL << 40;

std::vector<std::byte> slz_compress(std::span<const std::byte> input);

// Self-describing: the uncompressed size comes from the stream header.
// Streams claiming more than `max_bytes` are rejected as Corrupt, and the
// output buffer grows incrementally instead of trusting the header for the
// up-front reservation.
Result<std::vector<std::byte>> slz_decompress(std::span<const std::byte> input,
                                              std::uint64_t max_bytes =
                                                  kSlzMaxDecode);

// Compress/decompress with framing suitable for appending to a SION logical
// file: [u32 frame bytes][slz stream]. Returns bytes consumed from `input`.
// The u32 length field cannot represent a >= 4 GiB compressed stream; such
// inputs are rejected (kOutOfRange) — split at a higher framing layer
// (ext/compress.h chunks streams well below this bound).
Result<std::vector<std::byte>> slz_frame(std::span<const std::byte> input);
Result<std::pair<std::vector<std::byte>, std::size_t>> slz_unframe(
    std::span<const std::byte> framed);

// Exposed for the frame writers (slz_frame, ext/compress.h) and for tests:
// checks that a compressed stream of `stream_bytes` fits a u32 length field.
[[nodiscard]] Status slz_validate_frame_size(std::uint64_t stream_bytes);

}  // namespace sion::ext
