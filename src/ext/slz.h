// slz: a small, self-contained LZ77-style byte codec.
//
// The paper's section 6 lists "transparent file compression ... (e.g., via
// integrating zlib)" as planned work, and the Scalasca use case (section
// 5.2) compresses trace data with zlib before writing. No external
// compression library exists in this reproduction, so slz provides the same
// role from scratch: greedy hash-chain matching over a 64 KiB window with a
// varint token stream. It favours simplicity and speed over ratio.
//
// Stream format (little-endian):
//   magic "SLZ1" (4 B) | u64 uncompressed size | tokens...
// Token: control varint C.
//   C even:  literal run of C/2 bytes, which follow verbatim.
//   C odd:   match; C>>1 = length - kMinMatch, followed by varint distance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace sion::ext {

inline constexpr std::size_t kSlzMinMatch = 4;
inline constexpr std::size_t kSlzWindow = 64 * 1024;

std::vector<std::byte> slz_compress(std::span<const std::byte> input);

// Self-describing: the uncompressed size comes from the stream header.
Result<std::vector<std::byte>> slz_decompress(std::span<const std::byte> input);

// Compress/decompress with framing suitable for appending to a SION logical
// file: [u32 frame bytes][slz stream]. Returns bytes consumed from `input`.
std::vector<std::byte> slz_frame(std::span<const std::byte> input);
Result<std::pair<std::vector<std::byte>, std::size_t>> slz_unframe(
    std::span<const std::byte> framed);

}  // namespace sion::ext
