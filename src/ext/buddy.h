// Buddy-redundancy checkpointing: failure-domain-aware replication so a
// task-local checkpoint survives the loss of entire physical files or whole
// failure domains — the scenario PR 3's repair cannot help with (repair
// reconstructs metadata from surviving bytes; buddy redundancy makes the
// bytes themselves survive).
//
// The writer communicator is partitioned into D equal failure domains of
// consecutive ranks (domain d = ranks [d*S, (d+1)*S)); the primary
// checkpoint is an ordinary SION multifile with one physical file per
// domain. For replication degree r, each domain's chunk payloads are
// additionally mirrored into r-1 *replica sets* "<name>.b1" ..
// "<name>.b<r-1>": replica set k stores the streams of domain d in the
// physical file owned by buddy domain (d+k) mod D, so the r copies of every
// stream live in r distinct failure domains and any r-1 domain losses leave
// at least one copy of everything.
//
// Every replica set is itself a complete, valid SION multifile whose
// logical rank j is writer rank j (identity is preserved; only the
// rank -> physical-file mapping is rotated). That makes recovery a
// *structural* no-op: a lost primary file d is healed by copying the
// surviving replica file (d+k) mod D byte-for-byte and patching the
// header's filenum — after which the ordinary N->M restart path
// (ext::Remap) runs unchanged.
//
// Copy traffic:
//   * collective mode routes primary and replicas through ext::Collective —
//     members ship payload views to their group's collector, which issues
//     the large coalesced (optionally kPacked) writes;
//   * plain mode mirrors payloads to the buddy domain over the
//     par::Comm group-to-group rotation collectives: every rank ships its
//     chunk descriptor and payload view to the rank S*k positions ahead,
//     and that buddy writes the received stream into its own domain's
//     replica file.
//
// All calls are collective. Chunk recovery frames are not supported in
// buddy mode (redundant copies supersede frame-based metadata repair).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "core/par_file.h"
#include "ext/collective.h"
#include "ext/remap.h"
#include "fs/filesystem.h"
#include "par/comm.h"

namespace sion::ext {

struct BuddyConfig {
  // Total copies of every stream, the primary included; 1 disables
  // replication. Must not exceed the number of failure domains.
  int replicas = 2;

  // Failure domains D; ranks are split into D equal consecutive blocks and
  // the primary multifile gets one physical file per domain. 0 derives D
  // from ParOpenSpec::nfiles. The writer task count must be divisible by D.
  int num_domains = 0;

  // Route the primary and every replica set through ext::Collective
  // (coalesced collector writes) instead of per-task writes plus the
  // group-to-group mirror ship.
  bool collective = false;
  CollectiveConfig collective_config;
};

// Outcome of a probe-and-heal pass (assertable from tests and benches).
struct BuddyHealReport {
  int domains = 0;        // D
  int replicas = 0;       // r, primary included
  int damaged_files = 0;  // primary physical files missing or invalid
  int healed_files = 0;   // reconstructed from a surviving replica
  std::uint64_t bytes_copied = 0;  // replica bytes moved by the heal
};

class Buddy {
 public:
  // Collective write over `gcom`: the primary multifile at spec.filename
  // plus config.replicas - 1 replica sets. spec.nfiles is overridden by the
  // domain count; spec.chunk_frames must be off.
  static Status write(fs::FileSystem& fs, par::Comm& gcom,
                      const core::ParOpenSpec& spec, const BuddyConfig& config,
                      fs::DataView payload);

  // Collective probe-and-heal over `mcom` (any size, including 1): rank 0
  // validates every primary physical file (open + metablocks 1 and 2); lost
  // or damaged files are reconstructed from the first surviving replica,
  // round-robin over the mcom tasks. Fails — consistently on every task —
  // when all r copies of some domain's streams are gone.
  static Result<BuddyHealReport> heal(fs::FileSystem& fs, par::Comm& mcom,
                                      const std::string& name,
                                      const BuddyConfig& config,
                                      std::uint64_t copy_buffer_bytes =
                                          4 * kMiB);

  // Collective heal + N->M restore: after healing, the checkpoint restores
  // through ext::Remap with the usual wants contract (`want` bytes of the
  // concatenated global stream per task, in rank order, summing to the
  // checkpoint total; empty `out` = timing-only).
  static Result<RemapStats> restore(fs::FileSystem& fs, par::Comm& mcom,
                                    const std::string& name,
                                    const BuddyConfig& config,
                                    std::span<std::byte> out,
                                    std::uint64_t want,
                                    const RemapConfig& remap = {});

  // Base name of replica set k (k >= 1): "<name>.b<k>".
  static std::string replica_name(const std::string& name, int k);
};

}  // namespace sion::ext
