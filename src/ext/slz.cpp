#include "ext/slz.h"

#include <algorithm>
#include <cstring>

#include "common/codec.h"
#include "common/strings.h"
#include "common/units.h"

namespace sion::ext {

namespace {

constexpr char kSlzMagic[4] = {'S', 'L', 'Z', '1'};

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

// Canonical LEB128 only: at most 10 bytes, the 10th byte may carry nothing
// but bit 63, and a terminating 0x00 byte is canonical only for the
// single-byte encoding of zero. Anything else means two byte sequences
// would alias to one value (overlong encodings) or high bits would be
// silently dropped (overflow past 64 bits) — both hide corruption, so both
// are decode failures.
bool get_varint(std::span<const std::byte> in, std::size_t& pos,
                std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift <= 63 && pos < in.size(); shift += 7) {
    const auto b = std::to_integer<std::uint64_t>(in[pos++]);
    if (shift == 63 && (b & 0x7E) != 0) return false;  // bits >= 64
    v |= (b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      return b != 0 || shift == 0;  // overlong: zero high byte
    }
  }
  return false;  // truncated, or continuation past the 10th byte
}

std::uint32_t hash4(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 19;  // 13-bit table
}

void flush_literals(std::vector<std::byte>& out,
                    std::span<const std::byte> input, std::size_t lit_start,
                    std::size_t lit_end) {
  if (lit_end <= lit_start) return;
  const std::size_t run = lit_end - lit_start;
  put_varint(out, static_cast<std::uint64_t>(run) << 1);  // even = literals
  out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(lit_start),
             input.begin() + static_cast<std::ptrdiff_t>(lit_end));
}

}  // namespace

std::vector<std::byte> slz_compress(std::span<const std::byte> input) {
  std::vector<std::byte> out;
  out.reserve(input.size() / 2 + 32);
  out.insert(out.end(), reinterpret_cast<const std::byte*>(kSlzMagic),
             reinterpret_cast<const std::byte*>(kSlzMagic) + 4);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((input.size() >> (8 * i)) & 0xFF));
  }

  constexpr std::size_t kTableSize = 1 << 13;
  std::vector<std::size_t> table(kTableSize, SIZE_MAX);

  std::size_t pos = 0;
  std::size_t lit_start = 0;
  while (pos + kSlzMinMatch <= input.size()) {
    const std::uint32_t h = hash4(input.data() + pos) & (kTableSize - 1);
    const std::size_t candidate = table[h];
    table[h] = pos;
    if (candidate != SIZE_MAX && pos - candidate <= kSlzWindow &&
        std::memcmp(input.data() + candidate, input.data() + pos,
                    kSlzMinMatch) == 0) {
      // Extend the match as far as it goes.
      std::size_t len = kSlzMinMatch;
      while (pos + len < input.size() &&
             input[candidate + len] == input[pos + len]) {
        ++len;
      }
      flush_literals(out, input, lit_start, pos);
      put_varint(out,
                 (static_cast<std::uint64_t>(len - kSlzMinMatch) << 1) | 1);
      put_varint(out, static_cast<std::uint64_t>(pos - candidate));
      // Seed the table sparsely inside the match to keep compression O(n).
      const std::size_t end = pos + len;
      for (std::size_t p = pos + 1; p + kSlzMinMatch <= end && p < pos + 16;
           ++p) {
        table[hash4(input.data() + p) & (kTableSize - 1)] = p;
      }
      pos = end;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  flush_literals(out, input, lit_start, input.size());
  return out;
}

Result<std::vector<std::byte>> slz_decompress(std::span<const std::byte> input,
                                              std::uint64_t max_bytes) {
  if (input.size() < 12 ||
      std::memcmp(input.data(), kSlzMagic, 4) != 0) {
    return Corrupt("not an slz stream");
  }
  std::uint64_t usize = 0;
  for (int i = 0; i < 8; ++i) {
    usize |= std::to_integer<std::uint64_t>(input[4 + static_cast<std::size_t>(i)])
             << (8 * i);
  }
  if (usize > kSlzMaxDecode || usize > max_bytes) {
    return Corrupt("absurd uncompressed size");
  }
  std::vector<std::byte> out;
  // The header size is corruption-controlled: cap the up-front reservation
  // by what the input could plausibly expand to (a match token is >= 2 bytes
  // for >= kSlzMinMatch output) and let the vector grow geometrically past
  // that. A forged multi-TiB `usize` then costs nothing until real tokens
  // (bounded by the input) actually produce output.
  const std::uint64_t plausible =
      static_cast<std::uint64_t>(input.size()) * 16 + 1024;
  out.reserve(static_cast<std::size_t>(std::min(usize, plausible)));
  std::size_t pos = 12;
  while (out.size() < usize) {
    std::uint64_t control = 0;
    if (!get_varint(input, pos, control)) return Corrupt("truncated token");
    if ((control & 1) == 0) {
      const std::uint64_t run = control >> 1;
      if (pos + run > input.size()) return Corrupt("truncated literal run");
      if (out.size() + run > usize) return Corrupt("literal run overflows");
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
                 input.begin() + static_cast<std::ptrdiff_t>(pos + run));
      pos += run;
    } else {
      const std::uint64_t len = (control >> 1) + kSlzMinMatch;
      std::uint64_t dist = 0;
      if (!get_varint(input, pos, dist)) return Corrupt("truncated distance");
      if (dist == 0 || dist > out.size()) return Corrupt("bad match distance");
      if (out.size() + len > usize) return Corrupt("match overflows");
      // Byte-by-byte: matches may overlap themselves (RLE-style).
      std::size_t src = out.size() - dist;
      for (std::uint64_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
    }
  }
  if (pos != input.size()) return Corrupt("trailing garbage after stream");
  return out;
}

Status slz_validate_frame_size(std::uint64_t stream_bytes) {
  if (stream_bytes > 0xFFFFFFFFULL) {
    return OutOfRange(
        strformat("slz stream of %s overflows the u32 frame length field; "
                  "split the stream at the framing layer",
                  format_bytes(stream_bytes).c_str()));
  }
  return Status::Ok();
}

Result<std::vector<std::byte>> slz_frame(std::span<const std::byte> input) {
  std::vector<std::byte> stream = slz_compress(input);
  SION_RETURN_IF_ERROR(slz_validate_frame_size(stream.size()));
  std::vector<std::byte> out;
  out.reserve(stream.size() + 4);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((stream.size() >> (8 * i)) & 0xFF));
  }
  out.insert(out.end(), stream.begin(), stream.end());
  return out;
}

Result<std::pair<std::vector<std::byte>, std::size_t>> slz_unframe(
    std::span<const std::byte> framed) {
  if (framed.size() < 4) return Corrupt("truncated slz frame header");
  std::uint32_t frame_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    frame_bytes |= std::to_integer<std::uint32_t>(framed[static_cast<std::size_t>(i)])
                   << (8 * i);
  }
  if (framed.size() < 4ULL + frame_bytes) {
    return Corrupt("truncated slz frame body");
  }
  SION_ASSIGN_OR_RETURN(auto data,
                        slz_decompress(framed.subspan(4, frame_bytes)));
  return std::make_pair(std::move(data), static_cast<std::size_t>(4 + frame_bytes));
}

}  // namespace sion::ext
