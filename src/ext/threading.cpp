#include "ext/threading.h"

#include <algorithm>

#include "common/codec.h"

namespace sion::ext {

ThreadChannels::ThreadChannels(core::SionParFile& sion, int nthreads)
    : sion_(&sion),
      buffers_(static_cast<std::size_t>(std::max(0, nthreads))) {}

Status ThreadChannels::append(int tid, std::span<const std::byte> data) {
  if (tid < 0 || tid >= nthreads()) {
    return InvalidArgument("thread id out of range");
  }
  auto& buf = buffers_[static_cast<std::size_t>(tid)];
  buf.insert(buf.end(), data.begin(), data.end());
  return Status::Ok();
}

Status ThreadChannels::flush() {
  for (int tid = 0; tid < nthreads(); ++tid) {
    auto& buf = buffers_[static_cast<std::size_t>(tid)];
    if (buf.empty()) continue;
    ByteWriter header;
    header.put_u32(static_cast<std::uint32_t>(tid));
    header.put_u32(static_cast<std::uint32_t>(buf.size()));
    SION_ASSIGN_OR_RETURN(std::uint64_t n,
                          sion_->write(fs::DataView(header.bytes())));
    (void)n;
    SION_ASSIGN_OR_RETURN(n, sion_->write(fs::DataView(buf)));
    buf.clear();
  }
  return Status::Ok();
}

Result<ThreadChannelReader> ThreadChannelReader::load(core::SionParFile& sion,
                                                      int nthreads) {
  if (nthreads <= 0) return InvalidArgument("nthreads must be positive");
  std::vector<std::vector<std::byte>> streams(
      static_cast<std::size_t>(nthreads));
  while (!sion.eof()) {
    std::vector<std::byte> header(8);
    SION_ASSIGN_OR_RETURN(const std::uint64_t got, sion.read(header));
    if (got == 0) break;
    if (got < header.size()) return Corrupt("truncated thread segment header");
    ByteReader r(header);
    SION_ASSIGN_OR_RETURN(const std::uint32_t tid, r.get_u32());
    SION_ASSIGN_OR_RETURN(const std::uint32_t len, r.get_u32());
    if (tid >= static_cast<std::uint32_t>(nthreads)) {
      return Corrupt("thread segment names an unknown thread");
    }
    std::vector<std::byte> payload(len);
    SION_ASSIGN_OR_RETURN(const std::uint64_t n, sion.read(payload));
    if (n < len) return Corrupt("truncated thread segment payload");
    auto& stream = streams[tid];
    stream.insert(stream.end(), payload.begin(), payload.end());
  }
  return ThreadChannelReader(std::move(streams));
}

}  // namespace sion::ext
