#include "ext/gf256.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace sion::ext {

void GfMulTable::mul_add(std::span<std::byte> dst,
                         std::span<const std::byte> src) const {
  const std::size_t n = std::min(dst.size(), src.size());
  if (c_ == 0) return;
  if (c_ == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] ^= static_cast<std::byte>(
        row_[static_cast<std::size_t>(std::to_integer<std::uint8_t>(src[i]))]);
  }
}

Status gf_invert_matrix(std::span<std::uint8_t> m, int k) {
  const auto at = [&](int r, int c) -> std::uint8_t& {
    return m[static_cast<std::size_t>(r) * static_cast<std::size_t>(k) +
             static_cast<std::size_t>(c)];
  };
  // Augment with the identity, reduce, read the inverse back out.
  std::vector<std::uint8_t> inv(
      static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0);
  const auto iat = [&](int r, int c) -> std::uint8_t& {
    return inv[static_cast<std::size_t>(r) * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(c)];
  };
  for (int i = 0; i < k; ++i) iat(i, i) = 1;

  for (int col = 0; col < k; ++col) {
    int pivot = -1;
    for (int r = col; r < k; ++r) {
      if (at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) {
      return Internal(strformat(
          "gf256: singular %dx%d survivor matrix (corrupt ECC geometry)", k,
          k));
    }
    if (pivot != col) {
      for (int c = 0; c < k; ++c) {
        std::swap(at(pivot, c), at(col, c));
        std::swap(iat(pivot, c), iat(col, c));
      }
    }
    const std::uint8_t scale = gf_inv(at(col, col));
    for (int c = 0; c < k; ++c) {
      at(col, c) = gf_mul(at(col, c), scale);
      iat(col, c) = gf_mul(iat(col, c), scale);
    }
    for (int r = 0; r < k; ++r) {
      if (r == col || at(r, col) == 0) continue;
      const std::uint8_t factor = at(r, col);
      for (int c = 0; c < k; ++c) {
        at(r, c) = static_cast<std::uint8_t>(at(r, c) ^
                                             gf_mul(factor, at(col, c)));
        iat(r, c) = static_cast<std::uint8_t>(iat(r, c) ^
                                              gf_mul(factor, iat(col, c)));
      }
    }
  }
  std::copy(inv.begin(), inv.end(), m.begin());
  return Status::Ok();
}

}  // namespace sion::ext
