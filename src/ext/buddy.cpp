#include "ext/buddy.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/codec.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/layout.h"
#include "core/metadata.h"
#include "core/serial_file.h"
#include "fs/path.h"
#include "par/engine.h"

namespace sion::ext {

namespace {

// Payload-view leg of the mirror rotation (the descriptor leg travels
// through Comm::rotate_bytes).
constexpr int kMirrorDataTag = 0xB0DD;

// Shared wording for the par agreement helpers: a failure on any writer,
// any buddy host, or any heal task must surface on every task.
constexpr char kBuddyFailed[] = "buddy replication failed on another rank";

Status agree(par::Comm& comm, const Status& mine) {
  return par::agree_status(comm, mine, kBuddyFailed);
}

// Rotated rank -> physical-file mapping of replica set k: the streams of
// domain d land in the file owned by buddy domain (d + k) mod D.
std::vector<int> rotated_file_map(int gsize, int domain_size, int ndomains,
                                  int k) {
  std::vector<int> file_of(static_cast<std::size_t>(gsize));
  for (int i = 0; i < gsize; ++i) {
    file_of[static_cast<std::size_t>(i)] = (i / domain_size + k) % ndomains;
  }
  return file_of;
}

// Write one multifile (primary or a replica set) through the ordinary
// writers: every rank writes its own payload; only the file mapping varies.
Status write_set(fs::FileSystem& fs, par::Comm& gcom,
                 core::ParOpenSpec spec, const BuddyConfig& config,
                 fs::DataView payload) {
  if (config.collective) {
    SION_ASSIGN_OR_RETURN(
        auto sion,
        Collective::open_write(fs, gcom, spec, config.collective_config));
    SION_RETURN_IF_ERROR(sion->write(payload));
    return sion->close();
  }
  SION_ASSIGN_OR_RETURN(auto sion, core::SionParFile::open_write(fs, gcom, spec));
  SION_ASSIGN_OR_RETURN(const std::uint64_t n, sion->write(payload));
  (void)n;
  return sion->close();
}

// Plain-mode mirror writer for replica set k: every rank ships its chunk
// descriptor and payload view to the buddy rank shift = k*S positions
// ahead over the group-to-group rotation, and each domain writes the
// streams it received into its own replica physical file — a valid SION
// physical file carrying the SOURCE ranks' identity, so the set reads like
// any other multifile.
Status mirror_write(fs::FileSystem& fs, par::Comm& gcom, par::Comm& dcom,
                    const std::string& set_name, int k, int domain_size,
                    int ndomains, std::uint64_t fsblksize,
                    std::uint64_t chunksize, fs::DataView payload) {
  const int gsize = gcom.size();
  const int me = gcom.rank();
  const int shift = k * domain_size;
  const int src_rank = (me - shift % gsize + gsize) % gsize;
  const int g = me / domain_size;  // the file my domain hosts
  const int p = dcom.rank();       // my slot within it

  // Descriptor rotation: chunk geometry and payload shape travel to the
  // buddy host so both sides know exactly what the view leg carries.
  ByteWriter w;
  w.put_u64(chunksize);
  w.put_u64(payload.size());
  w.put_u8(payload.is_fill() ? 1 : 0);
  w.put_u8(payload.is_fill() ? static_cast<std::uint8_t>(payload.fill_byte())
                             : 0);
  const std::vector<std::byte> desc = gcom.rotate_bytes(w.bytes(), shift);
  ByteReader r(desc);
  SION_ASSIGN_OR_RETURN(const std::uint64_t src_chunksize, r.get_u64());
  SION_ASSIGN_OR_RETURN(const std::uint64_t src_size, r.get_u64());
  SION_ASSIGN_OR_RETURN(const std::uint8_t src_is_fill, r.get_u8());
  SION_ASSIGN_OR_RETURN(const std::uint8_t src_fill, r.get_u8());

  // Payload-view leg: real bytes ship zero-copy (the payload stays alive
  // until this collective returns); fills never materialise — their link
  // time is charged on the sender's clock like the aggregation ship does.
  std::span<const std::byte> src_bytes;
  if (payload.size() > 0) {
    if (payload.is_fill()) {
      par::this_task()->compute(gcom.network().p2p_cost(payload.size()));
    } else {
      gcom.send_view(payload.bytes(), (me + shift) % gsize, kMirrorDataTag);
    }
  }
  if (src_size > 0 && src_is_fill == 0) {
    src_bytes = gcom.recv_view(src_rank, kMirrorDataTag);
    if (src_bytes.size() != src_size) {
      return Internal("buddy mirror ship size mismatch");
    }
  }

  // File-local metadata: the domain master lays the replica file out with
  // the source ranks' identity and geometry, exactly like a SionParFile
  // master would for those ranks.
  const std::string path =
      core::physical_file_name(set_name, g, ndomains);
  const auto chunksizes = dcom.gather_u64(src_chunksize, 0);
  Status st;
  std::unique_ptr<fs::File> file;
  core::FileLayout layout;  // master only
  std::uint64_t data_start = 0;
  std::uint64_t block_span = 0;
  std::vector<std::uint64_t> chunk_offsets;
  std::vector<std::uint64_t> capacities;
  if (p == 0) {
    st = [&]() -> Status {
      core::FileHeader header;
      header.fsblksize = fsblksize;
      header.ntasks = static_cast<std::uint32_t>(domain_size);
      header.nfiles = static_cast<std::uint32_t>(ndomains);
      header.filenum = static_cast<std::uint32_t>(g);
      const int src_base = ((g - k) % ndomains + ndomains) % ndomains *
                           domain_size;
      header.global_ranks.resize(static_cast<std::size_t>(domain_size));
      for (int t = 0; t < domain_size; ++t) {
        header.global_ranks[static_cast<std::size_t>(t)] =
            static_cast<std::uint64_t>(src_base + t);
      }
      header.chunksizes_req = chunksizes;
      const std::vector<std::byte> meta1 = header.serialize();
      SION_ASSIGN_OR_RETURN(
          layout, core::FileLayout::create(fsblksize, chunksizes,
                                           meta1.size()));
      data_start = layout.data_start();
      block_span = layout.block_span();
      chunk_offsets.resize(static_cast<std::size_t>(domain_size));
      capacities.resize(static_cast<std::size_t>(domain_size));
      for (int t = 0; t < domain_size; ++t) {
        chunk_offsets[static_cast<std::size_t>(t)] =
            layout.chunk_offset_in_block(t);
        capacities[static_cast<std::size_t>(t)] = layout.chunksize(t);
      }
      SION_ASSIGN_OR_RETURN(file, fs.create(path));
      SION_ASSIGN_OR_RETURN(const std::uint64_t n,
                            file->pwrite(fs::DataView(meta1), 0));
      (void)n;
      return Status::Ok();
    }();
  }
  SION_RETURN_IF_ERROR(par::share_status_global(dcom, gcom, st, 0, kBuddyFailed));

  std::uint64_t geom[2] = {data_start, block_span};
  dcom.bcast_u64_seq(geom, 0);
  data_start = geom[0];
  block_span = geom[1];
  const auto [my_offset, my_capacity] =
      dcom.scatter2_u64(chunk_offsets, capacities, 0);

  st = Status::Ok();
  if (p != 0) {
    auto opened = fs.open_rw(path);
    if (!opened.ok()) {
      st = opened.status();
    } else {
      file = std::move(opened).value();
    }
  }
  SION_RETURN_IF_ERROR(par::share_status_global(dcom, gcom, st, 0, kBuddyFailed));

  // Write the mirrored stream, filling each chunk to capacity before moving
  // to the same-positioned chunk of the next block (the SionParFile walk).
  const fs::DataView mirrored =
      src_is_fill != 0
          ? fs::DataView::fill(static_cast<std::byte>(src_fill), src_size)
          : fs::DataView(src_bytes);
  std::vector<std::uint64_t> chunk_bytes;
  std::uint64_t done = 0;
  while (done < src_size && st.ok()) {
    const std::uint64_t take = std::min(my_capacity, src_size - done);
    const std::uint64_t offset =
        data_start + chunk_bytes.size() * block_span + my_offset;
    auto wrote = file->pwrite(mirrored.subview(done, take), offset);
    if (!wrote.ok()) {
      st = wrote.status();
      break;
    }
    chunk_bytes.push_back(take);
    done += take;
  }
  if (chunk_bytes.empty()) chunk_bytes.assign(1, 0);

  // Per-chunk usage to the master, which writes metablock 2 and the
  // trailer exactly like a parallel close.
  const auto all = dcom.gatherv_u64_flat(chunk_bytes, 0);
  if (p == 0 && st.ok()) {
    core::FileMeta2 meta2;
    meta2.bytes_written.resize(static_cast<std::size_t>(domain_size));
    for (int t = 0; t < domain_size; ++t) {
      const auto piece = all.of(t);
      meta2.bytes_written[static_cast<std::size_t>(t)].assign(piece.begin(),
                                                              piece.end());
    }
    const std::uint64_t nblocks = std::max<std::uint64_t>(1, meta2.nblocks());
    st = core::write_meta2_and_trailer(*file, layout.meta2_offset(nblocks),
                                       nblocks, meta2);
  }
  file.reset();
  SION_RETURN_IF_ERROR(agree(gcom, st));
  gcom.barrier();
  return Status::Ok();
}

// A primary physical file (or replica candidate) is usable when it opens
// and both metablocks parse — which is exactly what the restart reader
// needs. Missing files, injected open/read faults, and silent truncation
// (metablock 2 lives at the end) all fail this probe.
bool file_usable(fs::FileSystem& fs, const std::string& path, int ndomains) {
  auto file = fs.open_read(path);
  if (!file.ok()) return false;
  auto header = core::read_header(*file.value());
  if (!header.ok()) return false;
  if (static_cast<int>(header.value().nfiles) != ndomains) return false;
  auto meta2 = core::read_meta2(*file.value(), header.value());
  if (!meta2.ok()) return false;
  return meta2.value().bytes_written.size() == header.value().ntasks;
}

// Copy a surviving replica file over the lost primary file and patch the
// header's filenum so the healed file takes the primary's place in the set.
Result<std::uint64_t> heal_one(fs::FileSystem& fs, const std::string& src_path,
                               const std::string& dst_path, int filenum,
                               std::uint64_t buffer_bytes) {
  SION_ASSIGN_OR_RETURN(auto src, fs.open_read(src_path));
  SION_ASSIGN_OR_RETURN(core::FileHeader header, core::read_header(*src));
  SION_ASSIGN_OR_RETURN(const fs::FileStat st, src->stat());
  SION_ASSIGN_OR_RETURN(auto dst, fs.create(dst_path));
  std::vector<std::byte> buf(
      static_cast<std::size_t>(std::max<std::uint64_t>(1, buffer_bytes)));
  std::uint64_t done = 0;
  while (done < st.size) {
    const std::uint64_t want = std::min<std::uint64_t>(buf.size(),
                                                       st.size - done);
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t got,
        src->pread(std::span<std::byte>(buf).first(want), done));
    if (got != want) return Corrupt("replica shrank during heal copy");
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t put,
        dst->pwrite(fs::DataView(std::span<const std::byte>(buf).first(got)),
                    done));
    (void)put;
    done += got;
  }
  header.filenum = static_cast<std::uint32_t>(filenum);
  SION_ASSIGN_OR_RETURN(
      const std::uint64_t n,
      dst->pwrite(fs::DataView(header.serialize()), 0));
  (void)n;
  return done;
}

}  // namespace

std::string Buddy::replica_name(const std::string& name, int k) {
  return strformat("%s.b%d", name.c_str(), k);
}

// ---------------------------------------------------------------------------
// write
// ---------------------------------------------------------------------------

Status Buddy::write(fs::FileSystem& fs, par::Comm& gcom,
                    const core::ParOpenSpec& spec, const BuddyConfig& config,
                    fs::DataView payload) {
  const int gsize = gcom.size();
  const int ndomains =
      config.num_domains > 0 ? config.num_domains : std::max(1, spec.nfiles);
  const int replicas = config.replicas;
  if (spec.chunk_frames) {
    return InvalidArgument(
        "chunk recovery frames are not supported with buddy replication");
  }
  if (replicas < 1) {
    return InvalidArgument("buddy replication degree must be at least 1");
  }
  if (replicas > ndomains) {
    return InvalidArgument(strformat(
        "replication degree %d exceeds the %d failure domains (the copies "
        "of a stream must live in distinct domains)",
        replicas, ndomains));
  }
  if (gsize % ndomains != 0) {
    return InvalidArgument(strformat(
        "%d tasks cannot form %d equal failure domains", gsize, ndomains));
  }
  const int domain_size = gsize / ndomains;

  // The mirror ship rotates single-mode views; gather payloads would need
  // per-part descriptors. The check is agreed so a single gather-carrying
  // rank fails every task instead of deserting its buddy mid-rotation.
  if (replicas > 1 && !config.collective) {
    const bool gather = payload.is_gather();
    if (gcom.allreduce_u64(gather ? 1 : 0, par::ReduceOp::kMax) != 0) {
      return InvalidArgument(
          "gather payloads are not supported by the buddy mirror ship");
    }
  }

  // The replica layout must be reproducible at heal time from the file
  // geometry alone, so the block size is pinned up front (the primary's
  // writers would otherwise detect it file by file).
  std::uint64_t fsblksize = spec.fsblksize;
  if (fsblksize == 0) {
    Status st;
    if (gcom.rank() == 0) {
      auto detected = fs.block_size(fs::parent(spec.filename));
      if (detected.ok()) {
        fsblksize = detected.value();
      } else {
        st = detected.status();
      }
    }
    SION_RETURN_IF_ERROR(par::share_status(gcom, st, 0, kBuddyFailed));
    fsblksize = gcom.bcast_u64(fsblksize, 0);
  }

  // Primary: the ordinary multifile, one physical file per failure domain
  // (contiguous equal blocks == the domain mapping when D divides gsize).
  core::ParOpenSpec pspec = spec;
  pspec.nfiles = ndomains;
  pspec.fsblksize = fsblksize;
  pspec.mapping = core::Mapping::kContiguous;
  pspec.custom_file_of_rank.clear();
  SION_RETURN_IF_ERROR(write_set(fs, gcom, pspec, config, payload));

  if (replicas == 1) return Status::Ok();

  // The plain-mode mirror writer needs the per-domain subcommunicator; the
  // split is collective, so make it unconditionally and once for all sets.
  par::Comm* dcom = gcom.split(gcom.rank() / domain_size, gcom.rank());
  SION_CHECK(dcom != nullptr) << "domain split returned no communicator";

  for (int k = 1; k < replicas; ++k) {
    const std::string set_name = replica_name(spec.filename, k);
    if (config.collective) {
      // Rotated mapping, identity preserved: rank i's payload ships through
      // ext::Collective to the collector of buddy domain (d_i + k) mod D's
      // file — the coalesced-copy-traffic path.
      core::ParOpenSpec rspec = pspec;
      rspec.filename = set_name;
      rspec.mapping = core::Mapping::kCustom;
      rspec.custom_file_of_rank =
          rotated_file_map(gsize, domain_size, ndomains, k);
      SION_RETURN_IF_ERROR(write_set(fs, gcom, rspec, config, payload));
    } else {
      SION_RETURN_IF_ERROR(mirror_write(fs, gcom, *dcom, set_name, k,
                                        domain_size, ndomains, fsblksize,
                                        spec.chunksize, payload));
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// heal
// ---------------------------------------------------------------------------

Result<BuddyHealReport> Buddy::heal(fs::FileSystem& fs, par::Comm& mcom,
                                    const std::string& name,
                                    const BuddyConfig& config,
                                    std::uint64_t copy_buffer_bytes) {
  const int me = mcom.rank();
  const int msize = mcom.size();
  const int ndomains = config.num_domains;
  const int replicas = config.replicas;

  // Rank 0 probes every primary physical file and picks, per damaged file,
  // the surviving replica candidates in preference order (nearest buddy
  // first). The plan is broadcast so the heal copies spread over the
  // restart tasks deterministically.
  Status st;
  std::vector<std::byte> plan;
  if (me == 0) {
    st = [&]() -> Status {
      if (ndomains < 1 || replicas < 1) {
        return InvalidArgument(
            "buddy heal needs the write-time num_domains and replicas");
      }
      ByteWriter w;
      std::uint64_t damaged = 0;
      ByteWriter body;
      for (int f = 0; f < ndomains; ++f) {
        if (file_usable(fs, core::physical_file_name(name, f, ndomains),
                        ndomains)) {
          continue;
        }
        std::vector<std::uint64_t> cands;
        for (int k = 1; k < replicas; ++k) {
          const std::string cand = core::physical_file_name(
              replica_name(name, k), (f + k) % ndomains, ndomains);
          if (file_usable(fs, cand, ndomains)) {
            cands.push_back(static_cast<std::uint64_t>(k));
          }
        }
        if (cands.empty()) {
          return IoError(strformat(
              "buddy heal: all %d copies of primary file %d of '%s' are "
              "lost or damaged — the data cannot be recovered",
              replicas, f, name.c_str()));
        }
        ++damaged;
        body.put_u64(static_cast<std::uint64_t>(f));
        body.put_u64_array(cands);
      }
      w.put_u64(damaged);
      w.put_bytes(body.bytes());
      plan = w.take();
      return Status::Ok();
    }();
  }
  SION_RETURN_IF_ERROR(par::share_status(mcom, st, 0, kBuddyFailed));
  const std::uint64_t plan_size = mcom.bcast_u64(plan.size(), 0);
  plan.resize(plan_size);
  mcom.bcast_bytes(plan, 0);

  BuddyHealReport report;
  report.domains = ndomains;
  report.replicas = replicas;
  std::uint64_t my_healed = 0;
  std::uint64_t my_bytes = 0;
  st = Status::Ok();
  {
    ByteReader r(plan);
    SION_ASSIGN_OR_RETURN(const std::uint64_t damaged, r.get_u64());
    report.damaged_files = static_cast<int>(damaged);
    for (std::uint64_t i = 0; i < damaged; ++i) {
      SION_ASSIGN_OR_RETURN(const std::uint64_t f, r.get_u64());
      SION_ASSIGN_OR_RETURN(const auto cands, r.get_u64_array());
      if (static_cast<int>(i % static_cast<std::uint64_t>(msize)) != me) {
        continue;
      }
      Status tried = IoError("no replica candidate");
      for (const std::uint64_t k : cands) {
        const std::string src = core::physical_file_name(
            replica_name(name, static_cast<int>(k)),
            (static_cast<int>(f) + static_cast<int>(k)) % ndomains, ndomains);
        auto copied = heal_one(
            fs, src,
            core::physical_file_name(name, static_cast<int>(f), ndomains),
            static_cast<int>(f), copy_buffer_bytes);
        if (copied.ok()) {
          ++my_healed;
          my_bytes += copied.value();
          tried = Status::Ok();
          break;
        }
        // A candidate that probed healthy can still fail mid-copy (injected
        // read faults, concurrent damage): fall through to the next one.
        tried = copied.status();
      }
      if (!tried.ok() && st.ok()) st = tried;
    }
  }
  SION_RETURN_IF_ERROR(agree(mcom, st));
  report.healed_files =
      static_cast<int>(mcom.allreduce_u64(my_healed, par::ReduceOp::kSum));
  report.bytes_copied = mcom.allreduce_u64(my_bytes, par::ReduceOp::kSum);
  return report;
}

// ---------------------------------------------------------------------------
// restore
// ---------------------------------------------------------------------------

Result<RemapStats> Buddy::restore(fs::FileSystem& fs, par::Comm& mcom,
                                  const std::string& name,
                                  const BuddyConfig& config,
                                  std::span<std::byte> out, std::uint64_t want,
                                  const RemapConfig& remap_config) {
  SION_ASSIGN_OR_RETURN(const BuddyHealReport healed,
                        heal(fs, mcom, name, config,
                             remap_config.buffer_bytes));
  (void)healed;
  SION_ASSIGN_OR_RETURN(auto remap, Remap::open(fs, mcom, name, remap_config));
  SION_ASSIGN_OR_RETURN(const RemapStats stats, remap->restore(out, want));
  SION_RETURN_IF_ERROR(remap->close());
  return stats;
}

}  // namespace sion::ext
