// Multithreading extension (paper section 6): "the current interface has
// been primarily designed for MPI applications, so that thread-local data in
// hybrid codes has to be managed at the application level. More systematic
// support for multithreaded applications is therefore already on our road
// map."
//
// This helper provides that management: a `ThreadChannels` writer gives each
// thread of a task its own logical byte stream, multiplexed into the task's
// SION logical file as tagged segments; `ThreadChannelReader` demultiplexes
// them again. Segment format: [u32 thread id][u32 payload bytes][payload].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/par_file.h"

namespace sion::ext {

class ThreadChannels {
 public:
  // `sion` must be open for writing and outlive this object. A non-positive
  // `nthreads` yields zero channels (every append is rejected) rather than
  // an absurd allocation.
  ThreadChannels(core::SionParFile& sion, int nthreads);

  // Append bytes to thread `tid`'s stream (buffered per thread; threads can
  // fill their buffers independently).
  Status append(int tid, std::span<const std::byte> data);

  // Write all buffered segments into the SION logical file. Call from the
  // owning task (serialises the multiplexing, like the paper's
  // "at most four multifiles on Jugene" per-node funnel).
  Status flush();

  [[nodiscard]] int nthreads() const {
    return static_cast<int>(buffers_.size());
  }
  // Bytes buffered for `tid`; 0 for out-of-range thread ids.
  [[nodiscard]] std::uint64_t buffered_bytes(int tid) const {
    if (tid < 0 || tid >= nthreads()) return 0;
    return buffers_[static_cast<std::size_t>(tid)].size();
  }

 private:
  core::SionParFile* sion_;
  std::vector<std::vector<std::byte>> buffers_;
};

class ThreadChannelReader {
 public:
  // Reads this task's whole logical file and splits it into per-thread
  // streams. `nthreads` may exceed the writer's thread count (the extra
  // streams stay empty — a restart with more threads); a segment naming a
  // thread >= nthreads is corruption. A truncated final segment (header or
  // payload cut short, e.g. by a crash mid-flush) is reported as kCorrupt,
  // never silently dropped.
  static Result<ThreadChannelReader> load(core::SionParFile& sion,
                                          int nthreads);

  // Thread `tid`'s stream; an empty stream for out-of-range thread ids.
  [[nodiscard]] const std::vector<std::byte>& stream(int tid) const {
    static const std::vector<std::byte> kEmpty;
    if (tid < 0 || tid >= nthreads()) return kEmpty;
    return streams_[static_cast<std::size_t>(tid)];
  }
  [[nodiscard]] int nthreads() const {
    return static_cast<int>(streams_.size());
  }

 private:
  explicit ThreadChannelReader(std::vector<std::vector<std::byte>> streams)
      : streams_(std::move(streams)) {}
  std::vector<std::vector<std::byte>> streams_;
};

}  // namespace sion::ext
