#include "ext/compress.h"

#include <algorithm>
#include <cstring>

#include "common/strings.h"
#include "ext/slz.h"

namespace sion::ext {

namespace {

constexpr std::array<std::uint32_t, 256> kCrc32cTable = [] {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = ((c & 1u) != 0u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}();

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t off) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= std::to_integer<std::uint32_t>(in[off + i]) << (8 * i);
  }
  return v;
}

struct Header {
  std::uint32_t comp_bytes = 0;
  std::uint32_t raw_bytes = 0;
};

// Validates sync, header CRC and the format caps; the lengths of a valid
// header are trustworthy (a random flip cannot also fix the CRC).
bool parse_header(std::span<const std::byte> hdr, Header* out) {
  if (hdr.size() < kFrameHeaderBytes) return false;
  if (std::memcmp(hdr.data(), kFrameSync.data(), kFrameSync.size()) != 0) {
    return false;
  }
  if (crc32c(hdr.first(16)) != get_u32(hdr, 16)) return false;
  out->comp_bytes = get_u32(hdr, 8);
  out->raw_bytes = get_u32(hdr, 12);
  return out->raw_bytes <= kMaxFrameRawBytes &&
         out->comp_bytes <= kMaxFrameCompBytes;
}

// First offset >= `from` where the sync marker starts, or `end` if none;
// reads the encoded stream in overlapping windows.
Result<std::uint64_t> scan_for_sync(std::uint64_t from, std::uint64_t end,
                                    const ReadAtFn& read_at) {
  const std::uint64_t kWindow = 64 * kKiB;
  std::vector<std::byte> buf(static_cast<std::size_t>(
      std::min<std::uint64_t>(kWindow, end > from ? end - from : 0)));
  std::uint64_t pos = from;
  while (end - pos >= kFrameSync.size()) {
    const std::uint64_t want = std::min<std::uint64_t>(kWindow, end - pos);
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t got,
        read_at(pos, std::span<std::byte>(buf.data(),
                                          static_cast<std::size_t>(want))));
    if (got < kFrameSync.size()) return end;
    const auto hay = std::span<const std::byte>(
        buf.data(), static_cast<std::size_t>(got));
    const auto it = std::search(hay.begin(), hay.end(), kFrameSync.begin(),
                                kFrameSync.end());
    if (it != hay.end()) {
      return pos + static_cast<std::uint64_t>(it - hay.begin());
    }
    if (got < want) return end;  // stream ended early
    pos += got - (kFrameSync.size() - 1);  // overlap a partial marker
  }
  return end;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = kCrc32cTable[(crc ^ std::to_integer<std::uint32_t>(b)) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}

Result<std::vector<std::byte>> compress_stream(std::span<const std::byte> input,
                                               const CompressionSpec& spec) {
  const std::uint64_t chunk =
      std::clamp<std::uint64_t>(spec.chunk_bytes, 512, kMaxFrameRawBytes);
  std::vector<std::byte> out;
  out.reserve(input.size() / 2 + 64);
  for (std::uint64_t pos = 0; pos < input.size(); pos += chunk) {
    const std::uint64_t raw =
        std::min<std::uint64_t>(chunk, input.size() - pos);
    const std::vector<std::byte> stream = slz_compress(
        input.subspan(static_cast<std::size_t>(pos),
                      static_cast<std::size_t>(raw)));
    SION_RETURN_IF_ERROR(slz_validate_frame_size(stream.size()));
    out.insert(out.end(), kFrameSync.begin(), kFrameSync.end());
    put_u32(out, static_cast<std::uint32_t>(stream.size()));
    put_u32(out, static_cast<std::uint32_t>(raw));
    const std::uint32_t header_crc =
        crc32c(std::span<const std::byte>(out).last(16));
    put_u32(out, header_crc);
    out.insert(out.end(), stream.begin(), stream.end());
    put_u32(out, crc32c(stream));
  }
  return out;
}

Result<FrameIndex> index_frames(std::uint64_t encoded_bytes,
                                const ReadAtFn& read_at) {
  FrameIndex idx;
  idx.encoded_bytes = encoded_bytes;
  std::array<std::byte, kFrameHeaderBytes> hdr{};
  std::uint64_t pos = 0;
  while (pos < encoded_bytes) {
    Header h;
    bool valid = false;
    if (encoded_bytes - pos >= kFrameHeaderBytes) {
      SION_ASSIGN_OR_RETURN(const std::uint64_t got,
                            read_at(pos, std::span<std::byte>(hdr)));
      valid = got == hdr.size() &&
              parse_header(std::span<const std::byte>(hdr), &h);
    }
    if (valid) {
      FrameEntry e;
      e.encoded_offset = pos;
      e.decoded_offset = idx.decoded_bytes;
      e.decoded_bytes = h.raw_bytes;
      e.comp_bytes = h.comp_bytes;
      const std::uint64_t body_end =
          pos + kFrameHeaderBytes + h.comp_bytes + kFrameTrailerBytes;
      if (body_end > encoded_bytes) {
        e.encoded_bytes = encoded_bytes - pos;
        e.torn = true;
        pos = encoded_bytes;
      } else {
        e.encoded_bytes = body_end - pos;
        pos = body_end;
      }
      idx.decoded_bytes += e.decoded_bytes;
      idx.frames.push_back(e);
    } else {
      // No frame here: discard up to the next sync marker. The extent of
      // whatever lived in this region is unknowable, so it contributes no
      // decoded bytes — one damaged region counts as one skipped frame.
      SION_ASSIGN_OR_RETURN(const std::uint64_t next,
                            scan_for_sync(pos + 1, encoded_bytes, read_at));
      idx.scan_loss.frames_skipped += 1;
      idx.scan_loss.bytes_discarded += next - pos;
      pos = next;
    }
  }
  return idx;
}

FrameStreamReader::FrameStreamReader(FrameIndex index, ReadAtFn read_at,
                                     StreamLossReport* loss)
    : index_(std::move(index)),
      read_at_(std::move(read_at)),
      loss_(loss),
      loss_counted_(index_.frames.size(), false) {
  if (loss_ != nullptr) loss_->merge(index_.scan_loss);
}

Status FrameStreamReader::materialize(std::size_t frame_i) {
  const FrameEntry& e = index_.frames[frame_i];
  cache_.assign(static_cast<std::size_t>(e.decoded_bytes), std::byte{0});
  cache_i_ = frame_i;
  bool damaged = e.torn;
  if (!damaged) {
    std::vector<std::byte> body(
        static_cast<std::size_t>(e.comp_bytes + kFrameTrailerBytes));
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t got,
        read_at_(e.encoded_offset + kFrameHeaderBytes,
                 std::span<std::byte>(body)));
    encoded_read_ += kFrameHeaderBytes + got;
    const auto payload =
        std::span<const std::byte>(body).first(e.comp_bytes);
    if (got != body.size() ||
        crc32c(payload) != get_u32(body, e.comp_bytes)) {
      damaged = true;
    } else {
      // The header's raw size bounds the decode: a forged slz header inside
      // a CRC-valid frame still cannot drive a larger allocation.
      auto decoded = slz_decompress(payload, e.decoded_bytes);
      if (decoded.ok() && decoded.value().size() == e.decoded_bytes) {
        cache_ = std::move(decoded).value();
      } else {
        damaged = true;
      }
    }
  }
  if (!loss_counted_[frame_i] && loss_ != nullptr) {
    if (damaged) {
      loss_->frames_skipped += 1;
      loss_->bytes_zero_filled += e.decoded_bytes;
    } else {
      loss_->frames_decoded += 1;
    }
  }
  loss_counted_[frame_i] = true;
  return Status::Ok();
}

Status FrameStreamReader::read_decoded(std::uint64_t offset,
                                       std::span<std::byte> out) {
  if (offset + out.size() > index_.decoded_bytes) {
    return OutOfRange(strformat(
        "decoded read [%llu, %llu) past stream end %llu",
        static_cast<unsigned long long>(offset),
        static_cast<unsigned long long>(offset + out.size()),
        static_cast<unsigned long long>(index_.decoded_bytes)));
  }
  // First frame whose decoded range reaches `offset`.
  std::size_t i = static_cast<std::size_t>(
      std::upper_bound(index_.frames.begin(), index_.frames.end(), offset,
                       [](std::uint64_t off, const FrameEntry& e) {
                         return off < e.decoded_offset;
                       }) -
      index_.frames.begin());
  if (i > 0) --i;
  std::uint64_t done = 0;
  while (done < out.size()) {
    const FrameEntry& e = index_.frames[i];
    const std::uint64_t cur = offset + done;
    if (cur >= e.decoded_offset + e.decoded_bytes) {
      ++i;
      continue;
    }
    if (cache_i_ != i) SION_RETURN_IF_ERROR(materialize(i));
    const std::uint64_t in_frame = cur - e.decoded_offset;
    const std::uint64_t n = std::min<std::uint64_t>(
        e.decoded_bytes - in_frame, out.size() - done);
    std::memcpy(out.data() + done, cache_.data() + in_frame,
                static_cast<std::size_t>(n));
    done += n;
  }
  return Status::Ok();
}

Result<std::vector<std::byte>> decompress_stream(
    std::span<const std::byte> encoded, StreamLossReport* loss) {
  const ReadAtFn read_at =
      [encoded](std::uint64_t offset,
                std::span<std::byte> out) -> Result<std::uint64_t> {
    if (offset >= encoded.size()) return std::uint64_t{0};
    const std::uint64_t n =
        std::min<std::uint64_t>(out.size(), encoded.size() - offset);
    std::memcpy(out.data(), encoded.data() + offset,
                static_cast<std::size_t>(n));
    return n;
  };
  SION_ASSIGN_OR_RETURN(FrameIndex index,
                        index_frames(encoded.size(), read_at));
  StreamLossReport local;
  FrameStreamReader reader(std::move(index), read_at, &local);
  std::vector<std::byte> out(
      static_cast<std::size_t>(reader.decoded_bytes()));
  SION_RETURN_IF_ERROR(reader.read_decoded(0, out));
  if (loss != nullptr) loss->merge(local);
  return out;
}

bool stream_is_framed(std::span<const std::byte> head) {
  return head.size() >= kFrameSync.size() &&
         std::memcmp(head.data(), kFrameSync.data(), kFrameSync.size()) == 0;
}

Result<std::vector<std::byte>> read_logical_decompressed(
    core::SionSerialFile& file, int rank, StreamLossReport* loss) {
  SION_ASSIGN_OR_RETURN(std::vector<std::byte> raw, file.read_logical(rank));
  if (!stream_is_framed(raw)) return raw;
  return decompress_stream(raw, loss);
}

Result<std::vector<std::byte>> read_remaining_decompressed(
    core::SionParFile& file, StreamLossReport* loss) {
  SION_ASSIGN_OR_RETURN(std::vector<std::byte> raw, file.read_remaining());
  if (!stream_is_framed(raw)) return raw;
  return decompress_stream(raw, loss);
}

}  // namespace sion::ext
