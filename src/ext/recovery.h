// Robustness extension (paper section 6): "failures, such as premature
// application termination or file quota violation, may cause the second
// metadata block to be lost. To improve SIONlib's robustness in such an
// event, we plan to add small pieces of metadata to each chunk so that the
// full metadata can be restored if needed."
//
// When a multifile is written with ParOpenSpec::chunk_frames, the first 64
// bytes of every chunk hold a frame (magic, global rank, block number,
// payload bytes) that the writer keeps patched. `repair_multifile` scans the
// chunk grid — fully determined by metablock 1, which is written at open and
// therefore survives a crash — rebuilds metablock 2 from the frames, and
// patches the trailer so the file opens normally again.
#pragma once

#include <string>

#include "common/status.h"
#include "fs/filesystem.h"

namespace sion::ext {

struct RepairReport {
  int physical_files = 0;
  int repaired_files = 0;   // files whose metablock 2 was reconstructed
  int intact_files = 0;     // files that already had a valid metablock 2
  std::uint64_t chunks_recovered = 0;
};

Result<RepairReport> repair_multifile(fs::FileSystem& fs,
                                      const std::string& name);

// Loss accounting for the corruption-tolerant framed-compression reads in
// ext/compress.h: instead of aborting a restart, a frame whose CRC32C
// disagrees is zero-filled (known extent, stream positions preserved) and a
// frame whose header is torn is skipped by resync scan (bytes discarded).
// Restore paths aggregate one of these per restart and surface it next to
// RepairReport in the recovery status machinery.
struct StreamLossReport {
  std::uint64_t frames_decoded = 0;     // frames that verified and decoded
  std::uint64_t frames_skipped = 0;     // payload CRC mismatch / torn header
  std::uint64_t bytes_zero_filled = 0;  // loss with known extent
  std::uint64_t bytes_discarded = 0;    // encoded garbage skipped on resync
  void merge(const StreamLossReport& other);
  [[nodiscard]] bool clean() const {
    return frames_skipped == 0 && bytes_discarded == 0;
  }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace sion::ext
