// Robustness extension (paper section 6): "failures, such as premature
// application termination or file quota violation, may cause the second
// metadata block to be lost. To improve SIONlib's robustness in such an
// event, we plan to add small pieces of metadata to each chunk so that the
// full metadata can be restored if needed."
//
// When a multifile is written with ParOpenSpec::chunk_frames, the first 64
// bytes of every chunk hold a frame (magic, global rank, block number,
// payload bytes) that the writer keeps patched. `repair_multifile` scans the
// chunk grid — fully determined by metablock 1, which is written at open and
// therefore survives a crash — rebuilds metablock 2 from the frames, and
// patches the trailer so the file opens normally again.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "fs/filesystem.h"

namespace sion::ext {

struct RepairReport {
  int physical_files = 0;
  int repaired_files = 0;   // files whose metablock 2 was reconstructed
  int intact_files = 0;     // files that already had a valid metablock 2
  std::uint64_t chunks_recovered = 0;
};

Result<RepairReport> repair_multifile(fs::FileSystem& fs,
                                      const std::string& name);

// Protection companions discovered next to a multifile: buddy replica sets
// ("<name>.b<k>", each a complete SION multifile) and ECC parity files
// ("<name>.p<j>"). A frame-based repair re-derives metadata from whatever
// bytes survive; a redundancy-based heal (ext::Buddy::heal /
// ext::Ecc::heal) reconstructs the lost bytes themselves, byte-identically.
// sionrepair therefore refuses the weaker repair while an intact heal
// source exists (overridable with --force).
struct ProtectionSet {
  std::vector<int> replica_sets;         // "<name>.b<k>" sets found
  std::vector<int> intact_replica_sets;  // subset passing the light probe
  int parity_found = 0;   // "<name>.p<j>" files found (consecutive from 0)
  int parity_intact = 0;  // header checksum + size + end marker all good
  int ecc_k = 0;          // geometry from the first parseable parity header
  int ecc_m = 0;
  int data_intact = 0;  // primary physical files passing the light probe

  // An intact replica set, or enough ECC survivors (intact data + intact
  // parity >= k) for matrix-inversion reconstruction.
  [[nodiscard]] bool heal_available() const;
  [[nodiscard]] bool empty() const {
    return replica_sets.empty() && parity_found == 0;
  }
  [[nodiscard]] std::string to_string() const;
};

// Serial scan for protection companions of `name`. Light intactness
// probes only (headers and metablocks parse; parity end markers present) —
// cheap enough for a tool's pre-flight, not a full byte verification.
Result<ProtectionSet> discover_protection(fs::FileSystem& fs,
                                          const std::string& name);

// Loss accounting for the corruption-tolerant framed-compression reads in
// ext/compress.h: instead of aborting a restart, a frame whose CRC32C
// disagrees is zero-filled (known extent, stream positions preserved) and a
// frame whose header is torn is skipped by resync scan (bytes discarded).
// Restore paths aggregate one of these per restart and surface it next to
// RepairReport in the recovery status machinery.
struct StreamLossReport {
  std::uint64_t frames_decoded = 0;     // frames that verified and decoded
  std::uint64_t frames_skipped = 0;     // payload CRC mismatch / torn header
  std::uint64_t bytes_zero_filled = 0;  // loss with known extent
  std::uint64_t bytes_discarded = 0;    // encoded garbage skipped on resync
  void merge(const StreamLossReport& other);
  [[nodiscard]] bool clean() const {
    return frames_skipped == 0 && bytes_discarded == 0;
  }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace sion::ext
