#include "ext/ecc.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "common/codec.h"
#include "common/strings.h"
#include "core/metadata.h"
#include "ext/compress.h"
#include "ext/gf256.h"
#include "fs/path.h"
#include "par/engine.h"

namespace sion::ext {

namespace {

// Shared wording for the par agreement helpers: a failure on any encoder,
// healer, or degraded reader must surface on every task.
constexpr char kEccFailed[] = "ecc protection failed on another rank";

Status agree(par::Comm& comm, const Status& mine) {
  return par::agree_status(comm, mine, kEccFailed);
}

// Parity file layout: a small self-describing header, the parity payload
// at `data_start` (zero stripes skipped, so alignment gaps of the data
// files stay sparse here too), and an 8-byte end marker at
// data_start + payload_bytes whose presence proves the encode completed
// and the file was not silently truncated.
constexpr char kParityMagic[] = "SIONECC1";
constexpr char kParityEnd[] = "SIONECC2";
constexpr std::uint32_t kParityVersion = 1;
constexpr std::uint64_t kParityAlign = 512;

struct ParityHeader {
  int k = 0;
  int m = 0;
  int index = 0;  // which parity file this is (j)
  std::uint64_t stripe_bytes = 0;
  std::uint64_t data_start = 0;
  std::uint64_t payload_bytes = 0;
  std::vector<std::uint64_t> data_bytes;  // k entries
};

std::uint64_t parity_data_start(int k) {
  // Serialized header size: magic + 4 u32 + 3 u64 + (count + k) u64 + crc.
  const std::uint64_t raw = 8 + 4 * 4 + 3 * 8 + 8 +
                            static_cast<std::uint64_t>(k) * 8 + 4;
  return (raw + kParityAlign - 1) / kParityAlign * kParityAlign;
}

std::vector<std::byte> serialize_parity_header(const ParityHeader& h) {
  ByteWriter w;
  w.put_bytes(std::as_bytes(std::span<const char>(kParityMagic, 8)));
  w.put_u32(kParityVersion);
  w.put_u32(static_cast<std::uint32_t>(h.k));
  w.put_u32(static_cast<std::uint32_t>(h.m));
  w.put_u32(static_cast<std::uint32_t>(h.index));
  w.put_u64(h.stripe_bytes);
  w.put_u64(h.data_start);
  w.put_u64(h.payload_bytes);
  w.put_u64_array(h.data_bytes);
  w.put_u32(crc32c(w.bytes()));
  return w.take();
}

Result<ParityHeader> parse_parity_header(fs::File& file) {
  // The header is bounded by k <= 255: 68 + 8k bytes < 4 KiB.
  std::vector<std::byte> buf(4096);
  SION_ASSIGN_OR_RETURN(const std::uint64_t got,
                        file.pread(std::span<std::byte>(buf), 0));
  buf.resize(static_cast<std::size_t>(got));
  if (got < 8 || std::memcmp(buf.data(), kParityMagic, 8) != 0) {
    return Corrupt("not an ECC parity file (bad magic)");
  }
  ByteReader r(std::span<const std::byte>(buf).subspan(8));
  SION_ASSIGN_OR_RETURN(const std::uint32_t version, r.get_u32());
  if (version != kParityVersion) {
    return Corrupt(strformat("unsupported ECC parity version %u", version));
  }
  ParityHeader h;
  SION_ASSIGN_OR_RETURN(const std::uint32_t k, r.get_u32());
  SION_ASSIGN_OR_RETURN(const std::uint32_t m, r.get_u32());
  SION_ASSIGN_OR_RETURN(const std::uint32_t index, r.get_u32());
  h.k = static_cast<int>(k);
  h.m = static_cast<int>(m);
  h.index = static_cast<int>(index);
  SION_ASSIGN_OR_RETURN(h.stripe_bytes, r.get_u64());
  SION_ASSIGN_OR_RETURN(h.data_start, r.get_u64());
  SION_ASSIGN_OR_RETURN(h.payload_bytes, r.get_u64());
  if (h.k < 1 || h.k > 255 || h.m < 1 || h.k + h.m > 255 ||
      h.index >= h.m) {
    return Corrupt("ECC parity header carries impossible geometry");
  }
  SION_ASSIGN_OR_RETURN(h.data_bytes, r.get_u64_array());
  if (h.data_bytes.size() != static_cast<std::size_t>(h.k)) {
    return Corrupt("ECC parity header data-length table truncated");
  }
  SION_ASSIGN_OR_RETURN(const std::uint32_t stored_crc, r.get_u32());
  const std::size_t crc_at = 8 + 4 * 4 + 3 * 8 + 8 +
                             static_cast<std::size_t>(h.k) * 8;
  if (buf.size() < crc_at + 4 ||
      crc32c(std::span<const std::byte>(buf).first(crc_at)) != stored_crc) {
    return Corrupt("ECC parity header checksum mismatch");
  }
  return h;
}

// A parity file is usable when its header parses (checksummed), matches
// the expected geometry, and the end marker sits exactly where the header
// says the payload ends — so silent truncation anywhere fails the probe.
Result<ParityHeader> parity_usable(fs::FileSystem& fs, const std::string& path,
                                   int k, int m, int index) {
  SION_ASSIGN_OR_RETURN(auto file, fs.open_read(path));
  SION_ASSIGN_OR_RETURN(ParityHeader h, parse_parity_header(*file));
  if (h.k != k || h.m != m || h.index != index) {
    return Corrupt(strformat(
        "parity file '%s' belongs to a (k=%d, m=%d, j=%d) set, expected "
        "(k=%d, m=%d, j=%d)",
        path.c_str(), h.k, h.m, h.index, k, m, index));
  }
  SION_ASSIGN_OR_RETURN(const fs::FileStat st, file->stat());
  if (st.size != h.data_start + h.payload_bytes + 8) {
    return Corrupt(strformat("parity file '%s' is truncated", path.c_str()));
  }
  std::array<std::byte, 8> end{};
  SION_ASSIGN_OR_RETURN(
      const std::uint64_t got,
      file->pread(std::span<std::byte>(end), h.data_start + h.payload_bytes));
  if (got != 8 || std::memcmp(end.data(), kParityEnd, 8) != 0) {
    return Corrupt(strformat("parity file '%s' has no end marker (the "
                             "encode never completed)",
                             path.c_str()));
  }
  return h;
}

// A primary physical file is usable when it opens and both metablocks
// parse — what the restart reader needs (same probe as ext::Buddy's).
bool data_usable(fs::FileSystem& fs, const std::string& path, int k) {
  auto file = fs.open_read(path);
  if (!file.ok()) return false;
  auto header = core::read_header(*file.value());
  if (!header.ok()) return false;
  if (static_cast<int>(header.value().nfiles) != k) return false;
  auto meta2 = core::read_meta2(*file.value(), header.value());
  if (!meta2.ok()) return false;
  return meta2.value().bytes_written.size() == header.value().ntasks;
}

EccConfig derived(const EccConfig& config, int nfiles) {
  EccConfig c = config;
  if (c.data_domains <= 0) c.data_domains = std::max(1, nfiles);
  return c;
}

Status validate_geometry(int k, int m, std::uint64_t stripe_bytes) {
  if (k < 1) {
    return InvalidArgument("ecc: at least one data domain is required");
  }
  if (m < 1) {
    return InvalidArgument(
        "ecc: at least one parity domain is required (use an unset "
        "protection for none)");
  }
  if (k + m > 255) {
    return InvalidArgument(strformat(
        "ecc: %d data + %d parity domains exceed the 255 GF(256) supports",
        k, m));
  }
  if (stripe_bytes == 0) {
    return InvalidArgument("ecc: stripe_bytes must be > 0");
  }
  return Status::Ok();
}

// Survivor selection + decode rows for a set of lost data files: pick the
// first k usable files (data preferred — identity rows keep the matrix
// mostly trivial), build the k x k generator submatrix, invert it. Row d
// of the inverse reconstructs data file d from the survivors.
Status build_decode(const EccProbe& p, std::span<const int> lost,
                    std::vector<int>* survivor_ids,
                    std::vector<std::vector<std::uint8_t>>* rows) {
  const int k = p.k;
  std::vector<int> surv;
  for (int d = 0; d < k; ++d) {
    if (p.data_ok[static_cast<std::size_t>(d)] != 0) surv.push_back(d);
  }
  for (int j = 0; j < p.m; ++j) {
    if (p.parity_ok[static_cast<std::size_t>(j)] != 0) surv.push_back(k + j);
  }
  if (static_cast<int>(surv.size()) < k) {
    return IoError(strformat(
        "ecc: only %d of the %d+%d protection files survive — fewer than "
        "the %d any reconstruction needs; the data cannot be recovered",
        static_cast<int>(surv.size()), k, p.m, k));
  }
  surv.resize(static_cast<std::size_t>(k));
  std::vector<std::uint8_t> matrix(
      static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0);
  for (int i = 0; i < k; ++i) {
    const int s = surv[static_cast<std::size_t>(i)];
    if (s < k) {
      matrix[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
             static_cast<std::size_t>(s)] = 1;
    } else {
      for (int d = 0; d < k; ++d) {
        matrix[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(d)] = gf_cauchy(k, s - k, d);
      }
    }
  }
  SION_RETURN_IF_ERROR(gf_invert_matrix(matrix, k));
  rows->clear();
  for (const int d : lost) {
    std::vector<std::uint8_t> row(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      row[static_cast<std::size_t>(i)] =
          matrix[static_cast<std::size_t>(d) * static_cast<std::size_t>(k) +
                 static_cast<std::size_t>(i)];
    }
    rows->push_back(std::move(row));
  }
  *survivor_ids = std::move(surv);
  return Status::Ok();
}

std::string survivor_path(const std::string& name, const EccProbe& p, int id) {
  if (id < p.k) return core::physical_file_name(name, id, p.k);
  return Ecc::parity_name(name, id - p.k);
}

// The k open survivor handles a decode walks: reading range [off, off+n)
// of ANY data file maps to the same range of every survivor (parity
// shifted by data_start), because parity is byte-positional. Short reads
// and holes contribute zeros — exactly the implicit zero padding of the
// encode.
struct SurvivorSet {
  struct Src {
    std::unique_ptr<fs::File> file;
    bool parity = false;
  };
  std::vector<Src> srcs;
  std::uint64_t data_start = 0;

  static Result<SurvivorSet> open(fs::FileSystem& fs, const std::string& name,
                                  const EccProbe& p,
                                  std::span<const int> survivor_ids) {
    SurvivorSet set;
    set.data_start = p.data_start;
    for (const int id : survivor_ids) {
      Src src;
      src.parity = id >= p.k;
      SION_ASSIGN_OR_RETURN(src.file, fs.open_read(survivor_path(name, p, id)));
      set.srcs.push_back(std::move(src));
    }
    return set;
  }

  // out = sum_i tables[i] * survivor_i[off, off+out.size()).
  Status decode_range(std::span<std::byte> out, std::uint64_t off,
                      std::span<const GfMulTable> tables,
                      std::vector<std::byte>& scratch) {
    std::fill(out.begin(), out.end(), std::byte{0});
    scratch.resize(out.size());
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      if (tables[i].coefficient() == 0) continue;
      std::fill(scratch.begin(), scratch.end(), std::byte{0});
      const std::uint64_t src_off = srcs[i].parity ? data_start + off : off;
      auto got = srcs[i].file->pread(std::span<std::byte>(scratch), src_off);
      if (!got.ok()) return got.status();
      // A read short of the range means the survivor ends there; the
      // pre-zeroed tail is the encode's zero padding.
      tables[i].mul_add(out, scratch);
    }
    return Status::Ok();
  }
};

std::vector<GfMulTable> make_tables(std::span<const std::uint8_t> coeffs) {
  std::vector<GfMulTable> tables;
  tables.reserve(coeffs.size());
  for (const std::uint8_t c : coeffs) tables.emplace_back(c);
  return tables;
}

// Write one multifile (the ECC primary) through the ordinary writers.
Status write_primary(fs::FileSystem& fs, par::Comm& gcom,
                     const core::ParOpenSpec& spec, const EccConfig& config,
                     fs::DataView payload) {
  if (config.collective) {
    SION_ASSIGN_OR_RETURN(
        auto sion,
        Collective::open_write(fs, gcom, spec, config.collective_config));
    SION_RETURN_IF_ERROR(sion->write(payload));
    return sion->close();
  }
  SION_ASSIGN_OR_RETURN(auto sion,
                        core::SionParFile::open_write(fs, gcom, spec));
  SION_ASSIGN_OR_RETURN(const std::uint64_t n, sion->write(payload));
  (void)n;
  return sion->close();
}

// Reconstruct lost data file `d` on disk, byte-identically: decode
// [0, len_d) from the k survivors in bounded waves.
Result<std::uint64_t> heal_data_file(fs::FileSystem& fs,
                                     const std::string& name,
                                     const EccProbe& probe, int d,
                                     std::span<const int> survivor_ids,
                                     std::span<const std::uint8_t> row,
                                     std::uint64_t buffer_bytes) {
  SION_ASSIGN_OR_RETURN(SurvivorSet set,
                        SurvivorSet::open(fs, name, probe, survivor_ids));
  const std::vector<GfMulTable> tables = make_tables(row);
  SION_ASSIGN_OR_RETURN(
      auto dst, fs.create(core::physical_file_name(name, d, probe.k)));
  const std::uint64_t len = probe.data_bytes[static_cast<std::size_t>(d)];
  std::vector<std::byte> out(
      static_cast<std::size_t>(std::max<std::uint64_t>(1, buffer_bytes)));
  std::vector<std::byte> scratch;
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t take = std::min<std::uint64_t>(out.size(), len - done);
    SION_RETURN_IF_ERROR(set.decode_range(
        std::span<std::byte>(out).first(static_cast<std::size_t>(take)), done,
        tables, scratch));
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t put,
        dst->pwrite(fs::DataView(std::span<const std::byte>(out).first(
                        static_cast<std::size_t>(take))),
                    done));
    if (put != take) return IoError("short write healing an ECC data file");
    done += take;
  }
  return done;
}

// The degraded decode stream: a read-only fs::File whose pread()
// reconstructs any byte range of one lost data file from the k survivors.
class EccStreamReader final : public fs::File {
 public:
  static Result<std::unique_ptr<fs::File>> open(
      fs::FileSystem& base, const std::string& name, const EccProbe& probe,
      std::span<const int> survivor_ids, std::span<const std::uint8_t> row,
      std::uint64_t size, std::uint64_t block_size) {
    auto reader = std::unique_ptr<EccStreamReader>(new EccStreamReader());
    SION_ASSIGN_OR_RETURN(reader->set_,
                          SurvivorSet::open(base, name, probe, survivor_ids));
    reader->tables_ = make_tables(row);
    reader->size_ = size;
    reader->block_size_ = block_size;
    return std::unique_ptr<fs::File>(std::move(reader));
  }

  Result<std::uint64_t> pwrite(fs::DataView data, std::uint64_t offset)
      override {
    (void)data;
    (void)offset;
    return IoError("a degraded ECC decode stream is read-only");
  }

  Result<std::uint64_t> pread(std::span<std::byte> out,
                              std::uint64_t offset) override {
    if (offset >= size_) return 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(out.size(), size_ - offset);
    SION_RETURN_IF_ERROR(set_.decode_range(
        out.first(static_cast<std::size_t>(n)), offset, tables_, scratch_));
    return n;
  }

  Result<fs::FileStat> stat() override {
    fs::FileStat st;
    st.size = size_;
    st.allocated = size_;
    st.block_size = block_size_;
    return st;
  }

  Status truncate(std::uint64_t size) override {
    (void)size;
    return IoError("a degraded ECC decode stream is read-only");
  }

  Status sync() override { return Status::Ok(); }

 private:
  EccStreamReader() = default;

  SurvivorSet set_;
  std::vector<GfMulTable> tables_;
  std::vector<std::byte> scratch_;
  std::uint64_t size_ = 0;
  std::uint64_t block_size_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// EccProbe
// ---------------------------------------------------------------------------

int EccProbe::lost_data() const {
  int lost = 0;
  for (const std::uint8_t ok : data_ok) lost += ok == 0 ? 1 : 0;
  return lost;
}

int EccProbe::lost_parity() const {
  int lost = 0;
  for (const std::uint8_t ok : parity_ok) lost += ok == 0 ? 1 : 0;
  return lost;
}

int EccProbe::survivors() const {
  return k + m - lost_data() - lost_parity();
}

std::vector<std::byte> EccProbe::serialize() const {
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(k));
  w.put_u32(static_cast<std::uint32_t>(m));
  w.put_u64(stripe_bytes);
  w.put_u64(data_start);
  w.put_u64(payload_bytes);
  w.put_u64_array(data_bytes);
  for (const std::uint8_t ok : data_ok) w.put_u8(ok);
  for (const std::uint8_t ok : parity_ok) w.put_u8(ok);
  return w.take();
}

Result<EccProbe> EccProbe::deserialize(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  EccProbe p;
  SION_ASSIGN_OR_RETURN(const std::uint32_t k, r.get_u32());
  SION_ASSIGN_OR_RETURN(const std::uint32_t m, r.get_u32());
  p.k = static_cast<int>(k);
  p.m = static_cast<int>(m);
  SION_ASSIGN_OR_RETURN(p.stripe_bytes, r.get_u64());
  SION_ASSIGN_OR_RETURN(p.data_start, r.get_u64());
  SION_ASSIGN_OR_RETURN(p.payload_bytes, r.get_u64());
  SION_ASSIGN_OR_RETURN(p.data_bytes, r.get_u64_array());
  p.data_ok.resize(static_cast<std::size_t>(p.k));
  for (int d = 0; d < p.k; ++d) {
    SION_ASSIGN_OR_RETURN(p.data_ok[static_cast<std::size_t>(d)], r.get_u8());
  }
  p.parity_ok.resize(static_cast<std::size_t>(p.m));
  for (int j = 0; j < p.m; ++j) {
    SION_ASSIGN_OR_RETURN(p.parity_ok[static_cast<std::size_t>(j)],
                          r.get_u8());
  }
  return p;
}

// ---------------------------------------------------------------------------
// Ecc
// ---------------------------------------------------------------------------

std::string Ecc::parity_name(const std::string& name, int j) {
  return strformat("%s.p%d", name.c_str(), j);
}

Result<EccParityInfo> Ecc::inspect_parity(fs::FileSystem& fs,
                                          const std::string& path) {
  SION_ASSIGN_OR_RETURN(auto file, fs.open_read(path));
  SION_ASSIGN_OR_RETURN(const ParityHeader h, parse_parity_header(*file));
  EccParityInfo info;
  info.k = h.k;
  info.m = h.m;
  info.index = h.index;
  info.stripe_bytes = h.stripe_bytes;
  info.payload_bytes = h.payload_bytes;
  SION_ASSIGN_OR_RETURN(const fs::FileStat st, file->stat());
  if (st.size == h.data_start + h.payload_bytes + 8) {
    std::array<std::byte, 8> end{};
    SION_ASSIGN_OR_RETURN(const std::uint64_t got,
                          file->pread(std::span<std::byte>(end),
                                      h.data_start + h.payload_bytes));
    info.intact = got == 8 && std::memcmp(end.data(), kParityEnd, 8) == 0;
  }
  return info;
}

Status Ecc::write(fs::FileSystem& fs, par::Comm& gcom,
                  const core::ParOpenSpec& spec, const EccConfig& config,
                  fs::DataView payload) {
  const int gsize = gcom.size();
  const EccConfig cfg = derived(config, spec.nfiles);
  const int k = cfg.data_domains;
  if (spec.chunk_frames) {
    return InvalidArgument(
        "chunk recovery frames are not supported with ECC protection");
  }
  SION_RETURN_IF_ERROR(
      validate_geometry(k, cfg.parity_domains, cfg.stripe_bytes));
  if (gsize % k != 0) {
    return InvalidArgument(strformat(
        "%d tasks cannot form %d equal data domains", gsize, k));
  }

  // The parity layout must be reproducible at heal time from the file
  // geometry alone, so the block size is pinned up front (the primary's
  // writers would otherwise detect it file by file).
  std::uint64_t fsblksize = spec.fsblksize;
  if (fsblksize == 0) {
    Status st;
    if (gcom.rank() == 0) {
      auto detected = fs.block_size(fs::parent(spec.filename));
      if (detected.ok()) {
        fsblksize = detected.value();
      } else {
        st = detected.status();
      }
    }
    SION_RETURN_IF_ERROR(par::share_status(gcom, st, 0, kEccFailed));
    fsblksize = gcom.bcast_u64(fsblksize, 0);
  }

  core::ParOpenSpec pspec = spec;
  pspec.nfiles = k;
  pspec.fsblksize = fsblksize;
  pspec.mapping = core::Mapping::kContiguous;
  pspec.custom_file_of_rank.clear();
  SION_RETURN_IF_ERROR(write_primary(fs, gcom, pspec, cfg, payload));

  return encode_parity(fs, gcom, spec.filename, cfg);
}

Status Ecc::encode_parity(fs::FileSystem& fs, par::Comm& comm,
                          const std::string& name, const EccConfig& config,
                          std::span<const int> only) {
  const EccConfig cfg = derived(config, 1);
  const int k = cfg.data_domains;
  const int m = cfg.parity_domains;
  const std::uint64_t stripe = cfg.stripe_bytes;
  SION_RETURN_IF_ERROR(validate_geometry(k, m, stripe));
  std::vector<int> targets(only.begin(), only.end());
  if (targets.empty()) {
    for (int j = 0; j < m; ++j) targets.push_back(j);
  }

  // Rank 0 stats the data files, lays the parity files out (header now,
  // end marker after the payload lands) and broadcasts the geometry.
  Status st;
  std::vector<std::byte> plan;
  if (comm.rank() == 0) {
    st = [&]() -> Status {
      ParityHeader h;
      h.k = k;
      h.m = m;
      h.stripe_bytes = stripe;
      h.data_start = parity_data_start(k);
      h.data_bytes.resize(static_cast<std::size_t>(k));
      for (int d = 0; d < k; ++d) {
        SION_ASSIGN_OR_RETURN(
            const fs::FileStat fst,
            fs.stat_path(core::physical_file_name(name, d, k)));
        h.data_bytes[static_cast<std::size_t>(d)] = fst.size;
        h.payload_bytes = std::max(h.payload_bytes, fst.size);
      }
      for (const int j : targets) {
        h.index = j;
        SION_ASSIGN_OR_RETURN(auto file, fs.create(parity_name(name, j)));
        SION_ASSIGN_OR_RETURN(
            const std::uint64_t n,
            file->pwrite(fs::DataView(serialize_parity_header(h)), 0));
        (void)n;
      }
      ByteWriter w;
      w.put_u64(h.data_start);
      w.put_u64(h.payload_bytes);
      w.put_u64_array(h.data_bytes);
      plan = w.take();
      return Status::Ok();
    }();
  }
  SION_RETURN_IF_ERROR(par::share_status(comm, st, 0, kEccFailed));
  const std::uint64_t plan_size = comm.bcast_u64(plan.size(), 0);
  plan.resize(plan_size);
  comm.bcast_bytes(plan, 0);
  ByteReader r(plan);
  SION_ASSIGN_OR_RETURN(const std::uint64_t data_start, r.get_u64());
  SION_ASSIGN_OR_RETURN(const std::uint64_t payload_bytes, r.get_u64());
  SION_ASSIGN_OR_RETURN(const auto data_bytes, r.get_u64_array());

  // Contiguous stripe ranges per task: parity is byte-positional, so any
  // partition encodes the same bytes; contiguous keeps the I/O sequential.
  const std::uint64_t nstripes = (payload_bytes + stripe - 1) / stripe;
  const auto msize = static_cast<std::uint64_t>(comm.size());
  const auto me = static_cast<std::uint64_t>(comm.rank());
  const std::uint64_t lo = nstripes * me / msize;
  const std::uint64_t hi = nstripes * (me + 1) / msize;

  st = Status::Ok();
  if (lo < hi) {
    st = [&]() -> Status {
      std::vector<std::unique_ptr<fs::File>> data_files(
          static_cast<std::size_t>(k));
      std::vector<std::unique_ptr<fs::File>> parity_files;
      std::vector<std::vector<GfMulTable>> tables;  // [target][d]
      for (const int j : targets) {
        SION_ASSIGN_OR_RETURN(auto file, fs.open_rw(parity_name(name, j)));
        parity_files.push_back(std::move(file));
        std::vector<std::uint8_t> row(static_cast<std::size_t>(k));
        for (int d = 0; d < k; ++d) {
          row[static_cast<std::size_t>(d)] = gf_cauchy(k, j, d);
        }
        tables.push_back(make_tables(row));
      }
      std::vector<std::byte> buf(static_cast<std::size_t>(stripe));
      std::vector<std::vector<std::byte>> acc(targets.size());
      for (std::uint64_t s = lo; s < hi; ++s) {
        const std::uint64_t off = s * stripe;
        const std::uint64_t take = std::min(stripe, payload_bytes - off);
        for (auto& a : acc) a.assign(static_cast<std::size_t>(take),
                                     std::byte{0});
        for (int d = 0; d < k; ++d) {
          const std::uint64_t len = data_bytes[static_cast<std::size_t>(d)];
          if (off >= len) continue;  // past this file's end: all zeros
          const std::uint64_t want = std::min(take, len - off);
          std::fill(buf.begin(),
                    buf.begin() + static_cast<std::ptrdiff_t>(take),
                    std::byte{0});
          if (data_files[static_cast<std::size_t>(d)] == nullptr) {
            SION_ASSIGN_OR_RETURN(
                data_files[static_cast<std::size_t>(d)],
                fs.open_read(core::physical_file_name(name, d, k)));
          }
          SION_ASSIGN_OR_RETURN(
              const std::uint64_t got,
              data_files[static_cast<std::size_t>(d)]->pread(
                  std::span<std::byte>(buf).first(
                      static_cast<std::size_t>(want)),
                  off));
          (void)got;  // short reads leave the pre-zeroed tail
          for (std::size_t t = 0; t < targets.size(); ++t) {
            tables[t][static_cast<std::size_t>(d)].mul_add(
                std::span<std::byte>(acc[t]),
                std::span<const std::byte>(buf).first(
                    static_cast<std::size_t>(take)));
          }
        }
        for (std::size_t t = 0; t < targets.size(); ++t) {
          // Zero-skip: where every data file has a hole (the multifile's
          // alignment gaps), the parity stays a hole too — this is what
          // keeps the byte overhead at m/k instead of m * file-size/k.
          const bool all_zero =
              std::all_of(acc[t].begin(), acc[t].end(),
                          [](std::byte b) { return b == std::byte{0}; });
          if (all_zero) continue;
          SION_ASSIGN_OR_RETURN(
              const std::uint64_t put,
              parity_files[t]->pwrite(fs::DataView(acc[t]), data_start + off));
          if (put != take) return IoError("short ECC parity write");
        }
      }
      return Status::Ok();
    }();
  }
  SION_RETURN_IF_ERROR(agree(comm, st));
  comm.barrier();

  // The end marker lands last: its presence proves a complete encode.
  st = Status::Ok();
  if (comm.rank() == 0) {
    st = [&]() -> Status {
      for (const int j : targets) {
        SION_ASSIGN_OR_RETURN(auto file, fs.open_rw(parity_name(name, j)));
        SION_ASSIGN_OR_RETURN(
            const std::uint64_t n,
            file->pwrite(fs::DataView(std::as_bytes(
                             std::span<const char>(kParityEnd, 8))),
                         data_start + payload_bytes));
        (void)n;
      }
      return Status::Ok();
    }();
  }
  return par::share_status(comm, st, 0, kEccFailed);
}

Result<EccProbe> Ecc::probe(fs::FileSystem& fs, const std::string& name,
                            const EccConfig& config) {
  const EccConfig cfg = derived(config, 1);
  const int k = cfg.data_domains;
  const int m = cfg.parity_domains;
  SION_RETURN_IF_ERROR(validate_geometry(k, m, cfg.stripe_bytes));
  EccProbe p;
  p.k = k;
  p.m = m;
  p.stripe_bytes = cfg.stripe_bytes;
  p.data_ok.resize(static_cast<std::size_t>(k));
  p.parity_ok.resize(static_cast<std::size_t>(m));
  p.data_bytes.assign(static_cast<std::size_t>(k), 0);
  bool have_geometry = false;
  for (int j = 0; j < m; ++j) {
    auto h = parity_usable(fs, parity_name(name, j), k, m, j);
    if (!h.ok()) continue;
    p.parity_ok[static_cast<std::size_t>(j)] = 1;
    if (!have_geometry) {
      p.data_start = h.value().data_start;
      p.payload_bytes = h.value().payload_bytes;
      p.stripe_bytes = h.value().stripe_bytes;
      p.data_bytes = h.value().data_bytes;
      have_geometry = true;
    }
  }
  for (int d = 0; d < k; ++d) {
    const std::string path = core::physical_file_name(name, d, k);
    if (!data_usable(fs, path, k)) continue;
    p.data_ok[static_cast<std::size_t>(d)] = 1;
    if (!have_geometry) {
      // No usable parity: lengths from the files themselves (enough for
      // the nothing-lost and re-encode cases).
      auto st = fs.stat_path(path);
      if (st.ok()) {
        p.data_bytes[static_cast<std::size_t>(d)] = st.value().size;
        p.payload_bytes = std::max(p.payload_bytes, st.value().size);
      }
    }
  }
  if (!have_geometry) p.data_start = parity_data_start(k);
  return p;
}

Result<EccHealReport> Ecc::heal(fs::FileSystem& fs, par::Comm& mcom,
                                const std::string& name,
                                const EccConfig& config,
                                std::uint64_t buffer_bytes) {
  const int me = mcom.rank();
  const int msize = mcom.size();

  // Rank 0 probes once; the broadcast result drives every task's decode
  // deterministically (no per-task re-probing).
  Status st;
  std::vector<std::byte> blob;
  if (me == 0) {
    auto probed = probe(fs, name, config);
    if (probed.ok()) {
      blob = probed.value().serialize();
    } else {
      st = probed.status();
    }
  }
  SION_RETURN_IF_ERROR(par::share_status(mcom, st, 0, kEccFailed));
  const std::uint64_t blob_size = mcom.bcast_u64(blob.size(), 0);
  blob.resize(blob_size);
  mcom.bcast_bytes(blob, 0);
  SION_ASSIGN_OR_RETURN(const EccProbe p, EccProbe::deserialize(blob));

  EccHealReport report;
  report.data_files = p.k;
  report.parity_files = p.m;
  report.damaged_data = p.lost_data();
  report.damaged_parity = p.lost_parity();

  std::vector<int> lost_data;
  for (int d = 0; d < p.k; ++d) {
    if (p.data_ok[static_cast<std::size_t>(d)] == 0) lost_data.push_back(d);
  }
  std::uint64_t my_bytes = 0;
  std::uint64_t my_healed = 0;
  st = Status::Ok();
  if (!lost_data.empty()) {
    std::vector<int> survivor_ids;
    std::vector<std::vector<std::uint8_t>> rows;
    SION_RETURN_IF_ERROR(agree(mcom, build_decode(p, lost_data, &survivor_ids,
                                                  &rows)));
    for (std::size_t i = 0; i < lost_data.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(msize)) != me) {
        continue;
      }
      auto healed = heal_data_file(fs, name, p, lost_data[i], survivor_ids,
                                   rows[i], buffer_bytes);
      if (healed.ok()) {
        my_bytes += healed.value();
        ++my_healed;
      } else if (st.ok()) {
        st = healed.status();
      }
    }
    SION_RETURN_IF_ERROR(agree(mcom, st));
    // Every healed data file must be durable before a parity re-encode
    // reads the set.
    mcom.barrier();
  }

  std::vector<int> lost_parity;
  for (int j = 0; j < p.m; ++j) {
    if (p.parity_ok[static_cast<std::size_t>(j)] == 0) lost_parity.push_back(j);
  }
  if (!lost_parity.empty()) {
    EccConfig cfg = derived(config, 1);
    cfg.stripe_bytes = p.stripe_bytes != 0 ? p.stripe_bytes : cfg.stripe_bytes;
    SION_RETURN_IF_ERROR(encode_parity(fs, mcom, name, cfg, lost_parity));
    if (me == 0) my_bytes += static_cast<std::uint64_t>(lost_parity.size()) *
                             p.payload_bytes;
  }

  report.healed_files = static_cast<int>(
      mcom.allreduce_u64(my_healed, par::ReduceOp::kSum) +
      static_cast<std::uint64_t>(lost_parity.size()));
  report.bytes_reconstructed = mcom.allreduce_u64(my_bytes, par::ReduceOp::kSum);
  return report;
}

Result<RemapStats> Ecc::restore(fs::FileSystem& fs, par::Comm& mcom,
                                const std::string& name,
                                const EccConfig& config,
                                std::span<std::byte> out, std::uint64_t want,
                                const RemapConfig& remap_config) {
  // One probe, broadcast, drives the branch on every task identically.
  Status st;
  std::vector<std::byte> blob;
  if (mcom.rank() == 0) {
    auto probed = probe(fs, name, config);
    if (probed.ok()) {
      blob = probed.value().serialize();
    } else {
      st = probed.status();
    }
  }
  SION_RETURN_IF_ERROR(par::share_status(mcom, st, 0, kEccFailed));
  const std::uint64_t blob_size = mcom.bcast_u64(blob.size(), 0);
  blob.resize(blob_size);
  mcom.bcast_bytes(blob, 0);
  SION_ASSIGN_OR_RETURN(const EccProbe p, EccProbe::deserialize(blob));

  const auto remap_restore = [&](fs::FileSystem& through)
      -> Result<RemapStats> {
    SION_ASSIGN_OR_RETURN(auto remap,
                          Remap::open(through, mcom, name, remap_config));
    SION_ASSIGN_OR_RETURN(const RemapStats stats, remap->restore(out, want));
    SION_RETURN_IF_ERROR(remap->close());
    return stats;
  };

  if (config.restore_mode == EccConfig::Restore::kHeal &&
      p.lost_data() + p.lost_parity() > 0) {
    // Repair everything on disk — parity included, so the next restart
    // finds a fully healthy protection set — then restart from it.
    SION_ASSIGN_OR_RETURN(const EccHealReport healed,
                          heal(fs, mcom, name, config,
                               remap_config.buffer_bytes));
    (void)healed;
    return remap_restore(fs);
  }
  if (p.lost_data() == 0) {
    // Nothing to decode: the restart reads the primary directly. Degraded
    // mode ignores lost parity (heal() repairs it separately).
    return remap_restore(fs);
  }
  EccReadFs degraded(fs, name, p);
  SION_RETURN_IF_ERROR(agree(mcom, degraded.init_status()));
  return remap_restore(degraded);
}

// ---------------------------------------------------------------------------
// EccReadFs
// ---------------------------------------------------------------------------

EccReadFs::EccReadFs(fs::FileSystem& base, std::string name, EccProbe probe)
    : base_(&base), name_(std::move(name)), probe_(std::move(probe)) {
  for (int d = 0; d < probe_.k; ++d) {
    if (probe_.data_ok[static_cast<std::size_t>(d)] != 0) continue;
    lost_ids_.push_back(d);
    lost_paths_.push_back(core::physical_file_name(name_, d, probe_.k));
  }
  init_status_ = build_decode(probe_, lost_ids_, &survivor_ids_,
                              &decode_rows_);
}

int EccReadFs::lost_index_of(const std::string& path) const {
  for (std::size_t i = 0; i < lost_paths_.size(); ++i) {
    if (lost_paths_[i] == path) return static_cast<int>(i);
  }
  return -1;
}

Result<std::unique_ptr<fs::File>> EccReadFs::create(const std::string& path) {
  return base_->create(path);
}

Result<std::unique_ptr<fs::File>> EccReadFs::open_read(
    const std::string& path) {
  const int i = lost_index_of(path);
  if (i < 0) return base_->open_read(path);
  SION_RETURN_IF_ERROR(init_status_);
  std::uint64_t blk = 512;
  if (auto b = base_->block_size(fs::parent(path)); b.ok()) blk = b.value();
  return EccStreamReader::open(
      *base_, name_, probe_, survivor_ids_,
      decode_rows_[static_cast<std::size_t>(i)],
      probe_.data_bytes[static_cast<std::size_t>(
          lost_ids_[static_cast<std::size_t>(i)])],
      blk);
}

Result<std::unique_ptr<fs::File>> EccReadFs::open_rw(const std::string& path) {
  return base_->open_rw(path);
}

Status EccReadFs::mkdir(const std::string& path) { return base_->mkdir(path); }

Status EccReadFs::remove(const std::string& path) {
  return base_->remove(path);
}

Result<std::vector<std::string>> EccReadFs::list_dir(const std::string& path) {
  return base_->list_dir(path);
}

Result<fs::FileStat> EccReadFs::stat_path(const std::string& path) {
  const int i = lost_index_of(path);
  if (i < 0) return base_->stat_path(path);
  fs::FileStat st;
  st.size = probe_.data_bytes[static_cast<std::size_t>(
      lost_ids_[static_cast<std::size_t>(i)])];
  st.allocated = st.size;
  st.block_size = 512;
  return st;
}

bool EccReadFs::exists(const std::string& path) {
  if (lost_index_of(path) >= 0) return true;
  return base_->exists(path);
}

Result<std::uint64_t> EccReadFs::block_size(const std::string& path) {
  return base_->block_size(path);
}

}  // namespace sion::ext
