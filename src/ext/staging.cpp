#include "ext/staging.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "core/metadata.h"
#include "fs/path.h"
#include "fs/sim/simfs.h"
#include "par/engine.h"

namespace sion::ext {

Result<std::unique_ptr<Staging>> Staging::open(
    fs::FileSystem& parallel_tier, par::Comm& comm, StagingConfig config,
    core::ParOpenSpec sion_spec, std::optional<CollectiveConfig> collective,
    std::optional<BuddyConfig> buddy, std::optional<EccConfig> ecc) {
  if (config.fast_tier == nullptr) {
    return InvalidArgument("staging: a fast_tier file system is required");
  }
  if (config.buffers < 1) {
    return InvalidArgument("staging: buffers must be >= 1");
  }
  if (config.copy_buffer_bytes == 0) {
    return InvalidArgument("staging: copy_buffer_bytes must be > 0");
  }
  if (sion_spec.nfiles < 1) sion_spec.nfiles = 1;
  if (sion_spec.chunk_frames) {
    return InvalidArgument("staging: chunk recovery frames are not supported");
  }

  // Derive the drain-model knobs left at 0 from the parallel tier's machine
  // description (SimConfig::burst_buffer).
  double global_bw = 0.0;
  if (const auto* sim = dynamic_cast<const fs::SimFs*>(&parallel_tier);
      sim != nullptr) {
    const fs::SimConfig::BurstBuffer& bb = sim->config().burst_buffer;
    if (config.tasks_per_node == 0) config.tasks_per_node = bb.tasks_per_node;
    if (config.drain_bandwidth == 0.0) {
      config.drain_bandwidth = bb.drain_bandwidth;
    }
    if (config.node_capacity == 0) config.node_capacity = bb.node_capacity;
    global_bw = sim->config().global_bandwidth;
  }
  if (config.tasks_per_node <= 0) {
    return InvalidArgument(
        "staging: tasks_per_node not set and not derivable from the parallel "
        "tier's burst_buffer model");
  }
  if (config.drain_bandwidth <= 0.0) {
    return InvalidArgument(
        "staging: drain_bandwidth not set and not derivable from the "
        "parallel tier's burst_buffer model");
  }

  if (buddy.has_value() && ecc.has_value()) {
    return InvalidArgument(
        "staging: buddy and ecc protection are mutually exclusive");
  }
  if (ecc.has_value()) {
    const int k = sion_spec.nfiles;
    if (ecc->data_domains != 0 && ecc->data_domains != k) {
      return InvalidArgument(strformat(
          "staging: ecc data_domains %d != staged nfiles %d",
          ecc->data_domains, k));
    }
    if (ecc->parity_domains < 1 || k + ecc->parity_domains > 255) {
      return InvalidArgument(strformat(
          "staging: impossible ecc geometry (k=%d, m=%d)", k,
          ecc->parity_domains));
    }
    if (comm.size() % k != 0) {
      return InvalidArgument(strformat(
          "staging: %d tasks not divisible into %d data domains",
          comm.size(), k));
    }
    ecc->data_domains = k;
  }
  if (buddy.has_value()) {
    const int domains = sion_spec.nfiles;
    if (buddy->num_domains != 0 && buddy->num_domains != domains) {
      return InvalidArgument(strformat(
          "staging: buddy num_domains %d != staged nfiles %d",
          buddy->num_domains, domains));
    }
    if (buddy->replicas < 1 || buddy->replicas > domains) {
      return InvalidArgument(strformat(
          "staging: %d replicas need at least as many domains (have %d)",
          buddy->replicas, domains));
    }
    if (comm.size() % domains != 0) {
      return InvalidArgument(strformat(
          "staging: %d tasks not divisible into %d failure domains",
          comm.size(), domains));
    }
  }

  auto s = std::unique_ptr<Staging>(new Staging());
  s->pfs_ = &parallel_tier;
  s->fast_ = config.fast_tier;
  s->comm_ = &comm;
  s->config_ = std::move(config);
  s->sion_spec_ = std::move(sion_spec);
  s->collective_ = collective;
  s->buddy_ = buddy;
  s->ecc_ = ecc;
  s->replicas_ = buddy.has_value() ? std::max(1, buddy->replicas) : 1;
  s->drain_copies_ = static_cast<double>(s->replicas_);
  if (ecc.has_value()) {
    s->drain_copies_ = 1.0 + static_cast<double>(ecc->parity_domains) /
                                 static_cast<double>(s->sion_spec_.nfiles);
  }
  s->nnodes_ =
      (comm.size() + s->config_.tasks_per_node - 1) / s->config_.tasks_per_node;
  s->global_drain_bandwidth_ = global_bw;
  s->node_drain_.resize(static_cast<std::size_t>(s->nnodes_));
  s->node_bytes_scratch_.resize(static_cast<std::size_t>(s->nnodes_));

  // Ensure the staging directory exists on the fast tier (rank 0 creates it;
  // everyone shares the outcome).
  Status st = Status::Ok();
  if (comm.rank() == 0 && !s->config_.fast_dir.empty() &&
      !s->fast_->exists(s->config_.fast_dir)) {
    st = s->fast_->mkdir(s->config_.fast_dir);
  }
  SION_RETURN_IF_ERROR(par::share_status(comm, st, 0, "staging open"));
  return s;
}

std::string Staging::slot_base(std::uint64_t index) const {
  const std::string name =
      fs::basename(sion_spec_.filename) + ".slot" +
      std::to_string(index % static_cast<std::uint64_t>(config_.buffers));
  if (config_.fast_dir.empty()) return name;
  return config_.fast_dir + "/" + name;
}

Result<double> Staging::write(std::uint64_t index, fs::DataView payload,
                              const std::string& final_name) {
  if (index != history_.size()) {
    return FailedPrecondition(strformat(
        "staging: checkpoint %llu written out of order (expected %llu)",
        static_cast<unsigned long long>(index),
        static_cast<unsigned long long>(history_.size())));
  }

  // Double-buffer reuse: the slot's previous occupant must be fully drained
  // and materialised before its staged files are overwritten. A failure
  // here (the previous checkpoint was lost on the fast tier) fails this
  // write — the application must recover before checkpointing again.
  if (index >= static_cast<std::uint64_t>(config_.buffers)) {
    SION_RETURN_IF_ERROR(
        wait(index - static_cast<std::uint64_t>(config_.buffers)));
  }

  // Footprint of this checkpoint per burst-buffer node. Identical on every
  // rank (allgathered), so the capacity verdict needs no extra collective.
  const std::vector<std::uint64_t> sizes = comm_->allgather_u64(payload.size());
  std::vector<std::uint64_t>& node_bytes = node_bytes_scratch_;
  std::fill(node_bytes.begin(), node_bytes.end(), 0);
  for (int r = 0; r < comm_->size(); ++r) {
    node_bytes[static_cast<std::size_t>(r / config_.tasks_per_node)] +=
        sizes[static_cast<std::size_t>(r)];
  }
  if (config_.node_capacity != 0) {
    // Staged files stay on the device until their slot is overwritten, so
    // the occupancy to check is the last `buffers` checkpoints, this one
    // included (index - buffers is being replaced right now).
    const std::uint64_t lo =
        index + 1 >= static_cast<std::uint64_t>(config_.buffers)
            ? index + 1 - static_cast<std::uint64_t>(config_.buffers)
            : 0;
    for (int n = 0; n < nnodes_; ++n) {
      std::uint64_t occupied = node_bytes[static_cast<std::size_t>(n)];
      for (std::uint64_t k = lo; k < index; ++k) {
        occupied += booked_node_bytes_[k][static_cast<std::size_t>(n)];
      }
      if (occupied > config_.node_capacity) {
        return QuotaExceeded(strformat(
            "staging: node %d needs %llu bytes of burst buffer "
            "(capacity %llu)",
            n, static_cast<unsigned long long>(occupied),
            static_cast<unsigned long long>(config_.node_capacity)));
      }
    }
  }

  SION_RETURN_IF_ERROR(write_staged(index, payload));

  // The staged close does not leave the ranks at a common time; the barrier
  // does, and that common instant is when the drain agents may start.
  comm_->barrier();
  const par::TaskState* task = par::this_task();
  const double start = task != nullptr ? task->now() : 0.0;

  // Book the drain. Each node ships its staged bytes `replicas_` times over
  // its drain link; the parallel tier's global ingest cap is a second,
  // shared constraint. Both are serial timelines, and the checkpoint is
  // durable when the slowest one finishes (bottleneck model, not a staged
  // pipeline — adequate for drains that are long against their latency).
  double finish = start;
  std::uint64_t total = 0;
  for (int n = 0; n < nnodes_; ++n) {
    const std::uint64_t bytes = node_bytes[static_cast<std::size_t>(n)];
    total += bytes;
    if (bytes == 0) continue;
    const double duration =
        static_cast<double>(bytes) * drain_copies_ / config_.drain_bandwidth;
    finish = std::max(
        finish, node_drain_[static_cast<std::size_t>(n)].schedule(start,
                                                                  duration));
  }
  if (global_drain_bandwidth_ > 0.0 && total != 0) {
    const double duration =
        static_cast<double>(total) * drain_copies_ / global_drain_bandwidth_;
    finish = std::max(finish, global_drain_.schedule(start, duration));
  }

  DrainInfo info;
  info.index = index;
  info.final_name = final_name;
  info.drain_start = start;
  info.drain_finish = finish;
  history_.push_back(std::move(info));
  booked_node_bytes_.push_back(node_bytes);
  return finish;
}

Status Staging::write_staged(std::uint64_t index, fs::DataView payload) {
  core::ParOpenSpec spec = sion_spec_;
  spec.filename = slot_base(index);
  spec.chunksize = std::max<std::uint64_t>(1, payload.size());
  if (collective_.has_value()) {
    SION_ASSIGN_OR_RETURN(
        auto sion, Collective::open_write(*fast_, *comm_, spec, *collective_));
    SION_RETURN_IF_ERROR(sion->write(payload));
    return sion->close();
  }
  SION_ASSIGN_OR_RETURN(auto sion,
                        core::SionParFile::open_write(*fast_, *comm_, spec));
  SION_ASSIGN_OR_RETURN(const std::uint64_t n, sion->write(payload));
  (void)n;
  return sion->close();
}

Status Staging::wait(std::uint64_t index) {
  if (index >= history_.size()) {
    return InvalidArgument(strformat(
        "staging: wait for checkpoint %llu, but only %llu were written",
        static_cast<unsigned long long>(index),
        static_cast<unsigned long long>(history_.size())));
  }
  while (first_unmaterialized_ <= index) {
    DrainInfo& info = history_[first_unmaterialized_];
    if (par::TaskState* task = par::this_task(); task != nullptr) {
      task->advance_to(info.drain_finish);
    }
    const Status st = materialize(first_unmaterialized_);
    info.state = st.ok() ? SlotState::kDrained : SlotState::kFailed;
    ++first_unmaterialized_;
  }
  if (history_[index].state == SlotState::kFailed) {
    return IoError(strformat(
        "staged checkpoint %llu was lost before it drained ('%s')",
        static_cast<unsigned long long>(index),
        history_[index].final_name.c_str()));
  }
  return Status::Ok();
}

Status Staging::drain_all() {
  Status first = Status::Ok();
  while (first_unmaterialized_ < history_.size()) {
    const Status st = wait(first_unmaterialized_);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

std::optional<std::uint64_t> Staging::last_drained() const {
  std::optional<std::uint64_t> best;
  for (const DrainInfo& info : history_) {
    if (info.state == SlotState::kDrained) best = info.index;
  }
  return best;
}

Status Staging::materialize(std::uint64_t index) {
  const std::string staged = slot_base(index);
  const std::string& final_base = history_[index].final_name;
  const int nf = sion_spec_.nfiles;

  struct Job {
    std::string src;
    std::string dst;
    int patch_filenum;  // -1: copy verbatim
  };
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(nf) *
               static_cast<std::size_t>(replicas_));
  for (int f = 0; f < nf; ++f) {
    jobs.push_back({core::physical_file_name(staged, f, nf),
                    core::physical_file_name(final_base, f, nf), -1});
  }
  // Replica sets are fabricated during the drain: set s's physical file j
  // carries the streams of domain (j - s) mod D, i.e. it is the staged
  // primary file of that domain with the header's filenum patched to j —
  // exactly the structural copy Buddy's heal path performs in reverse.
  for (int s = 1; s < replicas_; ++s) {
    const std::string replica = Buddy::replica_name(final_base, s);
    for (int j = 0; j < nf; ++j) {
      const int d = ((j - s) % nf + nf) % nf;
      jobs.push_back({core::physical_file_name(staged, d, nf),
                      core::physical_file_name(replica, j, nf), j});
    }
  }

  // The analytic drain model already owns the time (the caller advanced to
  // drain_finish); the byte movement itself must charge nothing.
  fs::SimFs::ScopedFreeIo free_fast(*fast_);
  fs::SimFs::ScopedFreeIo free_pfs(*pfs_);

  Status mine = Status::Ok();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(comm_->size())) !=
        comm_->rank()) {
      continue;
    }
    const Status st = copy_file(jobs[i].src, jobs[i].dst,
                                jobs[i].patch_filenum);
    if (!st.ok() && mine.ok()) mine = st;
  }
  const Status agreed = par::agree_status(*comm_, mine, "staging drain");
  if (!agreed.ok() || !ecc_.has_value()) return agreed;
  // Parity is fabricated on the parallel tier from the files just drained —
  // still under free-io; the analytic drain charged (1 + m/k)x upfront.
  return Ecc::encode_parity(*pfs_, *comm_, final_base, *ecc_);
}

Status Staging::copy_file(const std::string& src_name,
                          const std::string& dst_name, int patch_filenum) {
  // A fast-tier kLost fault removed the file: the open fails here.
  SION_ASSIGN_OR_RETURN(auto src, fast_->open_read(src_name));

  // Promote only complete, intact staged files: metablock 1 must carry the
  // close-time trailer and metablock 2 — at the very end of the file — must
  // parse, so a truncated staged file is refused instead of shipped.
  SION_ASSIGN_OR_RETURN(core::FileHeader header, core::read_header(*src));
  if (header.nblocks == 0 || header.meta2_offset == 0) {
    return Corrupt(strformat("staged file '%s' was never closed",
                             src_name.c_str()));
  }
  SION_ASSIGN_OR_RETURN(const core::FileMeta2 meta2,
                        core::read_meta2(*src, header));
  (void)meta2;
  SION_ASSIGN_OR_RETURN(const fs::FileStat st, src->stat());

  SION_ASSIGN_OR_RETURN(auto dst, pfs_->create(dst_name));
  std::vector<std::byte> buffer(config_.copy_buffer_bytes);
  std::uint64_t off = 0;
  while (off < st.size) {
    const std::uint64_t want =
        std::min<std::uint64_t>(buffer.size(), st.size - off);
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t got,
        src->pread(std::span<std::byte>(buffer.data(),
                                        static_cast<std::size_t>(want)),
                   off));
    if (got != want) {
      return Corrupt(strformat("staged file '%s' short read at %llu",
                               src_name.c_str(),
                               static_cast<unsigned long long>(off)));
    }
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t put,
        dst->pwrite(fs::DataView(std::span<const std::byte>(
                        buffer.data(), static_cast<std::size_t>(got))),
                    off));
    if (put != got) {
      return IoError(strformat("short write draining '%s'",
                               dst_name.c_str()));
    }
    off += got;
  }
  if (patch_filenum >= 0) {
    header.filenum = static_cast<std::uint32_t>(patch_filenum);
    const std::vector<std::byte> hdr = header.serialize();
    SION_ASSIGN_OR_RETURN(
        const std::uint64_t put,
        dst->pwrite(fs::DataView(std::span<const std::byte>(hdr)), 0));
    if (put != hdr.size()) {
      return IoError(strformat("short header patch on '%s'",
                               dst_name.c_str()));
    }
  }
  return Status::Ok();
}

}  // namespace sion::ext
