// The single-file-sequential baseline: one designated I/O task accesses a
// single file on behalf of all others, gathering (or scattering) the data in
// staging-buffer-sized waves (paper section 1). This is the scheme MP2C
// originally used for checkpoint/restart files and the comparison baseline
// of Fig. 6; its bandwidth is limited to what a single task can push, and
// bounded staging memory forces many alternating gather/write rounds.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "fs/filesystem.h"
#include "par/comm.h"

namespace sion::baseline {

struct SingleFileSeqOptions {
  // Staging buffer available on the I/O task; data is moved in pieces of at
  // most this size ("multiple gather or scatter operations may be required
  // while writing or reading the file incrementally").
  std::uint64_t staging_bytes = 8 * kMiB;
  int io_rank = 0;
};

// Collective write: task data is concatenated in rank order into `path`.
// Every task passes its own payload.
Status write_single_file_seq(fs::FileSystem& fs, par::Comm& comm,
                             const std::string& path, fs::DataView my_data,
                             const SingleFileSeqOptions& options = {});

// Collective read of the same layout: every task passes the byte count it
// expects (must match what it wrote) and receives its slice into `out`;
// pass an empty span to run in timing-only mode (data is moved but
// discarded).
Status read_single_file_seq(fs::FileSystem& fs, par::Comm& comm,
                            const std::string& path, std::uint64_t my_bytes,
                            std::span<std::byte> out,
                            const SingleFileSeqOptions& options = {});

}  // namespace sion::baseline
