#include "baseline/task_local.h"

#include "common/strings.h"
#include "fs/path.h"

namespace sion::baseline {

std::string task_file_path(const std::string& dir, const std::string& prefix,
                           int rank) {
  return fs::join(dir, strformat("%s.%06d", prefix.c_str(), rank));
}

Result<TaskLocalFile> TaskLocalFile::create(fs::FileSystem& fs,
                                            const std::string& dir,
                                            const std::string& prefix,
                                            int rank) {
  std::string path = task_file_path(dir, prefix, rank);
  SION_ASSIGN_OR_RETURN(auto file, fs.create(path));
  return TaskLocalFile(std::move(file), std::move(path));
}

Result<TaskLocalFile> TaskLocalFile::open_existing(fs::FileSystem& fs,
                                                   const std::string& dir,
                                                   const std::string& prefix,
                                                   int rank, bool writable) {
  std::string path = task_file_path(dir, prefix, rank);
  if (writable) {
    SION_ASSIGN_OR_RETURN(auto file, fs.open_rw(path));
    return TaskLocalFile(std::move(file), std::move(path));
  }
  SION_ASSIGN_OR_RETURN(auto file, fs.open_read(path));
  return TaskLocalFile(std::move(file), std::move(path));
}

Result<std::uint64_t> TaskLocalFile::write(fs::DataView data) {
  SION_ASSIGN_OR_RETURN(const std::uint64_t n, file_->pwrite(data, pos_));
  pos_ += n;
  return n;
}

Result<std::uint64_t> TaskLocalFile::read(std::span<std::byte> out) {
  SION_ASSIGN_OR_RETURN(const std::uint64_t n, file_->pread(out, pos_));
  pos_ += n;
  return n;
}

Status TaskLocalFile::read_skip(std::uint64_t nbytes) {
  SION_RETURN_IF_ERROR(file_->pread_discard(nbytes, pos_));
  pos_ += nbytes;
  return Status::Ok();
}

}  // namespace sion::baseline
