#include "baseline/single_file_seq.h"

#include <algorithm>
#include <vector>

#include "common/log.h"

namespace sion::baseline {

namespace {
constexpr int kDataTag = 0x5EC;
constexpr int kTokenTag = 0x70C;

// Collective error propagation: the I/O task's status must reach everyone or
// a failure there would strand the other tasks. Protocol messages always
// complete (with dummy payloads on error); the status is agreed at the end.
Status share_outcome(par::Comm& comm, const Status& mine) {
  const std::uint64_t failed =
      comm.allreduce_u64(mine.ok() ? 0 : 1, par::ReduceOp::kMax);
  if (failed == 0) return Status::Ok();
  if (!mine.ok()) return mine;
  return Internal("single-file-sequential I/O failed on the I/O task");
}
}  // namespace

Status write_single_file_seq(fs::FileSystem& fs, par::Comm& comm,
                             const std::string& path, fs::DataView my_data,
                             const SingleFileSeqOptions& options) {
  const int rank = comm.rank();
  const int io_rank = options.io_rank;
  const std::uint64_t staging = std::max<std::uint64_t>(1, options.staging_bytes);

  // Everyone announces its size so the I/O task knows the file offsets.
  const auto sizes = comm.gather_u64(my_data.size(), io_rank);

  Status st;
  if (rank == io_rank) {
    std::unique_ptr<fs::File> file;
    auto created = fs.create(path);
    if (created.ok()) {
      file = std::move(created).value();
    } else {
      st = created.status();
    }
    std::uint64_t offset = 0;
    for (int src = 0; src < comm.size(); ++src) {
      const std::uint64_t total = sizes[static_cast<std::size_t>(src)];
      std::uint64_t done = 0;
      while (done < total) {
        const std::uint64_t piece = std::min(staging, total - done);
        if (src == io_rank) {
          // Own data goes straight from the application buffer.
          if (st.ok()) {
            auto wrote = file->pwrite(my_data.subview(done, piece), offset);
            if (!wrote.ok()) st = wrote.status();
          }
        } else {
          // Gather one staging buffer's worth, then write it out — the
          // alternating gather/write pattern the paper describes. The token
          // handshake is the flow control a real implementation needs: the
          // I/O task has only one staging buffer, so senders must not run
          // ahead.
          comm.send_bytes({}, src, kTokenTag);
          const std::vector<std::byte> buf = comm.recv_bytes(src, kDataTag);
          if (st.ok() && buf.size() != piece) {
            st = Internal("staging piece size mismatch");
          }
          if (st.ok()) {
            auto wrote = file->pwrite(fs::DataView(buf), offset);
            if (!wrote.ok()) st = wrote.status();
          }
        }
        done += piece;
        offset += piece;
      }
    }
  } else {
    // Send the payload in staging-sized pieces; fill payloads are
    // materialised through one reusable buffer.
    std::vector<std::byte> staging_buf;
    std::uint64_t done = 0;
    while (done < my_data.size()) {
      const std::uint64_t piece = std::min(staging, my_data.size() - done);
      const fs::DataView view = my_data.subview(done, piece);
      (void)comm.recv_bytes(io_rank, kTokenTag);  // wait for the I/O task
      if (view.is_fill()) {
        staging_buf.assign(piece, view.fill_byte());
        comm.send_bytes(staging_buf, io_rank, kDataTag);
      } else {
        comm.send_bytes(view.bytes(), io_rank, kDataTag);
      }
      done += piece;
    }
  }
  return share_outcome(comm, st);
}

Status read_single_file_seq(fs::FileSystem& fs, par::Comm& comm,
                            const std::string& path, std::uint64_t my_bytes,
                            std::span<std::byte> out,
                            const SingleFileSeqOptions& options) {
  const int rank = comm.rank();
  const int io_rank = options.io_rank;
  const std::uint64_t staging = std::max<std::uint64_t>(1, options.staging_bytes);
  const bool discard = out.empty();
  if (!discard && out.size() < my_bytes) {
    return InvalidArgument("output buffer smaller than expected bytes");
  }

  const auto sizes = comm.gather_u64(my_bytes, io_rank);

  Status st;
  if (rank == io_rank) {
    std::unique_ptr<fs::File> file;
    auto opened = fs.open_read(path);
    if (opened.ok()) {
      file = std::move(opened).value();
    } else {
      st = opened.status();
    }
    std::vector<std::byte> buf;
    std::uint64_t offset = 0;
    for (int dst = 0; dst < comm.size(); ++dst) {
      const std::uint64_t total = sizes[static_cast<std::size_t>(dst)];
      std::uint64_t done = 0;
      while (done < total) {
        const std::uint64_t piece = std::min(staging, total - done);
        buf.assign(piece, std::byte{0});  // dummy payload if already failed
        if (st.ok()) {
          auto got = file->pread(buf, offset);
          if (!got.ok()) {
            st = got.status();
          } else if (got.value() != piece) {
            st = Corrupt("short read in restart file");
          }
        }
        if (dst == io_rank) {
          if (!discard && st.ok()) {
            std::copy(buf.begin(), buf.end(),
                      out.begin() + static_cast<std::ptrdiff_t>(done));
          }
        } else {
          comm.send_bytes(buf, dst, kDataTag);
        }
        done += piece;
        offset += piece;
      }
    }
  } else {
    std::uint64_t done = 0;
    while (done < my_bytes) {
      const std::uint64_t piece = std::min(staging, my_bytes - done);
      const std::vector<std::byte> buf = comm.recv_bytes(io_rank, kDataTag);
      if (st.ok() && buf.size() != piece) {
        st = Internal("staging piece size mismatch");
      }
      if (!discard && st.ok()) {
        std::copy(buf.begin(), buf.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(done));
      }
      done += piece;
    }
  }
  return share_outcome(comm, st);
}

}  // namespace sion::baseline
