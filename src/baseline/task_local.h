// The multiple-file-parallel baseline: every task reads/writes its own
// physical file in a shared directory (paper section 1). This is the scheme
// whose file-creation cost Fig. 3 measures and whose bandwidth Fig. 5
// compares against SIONlib.
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "fs/filesystem.h"
#include "par/comm.h"

namespace sion::baseline {

// Name of task `rank`'s file: "<dir>/<prefix>.<%06d>".
std::string task_file_path(const std::string& dir, const std::string& prefix,
                           int rank);

// A per-task file with a sequential cursor, mirroring how applications use
// fopen/fwrite on task-local files.
class TaskLocalFile {
 public:
  // Each task creates (or opens) its own file; not collective — the whole
  // point of the baseline is that N tasks hit the directory at once.
  static Result<TaskLocalFile> create(fs::FileSystem& fs,
                                      const std::string& dir,
                                      const std::string& prefix, int rank);
  static Result<TaskLocalFile> open_existing(fs::FileSystem& fs,
                                             const std::string& dir,
                                             const std::string& prefix,
                                             int rank, bool writable);

  Result<std::uint64_t> write(fs::DataView data);
  Result<std::uint64_t> read(std::span<std::byte> out);
  Status read_skip(std::uint64_t nbytes);  // timing-only read
  [[nodiscard]] std::uint64_t position() const { return pos_; }
  void rewind() { pos_ = 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  TaskLocalFile(std::unique_ptr<fs::File> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}
  std::unique_ptr<fs::File> file_;
  std::string path_;
  std::uint64_t pos_ = 0;
};

}  // namespace sion::baseline
