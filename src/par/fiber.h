// Minimal stackful-fiber context switch for the task engine.
//
// glibc's swapcontext() performs two rt_sigprocmask system calls per switch
// (POSIX requires the signal mask to travel with the context). The engine
// switches contexts twice per collective per task — hundreds of millions of
// times in a 64Ki-task sweep — so those syscalls dominate host wall-clock
// long before the cost model does. Fibers here never touch the signal mask
// and never run concurrently (one OS thread, cooperative scheduling), so a
// userspace-only switch is sufficient: save the callee-saved registers and
// the FP control words, swap stacks, restore.
//
// The fast path is x86-64 assembly (fiber_swap.S). Builds on other
// architectures, and sanitizer builds (ASan tracks stack switches through
// its swapcontext interceptor, which a raw assembly switch would bypass),
// fall back to ucontext via SION_FIBER_UCONTEXT.
#pragma once

#include <cstddef>

#if !defined(SION_FIBER_UCONTEXT)
#if !defined(__x86_64__)
#define SION_FIBER_UCONTEXT 1
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SION_FIBER_UCONTEXT 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SION_FIBER_UCONTEXT 1
#endif
#endif
#endif

#if !defined(SION_FIBER_UCONTEXT)
#define SION_FAST_FIBERS 1

extern "C" {
// Save the current execution context (callee-saved registers, x87/SSE
// control words, stack pointer) to *save_sp and resume the one frozen at
// restore_sp. Returns when something swaps back into *save_sp.
void sion_fiber_swap(void** save_sp, void* restore_sp);
}

namespace sion::par {

// Lay out a fresh suspended context on [stack_base, stack_base+stack_bytes)
// so the first sion_fiber_swap into the returned stack pointer enters
// entry(arg) on that stack. `entry` must never return; it must hand control
// back with a final sion_fiber_swap.
void* fiber_make(std::byte* stack_base, std::size_t stack_bytes,
                 void (*entry)(void*), void* arg);

}  // namespace sion::par

#endif  // !SION_FIBER_UCONTEXT
