// Minimal stackful-fiber context switch for the task engine.
//
// glibc's swapcontext() performs two rt_sigprocmask system calls per switch
// (POSIX requires the signal mask to travel with the context). The engine
// switches contexts twice per collective per task — hundreds of millions of
// times in a 64Ki-task sweep — so those syscalls dominate host wall-clock
// long before the cost model does. Fibers here never touch the signal mask
// and never run concurrently (one OS thread, cooperative scheduling), so a
// userspace-only switch is sufficient: save the callee-saved registers and
// the FP control words, swap stacks, restore.
//
// The fast path is x86-64 assembly (fiber_swap.S). Builds on other
// architectures, and sanitizer builds (ASan tracks stack switches through
// its swapcontext interceptor, which a raw assembly switch would bypass),
// fall back to ucontext via SION_FIBER_UCONTEXT.
#pragma once

#include <cstddef>

#if !defined(SION_FIBER_UCONTEXT)
#if !defined(__x86_64__)
#define SION_FIBER_UCONTEXT 1
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SION_FIBER_UCONTEXT 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SION_FIBER_UCONTEXT 1
#endif
#endif
#endif

// ThreadSanitizer models each stack as a thread: an unannounced stack switch
// corrupts its shadow stack and every cross-fiber access afterwards reports
// as a race between "threads" that are really cooperative fibers on one OS
// thread. TSan builds therefore (a) take the ucontext fallback above and
// (b) announce every fiber and every switch through the __tsan_*_fiber API,
// via the wrappers below (no-ops in every other build, so the engine calls
// them unconditionally on the ucontext path).
#if !defined(SION_TSAN_FIBERS)
#if defined(__SANITIZE_THREAD__)
#define SION_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SION_TSAN_FIBERS 1
#endif
#endif
#endif

namespace sion::par {

#if defined(SION_TSAN_FIBERS)
// Register a new fiber with TSan (before its first switch-in).
void* tsan_fiber_create();
// Unregister a fiber. It must not be the currently running one.
void tsan_fiber_destroy(void* fiber);
// TSan handle of the context calling this (e.g. the scheduler's own stack).
void* tsan_fiber_current();
// Announce an imminent switch; call immediately before swapcontext().
void tsan_fiber_switch(void* target);
#else
inline void* tsan_fiber_create() { return nullptr; }
inline void tsan_fiber_destroy(void* /*fiber*/) {}
inline void* tsan_fiber_current() { return nullptr; }
inline void tsan_fiber_switch(void* /*target*/) {}
#endif

}  // namespace sion::par

#if !defined(SION_FIBER_UCONTEXT)
#define SION_FAST_FIBERS 1

extern "C" {
// Save the current execution context (callee-saved registers, x87/SSE
// control words, stack pointer) to *save_sp and resume the one frozen at
// restore_sp. Returns when something swaps back into *save_sp.
void sion_fiber_swap(void** save_sp, void* restore_sp);
}

namespace sion::par {

// Lay out a fresh suspended context on [stack_base, stack_base+stack_bytes)
// so the first sion_fiber_swap into the returned stack pointer enters
// entry(arg) on that stack. `entry` must never return; it must hand control
// back with a final sion_fiber_swap.
void* fiber_make(std::byte* stack_base, std::size_t stack_bytes,
                 void (*entry)(void*), void* arg);

}  // namespace sion::par

#endif  // !SION_FIBER_UCONTEXT
