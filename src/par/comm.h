// MPI-flavoured communicator for the fiber runtime.
//
// SIONlib is written against MPI communicators: a *global* communicator of
// all tasks writing one multifile and a *local* communicator per physical
// file (paper section 3.2). `Comm` provides exactly the collective surface
// SIONlib and the baselines need — barrier, bcast, gather(v), scatter(v),
// allgather, allreduce, split, and blocking point-to-point — with virtual-
// time costs from the alpha/beta tree model in `NetworkModel`.
//
// Semantics mirror MPI: collectives must be called by every member of the
// communicator, in the same order. Data moves through shared memory (all
// fibers live in one address space); blocked callers keep their buffers
// alive, so the implementation can exchange spans without copies until the
// final placement.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "par/engine.h"

namespace sion::par {

enum class ReduceOp : std::uint8_t { kSum, kMax, kMin };

class Comm {
 public:
  // Engine-internal factory; user code obtains the world comm from
  // Engine::run and sub-comms from split().
  static std::unique_ptr<Comm> create(Engine& engine,
                                      std::vector<TaskState*> members,
                                      NetworkModel net);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  // Rank of the calling task within this communicator.
  [[nodiscard]] int rank() const;
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] Engine& engine() const { return *engine_; }
  [[nodiscard]] const NetworkModel& network() const { return net_; }

  void barrier();

  // Root's buffer contents are visible in every task's `buf` on return.
  void bcast_bytes(std::span<std::byte> buf, int root);
  std::uint64_t bcast_u64(std::uint64_t value, int root);

  // Returns the full vector on root, empty elsewhere.
  std::vector<std::uint64_t> gather_u64(std::uint64_t value, int root);

  // Variable-length u64 arrays; root receives one vector per comm rank.
  std::vector<std::vector<std::uint64_t>> gatherv_u64(
      std::span<const std::uint64_t> values, int root);

  // Root supplies size() values; every task receives its own.
  std::uint64_t scatter_u64(std::span<const std::uint64_t> values, int root);

  std::vector<std::uint64_t> allgather_u64(std::uint64_t value);
  std::uint64_t allreduce_u64(std::uint64_t value, ReduceOp op);

  struct GatheredBytes {
    std::vector<std::byte> data;              // concatenated in rank order
    std::vector<std::uint64_t> sizes;         // contribution per rank
  };
  // Root receives all contributions, others an empty result.
  GatheredBytes gatherv_bytes(std::span<const std::byte> contribution,
                              int root);

  // Root supplies one byte vector per rank; each task receives its piece.
  std::vector<std::byte> scatterv_bytes(
      const std::vector<std::vector<std::byte>>& pieces, int root);

  // MPI_Comm_split. Tasks passing the same color land in the same child
  // communicator, ordered by (key, parent rank). color < 0 means "not in any
  // child" (MPI_UNDEFINED) and yields nullptr. Child comms are owned by the
  // engine and stay valid for the rest of the run.
  Comm* split(int color, int key);

  // Split into consecutive-rank groups of `group_size` tasks (the last group
  // may be smaller). The aggregation helper used by ext::Collective: rank 0
  // of every child is the group's collector. group_size <= 0 or >= size()
  // yields one group spanning the whole communicator.
  Comm* split_groups(int group_size);

  // Point-to-point with MPI-like eager semantics: send buffers the message
  // and returns after charging link time; recv blocks until a matching
  // message (same src and tag, FIFO within the pair) is available.
  void send_bytes(std::span<const std::byte> data, int dst, int tag);
  std::vector<std::byte> recv_bytes(int src, int tag);

 private:
  Comm(Engine& engine, std::vector<TaskState*> members, NetworkModel net);

  // Generic collective rendezvous: every member registers its `slot`; the
  // last arrival runs `finalize(slots, tmax)` (which performs the data
  // movement and returns the release time) and wakes everyone.
  using FinalizeFn =
      std::function<double(std::vector<void*>& slots, double tmax)>;
  void rendezvous(void* slot, const FinalizeFn& finalize);

  [[nodiscard]] TaskState& calling_task() const;

  struct Pending {
    int arrived = 0;
    double tmax = 0.0;
    std::vector<void*> slots;
  };

  struct Message {
    double t_avail = 0.0;  // earliest virtual time the receiver can have it
    std::vector<std::byte> data;
  };
  struct WaitingReceiver {
    TaskState* task = nullptr;
    double t_blocked = 0.0;
    std::vector<std::byte>* sink = nullptr;
  };

  Engine* engine_;
  std::vector<TaskState*> members_;
  std::unordered_map<int, int> rank_of_global_;  // global rank -> comm rank
  NetworkModel net_;

  std::vector<std::uint64_t> next_op_;        // per comm rank op counter
  std::map<std::uint64_t, Pending> pending_;  // op index -> site

  // Keyed by (src, dst, tag).
  std::map<std::tuple<int, int, int>, std::deque<Message>> mailbox_;
  std::map<std::tuple<int, int, int>, WaitingReceiver> waiting_recv_;
};

// ---------------------------------------------------------------------------
// Collective status agreement. The protocol is subtle and deadlock-sensitive
// (every member must reach the same agreement points in the same order), so
// SIONlib's collective layers share these helpers instead of re-rolling them.
// ---------------------------------------------------------------------------

// Share the root's status with every task of `comm`: a failure on the rank
// doing the I/O becomes an error everywhere instead of a hang or a half-open
// file. Non-root tasks receive the root's error code with `what` as message.
Status share_status(Comm& comm, const Status& mine, int root,
                    const char* what);

// Agree on the outcome across `comm` (allreduce-max of failure): any task's
// error fails every task. Tasks that were locally fine report
// Internal(`what`).
Status agree_status(Comm& comm, const Status& mine, const char* what);

// Share the file-local master's status within the file (`lcom`), then agree
// across the whole multifile (`gcom`): a metadata failure on one physical
// file must become an error on every task, not a deadlock of the intact
// files' tasks at the next global collective.
Status share_status_global(Comm& lcom, Comm& gcom, const Status& mine,
                           int root, const char* what);

}  // namespace sion::par
