// MPI-flavoured communicator for the fiber runtime.
//
// SIONlib is written against MPI communicators: a *global* communicator of
// all tasks writing one multifile and a *local* communicator per physical
// file (paper section 3.2). `Comm` provides exactly the collective surface
// SIONlib and the baselines need — barrier, bcast, gather(v), scatter(v),
// allgather, allreduce, split, and blocking point-to-point — with virtual-
// time costs from the alpha/beta tree model in `NetworkModel`.
//
// Semantics mirror MPI: collectives must be called by every member of the
// communicator, in the same order. Data moves through shared memory (all
// fibers live in one address space); blocked callers keep their buffers
// alive, so the implementation exchanges spans without copies until the
// final placement — the view-based point-to-point calls (`send_view`/
// `recv_view`) extend that contract to the aggregation ship protocol.
//
// Host-performance notes (the collective surface is the hottest code in a
// 64Ki-task sweep):
//   * collectives rendezvous on ONE reusable per-comm site — a comm never
//     has two collectives in flight, so there is no per-operation map or
//     slot-vector allocation;
//   * the gather/scatter results are flat single buffers plus offsets
//     (`FlatGatherU64`, `scatterv_bytes_flat`), never vector-of-vectors;
//   * rank() resolves through the identity/sorted fast paths, not a hash
//     table.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "par/engine.h"

namespace sion::par {

enum class ReduceOp : std::uint8_t { kSum, kMax, kMin };

class Comm {
 public:
  // Engine-internal factory; user code obtains the world comm from
  // Engine::run and sub-comms from split().
  static std::unique_ptr<Comm> create(Engine& engine,
                                      std::vector<TaskState*> members,
                                      NetworkModel net);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  // Rank of the calling task within this communicator.
  [[nodiscard]] int rank() const;
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] Engine& engine() const { return *engine_; }
  [[nodiscard]] const NetworkModel& network() const { return net_; }

  void barrier();

  // Root's buffer contents are visible in every task's `buf` on return.
  void bcast_bytes(std::span<std::byte> buf, int root);
  std::uint64_t bcast_u64(std::uint64_t value, int root);

  // `values.size()` CONSECUTIVE bcast_u64 operations fused into a single
  // rendezvous: each value still charges its own broadcast on the virtual
  // clock, in sequence, so the release time is bit-identical to the
  // unfused call chain — but every task suspends once instead of once per
  // value. Only valid where the unfused calls would run back to back with
  // no clock advance in between (metadata geometry exchanges).
  void bcast_u64_seq(std::span<std::uint64_t> values, int root);

  // Returns the full vector on root, empty elsewhere.
  std::vector<std::uint64_t> gather_u64(std::uint64_t value, int root);

  // Variable-length u64 arrays, gathered into ONE flat buffer on root.
  // offsets has size()+1 entries: rank r's contribution is
  // data[offsets[r] .. offsets[r+1]). Empty on non-root ranks.
  struct FlatGatherU64 {
    std::vector<std::uint64_t> data;
    std::vector<std::uint64_t> offsets;

    [[nodiscard]] std::span<const std::uint64_t> of(int r) const {
      return std::span<const std::uint64_t>(data).subspan(
          offsets[static_cast<std::size_t>(r)],
          offsets[static_cast<std::size_t>(r) + 1] -
              offsets[static_cast<std::size_t>(r)]);
    }
  };
  FlatGatherU64 gatherv_u64_flat(std::span<const std::uint64_t> values,
                                 int root);

  // Root supplies size() values; every task receives its own.
  std::uint64_t scatter_u64(std::span<const std::uint64_t> values, int root);

  // Two consecutive scatter_u64 operations fused into one rendezvous; the
  // same exact-cost-sequence contract as bcast_u64_seq.
  std::pair<std::uint64_t, std::uint64_t> scatter2_u64(
      std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
      int root);

  std::vector<std::uint64_t> allgather_u64(std::uint64_t value);
  std::uint64_t allreduce_u64(std::uint64_t value, ReduceOp op);

  struct GatheredBytes {
    std::vector<std::byte> data;              // concatenated in rank order
    std::vector<std::uint64_t> sizes;         // contribution per rank
  };
  // Root receives all contributions, others an empty result.
  GatheredBytes gatherv_bytes(std::span<const std::byte> contribution,
                              int root);

  // Root supplies one flat buffer sliced by `sizes` (size() entries, rank
  // order); each task receives its own piece.
  std::vector<std::byte> scatterv_bytes_flat(std::span<const std::byte> data,
                                             std::span<const std::uint64_t>
                                                 sizes,
                                             int root);

  // MPI_Comm_split. Tasks passing the same color land in the same child
  // communicator, ordered by (key, parent rank). color < 0 means "not in any
  // child" (MPI_UNDEFINED) and yields nullptr. Child comms are owned by the
  // engine and stay valid for the rest of the run.
  Comm* split(int color, int key);

  // Split into consecutive-rank groups of `group_size` tasks (the last group
  // may be smaller). The aggregation helper used by ext::Collective: rank 0
  // of every child is the group's collector. group_size <= 0 or >= size()
  // yields one group spanning the whole communicator.
  Comm* split_groups(int group_size);

  // Point-to-point with MPI-like eager semantics: send buffers the message
  // and returns after charging link time; recv blocks until a matching
  // message (same src and tag, FIFO within the pair) is available.
  void send_bytes(std::span<const std::byte> data, int dst, int tag);
  std::vector<std::byte> recv_bytes(int src, int tag);

  // Zero-copy variants: send_view ships only the span — the sender must
  // keep the buffer alive and unmodified until the receiver's matching recv
  // completes (the blocking collective protocols in ext:: guarantee this);
  // recv_view returns that span directly and must only be paired with
  // send_view. Identical virtual-time cost to send_bytes/recv_bytes.
  void send_view(std::span<const std::byte> data, int dst, int tag);
  std::span<const std::byte> recv_view(int src, int tag);

  // Group-to-group copy collectives (MPI_Sendrecv around the ring): every
  // task ships `data` to the task `shift` comm ranks ahead (mod size) and
  // receives the matching buffer from the task `shift` ranks behind. With
  // shift = k * group_size this moves every group's payloads to its k-th
  // neighbour group in one step — the buddy-replication ship pattern
  // (ext::Buddy mirrors checkpoint chunks to another failure domain with
  // it). Collective: every member must call it with the same shift. A
  // shift that is a multiple of size() degenerates to a local copy (or the
  // span itself for the view variant) with no network cost.
  //
  // rotate_view extends the send_view contract around the ring: every
  // sender's buffer must stay alive and unmodified until the collective
  // that consumes the received span completes.
  std::vector<std::byte> rotate_bytes(std::span<const std::byte> data,
                                      int shift);
  std::span<const std::byte> rotate_view(std::span<const std::byte> data,
                                         int shift);

 private:
  Comm(Engine& engine, std::vector<TaskState*> members, NetworkModel net);

  // Generic collective rendezvous: every member registers its `slot`; the
  // last arrival runs `finalize(slots, tmax)` (which performs the data
  // movement and returns the release time) and wakes everyone. At most one
  // collective is ever in flight per comm (members cannot reach op k+1
  // before op k released them), so the site is a single reusable arena.
  template <typename F>
  void rendezvous(void* slot, F&& finalize);

  [[nodiscard]] TaskState& calling_task() const;

  struct Message {
    double t_avail = 0.0;  // earliest virtual time the receiver can have it
    std::span<const std::byte> view;  // always set; into `owned` or remote
    std::vector<std::byte> owned;     // empty for send_view messages
    bool is_view = false;
  };
  // FIFO mailbox for one (src, dst, tag) stream; a vector with a head
  // cursor, reset when drained, so steady-state token traffic allocates
  // nothing.
  struct Box {
    std::vector<Message> q;
    std::size_t head = 0;

    [[nodiscard]] bool empty() const { return head == q.size(); }
    Message take() {
      Message m = std::move(q[head++]);
      if (head == q.size()) {
        q.clear();
        head = 0;
      }
      return m;
    }
  };
  struct WaitingReceiver {
    TaskState* task = nullptr;
    double t_blocked = 0.0;
    std::vector<std::byte>* sink = nullptr;       // recv_bytes
    std::span<const std::byte>* view_sink = nullptr;  // recv_view
  };

  void deliver_or_enqueue(Message msg, int dst, int tag);
  Message take_or_block(int src, int tag, std::vector<std::byte>* sink,
                        std::span<const std::byte>* view_sink, bool* blocked);

  Engine* engine_;
  std::vector<TaskState*> members_;
  std::vector<int> granks_;  // global rank per comm rank (member order)
  bool identity_ranks_ = false;   // granks_[i] == i
  bool ascending_ranks_ = false;  // strictly increasing granks_
  // Members span more than one engine shard: the rendezvous site and the
  // mailboxes are then shared between shard threads and every synchronizing
  // path below runs under Engine::shard_mutex(). Comms contained in a single
  // shard (and every comm of a sequential run) keep the lock-free paths.
  bool cross_shard_ = false;
  NetworkModel net_;

  std::vector<std::uint64_t> next_op_;  // per comm rank op counter

  // The single reusable rendezvous site.
  std::uint64_t site_op_ = 0;
  int site_arrived_ = 0;
  double site_tmax_ = 0.0;
  std::vector<void*> site_slots_;

  // Keyed by (src, dst, tag).
  std::map<std::tuple<int, int, int>, Box> mailbox_;
  std::map<std::tuple<int, int, int>, WaitingReceiver> waiting_recv_;
};

// ---------------------------------------------------------------------------
// Collective status agreement. The protocol is subtle and deadlock-sensitive
// (every member must reach the same agreement points in the same order), so
// SIONlib's collective layers share these helpers instead of re-rolling them.
// ---------------------------------------------------------------------------

// Share the root's status with every task of `comm`: a failure on the rank
// doing the I/O becomes an error everywhere instead of a hang or a half-open
// file. Non-root tasks receive the root's error code with `what` as message.
Status share_status(Comm& comm, const Status& mine, int root,
                    const char* what);

// Agree on the outcome across `comm` (allreduce-max of failure): any task's
// error fails every task. Tasks that were locally fine report
// Internal(`what`).
Status agree_status(Comm& comm, const Status& mine, const char* what);

// Share the file-local master's status within the file (`lcom`), then agree
// across the whole multifile (`gcom`): a metadata failure on one physical
// file must become an error on every task, not a deadlock of the intact
// files' tasks at the next global collective.
Status share_status_global(Comm& lcom, Comm& gcom, const Status& mine,
                           int root, const char* what);

}  // namespace sion::par
