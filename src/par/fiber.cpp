#include "par/fiber.h"

#ifdef SION_TSAN_FIBERS

#include <sanitizer/tsan_interface.h>

namespace sion::par {

void* tsan_fiber_create() { return __tsan_create_fiber(0); }

void tsan_fiber_destroy(void* fiber) { __tsan_destroy_fiber(fiber); }

void* tsan_fiber_current() { return __tsan_get_current_fiber(); }

void tsan_fiber_switch(void* target) { __tsan_switch_to_fiber(target, 0); }

}  // namespace sion::par

#endif  // SION_TSAN_FIBERS

#ifdef SION_FAST_FIBERS

#include <cstdint>
#include <cstring>

extern "C" void sion_fiber_start();

namespace sion::par {

void* fiber_make(std::byte* stack_base, std::size_t stack_bytes,
                 void (*entry)(void*), void* arg) {
  // Frame layout must mirror fiber_swap.S exactly; sp is 16-byte aligned so
  // the callq in sion_fiber_start enters `entry` with ABI-conformant
  // alignment.
  auto top = reinterpret_cast<std::uintptr_t>(stack_base) + stack_bytes;
  top &= ~static_cast<std::uintptr_t>(15);
  std::byte* sp = reinterpret_cast<std::byte*>(top) - 64;
  std::memset(sp, 0, 64);

  // New fibers inherit the creator's FP environment, exactly as a plain
  // function call would.
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  std::memcpy(sp + 0, &fcw, sizeof(fcw));
  std::memcpy(sp + 4, &mxcsr, sizeof(mxcsr));

  const auto r15 = reinterpret_cast<std::uintptr_t>(arg);
  const auto r12 = reinterpret_cast<std::uintptr_t>(entry);
  const auto ret = reinterpret_cast<std::uintptr_t>(&sion_fiber_start);
  std::memcpy(sp + 8, &r15, sizeof(r15));   // r15 = entry argument
  std::memcpy(sp + 32, &r12, sizeof(r12));  // r12 = entry function
  std::memcpy(sp + 56, &ret, sizeof(ret));  // return address = start stub
  return sp;
}

}  // namespace sion::par

#endif  // SION_FAST_FIBERS
