#include "par/comm.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace sion::par {

std::unique_ptr<Comm> Comm::create(Engine& engine,
                                   std::vector<TaskState*> members,
                                   NetworkModel net) {
  return std::unique_ptr<Comm>(new Comm(engine, std::move(members), net));
}

Comm::Comm(Engine& engine, std::vector<TaskState*> members, NetworkModel net)
    : engine_(&engine), members_(std::move(members)), net_(net) {
  rank_of_global_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    rank_of_global_[members_[i]->rank()] = static_cast<int>(i);
  }
  next_op_.assign(members_.size(), 0);
}

TaskState& Comm::calling_task() const {
  TaskState* task = this_task();
  SION_CHECK(task != nullptr) << "Comm used outside Engine::run";
  return *task;
}

int Comm::rank() const {
  const auto it = rank_of_global_.find(calling_task().rank());
  SION_CHECK(it != rank_of_global_.end())
      << "calling task is not a member of this communicator";
  return it->second;
}

void Comm::rendezvous(void* slot, const FinalizeFn& finalize) {
  TaskState& task = calling_task();
  const int my_rank = rank();
  const std::uint64_t opidx = next_op_[static_cast<std::size_t>(my_rank)]++;

  if (size() == 1) {
    std::vector<void*> slots{slot};
    const double release = finalize(slots, task.now());
    task.advance_to(release);
    return;
  }

  auto [it, inserted] = pending_.try_emplace(opidx);
  Pending& p = it->second;
  if (inserted) p.slots.assign(members_.size(), nullptr);
  p.slots[static_cast<std::size_t>(my_rank)] = slot;
  p.tmax = std::max(p.tmax, task.now());
  ++p.arrived;

  if (p.arrived < size()) {
    engine_->block_current();
    // Woken by the last arrival; our slot already holds the results and our
    // clock was advanced by wake().
    return;
  }

  const double release = finalize(p.slots, p.tmax);
  // Detach the site before waking anyone so a released task entering the
  // next collective cannot observe stale state under the same map.
  std::vector<void*> slots = std::move(p.slots);
  (void)slots;
  pending_.erase(it);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (static_cast<int>(i) != my_rank) engine_->wake(*members_[i], release);
  }
  task.advance_to(release);
}

void Comm::barrier() {
  const double cost = net_.sync_cost(size());
  rendezvous(nullptr, [cost](std::vector<void*>&, double tmax) {
    return tmax + cost;
  });
}

void Comm::bcast_bytes(std::span<std::byte> buf, int root) {
  SION_CHECK(root >= 0 && root < size()) << "bcast root out of range";
  struct Slot {
    std::span<std::byte> buf;
  };
  Slot slot{buf};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& src = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    for (int i = 0; i < nranks; ++i) {
      if (i == root) continue;
      auto& dst = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      SION_CHECK(dst.buf.size() == src.buf.size())
          << "bcast buffer size mismatch";
      std::memcpy(dst.buf.data(), src.buf.data(), src.buf.size());
    }
    return tmax + net.bcast_cost(nranks, src.buf.size());
  });
}

std::uint64_t Comm::bcast_u64(std::uint64_t value, int root) {
  std::uint64_t v = value;
  bcast_bytes(std::as_writable_bytes(std::span<std::uint64_t>(&v, 1)), root);
  return v;
}

std::vector<std::uint64_t> Comm::gather_u64(std::uint64_t value, int root) {
  SION_CHECK(root >= 0 && root < size()) << "gather root out of range";
  struct Slot {
    std::uint64_t in;
    std::vector<std::uint64_t>* out;
  };
  std::vector<std::uint64_t> result;
  Slot slot{value, &result};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    root_slot.out->resize(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
      (*root_slot.out)[static_cast<std::size_t>(i)] =
          static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->in;
    }
    return tmax + net.rooted_cost(nranks,
                                  8ULL * static_cast<std::uint64_t>(nranks));
  });
  return result;
}

std::vector<std::vector<std::uint64_t>> Comm::gatherv_u64(
    std::span<const std::uint64_t> values, int root) {
  SION_CHECK(root >= 0 && root < size()) << "gatherv root out of range";
  struct Slot {
    std::span<const std::uint64_t> in;
    std::vector<std::vector<std::uint64_t>>* out;
  };
  std::vector<std::vector<std::uint64_t>> result;
  Slot slot{values, &result};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    root_slot.out->resize(static_cast<std::size_t>(nranks));
    std::uint64_t total = 0;
    for (int i = 0; i < nranks; ++i) {
      auto& s = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      (*root_slot.out)[static_cast<std::size_t>(i)]
          .assign(s.in.begin(), s.in.end());
      total += s.in.size() * 8;
    }
    return tmax + net.rooted_cost(nranks, total);
  });
  return result;
}

std::uint64_t Comm::scatter_u64(std::span<const std::uint64_t> values,
                                int root) {
  SION_CHECK(root >= 0 && root < size()) << "scatter root out of range";
  struct Slot {
    std::span<const std::uint64_t> in;  // root only
    std::uint64_t out = 0;
  };
  Slot slot{values, 0};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    SION_CHECK(root_slot.in.size() == static_cast<std::size_t>(nranks))
        << "scatter_u64 root must supply size() values";
    for (int i = 0; i < nranks; ++i) {
      static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->out =
          root_slot.in[static_cast<std::size_t>(i)];
    }
    return tmax + net.rooted_cost(nranks,
                                  8ULL * static_cast<std::uint64_t>(nranks));
  });
  return slot.out;
}

std::vector<std::uint64_t> Comm::allgather_u64(std::uint64_t value) {
  struct Slot {
    std::uint64_t in;
    std::vector<std::uint64_t>* out;
  };
  std::vector<std::uint64_t> result;
  Slot slot{value, &result};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [nranks, net](std::vector<void*>& slots, double tmax) {
    std::vector<std::uint64_t> all(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
      all[static_cast<std::size_t>(i)] =
          static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->in;
    }
    for (int i = 0; i < nranks; ++i) {
      *static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->out = all;
    }
    // Gather up the tree plus broadcast down: twice the rooted volume.
    return tmax + net.rooted_cost(nranks,
                                  16ULL * static_cast<std::uint64_t>(nranks));
  });
  return result;
}

std::uint64_t Comm::allreduce_u64(std::uint64_t value, ReduceOp op) {
  struct Slot {
    std::uint64_t in;
    std::uint64_t out = 0;
  };
  Slot slot{value, 0};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [op, nranks, net](std::vector<void*>& slots,
                                      double tmax) {
    std::uint64_t acc = static_cast<Slot*>(slots[0])->in;
    for (int i = 1; i < nranks; ++i) {
      const std::uint64_t v =
          static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->in;
      switch (op) {
        case ReduceOp::kSum: acc += v; break;
        case ReduceOp::kMax: acc = std::max(acc, v); break;
        case ReduceOp::kMin: acc = std::min(acc, v); break;
      }
    }
    for (int i = 0; i < nranks; ++i) {
      static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->out = acc;
    }
    return tmax + net.sync_cost(nranks);
  });
  return slot.out;
}

Comm::GatheredBytes Comm::gatherv_bytes(std::span<const std::byte> contribution,
                                        int root) {
  SION_CHECK(root >= 0 && root < size()) << "gatherv root out of range";
  struct Slot {
    std::span<const std::byte> in;
    GatheredBytes* out;
  };
  GatheredBytes result;
  Slot slot{contribution, &result};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    std::uint64_t total = 0;
    for (int i = 0; i < nranks; ++i) {
      total += static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->in.size();
    }
    root_slot.out->data.reserve(total);
    root_slot.out->sizes.resize(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
      auto& s = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      root_slot.out->data.insert(root_slot.out->data.end(), s.in.begin(),
                                 s.in.end());
      root_slot.out->sizes[static_cast<std::size_t>(i)] = s.in.size();
    }
    return tmax + net.rooted_cost(nranks, total);
  });
  return result;
}

std::vector<std::byte> Comm::scatterv_bytes(
    const std::vector<std::vector<std::byte>>& pieces, int root) {
  SION_CHECK(root >= 0 && root < size()) << "scatterv root out of range";
  struct Slot {
    const std::vector<std::vector<std::byte>>* in;  // root only
    std::vector<std::byte> out;
  };
  Slot slot{&pieces, {}};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    SION_CHECK(root_slot.in->size() == static_cast<std::size_t>(nranks))
        << "scatterv_bytes root must supply size() pieces";
    std::uint64_t total = 0;
    for (int i = 0; i < nranks; ++i) {
      const auto& piece = (*root_slot.in)[static_cast<std::size_t>(i)];
      static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->out = piece;
      total += piece.size();
    }
    return tmax + net.rooted_cost(nranks, total);
  });
  return std::move(slot.out);
}

Comm* Comm::split(int color, int key) {
  struct Slot {
    int color;
    int key;
    int parent_rank;
    Comm* out = nullptr;
  };
  Slot slot{color, key, rank(), nullptr};
  const int nranks = size();
  const NetworkModel net = net_;
  Engine* engine = engine_;
  std::vector<TaskState*>* members = &members_;
  rendezvous(&slot, [nranks, net, engine, members](std::vector<void*>& slots,
                                                   double tmax) {
    // Group by color, order each group by (key, parent rank).
    std::vector<Slot*> all;
    all.reserve(static_cast<std::size_t>(nranks));
    for (auto* raw : slots) all.push_back(static_cast<Slot*>(raw));
    std::vector<int> order(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) order[static_cast<std::size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const Slot* sa = all[static_cast<std::size_t>(a)];
      const Slot* sb = all[static_cast<std::size_t>(b)];
      return std::tie(sa->color, sa->key, sa->parent_rank) <
             std::tie(sb->color, sb->key, sb->parent_rank);
    });
    std::size_t i = 0;
    while (i < order.size()) {
      const int color = all[static_cast<std::size_t>(order[i])]->color;
      std::size_t j = i;
      while (j < order.size() &&
             all[static_cast<std::size_t>(order[j])]->color == color) {
        ++j;
      }
      if (color >= 0) {
        std::vector<TaskState*> group;
        group.reserve(j - i);
        for (std::size_t k = i; k < j; ++k) {
          group.push_back(
              (*members)[static_cast<std::size_t>(order[k])]);
        }
        Comm& child = engine->adopt_comm(
            Comm::create(*engine, std::move(group), net));
        for (std::size_t k = i; k < j; ++k) {
          all[static_cast<std::size_t>(order[k])]->out = &child;
        }
      }
      i = j;
    }
    return tmax + net.sync_cost(nranks);
  });
  return slot.out;
}

Comm* Comm::split_groups(int group_size) {
  const int me = rank();
  if (group_size <= 0 || group_size >= size()) return split(0, me);
  return split(me / group_size, me);
}

void Comm::send_bytes(std::span<const std::byte> data, int dst, int tag) {
  SION_CHECK(dst >= 0 && dst < size()) << "send destination out of range";
  TaskState& task = calling_task();
  const int src = rank();
  SION_CHECK(src != dst) << "send to self would deadlock";
  const double cost = net_.p2p_cost(data.size());
  const double t_avail = task.now() + cost;
  const auto key = std::make_tuple(src, dst, tag);

  const auto waiting = waiting_recv_.find(key);
  if (waiting != waiting_recv_.end()) {
    WaitingReceiver receiver = waiting->second;
    waiting_recv_.erase(waiting);
    receiver.sink->assign(data.begin(), data.end());
    engine_->wake(*receiver.task, std::max(receiver.t_blocked, t_avail));
  } else {
    Message msg;
    msg.t_avail = t_avail;
    msg.data.assign(data.begin(), data.end());
    mailbox_[key].push_back(std::move(msg));
  }
  // Eager send: the sender only occupies its link, it does not wait for the
  // receiver (MPI small/eager protocol).
  task.advance_to(t_avail);
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  SION_CHECK(src >= 0 && src < size()) << "recv source out of range";
  TaskState& task = calling_task();
  const int dst = rank();
  SION_CHECK(src != dst) << "recv from self would deadlock";
  std::vector<std::byte> out;
  const auto key = std::make_tuple(src, dst, tag);

  const auto queued = mailbox_.find(key);
  if (queued != mailbox_.end() && !queued->second.empty()) {
    Message msg = std::move(queued->second.front());
    queued->second.pop_front();
    if (queued->second.empty()) mailbox_.erase(queued);
    out = std::move(msg.data);
    task.advance_to(std::max(task.now(), msg.t_avail));
    return out;
  }

  SION_CHECK(waiting_recv_.find(key) == waiting_recv_.end())
      << "two receivers blocked on the same (src, tag)";
  waiting_recv_[key] = WaitingReceiver{&task, task.now(), &out};
  engine_->block_current();
  return out;
}

Status share_status(Comm& comm, const Status& mine, int root,
                    const char* what) {
  const std::uint64_t code =
      comm.bcast_u64(static_cast<std::uint64_t>(mine.code()), root);
  if (code == 0) return Status::Ok();
  if (comm.rank() == root) return mine;
  return Status(static_cast<ErrorCode>(code), what);
}

Status agree_status(Comm& comm, const Status& mine, const char* what) {
  const std::uint64_t failed =
      comm.allreduce_u64(mine.ok() ? 0 : 1, ReduceOp::kMax);
  if (failed == 0) return Status::Ok();
  if (!mine.ok()) return mine;
  return Internal(what);
}

Status share_status_global(Comm& lcom, Comm& gcom, const Status& mine,
                           int root, const char* what) {
  return agree_status(gcom, share_status(lcom, mine, root, what), what);
}

}  // namespace sion::par
