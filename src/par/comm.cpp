#include "par/comm.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <tuple>

#include "common/log.h"

namespace sion::par {

std::unique_ptr<Comm> Comm::create(Engine& engine,
                                   std::vector<TaskState*> members,
                                   NetworkModel net) {
  return std::unique_ptr<Comm>(new Comm(engine, std::move(members), net));
}

Comm::Comm(Engine& engine, std::vector<TaskState*> members, NetworkModel net)
    : engine_(&engine), members_(std::move(members)), net_(net) {
  granks_.reserve(members_.size());
  identity_ranks_ = true;
  ascending_ranks_ = true;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const int g = members_[i]->rank();
    if (g != static_cast<int>(i)) identity_ranks_ = false;
    if (!granks_.empty() && g <= granks_.back()) ascending_ranks_ = false;
    granks_.push_back(g);
  }
  if (engine_->sharded() && !granks_.empty()) {
    const int shard0 = engine_->shard_of(granks_.front());
    for (const int g : granks_) {
      if (engine_->shard_of(g) != shard0) {
        cross_shard_ = true;
        break;
      }
    }
  }
  next_op_.assign(members_.size(), 0);
}

TaskState& Comm::calling_task() const {
  TaskState* task = this_task();
  SION_CHECK(task != nullptr) << "Comm used outside Engine::run";
  return *task;
}

int Comm::rank() const {
  const int grank = calling_task().rank();
  if (identity_ranks_) {
    SION_CHECK(grank >= 0 && grank < size())
        << "calling task is not a member of this communicator";
    return grank;
  }
  if (ascending_ranks_) {
    const auto it = std::lower_bound(granks_.begin(), granks_.end(), grank);
    SION_CHECK(it != granks_.end() && *it == grank)
        << "calling task is not a member of this communicator";
    return static_cast<int>(it - granks_.begin());
  }
  const auto it = std::find(granks_.begin(), granks_.end(), grank);
  SION_CHECK(it != granks_.end())
      << "calling task is not a member of this communicator";
  return static_cast<int>(it - granks_.begin());
}

template <typename F>
void Comm::rendezvous(void* slot, F&& finalize) {
  TaskState& task = calling_task();
  const int my_rank = rank();
  const std::uint64_t opidx = next_op_[static_cast<std::size_t>(my_rank)]++;

  if (size() == 1) {
    site_slots_.assign(1, slot);
    const double release = finalize(site_slots_, task.now());
    task.advance_to(release);
    return;
  }

  // Members of a cross-shard comm arrive from several host threads; the
  // rendezvous site is then shared state, guarded by the engine mutex.
  std::unique_lock<std::mutex> lock;
  if (cross_shard_) {
    lock = std::unique_lock<std::mutex>(engine_->shard_mutex());
  }

  if (site_arrived_ == 0) {
    // First arrival of a fresh collective claims the site. Slot entries are
    // not cleared between ops: every member overwrites its own entry before
    // the last arrival runs finalize.
    site_op_ = opidx;
    site_tmax_ = task.now();
    if (site_slots_.size() != members_.size()) {
      site_slots_.assign(members_.size(), nullptr);
    }
  } else {
    SION_CHECK(site_op_ == opidx)
        << "collective operation order mismatch on comm rank " << my_rank;
    if (task.now() > site_tmax_) site_tmax_ = task.now();
  }
  site_slots_[static_cast<std::size_t>(my_rank)] = slot;
  ++site_arrived_;

  if (site_arrived_ < size()) {
    if (cross_shard_) {
      engine_->block_current_locked(lock);
    } else {
      engine_->block_current();
    }
    // Woken by the last arrival; our slot already holds the results and our
    // clock was advanced by the release.
    return;
  }

  // Retire the site before waking anyone so a released task entering the
  // next collective starts a fresh operation.
  const double tmax = site_tmax_;
  site_arrived_ = 0;
  if (cross_shard_) lock.unlock();
  // finalize may split off child comms (Engine::adopt_comm) and must not run
  // under the coordination mutex. Every other member is blocked at this
  // point, so the site slots are stable without it; the wake below
  // publishes finalize's writes before any member resumes.
  const double release = finalize(site_slots_, tmax);
  if (cross_shard_) {
    lock.lock();
    if (ascending_ranks_) {
      engine_->wake_members_locked(members_, static_cast<std::size_t>(my_rank),
                                   release);
    } else {
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (static_cast<int>(i) != my_rank) {
          engine_->wake_locked(*members_[i], release);
        }
      }
    }
    lock.unlock();
  } else if (ascending_ranks_) {
    engine_->wake_members(members_, static_cast<std::size_t>(my_rank),
                          release);
  } else {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (static_cast<int>(i) != my_rank) engine_->wake(*members_[i], release);
    }
  }
  task.advance_to(release);
}

void Comm::barrier() {
  const double cost = net_.sync_cost(size());
  rendezvous(nullptr, [cost](std::vector<void*>&, double tmax) {
    return tmax + cost;
  });
}

void Comm::bcast_bytes(std::span<std::byte> buf, int root) {
  SION_CHECK(root >= 0 && root < size()) << "bcast root out of range";
  struct Slot {
    std::span<std::byte> buf;
  };
  Slot slot{buf};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& src = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    for (int i = 0; i < nranks; ++i) {
      if (i == root) continue;
      auto& dst = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      SION_CHECK(dst.buf.size() == src.buf.size())
          << "bcast buffer size mismatch";
      std::memcpy(dst.buf.data(), src.buf.data(), src.buf.size());
    }
    return tmax + net.bcast_cost(nranks, src.buf.size());
  });
}

std::uint64_t Comm::bcast_u64(std::uint64_t value, int root) {
  std::uint64_t v = value;
  bcast_bytes(std::as_writable_bytes(std::span<std::uint64_t>(&v, 1)), root);
  return v;
}

void Comm::bcast_u64_seq(std::span<std::uint64_t> values, int root) {
  SION_CHECK(root >= 0 && root < size()) << "bcast root out of range";
  if (values.empty()) return;
  struct Slot {
    std::span<std::uint64_t> values;
  };
  Slot slot{values};
  const int nranks = size();
  const std::size_t count = values.size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, count, net](std::vector<void*>& slots,
                                               double tmax) {
    auto& src = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    SION_CHECK(src.values.size() == count) << "bcast_u64_seq count mismatch";
    for (int i = 0; i < nranks; ++i) {
      if (i == root) continue;
      auto& dst = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      SION_CHECK(dst.values.size() == count) << "bcast_u64_seq count mismatch";
      std::copy(src.values.begin(), src.values.end(), dst.values.begin());
    }
    // Each value is charged as its own 8-byte broadcast, summed in call
    // order — bit-identical to `count` back-to-back bcast_u64 calls.
    double release = tmax;
    for (std::size_t k = 0; k < count; ++k) {
      release = release + net.bcast_cost(nranks, sizeof(std::uint64_t));
    }
    return release;
  });
}

std::vector<std::uint64_t> Comm::gather_u64(std::uint64_t value, int root) {
  SION_CHECK(root >= 0 && root < size()) << "gather root out of range";
  struct Slot {
    std::uint64_t in;
    std::vector<std::uint64_t>* out;
  };
  std::vector<std::uint64_t> result;
  Slot slot{value, &result};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    root_slot.out->resize(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
      (*root_slot.out)[static_cast<std::size_t>(i)] =
          static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->in;
    }
    return tmax + net.rooted_cost(nranks,
                                  8ULL * static_cast<std::uint64_t>(nranks));
  });
  return result;
}

Comm::FlatGatherU64 Comm::gatherv_u64_flat(
    std::span<const std::uint64_t> values, int root) {
  SION_CHECK(root >= 0 && root < size()) << "gatherv root out of range";
  struct Slot {
    std::span<const std::uint64_t> in;
    FlatGatherU64* out;
  };
  FlatGatherU64 result;
  Slot slot{values, &result};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    auto& out = *root_slot.out;
    out.offsets.resize(static_cast<std::size_t>(nranks) + 1);
    std::uint64_t total = 0;
    std::uint64_t elems = 0;
    for (int i = 0; i < nranks; ++i) {
      auto& s = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      out.offsets[static_cast<std::size_t>(i)] = elems;
      elems += s.in.size();
      total += s.in.size() * 8;
    }
    out.offsets[static_cast<std::size_t>(nranks)] = elems;
    out.data.resize(elems);
    for (int i = 0; i < nranks; ++i) {
      auto& s = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      std::copy(s.in.begin(), s.in.end(),
                out.data.begin() +
                    static_cast<std::ptrdiff_t>(
                        out.offsets[static_cast<std::size_t>(i)]));
    }
    return tmax + net.rooted_cost(nranks, total);
  });
  return result;
}

std::uint64_t Comm::scatter_u64(std::span<const std::uint64_t> values,
                                int root) {
  SION_CHECK(root >= 0 && root < size()) << "scatter root out of range";
  struct Slot {
    std::span<const std::uint64_t> in;  // root only
    std::uint64_t out = 0;
  };
  Slot slot{values, 0};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    SION_CHECK(root_slot.in.size() == static_cast<std::size_t>(nranks))
        << "scatter_u64 root must supply size() values";
    for (int i = 0; i < nranks; ++i) {
      static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->out =
          root_slot.in[static_cast<std::size_t>(i)];
    }
    return tmax + net.rooted_cost(nranks,
                                  8ULL * static_cast<std::uint64_t>(nranks));
  });
  return slot.out;
}

std::pair<std::uint64_t, std::uint64_t> Comm::scatter2_u64(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    int root) {
  SION_CHECK(root >= 0 && root < size()) << "scatter root out of range";
  struct Slot {
    std::span<const std::uint64_t> a;  // root only
    std::span<const std::uint64_t> b;  // root only
    std::uint64_t out_a = 0;
    std::uint64_t out_b = 0;
  };
  Slot slot{a, b, 0, 0};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    SION_CHECK(root_slot.a.size() == static_cast<std::size_t>(nranks) &&
               root_slot.b.size() == static_cast<std::size_t>(nranks))
        << "scatter2_u64 root must supply size() values per array";
    for (int i = 0; i < nranks; ++i) {
      auto& s = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      s.out_a = root_slot.a[static_cast<std::size_t>(i)];
      s.out_b = root_slot.b[static_cast<std::size_t>(i)];
    }
    // Two scatters charged in sequence — bit-identical to two calls.
    const double cost =
        net.rooted_cost(nranks, 8ULL * static_cast<std::uint64_t>(nranks));
    return (tmax + cost) + cost;
  });
  return {slot.out_a, slot.out_b};
}

std::vector<std::uint64_t> Comm::allgather_u64(std::uint64_t value) {
  struct Slot {
    std::uint64_t in;
    std::vector<std::uint64_t>* out;
  };
  std::vector<std::uint64_t> result;
  Slot slot{value, &result};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [nranks, net](std::vector<void*>& slots, double tmax) {
    std::vector<std::uint64_t> all(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
      all[static_cast<std::size_t>(i)] =
          static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->in;
    }
    for (int i = 0; i < nranks; ++i) {
      *static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->out = all;
    }
    // Gather up the tree plus broadcast down: twice the rooted volume.
    return tmax + net.rooted_cost(nranks,
                                  16ULL * static_cast<std::uint64_t>(nranks));
  });
  return result;
}

std::uint64_t Comm::allreduce_u64(std::uint64_t value, ReduceOp op) {
  struct Slot {
    std::uint64_t in;
    std::uint64_t out = 0;
  };
  Slot slot{value, 0};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [op, nranks, net](std::vector<void*>& slots,
                                      double tmax) {
    std::uint64_t acc = static_cast<Slot*>(slots[0])->in;
    for (int i = 1; i < nranks; ++i) {
      const std::uint64_t v =
          static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->in;
      switch (op) {
        case ReduceOp::kSum: acc += v; break;
        case ReduceOp::kMax: acc = std::max(acc, v); break;
        case ReduceOp::kMin: acc = std::min(acc, v); break;
      }
    }
    for (int i = 0; i < nranks; ++i) {
      static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->out = acc;
    }
    return tmax + net.sync_cost(nranks);
  });
  return slot.out;
}

Comm::GatheredBytes Comm::gatherv_bytes(std::span<const std::byte> contribution,
                                        int root) {
  SION_CHECK(root >= 0 && root < size()) << "gatherv root out of range";
  struct Slot {
    std::span<const std::byte> in;
    GatheredBytes* out;
  };
  GatheredBytes result;
  Slot slot{contribution, &result};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    std::uint64_t total = 0;
    for (int i = 0; i < nranks; ++i) {
      total += static_cast<Slot*>(slots[static_cast<std::size_t>(i)])->in.size();
    }
    root_slot.out->data.reserve(total);
    root_slot.out->sizes.resize(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
      auto& s = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      root_slot.out->data.insert(root_slot.out->data.end(), s.in.begin(),
                                 s.in.end());
      root_slot.out->sizes[static_cast<std::size_t>(i)] = s.in.size();
    }
    return tmax + net.rooted_cost(nranks, total);
  });
  return result;
}

std::vector<std::byte> Comm::scatterv_bytes_flat(
    std::span<const std::byte> data, std::span<const std::uint64_t> sizes,
    int root) {
  SION_CHECK(root >= 0 && root < size()) << "scatterv root out of range";
  struct Slot {
    std::span<const std::byte> data;          // root only
    std::span<const std::uint64_t> sizes;     // root only
    std::vector<std::byte> out;
  };
  Slot slot{data, sizes, {}};
  const int nranks = size();
  const NetworkModel net = net_;
  rendezvous(&slot, [root, nranks, net](std::vector<void*>& slots,
                                        double tmax) {
    auto& root_slot = *static_cast<Slot*>(slots[static_cast<std::size_t>(root)]);
    SION_CHECK(root_slot.sizes.size() == static_cast<std::size_t>(nranks))
        << "scatterv_bytes_flat root must supply size() sizes";
    std::uint64_t total = 0;
    std::uint64_t pos = 0;
    for (int i = 0; i < nranks; ++i) {
      const std::uint64_t n = root_slot.sizes[static_cast<std::size_t>(i)];
      SION_CHECK(pos + n <= root_slot.data.size())
          << "scatterv_bytes_flat sizes overrun the flat buffer";
      const auto piece = root_slot.data.subspan(pos, n);
      auto& s = *static_cast<Slot*>(slots[static_cast<std::size_t>(i)]);
      s.out.assign(piece.begin(), piece.end());
      pos += n;
      total += n;
    }
    return tmax + net.rooted_cost(nranks, total);
  });
  return std::move(slot.out);
}

Comm* Comm::split(int color, int key) {
  struct Slot {
    int color;
    int key;
    int parent_rank;
    Comm* out = nullptr;
  };
  Slot slot{color, key, rank(), nullptr};
  const int nranks = size();
  const NetworkModel net = net_;
  Engine* engine = engine_;
  std::vector<TaskState*>* members = &members_;
  rendezvous(&slot, [nranks, net, engine, members](std::vector<void*>& slots,
                                                   double tmax) {
    // Group by color, order each group by (key, parent rank).
    std::vector<Slot*> all;
    all.reserve(static_cast<std::size_t>(nranks));
    for (auto* raw : slots) all.push_back(static_cast<Slot*>(raw));
    std::vector<int> order(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) order[static_cast<std::size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const Slot* sa = all[static_cast<std::size_t>(a)];
      const Slot* sb = all[static_cast<std::size_t>(b)];
      return std::tie(sa->color, sa->key, sa->parent_rank) <
             std::tie(sb->color, sb->key, sb->parent_rank);
    });
    std::size_t i = 0;
    while (i < order.size()) {
      const int group_color = all[static_cast<std::size_t>(order[i])]->color;
      std::size_t j = i;
      while (j < order.size() &&
             all[static_cast<std::size_t>(order[j])]->color == group_color) {
        ++j;
      }
      if (group_color >= 0) {
        std::vector<TaskState*> group;
        group.reserve(j - i);
        for (std::size_t k = i; k < j; ++k) {
          group.push_back(
              (*members)[static_cast<std::size_t>(order[k])]);
        }
        Comm& child = engine->adopt_comm(
            Comm::create(*engine, std::move(group), net));
        for (std::size_t k = i; k < j; ++k) {
          all[static_cast<std::size_t>(order[k])]->out = &child;
        }
      }
      i = j;
    }
    return tmax + net.sync_cost(nranks);
  });
  return slot.out;
}

Comm* Comm::split_groups(int group_size) {
  const int me = rank();
  if (group_size <= 0 || group_size >= size()) return split(0, me);
  return split(me / group_size, me);
}

// ---------------------------------------------------------------------------
// point-to-point
// ---------------------------------------------------------------------------

void Comm::deliver_or_enqueue(Message msg, int dst, int tag) {
  TaskState& task = calling_task();
  const int src = rank();
  SION_CHECK(src != dst) << "send to self would deadlock";
  const double t_avail = msg.t_avail;
  const auto key = std::make_tuple(src, dst, tag);

  // Mailboxes of a cross-shard comm are shared between shard threads.
  std::unique_lock<std::mutex> lock;
  if (cross_shard_) {
    lock = std::unique_lock<std::mutex>(engine_->shard_mutex());
  }

  const auto waiting = waiting_recv_.find(key);
  if (waiting != waiting_recv_.end()) {
    WaitingReceiver receiver = waiting->second;
    waiting_recv_.erase(waiting);
    if (receiver.view_sink != nullptr) {
      SION_CHECK(msg.is_view)
          << "recv_view must be paired with send_view (the span would "
             "dangle once a copying sender returns)";
      *receiver.view_sink = msg.view;
    } else {
      receiver.sink->assign(msg.view.begin(), msg.view.end());
    }
    if (cross_shard_) {
      engine_->wake_locked(*receiver.task,
                           std::max(receiver.t_blocked, msg.t_avail));
    } else {
      engine_->wake(*receiver.task, std::max(receiver.t_blocked, msg.t_avail));
    }
  } else {
    mailbox_[key].q.push_back(std::move(msg));
  }
  if (cross_shard_) lock.unlock();
  // Eager send: the sender only occupies its link, it does not wait for the
  // receiver (MPI small/eager protocol).
  task.advance_to(t_avail);
}

void Comm::send_bytes(std::span<const std::byte> data, int dst, int tag) {
  SION_CHECK(dst >= 0 && dst < size()) << "send destination out of range";
  Message msg;
  msg.t_avail = calling_task().now() + net_.p2p_cost(data.size());
  msg.owned.assign(data.begin(), data.end());
  msg.view = msg.owned;
  msg.is_view = false;
  deliver_or_enqueue(std::move(msg), dst, tag);
}

void Comm::send_view(std::span<const std::byte> data, int dst, int tag) {
  SION_CHECK(dst >= 0 && dst < size()) << "send destination out of range";
  Message msg;
  msg.t_avail = calling_task().now() + net_.p2p_cost(data.size());
  msg.view = data;
  msg.is_view = true;
  deliver_or_enqueue(std::move(msg), dst, tag);
}

Comm::Message Comm::take_or_block(int src, int tag,
                                  std::vector<std::byte>* sink,
                                  std::span<const std::byte>* view_sink,
                                  bool* blocked) {
  SION_CHECK(src >= 0 && src < size()) << "recv source out of range";
  TaskState& task = calling_task();
  const int dst = rank();
  SION_CHECK(src != dst) << "recv from self would deadlock";
  const auto key = std::make_tuple(src, dst, tag);

  std::unique_lock<std::mutex> lock;
  if (cross_shard_) {
    lock = std::unique_lock<std::mutex>(engine_->shard_mutex());
  }

  const auto queued = mailbox_.find(key);
  if (queued != mailbox_.end() && !queued->second.empty()) {
    Message msg = queued->second.take();
    if (cross_shard_) lock.unlock();
    task.advance_to(std::max(task.now(), msg.t_avail));
    *blocked = false;
    return msg;
  }

  SION_CHECK(waiting_recv_.find(key) == waiting_recv_.end())
      << "two receivers blocked on the same (src, tag)";
  waiting_recv_[key] = WaitingReceiver{&task, task.now(), sink, view_sink};
  if (cross_shard_) {
    engine_->block_current_locked(lock);
  } else {
    engine_->block_current();
  }
  *blocked = true;
  return {};
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  std::vector<std::byte> out;
  bool blocked = false;
  Message msg = take_or_block(src, tag, &out, nullptr, &blocked);
  if (blocked) return out;  // the sender filled the sink before waking us
  if (msg.is_view) {
    out.assign(msg.view.begin(), msg.view.end());
  } else {
    out = std::move(msg.owned);
  }
  return out;
}

std::span<const std::byte> Comm::recv_view(int src, int tag) {
  std::span<const std::byte> out;
  bool blocked = false;
  Message msg = take_or_block(src, tag, nullptr, &out, &blocked);
  if (blocked) return out;  // the sender stored the span before waking us
  SION_CHECK(msg.is_view)
      << "recv_view must be paired with send_view (the span would dangle "
         "once the mailbox copy is dropped)";
  return msg.view;
}

// ---------------------------------------------------------------------------
// group-to-group rotation
// ---------------------------------------------------------------------------

namespace {
// Reserved tag for the rotation collectives: rotation is collective, so no
// user point-to-point traffic is ever in flight on the comm at the same
// time, but a distinct tag keeps a mis-ordered program failing loudly
// instead of cross-matching application messages.
constexpr int kRotateTag = 0x707A7E;
}  // namespace

std::vector<std::byte> Comm::rotate_bytes(std::span<const std::byte> data,
                                          int shift) {
  const int n = size();
  const int s = ((shift % n) + n) % n;
  if (s == 0) return {data.begin(), data.end()};
  const int me = rank();
  // Eager send first, then receive: every task's send completes without
  // waiting for its receiver, so the ring never deadlocks.
  send_bytes(data, (me + s) % n, kRotateTag);
  return recv_bytes((me - s + n) % n, kRotateTag);
}

std::span<const std::byte> Comm::rotate_view(std::span<const std::byte> data,
                                             int shift) {
  const int n = size();
  const int s = ((shift % n) + n) % n;
  if (s == 0) return data;
  const int me = rank();
  send_view(data, (me + s) % n, kRotateTag);
  return recv_view((me - s + n) % n, kRotateTag);
}

// ---------------------------------------------------------------------------
// status agreement
// ---------------------------------------------------------------------------

Status share_status(Comm& comm, const Status& mine, int root,
                    const char* what) {
  const std::uint64_t code =
      comm.bcast_u64(static_cast<std::uint64_t>(mine.code()), root);
  if (code == 0) return Status::Ok();
  if (comm.rank() == root) return mine;
  return Status(static_cast<ErrorCode>(code), what);
}

Status agree_status(Comm& comm, const Status& mine, const char* what) {
  const std::uint64_t failed =
      comm.allreduce_u64(mine.ok() ? 0 : 1, ReduceOp::kMax);
  if (failed == 0) return Status::Ok();
  if (!mine.ok()) return mine;
  return Internal(what);
}

Status share_status_global(Comm& lcom, Comm& gcom, const Status& mine,
                           int root, const char* what) {
  return agree_status(gcom, share_status(lcom, mine, root, what), what);
}

}  // namespace sion::par
