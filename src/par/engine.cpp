#include "par/engine.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "par/comm.h"

namespace sion::par {

namespace {
thread_local TaskState* g_current_task = nullptr;
thread_local Engine* g_engine = nullptr;

// Written at the low end of every fiber stack; checked when the fiber
// finishes to detect (most) stack overflows without per-fiber guard pages,
// which would exhaust vm.max_map_count at 64Ki fibers.
constexpr std::uint64_t kCanary = 0x510AC0DE510AC0DEULL;

// One retired stack slab is kept per thread and handed to the next Engine
// that fits in it: a 64Ki-task sweep builds a fresh Engine per data point,
// and re-faulting ~2 pages per fiber per point dominates the host cost of
// task setup otherwise. Stashed slabs are marked MADV_FREE, so the kernel
// may reclaim the memory under pressure while unreclaimed pages are reused
// without a fault.
struct SlabCache {
  std::byte* ptr = nullptr;
  std::size_t bytes = 0;
};
thread_local SlabCache g_slab_cache;

// Returns a cached slab of at least `bytes` (its true size in *actual), or
// nullptr when the cache cannot serve the request.
std::byte* acquire_slab(std::size_t bytes, std::size_t* actual) {
  if (g_slab_cache.ptr != nullptr && g_slab_cache.bytes >= bytes) {
    std::byte* slab = g_slab_cache.ptr;
    *actual = g_slab_cache.bytes;
    g_slab_cache = SlabCache{};
    return slab;
  }
  return nullptr;
}

void release_slab(std::byte* ptr, std::size_t bytes) {
  if (g_slab_cache.ptr == nullptr || g_slab_cache.bytes < bytes) {
    std::swap(g_slab_cache.ptr, ptr);
    std::swap(g_slab_cache.bytes, bytes);
#ifdef MADV_FREE
    if (g_slab_cache.ptr != nullptr) {
      ::madvise(g_slab_cache.ptr, g_slab_cache.bytes, MADV_FREE);
    }
#endif
  }
  if (ptr != nullptr) ::munmap(ptr, bytes);
}
}  // namespace

TaskState* this_task() { return g_current_task; }

void TaskState::advance_to(double t) {
  if (t > vtime_) {
    vtime_ = t;
    engine_->yield_current();
  }
}

Engine::Engine(EngineConfig config) : config_(config) {}

Engine::~Engine() {
  if (slab_ != nullptr) release_slab(slab_, slab_bytes_);
}

Comm& Engine::adopt_comm(std::unique_ptr<Comm> comm) {
  comms_.push_back(std::move(comm));
  return *comms_.back();
}

#ifdef SION_FAST_FIBERS

void Engine::fiber_entry(void* arg) {
  auto* task = static_cast<TaskState*>(arg);
  Engine* engine = task->engine_;
  engine->fiber_main(task->rank_);
  engine->retire_and_dispatch(*task);
}

#else

void Engine::trampoline(unsigned int hi, unsigned int lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* engine = reinterpret_cast<Engine*>(bits);
  TaskState& task = *engine->current_;
  engine->fiber_main(task.rank_);
  engine->retire_and_dispatch(task);
}

#endif  // SION_FAST_FIBERS

void Engine::fiber_main(int index) {
  TaskState& task = tasks_[static_cast<std::size_t>(index)];
  try {
    (*body_)(*static_cast<Comm*>(comms_.front().get()));
  } catch (...) {  // sion-lint: allow(catch-all)
    // The one legitimate catch-all: a fiber boundary. Whatever a task body
    // throws must be parked and rethrown from Engine::run -- letting it
    // unwind a fiber stack into the scheduler would be UB.
    if (!first_error_) first_error_ = std::current_exception();
  }
  task.state_ = TaskState::Run::kDone;
}

TaskState* Engine::next_task() {
  for (;;) {
    if (!runs_.empty() &&
        (ready_.empty() || run_front_key(runs_.front()) < ready_.top())) {
      TaskState* task = pop_run_front();
      SION_CHECK(task->state_ == TaskState::Run::kReady)
          << "release run holds task " << task->rank_ << " in invalid state";
      return task;
    }
    if (ready_.empty()) return nullptr;
    const auto [vtime, rank] = ready_.top();
    ready_.pop();
    TaskState& task = tasks_[static_cast<std::size_t>(rank)];
    if (task.state_ != TaskState::Run::kReady || task.vtime_ != vtime) {
      continue;  // stale heap entry (task was re-queued with a newer time)
    }
    return &task;
  }
}

void Engine::switch_to(TaskState& task) {
  current_ = &task;
  task.state_ = TaskState::Run::kRunning;
  g_current_task = &task;
#ifdef SION_FAST_FIBERS
  sion_fiber_swap(&sched_sp_, task.fiber_sp_);
#else
  tsan_fiber_switch(task.tsan_fiber_);
  swapcontext(&sched_ctx_, &task.ctx_);
#endif
  g_current_task = nullptr;
  current_ = nullptr;
}

void Engine::switch_from(TaskState& from, TaskState& to) {
  // Fiber-to-fiber handoff: the bookkeeping for `to` runs here, on `from`'s
  // stack, because control resumes inside `to`'s own suspended frame.
  to.state_ = TaskState::Run::kRunning;
  current_ = &to;
  g_current_task = &to;
#ifdef SION_FAST_FIBERS
  sion_fiber_swap(&from.fiber_sp_, to.fiber_sp_);
#else
  tsan_fiber_switch(to.tsan_fiber_);
  swapcontext(&from.ctx_, &to.ctx_);
#endif
  // Back alive: whoever dispatched into `from` already set current_ to us.
}

void Engine::retire_and_dispatch(TaskState& task) {
  ++done_count_;
  if (task.vtime_ > epoch_) epoch_ = task.vtime_;
  std::uint64_t canary;
  std::memcpy(&canary, task.stack_, sizeof(canary));
  SION_CHECK(canary == kCanary)
      << "fiber stack overflow detected for rank " << task.rank_
      << " (increase EngineConfig::stack_bytes)";
  if (done_count_ < total_tasks_) {
    TaskState* next = next_task();
    SION_CHECK(next != nullptr)
        << "deadlock: " << (total_tasks_ - done_count_)
        << " tasks blocked with empty ready queue (collective mismatch?)";
    switch_from(task, *next);
    SION_CHECK(false) << "finished fiber resumed";
  }
  // Last task out: hand control back to Engine::run.
  current_ = nullptr;
  g_current_task = nullptr;
#ifdef SION_FAST_FIBERS
  sion_fiber_swap(&task.fiber_sp_, sched_sp_);
#else
  tsan_fiber_switch(sched_tsan_fiber_);
  swapcontext(&task.ctx_, &sched_ctx_);
#endif
  SION_CHECK(false) << "finished fiber resumed";
  std::abort();  // unreachable; satisfies [[noreturn]]
}

void Engine::yield_current() {
  TaskState& task = *current_;
  // Still the earliest (vtime, rank) key anywhere? Then the dispatcher would
  // hand control straight back — skip the heap round-trip and the context
  // switch and just keep running.
  const ReadyEntry self{task.vtime_, task.rank_};
  if ((ready_.empty() || self < ready_.top()) &&
      (runs_.empty() || self < run_front_key(runs_.front()))) {
    return;
  }
  task.state_ = TaskState::Run::kReady;
  ready_.emplace(task.vtime_, task.rank_);
  TaskState* next = next_task();  // never null: `task` itself is queued
  if (next == &task) {
    // Defensive: we popped ourselves back (no earlier task existed).
    task.state_ = TaskState::Run::kRunning;
    return;
  }
  switch_from(task, *next);
}

void Engine::block_current() {
  TaskState& task = *current_;
  task.state_ = TaskState::Run::kBlocked;
  TaskState* next = next_task();
  // All wake-ups originate from running tasks, so if nothing is runnable
  // the blocked caller can never be woken again: that is a deadlock, not a
  // wait.
  SION_CHECK(next != nullptr)
      << "deadlock: " << (total_tasks_ - done_count_)
      << " tasks blocked with empty ready queue (collective mismatch?)";
  switch_from(task, *next);
}

void Engine::wake(TaskState& task, double t) {
  SION_CHECK(task.state_ == TaskState::Run::kBlocked)
      << "wake of non-blocked task " << task.rank_;
  if (t > task.vtime_) task.vtime_ = t;
  task.state_ = TaskState::Run::kReady;
  ready_.emplace(task.vtime_, task.rank_);
}

void Engine::sift_runs() {
  // std::push_heap builds a max-heap; the inverted comparator keeps the
  // earliest release run at the front. Both callers place the run to fix up
  // at the back of runs_.
  std::push_heap(runs_.begin(), runs_.end(),
                 [this](const ReleaseRun& a, const ReleaseRun& b) {
                   return run_front_key(a) > run_front_key(b);
                 });
}

void Engine::wake_members(const std::vector<TaskState*>& members,
                          std::size_t skip, double t) {
  const std::size_t n = members.size();
  ReleaseRun run;
  run.members = &members;
  run.t = t;
  run.skip = static_cast<std::uint32_t>(skip);
  std::size_t first = skip == 0 ? 1 : 0;
  if (first >= n) return;
  run.next = static_cast<std::uint32_t>(first);
  for (std::size_t i = first; i < n; ++i) {
    if (i == skip) continue;
    TaskState& task = *members[i];
    SION_CHECK(task.state_ == TaskState::Run::kBlocked)
        << "wake of non-blocked task " << task.rank_;
    if (t > task.vtime_) task.vtime_ = t;
    task.state_ = TaskState::Run::kReady;
  }
  runs_.push_back(run);
  sift_runs();
}

TaskState* Engine::pop_run_front() {
  // With a single run (the common case: one collective draining) the heap
  // maintenance is skipped entirely; runs_.back() is the front either way.
  const bool heaped = runs_.size() > 1;
  if (heaped) {
    std::pop_heap(runs_.begin(), runs_.end(),
                  [this](const ReleaseRun& a, const ReleaseRun& b) {
                    return run_front_key(a) > run_front_key(b);
                  });
  }
  ReleaseRun& run = runs_.back();
  TaskState* task = (*run.members)[run.next];
  std::size_t next = run.next + 1;
  if (next == run.skip) ++next;
  if (next < run.members->size()) {
    run.next = static_cast<std::uint32_t>(next);
    if (heaped) sift_runs();
  } else {
    runs_.pop_back();
  }
  return task;
}

void Engine::run(int ntasks, const TaskFn& body) {
  SION_CHECK(ntasks > 0) << "Engine::run needs at least one task";
  SION_CHECK(g_engine == nullptr) << "Engine::run is not reentrant";
  g_engine = this;

  body_ = &body;
  total_tasks_ = ntasks;
  done_count_ = 0;
  first_error_ = nullptr;

  // One anonymous mapping for all stacks: at 64Ki fibers, per-fiber mmap
  // would need 2 VMAs each (stack + guard) and blow past vm.max_map_count.
  // The slab is kept across run() calls — re-faulting ~2 pages per fiber on
  // every phase of a multi-phase benchmark costs more host time than the
  // dirty pages cost memory.
  const std::size_t needed =
      static_cast<std::size_t>(ntasks) * config_.stack_bytes;
  if (slab_ == nullptr || slab_bytes_ < needed) {
    if (slab_ != nullptr) release_slab(slab_, slab_bytes_);
    slab_ = acquire_slab(needed, &slab_bytes_);
    if (slab_ == nullptr) {
      slab_bytes_ = needed;
      void* slab = ::mmap(nullptr, slab_bytes_, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
      SION_CHECK(slab != MAP_FAILED) << "mmap of fiber stack slab failed";
      slab_ = static_cast<std::byte*>(slab);
    }
  }

  tasks_.clear();
  tasks_.resize(static_cast<std::size_t>(ntasks));
  comms_.clear();
  ready_.reserve(static_cast<std::size_t>(ntasks) + 64);
  runs_.reserve(64);

  for (int r = 0; r < ntasks; ++r) {
    TaskState& task = tasks_[static_cast<std::size_t>(r)];
    task.engine_ = this;
    task.rank_ = r;
    task.vtime_ = epoch_;
    task.stack_ = slab_ + static_cast<std::size_t>(r) * config_.stack_bytes;
    std::memcpy(task.stack_, &kCanary, sizeof(kCanary));
#ifdef SION_FAST_FIBERS
    task.fiber_sp_ =
        fiber_make(task.stack_, config_.stack_bytes, &fiber_entry, &task);
#else
    getcontext(&task.ctx_);
    task.ctx_.uc_stack.ss_sp = task.stack_;
    task.ctx_.uc_stack.ss_size = config_.stack_bytes;
    task.ctx_.uc_link = &sched_ctx_;
    const std::uintptr_t self_bits = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&task.ctx_, reinterpret_cast<void (*)()>(&trampoline), 2,
                static_cast<unsigned int>(self_bits >> 32),
                static_cast<unsigned int>(self_bits & 0xFFFFFFFFu));
    task.tsan_fiber_ = tsan_fiber_create();
#endif
  }
#ifndef SION_FAST_FIBERS
  // TSan must know which of its fibers the dispatch loop below runs on; every
  // retiring fiber announces a switch back to this handle.
  sched_tsan_fiber_ = tsan_fiber_current();
#endif

  // The initial schedule — every task runnable at the epoch, in rank order —
  // is one release run over init_members_, not ntasks heap entries.
  init_members_.clear();
  init_members_.reserve(tasks_.size());
  for (auto& t : tasks_) init_members_.push_back(&t);
  ReleaseRun init;
  init.members = &init_members_;
  init.t = epoch_;
  runs_.push_back(init);

  // World communicator (rank i == task i).
  adopt_comm(Comm::create(*this, init_members_, config_.network));

  // Dispatch loop: fibers hand control to each other directly (the
  // suspending fiber picks the successor — see switch_from), so this
  // context regains control only when every task has retired.
  while (done_count_ < ntasks) {
    TaskState* task = next_task();
    SION_CHECK(task != nullptr)
        << "deadlock: " << (ntasks - done_count_)
        << " tasks blocked with empty ready queue (collective mismatch?)";
    switch_to(*task);
  }
  ready_.clear();
  runs_.clear();

#ifndef SION_FAST_FIBERS
  // All fibers have retired; release TSan's per-fiber shadow state before
  // the stacks are recycled for the next run() (stale handles on a reused
  // stack would alias old synchronization history onto new fibers).
  for (auto& task : tasks_) tsan_fiber_destroy(task.tsan_fiber_);
#endif
  tasks_.clear();
  comms_.clear();
  body_ = nullptr;
  g_engine = nullptr;

  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace sion::par
