#include "par/engine.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>

#include "common/log.h"
#include "par/comm.h"

namespace sion::par {

namespace {
thread_local TaskState* g_current_task = nullptr;
thread_local Engine* g_engine = nullptr;

// Written at the low end of every fiber stack; checked when the fiber
// finishes to detect (most) stack overflows without per-fiber guard pages,
// which would exhaust vm.max_map_count at 64Ki fibers.
constexpr std::uint64_t kCanary = 0x510AC0DE510AC0DEULL;

// Retired stack slabs are pooled and handed to the next shard whose local
// task count fits: a 64Ki-task sweep builds a fresh Engine per data point,
// and re-faulting ~2 pages per fiber per point dominates the host cost of
// task setup otherwise. Pooled slabs are marked MADV_FREE, so the kernel may
// reclaim (zero) any page at any moment while unreclaimed pages are reused
// without a fault — which is why canaries are re-armed on every acquisition
// and never trusted across a pool round-trip. Process-global with a mutex
// (not thread_local): shard worker threads are short-lived, and a slab
// cached on a dead thread would be leaked capacity.
class SlabPool {
 public:
  std::byte* acquire(std::size_t bytes, std::size_t* actual) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t best = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].bytes >= bytes &&
          (best == entries_.size() ||
           entries_[i].bytes < entries_[best].bytes)) {
        best = i;
      }
    }
    if (best == entries_.size()) return nullptr;
    std::byte* slab = entries_[best].ptr;
    *actual = entries_[best].bytes;
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(best));
    return slab;
  }

  void release(std::byte* ptr, std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() >= kMaxEntries) {
      // Keep the large slabs: they are the expensive ones to re-fault.
      std::size_t smallest = 0;
      for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].bytes < entries_[smallest].bytes) smallest = i;
      }
      if (entries_[smallest].bytes >= bytes) {
        ::munmap(ptr, bytes);
        return;
      }
      ::munmap(entries_[smallest].ptr, entries_[smallest].bytes);
      entries_.erase(entries_.begin() +
                     static_cast<std::ptrdiff_t>(smallest));
    }
    entries_.push_back(Entry{ptr, bytes});
#ifdef MADV_FREE
    ::madvise(ptr, bytes, MADV_FREE);
#endif
  }

  void scribble() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      std::memset(e.ptr, 0xA5, e.bytes);
#ifdef MADV_FREE
      ::madvise(e.ptr, e.bytes, MADV_FREE);
#endif
    }
  }

 private:
  struct Entry {
    std::byte* ptr = nullptr;
    std::size_t bytes = 0;
  };
  static constexpr std::size_t kMaxEntries = 8;

  std::mutex mu_;
  std::vector<Entry> entries_;
};

SlabPool& slab_pool() {
  static SlabPool pool;
  return pool;
}

// Binds/unbinds the per-thread engine pointers for the duration of one
// Engine::run. RAII so an aborting run (a throwing task body, a bad_alloc
// during setup) cannot poison the thread for the next Engine — the
// non-reentrancy guard and this_task() must reset on every exit path.
class ScopedRunBinding {
 public:
  explicit ScopedRunBinding(Engine* engine) {
    SION_CHECK(g_engine == nullptr) << "Engine::run is not reentrant";
    SION_CHECK(g_current_task == nullptr)
        << "Engine::run called from inside a task body";
    g_engine = engine;
  }
  ~ScopedRunBinding() {
    g_engine = nullptr;
    g_current_task = nullptr;
  }
  ScopedRunBinding(const ScopedRunBinding&) = delete;
  ScopedRunBinding& operator=(const ScopedRunBinding&) = delete;
};
}  // namespace

thread_local Engine::Shard* Engine::tls_shard_ = nullptr;

namespace testing {
void scribble_cached_stack_slabs() { slab_pool().scribble(); }
}  // namespace testing

TaskState* this_task() { return g_current_task; }

void TaskState::advance_to(double t) {
  if (t > vtime_) {
    vtime_ = t;
    engine_->yield_current();
  }
}

FsOrderGate::FsOrderGate() {
  TaskState* task = g_current_task;
  if (task == nullptr || !task->engine_->sharded()) return;
  task_ = task;
  if (task->fs_depth_++ == 0) task->engine_->enter_fs_order(*task);
}

FsOrderGate::~FsOrderGate() {
  if (task_ == nullptr) return;
  if (--task_->fs_depth_ == 0) task_->engine_->exit_fs_order(*task_);
}

Engine::Engine(EngineConfig config) : config_(config) {}

Engine::~Engine() = default;

Engine::Shard::~Shard() {
  if (slab != nullptr) slab_pool().release(slab, slab_bytes);
}

Comm& Engine::adopt_comm(std::unique_ptr<Comm> comm) {
  // Locked: finalizers of disjoint same-shard splits may adopt concurrently.
  std::lock_guard<std::mutex> lock(comms_mu_);
  comms_.push_back(std::move(comm));
  return *comms_.back();
}

#ifdef SION_FAST_FIBERS

void Engine::fiber_entry(void* arg) {
  auto* task = static_cast<TaskState*>(arg);
  Engine* engine = task->engine_;
  engine->fiber_main(task->rank_);
  engine->retire_and_dispatch(*task);
}

#else

void Engine::trampoline(unsigned int hi, unsigned int lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* task = reinterpret_cast<TaskState*>(bits);
  Engine* engine = task->engine_;
  engine->fiber_main(task->rank_);
  engine->retire_and_dispatch(*task);
}

#endif  // SION_FAST_FIBERS

void Engine::fiber_main(int index) {
  TaskState& task = tasks_[static_cast<std::size_t>(index)];
  try {
    (*body_)(*world_);
  } catch (...) {  // sion-lint: allow(catch-all)
    // The one legitimate catch-all: a fiber boundary. Whatever a task body
    // throws must be parked and rethrown from Engine::run -- letting it
    // unwind a fiber stack into the scheduler would be UB. Per shard the
    // smallest (vtime, rank) throw wins, so the propagated exception is
    // deterministic at every shard count.
    Shard& sh = *tls_shard_;
    const ReadyEntry key{task.vtime_, task.rank_};
    if (!sh.error || key < ReadyEntry{sh.error_vt, sh.error_rank}) {
      sh.error = std::current_exception();
      sh.error_vt = task.vtime_;
      sh.error_rank = task.rank_;
    }
  }
  task.state_ = TaskState::Run::kDone;
}

TaskState* Engine::next_task(Shard& sh) {
  for (;;) {
    if (!sh.runs.empty() &&
        (sh.ready.empty() || run_front_key(sh.runs.front()) < sh.ready.top())) {
      TaskState* task = pop_run_front(sh);
      SION_CHECK(task->state_ == TaskState::Run::kReady)
          << "release run holds task " << task->rank_ << " in invalid state";
      return task;
    }
    if (sh.ready.empty()) return nullptr;
    const auto [vtime, rank] = sh.ready.top();
    sh.ready.pop();
    TaskState& task = tasks_[static_cast<std::size_t>(rank)];
    if (task.state_ != TaskState::Run::kReady || task.vtime_ != vtime) {
      continue;  // stale heap entry (task was re-queued with a newer time)
    }
    return &task;
  }
}

void Engine::switch_to(Shard& sh, TaskState& task) {
  sh.current = &task;
  task.state_ = TaskState::Run::kRunning;
  g_current_task = &task;
#ifdef SION_FAST_FIBERS
  sion_fiber_swap(&sh.sched_sp, task.fiber_sp_);
#else
  tsan_fiber_switch(task.tsan_fiber_);
  swapcontext(&sh.sched_ctx, &task.ctx_);
#endif
  g_current_task = nullptr;
  sh.current = nullptr;
}

void Engine::switch_from(TaskState& from, TaskState& to) {
  // Fiber-to-fiber handoff: the bookkeeping for `to` runs here, on `from`'s
  // stack, because control resumes inside `to`'s own suspended frame.
  to.state_ = TaskState::Run::kRunning;
  tls_shard_->current = &to;
  g_current_task = &to;
#ifdef SION_FAST_FIBERS
  sion_fiber_swap(&from.fiber_sp_, to.fiber_sp_);
#else
  tsan_fiber_switch(to.tsan_fiber_);
  swapcontext(&from.ctx_, &to.ctx_);
#endif
  // Back alive: whoever dispatched into `from` already set current to us.
}

void Engine::suspend_to_sched(Shard& sh, TaskState& from) {
  sh.current = nullptr;
  g_current_task = nullptr;
#ifdef SION_FAST_FIBERS
  sion_fiber_swap(&from.fiber_sp_, sh.sched_sp);
#else
  tsan_fiber_switch(sh.sched_tsan_fiber);
  swapcontext(&from.ctx_, &sh.sched_ctx);
#endif
  // Resumed by a later switch_to/switch_from, which restores current.
}

void Engine::dispatch_next_or_sched(Shard& sh, TaskState& from) {
  TaskState* next = next_task(sh);
  if (next != nullptr) {
    switch_from(from, *next);
    return;
  }
  if (nshards_ == 1) {
    SION_CHECK(false)
        << "deadlock: " << (total_tasks_ - sh.done_count)
        << " tasks blocked with empty ready queue (collective mismatch?)";
  }
  // Sharded: a cross-shard wake may still arrive; let the shard loop
  // coordinate (drain inboxes, publish the floor, wait or detect deadlock).
  suspend_to_sched(sh, from);
}

void Engine::retire_and_dispatch(TaskState& task) {
  Shard& sh = *tls_shard_;
  ++sh.done_count;
  if (task.vtime_ > sh.epoch) sh.epoch = task.vtime_;
  std::uint64_t canary;
  std::memcpy(&canary, task.stack_, sizeof(canary));
  SION_CHECK(canary == kCanary)
      << "fiber stack overflow detected for rank " << task.rank_
      << " (increase EngineConfig::stack_bytes)";
  TaskState* next = next_task(sh);
  if (next != nullptr) {
    switch_from(task, *next);
    SION_CHECK(false) << "finished fiber resumed";
  }
  if (nshards_ == 1 && sh.done_count < total_tasks_) {
    SION_CHECK(false)
        << "deadlock: " << (total_tasks_ - sh.done_count)
        << " tasks blocked with empty ready queue (collective mismatch?)";
  }
  suspend_to_sched(sh, task);
  SION_CHECK(false) << "finished fiber resumed";
  std::abort();  // unreachable; satisfies [[noreturn]]
}

void Engine::yield_current() {
  Shard& sh = *tls_shard_;
  TaskState& task = *sh.current;
  if (task.in_fs_op_) {
    // Mid-op yield inside a globally ordered SimFs operation: the op's key
    // advanced, so its place in the global order must be renegotiated.
    // Never take the still-earliest fast path here — "earliest" must be
    // judged against every shard, which is exactly what re-parking does.
    std::unique_lock<std::mutex> lock(mu_);
    park_fs_locked(sh, task);
    refresh_floor_locked(sh);
    cv_.notify_all();
    lock.unlock();
    dispatch_next_or_sched(sh, task);
    return;
  }
  // Still the earliest (vtime, rank) key in the shard? Then the dispatcher
  // would hand control straight back — skip the heap round-trip and the
  // context switch and just keep running.
  const ReadyEntry self{task.vtime_, task.rank_};
  if ((sh.ready.empty() || self < sh.ready.top()) &&
      (sh.runs.empty() || self < run_front_key(sh.runs.front()))) {
    return;
  }
  task.state_ = TaskState::Run::kReady;
  sh.ready.emplace(task.vtime_, task.rank_);
  TaskState* next = next_task(sh);  // never null: `task` itself is queued
  if (next == &task) {
    // Defensive: we popped ourselves back (no earlier task existed).
    task.state_ = TaskState::Run::kRunning;
    return;
  }
  switch_from(task, *next);
}

void Engine::block_current() {
  Shard& sh = *tls_shard_;
  TaskState& task = *sh.current;
  task.state_ = TaskState::Run::kBlocked;
  // All same-shard wake-ups originate from running tasks, so in the
  // single-shard engine "nothing runnable" means the blocked caller can
  // never be woken again: a deadlock, not a wait (dispatch_next_or_sched).
  dispatch_next_or_sched(sh, task);
}

void Engine::block_current_locked(std::unique_lock<std::mutex>& lock) {
  Shard& sh = *tls_shard_;
  TaskState& task = *sh.current;
  task.state_ = TaskState::Run::kBlocked;
  // Publish the blocked state while the lock is held (the cross-shard waker
  // reads it under mu_), then switch away unlocked: the wake lands in this
  // shard's inbox and is applied by this thread, never concurrently.
  lock.unlock();
  dispatch_next_or_sched(sh, task);
}

void Engine::wake(TaskState& task, double t) {
  SION_CHECK(task.state_ == TaskState::Run::kBlocked)
      << "wake of non-blocked task " << task.rank_;
  if (t > task.vtime_) task.vtime_ = t;
  task.state_ = TaskState::Run::kReady;
  tls_shard_->ready.emplace(task.vtime_, task.rank_);
}

void Engine::wake_locked(TaskState& task, double t) {
  Shard& target = *shards_[task.shard_];
  if (&target == tls_shard_) {
    wake(task, t);
    return;
  }
  // Remote target: its state is only ever touched by its own thread, so the
  // wake is posted to the shard's inbox. Lower the floor to the wake key
  // right away — the floor must bound undrained inbox work at all times.
  InboxMsg msg;
  msg.task = &task;
  msg.t = t;
  target.inbox.push_back(msg);
  const ReadyEntry key{std::max(t, task.vtime_), task.rank_};
  if (key < ReadyEntry{target.floor_vt, target.floor_rank}) {
    target.floor_vt = key.first;
    target.floor_rank = key.second;
  }
  cv_.notify_all();
}

void Engine::sift_runs(Shard& sh) {
  // std::push_heap builds a max-heap; the inverted comparator keeps the
  // earliest release run at the front. Both callers place the run to fix up
  // at the back of runs.
  std::push_heap(sh.runs.begin(), sh.runs.end(),
                 [this](const ReleaseRun& a, const ReleaseRun& b) {
                   return run_front_key(a) > run_front_key(b);
                 });
}

void Engine::wake_members(const std::vector<TaskState*>& members,
                          std::size_t skip, double t) {
  Shard& sh = *tls_shard_;
  const std::size_t n = members.size();
  ReleaseRun run;
  run.members = &members;
  run.t = t;
  run.end = static_cast<std::uint32_t>(n);
  run.skip = static_cast<std::uint32_t>(skip);
  std::size_t first = skip == 0 ? 1 : 0;
  if (first >= n) return;
  run.next = static_cast<std::uint32_t>(first);
  for (std::size_t i = first; i < n; ++i) {
    if (i == skip) continue;
    TaskState& task = *members[i];
    SION_CHECK(task.state_ == TaskState::Run::kBlocked)
        << "wake of non-blocked task " << task.rank_;
    if (t > task.vtime_) task.vtime_ = t;
    task.state_ = TaskState::Run::kReady;
  }
  sh.runs.push_back(run);
  sift_runs(sh);
}

void Engine::wake_members_locked(const std::vector<TaskState*>& members,
                                 std::size_t skip, double t) {
  // Members are in ascending global-rank order and shards partition ranks
  // into contiguous blocks, so equal-shard members form contiguous slices.
  // The caller's own slice becomes a local release run directly; remote
  // slices are posted to their shards' inboxes (state untouched until the
  // owning thread drains them).
  const std::size_t n = members.size();
  std::size_t a = 0;
  while (a < n) {
    const std::uint32_t shard_idx = members[a]->shard_;
    std::size_t b = a + 1;
    while (b < n && members[b]->shard_ == shard_idx) ++b;
    // First non-skipped index of [a, b).
    std::size_t first = a;
    if (first == skip) ++first;
    if (first < b) {
      Shard& target = *shards_[shard_idx];
      if (&target == tls_shard_) {
        ReleaseRun run;
        run.members = &members;
        run.t = t;
        run.next = static_cast<std::uint32_t>(first);
        run.end = static_cast<std::uint32_t>(b);
        run.skip = static_cast<std::uint32_t>(skip);
        for (std::size_t i = first; i < b; ++i) {
          if (i == skip) continue;
          TaskState& task = *members[i];
          SION_CHECK(task.state_ == TaskState::Run::kBlocked)
              << "wake of non-blocked task " << task.rank_;
          if (t > task.vtime_) task.vtime_ = t;
          task.state_ = TaskState::Run::kReady;
        }
        target.runs.push_back(run);
        sift_runs(target);
      } else {
        InboxMsg msg;
        msg.members = &members;
        msg.t = t;
        msg.next = static_cast<std::uint32_t>(first);
        msg.end = static_cast<std::uint32_t>(b);
        msg.skip = static_cast<std::uint32_t>(skip);
        target.inbox.push_back(msg);
        const ReadyEntry key{t, members[first]->rank_};
        if (key < ReadyEntry{target.floor_vt, target.floor_rank}) {
          target.floor_vt = key.first;
          target.floor_rank = key.second;
        }
      }
    }
    a = b;
  }
  cv_.notify_all();
}

TaskState* Engine::pop_run_front(Shard& sh) {
  // With a single run (the common case: one collective draining) the heap
  // maintenance is skipped entirely; runs.back() is the front either way.
  const bool heaped = sh.runs.size() > 1;
  if (heaped) {
    std::pop_heap(sh.runs.begin(), sh.runs.end(),
                  [this](const ReleaseRun& a, const ReleaseRun& b) {
                    return run_front_key(a) > run_front_key(b);
                  });
  }
  ReleaseRun& run = sh.runs.back();
  TaskState* task = (*run.members)[run.next];
  std::size_t next = run.next + 1;
  if (next == run.skip) ++next;
  if (next < run.end) {
    run.next = static_cast<std::uint32_t>(next);
    if (heaped) sift_runs(sh);
  } else {
    sh.runs.pop_back();
  }
  return task;
}

// --- sharded coordination ---------------------------------------------------

std::optional<Engine::ReadyEntry> Engine::local_front_key(Shard& sh) {
  std::optional<ReadyEntry> key;
  if (!sh.ready.empty()) key = sh.ready.top();
  if (!sh.runs.empty()) {
    const ReadyEntry rk = run_front_key(sh.runs.front());
    if (!key || rk < *key) key = rk;
  }
  return key;
}

void Engine::drain_inbox_locked(Shard& sh) {
  for (const InboxMsg& msg : sh.inbox) {
    if (msg.members == nullptr) {
      TaskState& task = *msg.task;
      SION_CHECK(task.state_ == TaskState::Run::kBlocked)
          << "wake of non-blocked task " << task.rank_;
      if (msg.t > task.vtime_) task.vtime_ = msg.t;
      task.state_ = TaskState::Run::kReady;
      sh.ready.emplace(task.vtime_, task.rank_);
      continue;
    }
    ReleaseRun run;
    run.members = msg.members;
    run.t = msg.t;
    run.next = msg.next;
    run.end = msg.end;
    run.skip = msg.skip;
    for (std::size_t i = msg.next; i < msg.end; ++i) {
      if (i == msg.skip) continue;
      TaskState& task = *(*msg.members)[i];
      SION_CHECK(task.state_ == TaskState::Run::kBlocked)
          << "wake of non-blocked task " << task.rank_;
      if (msg.t > task.vtime_) task.vtime_ = msg.t;
      task.state_ = TaskState::Run::kReady;
    }
    sh.runs.push_back(run);
    sift_runs(sh);
  }
  sh.inbox.clear();
}

void Engine::refresh_floor_locked(Shard& sh) {
  // Inbox first: raising the floor above an undrained wake's key would let
  // another shard run an fs op that must order after that wake's effects.
  drain_inbox_locked(sh);
  if (const auto front = local_front_key(sh)) {
    sh.floor_vt = front->first;
    sh.floor_rank = front->second;
  } else {
    sh.floor_vt = std::numeric_limits<double>::infinity();
    sh.floor_rank = std::numeric_limits<int>::max();
  }
}

bool Engine::fs_min_globally_locked(Shard& sh, double vt, int rank) {
  const ReadyEntry key{vt, rank};
  if (const auto front = local_front_key(sh); front && !(key < *front)) {
    return false;
  }
  if (!sh.fs_pending.empty() && !(key < sh.fs_pending.top())) return false;
  for (int s = 0; s < nshards_; ++s) {
    if (s == sh.index) continue;
    Shard& other = *shards_[static_cast<std::size_t>(s)];
    if (!(key < ReadyEntry{other.floor_vt, other.floor_rank})) return false;
    if (!other.fs_pending.empty() && !(key < other.fs_pending.top())) {
      return false;
    }
  }
  return true;
}

TaskState* Engine::drainable_fs_op_locked(Shard& sh) {
  if (sh.fs_pending.empty()) return nullptr;
  const ReadyEntry key = sh.fs_pending.top();
  // Own floor is +inf here (only called with nothing locally runnable), so
  // only the other shards constrain the drain.
  for (int s = 0; s < nshards_; ++s) {
    if (s == sh.index) continue;
    Shard& other = *shards_[static_cast<std::size_t>(s)];
    if (!(key < ReadyEntry{other.floor_vt, other.floor_rank})) return nullptr;
    if (!other.fs_pending.empty() && !(key < other.fs_pending.top())) {
      return nullptr;
    }
  }
  return &tasks_[static_cast<std::size_t>(key.second)];
}

bool Engine::all_shards_done_locked() const {
  for (int s = 0; s < nshards_; ++s) {
    if (!shards_[static_cast<std::size_t>(s)]->published_done) return false;
  }
  return true;
}

void Engine::park_fs_locked(Shard& sh, TaskState& task) {
  task.state_ = TaskState::Run::kBlocked;
  sh.fs_pending.emplace(task.vtime_, task.rank_);
}

void Engine::enter_fs_order(TaskState& task) {
  Shard& sh = *tls_shard_;
  std::unique_lock<std::mutex> lock(mu_);
  task.in_fs_op_ = true;
  // Drain the inbox first: an undrained cross-shard wake with a smaller key
  // has already lowered this shard's floor, but lives in neither ready nor
  // runs, so local_front_key cannot see it. Draining makes it visible to the
  // minimality check below — otherwise this op could run out of global order
  // and then raise the floor above the wake's key.
  drain_inbox_locked(sh);
  // Fast path: the op is already the strict global minimum — below every
  // other shard's floor and fs front and below everything locally runnable
  // or parked. Claim the floor at the op's key and run without suspending.
  if (fs_min_globally_locked(sh, task.vtime_, task.rank_)) {
    sh.floor_vt = task.vtime_;
    sh.floor_rank = task.rank_;
    return;
  }
  park_fs_locked(sh, task);
  refresh_floor_locked(sh);
  cv_.notify_all();
  lock.unlock();
  dispatch_next_or_sched(sh, task);
  // Resumed by the shard loop once the op's key is the global minimum; the
  // dispatcher has set this shard's floor to the op's key.
}

void Engine::exit_fs_order(TaskState& task) {
  Shard& sh = *tls_shard_;
  std::lock_guard<std::mutex> lock(mu_);
  task.in_fs_op_ = false;
  // Raise the floor from the op's key to the shard's true minimum — the
  // continuing task itself or the earliest locally runnable key. This is
  // what lets the globally next fs op (on any shard) proceed.
  drain_inbox_locked(sh);
  ReadyEntry floor{task.vtime_, task.rank_};
  if (const auto front = local_front_key(sh); front && *front < floor) {
    floor = *front;
  }
  sh.floor_vt = floor.first;
  sh.floor_rank = floor.second;
  cv_.notify_all();
}

void Engine::shard_loop(Shard& sh) {
  const int local_total = sh.rank_end - sh.rank_begin;
  for (;;) {
    // Parallel phase: run local work lock-free. Fibers dispatch each other
    // directly; control returns here only when nothing local is runnable.
    for (TaskState* task = next_task(sh); task != nullptr;
         task = next_task(sh)) {
      switch_to(sh, *task);
    }
    // Coordination phase.
    std::unique_lock<std::mutex> lock(mu_);
    refresh_floor_locked(sh);
    cv_.notify_all();
    while (!local_front_key(sh)) {
      if (sh.done_count == local_total && sh.fs_pending.empty() &&
          sh.inbox.empty()) {
        if (!sh.published_done) {
          sh.published_done = true;
          sh.published_done_count = sh.done_count;
          cv_.notify_all();
        }
        if (all_shards_done_locked()) return;
      }
      if (TaskState* op = drainable_fs_op_locked(sh)) {
        // This shard's parked fs-op front is the strict global minimum:
        // run it (alone, globally) with the floor pinned at its key.
        sh.fs_pending.pop();
        sh.floor_vt = op->vtime_;
        sh.floor_rank = op->rank_;
        op->state_ = TaskState::Run::kReady;
        lock.unlock();
        switch_to(sh, *op);
        lock.lock();
        refresh_floor_locked(sh);
        cv_.notify_all();
        continue;
      }
      sh.published_done_count = sh.done_count;
      // Deadlock detection: every other shard is parked in cv_, no wake is
      // in flight anywhere, and no fs op is pending anywhere — then no
      // event can ever occur again. Mirrors the single-shard CHECK.
      if (waiting_ == nshards_ - 1 && !sh.published_done) {
        bool stuck = true;
        int done_total = sh.done_count;
        for (int s = 0; s < nshards_; ++s) {
          if (s == sh.index) continue;
          Shard& other = *shards_[static_cast<std::size_t>(s)];
          if (!other.inbox.empty() || !other.fs_pending.empty()) {
            stuck = false;
            break;
          }
          done_total += other.published_done_count;
        }
        SION_CHECK(!stuck)
            << "deadlock: " << (total_tasks_ - done_total)
            << " tasks blocked with empty ready queue (collective mismatch?)";
      }
      ++waiting_;
      cv_.wait(lock);
      --waiting_;
      refresh_floor_locked(sh);
      cv_.notify_all();
    }
    // Locally runnable again (an inbox drain produced work): the floor was
    // republished by refresh_floor_locked; rejoin the parallel phase.
  }
}

void Engine::shard_main(Shard& sh) {
  tls_shard_ = &sh;
#ifndef SION_FAST_FIBERS
  // TSan must know which of its fibers the shard loop runs on, and per-task
  // fiber handles must be created/destroyed on the thread that switches
  // them; every suspending fiber announces a switch back to this handle.
  sh.sched_tsan_fiber = tsan_fiber_current();
  for (int r = sh.rank_begin; r < sh.rank_end; ++r) {
    tasks_[static_cast<std::size_t>(r)].tsan_fiber_ = tsan_fiber_create();
  }
#endif
  shard_loop(sh);
#ifndef SION_FAST_FIBERS
  // All local fibers have retired; release TSan's per-fiber shadow state
  // before the stacks are recycled for the next run() (stale handles on a
  // reused stack would alias old synchronization history onto new fibers).
  for (int r = sh.rank_begin; r < sh.rank_end; ++r) {
    tsan_fiber_destroy(tasks_[static_cast<std::size_t>(r)].tsan_fiber_);
  }
#endif
  tls_shard_ = nullptr;
}

void Engine::run(int ntasks, const TaskFn& body) {
  SION_CHECK(ntasks > 0) << "Engine::run needs at least one task";
  ScopedRunBinding binding(this);

  body_ = &body;
  total_tasks_ = ntasks;
  nshards_ = std::clamp(config_.shards, 1, ntasks);
  ranks_per_shard_ = (ntasks + nshards_ - 1) / nshards_;
  nshards_ = (ntasks + ranks_per_shard_ - 1) / ranks_per_shard_;
  waiting_ = 0;

  while (shards_.size() < static_cast<std::size_t>(nshards_)) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = static_cast<int>(shards_.size()) - 1;
  }

  tasks_.clear();
  tasks_.resize(static_cast<std::size_t>(ntasks));
  comms_.clear();
  init_members_.clear();
  init_members_.reserve(tasks_.size());
  for (auto& t : tasks_) init_members_.push_back(&t);

  for (int s = 0; s < nshards_; ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    sh.rank_begin = s * ranks_per_shard_;
    sh.rank_end = std::min(ntasks, sh.rank_begin + ranks_per_shard_);
    const auto local = static_cast<std::size_t>(sh.rank_end - sh.rank_begin);

    // One anonymous mapping for all of the shard's stacks: at 64Ki fibers,
    // per-fiber mmap would need 2 VMAs each (stack + guard) and blow past
    // vm.max_map_count. The slab is kept across run() calls — re-faulting
    // ~2 pages per fiber on every phase of a multi-phase benchmark costs
    // more host time than the dirty pages cost memory.
    const std::size_t needed = local * config_.stack_bytes;
    if (sh.slab == nullptr || sh.slab_bytes < needed) {
      if (sh.slab != nullptr) slab_pool().release(sh.slab, sh.slab_bytes);
      sh.slab = slab_pool().acquire(needed, &sh.slab_bytes);
      if (sh.slab == nullptr) {
        sh.slab_bytes = needed;
        void* slab = ::mmap(nullptr, sh.slab_bytes, PROT_READ | PROT_WRITE,
                            MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
        SION_CHECK(slab != MAP_FAILED) << "mmap of fiber stack slab failed";
        sh.slab = static_cast<std::byte*>(slab);
      }
    }

    sh.ready.clear();
    sh.ready.reserve(local + 64);
    sh.runs.clear();
    sh.runs.reserve(64);
    sh.fs_pending.clear();
    sh.inbox.clear();
    sh.current = nullptr;
    sh.done_count = 0;
    sh.epoch = epoch_;
    sh.error = nullptr;
    sh.published_done = false;
    sh.published_done_count = 0;
    sh.floor_vt = epoch_;
    sh.floor_rank = sh.rank_begin;

    for (int r = sh.rank_begin; r < sh.rank_end; ++r) {
      TaskState& task = tasks_[static_cast<std::size_t>(r)];
      task.engine_ = this;
      task.rank_ = r;
      task.vtime_ = epoch_;
      task.shard_ = static_cast<std::uint32_t>(s);
      task.in_fs_op_ = false;
      task.fs_depth_ = 0;
      task.stack_ =
          sh.slab +
          static_cast<std::size_t>(r - sh.rank_begin) * config_.stack_bytes;
      // Re-armed on EVERY acquisition: pooled slabs are MADV_FREE, so the
      // kernel may have zero-reclaimed the page holding a previous canary
      // (testing::scribble_cached_stack_slabs simulates exactly that).
      std::memcpy(task.stack_, &kCanary, sizeof(kCanary));
#ifdef SION_FAST_FIBERS
      task.fiber_sp_ =
          fiber_make(task.stack_, config_.stack_bytes, &fiber_entry, &task);
#else
      getcontext(&task.ctx_);
      task.ctx_.uc_stack.ss_sp = task.stack_;
      task.ctx_.uc_stack.ss_size = config_.stack_bytes;
      task.ctx_.uc_link = &sh.sched_ctx;
      const std::uintptr_t task_bits = reinterpret_cast<std::uintptr_t>(&task);
      makecontext(&task.ctx_, reinterpret_cast<void (*)()>(&trampoline), 2,
                  static_cast<unsigned int>(task_bits >> 32),
                  static_cast<unsigned int>(task_bits & 0xFFFFFFFFu));
#endif
    }

    // The initial schedule — every local task runnable at the epoch, in
    // rank order — is one release run over the shard's init slice, not
    // `local` individual heap entries.
    sh.init_members.clear();
    sh.init_members.reserve(local);
    for (int r = sh.rank_begin; r < sh.rank_end; ++r) {
      sh.init_members.push_back(&tasks_[static_cast<std::size_t>(r)]);
    }
    ReleaseRun init;
    init.members = &sh.init_members;
    init.t = epoch_;
    init.end = static_cast<std::uint32_t>(local);
    sh.runs.push_back(init);
  }

  // World communicator (rank i == task i).
  world_ = &adopt_comm(Comm::create(*this, init_members_, config_.network));

  if (nshards_ == 1) {
    shard_main(*shards_[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(nshards_) - 1);
    for (int s = 1; s < nshards_; ++s) {
      Shard* sh = shards_[static_cast<std::size_t>(s)].get();
      workers.emplace_back([this, sh] { shard_main(*sh); });
    }
    shard_main(*shards_[0]);
    for (auto& w : workers) w.join();
  }

  // Merge per-shard results deterministically: epoch is a max; the
  // propagated error is the smallest (vtime, rank) throw across shards.
  std::exception_ptr error;
  double error_vt = 0.0;
  int error_rank = 0;
  for (int s = 0; s < nshards_; ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    if (sh.epoch > epoch_) epoch_ = sh.epoch;
    if (sh.error &&
        (!error || ReadyEntry{sh.error_vt, sh.error_rank} <
                       ReadyEntry{error_vt, error_rank})) {
      error = sh.error;
      error_vt = sh.error_vt;
      error_rank = sh.error_rank;
    }
    sh.error = nullptr;
    sh.ready.clear();
    sh.runs.clear();
    sh.init_members.clear();
  }

  tasks_.clear();
  comms_.clear();
  world_ = nullptr;
  body_ = nullptr;

  if (error) std::rethrow_exception(error);
}

}  // namespace sion::par
