#include "par/engine.h"

#include <sys/mman.h>

#include <cstring>

#include "common/log.h"
#include "par/comm.h"

namespace sion::par {

namespace {
thread_local TaskState* g_current_task = nullptr;
thread_local Engine* g_engine = nullptr;

// Written at the low end of every fiber stack; checked when the fiber
// finishes to detect (most) stack overflows without per-fiber guard pages,
// which would exhaust vm.max_map_count at 64Ki fibers.
constexpr std::uint64_t kCanary = 0x510AC0DE510AC0DEULL;
}  // namespace

TaskState* this_task() { return g_current_task; }

void TaskState::advance_to(double t) {
  if (t > vtime_) {
    vtime_ = t;
    engine_->yield_current();
  }
}

Engine::Engine(EngineConfig config) : config_(config) {}

Engine::~Engine() = default;

Comm& Engine::adopt_comm(std::unique_ptr<Comm> comm) {
  comms_.push_back(std::move(comm));
  return *comms_.back();
}

void Engine::trampoline(unsigned int hi, unsigned int lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* engine = reinterpret_cast<Engine*>(bits);
  engine->fiber_main(engine->current_->rank());
  // Returning falls through to uc_link (the scheduler context).
}

void Engine::fiber_main(int index) {
  TaskState& task = *tasks_[static_cast<std::size_t>(index)];
  try {
    (*body_)(*static_cast<Comm*>(comms_.front().get()));
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
  }
  task.state_ = TaskState::Run::kDone;
}

void Engine::switch_to(TaskState& task) {
  current_ = &task;
  task.state_ = TaskState::Run::kRunning;
  g_current_task = &task;
  swapcontext(&sched_ctx_, &task.ctx_);
  g_current_task = nullptr;
  current_ = nullptr;
}

void Engine::yield_current() {
  TaskState& task = *current_;
  task.state_ = TaskState::Run::kReady;
  ready_.emplace(task.vtime_, task.rank_);
  swapcontext(&task.ctx_, &sched_ctx_);
}

void Engine::block_current() {
  TaskState& task = *current_;
  task.state_ = TaskState::Run::kBlocked;
  swapcontext(&task.ctx_, &sched_ctx_);
}

void Engine::wake(TaskState& task, double t) {
  SION_CHECK(task.state_ == TaskState::Run::kBlocked)
      << "wake of non-blocked task " << task.rank_;
  if (t > task.vtime_) task.vtime_ = t;
  task.state_ = TaskState::Run::kReady;
  ready_.emplace(task.vtime_, task.rank_);
}

void Engine::run(int ntasks, const TaskFn& body) {
  SION_CHECK(ntasks > 0) << "Engine::run needs at least one task";
  SION_CHECK(g_engine == nullptr) << "Engine::run is not reentrant";
  g_engine = this;

  body_ = &body;
  done_count_ = 0;
  first_error_ = nullptr;

  // One anonymous mapping for all stacks: at 64Ki fibers, per-fiber mmap
  // would need 2 VMAs each (stack + guard) and blow past vm.max_map_count.
  slab_bytes_ = static_cast<std::size_t>(ntasks) * config_.stack_bytes;
  void* slab = ::mmap(nullptr, slab_bytes_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  SION_CHECK(slab != MAP_FAILED) << "mmap of fiber stack slab failed";
  slab_ = static_cast<std::byte*>(slab);

  tasks_.clear();
  tasks_.reserve(static_cast<std::size_t>(ntasks));
  comms_.clear();

  const std::uintptr_t self_bits = reinterpret_cast<std::uintptr_t>(this);
  for (int r = 0; r < ntasks; ++r) {
    auto task = std::make_unique<TaskState>();
    task->engine_ = this;
    task->rank_ = r;
    task->vtime_ = epoch_;
    task->stack_ = slab_ + static_cast<std::size_t>(r) * config_.stack_bytes;
    std::memcpy(task->stack_, &kCanary, sizeof(kCanary));
    getcontext(&task->ctx_);
    task->ctx_.uc_stack.ss_sp = task->stack_;
    task->ctx_.uc_stack.ss_size = config_.stack_bytes;
    task->ctx_.uc_link = &sched_ctx_;
    makecontext(&task->ctx_, reinterpret_cast<void (*)()>(&trampoline), 2,
                static_cast<unsigned int>(self_bits >> 32),
                static_cast<unsigned int>(self_bits & 0xFFFFFFFFu));
    ready_.emplace(task->vtime_, r);
    tasks_.push_back(std::move(task));
  }

  // World communicator (rank i == task i).
  std::vector<TaskState*> members;
  members.reserve(tasks_.size());
  for (auto& t : tasks_) members.push_back(t.get());
  adopt_comm(Comm::create(*this, std::move(members), config_.network));

  // Scheduler loop: always resume the runnable task with the smallest
  // virtual clock.
  while (done_count_ < ntasks) {
    SION_CHECK(!ready_.empty())
        << "deadlock: " << (ntasks - done_count_)
        << " tasks blocked with empty ready queue (collective mismatch?)";
    const auto [vtime, rank] = ready_.top();
    ready_.pop();
    TaskState& task = *tasks_[static_cast<std::size_t>(rank)];
    if (task.state_ != TaskState::Run::kReady || task.vtime_ != vtime) {
      continue;  // stale heap entry (task was re-queued with a newer time)
    }
    switch_to(task);
    if (task.state_ == TaskState::Run::kDone) {
      ++done_count_;
      if (task.vtime_ > epoch_) epoch_ = task.vtime_;
      std::uint64_t canary;
      std::memcpy(&canary, task.stack_, sizeof(canary));
      SION_CHECK(canary == kCanary)
          << "fiber stack overflow detected for rank " << task.rank_
          << " (increase EngineConfig::stack_bytes)";
    }
  }
  while (!ready_.empty()) ready_.pop();

  tasks_.clear();
  comms_.clear();
  ::munmap(slab_, slab_bytes_);
  slab_ = nullptr;
  body_ = nullptr;
  g_engine = nullptr;

  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace sion::par
