// The task runtime: a deterministic, virtual-time execution engine for large
// numbers of logical tasks.
//
// The paper evaluates SIONlib with up to 64Ki MPI ranks on Blue Gene/P and
// Cray XT4. This reproduction has neither MPI nor those machines, so ranks
// are modelled as stackful fibers scheduled cooperatively by a single
// discrete-event scheduler: the runnable task with the smallest virtual
// clock always runs next (ties broken by rank, so execution is fully
// deterministic). Time never comes from the wall clock — it is charged by the
// file-system simulator (`fs::SimFs`) and by the collective cost model
// (`par::NetworkModel`), which makes the benchmark tables reproducible
// run-to-run on any host.
//
// Host performance at 64Ki tasks hinges on four engine choices (see the
// README "Performance" section for measurements):
//   * fibers switch through a userspace register swap (par/fiber.h), not
//     swapcontext(), whose per-switch sigprocmask syscalls dominate a
//     collective-heavy sweep;
//   * a suspending fiber dispatches the next runnable fiber DIRECTLY —
//     control never bounces through a scheduler context, so a task handoff
//     is one register swap, not two;
//   * tasks released together by a collective enter the scheduler as one
//     *release run* consumed in rank order, instead of ntasks individual
//     heap pushes/pops (Engine::wake_members);
//   * a task that yields while still holding the earliest virtual clock
//     keeps running — no heap traffic, no context switch.
// None of these change the schedule: the golden determinism suite pins the
// resulting virtual times bit-for-bit.
//
// Invariant maintained by the engine: whenever a task's virtual clock
// advances, the task yields, so resource requests are issued in globally
// non-decreasing virtual-time order (a conservative sequential DES).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "par/fiber.h"

#ifndef SION_FAST_FIBERS
#include <ucontext.h>
#endif

#include "common/status.h"

namespace sion::par {

class Engine;
class Comm;

// Cost model for communication between tasks (alpha/beta model over a
// binomial tree, the standard shape of MPI collectives on BG/P and XT4).
struct NetworkModel {
  double alpha = 5.0e-6;       // per-hop latency in seconds
  double byte_time = 2.7e-9;   // seconds per byte on the bottleneck link

  [[nodiscard]] int tree_depth(int ntasks) const {
    int depth = 0;
    int reach = 1;
    while (reach < ntasks) {
      reach *= 2;
      ++depth;
    }
    return depth;
  }

  // Latency-only synchronisation (barrier, small allreduce).
  [[nodiscard]] double sync_cost(int ntasks) const {
    return 2.0 * tree_depth(ntasks) * alpha;
  }

  // Rooted data movement where `bottleneck_bytes` must traverse the root's
  // link (gather/scatter), plus tree latency.
  [[nodiscard]] double rooted_cost(int ntasks,
                                   std::uint64_t bottleneck_bytes) const {
    return tree_depth(ntasks) * alpha +
           static_cast<double>(bottleneck_bytes) * byte_time;
  }

  // Pipelined broadcast of `bytes` to all tasks.
  [[nodiscard]] double bcast_cost(int ntasks, std::uint64_t bytes) const {
    return tree_depth(ntasks) * alpha +
           static_cast<double>(bytes) * byte_time;
  }

  // Point-to-point transfer.
  [[nodiscard]] double p2p_cost(std::uint64_t bytes) const {
    return alpha + static_cast<double>(bytes) * byte_time;
  }
};

struct EngineConfig {
  std::size_t stack_bytes = 128 * 1024;  // per-fiber stack
  NetworkModel network;
};

// Per-task runtime state. User code interacts with it through `this_task()`.
class TaskState {
 public:
  enum class Run : std::uint8_t { kReady, kRunning, kBlocked, kDone };

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] double now() const { return vtime_; }
  [[nodiscard]] Engine& engine() const { return *engine_; }

  // Advance this task's virtual clock to `t` (no-op if already past it) and
  // yield to the scheduler so globally time-ordered execution is preserved.
  void advance_to(double t);

  // Spend `seconds` of virtual compute time.
  void compute(double seconds) { advance_to(vtime_ + seconds); }

 private:
  friend class Engine;
  friend class Comm;

  Engine* engine_ = nullptr;
  int rank_ = -1;
  double vtime_ = 0.0;
  Run state_ = Run::kReady;
#ifdef SION_FAST_FIBERS
  void* fiber_sp_ = nullptr;  // suspended context (par/fiber.h frame)
#else
  ucontext_t ctx_{};
  void* tsan_fiber_ = nullptr;  // TSan's handle for this stack (TSan builds)
#endif
  std::byte* stack_ = nullptr;  // slice of the engine's stack slab
};

// The currently executing task, or nullptr outside Engine::run (e.g., in
// serial command-line tools). fs::SimFs consults this to know whose clock to
// charge.
TaskState* this_task();

class Engine {
 public:
  using TaskFn = std::function<void(Comm& world)>;

  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Run `ntasks` logical tasks to completion; each executes `body` with a
  // world communicator whose rank equals the task's rank. Tasks start at the
  // engine's current epoch, so consecutive run() calls share one monotonic
  // virtual timeline (resource queues in SimFs stay consistent across runs).
  // The first exception thrown by any task is rethrown here after all fibers
  // have been reaped.
  void run(int ntasks, const TaskFn& body);

  // Largest virtual completion time observed so far. The delta of epoch()
  // across a run() is that run's makespan.
  [[nodiscard]] double epoch() const { return epoch_; }

  [[nodiscard]] const EngineConfig& config() const { return config_; }

  // --- runtime internals, used by TaskState/Comm -------------------------

  // Put the current task back in the ready queue at its (possibly advanced)
  // clock and switch to the scheduler. If the task still holds the earliest
  // (vtime, rank) key in the system it simply keeps running.
  void yield_current();
  // Suspend the current task indefinitely; a collective partner will wake it.
  void block_current();
  // Make `task` runnable at virtual time `t`.
  void wake(TaskState& task, double t);
  // Batch release of a collective: make every member except members[skip]
  // runnable at time `t`, as one O(1)-per-task release run. `members` must
  // be in ascending global-rank order and must outlive the run (Comm member
  // vectors satisfy both); the schedule is identical to per-task wake().
  void wake_members(const std::vector<TaskState*>& members, std::size_t skip,
                    double t);

  // Comm objects created during a run (world + splits) live here so that raw
  // Comm& handed to tasks stay valid for the whole run.
  Comm& adopt_comm(std::unique_ptr<Comm> comm);

 private:
  // Min-heap of (vtime, rank); deterministic tie-break by rank.
  using ReadyEntry = std::pair<double, int>;

  // priority_queue with access to the underlying vector, so the engine can
  // reserve once per run and drop all entries in O(1) at the end.
  class ReadyQueue : public std::priority_queue<ReadyEntry,
                                                std::vector<ReadyEntry>,
                                                std::greater<ReadyEntry>> {
   public:
    void reserve(std::size_t n) { c.reserve(n); }
    void clear() { c.clear(); }
  };

  // One collective release: members[next..] (minus the skipped waker) become
  // runnable at time t and are handed to the scheduler in rank order. The
  // initial schedule of a run() is itself one big release run (kNoSkip).
  struct ReleaseRun {
    static constexpr std::uint32_t kNoSkip = ~std::uint32_t{0};
    const std::vector<TaskState*>* members = nullptr;
    double t = 0.0;
    std::uint32_t next = 0;
    std::uint32_t skip = kNoSkip;
  };

  void fiber_main(int index);
#ifdef SION_FAST_FIBERS
  static void fiber_entry(void* arg);
#else
  static void trampoline(unsigned int hi, unsigned int lo);
#endif
  void switch_to(TaskState& task);

  [[nodiscard]] ReadyEntry run_front_key(const ReleaseRun& run) const {
    return {run.t, (*run.members)[run.next]->rank()};
  }
  // Pop the earliest member of the earliest release run.
  TaskState* pop_run_front();
  void sift_runs();

  // Earliest runnable task by (vtime, rank) across the ready heap and the
  // release runs, or nullptr when nothing is runnable.
  TaskState* next_task();
  // Transfer control from the (blocked/yielded/finished) current fiber
  // straight into `to` — fiber-to-fiber, no scheduler hop.
  void switch_from(TaskState& from, TaskState& to);
  // Mark the current fiber finished, account for it, and dispatch the next
  // runnable task (or return to the scheduler when the run is complete).
  [[noreturn]] void retire_and_dispatch(TaskState& task);

  EngineConfig config_;
  double epoch_ = 0.0;

  // Per-run state.
  std::vector<TaskState> tasks_;
  std::vector<TaskState*> init_members_;  // rank order; backs the initial run
  std::vector<std::unique_ptr<Comm>> comms_;
  ReadyQueue ready_;
  // Min-heap over run_front_key; tiny (at most one run per live communicator).
  std::vector<ReleaseRun> runs_;
#ifdef SION_FAST_FIBERS
  void* sched_sp_ = nullptr;
#else
  ucontext_t sched_ctx_{};
  void* sched_tsan_fiber_ = nullptr;  // the dispatch loop's own stack
#endif
  TaskState* current_ = nullptr;
  const TaskFn* body_ = nullptr;
  std::byte* slab_ = nullptr;
  std::size_t slab_bytes_ = 0;
  int total_tasks_ = 0;
  int done_count_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace sion::par
