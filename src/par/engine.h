// The task runtime: a deterministic, virtual-time execution engine for large
// numbers of logical tasks.
//
// The paper evaluates SIONlib with up to 64Ki MPI ranks on Blue Gene/P and
// Cray XT4. This reproduction has neither MPI nor those machines, so ranks
// are modelled as stackful fibers scheduled cooperatively by a discrete-event
// scheduler: the runnable task with the smallest virtual clock always runs
// next (ties broken by rank, so execution is fully deterministic). Time never
// comes from the wall clock — it is charged by the file-system simulator
// (`fs::SimFs`) and by the collective cost model (`par::NetworkModel`), which
// makes the benchmark tables reproducible run-to-run on any host.
//
// Host performance at 64Ki tasks hinges on four engine choices (see the
// README "Performance" section for measurements):
//   * fibers switch through a userspace register swap (par/fiber.h), not
//     swapcontext(), whose per-switch sigprocmask syscalls dominate a
//     collective-heavy sweep;
//   * a suspending fiber dispatches the next runnable fiber DIRECTLY —
//     control never bounces through a scheduler context, so a task handoff
//     is one register swap, not two;
//   * tasks released together by a collective enter the scheduler as one
//     *release run* consumed in rank order, instead of ntasks individual
//     heap pushes/pops (Engine::wake_members);
//   * a task that yields while still holding the earliest virtual clock
//     keeps running — no heap traffic, no context switch.
// None of these change the schedule: the golden determinism suite pins the
// resulting virtual times bit-for-bit.
//
// Threading model (EngineConfig::shards > 1): ranks are partitioned into
// contiguous per-host-thread *shards*, each running its own fiber scheduler
// over its own ready queue, release runs, and stack slab. Fibers never
// migrate host threads. Compute, collectives, and point-to-point messages
// run freely inside a shard and cross shard boundaries through mailbox-style
// inboxes — their virtual-time math is order-independent, so host
// interleaving cannot change results. Only `fs::SimFs` operations observe
// shared mutable state whose outcome depends on order; those are serialized
// exactly in global (vtime, rank) key order by a conservative protocol: each
// shard exposes a *floor* (lower bound on any key it may still act at), an
// fs-op parks in its shard's pending heap, and the globally minimal parked
// op — strictly below every other shard's floor and fs front — runs alone.
// All network costs are strictly positive, so work a running task triggers
// elsewhere always lands strictly above its shard's floor (the lookahead of
// the protocol). Results are bit-identical to the single-shard engine for
// every shard count; the golden determinism suite pins this.
//
// Invariant maintained by the engine: whenever a task's virtual clock
// advances, the task yields, so resource requests are issued in globally
// non-decreasing virtual-time order (a conservative DES).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "par/fiber.h"

#ifndef SION_FAST_FIBERS
#include <ucontext.h>
#endif

#include "common/status.h"

namespace sion::par {

class Engine;
class Comm;

// Cost model for communication between tasks (alpha/beta model over a
// binomial tree, the standard shape of MPI collectives on BG/P and XT4).
struct NetworkModel {
  double alpha = 5.0e-6;       // per-hop latency in seconds
  double byte_time = 2.7e-9;   // seconds per byte on the bottleneck link

  [[nodiscard]] int tree_depth(int ntasks) const {
    int depth = 0;
    int reach = 1;
    while (reach < ntasks) {
      reach *= 2;
      ++depth;
    }
    return depth;
  }

  // Latency-only synchronisation (barrier, small allreduce).
  [[nodiscard]] double sync_cost(int ntasks) const {
    return 2.0 * tree_depth(ntasks) * alpha;
  }

  // Rooted data movement where `bottleneck_bytes` must traverse the root's
  // link (gather/scatter), plus tree latency.
  [[nodiscard]] double rooted_cost(int ntasks,
                                   std::uint64_t bottleneck_bytes) const {
    return tree_depth(ntasks) * alpha +
           static_cast<double>(bottleneck_bytes) * byte_time;
  }

  // Pipelined broadcast of `bytes` to all tasks.
  [[nodiscard]] double bcast_cost(int ntasks, std::uint64_t bytes) const {
    return tree_depth(ntasks) * alpha +
           static_cast<double>(bytes) * byte_time;
  }

  // Point-to-point transfer.
  [[nodiscard]] double p2p_cost(std::uint64_t bytes) const {
    return alpha + static_cast<double>(bytes) * byte_time;
  }
};

struct EngineConfig {
  std::size_t stack_bytes = 128 * 1024;  // per-fiber stack
  NetworkModel network;
  // Host threads to partition the ranks across. 1 = the classic sequential
  // engine. Results are bit-identical for every value (see "Threading
  // model" above); more shards trade mutex coordination for parallelism in
  // compute/collective-heavy phases.
  int shards = 1;
};

// Per-task runtime state. User code interacts with it through `this_task()`.
class TaskState {
 public:
  enum class Run : std::uint8_t { kReady, kRunning, kBlocked, kDone };

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] double now() const { return vtime_; }
  [[nodiscard]] Engine& engine() const { return *engine_; }

  // Advance this task's virtual clock to `t` (no-op if already past it) and
  // yield to the scheduler so globally time-ordered execution is preserved.
  void advance_to(double t);

  // Spend `seconds` of virtual compute time.
  void compute(double seconds) { advance_to(vtime_ + seconds); }

 private:
  friend class Engine;
  friend class Comm;
  friend class FsOrderGate;

  Engine* engine_ = nullptr;
  int rank_ = -1;
  double vtime_ = 0.0;
  Run state_ = Run::kReady;
  std::uint32_t shard_ = 0;       // home shard; fibers never migrate threads
  std::uint16_t fs_depth_ = 0;    // FsOrderGate nesting depth
  bool in_fs_op_ = false;         // inside a globally ordered SimFs op
#ifdef SION_FAST_FIBERS
  void* fiber_sp_ = nullptr;  // suspended context (par/fiber.h frame)
#else
  ucontext_t ctx_{};
  void* tsan_fiber_ = nullptr;  // TSan's handle for this stack (TSan builds)
#endif
  std::byte* stack_ = nullptr;  // slice of the shard's stack slab
};

// The currently executing task, or nullptr outside Engine::run (e.g., in
// serial command-line tools). fs::SimFs consults this to know whose clock to
// charge.
TaskState* this_task();

// RAII marker placed at the top of every `fs::SimFs`/`SimFile` operation that
// touches order-sensitive shared state. A no-op in serial code and in the
// single-shard engine; in the sharded engine it parks the calling task until
// its (vtime, rank) key is the global minimum, which serializes simulator
// operations in exactly the sequential engine's order (see "Threading model"
// in the header comment). Re-entrant per task: only the outermost gate on a
// task orders; nested gates are free.
class FsOrderGate {
 public:
  FsOrderGate();
  ~FsOrderGate();

  FsOrderGate(const FsOrderGate&) = delete;
  FsOrderGate& operator=(const FsOrderGate&) = delete;

 private:
  TaskState* task_ = nullptr;
};

namespace testing {
// Overwrites every stack slab parked in the global slab pool, as the kernel
// is allowed to do to MADV_FREE pages at any moment. Regression hook for the
// canary re-arm logic: a run after a scribble must still pass its canary
// checks.
void scribble_cached_stack_slabs();
}  // namespace testing

class Engine {
 public:
  using TaskFn = std::function<void(Comm& world)>;

  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Run `ntasks` logical tasks to completion; each executes `body` with a
  // world communicator whose rank equals the task's rank. Tasks start at the
  // engine's current epoch, so consecutive run() calls share one monotonic
  // virtual timeline (resource queues in SimFs stay consistent across runs).
  // The first exception thrown by any task — by (vtime, rank) of the throw
  // point, so the choice is deterministic at every shard count — is rethrown
  // here after all fibers have been reaped.
  void run(int ntasks, const TaskFn& body);

  // Largest virtual completion time observed so far. The delta of epoch()
  // across a run() is that run's makespan.
  [[nodiscard]] double epoch() const { return epoch_; }

  [[nodiscard]] const EngineConfig& config() const { return config_; }

  // --- runtime internals, used by TaskState/Comm -------------------------

  // True when the current run executes on more than one host thread. Comm
  // and FsOrderGate use the cross-shard code paths only in this case.
  [[nodiscard]] bool sharded() const { return nshards_ > 1; }
  // Home shard of a rank in the current run (contiguous block partition).
  [[nodiscard]] int shard_of(int rank) const { return rank / ranks_per_shard_; }
  // The engine-wide coordination mutex. Cross-shard Comm paths hold it
  // around rendezvous/mailbox state and the *_locked calls below.
  [[nodiscard]] std::mutex& shard_mutex() { return mu_; }

  // Put the current task back in the ready queue at its (possibly advanced)
  // clock and switch to the scheduler. If the task still holds the earliest
  // (vtime, rank) key in its shard it simply keeps running.
  void yield_current();
  // Suspend the current task indefinitely; a collective partner will wake it.
  void block_current();
  // As block_current, but for cross-shard Comm paths: marks the task blocked
  // while `lock` (on shard_mutex()) is held, releases the lock, then
  // switches away. The lock is NOT reacquired on return.
  void block_current_locked(std::unique_lock<std::mutex>& lock);
  // Make `task` runnable at virtual time `t`.
  void wake(TaskState& task, double t);
  // As wake, but callable with shard_mutex() held for a task on any shard:
  // same-shard targets are woken directly, remote targets are posted to
  // their shard's inbox (drained deterministically by the owning thread).
  void wake_locked(TaskState& task, double t);
  // Batch release of a collective: make every member except members[skip]
  // runnable at time `t`, as one O(1)-per-task release run. `members` must
  // be in ascending global-rank order and must outlive the run (Comm member
  // vectors satisfy both); the schedule is identical to per-task wake().
  void wake_members(const std::vector<TaskState*>& members, std::size_t skip,
                    double t);
  // As wake_members, with shard_mutex() held: the member list is cut into
  // per-shard contiguous slices; the local slice becomes a release run
  // directly, remote slices are posted to their shards' inboxes.
  void wake_members_locked(const std::vector<TaskState*>& members,
                           std::size_t skip, double t);

  // Comm objects created during a run (world + splits) live here so that raw
  // Comm& handed to tasks stay valid for the whole run.
  Comm& adopt_comm(std::unique_ptr<Comm> comm);

 private:
  friend class FsOrderGate;

  // Min-heap of (vtime, rank); deterministic tie-break by rank.
  using ReadyEntry = std::pair<double, int>;

  // priority_queue with access to the underlying vector, so the engine can
  // reserve once per run and drop all entries in O(1) at the end.
  class ReadyQueue : public std::priority_queue<ReadyEntry,
                                                std::vector<ReadyEntry>,
                                                std::greater<ReadyEntry>> {
   public:
    void reserve(std::size_t n) { c.reserve(n); }
    void clear() { c.clear(); }
  };

  // One collective release: members[next..end) (minus the skipped waker)
  // become runnable at time t and are handed to the scheduler in rank order.
  // The initial schedule of a run() is one such run per shard, over that
  // shard's slice of init_members_.
  struct ReleaseRun {
    static constexpr std::uint32_t kNoSkip = ~std::uint32_t{0};
    const std::vector<TaskState*>* members = nullptr;
    double t = 0.0;
    std::uint32_t next = 0;
    std::uint32_t end = 0;
    std::uint32_t skip = kNoSkip;
  };

  // A cross-shard wake in flight, parked in the target shard's inbox until
  // its owning thread drains it (task state is only ever touched by the
  // task's own shard thread). members == nullptr is a single-task wake;
  // otherwise it is a wake_members slice [next, end) minus `skip`.
  struct InboxMsg {
    const std::vector<TaskState*>* members = nullptr;
    TaskState* task = nullptr;
    double t = 0.0;
    std::uint32_t next = 0;
    std::uint32_t end = 0;
    std::uint32_t skip = ReleaseRun::kNoSkip;
  };

  // One host thread's scheduler. The first group of fields is touched only
  // by the owning thread; the fields after mu-guarded comment only with
  // Engine::mu_ held.
  struct Shard {
    ~Shard();

    int index = 0;
    int rank_begin = 0;
    int rank_end = 0;  // exclusive
    ReadyQueue ready;
    std::vector<ReleaseRun> runs;
    std::vector<TaskState*> init_members;  // this shard's initial release run
#ifdef SION_FAST_FIBERS
    void* sched_sp = nullptr;
#else
    ucontext_t sched_ctx{};
    void* sched_tsan_fiber = nullptr;  // the shard loop's own stack
#endif
    TaskState* current = nullptr;
    std::byte* slab = nullptr;
    std::size_t slab_bytes = 0;
    int done_count = 0;
    double epoch = 0.0;  // local max completion time; merged after the run
    // Deterministic error capture: smallest (vtime, rank) throw wins.
    std::exception_ptr error;
    double error_vt = 0.0;
    int error_rank = 0;

    // --- mu-guarded coordination state ---------------------------------
    // Conservative lower bound on any (vtime, rank) key this shard may
    // still act at (dispatch locally, post cross-shard, run an fs op).
    double floor_vt = 0.0;
    int floor_rank = 0;
    ReadyQueue fs_pending;  // parked FsOrderGate ops, keyed (vtime, rank)
    std::vector<InboxMsg> inbox;
    bool published_done = false;
    int published_done_count = 0;  // mirror of done_count for diagnostics
  };

  void fiber_main(int index);
#ifdef SION_FAST_FIBERS
  static void fiber_entry(void* arg);
#else
  static void trampoline(unsigned int hi, unsigned int lo);
#endif
  void switch_to(Shard& sh, TaskState& task);

  [[nodiscard]] ReadyEntry run_front_key(const ReleaseRun& run) const {
    return {run.t, (*run.members)[run.next]->rank()};
  }
  // Pop the earliest member of the earliest release run.
  TaskState* pop_run_front(Shard& sh);
  void sift_runs(Shard& sh);

  // Earliest runnable task by (vtime, rank) across the shard's ready heap
  // and release runs, or nullptr when nothing is locally runnable.
  TaskState* next_task(Shard& sh);
  // Transfer control from the (blocked/yielded/finished) current fiber
  // straight into `to` — fiber-to-fiber, no scheduler hop.
  void switch_from(TaskState& from, TaskState& to);
  // Suspend the current fiber back into the shard loop (coordination).
  void suspend_to_sched(Shard& sh, TaskState& from);
  // Dispatch the next local task from `from`'s fiber, or fall back to the
  // shard loop (sharded) / deadlock (sequential).
  void dispatch_next_or_sched(Shard& sh, TaskState& from);
  // Mark the current fiber finished, account for it, and dispatch the next
  // runnable task (or return to the shard loop when none is).
  [[noreturn]] void retire_and_dispatch(TaskState& task);

  // --- sharded coordination (engine.cpp) --------------------------------
  void shard_main(Shard& sh);
  void shard_loop(Shard& sh);
  // Earliest locally runnable key (ready front vs release-run front).
  std::optional<ReadyEntry> local_front_key(Shard& sh);
  // True when (vt, rank) is the strict global minimum: below every other
  // shard's floor and fs front, and below everything locally runnable or
  // parked in this shard.
  bool fs_min_globally_locked(Shard& sh, double vt, int rank);
  void drain_inbox_locked(Shard& sh);
  // Drains the inbox, then publishes floor = min local runnable key (+inf
  // when none). Never raises the floor above an undrained inbox key.
  void refresh_floor_locked(Shard& sh);
  // The shard's parked fs-op front, if it is the strict global minimum
  // below every other shard's floor and fs front and this shard's own
  // floor; nullptr otherwise.
  TaskState* drainable_fs_op_locked(Shard& sh);
  [[nodiscard]] bool all_shards_done_locked() const;
  void enter_fs_order(TaskState& task);
  void exit_fs_order(TaskState& task);
  void park_fs_locked(Shard& sh, TaskState& task);

  // The shard whose scheduler owns the calling host thread during a run.
  static thread_local Shard* tls_shard_;

  EngineConfig config_;
  double epoch_ = 0.0;

  // Per-run state.
  std::vector<TaskState> tasks_;
  std::vector<TaskState*> init_members_;  // rank order; backs the world comm
  std::vector<std::unique_ptr<Comm>> comms_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Comm* world_ = nullptr;  // comms_.front(), cached for lock-free reads
  const TaskFn* body_ = nullptr;
  int total_tasks_ = 0;
  int nshards_ = 1;          // active shards this run
  int ranks_per_shard_ = 1;  // contiguous block size of the partition

  std::mutex mu_;                // coordination: floors, inboxes, cross Comm
  std::condition_variable cv_;   // shard loops wait here for floor movement
  std::mutex comms_mu_;          // adopt_comm from concurrent local splits
  int waiting_ = 0;              // shards parked in cv_ (deadlock detection)
};

}  // namespace sion::par
