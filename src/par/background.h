// Virtual-time background services for the discrete-event runtime.
//
// The engine cannot spawn fibers mid-run, so activity that overlaps the
// tasks' own execution — the staging drain agent shipping checkpoints to the
// parallel tier — is modelled as a serial service timeline instead: work is
// booked on a BackgroundWorker at a start time and a duration, and the
// worker reports when it completes. Tasks later synchronise with that
// completion time via TaskState::advance_to. Completion times are a pure
// function of the booking sequence, so every rank replaying the same
// bookings computes bit-identical schedules — the determinism contract the
// golden perf suite pins.
#pragma once

#include <algorithm>

namespace sion::par {

// One exclusive background agent (e.g. a burst-buffer node's drain link):
// jobs run serially in booking order, each starting no earlier than both its
// requested time and the previous job's completion.
class BackgroundWorker {
 public:
  // Book `duration` seconds of exclusive work starting at or after
  // `earliest`; returns the completion time.
  double schedule(double earliest, double duration) {
    const double start = std::max(earliest, busy_until_);
    busy_until_ = start + std::max(0.0, duration);
    return busy_until_;
  }

  // Completion time of the last booked job (0 when idle since creation).
  [[nodiscard]] double busy_until() const { return busy_until_; }

 private:
  double busy_until_ = 0.0;
};

}  // namespace sion::par
